#!/usr/bin/env bash
# CI gate for every PR:
#   1. tier-1: release-mode build + full ctest suite
#   2. crash-torture sweep: the power-cut property harnesses — single-node
#      recovery AND two-node replication failover — over a bounded seed
#      range (every seed fully determines the fault schedule; a failure
#      prints the seed + schedule for one-command reproduction)
#   3. ThreadSanitizer build + the concurrency/stress tests (the read- and
#      commit-path invariants are concurrency properties — races like the
#      PR 1 pin/watermark TOCTOU or a torn multi-group publication only
#      surface under TSan + stress, e.g.
#      ConcurrentMultiGroupPublishesNeverTearReaderCuts).
#
# Usage: ./ci.sh [--tsan-only|--tier1-only|--torture-only]

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")" && pwd)"
JOBS="$(nproc)"
MODE="${1:-all}"

run_tier1() {
  echo "==== tier-1: release build + ctest ===="
  cmake -B "$REPO_ROOT/build" -S "$REPO_ROOT" >/dev/null
  cmake --build "$REPO_ROOT/build" -j "$JOBS"
  (cd "$REPO_ROOT/build" && ctest --output-on-failure -j "$JOBS")
}

run_torture() {
  echo "==== crash-torture sweep: ${STREAMSI_TORTURE_SEEDS:-25} seeds ===="
  # Deterministic power-cut torture: committers + checkpoints + LSM flushes
  # race against FaultEnv, power dies mid-IO, the database reopens from the
  # simulated survivors and the verifier checks zero acked losses + group
  # atomicity. On failure the gtest output carries the seed and the fault
  # schedule — rerun a single seed with
  #   STREAMSI_TORTURE_SEEDS=<seed> ./build/property_crash_torture_property_test
  cmake -B "$REPO_ROOT/build" -S "$REPO_ROOT" >/dev/null
  cmake --build "$REPO_ROOT/build" -j "$JOBS" \
      --target property_crash_torture_property_test \
               property_replication_failover_property_test
  STREAMSI_TORTURE_SEEDS="${STREAMSI_TORTURE_SEEDS:-25}" \
      "$REPO_ROOT/build/property_crash_torture_property_test"
  # Two-node failover torture: the primary dies mid-ship under the same
  # seeded power cuts, the follower is promoted, and the verifier checks
  # zero acked-commit loss + group atomicity on the promoted node. Rerun a
  # single seed with
  #   STREAMSI_TORTURE_SEEDS=<seed> \
  #       ./build/property_replication_failover_property_test
  STREAMSI_TORTURE_SEEDS="${STREAMSI_TORTURE_SEEDS:-25}" \
      "$REPO_ROOT/build/property_replication_failover_property_test"
}

run_tsan() {
  echo "==== TSan build + concurrency tests ===="
  cmake -B "$REPO_ROOT/build-tsan" -S "$REPO_ROOT" -DSTREAMSI_TSAN=ON \
      -DSTREAMSI_BUILD_BENCH=OFF -DSTREAMSI_BUILD_EXAMPLES=OFF >/dev/null
  # The concurrency/stress suites: everything exercising the latch-free
  # read path, the seqlock publication protocol, the group-commit WAL, the
  # checkpoint/drain protocol + LSM background flush worker, and the
  # partitioned stream execution engine (bounded queues, lane threads,
  # merge alignment, shared StreamTxnContext).
  local tsan_tests=(
    common_epoch_test
    common_latch_test
    core_checkpoint_test
    core_commit_path_test
    core_consistency_test
    core_degradation_test
    core_index_consistency_test
    core_isolation_test
    core_si_protocol_test
    property_crash_torture_property_test
    property_replication_failover_property_test
    replication_replication_test
    mvcc_mvcc_growth_stress_test
    mvcc_mvcc_object_test
    property_read_path_model_test
    property_scan_range_model_test
    property_si_model_test
    storage_lsm_backend_test
    storage_wal_test
    stream_chunk_test
    stream_chunk_differential_test
    stream_columnar_test
    stream_partition_test
    stream_partitioned_consistency_test
    stream_txn_context_test
    txn_state_context_test
    txn_batch_validate_test
    txn_versioned_store_test
  )
  cmake --build "$REPO_ROOT/build-tsan" -j "$JOBS" --target "${tsan_tests[@]}"
  # One torture rep under TSan (seed 1): the full sweep runs in release;
  # here the goal is race coverage of the cut/recover/degrade machinery.
  (cd "$REPO_ROOT/build-tsan" &&
   STREAMSI_TORTURE_SEEDS=1 ctest --output-on-failure -j "$JOBS" \
       -R "^($(IFS='|'; echo "${tsan_tests[*]}"))$")
}

case "$MODE" in
  --tier1-only) run_tier1 ;;
  --tsan-only) run_tsan ;;
  --torture-only) run_torture ;;
  all|*) run_tier1; run_torture; run_tsan ;;
esac

echo "==== ci.sh: all gates passed ===="
