#!/usr/bin/env bash
# CI gate for every PR:
#   1. tier-1: release-mode build + full ctest suite
#   2. ThreadSanitizer build + the concurrency/stress tests (the read- and
#      commit-path invariants are concurrency properties — races like the
#      PR 1 pin/watermark TOCTOU or a torn multi-group publication only
#      surface under TSan + stress, e.g.
#      ConcurrentMultiGroupPublishesNeverTearReaderCuts).
#
# Usage: ./ci.sh [--tsan-only|--tier1-only]

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")" && pwd)"
JOBS="$(nproc)"
MODE="${1:-all}"

run_tier1() {
  echo "==== tier-1: release build + ctest ===="
  cmake -B "$REPO_ROOT/build" -S "$REPO_ROOT" >/dev/null
  cmake --build "$REPO_ROOT/build" -j "$JOBS"
  (cd "$REPO_ROOT/build" && ctest --output-on-failure -j "$JOBS")
}

run_tsan() {
  echo "==== TSan build + concurrency tests ===="
  cmake -B "$REPO_ROOT/build-tsan" -S "$REPO_ROOT" -DSTREAMSI_TSAN=ON \
      -DSTREAMSI_BUILD_BENCH=OFF -DSTREAMSI_BUILD_EXAMPLES=OFF >/dev/null
  # The concurrency/stress suites: everything exercising the latch-free
  # read path, the seqlock publication protocol, the group-commit WAL, the
  # checkpoint/drain protocol + LSM background flush worker, and the
  # partitioned stream execution engine (bounded queues, lane threads,
  # merge alignment, shared StreamTxnContext).
  local tsan_tests=(
    common_epoch_test
    common_latch_test
    core_checkpoint_test
    core_commit_path_test
    core_consistency_test
    core_isolation_test
    core_si_protocol_test
    mvcc_mvcc_growth_stress_test
    mvcc_mvcc_object_test
    property_read_path_model_test
    property_si_model_test
    storage_lsm_backend_test
    storage_wal_test
    stream_partition_test
    stream_partitioned_consistency_test
    stream_txn_context_test
    txn_state_context_test
    txn_versioned_store_test
  )
  cmake --build "$REPO_ROOT/build-tsan" -j "$JOBS" --target "${tsan_tests[@]}"
  (cd "$REPO_ROOT/build-tsan" &&
   ctest --output-on-failure -j "$JOBS" \
       -R "^($(IFS='|'; echo "${tsan_tests[*]}"))$")
}

case "$MODE" in
  --tier1-only) run_tier1 ;;
  --tsan-only) run_tsan ;;
  all|*) run_tier1; run_tsan ;;
esac

echo "==== ci.sh: all gates passed ===="
