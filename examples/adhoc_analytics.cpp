// Ad-hoc analytics under concurrency: a continuous stream query keeps
// updating two grouped states while ad-hoc snapshot reports run against
// them — the evaluation scenario of §5.1 at demo scale, runnable with any
// of the three concurrency-control protocols:
//
//   $ ./examples/adhoc_analytics           # MVCC (default)
//   $ ./examples/adhoc_analytics S2PL
//   $ ./examples/adhoc_analytics BOCC

#include <cstdio>
#include <cstring>
#include <thread>

#include "core/streamsi.h"
#include "stream/stream.h"

using namespace streamsi;

namespace {

struct Trade {
  std::uint32_t symbol;
  double price;
  double volume;
};

}  // namespace

int main(int argc, char** argv) {
  ProtocolType protocol = ProtocolType::kMvcc;
  if (argc > 1) {
    if (std::strcmp(argv[1], "S2PL") == 0) protocol = ProtocolType::kS2pl;
    else if (std::strcmp(argv[1], "BOCC") == 0) protocol = ProtocolType::kBocc;
    else if (std::strcmp(argv[1], "MVCC") != 0) {
      std::fprintf(stderr, "usage: %s [MVCC|S2PL|BOCC]\n", argv[0]);
      return 1;
    }
  }

  DatabaseOptions options;
  options.protocol = protocol;
  auto db_or = Database::Open(options);
  Database& db = **db_or;

  TransactionalTable<std::uint32_t, double> prices(
      &db.txn_manager(), *db.CreateState("last_price"));
  TransactionalTable<std::uint32_t, double> volumes(
      &db.txn_manager(), *db.CreateState("volume_total"));
  db.CreateGroup({prices.id(), volumes.id()});

  constexpr std::uint32_t kSymbols = 64;
  for (std::uint32_t s = 0; s < kSymbols; ++s) {
    prices.BulkLoad(s, 100.0);
    volumes.BulkLoad(s, 0.0);
  }

  // Continuous query: a trade stream updating price and cumulative volume
  // in one transaction per 20-trade batch.
  Topology topology;
  auto ctx = std::make_shared<StreamTxnContext>(&db.txn_manager());
  Xorshift rng(99);
  std::uint64_t remaining = 20'000;
  auto* source = topology.Add<GeneratorSource<Trade>>(
      [&]() -> std::optional<StreamElement<Trade>> {
        if (remaining-- == 0) return std::nullopt;
        Trade t;
        t.symbol = static_cast<std::uint32_t>(rng.Uniform(kSymbols));
        t.price = 80.0 + rng.NextDouble() * 40.0;
        t.volume = 1.0 + rng.NextDouble() * 9.0;
        return StreamElement<Trade>(t);
      });
  auto* batcher = topology.Add<Batcher<Trade>>(source, 20);
  auto* to_prices = topology.Add<ToTable<Trade, std::uint32_t, double>>(
      batcher, prices, ctx, [](const Trade& t) { return t.symbol; },
      [](const Trade& t) { return t.price; });
  topology.Add<ToTable<Trade, std::uint32_t, double>>(
      to_prices, volumes, ctx, [](const Trade& t) { return t.symbol; },
      [](const Trade& t) { return t.volume; });

  // Ad-hoc analysts: repeated snapshot reports while the stream runs.
  std::atomic<bool> done{false};
  std::atomic<int> reports{0};
  std::atomic<int> retries{0};
  std::thread analyst([&] {
    while (!done.load()) {
      auto txn = db.Begin();
      if (!txn.ok()) continue;
      double total_volume = 0;
      double max_price = 0;
      std::size_t rows = 0;
      const Status sv = volumes.Scan(
          (*txn)->txn(), [&](const std::uint32_t&, const double& v) {
            total_volume += v;
            ++rows;
            return true;
          });
      const Status sp = prices.Scan(
          (*txn)->txn(), [&](const std::uint32_t&, const double& p) {
            max_price = std::max(max_price, p);
            return true;
          });
      if (!sv.ok() || !sp.ok() || !(*txn)->Commit().ok()) {
        retries.fetch_add(1);  // wait-die / validation loser: retry
        continue;
      }
      if (reports.fetch_add(1) % 50 == 0) {
        std::printf("[analyst] %zu symbols, total volume %.0f, max price "
                    "%.2f\n",
                    rows, total_volume, max_price);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  topology.Start();
  topology.Join();
  done.store(true);
  analyst.join();

  // Ordered state (MVCC only): a string-keyed trade log — byte-ordered
  // keys, unlike the memcpy-encoded uint32 table keys above — with a
  // secondary index on the symbol, maintained atomically at commit.
  if (protocol == ProtocolType::kMvcc) {
    VersionedStore* log = *db.CreateState("trade_log");
    VersionedStore* by_symbol = *db.CreateIndex(
        "trade_log", "trade_log_by_symbol",
        [](std::string_view, std::string_view value) {
          // Rows are "SYMnn|price"; the secondary key is the symbol part
          // (never contains 0x00, per the extractor contract).
          return std::string(value.substr(0, value.find('|')));
        });

    Xorshift log_rng(7);
    for (int i = 0; i < 400; ++i) {
      auto txn = db.Begin();
      if (!txn.ok()) break;
      char key[32], row[64];
      std::snprintf(key, sizeof(key), "trade-%06d", i);
      std::snprintf(row, sizeof(row), "SYM%02u|%.2f",
                    static_cast<unsigned>(log_rng.Uniform(kSymbols)),
                    80.0 + log_rng.NextDouble() * 40.0);
      if (!(*txn)->Write(log->id(), key, row).ok() ||
          !(*txn)->Commit().ok()) {
        break;
      }
    }

    // One snapshot, two ordered reads: a key-range query over the log and
    // an exact-match probe of the secondary index (the index range
    // [S 0x00, S 0x01) holds every composite entry of symbol S).
    auto txn = db.Begin();
    if (txn.ok()) {
      (*txn)->txn().set_isolation(IsolationLevel::kSnapshot);
      std::size_t in_range = 0;
      (void)(*txn)->ScanRange(log->id(), "trade-000100", "trade-000120",
                              [&](std::string_view, std::string_view) {
                                ++in_range;
                                return true;
                              });
      std::string lo, hi;
      IndexExactBounds("SYM07", &lo, &hi);
      std::size_t sym_hits = 0;
      (void)(*txn)->ScanRange(
          by_symbol->id(), lo, hi,
          [&](std::string_view composite, std::string_view) {
            std::string_view primary;
            if (SplitIndexKey(composite, nullptr, &primary)) ++sym_hits;
            return true;
          });
      (void)(*txn)->Commit();
      std::printf("[ordered] trades in key range [100,120): %zu, trades of "
                  "SYM07 via index: %zu\n",
                  in_range, sym_hits);
    }
  }

  const auto& counters = db.txn_manager().counters();
  std::printf("\nprotocol=%s committed=%llu aborted=%llu conflicts=%llu "
              "reports=%d analyst-retries=%d\n",
              ProtocolTypeName(protocol),
              static_cast<unsigned long long>(counters.committed.load()),
              static_cast<unsigned long long>(counters.aborted.load()),
              static_cast<unsigned long long>(counters.conflicts.load()),
              reports.load(), retries.load());
  return 0;
}
