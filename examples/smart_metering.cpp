// The paper's motivating scenario (Figure 1): smart metering.
//
//   Stream 1 (home smart meters)  --window+aggregate--> Local State (30 min)
//                                 \------------------->
//   Stream 2 (home smart meters)  --TO_TABLE----------> Measurements 1
//   Stream 3 (infrastructure)     --TO_TABLE----------> Measurements 2
//   Verify: measurements checked against the Specification table; findings
//           are emitted as a stream (TO_STREAM on commit).
//   Ad-hoc:  FROM(Measurements 1 x 2) analytics snapshot report.
//
// All continuous queries run in transactions (data-centric boundaries via
// punctuations); the two measurement states form one topology group so
// ad-hoc analytics always sees them mutually consistent.

#include <cstdio>

#include "core/streamsi.h"
#include "stream/stream.h"

using namespace streamsi;

namespace {

struct MeterReading {
  std::uint64_t meter_id;
  std::uint64_t minute;
  double kwh;
};

std::vector<StreamElement<MeterReading>> SimulateMeters(
    std::uint64_t first_meter, std::uint64_t meters, std::uint64_t minutes,
    double base_kwh, std::uint64_t seed) {
  Xorshift rng(seed);
  std::vector<StreamElement<MeterReading>> elements;
  for (std::uint64_t minute = 0; minute < minutes; ++minute) {
    for (std::uint64_t m = 0; m < meters; ++m) {
      const double jitter = rng.NextDouble() * 0.4 - 0.2;
      double kwh = base_kwh * (1.0 + jitter);
      // Inject an anomaly: meter (first+1) spikes at minute 42 hard enough
      // that its 30-minute window average exceeds the 3.0 kWh spec.
      if (m == 1 && minute == 42) kwh *= 120.0;
      elements.emplace_back(
          MeterReading{first_meter + m, minute, kwh}, minute);
    }
  }
  return elements;
}

}  // namespace

int main() {
  DatabaseOptions options;
  options.protocol = ProtocolType::kMvcc;
  auto db_or = Database::Open(options);
  if (!db_or.ok()) {
    std::fprintf(stderr, "open: %s\n", db_or.status().ToString().c_str());
    return 1;
  }
  Database& db = **db_or;

  // --- States -----------------------------------------------------------
  TransactionalTable<std::uint64_t, double> measurements1(
      &db.txn_manager(), *db.CreateState("measurements_1"));
  TransactionalTable<std::uint64_t, double> measurements2(
      &db.txn_manager(), *db.CreateState("measurements_2"));
  TransactionalTable<std::uint64_t, double> local_state(
      &db.txn_manager(), *db.CreateState("local_state_30min"));
  TransactionalTable<std::uint64_t, double> specification(
      &db.txn_manager(), *db.CreateState("specification"));
  // Both measurement states belong to one consistency group.
  db.CreateGroup({measurements1.id(), measurements2.id()});

  // Specification: allowed maximum kWh per meter (preloaded reference).
  for (std::uint64_t meter = 0; meter < 16; ++meter) {
    specification.BulkLoad(meter, 3.0);
  }

  // --- Verify (TO_STREAM + FROM(Specification)) --------------------------
  // Committed measurement changes are checked against the specification;
  // violations become an alert stream.
  std::atomic<int> alerts{0};
  ToStream<std::uint64_t, double> verify(&db.txn_manager(),
                                         measurements1.id());
  verify.Subscribe(
      [&](const StreamElement<ChangeEvent<std::uint64_t, double>>& e) {
        if (!e.is_data() || !e.data().value.has_value()) return;
        auto txn = db.Begin();
        if (!txn.ok()) return;
        auto limit = specification.Get((*txn)->txn(), e.data().key);
        if (limit.ok() && *e.data().value > *limit) {
          std::printf(
              "[verify] ALERT meter %llu: avg %.2f kWh exceeds spec %.2f "
              "(commit %llu)\n",
              static_cast<unsigned long long>(e.data().key),
              *e.data().value, *limit,
              static_cast<unsigned long long>(e.data().commit_ts));
          alerts.fetch_add(1);
        }
        (void)(*txn)->Commit();
      });

  // --- Continuous query 1: home meters, window + aggregate ---------------
  Topology topology;
  auto ctx1 = std::make_shared<StreamTxnContext>(&db.txn_manager());
  auto* homes = topology.Add<VectorSource<MeterReading>>(
      SimulateMeters(0, 8, 60, 1.0, /*seed=*/7));

  // 30-minute tumbling window per stream, averaged per meter, then written
  // to the local state AND to Measurements 1 in the same transactions.
  auto* window = topology.Add<TumblingTimeWindow<MeterReading>>(
      homes, 30, [](const MeterReading& r) { return r.minute; });
  struct MeterWindowAvg {
    std::uint64_t meter_id;
    double avg_kwh;
  };
  auto* averages = topology.Add<Map<WindowBatch<MeterReading>,
                                    MeterWindowAvg>>(
      window, [](const WindowBatch<MeterReading>& batch) {
        // One synthetic average across the window per meter stream; key by
        // the hottest meter for the demo.
        std::unordered_map<std::uint64_t, std::pair<double, int>> sums;
        for (const auto& r : batch.elements) {
          auto& [sum, count] = sums[r.meter_id];
          sum += r.kwh;
          ++count;
        }
        // Emit the meter with the highest average in this window.
        MeterWindowAvg result{0, 0.0};
        for (const auto& [meter, sc] : sums) {
          const double avg = sc.first / sc.second;
          if (avg > result.avg_kwh) result = {meter, avg};
        }
        return result;
      });
  auto* batched1 = topology.Add<Batcher<MeterWindowAvg>>(averages, 1);
  auto* to_local = topology.Add<ToTable<MeterWindowAvg, std::uint64_t,
                                        double>>(
      batched1, local_state, ctx1,
      [](const MeterWindowAvg& w) { return w.meter_id; },
      [](const MeterWindowAvg& w) { return w.avg_kwh; });
  topology.Add<ToTable<MeterWindowAvg, std::uint64_t, double>>(
      to_local, measurements1, ctx1,
      [](const MeterWindowAvg& w) { return w.meter_id; },
      [](const MeterWindowAvg& w) { return w.avg_kwh; });

  // --- Continuous query 2: infrastructure meters -> Measurements 2 -------
  auto ctx2 = std::make_shared<StreamTxnContext>(&db.txn_manager());
  auto* infra = topology.Add<VectorSource<MeterReading>>(
      SimulateMeters(100, 4, 60, 2.0, /*seed=*/11));
  auto* batched2 = topology.Add<Batcher<MeterReading>>(infra, 8);
  topology.Add<ToTable<MeterReading, std::uint64_t, double>>(
      batched2, measurements2, ctx2,
      [](const MeterReading& r) { return r.meter_id; },
      [](const MeterReading& r) { return r.kwh; });

  // --- Run ---------------------------------------------------------------
  topology.Start();
  topology.Join();

  // --- Ad-hoc analytics: consistent snapshot across both states ----------
  auto txn = db.Begin();
  std::printf("\n[analytics] snapshot report\n");
  double total1 = 0;
  std::size_t count1 = 0;
  measurements1.Scan((*txn)->txn(), [&](const std::uint64_t&, const double& v) {
    total1 += v;
    ++count1;
    return true;
  });
  double total2 = 0;
  std::size_t count2 = 0;
  measurements2.Scan((*txn)->txn(), [&](const std::uint64_t&, const double& v) {
    total2 += v;
    ++count2;
    return true;
  });
  std::size_t local_count = 0;
  local_state.Scan((*txn)->txn(), [&](const std::uint64_t&, const double&) {
    ++local_count;
    return true;
  });
  (void)(*txn)->Commit();

  std::printf("  measurements_1: %zu meters, avg %.2f kWh\n", count1,
              count1 ? total1 / count1 : 0.0);
  std::printf("  measurements_2: %zu meters, avg %.2f kWh\n", count2,
              count2 ? total2 / count2 : 0.0);
  std::printf("  local 30-min state: %zu windows\n", local_count);
  std::printf("  alerts raised: %d\n", alerts.load());
  std::printf("  committed txns: %llu, aborted: %llu\n",
              static_cast<unsigned long long>(
                  db.txn_manager().counters().committed.load()),
              static_cast<unsigned long long>(
                  db.txn_manager().counters().aborted.load()));
  return 0;
}
