// Replication & failover demo: a single primary ships its group-commit
// log to a warm follower that continuously replays it and serves snapshot
// reads at the replayed group cut (§4.3 consistency — never a torn group).
// When the primary dies, Promote() runs ordinary recovery on the shipped
// chain and flips the follower writable: every commit the primary ever
// acked is there.
//
// Both nodes run in this one process (the first transport is Env-file
// based), with manual ship/apply pumps so each step is visible:
//
//   $ ./examples/replication_demo [dir]

#include <cstdio>

#include "core/streamsi.h"
#include "replication/transport.h"

using namespace streamsi;

namespace {

DatabaseOptions NodeOptions(const std::string& dir) {
  DatabaseOptions options;
  options.protocol = ProtocolType::kMvcc;
  options.backend = BackendType::kLsm;
  options.backend_options.sync_mode = SyncMode::kFsync;
  options.base_dir = dir;
  options.replication.manual_pump = true;  // we pump ship/apply explicitly
  return options;
}

void Die(const char* what, const Status& status) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  std::exit(1);
}

/// Snapshot-read both tables in one transaction and report the totals —
/// works identically on the primary, the follower, and the promoted node.
void Report(Database& db, const char* label) {
  VersionedStore* accounts = db.FindState("accounts");
  VersionedStore* audit = db.FindState("audit");
  if (accounts == nullptr || audit == nullptr) {
    std::printf("%s: schema not replicated yet\n", label);
    return;
  }
  TransactionalTable<std::uint64_t, std::uint64_t> accounts_table(
      &db.txn_manager(), accounts);
  TransactionalTable<std::uint64_t, std::uint64_t> audit_table(
      &db.txn_manager(), audit);
  auto txn = db.Begin();
  if (!txn.ok()) Die("begin", txn.status());
  std::uint64_t total = 0;
  std::size_t rows = 0;
  (void)accounts_table.Scan(
      (*txn)->txn(), [&](const std::uint64_t&, const std::uint64_t& v) {
        total += v;
        ++rows;
        return true;
      });
  std::size_t audit_rows = 0;
  (void)audit_table.Scan((*txn)->txn(),
                         [&](const std::uint64_t&, const std::uint64_t&) {
                           ++audit_rows;
                           return true;
                         });
  (void)(*txn)->Commit();
  const ReplicationStats stats = db.Health().replication;
  std::printf("%s: %zu accounts (total %llu), %zu audit rows, "
              "lag=%llu commits_applied=%llu\n",
              label, rows, static_cast<unsigned long long>(total), audit_rows,
              static_cast<unsigned long long>(stats.staleness_lag),
              static_cast<unsigned long long>(stats.commits_applied));
}

void CommitBatch(Database& db,
                 TransactionalTable<std::uint64_t, std::uint64_t>& accounts,
                 TransactionalTable<std::uint64_t, std::uint64_t>& audit,
                 std::uint64_t first, std::uint64_t count) {
  for (std::uint64_t i = first; i < first + count; ++i) {
    auto txn = db.Begin();
    if (!txn.ok()) Die("begin", txn.status());
    (void)accounts.Put((*txn)->txn(), i, 100 * (i + 1));
    (void)audit.Put((*txn)->txn(), i, i);
    const Status status = (*txn)->Commit();
    if (!status.ok()) Die("commit", status);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir =
      argc > 1 ? argv[1] : "/tmp/streamsi_replication_demo";
  (void)fsutil::RemoveDirRecursive(dir);
  (void)fsutil::CreateDirIfMissing(dir);
  const std::string primary_dir = dir + "/primary";
  const std::string follower_dir = dir + "/follower";

  // The transport delivers shipped chunks into the follower's directory.
  EnvFileTransport transport(nullptr, follower_dir);

  // --- Follower first: it idles happily until the chain arrives. --------
  DatabaseOptions follower_options = NodeOptions(follower_dir);
  follower_options.replication.role = ReplicationRole::kFollower;
  auto follower = Database::Open(follower_options);
  if (!follower.ok()) Die("open follower", follower.status());

  // --- Primary: ordinary database + a log shipper. ----------------------
  {
    DatabaseOptions primary_options = NodeOptions(primary_dir);
    primary_options.replication.role = ReplicationRole::kPrimary;
    primary_options.replication.transport = &transport;
    auto primary = Database::Open(primary_options);
    if (!primary.ok()) Die("open primary", primary.status());
    TransactionalTable<std::uint64_t, std::uint64_t> accounts(
        &(*primary)->txn_manager(), *(*primary)->CreateState("accounts"));
    TransactionalTable<std::uint64_t, std::uint64_t> audit(
        &(*primary)->txn_manager(), *(*primary)->CreateState("audit"));
    (*primary)->CreateGroup({accounts.id(), audit.id()});
    const Status recovered = (*primary)->Recover();
    if (!recovered.ok()) Die("recover", recovered);

    CommitBatch(**primary, accounts, audit, 0, 10);
    if (Status s = (*primary)->ShipNow(); !s.ok()) Die("ship", s);
    if (Status s = (*follower)->ApplyShippedNow(); !s.ok()) Die("apply", s);
    Report(**primary, "primary  after 10 commits ");
    Report(**follower, "follower after 1st apply  ");

    // The follower is read-only: write commits fail fast, they are not
    // queued behind a promotion that may never come.
    {
      VersionedStore* store = (*follower)->FindState("accounts");
      TransactionalTable<std::uint64_t, std::uint64_t> table(
          &(*follower)->txn_manager(), store);
      auto txn = (*follower)->Begin();
      (void)table.Put((*txn)->txn(), 999, 1);
      const Status status = (*txn)->Commit();
      std::printf("follower write commit -> %s\n",
                  status.ToString().c_str());
    }

    // Ship without apply: the follower *knows* how stale it is.
    CommitBatch(**primary, accounts, audit, 10, 5);
    if (Status s = (*primary)->ShipNow(); !s.ok()) Die("ship", s);
    std::printf("follower lag before apply  = %llu timestamp units\n",
                static_cast<unsigned long long>(
                    (*follower)->Health().replication.staleness_lag));
    if (Status s = (*follower)->ApplyShippedNow(); !s.ok()) Die("apply", s);
    std::printf("follower lag after  apply  = %llu timestamp units\n",
                static_cast<unsigned long long>(
                    (*follower)->Health().replication.staleness_lag));

    std::printf("--- primary process dies ---\n");
    // Destructor without clean shutdown == crash for our purposes; every
    // commit above was acked, hence synced, hence already shipped.
  }

  // --- Failover: promotion IS recovery on the shipped chain. ------------
  if (Status s = (*follower)->Promote(); !s.ok()) Die("promote", s);
  Report(**follower, "promoted node             ");

  // The promoted node is a full primary: writes and checkpoints work.
  {
    VersionedStore* store = (*follower)->FindState("accounts");
    TransactionalTable<std::uint64_t, std::uint64_t> table(
        &(*follower)->txn_manager(), store);
    auto txn = (*follower)->Begin();
    (void)table.Put((*txn)->txn(), 100, 42);
    const Status status = (*txn)->Commit();
    std::printf("promoted write commit -> %s\n", status.ToString().c_str());
    if (Status s = (*follower)->Checkpoint(); !s.ok()) Die("checkpoint", s);
  }
  Report(**follower, "promoted node + new write ");
  return 0;
}
