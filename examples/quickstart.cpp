// Quickstart: open a database, create a queryable state, run transactions
// with snapshot isolation, and watch committed changes as a stream.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "core/streamsi.h"
#include "stream/stream.h"

using namespace streamsi;

int main() {
  // 1. Open an in-memory database with the MVCC/snapshot-isolation
  //    protocol (the paper's contribution). Swap `options.protocol` for
  //    kS2pl / kBocc to compare the baselines.
  DatabaseOptions options;
  options.protocol = ProtocolType::kMvcc;
  auto db = Database::Open(options);
  if (!db.ok()) {
    std::fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    return 1;
  }

  // 2. Create a queryable state (a transactional table).
  auto state = (*db)->CreateState("inventory");
  TransactionalTable<std::string, std::uint64_t> inventory(
      &(*db)->txn_manager(), *state);

  // 3. TO_STREAM: subscribe to committed changes before writing.
  ToStream<std::string, std::uint64_t> changes(&(*db)->txn_manager(),
                                               inventory.id());
  changes.Subscribe(
      [](const StreamElement<ChangeEvent<std::string, std::uint64_t>>& e) {
        if (!e.is_data()) return;
        const auto& change = e.data();
        if (change.value.has_value()) {
          std::printf("  [to_stream] %s -> %llu (cts=%llu)\n",
                      change.key.c_str(),
                      static_cast<unsigned long long>(*change.value),
                      static_cast<unsigned long long>(change.commit_ts));
        } else {
          std::printf("  [to_stream] %s deleted\n", change.key.c_str());
        }
      });

  // 4. A transaction: atomic writes, read-your-own-writes.
  {
    auto txn = (*db)->Begin();
    inventory.Put((*txn)->txn(), "apples", 10);
    inventory.Put((*txn)->txn(), "pears", 5);
    auto own = inventory.Get((*txn)->txn(), "apples");
    std::printf("inside txn: apples = %llu\n",
                static_cast<unsigned long long>(*own));
    const Status status = (*txn)->Commit();
    std::printf("commit: %s\n", status.ToString().c_str());
  }

  // 5. Snapshot isolation: a reader pins its snapshot at first read; a
  //    concurrent commit stays invisible until the next transaction.
  {
    auto reader = (*db)->Begin();
    auto before = inventory.Get((*reader)->txn(), "apples");

    auto writer = (*db)->Begin();
    inventory.Put((*writer)->txn(), "apples", 99);
    (*writer)->Commit();

    auto still = inventory.Get((*reader)->txn(), "apples");
    std::printf("reader snapshot: apples = %llu before, %llu after the "
                "concurrent commit (pinned)\n",
                static_cast<unsigned long long>(*before),
                static_cast<unsigned long long>(*still));
    (*reader)->Commit();
  }

  // 6. First-committer-wins: two writers on the same key.
  {
    auto t1 = (*db)->Begin();
    auto t2 = (*db)->Begin();
    inventory.Put((*t1)->txn(), "apples", 1);
    inventory.Put((*t2)->txn(), "apples", 2);
    std::printf("t1 commit: %s\n", (*t1)->Commit().ToString().c_str());
    std::printf("t2 commit: %s (first committer wins)\n",
                (*t2)->Commit().ToString().c_str());
  }

  // 7. Ad-hoc snapshot query (FROM(table)).
  auto rows = SnapshotOf(&(*db)->txn_manager(), inventory);
  std::printf("final inventory (%zu rows):\n", rows->size());
  for (const auto& [item, count] : *rows) {
    std::printf("  %-8s %llu\n", item.c_str(),
                static_cast<unsigned long long>(count));
  }
  return 0;
}
