// Persistence & recovery demo: committed transactions survive "crashes"
// (process restarts), unfinished multi-state group commits are purged so
// the states always come back mutually consistent (§4 requirements,
// recovery rule of §4.3), and the durability lifecycle keeps restarts
// cheap: a checkpoint bounds restart work by data since the checkpoint,
// and the durable state catalog means a restarted process is ready to
// serve WITHOUT re-declaring its schema.
//
//   $ ./examples/recovery_demo [dir]

#include <cstdio>

#include "core/streamsi.h"

using namespace streamsi;

namespace {

DatabaseOptions Options(const std::string& dir) {
  DatabaseOptions options;
  options.protocol = ProtocolType::kMvcc;
  options.backend = BackendType::kLsm;
  options.backend_options.sync_mode = SyncMode::kFsync;
  options.base_dir = dir;
  return options;
}

struct Schema {
  std::unique_ptr<Database> db;
  TransactionalTable<std::uint64_t, std::uint64_t> accounts;
  TransactionalTable<std::uint64_t, std::uint64_t> audit;
  GroupId group;
};

/// Life 1 only: declares the schema. The catalog persists it, so every
/// later life skips this entirely.
Schema CreateSchema(const std::string& dir) {
  auto db = Database::Open(Options(dir));
  if (!db.ok()) {
    std::fprintf(stderr, "open: %s\n", db.status().ToString().c_str());
    std::exit(1);
  }
  Schema schema;
  schema.db = std::move(db).value();
  schema.accounts = TransactionalTable<std::uint64_t, std::uint64_t>(
      &schema.db->txn_manager(), *schema.db->CreateState("accounts"));
  schema.audit = TransactionalTable<std::uint64_t, std::uint64_t>(
      &schema.db->txn_manager(), *schema.db->CreateState("audit"));
  schema.group =
      schema.db->CreateGroup({schema.accounts.id(), schema.audit.id()});
  const Status recovered = schema.db->Recover();
  if (!recovered.ok()) {
    std::fprintf(stderr, "recover: %s\n", recovered.ToString().c_str());
    std::exit(1);
  }
  return schema;
}

/// Later lives: Open alone replays the catalog, reopens the states and
/// recovers — restart-to-ready with no CreateState/CreateGroup calls.
Schema Reopen(const std::string& dir) {
  auto db = Database::Open(Options(dir));
  if (!db.ok()) {
    std::fprintf(stderr, "open: %s\n", db.status().ToString().c_str());
    std::exit(1);
  }
  Schema schema;
  schema.db = std::move(db).value();
  VersionedStore* accounts = schema.db->FindState("accounts");
  VersionedStore* audit = schema.db->FindState("audit");
  if (accounts == nullptr || audit == nullptr) {
    std::fprintf(stderr, "catalog did not restore the schema\n");
    std::exit(1);
  }
  schema.accounts = TransactionalTable<std::uint64_t, std::uint64_t>(
      &schema.db->txn_manager(), accounts);
  schema.audit = TransactionalTable<std::uint64_t, std::uint64_t>(
      &schema.db->txn_manager(), audit);
  schema.group = schema.db->CreateGroup({accounts->id(), audit->id()});
  return schema;
}

void Report(Schema& schema, const char* label) {
  auto txn = schema.db->Begin();
  std::uint64_t balance_total = 0;
  std::size_t accounts = 0;
  schema.accounts.Scan((*txn)->txn(),
                       [&](const std::uint64_t&, const std::uint64_t& v) {
                         balance_total += v;
                         ++accounts;
                         return true;
                       });
  std::size_t audit_rows = 0;
  schema.audit.Scan((*txn)->txn(),
                    [&](const std::uint64_t&, const std::uint64_t&) {
                      ++audit_rows;
                      return true;
                    });
  (void)(*txn)->Commit();
  std::printf("%s: %zu accounts (total %llu), %zu audit rows, group "
              "LastCTS=%llu, log segments=%zu (%llu bytes)\n",
              label, accounts,
              static_cast<unsigned long long>(balance_total), audit_rows,
              static_cast<unsigned long long>(
                  schema.db->context().LastCts(schema.group)),
              schema.db->group_log()->SegmentCount(),
              static_cast<unsigned long long>(
                  schema.db->group_log()->TotalSizeBytes()));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir =
      argc > 1 ? argv[1] : "/tmp/streamsi_recovery_demo";
  (void)fsutil::RemoveDirRecursive(dir);

  // --- Life 1: create data, commit transactions, checkpoint, "crash". ----
  {
    Schema schema = CreateSchema(dir);
    for (std::uint64_t i = 0; i < 10; ++i) {
      auto txn = schema.db->Begin();
      schema.accounts.Put((*txn)->txn(), i, 100 * (i + 1));
      schema.audit.Put((*txn)->txn(), i, i);
      const Status status = (*txn)->Commit();
      if (!status.ok()) {
        std::fprintf(stderr, "commit failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
    }
    // One aborted transaction: must leave no trace.
    {
      auto txn = schema.db->Begin();
      schema.accounts.Put((*txn)->txn(), 999, 1);
      (*txn)->Abort();
    }
    // Checkpoint: flushes the backends, cuts the group log to one segment
    // — restart work is now bounded by data since this point.
    const Status checkpointed = schema.db->Checkpoint();
    if (!checkpointed.ok()) {
      std::fprintf(stderr, "checkpoint: %s\n",
                   checkpointed.ToString().c_str());
      return 1;
    }
    Report(schema, "life 1 (checkpointed)");
    // Destructor without clean shutdown protocol == crash for our purposes:
    // durability came from the per-commit fsyncs + the checkpoint.
  }

  // --- Life 2: restart WITHOUT re-declaring states; the catalog restores
  // the schema and recovery runs inside Open. ----------------------------
  {
    Schema schema = Reopen(dir);
    Report(schema, "life 2 (recovered)  ");

    // Simulate a *torn group commit*: state `accounts` gets a version
    // persisted, but the crash hits before the group commit record is
    // written — as if the process died between phase 2 and phase 3.
    VersionedStore* store = schema.db->GetState(schema.accounts.id());
    const Timestamp torn = schema.db->context().clock().Next();
    (void)store->ApplyCommitted(EncodeToString<std::uint64_t>(0),
                                EncodeToString<std::uint64_t>(424242), false,
                                torn, 0, /*sync=*/true);
    std::printf("life 2: injected torn commit of account 0 at cts=%llu "
                "(no group record)\n",
                static_cast<unsigned long long>(torn));
  }

  // --- Life 3: recovery must purge the torn version. ----------------------
  {
    Schema schema = Reopen(dir);
    auto txn = schema.db->Begin();
    auto account0 = schema.accounts.Get((*txn)->txn(), 0);
    (void)(*txn)->Commit();
    std::printf("life 3 (recovered)  : account 0 = %llu %s\n",
                static_cast<unsigned long long>(account0.value_or(0)),
                *account0 == 100 ? "(torn commit purged: consistent)"
                                 : "(UNEXPECTED)");
    Report(schema, "life 3 (final)      ");
  }
  return 0;
}
