// Shared test helpers.

#ifndef STREAMSI_TESTS_TEST_UTIL_H_
#define STREAMSI_TESTS_TEST_UTIL_H_

#include <atomic>
#include <cstdlib>
#include <string>

#include "common/env.h"

namespace streamsi::testing {

/// Unique scratch directory, recursively deleted on destruction.
class TempDir {
 public:
  TempDir() {
    static std::atomic<int> counter{0};
    const char* base = std::getenv("TMPDIR");
    path_ = std::string(base != nullptr ? base : "/tmp") + "/streamsi_test_" +
            std::to_string(::getpid()) + "_" +
            std::to_string(counter.fetch_add(1));
    fsutil::RemoveDirRecursive(path_);
    fsutil::CreateDirIfMissing(path_);
  }

  ~TempDir() { fsutil::RemoveDirRecursive(path_); }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace streamsi::testing

#endif  // STREAMSI_TESTS_TEST_UTIL_H_
