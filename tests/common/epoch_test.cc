#include "common/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace streamsi {
namespace {

// The global manager is shared across tests (and with any store activity in
// this binary), so assertions track deltas via instrumented deleters rather
// than absolute garbage counts.

TEST(EpochTest, RetiredObjectIsEventuallyFreed) {
  EpochManager& manager = EpochManager::Global();
  std::atomic<int> freed{0};
  struct Probe {
    std::atomic<int>* counter;
    ~Probe() { counter->fetch_add(1); }
  };
  manager.Retire(new Probe{&freed});
  // No reader is active: two reclaim passes advance the epoch twice, which
  // is exactly the retirement horizon.
  manager.DrainForTesting();
  EXPECT_EQ(freed.load(), 1);
}

TEST(EpochTest, BackgroundReclaimerDrainsWithoutManualSweeps) {
  EpochManager& manager = EpochManager::Global();
  manager.StartBackgroundReclaimer(std::chrono::milliseconds(1));
  EXPECT_TRUE(manager.reclaimer_running());

  std::atomic<int> freed{0};
  struct Probe {
    std::atomic<int>* counter;
    ~Probe() { counter->fetch_add(1); }
  };
  constexpr int kProbes = 10;
  for (int i = 0; i < kProbes; ++i) manager.Retire(new Probe{&freed});

  // No TryReclaim/DrainForTesting from this thread: the background cadence
  // alone must free the garbage (two epoch advances => within a few ticks).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (freed.load() < kProbes &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(freed.load(), kProbes);
  manager.StopBackgroundReclaimer();
  EXPECT_FALSE(manager.reclaimer_running());
}

TEST(EpochTest, BackgroundReclaimerRefCountsAcrossOwners) {
  EpochManager& manager = EpochManager::Global();
  manager.StartBackgroundReclaimer(std::chrono::milliseconds(1));
  manager.StartBackgroundReclaimer(std::chrono::milliseconds(1));
  manager.StopBackgroundReclaimer();
  // First owner gone, second still holds a reference.
  EXPECT_TRUE(manager.reclaimer_running());
  manager.StopBackgroundReclaimer();
  EXPECT_FALSE(manager.reclaimer_running());
  // Stop without start is a no-op, and a restart works.
  manager.StopBackgroundReclaimer();
  manager.StartBackgroundReclaimer(std::chrono::milliseconds(1));
  EXPECT_TRUE(manager.reclaimer_running());
  manager.StopBackgroundReclaimer();
}

TEST(EpochTest, ActiveGuardBlocksReclamation) {
  EpochManager& manager = EpochManager::Global();
  manager.DrainForTesting();  // start from a clean slate

  std::atomic<int> freed{0};
  struct Probe {
    std::atomic<int>* counter;
    ~Probe() { counter->fetch_add(1); }
  };

  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
  std::thread reader([&] {
    EpochGuard guard;
    pinned.store(true);
    while (!release.load()) {
      std::this_thread::yield();
    }
  });
  while (!pinned.load()) std::this_thread::yield();

  manager.Retire(new Probe{&freed});
  // The reader pinned an epoch <= the retire epoch: the probe must survive
  // any number of reclaim attempts.
  for (int i = 0; i < 10; ++i) manager.TryReclaim();
  EXPECT_EQ(freed.load(), 0);

  release.store(true);
  reader.join();
  manager.DrainForTesting();
  EXPECT_EQ(freed.load(), 1);
}

TEST(EpochTest, GuardsAreReentrant) {
  EpochManager& manager = EpochManager::Global();
  const std::uint64_t before = manager.CurrentEpoch();
  {
    EpochGuard outer;
    {
      EpochGuard inner;  // must not deadlock or double-register
      EpochGuard third;
    }
    // Still pinned: the epoch cannot advance past us by more than one step.
    manager.TryReclaim();
    EXPECT_LE(manager.CurrentEpoch(), before + 1);
  }
  SUCCEED();
}

TEST(EpochTest, ManyThreadsEnterAndExit) {
  constexpr int kThreads = 16;
  constexpr int kIterations = 500;
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> entries{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIterations; ++i) {
        EpochGuard guard;
        entries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(entries.load(), static_cast<std::uint64_t>(kThreads) * kIterations);
  // All guards closed: reclamation must be able to make progress again.
  EpochManager::Global().TryReclaim();
  SUCCEED();
}

}  // namespace
}  // namespace streamsi
