#include "common/status.h"

#include <gtest/gtest.h>

namespace streamsi {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, FactoryMethodsSetCode) {
  EXPECT_TRUE(Status::NotFound().IsNotFound());
  EXPECT_TRUE(Status::Conflict().IsConflict());
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::Busy().IsBusy());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
  EXPECT_TRUE(Status::IoError().IsIoError());
  EXPECT_TRUE(Status::Corruption().IsCorruption());
  EXPECT_TRUE(Status::NotSupported().IsNotSupported());
  EXPECT_TRUE(Status::ResourceExhausted().IsResourceExhausted());
  EXPECT_TRUE(Status::TimedOut().IsTimedOut());
}

TEST(StatusTest, MessageIsCarried) {
  Status s = Status::NotFound("key 42");
  EXPECT_EQ(s.message(), "key 42");
  EXPECT_EQ(s.ToString(), "NotFound: key 42");
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::Conflict("fcw");
  Status copy = s;
  EXPECT_TRUE(copy.IsConflict());
  EXPECT_EQ(copy.message(), "fcw");
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound() == Status::Conflict());
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    STREAMSI_RETURN_NOT_OK(Status::IoError("disk"));
    return Status::OK();
  };
  EXPECT_TRUE(fails().IsIoError());

  auto succeeds = []() -> Status {
    STREAMSI_RETURN_NOT_OK(Status::OK());
    return Status::Conflict();
  };
  EXPECT_TRUE(succeeds().IsConflict());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "Ok");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kConflict), "Conflict");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kTimedOut), "TimedOut");
}

}  // namespace
}  // namespace streamsi
