#include "common/slot_mask.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace streamsi {
namespace {

TEST(SlotMaskTest, AcquireReturnsLowestFree) {
  AtomicSlotMask mask;
  EXPECT_EQ(mask.Acquire(), 0);
  EXPECT_EQ(mask.Acquire(), 1);
  EXPECT_EQ(mask.Acquire(), 2);
  EXPECT_EQ(mask.Count(), 3);
}

TEST(SlotMaskTest, ReleaseMakesSlotReusable) {
  AtomicSlotMask mask;
  EXPECT_EQ(mask.Acquire(), 0);
  EXPECT_EQ(mask.Acquire(), 1);
  mask.Release(0);
  EXPECT_FALSE(mask.IsSet(0));
  EXPECT_EQ(mask.Acquire(), 0);
}

TEST(SlotMaskTest, CapacityLimitsAcquire) {
  AtomicSlotMask mask;
  EXPECT_EQ(mask.Acquire(2), 0);
  EXPECT_EQ(mask.Acquire(2), 1);
  EXPECT_EQ(mask.Acquire(2), AtomicSlotMask::kNoSlot);
  EXPECT_EQ(mask.Acquire(3), 2);  // larger capacity frees up slot 2
}

TEST(SlotMaskTest, FullMaskRejects) {
  AtomicSlotMask mask;
  for (int i = 0; i < AtomicSlotMask::kMaxSlots; ++i) {
    EXPECT_EQ(mask.Acquire(), i);
  }
  EXPECT_EQ(mask.Acquire(), AtomicSlotMask::kNoSlot);
  mask.Release(17);
  EXPECT_EQ(mask.Acquire(), 17);
}

TEST(SlotMaskTest, AcquireSpecificSlot) {
  AtomicSlotMask mask;
  EXPECT_TRUE(mask.AcquireSlot(5));
  EXPECT_FALSE(mask.AcquireSlot(5));
  EXPECT_TRUE(mask.IsSet(5));
  // Acquire still takes the lowest free slot.
  EXPECT_EQ(mask.Acquire(), 0);
}

TEST(SlotMaskTest, RawReflectsBits) {
  AtomicSlotMask mask;
  mask.AcquireSlot(0);
  mask.AcquireSlot(3);
  EXPECT_EQ(mask.Raw(), 0b1001u);
}

TEST(SlotMaskTest, ConcurrentAcquireIsUnique) {
  AtomicSlotMask mask;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 8;  // 64 total
  std::vector<std::vector<int>> got(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int slot = mask.Acquire();
        ASSERT_NE(slot, AtomicSlotMask::kNoSlot);
        got[t].push_back(slot);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  std::vector<bool> seen(64, false);
  for (const auto& slots : got) {
    for (int slot : slots) {
      EXPECT_FALSE(seen[slot]) << "slot " << slot << " handed out twice";
      seen[slot] = true;
    }
  }
  EXPECT_EQ(mask.Count(), 64);
}

TEST(SlotMaskTest, ConcurrentAcquireReleaseChurn) {
  AtomicSlotMask mask;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        const int slot = mask.Acquire(16);
        if (slot != AtomicSlotMask::kNoSlot) mask.Release(slot);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mask.Count(), 0);
}

}  // namespace
}  // namespace streamsi
