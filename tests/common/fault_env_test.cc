#include "common/fault_env.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace streamsi {
namespace {

TEST(FaultScheduleTest, ArmAfterCountFires) {
  FaultSchedule schedule;
  schedule.Arm("p", /*after=*/2, /*count=*/2, Status::IoError("boom"));
  EXPECT_TRUE(schedule.Check("p").ok());   // hit 1: within `after`
  EXPECT_TRUE(schedule.Check("p").ok());   // hit 2: within `after`
  EXPECT_TRUE(schedule.Check("p").IsIoError());  // fires
  EXPECT_TRUE(schedule.Check("p").IsIoError());  // fires
  EXPECT_TRUE(schedule.Check("p").ok());   // count exhausted
  EXPECT_EQ(schedule.HitCount("p"), 5u);
  EXPECT_EQ(schedule.injected_failures(), 2u);
}

TEST(FaultScheduleTest, NegativeCountFiresForever) {
  FaultSchedule schedule;
  schedule.Arm("p", 0, /*count=*/-1, Status::NoSpace("full"));
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(schedule.Check("p").IsNoSpace());
  schedule.Disarm("p");
  EXPECT_TRUE(schedule.Check("p").ok());
}

TEST(FaultScheduleTest, UnarmedPointsPass) {
  FaultSchedule schedule;
  EXPECT_TRUE(schedule.Check("never-armed").ok());
  EXPECT_EQ(schedule.HitCount("never-armed"), 0u);
}

class FaultEnvTest : public ::testing::Test {
 protected:
  FaultEnv env_{/*seed=*/42};
};

TEST_F(FaultEnvTest, WriteReadRoundTripInMemory) {
  ASSERT_TRUE(env_.CreateDirIfMissing("/db").ok());
  auto file = env_.NewWritableFile("/db/f", true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("hello world").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Close().ok());

  auto reader = env_.NewRandomAccessFile("/db/f");
  ASSERT_TRUE(reader.ok());
  std::string out;
  ASSERT_TRUE((*reader)->Read(6, 5, &out).ok());
  EXPECT_EQ(out, "world");
  std::string contents;
  ASSERT_TRUE(env_.ReadFileToString("/db/f", &contents).ok());
  EXPECT_EQ(contents, "hello world");
}

TEST_F(FaultEnvTest, UnsyncedBytesDieInPowerCut) {
  auto file = env_.NewWritableFile("/f", true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("durable").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Append("+volatile").ok());  // never synced
  EXPECT_EQ(env_.DurableBytes("/f"), 7u);
  EXPECT_EQ(env_.WrittenBytes("/f"), 16u);

  env_.CrashAndRecoverFs();
  std::string contents;
  ASSERT_TRUE(env_.ReadFileToString("/f", &contents).ok());
  EXPECT_EQ(contents, "durable");
}

TEST_F(FaultEnvTest, KeepRandomPrefixRetainsAtMostUnsyncedSuffix) {
  auto file = env_.NewWritableFile("/f", true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("0123").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Append("abcdefgh").ok());

  env_.CrashAndRecoverFs(FaultEnv::CrashMode::kKeepRandomPrefix);
  std::string contents;
  ASSERT_TRUE(env_.ReadFileToString("/f", &contents).ok());
  // The synced prefix always survives; some prefix of the unsynced suffix
  // may ride along (torn tail).
  ASSERT_GE(contents.size(), 4u);
  ASSERT_LE(contents.size(), 12u);
  EXPECT_EQ(contents.substr(0, 4), "0123");
  EXPECT_EQ(contents, std::string("0123abcdefgh").substr(0, contents.size()));
}

TEST_F(FaultEnvTest, PowerCutAfterOpsFailsAllLaterIo) {
  env_.CutPowerAfterOps(2);
  auto file = env_.NewWritableFile("/f", true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("one").ok());  // op 1
  const Status cut = (*file)->Append("two");  // op 2: crosses the budget
  EXPECT_FALSE(cut.ok());
  EXPECT_TRUE(env_.PowerIsCut());
  EXPECT_FALSE((*file)->Append("three").ok());
  EXPECT_FALSE((*file)->Sync().ok());
  EXPECT_FALSE(env_.NewWritableFile("/g", true).ok());

  env_.CrashAndRecoverFs();
  EXPECT_FALSE(env_.PowerIsCut());
  std::string contents;
  ASSERT_TRUE(env_.ReadFileToString("/f", &contents).ok());
  // "one" was written but never synced: gone. The torn op 2 bytes were
  // unsynced too.
  EXPECT_TRUE(contents.empty());
}

TEST_F(FaultEnvTest, TornAppendLandsStrictPrefix) {
  auto file = env_.NewWritableFile("/f", true);
  ASSERT_TRUE(file.ok());
  env_.TearNextAppend();
  EXPECT_TRUE((*file)->Append("0123456789").IsIoError());
  EXPECT_LT(env_.WrittenBytes("/f"), 10u);  // strict prefix
  // The tear is one-shot.
  ASSERT_TRUE((*file)->Append("ok").ok());
}

TEST_F(FaultEnvTest, NoSpaceBudgetFailsWithNoSpaceAndPartialFill) {
  auto file = env_.NewWritableFile("/f", true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("12345").ok());
  env_.SetNoSpaceByteBudget(3);  // three more bytes fit
  EXPECT_TRUE((*file)->Append("abcdef").IsNoSpace());
  EXPECT_EQ(env_.WrittenBytes("/f"), 8u);  // partial bytes landed
  EXPECT_TRUE((*file)->Append("x").IsNoSpace());
  env_.SetNoSpaceByteBudget(FaultEnv::kUnlimited);
  EXPECT_TRUE((*file)->Append("x").ok());
}

TEST_F(FaultEnvTest, ScheduledSyncFailure) {
  env_.schedule().Arm("env.sync", /*after=*/1, /*count=*/1,
                      Status::IoError("lying fsync"));
  auto file = env_.NewWritableFile("/f", true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("a").ok());
  ASSERT_TRUE((*file)->Sync().ok());            // first sync passes
  EXPECT_TRUE((*file)->Sync().IsIoError());     // second injected
  ASSERT_TRUE((*file)->Sync().ok());            // one-shot
  EXPECT_EQ(env_.schedule().injected_failures(), 1u);
}

TEST_F(FaultEnvTest, RenameIsAtomicAndDurable) {
  auto file = env_.NewWritableFile("/f.tmp", true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("manifest").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Close().ok());
  ASSERT_TRUE(env_.RenameFile("/f.tmp", "/f").ok());
  EXPECT_FALSE(env_.FileExists("/f.tmp"));

  env_.CrashAndRecoverFs();
  std::string contents;
  ASSERT_TRUE(env_.ReadFileToString("/f", &contents).ok());
  EXPECT_EQ(contents, "manifest");
}

TEST_F(FaultEnvTest, DirectoryOpsAndListNumberedFiles) {
  ASSERT_TRUE(env_.CreateDirIfMissing("/db").ok());
  ASSERT_TRUE(env_.WriteStringToFileAtomic("/db/log.000001", "a").ok());
  ASSERT_TRUE(env_.WriteStringToFileAtomic("/db/log.000003", "b").ok());
  ASSERT_TRUE(env_.WriteStringToFileAtomic("/db/other", "c").ok());
  std::vector<std::uint64_t> numbers;
  ASSERT_TRUE(env_.ListNumberedFiles("/db", "log.", "", &numbers).ok());
  std::sort(numbers.begin(), numbers.end());
  EXPECT_EQ(numbers, (std::vector<std::uint64_t>{1, 3}));

  std::vector<std::string> names;
  ASSERT_TRUE(env_.ListDir("/db", &names).ok());
  EXPECT_EQ(names.size(), 3u);

  ASSERT_TRUE(env_.RemoveDirRecursive("/db").ok());
  EXPECT_FALSE(env_.FileExists("/db/log.000001"));
  EXPECT_FALSE(env_.FileExists("/db"));
}

TEST_F(FaultEnvTest, MetadataOpsCountAgainstThePowerCutBudget) {
  ASSERT_TRUE(env_.WriteStringToFileAtomic("/a", "x").ok());
  ASSERT_TRUE(env_.WriteStringToFileAtomic("/b", "y").ok());
  const std::uint64_t before = env_.OpCount();
  ASSERT_TRUE(env_.RenameFile("/a", "/a2").ok());      // counted
  ASSERT_TRUE(env_.RemoveFile("/b").ok());             // counted
  ASSERT_TRUE(env_.CreateDirIfMissing("/dir").ok());   // counted
  EXPECT_EQ(env_.OpCount(), before + 3);
}

TEST_F(FaultEnvTest, PowerCutOnRenameAppliesTheRenameThenFails) {
  ASSERT_TRUE(env_.WriteStringToFileAtomic("/f.tmp", "manifest").ok());
  env_.CutPowerAfterOps(1);
  // The journal entry reached the disk as the power died: the rename takes
  // effect, but the op reports the cut and all later IO fails.
  EXPECT_FALSE(env_.RenameFile("/f.tmp", "/f").ok());
  EXPECT_TRUE(env_.PowerIsCut());
  env_.CrashAndRecoverFs();
  EXPECT_TRUE(env_.FileExists("/f"));
  EXPECT_FALSE(env_.FileExists("/f.tmp"));
}

TEST_F(FaultEnvTest, PowerCutOnRemoveAppliesTheRemoveThenFails) {
  ASSERT_TRUE(env_.WriteStringToFileAtomic("/doomed", "x").ok());
  env_.CutPowerAfterOps(1);
  EXPECT_FALSE(env_.RemoveFile("/doomed").ok());
  EXPECT_TRUE(env_.PowerIsCut());
  EXPECT_FALSE(env_.RemoveFile("/doomed").ok());  // power stays off
  env_.CrashAndRecoverFs();
  EXPECT_FALSE(env_.FileExists("/doomed"));
}

TEST_F(FaultEnvTest, ScheduledRenameAndRemoveFailures) {
  ASSERT_TRUE(env_.WriteStringToFileAtomic("/a", "x").ok());
  ASSERT_TRUE(env_.WriteStringToFileAtomic("/b", "y").ok());
  env_.schedule().Arm("env.rename", /*after=*/0, /*count=*/1,
                      Status::IoError("rename eio"));
  env_.schedule().Arm("env.remove", /*after=*/0, /*count=*/1,
                      Status::IoError("unlink eio"));
  // Scheduled failures fire BEFORE the effect: nothing moved, nothing gone.
  EXPECT_TRUE(env_.RenameFile("/a", "/a2").IsIoError());
  EXPECT_TRUE(env_.FileExists("/a"));
  EXPECT_FALSE(env_.FileExists("/a2"));
  EXPECT_TRUE(env_.RemoveFile("/b").IsIoError());
  EXPECT_TRUE(env_.FileExists("/b"));
  // One-shot: the retries pass.
  EXPECT_TRUE(env_.RenameFile("/a", "/a2").ok());
  EXPECT_TRUE(env_.RemoveFile("/b").ok());
  EXPECT_EQ(env_.schedule().injected_failures(), 2u);
}

TEST_F(FaultEnvTest, SameSeedSameTearSameSurvivors) {
  auto run = [](std::uint64_t seed) {
    FaultEnv env(seed);
    auto file = env.NewWritableFile("/f", true);
    EXPECT_TRUE(file.ok());
    EXPECT_TRUE((*file)->Append("0123").ok());
    EXPECT_TRUE((*file)->Sync().ok());
    EXPECT_TRUE((*file)->Append("abcdefghij").ok());
    env.CrashAndRecoverFs(FaultEnv::CrashMode::kKeepRandomPrefix);
    std::string contents;
    EXPECT_TRUE(env.ReadFileToString("/f", &contents).ok());
    return contents;
  };
  EXPECT_EQ(run(7), run(7));  // determinism: seed fully decides the outcome
}

}  // namespace
}  // namespace streamsi
