#include "common/clock.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

namespace streamsi {
namespace {

TEST(ClockTest, StrictlyIncreasing) {
  LogicalClock clock;
  Timestamp prev = clock.Next();
  for (int i = 0; i < 1000; ++i) {
    const Timestamp next = clock.Next();
    EXPECT_GT(next, prev);
    prev = next;
  }
}

TEST(ClockTest, NowDoesNotAdvance) {
  LogicalClock clock;
  clock.Next();
  clock.Next();
  EXPECT_EQ(clock.Now(), clock.Now());
  EXPECT_EQ(clock.Now(), 2u);
}

TEST(ClockTest, AdvanceToFastForwards) {
  LogicalClock clock;
  clock.AdvanceTo(100);
  EXPECT_EQ(clock.Now(), 100u);
  EXPECT_EQ(clock.Next(), 101u);
  clock.AdvanceTo(50);  // never goes backwards
  EXPECT_EQ(clock.Now(), 101u);
}

TEST(ClockTest, ConcurrentNextIsUnique) {
  LogicalClock clock;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::vector<Timestamp>> got(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      got[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) got[t].push_back(clock.Next());
    });
  }
  for (auto& thread : threads) thread.join();
  std::set<Timestamp> all;
  for (const auto& v : got) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_EQ(*all.rbegin(), static_cast<Timestamp>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace streamsi
