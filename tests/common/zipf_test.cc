#include "common/zipf.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace streamsi {
namespace {

TEST(ZipfTest, ThetaZeroIsUniformish) {
  ZipfianGenerator gen(1000, 0.0, 7);
  std::map<std::uint64_t, int> histogram;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) histogram[gen.Next()]++;
  // Every drawn value is in range, and no value dominates.
  for (const auto& [value, count] : histogram) {
    EXPECT_LT(value, 1000u);
    EXPECT_LT(count, kSamples / 100);  // <1 % each for uniform over 1000
  }
}

TEST(ZipfTest, HigherThetaConcentratesMass) {
  constexpr int kSamples = 50000;
  auto hottest_share = [&](double theta) {
    ZipfianGenerator gen(100000, theta, 11);
    int zero_count = 0;
    for (int i = 0; i < kSamples; ++i) {
      if (gen.Next() == 0) ++zero_count;
    }
    return static_cast<double>(zero_count) / kSamples;
  };
  const double share_05 = hottest_share(0.5);
  const double share_15 = hottest_share(1.5);
  const double share_29 = hottest_share(2.9);
  EXPECT_LT(share_05, share_15);
  EXPECT_LT(share_15, share_29);
  // Paper §5.1: theta = 2.9 => ~82 % hits on the same key.
  EXPECT_GT(share_29, 0.75);
  EXPECT_LT(share_29, 0.90);
}

TEST(ZipfTest, HottestProbabilityMatchesEmpirical) {
  ZipfianGenerator gen(10000, 2.9, 3);
  const double predicted = gen.HottestProbability();
  EXPECT_GT(predicted, 0.75);
  EXPECT_LT(predicted, 0.90);
}

TEST(ZipfTest, DeterministicForSeed) {
  ZipfianGenerator a(1000, 1.2, 42);
  ZipfianGenerator b(1000, 1.2, 42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(ZipfTest, DifferentSeedsDiffer) {
  ZipfianGenerator a(100000, 0.8, 1);
  ZipfianGenerator b(100000, 0.8, 2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 900);
}

TEST(ZipfTest, ScrambledStaysInRange) {
  ZipfianGenerator gen(12345, 1.0, 9);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(gen.ScrambledNext(), 12345u);
}

TEST(ZipfTest, ScrambledDecorrelatesHotKey) {
  // The hottest scrambled key should not be rank 0 in general, but should
  // still collect the same mass.
  ZipfianGenerator gen(10000, 2.5, 13);
  std::map<std::uint64_t, int> histogram;
  for (int i = 0; i < 20000; ++i) histogram[gen.ScrambledNext()]++;
  int max_count = 0;
  for (const auto& [key, count] : histogram) max_count = std::max(max_count, count);
  EXPECT_GT(max_count, 20000 / 2);  // still heavily skewed
}

class ZipfRangeTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfRangeTest, AllDrawsInRange) {
  const double theta = GetParam();
  ZipfianGenerator gen(1 << 16, theta, 21);
  for (int i = 0; i < 20000; ++i) {
    EXPECT_LT(gen.Next(), 1u << 16);
  }
}

INSTANTIATE_TEST_SUITE_P(ThetaSweep, ZipfRangeTest,
                         ::testing::Values(0.0, 0.5, 0.99, 1.0, 1.5, 2.0, 2.5,
                                           2.9, 3.0));

}  // namespace
}  // namespace streamsi
