#include "common/env.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tests/test_util.h"

namespace streamsi {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  Env* env_ = Env::Default();
  testing::TempDir dir_;
};

TEST_F(EnvTest, WriteReadRoundTrip) {
  const std::string path = dir_.path() + "/f";
  {
    auto file = env_->NewWritableFile(path, /*truncate=*/true);
    ASSERT_TRUE(file.ok()) << file.status().ToString();
    ASSERT_TRUE((*file)->Append("hello ").ok());
    ASSERT_TRUE((*file)->Append("world").ok());
    EXPECT_EQ((*file)->size(), 11u);
    ASSERT_TRUE((*file)->Sync().ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  std::string contents;
  ASSERT_TRUE(env_->ReadFileToString(path, &contents).ok());
  EXPECT_EQ(contents, "hello world");
}

TEST_F(EnvTest, AppendModePreservesExisting) {
  const std::string path = dir_.path() + "/f";
  {
    auto file = env_->NewWritableFile(path, /*truncate=*/true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("first").ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  {
    auto file = env_->NewWritableFile(path, /*truncate=*/false);  // append
    ASSERT_TRUE(file.ok());
    EXPECT_EQ((*file)->size(), 5u);
    ASSERT_TRUE((*file)->Append("+second").ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  std::string contents;
  ASSERT_TRUE(env_->ReadFileToString(path, &contents).ok());
  EXPECT_EQ(contents, "first+second");
}

TEST_F(EnvTest, RandomAccessReadsAtOffset) {
  const std::string path = dir_.path() + "/f";
  {
    auto file = env_->NewWritableFile(path, /*truncate=*/true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("0123456789").ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  auto file = env_->NewRandomAccessFile(path);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_EQ((*file)->size(), 10u);
  std::string out;
  ASSERT_TRUE((*file)->Read(3, 4, &out).ok());
  EXPECT_EQ(out, "3456");
  EXPECT_TRUE((*file)->Read(8, 5, &out).IsIoError());  // beyond EOF
}

TEST_F(EnvTest, AtomicWriteReplacesContent) {
  const std::string path = dir_.path() + "/f";
  ASSERT_TRUE(env_->WriteStringToFileAtomic(path, "v1").ok());
  ASSERT_TRUE(env_->WriteStringToFileAtomic(path, "v2-longer").ok());
  std::string contents;
  ASSERT_TRUE(env_->ReadFileToString(path, &contents).ok());
  EXPECT_EQ(contents, "v2-longer");
  EXPECT_FALSE(env_->FileExists(path + ".tmp"));
}

TEST_F(EnvTest, ListDirSkipsDotEntries) {
  ASSERT_TRUE(env_->WriteStringToFileAtomic(dir_.path() + "/a", "x").ok());
  ASSERT_TRUE(env_->WriteStringToFileAtomic(dir_.path() + "/b", "y").ok());
  std::vector<std::string> names;
  ASSERT_TRUE(env_->ListDir(dir_.path(), &names).ok());
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b"}));
}

TEST_F(EnvTest, RemoveDirRecursive) {
  const std::string sub = dir_.path() + "/x/y";
  ASSERT_TRUE(env_->CreateDirIfMissing(dir_.path() + "/x").ok());
  ASSERT_TRUE(env_->CreateDirIfMissing(sub).ok());
  ASSERT_TRUE(env_->WriteStringToFileAtomic(sub + "/f", "data").ok());
  ASSERT_TRUE(env_->RemoveDirRecursive(dir_.path() + "/x").ok());
  EXPECT_FALSE(env_->FileExists(dir_.path() + "/x"));
  // Removing a non-existing tree is OK.
  EXPECT_TRUE(env_->RemoveDirRecursive(dir_.path() + "/x").ok());
}

TEST_F(EnvTest, OpenMissingFileFails) {
  auto file = env_->NewRandomAccessFile(dir_.path() + "/missing");
  EXPECT_TRUE(file.status().IsIoError());
  std::string contents;
  EXPECT_TRUE(env_->ReadFileToString(dir_.path() + "/missing", &contents)
                  .IsIoError());
}

// The fsutil wrappers remain the terse spelling for "the real filesystem"
// in tests/benches; they must stay behavior-identical to Env::Default().
TEST_F(EnvTest, FsutilForwardsToDefaultEnv) {
  const std::string path = dir_.path() + "/f";
  ASSERT_TRUE(fsutil::WriteStringToFileAtomic(path, "data").ok());
  EXPECT_TRUE(fsutil::FileExists(path));
  std::uint64_t size = 0;
  ASSERT_TRUE(fsutil::FileSize(path, &size).ok());
  EXPECT_EQ(size, 4u);
  std::string contents;
  ASSERT_TRUE(fsutil::ReadFileToString(path, &contents).ok());
  EXPECT_EQ(contents, "data");
  ASSERT_TRUE(fsutil::RemoveFile(path).ok());
  EXPECT_FALSE(fsutil::FileExists(path));
}

TEST_F(EnvTest, ListNumberedFiles) {
  ASSERT_TRUE(env_->WriteStringToFileAtomic(dir_.path() + "/wal_0001.log",
                                            "a").ok());
  ASSERT_TRUE(env_->WriteStringToFileAtomic(dir_.path() + "/wal_0042.log",
                                            "b").ok());
  ASSERT_TRUE(env_->WriteStringToFileAtomic(dir_.path() + "/other.txt",
                                            "c").ok());
  std::vector<std::uint64_t> numbers;
  ASSERT_TRUE(
      env_->ListNumberedFiles(dir_.path(), "wal_", ".log", &numbers).ok());
  std::sort(numbers.begin(), numbers.end());
  EXPECT_EQ(numbers, (std::vector<std::uint64_t>{1, 42}));
  // A missing directory lists nothing (and is not an error).
  numbers.clear();
  EXPECT_TRUE(env_->ListNumberedFiles(dir_.path() + "/gone", "wal_", ".log",
                                      &numbers)
                  .ok());
  EXPECT_TRUE(numbers.empty());
}

}  // namespace
}  // namespace streamsi
