#include "common/env.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace streamsi {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  testing::TempDir dir_;
};

TEST_F(EnvTest, WriteReadRoundTrip) {
  const std::string path = dir_.path() + "/f";
  {
    WritableFile file;
    ASSERT_TRUE(file.Open(path, true).ok());
    ASSERT_TRUE(file.Append("hello ").ok());
    ASSERT_TRUE(file.Append("world").ok());
    EXPECT_EQ(file.size(), 11u);
    ASSERT_TRUE(file.Sync().ok());
    ASSERT_TRUE(file.Close().ok());
  }
  std::string contents;
  ASSERT_TRUE(fsutil::ReadFileToString(path, &contents).ok());
  EXPECT_EQ(contents, "hello world");
}

TEST_F(EnvTest, AppendModePreservesExisting) {
  const std::string path = dir_.path() + "/f";
  {
    WritableFile file;
    ASSERT_TRUE(file.Open(path, true).ok());
    ASSERT_TRUE(file.Append("first").ok());
    ASSERT_TRUE(file.Close().ok());
  }
  {
    WritableFile file;
    ASSERT_TRUE(file.Open(path, false).ok());  // append
    EXPECT_EQ(file.size(), 5u);
    ASSERT_TRUE(file.Append("+second").ok());
    ASSERT_TRUE(file.Close().ok());
  }
  std::string contents;
  ASSERT_TRUE(fsutil::ReadFileToString(path, &contents).ok());
  EXPECT_EQ(contents, "first+second");
}

TEST_F(EnvTest, RandomAccessReadsAtOffset) {
  const std::string path = dir_.path() + "/f";
  {
    WritableFile file;
    ASSERT_TRUE(file.Open(path, true).ok());
    ASSERT_TRUE(file.Append("0123456789").ok());
    ASSERT_TRUE(file.Close().ok());
  }
  RandomAccessFile file;
  ASSERT_TRUE(file.Open(path).ok());
  EXPECT_EQ(file.size(), 10u);
  std::string out;
  ASSERT_TRUE(file.Read(3, 4, &out).ok());
  EXPECT_EQ(out, "3456");
  EXPECT_TRUE(file.Read(8, 5, &out).IsIoError());  // beyond EOF
}

TEST_F(EnvTest, AtomicWriteReplacesContent) {
  const std::string path = dir_.path() + "/f";
  ASSERT_TRUE(fsutil::WriteStringToFileAtomic(path, "v1").ok());
  ASSERT_TRUE(fsutil::WriteStringToFileAtomic(path, "v2-longer").ok());
  std::string contents;
  ASSERT_TRUE(fsutil::ReadFileToString(path, &contents).ok());
  EXPECT_EQ(contents, "v2-longer");
  EXPECT_FALSE(fsutil::FileExists(path + ".tmp"));
}

TEST_F(EnvTest, ListDirSkipsDotEntries) {
  ASSERT_TRUE(fsutil::WriteStringToFileAtomic(dir_.path() + "/a", "x").ok());
  ASSERT_TRUE(fsutil::WriteStringToFileAtomic(dir_.path() + "/b", "y").ok());
  std::vector<std::string> names;
  ASSERT_TRUE(fsutil::ListDir(dir_.path(), &names).ok());
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b"}));
}

TEST_F(EnvTest, RemoveDirRecursive) {
  const std::string sub = dir_.path() + "/x/y";
  ASSERT_TRUE(fsutil::CreateDirIfMissing(dir_.path() + "/x").ok());
  ASSERT_TRUE(fsutil::CreateDirIfMissing(sub).ok());
  ASSERT_TRUE(fsutil::WriteStringToFileAtomic(sub + "/f", "data").ok());
  ASSERT_TRUE(fsutil::RemoveDirRecursive(dir_.path() + "/x").ok());
  EXPECT_FALSE(fsutil::FileExists(dir_.path() + "/x"));
  // Removing a non-existing tree is OK.
  EXPECT_TRUE(fsutil::RemoveDirRecursive(dir_.path() + "/x").ok());
}

TEST_F(EnvTest, OpenMissingFileFails) {
  RandomAccessFile file;
  EXPECT_TRUE(file.Open(dir_.path() + "/missing").IsIoError());
  std::string contents;
  EXPECT_TRUE(
      fsutil::ReadFileToString(dir_.path() + "/missing", &contents)
          .IsIoError());
}

}  // namespace
}  // namespace streamsi
