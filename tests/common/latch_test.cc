#include "common/latch.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace streamsi {
namespace {

TEST(SpinLockTest, MutualExclusion) {
  SpinLock lock;
  long counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50000; ++i) {
        std::lock_guard<SpinLock> guard(lock);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter, 4 * 50000);
}

TEST(SpinLockTest, TryLock) {
  SpinLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(RwLatchTest, MultipleReaders) {
  RwLatch latch;
  latch.LockShared();
  latch.LockShared();
  EXPECT_TRUE(latch.TryLockShared());
  latch.UnlockShared();
  latch.UnlockShared();
  latch.UnlockShared();
  EXPECT_TRUE(latch.TryLockExclusive());
  latch.UnlockExclusive();
}

TEST(RwLatchTest, WriterExcludesReaders) {
  RwLatch latch;
  latch.LockExclusive();
  EXPECT_FALSE(latch.TryLockShared());
  EXPECT_FALSE(latch.TryLockExclusive());
  latch.UnlockExclusive();
  EXPECT_TRUE(latch.TryLockShared());
  latch.UnlockShared();
}

TEST(RwLatchTest, ReaderExcludesWriter) {
  RwLatch latch;
  latch.LockShared();
  EXPECT_FALSE(latch.TryLockExclusive());
  latch.UnlockShared();
  EXPECT_TRUE(latch.TryLockExclusive());
  latch.UnlockExclusive();
}

TEST(RwLatchTest, ConcurrentReadersAndWriters) {
  RwLatch latch;
  long value = 0;
  std::atomic<bool> torn{false};
  std::vector<std::thread> threads;
  // Writers increment by 2 under the latch; readers must never observe an
  // odd value (the writer makes it odd transiently).
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        ExclusiveGuard guard(latch);
        ++value;
        ++value;
      }
    });
  }
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        SharedGuard guard(latch);
        if (value % 2 != 0) torn.store(true);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(torn.load());
  EXPECT_EQ(value, 2 * 2 * 20000);
}

}  // namespace
}  // namespace streamsi
