#include "common/coding.h"

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/serde.h"

namespace streamsi {
namespace {

TEST(CodingTest, Fixed32RoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xDEADBEEFu);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(DecodeFixed32(buf.data()), 0xDEADBEEFu);
}

TEST(CodingTest, Fixed64RoundTrip) {
  std::string buf;
  PutFixed64(&buf, 0x0123456789ABCDEFull);
  ASSERT_EQ(buf.size(), 8u);
  EXPECT_EQ(DecodeFixed64(buf.data()), 0x0123456789ABCDEFull);
}

TEST(CodingTest, Varint32RoundTrip) {
  for (std::uint32_t v :
       {0u, 1u, 127u, 128u, 300u, 16384u, 0xFFFFFFFFu}) {
    std::string buf;
    PutVarint32(&buf, v);
    std::uint32_t out = 0;
    const char* p = GetVarint32(buf.data(), buf.data() + buf.size(), &out);
    ASSERT_NE(p, nullptr) << v;
    EXPECT_EQ(out, v);
    EXPECT_EQ(p, buf.data() + buf.size());
  }
}

TEST(CodingTest, Varint64RoundTrip) {
  for (std::uint64_t v : {0ull, 1ull, 127ull, 128ull, (1ull << 32),
                          0xFFFFFFFFFFFFFFFFull}) {
    std::string buf;
    PutVarint64(&buf, v);
    std::uint64_t out = 0;
    const char* p = GetVarint64(buf.data(), buf.data() + buf.size(), &out);
    ASSERT_NE(p, nullptr) << v;
    EXPECT_EQ(out, v);
  }
}

TEST(CodingTest, VarintTruncatedFails) {
  std::string buf;
  PutVarint32(&buf, 300);  // 2 bytes
  std::uint32_t out = 0;
  EXPECT_EQ(GetVarint32(buf.data(), buf.data() + 1, &out), nullptr);
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(1000, 'x'));
  std::string_view a, b, c;
  const char* p = buf.data();
  const char* limit = p + buf.size();
  p = GetLengthPrefixed(p, limit, &a);
  ASSERT_NE(p, nullptr);
  p = GetLengthPrefixed(p, limit, &b);
  ASSERT_NE(p, nullptr);
  p = GetLengthPrefixed(p, limit, &c);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c, std::string(1000, 'x'));
  EXPECT_EQ(p, limit);
}

TEST(CodingTest, LengthPrefixedTruncatedFails) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  std::string_view out;
  EXPECT_EQ(GetLengthPrefixed(buf.data(), buf.data() + 3, &out), nullptr);
}

TEST(Crc32Test, KnownVectors) {
  // CRC-32C of "123456789" is 0xE3069283.
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
}

TEST(Crc32Test, MaskRoundTrip) {
  const std::uint32_t crc = Crc32c("some data");
  EXPECT_NE(MaskCrc(crc), crc);
  EXPECT_EQ(UnmaskCrc(MaskCrc(crc)), crc);
}

TEST(Crc32Test, DetectsCorruption) {
  std::string data = "transactional stream processing";
  const std::uint32_t crc = Crc32c(data);
  data[5] ^= 1;
  EXPECT_NE(Crc32c(data), crc);
}

TEST(SerdeTest, TriviallyCopyableRoundTrip) {
  struct Point {
    int x;
    double y;
  };
  Point p{42, 3.5};
  std::string encoded = EncodeToString(p);
  EXPECT_EQ(encoded.size(), sizeof(Point));
  Point out{};
  ASSERT_TRUE(Serializer<Point>::Decode(encoded, &out));
  EXPECT_EQ(out.x, 42);
  EXPECT_EQ(out.y, 3.5);
}

TEST(SerdeTest, WrongSizeFails) {
  std::uint32_t out = 0;
  EXPECT_FALSE(Serializer<std::uint32_t>::Decode("abc", &out));
}

TEST(SerdeTest, StringRoundTrip) {
  std::string out;
  ASSERT_TRUE(Serializer<std::string>::Decode("raw bytes", &out));
  EXPECT_EQ(out, "raw bytes");
  EXPECT_EQ(EncodeToString(std::string("xyz")), "xyz");
}

TEST(SerdeTest, OrderPreservingKeysSortLikeNumbers) {
  const auto a = OrderPreservingKey<std::uint32_t>(1);
  const auto b = OrderPreservingKey<std::uint32_t>(255);
  const auto c = OrderPreservingKey<std::uint32_t>(256);
  const auto d = OrderPreservingKey<std::uint32_t>(0xFFFFFFFF);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(c, d);
  EXPECT_EQ(DecodeOrderPreservingKey<std::uint32_t>(c), 256u);
}

}  // namespace
}  // namespace streamsi
