// Property test: the optimistic (seqlock + epoch) read path must agree with
// a naive reference model of MVCC visibility under randomized interleavings
// of installs, deletes, garbage collection, and recovery purges.
//
// The model keeps every version ever committed per key (pruned exactly like
// the store's GC: dts <= oldest_active) and answers visibility queries by
// the paper's rule cts <= read_ts < dts. Any divergence — a value the store
// lost, resurrected, or mislabeled — fails the test.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "storage/hash_backend.h"
#include "txn/versioned_store.h"

namespace streamsi {
namespace {

struct ModelVersion {
  Timestamp cts;
  Timestamp dts;  // kInfinityTs = live
  std::string value;
};

class ReadPathModel {
 public:
  void Install(const std::string& key, const std::string& value,
               Timestamp commit_ts) {
    auto& versions = keys_[key];
    for (ModelVersion& v : versions) {
      if (v.dts == kInfinityTs) v.dts = commit_ts;
    }
    versions.push_back(ModelVersion{commit_ts, kInfinityTs, value});
  }

  void Delete(const std::string& key, Timestamp commit_ts) {
    auto it = keys_.find(key);
    if (it == keys_.end()) return;
    for (ModelVersion& v : it->second) {
      if (v.dts == kInfinityTs) v.dts = commit_ts;
    }
  }

  void GarbageCollect(Timestamp oldest_active) {
    for (auto& [key, versions] : keys_) {
      versions.erase(
          std::remove_if(versions.begin(), versions.end(),
                         [&](const ModelVersion& v) {
                           return v.dts != kInfinityTs &&
                                  v.dts <= oldest_active;
                         }),
          versions.end());
    }
  }

  void PurgeAfter(Timestamp max_cts) {
    for (auto& [key, versions] : keys_) {
      versions.erase(std::remove_if(versions.begin(), versions.end(),
                                    [&](const ModelVersion& v) {
                                      return v.cts > max_cts;
                                    }),
                     versions.end());
      for (ModelVersion& v : versions) {
        if (v.dts != kInfinityTs && v.dts > max_cts) v.dts = kInfinityTs;
      }
    }
  }

  std::optional<std::string> VisibleAt(const std::string& key,
                                       Timestamp read_ts) const {
    auto it = keys_.find(key);
    if (it == keys_.end()) return std::nullopt;
    const ModelVersion* best = nullptr;
    for (const ModelVersion& v : it->second) {
      if (v.cts <= read_ts && read_ts < v.dts) {
        if (best == nullptr || v.cts > best->cts) best = &v;
      }
    }
    if (best == nullptr) return std::nullopt;
    return best->value;
  }

  std::optional<std::string> LatestLive(const std::string& key) const {
    auto it = keys_.find(key);
    if (it == keys_.end()) return std::nullopt;
    for (const ModelVersion& v : it->second) {
      if (v.dts == kInfinityTs) return v.value;
    }
    return std::nullopt;
  }

  Timestamp LatestCts(const std::string& key) const {
    auto it = keys_.find(key);
    Timestamp latest = kInitialTs;
    if (it == keys_.end()) return latest;
    for (const ModelVersion& v : it->second) {
      latest = std::max(latest, v.cts);
    }
    return latest;
  }

  std::map<std::string, std::string> SnapshotAt(Timestamp read_ts) const {
    std::map<std::string, std::string> result;
    for (const auto& [key, versions] : keys_) {
      (void)versions;
      if (auto value = VisibleAt(key, read_ts)) {
        result[key] = *value;
      }
    }
    return result;
  }

  const std::map<std::string, std::vector<ModelVersion>>& keys() const {
    return keys_;
  }

 private:
  std::map<std::string, std::vector<ModelVersion>> keys_;
};

TEST(ReadPathModelTest, RandomizedOpsAgreeWithModel) {
  constexpr int kKeys = 24;
  constexpr int kOps = 4000;
  constexpr int kQueriesPerBatch = 8;

  StoreOptions options;
  options.mvcc_slots = 6;
  options.write_through = false;
  VersionedStore store(0, "model", std::make_unique<HashTableBackend>(),
                       options);
  ReadPathModel model;
  Xorshift rng(20260726);

  Timestamp clock = 1;
  // GC already ran with this watermark: snapshots below it are dead, so the
  // model is only queried at read_ts >= watermark.
  Timestamp watermark = 0;

  const auto key_for = [](std::uint64_t k) {
    return "key-" + std::to_string(k);
  };

  for (int op = 0; op < kOps; ++op) {
    const std::string key = key_for(rng.Uniform(kKeys));
    const std::uint64_t dice = rng.Uniform(100);
    if (dice < 60) {
      const Timestamp ts = ++clock;
      const std::string value =
          key + "#" + std::to_string(ts) + std::string(rng.Uniform(20), 'x');
      // The store's on-demand GC inside Install uses the same watermark the
      // model prunes with, so both sides reclaim identically.
      const Status status =
          store.ApplyCommitted(key, value, false, ts, watermark, false);
      if (status.IsResourceExhausted()) {
        // Version array full of still-visible versions: the model cannot
        // reclaim them either — skip, nothing changed on either side.
        --clock;
        continue;
      }
      ASSERT_TRUE(status.ok()) << status.ToString();
      model.Install(key, value, ts);
    } else if (dice < 75) {
      const Timestamp ts = ++clock;
      ASSERT_TRUE(
          store.ApplyCommitted(key, "", true, ts, watermark, false).ok());
      model.Delete(key, ts);
    } else if (dice < 85) {
      const Timestamp oldest = watermark + rng.Uniform(clock - watermark + 1);
      store.GarbageCollectAll(oldest);
      model.GarbageCollect(oldest);
      watermark = std::max(watermark, oldest);
    } else {
      // Occasionally exercise the recovery purge against the model.
      if (rng.Uniform(10) == 0 && clock > watermark + 2) {
        // The clock is NOT rolled back after the purge: reusing a purged
        // timestamp could create two versions with equal cts, where store
        // and model may legitimately pick different winners.
        const Timestamp max_cts = clock - rng.Uniform(2);
        store.PurgeVersionsAfter(max_cts);
        model.PurgeAfter(max_cts);
      }
    }

    // Point queries at random valid snapshots.
    for (int q = 0; q < kQueriesPerBatch; ++q) {
      const std::string probe = key_for(rng.Uniform(kKeys));
      const Timestamp read_ts = watermark + rng.Uniform(clock - watermark + 1);
      std::string value;
      const Status status = store.ReadCommitted(read_ts, probe, &value);
      const auto expected = model.VisibleAt(probe, read_ts);
      if (expected.has_value()) {
        ASSERT_TRUE(status.ok())
            << "store lost visible version: key=" << probe
            << " read_ts=" << read_ts << " expected=" << *expected;
        ASSERT_EQ(value, *expected)
            << "wrong version: key=" << probe << " read_ts=" << read_ts;
      } else {
        ASSERT_TRUE(status.IsNotFound())
            << "store resurrected version: key=" << probe
            << " read_ts=" << read_ts << " got=" << value;
      }

      // ReadLatest must agree with the model's live version.
      std::string latest;
      const Status latest_status = store.ReadLatest(probe, &latest);
      const auto expected_latest = model.LatestLive(probe);
      if (expected_latest.has_value()) {
        ASSERT_TRUE(latest_status.ok()) << "lost live version of " << probe;
        ASSERT_EQ(latest, *expected_latest);
      } else {
        ASSERT_TRUE(latest_status.IsNotFound())
            << "phantom live version of " << probe << ": " << latest;
      }

      ASSERT_EQ(store.LatestCts(probe), model.LatestCts(probe));
    }
  }

  // Final full-scan comparison at a fresh snapshot.
  const Timestamp read_ts = clock;
  std::map<std::string, std::string> scanned;
  ASSERT_TRUE(store
                  .ScanCommitted(read_ts,
                                 [&](std::string_view k, std::string_view v) {
                                   scanned[std::string(k)] = std::string(v);
                                   return true;
                                 })
                  .ok());
  EXPECT_EQ(scanned, model.SnapshotAt(read_ts));
}

TEST(ReadPathModelTest, OptimisticAndLatchedReadsAgreeAfterReload) {
  // Decode/recovery produces MvccObjects through a different construction
  // path; the optimistic read protocol must behave identically on them.
  StoreOptions options;
  options.write_through = true;
  auto backend = std::make_unique<HashTableBackend>();
  HashTableBackend* backend_raw = backend.get();
  auto store = std::make_unique<VersionedStore>(0, "s", std::move(backend),
                                                options);
  ASSERT_TRUE(store->ApplyCommitted("a", "1", false, 10, 0, true).ok());
  ASSERT_TRUE(store->ApplyCommitted("a", "2", false, 20, 0, true).ok());
  ASSERT_TRUE(store->ApplyCommitted("b", "3", false, 30, 0, true).ok());
  ASSERT_TRUE(store->ApplyCommitted("b", "", true, 40, 0, true).ok());

  std::map<std::string, std::string> blobs;
  backend_raw->Scan([&](std::string_view k, std::string_view v) {
    blobs[std::string(k)] = std::string(v);
    return true;
  });
  store.reset();

  auto backend2 = std::make_unique<HashTableBackend>();
  for (const auto& [k, v] : blobs) backend2->Put(k, v, false);
  VersionedStore reloaded(0, "s", std::move(backend2), options);
  ASSERT_TRUE(reloaded.LoadFromBackend().ok());

  std::string value;
  ASSERT_TRUE(reloaded.ReadCommitted(15, "a", &value).ok());
  EXPECT_EQ(value, "1");
  ASSERT_TRUE(reloaded.ReadCommitted(25, "a", &value).ok());
  EXPECT_EQ(value, "2");
  ASSERT_TRUE(reloaded.ReadLatest("a", &value).ok());
  EXPECT_EQ(value, "2");
  ASSERT_TRUE(reloaded.ReadCommitted(35, "b", &value).ok());
  EXPECT_EQ(value, "3");
  EXPECT_TRUE(reloaded.ReadLatest("b", &value).IsNotFound());
  EXPECT_TRUE(reloaded.ReadCommitted(45, "b", &value).IsNotFound());
  EXPECT_EQ(reloaded.LatestCts("a"), 20u);
  EXPECT_EQ(reloaded.LatestModification("b"), 40u);
}

}  // namespace
}  // namespace streamsi
