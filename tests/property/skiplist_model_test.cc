// Property test: the concurrent SkipList behaves exactly like std::map
// under arbitrary sequential histories of upserts, deletes and lookups.

#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "common/env.h"
#include "common/random.h"
#include "storage/backend.h"
#include "storage/skiplist.h"

namespace streamsi {
namespace {

class SkipListModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SkipListModelTest, MatchesStdMapUnderRandomOps) {
  Xorshift rng(GetParam());
  SkipList list;
  std::map<std::string, std::optional<std::string>> model;  // nullopt=tomb

  constexpr int kOps = 20000;
  constexpr int kKeySpace = 500;
  for (int op = 0; op < kOps; ++op) {
    const std::string key = "key" + std::to_string(rng.Uniform(kKeySpace));
    switch (rng.Uniform(4)) {
      case 0:
      case 1: {  // upsert
        const std::string value = "v" + std::to_string(rng.Next() % 100000);
        list.Upsert(key, value);
        model[key] = value;
        break;
      }
      case 2: {  // delete (tombstone)
        list.Upsert(key, "", /*tombstone=*/true);
        model[key] = std::nullopt;
        break;
      }
      case 3: {  // lookup
        std::string value;
        const bool found = list.Get(key, &value);
        auto it = model.find(key);
        const bool expect_found =
            it != model.end() && it->second.has_value();
        ASSERT_EQ(found, expect_found) << "op " << op << " key " << key;
        if (found) ASSERT_EQ(value, *it->second);
        break;
      }
    }
  }

  // Full iteration must visit exactly the model's keys, in order.
  auto it = model.begin();
  std::size_t visited = 0;
  list.Iterate([&](std::string_view key, std::string_view value,
                   bool tombstone) {
    EXPECT_NE(it, model.end());
    if (it == model.end()) return false;
    EXPECT_EQ(std::string(key), it->first);
    EXPECT_EQ(tombstone, !it->second.has_value());
    if (it->second.has_value()) EXPECT_EQ(std::string(value), *it->second);
    ++it;
    ++visited;
    return true;
  });
  EXPECT_EQ(visited, model.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkipListModelTest,
                         ::testing::Values(1, 7, 42, 1337, 99991));

class LsmModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LsmModelTest, MatchesStdMapAcrossFlushesAndCompactions) {
  Xorshift rng(GetParam() * 31 + 5);
  BackendOptions options;
  options.path = "/tmp/streamsi_lsm_model_" + std::to_string(::getpid()) +
                 "_" + std::to_string(GetParam());
  fsutil::RemoveDirRecursive(options.path);
  options.memtable_bytes = 4 * 1024;  // force frequent flushes
  options.l0_compaction_trigger = 2;  // force frequent compactions
  auto backend_or = OpenBackend(BackendType::kLsm, options);
  ASSERT_TRUE(backend_or.ok());
  auto& backend = *backend_or.value();

  std::map<std::string, std::string> model;
  constexpr int kOps = 4000;
  constexpr int kKeySpace = 200;
  for (int op = 0; op < kOps; ++op) {
    const std::string key = "k" + std::to_string(rng.Uniform(kKeySpace));
    switch (rng.Uniform(3)) {
      case 0: {
        const std::string value = "value-" + std::to_string(rng.Next());
        ASSERT_TRUE(backend.Put(key, value, false).ok());
        model[key] = value;
        break;
      }
      case 1: {
        ASSERT_TRUE(backend.Delete(key, false).ok());
        model.erase(key);
        break;
      }
      case 2: {
        std::string value;
        const Status status = backend.Get(key, &value);
        auto it = model.find(key);
        if (it == model.end()) {
          ASSERT_TRUE(status.IsNotFound()) << "op " << op;
        } else {
          ASSERT_TRUE(status.ok()) << "op " << op;
          ASSERT_EQ(value, it->second);
        }
        break;
      }
    }
  }

  // Final scan must match exactly.
  std::map<std::string, std::string> scanned;
  ASSERT_TRUE(backend
                  .Scan([&](std::string_view k, std::string_view v) {
                    scanned[std::string(k)] = std::string(v);
                    return true;
                  })
                  .ok());
  EXPECT_EQ(scanned, model);
  fsutil::RemoveDirRecursive(options.path);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LsmModelTest,
                         ::testing::Values(1, 2, 3, 11, 123));

}  // namespace
}  // namespace streamsi
