// Two-node failover torture: a replication primary runs the full crash
// workload (committers + checkpointer + LSM flushes + background shipping)
// against FaultEnv until a seeded power cut kills it mid-batch, mid-ship
// or mid-checkpoint; the surviving bytes are drained to the follower and
// the follower is PROMOTED. The verifier then checks the failover
// contract on the promoted node:
//
//   1. Every commit the dead primary ACKED is visible (zero acked loss) —
//      acked means synced, synced bytes survive the cut, and
//      LogShipper::DrainFiles ships every surviving valid frame before
//      Promote() replays it.
//   2. Both states of the group agree on every key — shipped group
//      commits stay atomic across the cut (a record ships whole or not at
//      all; the applier never applies half a frame).
//   3. Visible values were actually written (bounded by the last attempt)
//      — torn bytes never invent data on the follower either.
//   4. The promoted node accepts writes (it is a real database again).
//
//   STREAMSI_TORTURE_SEEDS=100 ./build/property_replication_failover_property_test
//
// The negative control proves the harness has teeth: shipping a torn
// frame with CRC verification disabled (Options::verify_shipped_crc =
// false — applying unverified bytes is exactly the corruption the CRC
// exists to stop) must make this verifier report the divergence.

#include <gtest/gtest-spi.h>
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_env.h"
#include "common/random.h"
#include "core/database.h"
#include "replication/log_shipper.h"
#include "replication/transport.h"

namespace streamsi {
namespace {

constexpr int kCommitters = 3;
constexpr int kMaxCommitsPerThread = 4000;  // safety cap, not the target
constexpr char kPrimaryDir[] = "/db";
constexpr char kFollowerDir[] = "/follower";

DatabaseOptions PrimaryTortureOptions(Env* env, ShipTransport* transport) {
  DatabaseOptions options;
  options.protocol = ProtocolType::kMvcc;
  options.backend = BackendType::kLsm;
  options.backend_options.sync_mode = SyncMode::kFsync;
  options.backend_options.env = env;
  // Tiny memtables: constant sealing + background flushes, so the cut also
  // lands inside SSTable writes and manifest publications.
  options.backend_options.memtable_bytes = 2 * 1024;
  options.backend_options.l0_compaction_trigger = 2;
  options.backend_options.flush_retry_attempts = 1;
  options.backend_options.flush_retry_backoff_ms = 1;
  options.env = env;
  options.base_dir = kPrimaryDir;
  options.replication.role = ReplicationRole::kPrimary;
  options.replication.transport = transport;
  options.replication.ship_interval_ms = 1;
  return options;
}

DatabaseOptions FollowerTortureOptions(Env* env, bool verify_crc = true,
                                       bool manual_pump = false) {
  DatabaseOptions options;
  options.protocol = ProtocolType::kMvcc;
  options.backend = BackendType::kLsm;
  options.backend_options.sync_mode = SyncMode::kFsync;
  options.backend_options.env = env;
  options.env = env;
  options.base_dir = kFollowerDir;
  options.replication.role = ReplicationRole::kFollower;
  options.replication.apply_interval_ms = 1;
  options.replication.verify_shipped_crc = verify_crc;
  options.replication.manual_pump = manual_pump;
  return options;
}

/// What the primary's run observed before the lights went out.
struct TortureRun {
  std::vector<int> last_acked = std::vector<int>(kCommitters, -1);
  std::vector<int> last_attempted = std::vector<int>(kCommitters, -1);
  StateId a = kInvalidStateId;
  StateId b = kInvalidStateId;
  GroupId g = kInvalidGroupId;
};

/// Drives committers + checkpoints on the primary until the armed power
/// cut fires; the shipper streams to the follower env underneath.
TortureRun RunPrimaryUntilPowerCut(FaultEnv* env, ShipTransport* transport,
                                   Xorshift* rng) {
  TortureRun run;
  auto db = Database::Open(PrimaryTortureOptions(env, transport));
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  if (!db.ok()) return run;
  run.a = (*(*db)->CreateState("a"))->id();
  run.b = (*(*db)->CreateState("b"))->id();
  run.g = (*db)->CreateGroup({run.a, run.b});
  EXPECT_TRUE((*db)->Recover().ok());
  // Arm AFTER setup: the cut lands inside the commit/checkpoint/ship
  // workload, not inside directory scaffolding.
  env->CutPowerAfterOps(30 + rng->Uniform(2500));

  std::atomic<bool> stop{false};
  std::thread checkpointer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)(*db)->Checkpoint();  // failures expected once power dies
    }
  });
  std::vector<std::thread> committers;
  for (int w = 0; w < kCommitters; ++w) {
    committers.emplace_back([&, w] {
      const std::string key = "w" + std::to_string(w);
      for (int i = 0; i < kMaxCommitsPerThread; ++i) {
        if (env->PowerIsCut()) break;
        run.last_attempted[static_cast<std::size_t>(w)] = i;
        const std::string value = std::to_string(i);
        auto t = (*db)->Begin();
        if (!t.ok()) continue;
        if (!(*db)->txn_manager().Write((*t)->txn(), run.a, key, value).ok()) {
          continue;  // handle destructor aborts the txn
        }
        if (!(*db)->txn_manager().Write((*t)->txn(), run.b, key, value).ok()) {
          continue;
        }
        if ((*t)->Commit().ok()) {
          run.last_acked[static_cast<std::size_t>(w)] = i;
        }
      }
    });
  }
  for (auto& thread : committers) thread.join();
  stop.store(true, std::memory_order_release);
  checkpointer.join();
  // The Database destructor is the "crash": its shutdown IO (including the
  // shipper's final drain round) fails against the cut power.
  return run;
}

/// Reads `key` from `state` in a fresh snapshot; "" = not found.
std::string ReadOne(Database& db, StateId state, const std::string& key) {
  auto t = db.Begin();
  EXPECT_TRUE(t.ok());
  std::string value;
  const Status status = db.txn_manager().Read((*t)->txn(), state, key, &value);
  EXPECT_TRUE((*t)->Commit().ok());
  if (status.IsNotFound()) return "";
  EXPECT_TRUE(status.ok()) << status.ToString();
  return value;
}

/// The failover verifier: checks the contract on a follower database
/// (promoted or not). Used by the main property AND by the negative
/// control, which asserts it catches deliberately shipped corruption.
void VerifyFollower(Database& follower, const TortureRun& run,
                    const std::string& repro, bool* violation_detected) {
  *violation_detected = false;
  VersionedStore* store_a = follower.FindState("a");
  VersionedStore* store_b = follower.FindState("b");
  ASSERT_NE(store_a, nullptr) << repro;
  ASSERT_NE(store_b, nullptr) << repro;
  EXPECT_EQ(store_a->id(), run.a) << repro;
  EXPECT_EQ(store_b->id(), run.b) << repro;

  for (int w = 0; w < kCommitters; ++w) {
    const std::string key = "w" + std::to_string(w);
    const std::string va = ReadOne(follower, run.a, key);
    const std::string vb = ReadOne(follower, run.b, key);
    if (va != vb) {
      *violation_detected = true;
      ADD_FAILURE() << "states diverged for " << key << ": '" << va
                    << "' vs '" << vb << "'\n"
                    << repro;
    }
    const int acked = run.last_acked[static_cast<std::size_t>(w)];
    const int attempted = run.last_attempted[static_cast<std::size_t>(w)];
    int visible = -1;
    if (!va.empty()) {
      visible = std::atoi(va.c_str());
      EXPECT_GE(visible, 0) << repro;
      if (visible > attempted) {
        *violation_detected = true;
        ADD_FAILURE() << "invented value " << va << " was never written to "
                      << key << "\n"
                      << repro;
      }
    }
    if (visible < acked) {
      // An acked commit vanished across failover.
      *violation_detected = true;
      ADD_FAILURE() << "acked commit lost across failover: " << key
                    << " acked=" << acked << " visible=" << visible << "\n"
                    << repro;
    }
  }
  EXPECT_GE(follower.context().clock().Now(), follower.context().LastCts(run.g))
      << repro;
}

class ReplicationFailoverTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ReplicationFailoverTest, AckedCommitsSurvivePrimaryPowerCut) {
  const std::uint64_t seed = GetParam();
  FaultEnv primary_env(seed);
  FaultEnv follower_env(seed * 7919u + 13u);
  EnvFileTransport transport(&follower_env, kFollowerDir);
  Xorshift rng(seed * 2654435761u + 1);

  // The follower runs CONCURRENTLY with the doomed primary, continuously
  // replaying whatever ships.
  auto follower = Database::Open(FollowerTortureOptions(&follower_env));
  ASSERT_TRUE(follower.ok()) << follower.status().ToString();

  const TortureRun run =
      RunPrimaryUntilPowerCut(&primary_env, &transport, &rng);
  primary_env.CrashAndRecoverFs(FaultEnv::CrashMode::kKeepRandomPrefix);

  const std::string repro =
      "seed=" + std::to_string(seed) +
      " (repro: STREAMSI_TORTURE_SEEDS with this seed) primary: " +
      primary_env.DescribeSchedule();

  // Failover: drain every surviving valid frame off the dead primary's
  // disk (a fresh transport — the old one's cached handles died with it),
  // then promote.
  EnvFileTransport drain_transport(&follower_env, kFollowerDir);
  ASSERT_TRUE(LogShipper::DrainFiles(
                  &primary_env, std::string(kPrimaryDir) + "/group_commits.log",
                  std::string(kPrimaryDir) + "/catalog.log", &drain_transport)
                  .ok())
      << repro;
  ASSERT_TRUE((*follower)->Promote().ok()) << repro;

  bool violation_detected = false;
  VerifyFollower(**follower, run, repro, &violation_detected);
  EXPECT_FALSE(violation_detected) << repro;

  // The promoted node is a writable database again.
  auto t = (*follower)->Begin();
  ASSERT_TRUE(t.ok()) << repro;
  ASSERT_TRUE(
      (*follower)->txn_manager().Write((*t)->txn(), run.a, "post", "1").ok());
  ASSERT_TRUE(
      (*follower)->txn_manager().Write((*t)->txn(), run.b, "post", "1").ok());
  EXPECT_TRUE((*t)->Commit().ok()) << repro;
}

std::uint64_t TortureSeedCount() {
  const char* override = std::getenv("STREAMSI_TORTURE_SEEDS");
  if (override != nullptr) {
    const std::uint64_t n = std::strtoull(override, nullptr, 10);
    if (n > 0) return n;
  }
  return 10;  // default tier-1 budget; ci.sh sweeps more
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplicationFailoverTest,
                         ::testing::Range<std::uint64_t>(1,
                                                         1 + TortureSeedCount()));

// ---------------------------------------------------------------------------
// Negative control: ship a torn frame with CRC verification DISABLED on
// the follower — the applier installs the corrupted bytes, and the
// verifier above must catch the resulting divergence. The CRC-enabled arm
// refuses the same tear (the frame is treated as incomplete; nothing is
// applied). Fully deterministic: the tear is a single flipped byte in the
// last shipped frame's payload (state b's value), placed by hand.
// ---------------------------------------------------------------------------

class ShippedTearNegativeControl : public ::testing::Test {};

TEST_F(ShippedTearNegativeControl, CrcOffAppliesTearAndVerifierCatchesIt) {
  for (const bool verify_crc : {true, false}) {
    FaultEnv env(/*seed=*/1234);
    EnvFileTransport transport(&env, kFollowerDir);
    TortureRun run;
    {
      DatabaseOptions options = PrimaryTortureOptions(&env, &transport);
      options.base_dir = kPrimaryDir;
      options.replication.manual_pump = true;
      auto primary = Database::Open(options);
      ASSERT_TRUE(primary.ok());
      run.a = (*(*primary)->CreateState("a"))->id();
      run.b = (*(*primary)->CreateState("b"))->id();
      run.g = (*primary)->CreateGroup({run.a, run.b});
      ASSERT_TRUE((*primary)->Recover().ok());
      for (int i = 0; i <= 1; ++i) {
        const std::string value = std::to_string(i);
        auto t = (*primary)->Begin();
        ASSERT_TRUE(t.ok());
        ASSERT_TRUE((*primary)
                        ->txn_manager()
                        .Write((*t)->txn(), run.a, "w0", value)
                        .ok());
        ASSERT_TRUE((*primary)
                        ->txn_manager()
                        .Write((*t)->txn(), run.b, "w0", value)
                        .ok());
        ASSERT_TRUE((*t)->Commit().ok());
        run.last_acked[0] = run.last_attempted[0] = i;
      }
      ASSERT_TRUE((*primary)->ShipNow().ok());
    }
    // Tear the shipped stream: flip the LAST payload byte of the follower's
    // copy — state b's value inside the newest kReplicatedCommit record.
    // The frame stays structurally parseable; only the CRC knows.
    const std::string segment =
        std::string(kFollowerDir) + "/group_commits.log";
    std::string bytes;
    ASSERT_TRUE(env.ReadFileToString(segment, &bytes).ok());
    ASSERT_FALSE(bytes.empty());
    bytes.back() = static_cast<char>(bytes.back() ^ 0x01);
    ASSERT_TRUE(env.WriteStringToFileAtomic(segment, bytes).ok());

    auto follower = Database::Open(FollowerTortureOptions(
        &env, verify_crc, /*manual_pump=*/true));
    ASSERT_TRUE(follower.ok());
    ASSERT_TRUE((*follower)->ApplyShippedNow().ok());

    const std::string repro =
        std::string("negative-control verify_crc=") +
        (verify_crc ? "true" : "false");
    bool violation_detected = false;
    if (!verify_crc) {
      // The corrupted record was applied; the harness must CATCH the
      // divergence — gtest failures are expected output of the inner
      // verifier here, not of this test.
      ::testing::TestPartResultArray failures;
      {
        ::testing::ScopedFakeTestPartResultReporter reporter(
            ::testing::ScopedFakeTestPartResultReporter::
                INTERCEPT_ONLY_CURRENT_THREAD,
            &failures);
        VerifyFollower(**follower, run, repro, &violation_detected);
      }
      EXPECT_TRUE(violation_detected)
          << "harness failed to detect a torn frame applied without CRC "
             "verification\n"
          << repro;
    } else {
      // CRC on: the tear reads as an incomplete tail — refused/waited-on,
      // never applied. The follower stays consistent at the previous cut
      // (both states at "0"), so acked "1" is behind — but NOT diverged.
      EXPECT_EQ(ReadOne(**follower, run.a, "w0"),
                ReadOne(**follower, run.b, "w0"))
          << repro;
      EXPECT_EQ(ReadOne(**follower, run.a, "w0"), "0") << repro;
      EXPECT_NE((*follower)->Health().state, DatabaseHealth::kFailed)
          << repro;
    }
  }
}

}  // namespace
}  // namespace streamsi
