// Crash-torture property test: the whole engine runs against FaultEnv
// while committers, a checkpointer and LSM flushes race; power is cut at a
// seeded-random write/sync-op budget; the database then reopens from the
// SIMULATED surviving bytes (synced prefixes + a random torn tail) and the
// verifier checks the durability contract:
//
//   1. Every acked commit is visible after recovery (zero acked losses).
//   2. Both states of the group carry the same value for every key —
//      group commits are atomic across the cut.
//   3. Visible values are exactly ones some transaction wrote (monotone
//      per-thread counters bounded by the last ATTEMPT) — torn or invented
//      data never resurrects. (A durable-but-unacked commit may legally
//      surface: the client simply never learned its fate.)
//   4. State ids are stable across the reopen and the recovered clock
//      dominates every group watermark.
//
// Every failure message carries the seed + the fault schedule for
// one-command reproduction:
//   STREAMSI_TORTURE_SEEDS=100 ./build/property_crash_torture_property_test
//
// The negative control proves the harness has teeth: with the deliberately
// inverted checkpoint order (prune BEFORE the durable cut record — the
// exact bug the protocol ordering prevents) a power cut inside the window
// must make the verifier report lost acked commits.

#include <gtest/gtest-spi.h>
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_env.h"
#include "common/random.h"
#include "core/streamsi.h"

namespace streamsi {
namespace {

constexpr int kCommitters = 3;
constexpr int kMaxCommitsPerThread = 4000;  // safety cap, not the target

DatabaseOptions TortureOptions(Env* env, bool prune_before_cut) {
  DatabaseOptions options;
  options.protocol = ProtocolType::kMvcc;
  options.backend = BackendType::kLsm;
  options.backend_options.sync_mode = SyncMode::kFsync;
  options.backend_options.env = env;
  // Tiny memtables: the workload seals + background-flushes constantly, so
  // the cut also lands inside SSTable writes and manifest publications.
  options.backend_options.memtable_bytes = 2 * 1024;
  options.backend_options.l0_compaction_trigger = 2;
  // Power cuts do not heal on retry; keep the worker's backoff short.
  options.backend_options.flush_retry_attempts = 1;
  options.backend_options.flush_retry_backoff_ms = 1;
  options.env = env;
  options.base_dir = "/db";
  options.test_hooks.checkpoint_prune_before_cut = prune_before_cut;
  return options;
}

/// What the run observed before the lights went out.
struct TortureRun {
  // Per committer thread: last value whose commit returned OK, and the last
  // value attempted at all (-1 = none).
  std::vector<int> last_acked = std::vector<int>(kCommitters, -1);
  std::vector<int> last_attempted = std::vector<int>(kCommitters, -1);
  StateId a = kInvalidStateId;
  StateId b = kInvalidStateId;
  GroupId g = kInvalidGroupId;
};

/// Drives committers + checkpoints against `env` until the armed power cut
/// fires (or the safety cap is reached).
TortureRun RunUntilPowerCut(FaultEnv* env, bool prune_before_cut) {
  TortureRun run;
  auto db = Database::Open(TortureOptions(env, prune_before_cut));
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  if (!db.ok()) return run;
  run.a = (*(*db)->CreateState("a"))->id();
  run.b = (*(*db)->CreateState("b"))->id();
  run.g = (*db)->CreateGroup({run.a, run.b});
  EXPECT_TRUE((*db)->Recover().ok());

  std::atomic<bool> stop{false};
  std::thread checkpointer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)(*db)->Checkpoint();  // failures expected once power dies
    }
  });
  std::vector<std::thread> committers;
  for (int w = 0; w < kCommitters; ++w) {
    committers.emplace_back([&, w] {
      const std::string key = "w" + std::to_string(w);
      for (int i = 0; i < kMaxCommitsPerThread; ++i) {
        if (env->PowerIsCut()) break;
        run.last_attempted[static_cast<std::size_t>(w)] = i;
        const std::string value = std::to_string(i);
        auto t = (*db)->Begin();
        if (!t.ok()) continue;
        if (!(*db)->txn_manager().Write((*t)->txn(), run.a, key, value).ok()) {
          continue;  // handle destructor aborts the txn
        }
        if (!(*db)->txn_manager().Write((*t)->txn(), run.b, key, value).ok()) {
          continue;
        }
        if ((*t)->Commit().ok()) {
          run.last_acked[static_cast<std::size_t>(w)] = i;
        }
      }
    });
  }
  for (auto& thread : committers) thread.join();
  stop.store(true, std::memory_order_release);
  checkpointer.join();
  // The Database destructor is the "crash": no clean shutdown protocol, and
  // its shutdown IO fails against the cut power anyway.
  return run;
}

/// Reads `key` from `state` in a fresh snapshot; "" = not found.
std::string ReadOne(Database& db, StateId state, const std::string& key) {
  auto t = db.Begin();
  EXPECT_TRUE(t.ok());
  std::string value;
  const Status status = db.txn_manager().Read((*t)->txn(), state, key, &value);
  EXPECT_TRUE((*t)->Commit().ok());
  if (status.IsNotFound()) return "";
  EXPECT_TRUE(status.ok()) << status.ToString();
  return value;
}

/// Reopens from the surviving state and checks the durability contract.
/// `expect_detectable_loss`: the negative control flips this to assert the
/// verifier DOES flag lost acked commits.
void VerifySurvivors(FaultEnv* env, const TortureRun& run,
                     const std::string& repro, bool* loss_detected) {
  *loss_detected = false;
  auto db = Database::Open(TortureOptions(env, /*prune_before_cut=*/false));
  ASSERT_TRUE(db.ok()) << "reopen failed: " << db.status().ToString() << "\n"
                       << repro;
  // State ids are stable across the catalog reopen.
  VersionedStore* store_a = (*db)->FindState("a");
  VersionedStore* store_b = (*db)->FindState("b");
  ASSERT_NE(store_a, nullptr) << repro;
  ASSERT_NE(store_b, nullptr) << repro;
  EXPECT_EQ(store_a->id(), run.a) << repro;
  EXPECT_EQ(store_b->id(), run.b) << repro;

  for (int w = 0; w < kCommitters; ++w) {
    const std::string key = "w" + std::to_string(w);
    const std::string va = ReadOne(**db, run.a, key);
    const std::string vb = ReadOne(**db, run.b, key);
    // Group atomicity across the cut.
    EXPECT_EQ(va, vb) << "states diverged for " << key << "\n" << repro;
    const int acked = run.last_acked[static_cast<std::size_t>(w)];
    const int attempted = run.last_attempted[static_cast<std::size_t>(w)];
    int visible = -1;
    if (!va.empty()) {
      visible = std::atoi(va.c_str());
      // No invented/torn data: the value is one some txn actually wrote.
      EXPECT_GE(visible, 0) << repro;
      EXPECT_LE(visible, attempted)
          << "resurrected value " << va << " was never written to " << key
          << "\n" << repro;
    }
    if (visible < acked) {
      // Acked commit lost. The negative control EXPECTS this; the real
      // protocol must never produce it.
      *loss_detected = true;
      ADD_FAILURE() << "acked commit lost: " << key << " acked=" << acked
                    << " visible=" << visible << "\n"
                    << repro;
    }
  }
  // The recovered clock dominates every group watermark (timestamps the
  // recovered groups hand out stay monotone).
  EXPECT_GE((*db)->context().clock().Now(), (*db)->context().LastCts(run.g))
      << repro;
}

class CrashTortureTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrashTortureTest, AckedCommitsSurviveRandomPowerCut) {
  const std::uint64_t seed = GetParam();
  FaultEnv env(seed);
  // Somewhere inside the workload's IO stream; Xorshift(seed) makes the
  // budget (and every torn-byte choice inside FaultEnv) reproducible.
  Xorshift rng(seed * 2654435761u + 1);
  env.CutPowerAfterOps(30 + rng.Uniform(2500));

  const TortureRun run = RunUntilPowerCut(&env, /*prune_before_cut=*/false);
  env.CrashAndRecoverFs(FaultEnv::CrashMode::kKeepRandomPrefix);

  const std::string repro =
      "seed=" + std::to_string(seed) +
      " (repro: STREAMSI_TORTURE_SEEDS with this seed) " +
      env.DescribeSchedule();
  bool loss_detected = false;
  VerifySurvivors(&env, run, repro, &loss_detected);
  EXPECT_FALSE(loss_detected) << repro;
}

std::uint64_t TortureSeedCount() {
  const char* override = std::getenv("STREAMSI_TORTURE_SEEDS");
  if (override != nullptr) {
    const std::uint64_t n = std::strtoull(override, nullptr, 10);
    if (n > 0) return n;
  }
  return 10;  // default tier-1 budget; ci.sh sweeps more
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashTortureTest,
                         ::testing::Range<std::uint64_t>(
                             1, 1 + TortureSeedCount()));

// ---------------------------------------------------------------------------
// Negative control: the deliberately inverted checkpoint order must make
// the verifier above report lost acked commits — proving the harness
// detects the class of bug it exists for. Deterministic window: after a
// completed checkpoint (memtables flushed, nothing left to write), the next
// checkpoint's ONLY IO is the cut record itself, so arming a 1-op power
// cut lands exactly between the (misordered) prune and the record.
// ---------------------------------------------------------------------------

class CheckpointOrderNegativeControl : public ::testing::Test {};

TEST_F(CheckpointOrderNegativeControl, PruneBeforeCutLosesAckedCommits) {
  for (const bool broken : {false, true}) {
    FaultEnv env(/*seed=*/1234);
    TortureRun run;
    {
      auto db = Database::Open(TortureOptions(&env, broken));
      ASSERT_TRUE(db.ok());
      run.a = (*(*db)->CreateState("a"))->id();
      run.b = (*(*db)->CreateState("b"))->id();
      run.g = (*db)->CreateGroup({run.a, run.b});
      ASSERT_TRUE((*db)->Recover().ok());
      for (int i = 0; i < 20; ++i) {
        const std::string value = std::to_string(i);
        auto t = (*db)->Begin();
        ASSERT_TRUE(t.ok());
        ASSERT_TRUE(
            (*db)->txn_manager().Write((*t)->txn(), run.a, "w0", value).ok());
        ASSERT_TRUE(
            (*db)->txn_manager().Write((*t)->txn(), run.b, "w0", value).ok());
        ASSERT_TRUE((*t)->Commit().ok());
        run.last_acked[0] = run.last_attempted[0] = i;
      }
      for (int w = 1; w < kCommitters; ++w) {
        run.last_acked[static_cast<std::size_t>(w)] = -1;
        run.last_attempted[static_cast<std::size_t>(w)] = -1;
      }
      // Checkpoint #1 (correct or broken order — irrelevant without a
      // crash): everything flushed, log pruned to one segment whose cut
      // record now guards every acked commit.
      ASSERT_TRUE((*db)->Checkpoint().ok());
      // Checkpoint #2: memtables are empty and the log is quiescent, so the
      // first write/sync op it performs is the new cut record. Cut power on
      // exactly that op. Broken order: the old segment (with the only
      // durable cut) is pruned FIRST, then the record tears — every acked
      // commit's watermark is gone. Correct order: the record tears before
      // anything is deleted, the old chain stays authoritative.
      env.CutPowerAfterOps(1);
      EXPECT_FALSE((*db)->Checkpoint().ok());
      EXPECT_TRUE(env.PowerIsCut());
    }
    env.CrashAndRecoverFs();

    const std::string repro = std::string("negative-control broken=") +
                              (broken ? "true" : "false") + " " +
                              env.DescribeSchedule();
    bool loss_detected = false;
    if (broken) {
      // The verifier must CATCH the loss — gtest failures are expected
      // output of the inner check here, not of this test.
      ::testing::TestPartResultArray failures;
      {
        ::testing::ScopedFakeTestPartResultReporter reporter(
            ::testing::ScopedFakeTestPartResultReporter::
                INTERCEPT_ONLY_CURRENT_THREAD,
            &failures);
        VerifySurvivors(&env, run, repro, &loss_detected);
      }
      EXPECT_TRUE(loss_detected)
          << "harness failed to detect the deliberately broken "
             "prune-before-cut ordering\n"
          << repro;
    } else {
      VerifySurvivors(&env, run, repro, &loss_detected);
      EXPECT_FALSE(loss_detected) << repro;
    }
  }
}

}  // namespace
}  // namespace streamsi
