// Property test: snapshot isolation against an executable model.
//
// Several transactions are interleaved by a seeded random scheduler (all on
// one thread, so the interleaving is deterministic). The model mirrors the
// SI contract exactly:
//   * a transaction's first read captures a snapshot of the committed map;
//   * reads see snapshot + own writes; writes buffer; deletes overlay;
//   * commit fails iff another transaction committed one of its written
//     keys after it began (First-Committer-Wins);
//   * abort discards everything.
// The implementation must agree with the model on every read result and
// every commit outcome.

#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "common/random.h"
#include "core/streamsi.h"

namespace streamsi {
namespace {

struct ModelTxn {
  bool began = false;
  bool has_snapshot = false;
  std::uint64_t begin_seq = 0;
  std::map<std::string, std::string> snapshot;
  std::map<std::string, std::optional<std::string>> writes;  // nullopt=del
};

class SiModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SiModelTest, RandomInterleavingsMatchModel) {
  Xorshift rng(GetParam() * 7919 + 13);

  DatabaseOptions options;
  options.protocol = ProtocolType::kMvcc;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  auto state = (*db)->CreateState("s");
  TransactionalTable<std::string, std::string> table(&(*db)->txn_manager(),
                                                     *state);

  // Model state.
  std::map<std::string, std::string> committed;
  // Sequence number of the last commit per key (for FCW).
  std::map<std::string, std::uint64_t> last_commit_seq;
  std::uint64_t seq = 0;  // advances on begin & commit

  constexpr int kSlots = 4;
  constexpr int kKeySpace = 12;
  std::array<std::unique_ptr<TransactionHandle>, kSlots> impl;
  std::array<ModelTxn, kSlots> model;

  auto ensure_snapshot = [&](int slot) {
    if (!model[slot].has_snapshot) {
      model[slot].snapshot = committed;
      model[slot].has_snapshot = true;
    }
  };

  constexpr int kOps = 3000;
  for (int op = 0; op < kOps; ++op) {
    const int slot = static_cast<int>(rng.Uniform(kSlots));
    const std::string key = "k" + std::to_string(rng.Uniform(kKeySpace));

    if (!model[slot].began) {
      auto handle = (*db)->Begin();
      ASSERT_TRUE(handle.ok());
      impl[slot] = std::move(handle).value();
      model[slot] = ModelTxn{};
      model[slot].began = true;
      model[slot].begin_seq = ++seq;
      continue;
    }

    switch (rng.Uniform(5)) {
      case 0: {  // read
        auto got = table.Get(impl[slot]->txn(), key);
        // Model: own write first, then snapshot. The snapshot is pinned by
        // the first read that *misses* the own-write set — reads served
        // from the write set never touch the store, hence never pin
        // (mirrors §4.2 exactly).
        auto own = model[slot].writes.find(key);
        if (own == model[slot].writes.end()) ensure_snapshot(slot);
        if (own != model[slot].writes.end()) {
          if (own->second.has_value()) {
            ASSERT_TRUE(got.ok()) << "op " << op;
            ASSERT_EQ(*got, *own->second);
          } else {
            ASSERT_TRUE(got.status().IsNotFound()) << "op " << op;
          }
        } else {
          auto snap = model[slot].snapshot.find(key);
          if (snap == model[slot].snapshot.end()) {
            ASSERT_TRUE(got.status().IsNotFound())
                << "op " << op << " key " << key;
          } else {
            ASSERT_TRUE(got.ok()) << "op " << op << " key " << key;
            ASSERT_EQ(*got, snap->second);
          }
        }
        break;
      }
      case 1: {  // write
        ASSERT_TRUE(table.Put(impl[slot]->txn(), key,
                              "v" + std::to_string(op))
                        .ok());
        model[slot].writes[key] = "v" + std::to_string(op);
        break;
      }
      case 2: {  // delete
        ASSERT_TRUE(table.Delete(impl[slot]->txn(), key).ok());
        model[slot].writes[key] = std::nullopt;
        break;
      }
      case 3: {  // commit
        const Status status = impl[slot]->Commit();
        bool expect_conflict = false;
        for (const auto& [k, v] : model[slot].writes) {
          auto it = last_commit_seq.find(k);
          if (it != last_commit_seq.end() &&
              it->second > model[slot].begin_seq) {
            expect_conflict = true;
          }
        }
        if (model[slot].writes.empty()) expect_conflict = false;
        if (expect_conflict) {
          ASSERT_TRUE(status.IsConflict())
              << "op " << op << ": model expected FCW conflict, got "
              << status.ToString();
        } else {
          ASSERT_TRUE(status.ok())
              << "op " << op << ": model expected success, got "
              << status.ToString();
          const std::uint64_t commit_seq = ++seq;
          for (const auto& [k, v] : model[slot].writes) {
            last_commit_seq[k] = commit_seq;
            if (v.has_value()) {
              committed[k] = *v;
            } else {
              committed.erase(k);
            }
          }
        }
        impl[slot].reset();
        model[slot] = ModelTxn{};
        break;
      }
      case 4: {  // abort
        ASSERT_TRUE(impl[slot]->Abort().ok());
        impl[slot].reset();
        model[slot] = ModelTxn{};
        break;
      }
    }
  }

  // Drain open transactions and verify the final committed state.
  for (int slot = 0; slot < kSlots; ++slot) {
    if (impl[slot] != nullptr) (void)impl[slot]->Abort();
  }
  auto check = (*db)->Begin();
  std::map<std::string, std::string> final_rows;
  ASSERT_TRUE(table
                  .Scan((*check)->txn(),
                        [&](const std::string& k, const std::string& v) {
                          final_rows[k] = v;
                          return true;
                        })
                  .ok());
  ASSERT_TRUE((*check)->Commit().ok());
  EXPECT_EQ(final_rows, committed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SiModelTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace streamsi
