// Property tests for the ordered read path (VersionedStore::
// ScanRangeCommitted and the per-store ordered key index behind it).
//
// 1. A randomized single-threaded workload of installs, deletes, GC and
//    recovery purges must make every range scan agree with a naive
//    std::map-of-versions model sliced to [lo, hi).
// 2. Under concurrent installs, deletes and GC, a scan must stay ordered,
//    stay inside its bounds, and only surface versions visible at its
//    snapshot — and a snapshot below every concurrent commit must see
//    exactly the preloaded content, bit for bit.
// 3. The scan allocates nothing once warm (same discipline as the point
//    read and the unordered scan).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <new>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "storage/hash_backend.h"
#include "txn/versioned_store.h"

// ---------------------------------------------------------------------------
// Heap-allocation counter (binary-wide operator new/delete replacement; the
// flag gates counting to the scopes that assert on it).

// GCC cannot see that the replacement operator new allocates with malloc,
// so it flags every (inlined) delete in this TU as mismatched. The pairing
// is correct — this is the standard way to replace the global allocator.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {
std::atomic<std::uint64_t> g_heap_allocations{0};
std::atomic<bool> g_count_heap_allocations{false};
}  // namespace

void* operator new(std::size_t size) {
  if (g_count_heap_allocations.load(std::memory_order_relaxed)) {
    g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace streamsi {
namespace {

class AllocationCounter {
 public:
  AllocationCounter() {
    g_heap_allocations.store(0, std::memory_order_relaxed);
    g_count_heap_allocations.store(true, std::memory_order_relaxed);
  }
  ~AllocationCounter() {
    g_count_heap_allocations.store(false, std::memory_order_relaxed);
  }
  std::uint64_t count() const {
    return g_heap_allocations.load(std::memory_order_relaxed);
  }
};

struct ModelVersion {
  Timestamp cts;
  Timestamp dts;  // kInfinityTs = live
  std::string value;
};

/// Reference model: every version ever committed, pruned exactly like the
/// store's GC, sliced by byte-wise key order for range queries.
class ScanModel {
 public:
  void Install(const std::string& key, const std::string& value,
               Timestamp commit_ts) {
    auto& versions = keys_[key];
    for (ModelVersion& v : versions) {
      if (v.dts == kInfinityTs) v.dts = commit_ts;
    }
    versions.push_back(ModelVersion{commit_ts, kInfinityTs, value});
  }

  void Delete(const std::string& key, Timestamp commit_ts) {
    auto it = keys_.find(key);
    if (it == keys_.end()) return;
    for (ModelVersion& v : it->second) {
      if (v.dts == kInfinityTs) v.dts = commit_ts;
    }
  }

  void GarbageCollect(Timestamp oldest_active) {
    for (auto& [key, versions] : keys_) {
      versions.erase(
          std::remove_if(versions.begin(), versions.end(),
                         [&](const ModelVersion& v) {
                           return v.dts != kInfinityTs &&
                                  v.dts <= oldest_active;
                         }),
          versions.end());
    }
  }

  void PurgeAfter(Timestamp max_cts) {
    for (auto& [key, versions] : keys_) {
      versions.erase(std::remove_if(versions.begin(), versions.end(),
                                    [&](const ModelVersion& v) {
                                      return v.cts > max_cts;
                                    }),
                     versions.end());
      for (ModelVersion& v : versions) {
        if (v.dts != kInfinityTs && v.dts > max_cts) v.dts = kInfinityTs;
      }
    }
  }

  /// The visible slice of [lo, hi) at read_ts, in key order (empty hi =
  /// unbounded) — the oracle a ScanRangeCommitted run must reproduce.
  std::map<std::string, std::string> RangeAt(Timestamp read_ts,
                                             const std::string& lo,
                                             const std::string& hi) const {
    std::map<std::string, std::string> result;
    for (auto it = keys_.lower_bound(lo); it != keys_.end(); ++it) {
      if (!hi.empty() && it->first >= hi) break;
      const ModelVersion* best = nullptr;
      for (const ModelVersion& v : it->second) {
        if (v.cts <= read_ts && read_ts < v.dts) {
          if (best == nullptr || v.cts > best->cts) best = &v;
        }
      }
      if (best != nullptr) result[it->first] = best->value;
    }
    return result;
  }

 private:
  std::map<std::string, std::vector<ModelVersion>> keys_;
};

std::unique_ptr<VersionedStore> MakeStore() {
  StoreOptions options;
  options.mvcc_slots = 6;
  options.write_through = false;
  return std::make_unique<VersionedStore>(
      0, "scan-model", std::make_unique<HashTableBackend>(), options);
}

TEST(ScanRangeModelTest, RandomizedRangesAgreeWithModel) {
  constexpr int kKeys = 40;
  constexpr int kOps = 3000;
  constexpr int kRangesPerBatch = 4;

  auto store = MakeStore();
  ScanModel model;
  Xorshift rng(20260808);

  Timestamp clock = 1;
  Timestamp watermark = 0;

  const auto key_for = [](std::uint64_t k) {
    // Zero-padded so lexicographic order == numeric order; makes random
    // bounds easy to derive from the same universe.
    char buf[16];
    std::snprintf(buf, sizeof(buf), "key-%03u", static_cast<unsigned>(k));
    return std::string(buf);
  };

  for (int op = 0; op < kOps; ++op) {
    const std::string key = key_for(rng.Uniform(kKeys));
    const std::uint64_t dice = rng.Uniform(100);
    if (dice < 60) {
      const Timestamp ts = ++clock;
      const std::string value =
          key + "#" + std::to_string(ts) + std::string(rng.Uniform(20), 'x');
      const Status status =
          store->ApplyCommitted(key, value, false, ts, watermark, false);
      if (status.IsResourceExhausted()) {
        --clock;  // version array full on both sides; nothing changed
        continue;
      }
      ASSERT_TRUE(status.ok()) << status.ToString();
      model.Install(key, value, ts);
    } else if (dice < 75) {
      const Timestamp ts = ++clock;
      ASSERT_TRUE(
          store->ApplyCommitted(key, "", true, ts, watermark, false).ok());
      model.Delete(key, ts);
    } else if (dice < 85) {
      const Timestamp oldest = watermark + rng.Uniform(clock - watermark + 1);
      store->GarbageCollectAll(oldest);
      model.GarbageCollect(oldest);
      watermark = std::max(watermark, oldest);
    } else if (rng.Uniform(10) == 0 && clock > watermark + 2) {
      const Timestamp max_cts = clock - rng.Uniform(2);
      store->PurgeVersionsAfter(max_cts);
      model.PurgeAfter(max_cts);
    }

    for (int q = 0; q < kRangesPerBatch; ++q) {
      // Random bounds, sometimes inverted (empty result), sometimes
      // unbounded above, sometimes off the key universe entirely.
      std::string lo = key_for(rng.Uniform(kKeys + 4));
      std::string hi = rng.Uniform(4) == 0 ? std::string()
                                           : key_for(rng.Uniform(kKeys + 4));
      const Timestamp read_ts = watermark + rng.Uniform(clock - watermark + 1);

      std::map<std::string, std::string> scanned;
      std::string previous;
      ASSERT_TRUE(store
                      ->ScanRangeCommitted(
                          read_ts, lo, hi,
                          [&](std::string_view k, std::string_view v) {
                            EXPECT_TRUE(previous.empty() || previous < k)
                                << "out of order: " << previous << " then "
                                << k;
                            previous.assign(k);
                            scanned.emplace(std::string(k), std::string(v));
                            return true;
                          })
                      .ok());
      ASSERT_EQ(scanned, model.RangeAt(read_ts, lo, hi))
          << "range [" << lo << ", " << (hi.empty() ? "<end>" : hi)
          << ") at read_ts=" << read_ts << " diverged from the model";
    }
  }
}

TEST(ScanRangeModelTest, ConcurrentMutationsKeepScansOrderedAndSnapshotted) {
  constexpr int kKeys = 64;
  constexpr int kWriters = 3;
  constexpr int kScanners = 3;
  constexpr int kOpsPerWriter = 2500;
  constexpr Timestamp kPreloadTs = 1;

  auto store = MakeStore();

  const auto key_for = [](std::uint64_t k) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "key-%03u", static_cast<unsigned>(k));
    return std::string(buf);
  };

  // Preload every key at one timestamp: a snapshot at kPreloadTs must keep
  // seeing exactly this content no matter what commits above it.
  for (int k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(store
                    ->ApplyCommitted(key_for(k), "preload", false, kPreloadTs,
                                     0, false)
                    .ok());
  }

  std::atomic<Timestamp> clock{kPreloadTs + 1};
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Xorshift rng(0xBEEF + w);
      for (int op = 0; op < kOpsPerWriter; ++op) {
        // Half the universe exists from the preload; the other half is
        // created live, racing the scanners through the ordered index's
        // lock-free insert path.
        const std::string key = key_for(rng.Uniform(kKeys * 2));
        const Timestamp ts = clock.fetch_add(1, std::memory_order_relaxed);
        if (rng.Uniform(5) == 0) {
          (void)store->ApplyCommitted(key, "", true, ts, kPreloadTs, false);
        } else {
          const std::string value = key + "#" + std::to_string(ts);
          (void)store->ApplyCommitted(key, value, false, ts, kPreloadTs,
                                      false);
        }
        if (rng.Uniform(64) == 0) {
          // GC must never reclaim versions a kPreloadTs reader still needs.
          store->GarbageCollectAll(kPreloadTs);
        }
      }
    });
  }

  std::vector<std::thread> scanners;
  scanners.reserve(kScanners);
  std::atomic<std::uint64_t> scans_done{0};
  for (int s = 0; s < kScanners; ++s) {
    scanners.emplace_back([&, s] {
      Xorshift rng(0xFACE + s);
      std::string previous;
      while (!stop.load(std::memory_order_acquire)) {
        const bool frozen = rng.Uniform(2) == 0;
        // Either the immutable preload snapshot (exact content check) or a
        // current snapshot (order + visibility-bound checks only).
        const Timestamp read_ts =
            frozen ? kPreloadTs
                   : clock.load(std::memory_order_relaxed) - 1;
        const std::string lo = key_for(rng.Uniform(kKeys * 2));
        const std::string hi = key_for(rng.Uniform(kKeys * 2));
        std::uint64_t seen = 0;
        previous.clear();
        const Status status = store->ScanRangeCommitted(
            read_ts, lo, hi, [&](std::string_view k, std::string_view v) {
              EXPECT_TRUE(k >= lo && k < hi) << "escaped bounds: " << k;
              EXPECT_TRUE(previous.empty() || previous < k)
                  << "out of order: " << previous << " then " << k;
              previous.assign(k);
              if (frozen) {
                EXPECT_EQ(v, "preload") << "snapshot " << read_ts
                                        << " saw a later write of " << k;
              } else if (v != "preload") {
                // value is "<key>#<cts>": visibility bound check.
                const std::size_t hash = v.find('#');
                EXPECT_NE(hash, std::string_view::npos) << v;
                EXPECT_EQ(v.substr(0, hash), k);
                EXPECT_LE(std::strtoull(v.data() + hash + 1, nullptr, 10),
                          read_ts)
                    << "saw a version from the future";
              }
              ++seen;
              return true;
            });
        EXPECT_TRUE(status.ok());
        if (frozen && lo < hi) {
          // Later writes, deletes and live-created keys are all invisible
          // at the preload snapshot, so the count is exactly the PRELOADED
          // keys inside [lo, hi).
          const auto clamp = [&](const std::string& bound) {
            return std::min<std::uint64_t>(
                std::strtoull(bound.c_str() + 4, nullptr, 10), kKeys);
          };
          EXPECT_EQ(seen, clamp(hi) - clamp(lo));
        }
        scans_done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : scanners) t.join();
  EXPECT_GT(scans_done.load(), 0u);
}

TEST(ScanRangeModelTest, ScanRangeZeroAllocAfterWarmup) {
  auto store = MakeStore();
  for (int k = 0; k < 32; ++k) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "key-%03d", k);
    // Values fit in SSO buffers, so the scan's reusable buffer never grows.
    ASSERT_TRUE(store->ApplyCommitted(buf, "v", false, 10, 0, false).ok());
  }
  const std::string lo = "key-008";
  const std::string hi = "key-024";
  std::size_t seen = 0;
  const std::function<bool(std::string_view, std::string_view)> callback =
      [&seen](std::string_view, std::string_view) {
        ++seen;
        return true;
      };
  ASSERT_TRUE(store->ScanRangeCommitted(50, lo, hi, callback).ok());
  ASSERT_EQ(seen, 16u);

  AllocationCounter counter;
  ASSERT_TRUE(store->ScanRangeCommitted(50, lo, hi, callback).ok());
  EXPECT_EQ(counter.count(), 0u)
      << "ordered range scans over resident keys must not allocate";
  EXPECT_EQ(seen, 32u);

  // Unbounded-above scans share the same discipline.
  ASSERT_TRUE(store->ScanRangeCommitted(50, lo, "", callback).ok());
  EXPECT_EQ(counter.count(), 0u);
  EXPECT_EQ(seen, 56u);
}

TEST(ScanRangeModelTest, ReloadedStoreServesOrderedScans) {
  // LoadFromBackend repoints existing ordered-index nodes at the
  // authoritative entries instead of inserting duplicates; a reloaded store
  // must scan identically.
  StoreOptions options;
  options.write_through = true;
  auto backend = std::make_unique<HashTableBackend>();
  HashTableBackend* backend_raw = backend.get();
  auto store = std::make_unique<VersionedStore>(0, "s", std::move(backend),
                                                options);
  ASSERT_TRUE(store->ApplyCommitted("b", "2", false, 10, 0, true).ok());
  ASSERT_TRUE(store->ApplyCommitted("a", "1", false, 10, 0, true).ok());
  ASSERT_TRUE(store->ApplyCommitted("c", "3", false, 10, 0, true).ok());

  std::map<std::string, std::string> blobs;
  backend_raw->Scan([&](std::string_view k, std::string_view v) {
    blobs[std::string(k)] = std::string(v);
    return true;
  });
  store.reset();

  auto backend2 = std::make_unique<HashTableBackend>();
  for (const auto& [k, v] : blobs) backend2->Put(k, v, false);
  VersionedStore reloaded(0, "s", std::move(backend2), options);
  ASSERT_TRUE(reloaded.LoadFromBackend().ok());
  // A second load (recovery retry path) must not duplicate index nodes.
  ASSERT_TRUE(reloaded.LoadFromBackend().ok());

  std::vector<std::string> keys;
  ASSERT_TRUE(reloaded
                  .ScanRangeCommitted(50, "", "",
                                      [&](std::string_view k,
                                          std::string_view) {
                                        keys.emplace_back(k);
                                        return true;
                                      })
                  .ok());
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b", "c"}));
}

}  // namespace
}  // namespace streamsi
