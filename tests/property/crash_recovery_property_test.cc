// Property test: crash recovery of the full stack (LSM + MVCC + group
// commit log). A random committed workload runs against a persistent
// database; the process "crashes" (objects destroyed, no clean shutdown) at
// a random point; after reopening + Recover(), the visible state must equal
// the model of all transactions that committed before the crash, and the
// two grouped states must be mutually consistent.

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "core/streamsi.h"
#include "tests/test_util.h"

namespace streamsi {
namespace {

struct SchemaIds {
  StateId a;
  StateId b;
  GroupId g;
};

std::unique_ptr<Database> OpenSchema(const std::string& dir, SchemaIds* ids) {
  DatabaseOptions options;
  options.protocol = ProtocolType::kMvcc;
  options.backend = BackendType::kLsm;
  options.backend_options.sync_mode = SyncMode::kFsync;
  options.base_dir = dir;
  auto db = Database::Open(options);
  EXPECT_TRUE(db.ok());
  ids->a = (*(*db)->CreateState("a"))->id();
  ids->b = (*(*db)->CreateState("b"))->id();
  ids->g = (*db)->CreateGroup({ids->a, ids->b});
  EXPECT_TRUE((*db)->Recover().ok());
  return std::move(db).value();
}

class CrashRecoveryPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrashRecoveryPropertyTest, RecoveredStateMatchesCommittedModel) {
  Xorshift rng(GetParam() * 104729 + 17);
  testing::TempDir dir;
  const std::string db_dir = dir.path() + "/db";

  // Model: the committed values per state (every committed txn writes the
  // same key/value pair into both states).
  std::map<std::string, std::string> model;

  {
    SchemaIds ids;
    auto db = OpenSchema(db_dir, &ids);
    const int txns = 20 + static_cast<int>(rng.Uniform(40));
    for (int i = 0; i < txns; ++i) {
      auto t = (*db).Begin();
      ASSERT_TRUE(t.ok());
      const int writes = 1 + static_cast<int>(rng.Uniform(4));
      std::map<std::string, std::string> txn_writes;
      bool is_delete_txn = rng.Uniform(8) == 0;
      for (int w = 0; w < writes; ++w) {
        const std::string key = "k" + std::to_string(rng.Uniform(16));
        const std::string value = "v" + std::to_string(rng.Next() % 10000);
        if (is_delete_txn) {
          ASSERT_TRUE(db->txn_manager().Delete((*t)->txn(), ids.a, key).ok());
          ASSERT_TRUE(db->txn_manager().Delete((*t)->txn(), ids.b, key).ok());
          txn_writes[key] = "";  // marker for delete
        } else {
          ASSERT_TRUE(
              db->txn_manager().Write((*t)->txn(), ids.a, key, value).ok());
          ASSERT_TRUE(
              db->txn_manager().Write((*t)->txn(), ids.b, key, value).ok());
          txn_writes[key] = value;
        }
      }
      const bool abort = rng.Uniform(5) == 0;
      if (abort) {
        ASSERT_TRUE((*t)->Abort().ok());
        continue;
      }
      ASSERT_TRUE((*t)->Commit().ok());
      for (const auto& [k, v] : txn_writes) {
        if (v.empty()) {
          model.erase(k);
        } else {
          model[k] = v;
        }
      }
    }
    // Crash: no clean shutdown (destructors run, but nothing is flushed
    // beyond what each commit already fsynced).
  }

  // Restart + recover; compare both states against the model.
  {
    SchemaIds ids;
    auto db = OpenSchema(db_dir, &ids);
    auto t = (*db).Begin();
    ASSERT_TRUE(t.ok());
    std::map<std::string, std::string> got_a;
    std::map<std::string, std::string> got_b;
    ASSERT_TRUE(db->txn_manager()
                    .Scan((*t)->txn(), ids.a,
                          [&](std::string_view k, std::string_view v) {
                            got_a[std::string(k)] = std::string(v);
                            return true;
                          })
                    .ok());
    ASSERT_TRUE(db->txn_manager()
                    .Scan((*t)->txn(), ids.b,
                          [&](std::string_view k, std::string_view v) {
                            got_b[std::string(k)] = std::string(v);
                            return true;
                          })
                    .ok());
    ASSERT_TRUE((*t)->Commit().ok());

    EXPECT_EQ(got_a, model) << "state a diverged from committed history";
    EXPECT_EQ(got_b, model) << "state b diverged from committed history";
    EXPECT_EQ(got_a, got_b) << "grouped states mutually inconsistent";

    // And the database remains writable after recovery.
    auto t2 = (*db).Begin();
    ASSERT_TRUE(
        db->txn_manager().Write((*t2)->txn(), ids.a, "post", "crash").ok());
    ASSERT_TRUE(
        db->txn_manager().Write((*t2)->txn(), ids.b, "post", "crash").ok());
    ASSERT_TRUE((*t2)->Commit().ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashRecoveryPropertyTest,
                         ::testing::Values(1, 4, 9, 16, 25, 36));

}  // namespace
}  // namespace streamsi
