// Conformance tests run against every TableBackend implementation.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "storage/backend.h"
#include "tests/test_util.h"

namespace streamsi {
namespace {

class BackendConformanceTest
    : public ::testing::TestWithParam<BackendType> {
 protected:
  void SetUp() override {
    BackendOptions options;
    options.path = dir_.path() + "/db";
    options.sync_mode = SyncMode::kNone;
    auto backend = OpenBackend(GetParam(), options);
    ASSERT_TRUE(backend.ok()) << backend.status().ToString();
    backend_ = std::move(backend).value();
  }

  testing::TempDir dir_;
  std::unique_ptr<TableBackend> backend_;
};

TEST_P(BackendConformanceTest, GetMissingIsNotFound) {
  std::string value;
  EXPECT_TRUE(backend_->Get("nope", &value).IsNotFound());
}

TEST_P(BackendConformanceTest, PutThenGet) {
  ASSERT_TRUE(backend_->Put("k", "v", false).ok());
  std::string value;
  ASSERT_TRUE(backend_->Get("k", &value).ok());
  EXPECT_EQ(value, "v");
}

TEST_P(BackendConformanceTest, PutOverwrites) {
  ASSERT_TRUE(backend_->Put("k", "v1", false).ok());
  ASSERT_TRUE(backend_->Put("k", "v2", false).ok());
  std::string value;
  ASSERT_TRUE(backend_->Get("k", &value).ok());
  EXPECT_EQ(value, "v2");
}

TEST_P(BackendConformanceTest, DeleteRemoves) {
  ASSERT_TRUE(backend_->Put("k", "v", false).ok());
  ASSERT_TRUE(backend_->Delete("k", false).ok());
  std::string value;
  EXPECT_TRUE(backend_->Get("k", &value).IsNotFound());
}

TEST_P(BackendConformanceTest, DeleteMissingIsOk) {
  EXPECT_TRUE(backend_->Delete("never-existed", false).ok());
}

TEST_P(BackendConformanceTest, ScanSeesAllLiveEntries) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        backend_->Put("key" + std::to_string(i), std::to_string(i), false)
            .ok());
  }
  ASSERT_TRUE(backend_->Delete("key50", false).ok());
  std::set<std::string> seen;
  ASSERT_TRUE(backend_
                  ->Scan([&](std::string_view key, std::string_view) {
                    seen.insert(std::string(key));
                    return true;
                  })
                  .ok());
  EXPECT_EQ(seen.size(), 99u);
  EXPECT_EQ(seen.count("key50"), 0u);
  EXPECT_EQ(seen.count("key99"), 1u);
}

TEST_P(BackendConformanceTest, ScanEarlyStop) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(backend_->Put("k" + std::to_string(i), "v", false).ok());
  }
  int visited = 0;
  ASSERT_TRUE(backend_
                  ->Scan([&](std::string_view, std::string_view) {
                    return ++visited < 4;
                  })
                  .ok());
  EXPECT_EQ(visited, 4);
}

TEST_P(BackendConformanceTest, EmptyValueAllowed) {
  ASSERT_TRUE(backend_->Put("k", "", false).ok());
  std::string value = "sentinel";
  ASSERT_TRUE(backend_->Get("k", &value).ok());
  EXPECT_TRUE(value.empty());
}

TEST_P(BackendConformanceTest, BinaryKeysAndValues) {
  const std::string key("\x00\x01\xFF\x7F", 4);
  const std::string value("\xDE\xAD\x00\xBE\xEF", 5);
  ASSERT_TRUE(backend_->Put(key, value, false).ok());
  std::string out;
  ASSERT_TRUE(backend_->Get(key, &out).ok());
  EXPECT_EQ(out, value);
}

TEST_P(BackendConformanceTest, ApproximateCountTracksInserts) {
  EXPECT_EQ(backend_->ApproximateCount(), 0u);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(backend_->Put("k" + std::to_string(i), "v", false).ok());
  }
  EXPECT_GE(backend_->ApproximateCount(), 50u);
}

TEST_P(BackendConformanceTest, ManyEntries) {
  for (int i = 0; i < 20000; ++i) {
    ASSERT_TRUE(
        backend_->Put("key" + std::to_string(i), std::to_string(i * 3), false)
            .ok());
  }
  std::string value;
  ASSERT_TRUE(backend_->Get("key19999", &value).ok());
  EXPECT_EQ(value, "59997");
  ASSERT_TRUE(backend_->Get("key0", &value).ok());
  EXPECT_EQ(value, "0");
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendConformanceTest,
                         ::testing::Values(BackendType::kHash,
                                           BackendType::kSkipList,
                                           BackendType::kLsm),
                         [](const auto& info) {
                           switch (info.param) {
                             case BackendType::kHash:
                               return "Hash";
                             case BackendType::kSkipList:
                               return "SkipList";
                             case BackendType::kLsm:
                               return "Lsm";
                           }
                           return "Unknown";
                         });

TEST(BackendFactoryTest, ParseNames) {
  EXPECT_TRUE(ParseBackendType("hash").ok());
  EXPECT_TRUE(ParseBackendType("skiplist").ok());
  EXPECT_TRUE(ParseBackendType("lsm").ok());
  EXPECT_FALSE(ParseBackendType("rocksdb").ok());
}

TEST(BackendFactoryTest, LsmRequiresPath) {
  BackendOptions options;  // empty path
  EXPECT_FALSE(OpenBackend(BackendType::kLsm, options).ok());
}

}  // namespace
}  // namespace streamsi
