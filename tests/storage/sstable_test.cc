#include "storage/sstable.h"

#include <gtest/gtest.h>

#include <map>

#include "storage/bloom.h"
#include "tests/test_util.h"

namespace streamsi {
namespace {

class SsTableTest : public ::testing::Test {
 protected:
  std::string Path(const std::string& name = "t.sst") const {
    return dir_.path() + "/" + name;
  }
  testing::TempDir dir_;
};

TEST_F(SsTableTest, WriteAndPointLookup) {
  SsTableWriter writer(4096, 10);
  ASSERT_TRUE(writer.Open(Path()).ok());
  for (int i = 0; i < 1000; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%05d", i);
    ASSERT_TRUE(writer.Add(key, "value" + std::to_string(i), false).ok());
  }
  ASSERT_TRUE(writer.Finish().ok());

  auto reader = SsTableReader::Open(Path());
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ((*reader)->entry_count(), 1000u);

  std::string value;
  bool found = false;
  bool tombstone = false;
  ASSERT_TRUE((*reader)->Get("key00500", &value, &found, &tombstone).ok());
  EXPECT_TRUE(found);
  EXPECT_FALSE(tombstone);
  EXPECT_EQ(value, "value500");

  ASSERT_TRUE((*reader)->Get("key99999", &value, &found, &tombstone).ok());
  EXPECT_FALSE(found);
}

TEST_F(SsTableTest, OutOfOrderKeysRejected) {
  SsTableWriter writer(4096, 10);
  ASSERT_TRUE(writer.Open(Path()).ok());
  ASSERT_TRUE(writer.Add("b", "1", false).ok());
  EXPECT_TRUE(writer.Add("a", "2", false).IsInvalidArgument());
  EXPECT_TRUE(writer.Add("b", "dup", false).IsInvalidArgument());
}

TEST_F(SsTableTest, TombstonesRoundTrip) {
  SsTableWriter writer(4096, 10);
  ASSERT_TRUE(writer.Open(Path()).ok());
  ASSERT_TRUE(writer.Add("dead", "", true).ok());
  ASSERT_TRUE(writer.Add("live", "v", false).ok());
  ASSERT_TRUE(writer.Finish().ok());

  auto reader = SsTableReader::Open(Path());
  ASSERT_TRUE(reader.ok());
  std::string value;
  bool found = false;
  bool tombstone = false;
  ASSERT_TRUE((*reader)->Get("dead", &value, &found, &tombstone).ok());
  EXPECT_TRUE(found);
  EXPECT_TRUE(tombstone);
  ASSERT_TRUE((*reader)->Get("live", &value, &found, &tombstone).ok());
  EXPECT_TRUE(found);
  EXPECT_FALSE(tombstone);
}

TEST_F(SsTableTest, IterateVisitsAllInOrder) {
  SsTableWriter writer(256, 10);  // small blocks: force many blocks
  ASSERT_TRUE(writer.Open(Path()).ok());
  std::map<std::string, std::string> expected;
  for (int i = 0; i < 500; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%04d", i);
    expected[key] = std::to_string(i);
    ASSERT_TRUE(writer.Add(key, std::to_string(i), false).ok());
  }
  ASSERT_TRUE(writer.Finish().ok());

  auto reader = SsTableReader::Open(Path());
  ASSERT_TRUE(reader.ok());
  std::string prev;
  std::size_t count = 0;
  ASSERT_TRUE((*reader)
                  ->Iterate([&](std::string_view key, std::string_view value,
                                bool tombstone) {
                    EXPECT_FALSE(tombstone);
                    EXPECT_GT(std::string(key), prev);
                    prev = std::string(key);
                    EXPECT_EQ(expected[std::string(key)], value);
                    ++count;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(count, 500u);
}

TEST_F(SsTableTest, EmptyTableIsValid) {
  SsTableWriter writer(4096, 10);
  ASSERT_TRUE(writer.Open(Path()).ok());
  ASSERT_TRUE(writer.Finish().ok());
  auto reader = SsTableReader::Open(Path());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->entry_count(), 0u);
  std::string value;
  bool found = true;
  bool tombstone = false;
  ASSERT_TRUE((*reader)->Get("anything", &value, &found, &tombstone).ok());
  EXPECT_FALSE(found);
}

TEST_F(SsTableTest, CorruptedBlockDetected) {
  SsTableWriter writer(4096, 0);  // no bloom (we want the read to happen)
  ASSERT_TRUE(writer.Open(Path()).ok());
  ASSERT_TRUE(writer.Add("key", std::string(100, 'v'), false).ok());
  ASSERT_TRUE(writer.Finish().ok());

  std::string contents;
  ASSERT_TRUE(fsutil::ReadFileToString(Path(), &contents).ok());
  contents[10] ^= 0xFF;  // corrupt inside the data block
  ASSERT_TRUE(fsutil::WriteStringToFileAtomic(Path(), contents).ok());

  auto reader = SsTableReader::Open(Path());
  ASSERT_TRUE(reader.ok());  // footer/index still fine
  std::string value;
  bool found = false;
  bool tombstone = false;
  EXPECT_TRUE(
      (*reader)->Get("key", &value, &found, &tombstone).IsCorruption());
}

TEST_F(SsTableTest, TruncatedFileRejected) {
  ASSERT_TRUE(fsutil::WriteStringToFileAtomic(Path(), "short").ok());
  EXPECT_TRUE(SsTableReader::Open(Path()).status().IsCorruption());
}

TEST(BloomFilterTest, NoFalseNegatives) {
  std::vector<std::string> keys;
  for (int i = 0; i < 1000; ++i) keys.push_back("key" + std::to_string(i));
  const std::string filter = BloomFilter::Build(keys, 10);
  for (const auto& key : keys) {
    EXPECT_TRUE(BloomFilter::MayContain(filter, key)) << key;
  }
}

TEST(BloomFilterTest, LowFalsePositiveRate) {
  std::vector<std::string> keys;
  for (int i = 0; i < 10000; ++i) keys.push_back("in" + std::to_string(i));
  const std::string filter = BloomFilter::Build(keys, 10);
  int false_positives = 0;
  for (int i = 0; i < 10000; ++i) {
    if (BloomFilter::MayContain(filter, "out" + std::to_string(i))) {
      ++false_positives;
    }
  }
  // 10 bits/key gives ~1 % theoretical; allow ample slack.
  EXPECT_LT(false_positives, 500);
}

TEST(BloomFilterTest, EmptyFilterFailsOpen) {
  EXPECT_TRUE(BloomFilter::MayContain("", "anything"));
  EXPECT_TRUE(BloomFilter::MayContain(BloomFilter::Build({}, 10), "x"));
}

}  // namespace
}  // namespace streamsi
