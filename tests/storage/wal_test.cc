#include "storage/wal.h"

#include <gtest/gtest.h>

#include <vector>

#include "tests/test_util.h"

namespace streamsi {
namespace {

class WalTest : public ::testing::Test {
 protected:
  std::string WalPath() const { return dir_.path() + "/test.wal"; }
  testing::TempDir dir_;
};

TEST_F(WalTest, RoundTrip) {
  {
    WalWriter writer(SyncMode::kNone, 0);
    ASSERT_TRUE(writer.Open(WalPath(), true).ok());
    ASSERT_TRUE(writer.Append(WalRecordType::kPut, "alpha", false).ok());
    ASSERT_TRUE(writer.Append(WalRecordType::kDelete, "bravo", false).ok());
    ASSERT_TRUE(writer.Append(WalRecordType::kCheckpoint, "", true).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  std::vector<std::pair<WalRecordType, std::string>> records;
  WalReader::ReplayStats stats;
  ASSERT_TRUE(WalReader::Replay(
                  WalPath(),
                  [&](WalRecordType type, std::string_view payload) {
                    records.emplace_back(type, std::string(payload));
                    return Status::OK();
                  },
                  &stats)
                  .ok());
  ASSERT_EQ(records.size(), 3u);
  EXPECT_FALSE(stats.tail_truncated);
  EXPECT_EQ(records[0].first, WalRecordType::kPut);
  EXPECT_EQ(records[0].second, "alpha");
  EXPECT_EQ(records[1].first, WalRecordType::kDelete);
  EXPECT_EQ(records[1].second, "bravo");
  EXPECT_EQ(records[2].first, WalRecordType::kCheckpoint);
  EXPECT_TRUE(records[2].second.empty());
}

TEST_F(WalTest, EmptyLogReplaysZeroRecords) {
  {
    WalWriter writer(SyncMode::kNone, 0);
    ASSERT_TRUE(writer.Open(WalPath(), true).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  WalReader::ReplayStats stats;
  ASSERT_TRUE(WalReader::Replay(
                  WalPath(),
                  [&](WalRecordType, std::string_view) { return Status::OK(); },
                  &stats)
                  .ok());
  EXPECT_EQ(stats.records, 0u);
  EXPECT_FALSE(stats.tail_truncated);
}

TEST_F(WalTest, TornTailIsTruncatedNotFatal) {
  {
    WalWriter writer(SyncMode::kNone, 0);
    ASSERT_TRUE(writer.Open(WalPath(), true).ok());
    ASSERT_TRUE(writer.Append(WalRecordType::kPut, "complete", true).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  // Simulate a crash mid-append: write garbage that looks like a frame
  // header promising more bytes than exist.
  {
    WritableFile file;
    ASSERT_TRUE(file.Open(WalPath(), false).ok());
    ASSERT_TRUE(file.Append(std::string("\x11\x22\x33\x44\xFF\x00\x00\x00x",
                                        9))
                    .ok());
    ASSERT_TRUE(file.Close().ok());
  }
  std::vector<std::string> payloads;
  WalReader::ReplayStats stats;
  ASSERT_TRUE(WalReader::Replay(
                  WalPath(),
                  [&](WalRecordType, std::string_view payload) {
                    payloads.emplace_back(payload);
                    return Status::OK();
                  },
                  &stats)
                  .ok());
  ASSERT_EQ(payloads.size(), 1u);
  EXPECT_EQ(payloads[0], "complete");
  EXPECT_TRUE(stats.tail_truncated);
}

TEST_F(WalTest, CorruptRecordStopsReplay) {
  {
    WalWriter writer(SyncMode::kNone, 0);
    ASSERT_TRUE(writer.Open(WalPath(), true).ok());
    ASSERT_TRUE(writer.Append(WalRecordType::kPut, "first", false).ok());
    ASSERT_TRUE(writer.Append(WalRecordType::kPut, "second", true).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  // Flip a byte inside the first record's payload.
  std::string contents;
  ASSERT_TRUE(fsutil::ReadFileToString(WalPath(), &contents).ok());
  contents[10] ^= 0x5A;
  ASSERT_TRUE(fsutil::WriteStringToFileAtomic(WalPath(), contents).ok());

  std::vector<std::string> payloads;
  WalReader::ReplayStats stats;
  ASSERT_TRUE(WalReader::Replay(
                  WalPath(),
                  [&](WalRecordType, std::string_view payload) {
                    payloads.emplace_back(payload);
                    return Status::OK();
                  },
                  &stats)
                  .ok());
  EXPECT_TRUE(payloads.empty());  // corruption detected on record 1
  EXPECT_TRUE(stats.tail_truncated);
}

TEST_F(WalTest, SimulatedSyncAddsLatency) {
  WalWriter writer(SyncMode::kSimulated, 2000);  // 2 ms
  ASSERT_TRUE(writer.Open(WalPath(), true).ok());
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(writer.Append(WalRecordType::kPut, "x", true).ok());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
                .count(),
            1800);
  ASSERT_TRUE(writer.Close().ok());
}

TEST_F(WalTest, LargePayloads) {
  const std::string big(1 << 20, 'B');
  {
    WalWriter writer(SyncMode::kNone, 0);
    ASSERT_TRUE(writer.Open(WalPath(), true).ok());
    ASSERT_TRUE(writer.Append(WalRecordType::kPut, big, true).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  std::string got;
  ASSERT_TRUE(WalReader::Replay(
                  WalPath(),
                  [&](WalRecordType, std::string_view payload) {
                    got = std::string(payload);
                    return Status::OK();
                  },
                  nullptr)
                  .ok());
  EXPECT_EQ(got, big);
}

}  // namespace
}  // namespace streamsi
