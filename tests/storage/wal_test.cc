#include "storage/wal.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "tests/test_util.h"

namespace streamsi {
namespace {

class WalTest : public ::testing::Test {
 protected:
  std::string WalPath() const { return dir_.path() + "/test.wal"; }
  testing::TempDir dir_;
};

TEST_F(WalTest, RoundTrip) {
  {
    WalWriter writer(SyncMode::kNone, 0);
    ASSERT_TRUE(writer.Open(WalPath(), true).ok());
    ASSERT_TRUE(writer.Append(WalRecordType::kPut, "alpha", false).ok());
    ASSERT_TRUE(writer.Append(WalRecordType::kDelete, "bravo", false).ok());
    ASSERT_TRUE(writer.Append(WalRecordType::kCheckpoint, "", true).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  std::vector<std::pair<WalRecordType, std::string>> records;
  WalReader::ReplayStats stats;
  ASSERT_TRUE(WalReader::Replay(
                  WalPath(),
                  [&](WalRecordType type, std::string_view payload) {
                    records.emplace_back(type, std::string(payload));
                    return Status::OK();
                  },
                  &stats)
                  .ok());
  ASSERT_EQ(records.size(), 3u);
  EXPECT_FALSE(stats.tail_truncated);
  EXPECT_EQ(records[0].first, WalRecordType::kPut);
  EXPECT_EQ(records[0].second, "alpha");
  EXPECT_EQ(records[1].first, WalRecordType::kDelete);
  EXPECT_EQ(records[1].second, "bravo");
  EXPECT_EQ(records[2].first, WalRecordType::kCheckpoint);
  EXPECT_TRUE(records[2].second.empty());
}

TEST_F(WalTest, EmptyLogReplaysZeroRecords) {
  {
    WalWriter writer(SyncMode::kNone, 0);
    ASSERT_TRUE(writer.Open(WalPath(), true).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  WalReader::ReplayStats stats;
  ASSERT_TRUE(WalReader::Replay(
                  WalPath(),
                  [&](WalRecordType, std::string_view) { return Status::OK(); },
                  &stats)
                  .ok());
  EXPECT_EQ(stats.records, 0u);
  EXPECT_FALSE(stats.tail_truncated);
}

TEST_F(WalTest, TornTailIsTruncatedNotFatal) {
  {
    WalWriter writer(SyncMode::kNone, 0);
    ASSERT_TRUE(writer.Open(WalPath(), true).ok());
    ASSERT_TRUE(writer.Append(WalRecordType::kPut, "complete", true).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  // Simulate a crash mid-append: write garbage that looks like a frame
  // header promising more bytes than exist.
  {
    auto file = Env::Default()->NewWritableFile(WalPath(), false);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)
                    ->Append(std::string("\x11\x22\x33\x44\xFF\x00\x00\x00x",
                                         9))
                    .ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  std::vector<std::string> payloads;
  WalReader::ReplayStats stats;
  ASSERT_TRUE(WalReader::Replay(
                  WalPath(),
                  [&](WalRecordType, std::string_view payload) {
                    payloads.emplace_back(payload);
                    return Status::OK();
                  },
                  &stats)
                  .ok());
  ASSERT_EQ(payloads.size(), 1u);
  EXPECT_EQ(payloads[0], "complete");
  EXPECT_TRUE(stats.tail_truncated);
}

TEST_F(WalTest, CorruptRecordStopsReplay) {
  {
    WalWriter writer(SyncMode::kNone, 0);
    ASSERT_TRUE(writer.Open(WalPath(), true).ok());
    ASSERT_TRUE(writer.Append(WalRecordType::kPut, "first", false).ok());
    ASSERT_TRUE(writer.Append(WalRecordType::kPut, "second", true).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  // Flip a byte inside the first record's payload.
  std::string contents;
  ASSERT_TRUE(fsutil::ReadFileToString(WalPath(), &contents).ok());
  contents[10] ^= 0x5A;
  ASSERT_TRUE(fsutil::WriteStringToFileAtomic(WalPath(), contents).ok());

  std::vector<std::string> payloads;
  WalReader::ReplayStats stats;
  ASSERT_TRUE(WalReader::Replay(
                  WalPath(),
                  [&](WalRecordType, std::string_view payload) {
                    payloads.emplace_back(payload);
                    return Status::OK();
                  },
                  &stats)
                  .ok());
  EXPECT_TRUE(payloads.empty());  // corruption detected on record 1
  EXPECT_TRUE(stats.tail_truncated);
}

TEST_F(WalTest, SimulatedSyncAddsLatency) {
  WalWriter writer(SyncMode::kSimulated, 2000);  // 2 ms
  ASSERT_TRUE(writer.Open(WalPath(), true).ok());
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(writer.Append(WalRecordType::kPut, "x", true).ok());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
                .count(),
            1800);
  ASSERT_TRUE(writer.Close().ok());
}

TEST_F(WalTest, ConcurrentSyncAppendersGroupIntoBatches) {
  constexpr int kThreads = 8;
  constexpr int kRecordsPerThread = 50;
  WalWriter writer(SyncMode::kSimulated, 200);  // sync slow enough to batch
  ASSERT_TRUE(writer.Open(WalPath(), true).ok());

  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kRecordsPerThread; ++i) {
        const std::string payload =
            "t" + std::to_string(t) + "-" + std::to_string(i);
        ASSERT_TRUE(writer.Append(WalRecordType::kPut, payload, true).ok());
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  const std::uint64_t batches = writer.batches_written();
  ASSERT_TRUE(writer.Close().ok());

  // Every record must replay, in a consistent frame stream.
  std::vector<std::string> payloads;
  WalReader::ReplayStats stats;
  ASSERT_TRUE(WalReader::Replay(
                  WalPath(),
                  [&](WalRecordType, std::string_view payload) {
                    payloads.emplace_back(payload);
                    return Status::OK();
                  },
                  &stats)
                  .ok());
  EXPECT_EQ(payloads.size(),
            static_cast<std::size_t>(kThreads) * kRecordsPerThread);
  EXPECT_FALSE(stats.tail_truncated);
  // Group commit must have amortized syncs: strictly fewer batches than
  // records (with 8 threads against a 200us sync this batches heavily).
  EXPECT_LT(batches, static_cast<std::uint64_t>(kThreads) *
                         kRecordsPerThread);
  // Per-thread record order is preserved within the global stream.
  for (int t = 0; t < kThreads; ++t) {
    int expected = 0;
    const std::string prefix = "t" + std::to_string(t) + "-";
    for (const auto& p : payloads) {
      if (p.compare(0, prefix.size(), prefix) == 0) {
        EXPECT_EQ(p, prefix + std::to_string(expected++));
      }
    }
    EXPECT_EQ(expected, kRecordsPerThread);
  }
}

TEST_F(WalTest, TornBatchTailRecoversToPrefixOfWholeRecords) {
  // Build a multi-record batch by appending through one writer, then chop
  // the file mid-record (a crash during the batch write): replay must
  // deliver exactly the whole-record prefix.
  {
    WalWriter writer(SyncMode::kNone, 0);
    ASSERT_TRUE(writer.Open(WalPath(), true).ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(writer
                      .Append(WalRecordType::kPut,
                              "commit-" + std::to_string(i), true)
                      .ok());
    }
    ASSERT_TRUE(writer.Close().ok());
  }
  std::string contents;
  ASSERT_TRUE(fsutil::ReadFileToString(WalPath(), &contents).ok());
  // Cut inside the 8th record's payload.
  const std::size_t frame = 9 + std::string("commit-0").size();
  const std::size_t cut = 7 * frame + frame / 2;
  ASSERT_LT(cut, contents.size());
  ASSERT_TRUE(
      fsutil::WriteStringToFileAtomic(WalPath(), contents.substr(0, cut))
          .ok());

  std::vector<std::string> payloads;
  WalReader::ReplayStats stats;
  ASSERT_TRUE(WalReader::Replay(
                  WalPath(),
                  [&](WalRecordType, std::string_view payload) {
                    payloads.emplace_back(payload);
                    return Status::OK();
                  },
                  &stats)
                  .ok());
  ASSERT_EQ(payloads.size(), 7u);  // whole-record prefix only
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(payloads[static_cast<std::size_t>(i)],
              "commit-" + std::to_string(i));
  }
  EXPECT_TRUE(stats.tail_truncated);
}

TEST_F(WalTest, UnsyncedRidersAreWrittenThroughAfterBatch) {
  // An unsynced append issued while a sync is in flight must still reach
  // the file without waiting for another sync.
  WalWriter writer(SyncMode::kSimulated, 1000);
  ASSERT_TRUE(writer.Open(WalPath(), true).ok());
  std::thread syncer([&] {
    ASSERT_TRUE(writer.Append(WalRecordType::kPut, "synced", true).ok());
  });
  // Race an unsynced append against the syncer (either interleaving is
  // valid; both must end up in the file).
  ASSERT_TRUE(writer.Append(WalRecordType::kPut, "rider", false).ok());
  syncer.join();
  ASSERT_TRUE(writer.Close().ok());

  std::vector<std::string> payloads;
  ASSERT_TRUE(WalReader::Replay(
                  WalPath(),
                  [&](WalRecordType, std::string_view payload) {
                    payloads.emplace_back(payload);
                    return Status::OK();
                  },
                  nullptr)
                  .ok());
  ASSERT_EQ(payloads.size(), 2u);
}

TEST_F(WalTest, LargePayloads) {
  const std::string big(1 << 20, 'B');
  {
    WalWriter writer(SyncMode::kNone, 0);
    ASSERT_TRUE(writer.Open(WalPath(), true).ok());
    ASSERT_TRUE(writer.Append(WalRecordType::kPut, big, true).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  std::string got;
  ASSERT_TRUE(WalReader::Replay(
                  WalPath(),
                  [&](WalRecordType, std::string_view payload) {
                    got = std::string(payload);
                    return Status::OK();
                  },
                  nullptr)
                  .ok());
  EXPECT_EQ(got, big);
}

TEST_F(WalTest, RotateToSplitsRecordsAcrossSegments) {
  const std::string second = dir_.path() + "/test.wal.1";
  {
    WalWriter writer(SyncMode::kNone, 0);
    ASSERT_TRUE(writer.Open(WalPath(), true).ok());
    ASSERT_TRUE(writer.Append(WalRecordType::kPut, "before", true).ok());
    ASSERT_TRUE(writer.Append(WalRecordType::kPut, "rider", false).ok());
    ASSERT_TRUE(writer.RotateTo(second).ok());
    ASSERT_TRUE(writer.Append(WalRecordType::kPut, "after", true).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  // Every record lives in exactly one segment — pre-rotation records
  // (including the buffered unsynced rider) in the old file, later ones in
  // the new file.
  const auto collect = [](const std::string& path) {
    std::vector<std::string> payloads;
    EXPECT_TRUE(WalReader::Replay(
                    path,
                    [&](WalRecordType, std::string_view payload) {
                      payloads.emplace_back(payload);
                      return Status::OK();
                    },
                    nullptr)
                    .ok());
    return payloads;
  };
  EXPECT_EQ(collect(WalPath()),
            (std::vector<std::string>{"before", "rider"}));
  EXPECT_EQ(collect(second), (std::vector<std::string>{"after"}));
}

TEST_F(WalTest, RotateToDrainsConcurrentSyncAppenders) {
  // Sync appenders racing a rotation must come back durable from exactly
  // one of the two segments — never lost, never duplicated.
  const std::string second = dir_.path() + "/test.wal.1";
  WalWriter writer(SyncMode::kSimulated, 200);
  ASSERT_TRUE(writer.Open(WalPath(), true).ok());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 16;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string payload =
            std::to_string(t) + ":" + std::to_string(i);
        ASSERT_TRUE(
            writer.Append(WalRecordType::kPut, payload, true).ok());
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_TRUE(writer.RotateTo(second).ok());
  for (auto& thread : threads) thread.join();
  ASSERT_TRUE(writer.Close().ok());

  std::vector<std::string> seen;
  for (const std::string& path : {WalPath(), second}) {
    ASSERT_TRUE(WalReader::Replay(
                    path,
                    [&](WalRecordType, std::string_view payload) {
                      seen.emplace_back(payload);
                      return Status::OK();
                    },
                    nullptr)
                    .ok());
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_TRUE(std::adjacent_find(seen.begin(), seen.end()) == seen.end())
      << "a record was written to both segments";
}

}  // namespace
}  // namespace streamsi
