#include "storage/skiplist.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace streamsi {
namespace {

TEST(SkipListTest, GetMissingReturnsFalse) {
  SkipList list;
  std::string value;
  EXPECT_FALSE(list.Get("missing", &value));
}

TEST(SkipListTest, UpsertThenGet) {
  SkipList list;
  list.Upsert("a", "1");
  list.Upsert("b", "2");
  std::string value;
  ASSERT_TRUE(list.Get("a", &value));
  EXPECT_EQ(value, "1");
  ASSERT_TRUE(list.Get("b", &value));
  EXPECT_EQ(value, "2");
}

TEST(SkipListTest, UpsertOverwrites) {
  SkipList list;
  list.Upsert("k", "old");
  list.Upsert("k", "new");
  std::string value;
  ASSERT_TRUE(list.Get("k", &value));
  EXPECT_EQ(value, "new");
  EXPECT_EQ(list.NodeCount(), 1u);
}

TEST(SkipListTest, TombstoneHidesKey) {
  SkipList list;
  list.Upsert("k", "v");
  list.Upsert("k", "", /*tombstone=*/true);
  std::string value;
  bool tombstone = false;
  EXPECT_FALSE(list.Get("k", &value, &tombstone));
  EXPECT_TRUE(tombstone);
  // Re-inserting revives it.
  list.Upsert("k", "v2");
  ASSERT_TRUE(list.Get("k", &value));
  EXPECT_EQ(value, "v2");
}

TEST(SkipListTest, IterateInKeyOrder) {
  SkipList list;
  list.Upsert("delta", "4");
  list.Upsert("alpha", "1");
  list.Upsert("charlie", "3");
  list.Upsert("bravo", "2");
  std::vector<std::string> keys;
  list.Iterate([&](std::string_view key, std::string_view, bool) {
    keys.emplace_back(key);
    return true;
  });
  ASSERT_EQ(keys.size(), 4u);
  EXPECT_EQ(keys[0], "alpha");
  EXPECT_EQ(keys[1], "bravo");
  EXPECT_EQ(keys[2], "charlie");
  EXPECT_EQ(keys[3], "delta");
}

TEST(SkipListTest, IterateEarlyStop) {
  SkipList list;
  for (int i = 0; i < 10; ++i) list.Upsert("k" + std::to_string(i), "v");
  int visited = 0;
  list.Iterate([&](std::string_view, std::string_view, bool) {
    return ++visited < 3;
  });
  EXPECT_EQ(visited, 3);
}

TEST(SkipListTest, ManyKeysSorted) {
  SkipList list;
  for (int i = 9999; i >= 0; --i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%05d", i);
    list.Upsert(buf, std::to_string(i));
  }
  EXPECT_EQ(list.NodeCount(), 10000u);
  std::string prev;
  bool sorted = true;
  list.Iterate([&](std::string_view key, std::string_view, bool) {
    if (!prev.empty() && std::string(key) <= prev) sorted = false;
    prev = std::string(key);
    return true;
  });
  EXPECT_TRUE(sorted);
}

TEST(SkipListTest, ApproximateBytesGrows) {
  SkipList list;
  const auto before = list.ApproximateBytes();
  list.Upsert("key", std::string(1000, 'v'));
  EXPECT_GT(list.ApproximateBytes(), before + 1000);
}

TEST(SkipListTest, ConcurrentDisjointWriters) {
  SkipList list;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        list.Upsert("t" + std::to_string(t) + "_" + std::to_string(i),
                    std::to_string(i));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(list.NodeCount(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::string value;
  ASSERT_TRUE(list.Get("t2_4999", &value));
  EXPECT_EQ(value, "4999");
}

TEST(SkipListTest, ConcurrentReadersDuringWrites) {
  SkipList list;
  std::atomic<bool> stop{false};
  std::atomic<bool> fail{false};
  std::thread writer([&] {
    for (int i = 0; i < 20000; ++i) {
      list.Upsert("w" + std::to_string(i), std::to_string(i));
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        std::string value;
        if (list.Get("w100", &value) && value != "100") fail.store(true);
      }
    });
  }
  writer.join();
  for (auto& reader : readers) reader.join();
  EXPECT_FALSE(fail.load());
}

}  // namespace
}  // namespace streamsi
