#include "storage/lsm_backend.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/coding.h"
#include "tests/test_util.h"

namespace streamsi {
namespace {

class LsmBackendTest : public ::testing::Test {
 protected:
  BackendOptions Options() {
    BackendOptions options;
    options.path = dir_.path() + "/lsm";
    options.sync_mode = SyncMode::kNone;
    options.memtable_bytes = 16 * 1024;  // small: force flushes
    options.l0_compaction_trigger = 3;
    return options;
  }

  testing::TempDir dir_;
};

TEST_F(LsmBackendTest, SurvivesReopenViaWal) {
  auto options = Options();
  {
    auto backend = LsmBackend::Open(options);
    ASSERT_TRUE(backend.ok());
    ASSERT_TRUE((*backend)->Put("persist", "me", true).ok());
    ASSERT_TRUE((*backend)->Put("and", "me-too", true).ok());
    // No Flush: data only in WAL + memtable.
  }
  auto backend = LsmBackend::Open(options);
  ASSERT_TRUE(backend.ok());
  std::string value;
  ASSERT_TRUE((*backend)->Get("persist", &value).ok());
  EXPECT_EQ(value, "me");
  ASSERT_TRUE((*backend)->Get("and", &value).ok());
  EXPECT_EQ(value, "me-too");
}

TEST_F(LsmBackendTest, SurvivesReopenViaSsTables) {
  auto options = Options();
  {
    auto backend = LsmBackend::Open(options);
    ASSERT_TRUE(backend.ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(
          (*backend)->Put("k" + std::to_string(i), std::to_string(i), false)
              .ok());
    }
    ASSERT_TRUE((*backend)->Flush().ok());
    EXPECT_GE((*backend)->FlushCount(), 1u);
  }
  auto backend = LsmBackend::Open(options);
  ASSERT_TRUE(backend.ok());
  EXPECT_GE((*backend)->SsTableCount(), 1);
  std::string value;
  ASSERT_TRUE((*backend)->Get("k42", &value).ok());
  EXPECT_EQ(value, "42");
}

TEST_F(LsmBackendTest, DeleteSurvivesFlushAndReopen) {
  auto options = Options();
  {
    auto backend = LsmBackend::Open(options);
    ASSERT_TRUE(backend.ok());
    ASSERT_TRUE((*backend)->Put("gone", "soon", false).ok());
    ASSERT_TRUE((*backend)->Flush().ok());
    ASSERT_TRUE((*backend)->Delete("gone", true).ok());
  }
  auto backend = LsmBackend::Open(options);
  ASSERT_TRUE(backend.ok());
  std::string value;
  EXPECT_TRUE((*backend)->Get("gone", &value).IsNotFound());
}

TEST_F(LsmBackendTest, NewerSsTableShadowsOlder) {
  auto backend = LsmBackend::Open(Options());
  ASSERT_TRUE(backend.ok());
  ASSERT_TRUE((*backend)->Put("k", "old", false).ok());
  ASSERT_TRUE((*backend)->Flush().ok());
  ASSERT_TRUE((*backend)->Put("k", "new", false).ok());
  ASSERT_TRUE((*backend)->Flush().ok());
  std::string value;
  ASSERT_TRUE((*backend)->Get("k", &value).ok());
  EXPECT_EQ(value, "new");
}

TEST_F(LsmBackendTest, CompactionMergesAndDropsTombstones) {
  auto options = Options();
  options.l0_compaction_trigger = 2;
  auto backend = LsmBackend::Open(options);
  ASSERT_TRUE(backend.ok());
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE((*backend)
                      ->Put("k" + std::to_string(i),
                            "r" + std::to_string(round), false)
                      .ok());
    }
    ASSERT_TRUE((*backend)->Delete("k0", false).ok());
    ASSERT_TRUE((*backend)->Flush().ok());
  }
  EXPECT_GE((*backend)->CompactionCount(), 1u);
  EXPECT_LE((*backend)->SsTableCount(), options.l0_compaction_trigger + 1);
  std::string value;
  ASSERT_TRUE((*backend)->Get("k1", &value).ok());
  EXPECT_EQ(value, "r3");
  EXPECT_TRUE((*backend)->Get("k0", &value).IsNotFound());
}

TEST_F(LsmBackendTest, AutomaticFlushOnMemtableFull) {
  auto backend = LsmBackend::Open(Options());
  ASSERT_TRUE(backend.ok());
  const std::string big_value(1024, 'x');
  for (int i = 0; i < 64; ++i) {  // 64 KiB >> 16 KiB memtable
    ASSERT_TRUE(
        (*backend)->Put("key" + std::to_string(i), big_value, false).ok());
  }
  // Filling the memtable seals it; the flush itself happens on the
  // background worker — wait for it (bounded).
  for (int i = 0; i < 1000 && (*backend)->FlushCount() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE((*backend)->FlushCount(), 1u);
  std::string value;
  ASSERT_TRUE((*backend)->Get("key0", &value).ok());
  EXPECT_EQ(value, big_value);
}

TEST_F(LsmBackendTest, FlushAndCompactionRunOnlyOnBackgroundWorker) {
  // The do-not-regress invariant of the PR 5 rebuild: a writer thread never
  // pays a flush or merge compaction inline — every one of them runs on
  // the background worker.
  auto options = Options();
  options.l0_compaction_trigger = 2;
  auto backend = LsmBackend::Open(options);
  ASSERT_TRUE(backend.ok());
  const std::string big_value(1024, 'x');
  for (int i = 0; i < 256; ++i) {
    ASSERT_TRUE(
        (*backend)->Put("key" + std::to_string(i % 64), big_value, false)
            .ok());
  }
  ASSERT_TRUE((*backend)->Flush().ok());
  EXPECT_GE((*backend)->FlushCount(), 2u);
  EXPECT_GE((*backend)->CompactionCount(), 1u);
  EXPECT_EQ((*backend)->FlushCount(), (*backend)->BackgroundFlushCount());
  EXPECT_EQ((*backend)->CompactionCount(),
            (*backend)->BackgroundCompactionCount());
  EXPECT_EQ((*backend)->SealedMemtableCount(), 0);
}

TEST_F(LsmBackendTest, WriterStallsOnlyAtSealedMemtableCeiling) {
  auto options = Options();
  options.max_sealed_memtables = 1;  // tightest ceiling
  options.memtable_bytes = 4 * 1024;
  auto backend = LsmBackend::Open(options);
  ASSERT_TRUE(backend.ok());
  const std::string big_value(1024, 'x');
  for (int i = 0; i < 128; ++i) {
    ASSERT_TRUE(
        (*backend)->Put("key" + std::to_string(i), big_value, false).ok());
  }
  ASSERT_TRUE((*backend)->Flush().ok());
  // Every write succeeded; the only interaction with the flush machinery
  // was bounded stalling at the ceiling (lossless backpressure).
  std::string value;
  ASSERT_TRUE((*backend)->Get("key127", &value).ok());
  EXPECT_EQ(value, big_value);
  EXPECT_EQ((*backend)->FlushCount(), (*backend)->BackgroundFlushCount());
}

TEST_F(LsmBackendTest, RecoveryReplaysWalSegmentsInOrder) {
  // Multi-segment WAL chain: newer segments' records must overwrite older
  // ones on replay (a sealed-but-unflushed memtable's segment plus the
  // active segment after a crash).
  auto options = Options();
  {
    auto backend = LsmBackend::Open(options);
    ASSERT_TRUE(backend.ok());
    ASSERT_TRUE((*backend)->Put("k", "old", true).ok());
    ASSERT_TRUE((*backend)->Put("only-old", "v0", true).ok());
  }
  // Hand-write a NEWER segment, as a crash after a seal (but before the
  // background flush) would leave behind.
  {
    WalWriter writer(SyncMode::kNone, 0);
    ASSERT_TRUE(
        writer.Open(options.path + "/wal_000001.log", true).ok());
    std::string payload;
    PutLengthPrefixed(&payload, "k");
    PutLengthPrefixed(&payload, "new");
    ASSERT_TRUE(writer.Append(WalRecordType::kPut, payload, true).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  auto backend = LsmBackend::Open(options);
  ASSERT_TRUE(backend.ok());
  std::string value;
  ASSERT_TRUE((*backend)->Get("k", &value).ok());
  EXPECT_EQ(value, "new") << "newer WAL segment must win";
  ASSERT_TRUE((*backend)->Get("only-old", &value).ok());
  EXPECT_EQ(value, "v0");
  // Once flushed, the whole recovered chain is retired.
  ASSERT_TRUE((*backend)->Flush().ok());
  EXPECT_FALSE(fsutil::FileExists(options.path + "/wal.log"));
  EXPECT_FALSE(fsutil::FileExists(options.path + "/wal_000001.log"));
}

TEST_F(LsmBackendTest, ScanMergesMemtableAndTables) {
  auto backend = LsmBackend::Open(Options());
  ASSERT_TRUE(backend.ok());
  ASSERT_TRUE((*backend)->Put("a", "sst", false).ok());
  ASSERT_TRUE((*backend)->Put("b", "sst", false).ok());
  ASSERT_TRUE((*backend)->Flush().ok());
  ASSERT_TRUE((*backend)->Put("b", "mem", false).ok());  // shadow
  ASSERT_TRUE((*backend)->Put("c", "mem", false).ok());
  ASSERT_TRUE((*backend)->Delete("a", false).ok());

  std::map<std::string, std::string> seen;
  ASSERT_TRUE((*backend)
                  ->Scan([&](std::string_view key, std::string_view value) {
                    seen[std::string(key)] = std::string(value);
                    return true;
                  })
                  .ok());
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen["b"], "mem");
  EXPECT_EQ(seen["c"], "mem");
}

TEST_F(LsmBackendTest, RecoversAfterCrashTornWalTail) {
  auto options = Options();
  {
    auto backend = LsmBackend::Open(options);
    ASSERT_TRUE(backend.ok());
    ASSERT_TRUE((*backend)->Put("good", "data", true).ok());
  }
  // Append garbage to the WAL to simulate a torn write.
  {
    auto file =
        Env::Default()->NewWritableFile(options.path + "/wal.log", false);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("\x01\x02\x03garbage-torn-tail").ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  auto backend = LsmBackend::Open(options);
  ASSERT_TRUE(backend.ok());
  std::string value;
  ASSERT_TRUE((*backend)->Get("good", &value).ok());
  EXPECT_EQ(value, "data");
}

}  // namespace
}  // namespace streamsi
