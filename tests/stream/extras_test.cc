// Tests for the extended operators: joins, merge, CSV source/sink, and the
// each-update trigger policy.

#include <gtest/gtest.h>

#include <fstream>

#include "core/streamsi.h"
#include "stream/stream.h"
#include "tests/test_util.h"

namespace streamsi {
namespace {

template <typename T>
std::vector<StreamElement<T>> DataElements(std::vector<T> values) {
  std::vector<StreamElement<T>> out;
  Timestamp ts = 0;
  for (auto& v : values) out.emplace_back(std::move(v), ts++);
  return out;
}

TEST(SymmetricHashJoinTest, JoinsMatchingKeys) {
  Topology topology;
  using L = std::pair<int, std::string>;
  using R = std::pair<int, double>;
  using Out = std::tuple<int, std::string, double>;
  auto* left = topology.Add<VectorSource<L>>(
      DataElements<L>({{1, "a"}, {2, "b"}, {3, "c"}}));
  auto* right = topology.Add<VectorSource<R>>(
      DataElements<R>({{2, 2.5}, {3, 3.5}, {4, 4.5}}));
  auto* join = topology.Add<SymmetricHashJoin<L, R, int, Out>>(
      left, right, [](const L& l) { return l.first; },
      [](const R& r) { return r.first; },
      [](const L& l, const R& r) {
        return Out{l.first, l.second, r.second};
      });
  auto* collect = topology.Add<Collect<Out>>(join);
  topology.Start();
  collect->WaitForEos();
  topology.Join();
  auto results = collect->Elements();
  ASSERT_EQ(results.size(), 2u);
  std::set<int> keys;
  for (const auto& [k, s, d] : results) keys.insert(k);
  EXPECT_EQ(keys, (std::set<int>{2, 3}));
}

TEST(SymmetricHashJoinTest, WindowBoundsBuffer) {
  // With window=1, only the most recent left tuple per key matches.
  Publisher<std::pair<int, int>> left;
  Publisher<std::pair<int, int>> right;
  using Out = std::pair<int, int>;
  SymmetricHashJoin<std::pair<int, int>, std::pair<int, int>, int, Out> join(
      &left, &right, [](const auto& l) { return l.first; },
      [](const auto& r) { return r.first; },
      [](const auto& l, const auto& r) {
        return Out{l.second, r.second};
      },
      /*window=*/1);
  std::vector<Out> results;
  ForEach<Out> sink(&join, [&](const Out& o) { results.push_back(o); });

  left.Publish(StreamElement<std::pair<int, int>>({7, 100}));
  left.Publish(StreamElement<std::pair<int, int>>({7, 200}));  // evicts 100
  right.Publish(StreamElement<std::pair<int, int>>({7, 1}));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0], (Out{200, 1}));
}

TEST(StreamTableJoinTest, EnrichesFromTable) {
  DatabaseOptions options;
  auto db = Database::Open(options);
  auto table = TransactionalTable<std::uint32_t, double>(
      &(*db)->txn_manager(), *(*db)->CreateState("limits"));
  table.BulkLoad(1, 10.0);
  table.BulkLoad(2, 20.0);

  Topology topology;
  using In = std::pair<std::uint32_t, double>;  // (meter, reading)
  using Out = std::pair<std::uint32_t, bool>;   // (meter, over_limit)
  auto* source = topology.Add<VectorSource<In>>(
      DataElements<In>({{1, 15.0}, {2, 5.0}, {9, 1.0}}));
  auto* join =
      topology.Add<StreamTableJoin<In, std::uint32_t, double, Out>>(
          source, &(*db)->txn_manager(), table,
          [](const In& in) { return in.first; },
          [](const In& in, const double& limit) {
            return Out{in.first, in.second > limit};
          });
  auto* collect = topology.Add<Collect<Out>>(join);
  topology.Start();
  collect->WaitForEos();
  topology.Join();
  auto results = collect->Elements();
  ASSERT_EQ(results.size(), 2u);  // meter 9 has no spec row: dropped
  EXPECT_EQ(results[0], (Out{1, true}));
  EXPECT_EQ(results[1], (Out{2, false}));
  EXPECT_EQ(join->matched(), 2u);
  EXPECT_EQ(join->unmatched(), 1u);
}

TEST(MergeTest, CombinesStreamsAndWaitsForAllEos) {
  Topology topology;
  auto* s1 = topology.Add<VectorSource<int>>(DataElements<int>({1, 2}));
  auto* s2 = topology.Add<VectorSource<int>>(DataElements<int>({10, 20}));
  auto* merge =
      topology.Add<Merge<int>>(std::vector<Publisher<int>*>{s1, s2});
  auto* collect = topology.Add<Collect<int>>(merge);
  topology.Start();
  collect->WaitForEos();
  topology.Join();
  auto results = collect->Elements();
  std::multiset<int> got(results.begin(), results.end());
  EXPECT_EQ(got, (std::multiset<int>{1, 2, 10, 20}));
}

TEST(CsvTest, SourceParsesAndSinkWrites) {
  testing::TempDir dir;
  const std::string in_path = dir.path() + "/in.csv";
  const std::string out_path = dir.path() + "/out.csv";
  {
    std::ofstream out(in_path);
    out << "meter,kwh\n";  // header
    out << "1,2.5\n";
    out << "2,3.5\n";
    out << "garbage-row\n";
    out << "3,4.5\n";
  }

  struct Reading {
    std::uint32_t meter;
    double kwh;
  };
  Topology topology;
  auto* source = topology.Add<CsvSource<Reading>>(
      in_path,
      [](const std::vector<std::string>& fields)
          -> std::optional<Reading> {
        if (fields.size() != 2) return std::nullopt;
        char* end = nullptr;
        Reading r;
        r.meter = static_cast<std::uint32_t>(
            std::strtoul(fields[0].c_str(), &end, 10));
        if (end == fields[0].c_str()) return std::nullopt;
        r.kwh = std::strtod(fields[1].c_str(), nullptr);
        return r;
      },
      /*skip_header=*/true);
  auto* sink = topology.Add<CsvSink<Reading>>(
      source, out_path,
      [](const Reading& r) {
        return std::to_string(r.meter) + "," + std::to_string(r.kwh);
      },
      "meter,kwh");
  topology.Start();
  topology.Join();

  EXPECT_EQ(source->parse_errors(), 1u);
  EXPECT_EQ(sink->rows(), 3u);
  std::ifstream check(out_path);
  std::string line;
  std::getline(check, line);
  EXPECT_EQ(line, "meter,kwh");
  std::getline(check, line);
  EXPECT_EQ(line.substr(0, 2), "1,");
}

TEST(EachUpdateTest, EmitsUncommittedChangesImmediately) {
  DatabaseOptions options;
  auto db = Database::Open(options);
  auto table = TransactionalTable<std::uint32_t, double>(
      &(*db)->txn_manager(), *(*db)->CreateState("s"));
  auto ctx = std::make_shared<StreamTxnContext>(&(*db)->txn_manager());

  using In = std::pair<std::uint32_t, double>;
  Publisher<In> input;
  ToTable<In, std::uint32_t, double> to_table(
      &input, table, ctx, [](const In& t) { return t.first; },
      [](const In& t) { return t.second; });
  EachUpdateToStream<In, std::uint32_t, double> each_update(
      &to_table, [](const In& t) { return t.first; },
      [](const In& t) { return t.second; });
  std::vector<ChangeEvent<std::uint32_t, double>> events;
  ForEach<ChangeEvent<std::uint32_t, double>> sink(
      &each_update, [&](const ChangeEvent<std::uint32_t, double>& e) {
        events.push_back(e);
      });

  input.Publish(StreamElement<In>(Punctuation::kBeginTxn));
  input.Publish(StreamElement<In>({1, 1.5}));
  // Event arrives before any commit — that is the point of this policy.
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].key, 1u);
  EXPECT_EQ(events[0].commit_ts, 0u) << "uncommitted marker";
  input.Publish(StreamElement<In>(Punctuation::kRollbackTxn));
  // The rolled-back change was still emitted (dirty-read semantics).
  EXPECT_EQ(events.size(), 1u);
}

}  // namespace
}  // namespace streamsi
