#include <gtest/gtest.h>

#include "core/streamsi.h"
#include "stream/stream.h"

namespace streamsi {
namespace {

template <typename T>
std::vector<StreamElement<T>> DataElements(std::vector<T> values) {
  std::vector<StreamElement<T>> out;
  Timestamp ts = 0;
  for (auto& v : values) out.emplace_back(std::move(v), ts++);
  return out;
}

TEST(ElementTest, DataAndPunctuation) {
  StreamElement<int> data(42, 7);
  EXPECT_TRUE(data.is_data());
  EXPECT_EQ(data.data(), 42);
  EXPECT_EQ(data.ts(), 7u);

  StreamElement<int> punct(Punctuation::kCommitTxn, 9);
  EXPECT_TRUE(punct.is_punctuation());
  EXPECT_EQ(punct.punctuation(), Punctuation::kCommitTxn);
  auto forwarded = punct.ForwardPunctuation<std::string>();
  EXPECT_EQ(forwarded.punctuation(), Punctuation::kCommitTxn);
  EXPECT_EQ(forwarded.ts(), 9u);
}

TEST(SourceTest, VectorSourceEmitsAllThenEos) {
  Topology topology;
  auto* source =
      topology.Add<VectorSource<int>>(DataElements<int>({1, 2, 3}));
  auto* collect = topology.Add<Collect<int>>(source);
  topology.Start();
  collect->WaitForEos();
  topology.Join();
  EXPECT_EQ(collect->Elements(), (std::vector<int>{1, 2, 3}));
}

TEST(SourceTest, StartIsIdempotent) {
  // Operator-level contract (operator.h): Start() may be retried. A second
  // call on a running source must neither std::terminate (assigning over a
  // joinable std::thread) nor emit the stream twice.
  Topology topology;
  auto* source =
      topology.Add<VectorSource<int>>(DataElements<int>({1, 2}));
  auto* collect = topology.Add<Collect<int>>(source);
  source->Start();
  source->Start();
  collect->WaitForEos();
  topology.Join();
  EXPECT_EQ(collect->Elements(), (std::vector<int>{1, 2}));
}

TEST(SourceTest, GeneratorSourceStopsOnNullopt) {
  Topology topology;
  int i = 0;
  auto* source = topology.Add<GeneratorSource<int>>(
      [&]() -> std::optional<StreamElement<int>> {
        if (i >= 5) return std::nullopt;
        return StreamElement<int>(i++);
      });
  auto* collect = topology.Add<Collect<int>>(source);
  topology.Start();
  collect->WaitForEos();
  topology.Join();
  EXPECT_EQ(collect->size(), 5u);
}

TEST(MapTest, TransformsAndForwardsPunctuations) {
  Topology topology;
  std::vector<StreamElement<int>> elements = DataElements<int>({1, 2, 3});
  elements.insert(elements.begin() + 1,
                  StreamElement<int>(Punctuation::kCommitTxn));
  auto* source = topology.Add<VectorSource<int>>(std::move(elements));
  auto* map = topology.Add<Map<int, std::string>>(
      source, [](const int& v) { return "v" + std::to_string(v * 10); });
  std::vector<std::string> data;
  std::vector<Punctuation> puncts;
  auto* sink = topology.Add<ForEach<std::string>>(
      map, [&](const std::string& s) { data.push_back(s); },
      [&](Punctuation p) { puncts.push_back(p); });
  (void)sink;
  topology.Start();
  topology.Join();
  EXPECT_EQ(data, (std::vector<std::string>{"v10", "v20", "v30"}));
  ASSERT_EQ(puncts.size(), 2u);
  EXPECT_EQ(puncts[0], Punctuation::kCommitTxn);
  EXPECT_EQ(puncts[1], Punctuation::kEndOfStream);
}

TEST(WhereTest, FiltersData) {
  Topology topology;
  auto* source =
      topology.Add<VectorSource<int>>(DataElements<int>({1, 2, 3, 4, 5, 6}));
  auto* where =
      topology.Add<Where<int>>(source, [](const int& v) { return v % 2 == 0; });
  auto* collect = topology.Add<Collect<int>>(where);
  topology.Start();
  collect->WaitForEos();
  topology.Join();
  EXPECT_EQ(collect->Elements(), (std::vector<int>{2, 4, 6}));
}

TEST(BatcherTest, InjectsBotAndCommitEveryN) {
  Topology topology;
  auto* source =
      topology.Add<VectorSource<int>>(DataElements<int>({1, 2, 3, 4, 5}));
  auto* batcher = topology.Add<Batcher<int>>(source, 2);
  std::vector<std::string> trace;
  auto* sink = topology.Add<ForEach<int>>(
      batcher, [&](const int& v) { trace.push_back(std::to_string(v)); },
      [&](Punctuation p) { trace.emplace_back(PunctuationName(p)); });
  (void)sink;
  topology.Start();
  topology.Join();
  EXPECT_EQ(trace, (std::vector<std::string>{
                       "BOT", "1", "2", "COMMIT",      // batch 1
                       "BOT", "3", "4", "COMMIT",      // batch 2
                       "BOT", "5", "COMMIT", "EOS"}))  // flushed at EOS
      << "data-centric boundaries misplaced";
}

TEST(QueueHandoffTest, CrossesThreadBoundary) {
  Topology topology;
  auto* source =
      topology.Add<VectorSource<int>>(DataElements<int>({1, 2, 3, 4}));
  auto* handoff = topology.Add<QueueHandoff<int>>(source);
  auto* collect = topology.Add<Collect<int>>(handoff);
  topology.Start();
  collect->WaitForEos();
  topology.Join();
  EXPECT_EQ(collect->Elements(), (std::vector<int>{1, 2, 3, 4}));
}

TEST(BlockingQueueTest, PopAfterCloseDrains) {
  BlockingQueue<int> queue;
  queue.Push(1);
  queue.Push(2);
  queue.Close();
  EXPECT_EQ(queue.Pop().value(), 1);
  EXPECT_EQ(queue.Pop().value(), 2);
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(ToTableTest, WriteCountExcludesFailedWrites) {
  // PR 3 regression: ToTable incremented writes_ even when Put/Delete
  // failed, so write_count() overcounted exactly when error_count() grew.
  // The counters must partition the attempts: every data element is either
  // a successful write or an error, never both.
  DatabaseOptions options;
  options.protocol = ProtocolType::kS2pl;  // wait-die gives a failing Put
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  auto state = (*db)->CreateState("t");
  ASSERT_TRUE(state.ok());
  TransactionalTable<std::uint64_t, std::uint64_t> table(&(*db)->txn_manager(),
                                                         *state);

  // An older transaction holds the exclusive lock on key 1: the stream's
  // younger transaction dies on it (wait-die) and the Put fails.
  auto blocker = (*db)->Begin();
  ASSERT_TRUE(blocker.ok());
  ASSERT_TRUE(table.Put((*blocker)->txn(), 1, 99).ok());

  auto ctx = std::make_shared<StreamTxnContext>(&(*db)->txn_manager());
  Publisher<std::uint64_t> input;
  ToTable<std::uint64_t, std::uint64_t, std::uint64_t> to_table(
      &input, table, ctx, [](const std::uint64_t& v) { return v; },
      [](const std::uint64_t& v) { return v; });

  input.Publish(StreamElement<std::uint64_t>(Punctuation::kBeginTxn));
  input.Publish(StreamElement<std::uint64_t>(1));  // Put fails: wait-die
  EXPECT_EQ(to_table.write_count(), 0u) << "failed write counted as write";
  EXPECT_EQ(to_table.error_count(), 1u);
  // The batch-ending COMMIT on the aborted transaction is a failed commit:
  // another error, still no write.
  input.Publish(StreamElement<std::uint64_t>(Punctuation::kCommitTxn));
  EXPECT_EQ(to_table.write_count(), 0u);
  EXPECT_EQ(to_table.error_count(), 2u);

  ASSERT_TRUE((*blocker)->Abort().ok());  // release the lock
  input.Publish(StreamElement<std::uint64_t>(Punctuation::kBeginTxn));
  input.Publish(StreamElement<std::uint64_t>(2));  // succeeds
  input.Publish(StreamElement<std::uint64_t>(Punctuation::kCommitTxn));
  input.Publish(StreamElement<std::uint64_t>(Punctuation::kEndOfStream));

  EXPECT_EQ(to_table.write_count(), 1u);
  EXPECT_EQ(to_table.error_count(), 2u);
  auto rows = SnapshotOf(&(*db)->txn_manager(), table);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), to_table.write_count())
      << "write_count must equal the successfully written tuples";
}

TEST(TopologyTest, StopInterruptsSource) {
  Topology topology;
  std::atomic<int> produced{0};
  auto* source = topology.Add<GeneratorSource<int>>(
      [&]() -> std::optional<StreamElement<int>> {
        produced.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return StreamElement<int>(1);
      });
  auto* collect = topology.Add<Collect<int>>(source);
  (void)collect;
  topology.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  topology.StopAndJoin();
  const int after_stop = produced.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(produced.load(), after_stop) << "source kept running after stop";
}

}  // namespace
}  // namespace streamsi
