#include <gtest/gtest.h>

#include "stream/stream.h"

namespace streamsi {
namespace {

template <typename T>
std::vector<StreamElement<T>> DataElements(std::vector<T> values) {
  std::vector<StreamElement<T>> out;
  Timestamp ts = 0;
  for (auto& v : values) out.emplace_back(std::move(v), ts++);
  return out;
}

TEST(ElementTest, DataAndPunctuation) {
  StreamElement<int> data(42, 7);
  EXPECT_TRUE(data.is_data());
  EXPECT_EQ(data.data(), 42);
  EXPECT_EQ(data.ts(), 7u);

  StreamElement<int> punct(Punctuation::kCommitTxn, 9);
  EXPECT_TRUE(punct.is_punctuation());
  EXPECT_EQ(punct.punctuation(), Punctuation::kCommitTxn);
  auto forwarded = punct.ForwardPunctuation<std::string>();
  EXPECT_EQ(forwarded.punctuation(), Punctuation::kCommitTxn);
  EXPECT_EQ(forwarded.ts(), 9u);
}

TEST(SourceTest, VectorSourceEmitsAllThenEos) {
  Topology topology;
  auto* source =
      topology.Add<VectorSource<int>>(DataElements<int>({1, 2, 3}));
  auto* collect = topology.Add<Collect<int>>(source);
  topology.Start();
  collect->WaitForEos();
  topology.Join();
  EXPECT_EQ(collect->Elements(), (std::vector<int>{1, 2, 3}));
}

TEST(SourceTest, GeneratorSourceStopsOnNullopt) {
  Topology topology;
  int i = 0;
  auto* source = topology.Add<GeneratorSource<int>>(
      [&]() -> std::optional<StreamElement<int>> {
        if (i >= 5) return std::nullopt;
        return StreamElement<int>(i++);
      });
  auto* collect = topology.Add<Collect<int>>(source);
  topology.Start();
  collect->WaitForEos();
  topology.Join();
  EXPECT_EQ(collect->size(), 5u);
}

TEST(MapTest, TransformsAndForwardsPunctuations) {
  Topology topology;
  std::vector<StreamElement<int>> elements = DataElements<int>({1, 2, 3});
  elements.insert(elements.begin() + 1,
                  StreamElement<int>(Punctuation::kCommitTxn));
  auto* source = topology.Add<VectorSource<int>>(std::move(elements));
  auto* map = topology.Add<Map<int, std::string>>(
      source, [](const int& v) { return "v" + std::to_string(v * 10); });
  std::vector<std::string> data;
  std::vector<Punctuation> puncts;
  auto* sink = topology.Add<ForEach<std::string>>(
      map, [&](const std::string& s) { data.push_back(s); },
      [&](Punctuation p) { puncts.push_back(p); });
  (void)sink;
  topology.Start();
  topology.Join();
  EXPECT_EQ(data, (std::vector<std::string>{"v10", "v20", "v30"}));
  ASSERT_EQ(puncts.size(), 2u);
  EXPECT_EQ(puncts[0], Punctuation::kCommitTxn);
  EXPECT_EQ(puncts[1], Punctuation::kEndOfStream);
}

TEST(WhereTest, FiltersData) {
  Topology topology;
  auto* source =
      topology.Add<VectorSource<int>>(DataElements<int>({1, 2, 3, 4, 5, 6}));
  auto* where =
      topology.Add<Where<int>>(source, [](const int& v) { return v % 2 == 0; });
  auto* collect = topology.Add<Collect<int>>(where);
  topology.Start();
  collect->WaitForEos();
  topology.Join();
  EXPECT_EQ(collect->Elements(), (std::vector<int>{2, 4, 6}));
}

TEST(BatcherTest, InjectsBotAndCommitEveryN) {
  Topology topology;
  auto* source =
      topology.Add<VectorSource<int>>(DataElements<int>({1, 2, 3, 4, 5}));
  auto* batcher = topology.Add<Batcher<int>>(source, 2);
  std::vector<std::string> trace;
  auto* sink = topology.Add<ForEach<int>>(
      batcher, [&](const int& v) { trace.push_back(std::to_string(v)); },
      [&](Punctuation p) { trace.emplace_back(PunctuationName(p)); });
  (void)sink;
  topology.Start();
  topology.Join();
  EXPECT_EQ(trace, (std::vector<std::string>{
                       "BOT", "1", "2", "COMMIT",      // batch 1
                       "BOT", "3", "4", "COMMIT",      // batch 2
                       "BOT", "5", "COMMIT", "EOS"}))  // flushed at EOS
      << "data-centric boundaries misplaced";
}

TEST(QueueHandoffTest, CrossesThreadBoundary) {
  Topology topology;
  auto* source =
      topology.Add<VectorSource<int>>(DataElements<int>({1, 2, 3, 4}));
  auto* handoff = topology.Add<QueueHandoff<int>>(source);
  auto* collect = topology.Add<Collect<int>>(handoff);
  topology.Start();
  collect->WaitForEos();
  topology.Join();
  EXPECT_EQ(collect->Elements(), (std::vector<int>{1, 2, 3, 4}));
}

TEST(BlockingQueueTest, PopAfterCloseDrains) {
  BlockingQueue<int> queue;
  queue.Push(1);
  queue.Push(2);
  queue.Close();
  EXPECT_EQ(queue.Pop().value(), 1);
  EXPECT_EQ(queue.Pop().value(), 2);
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(TopologyTest, StopInterruptsSource) {
  Topology topology;
  std::atomic<int> produced{0};
  auto* source = topology.Add<GeneratorSource<int>>(
      [&]() -> std::optional<StreamElement<int>> {
        produced.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return StreamElement<int>(1);
      });
  auto* collect = topology.Add<Collect<int>>(source);
  (void)collect;
  topology.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  topology.StopAndJoin();
  const int after_stop = produced.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(produced.load(), after_stop) << "source kept running after stop";
}

}  // namespace
}  // namespace streamsi
