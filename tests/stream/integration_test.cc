// End-to-end transactional stream processing: continuous queries writing
// multiple states, concurrent ad-hoc queries, TO_STREAM chaining — the
// paper's full model (Figure 1) in miniature.

#include <gtest/gtest.h>

#include <thread>

#include "core/streamsi.h"
#include "stream/stream.h"

namespace streamsi {
namespace {

struct Measurement {
  std::uint64_t meter;
  std::uint64_t minute;
  double kwh;
};

class IntegrationTest : public ::testing::TestWithParam<ProtocolType> {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.protocol = GetParam();
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
  }

  std::unique_ptr<Database> db_;
};

TEST_P(IntegrationTest, StreamQueryWritingTwoStatesStaysConsistent) {
  // The evaluation scenario (§5.1): one stream continuously writing to two
  // states, ad-hoc queries reading from both.
  auto s1 = db_->CreateState("measurements");
  auto s2 = db_->CreateState("totals");
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  TransactionalTable<std::uint64_t, double> measurements(&db_->txn_manager(),
                                                         *s1);
  TransactionalTable<std::uint64_t, double> totals(&db_->txn_manager(), *s2);
  db_->CreateGroup({measurements.id(), totals.id()});

  constexpr int kTuples = 300;
  std::vector<StreamElement<Measurement>> elements;
  for (int i = 0; i < kTuples; ++i) {
    // Value == tuple index, so both states always carry the same value for
    // a key when written by the same transaction.
    elements.emplace_back(
        Measurement{static_cast<std::uint64_t>(i % 10),
                    static_cast<std::uint64_t>(i),
                    static_cast<double>(i)});
  }

  Topology topology;
  auto ctx = std::make_shared<StreamTxnContext>(&db_->txn_manager());
  auto* source = topology.Add<VectorSource<Measurement>>(std::move(elements));
  auto* batcher = topology.Add<Batcher<Measurement>>(source, 10);
  auto* to_measurements =
      topology.Add<ToTable<Measurement, std::uint64_t, double>>(
          batcher, measurements, ctx,
          [](const Measurement& m) { return m.meter; },
          [](const Measurement& m) { return m.kwh; });
  // Second TO_TABLE in the same query: writes the same transaction.
  topology.Add<ToTable<Measurement, std::uint64_t, double>>(
      to_measurements, totals, ctx,
      [](const Measurement& m) { return m.meter; },
      [](const Measurement& m) { return m.kwh; });

  // Concurrent ad-hoc queries verifying multi-state consistency through
  // point reads of the same key in both states (phantom-free, so it holds
  // for key-granularity S2PL too). MVCC additionally gets the stronger
  // scan-count check — its snapshot scans are consistent by construction;
  // S2PL would need predicate locks for that, which are out of scope.
  const bool check_scans = GetParam() == ProtocolType::kMvcc;
  std::atomic<bool> stop{false};
  std::atomic<bool> violation{false};
  std::vector<std::thread> adhoc;
  for (int r = 0; r < 3; ++r) {
    adhoc.emplace_back([&, r] {
      const std::uint64_t key = static_cast<std::uint64_t>(r % 10);
      while (!stop.load()) {
        auto t = db_->Begin();
        if (!t.ok()) continue;
        auto v1 = measurements.Get((*t)->txn(), key);
        auto v2 = totals.Get((*t)->txn(), key);
        if (v1.status().IsAborted() || v2.status().IsAborted()) {
          continue;  // wait-die victim
        }
        std::size_t n1 = 0;
        std::size_t n2 = 0;
        if (check_scans) {
          const Status st1 = measurements.Scan(
              (*t)->txn(), [&](const std::uint64_t&, const double&) {
                ++n1;
                return true;
              });
          const Status st2 = totals.Scan(
              (*t)->txn(), [&](const std::uint64_t&, const double&) {
                ++n2;
                return true;
              });
          if (!st1.ok() || !st2.ok()) continue;
        }
        if (!(*t)->Commit().ok()) continue;  // BOCC validation loser
        if (v1.ok() != v2.ok()) {
          violation.store(true);  // key committed to one state only
        } else if (v1.ok() && *v1 != *v2) {
          violation.store(true);  // torn across states
        }
        if (check_scans && n1 != n2) violation.store(true);
      }
    });
  }

  topology.Start();
  topology.Join();
  stop.store(true);
  for (auto& thread : adhoc) thread.join();

  EXPECT_FALSE(violation.load())
      << ProtocolTypeName(GetParam()) << ": ad-hoc query saw the two states "
      << "of one stream query at different transactions";

  auto rows = SnapshotOf(&db_->txn_manager(), measurements);
  ASSERT_TRUE(rows.ok());
  if (GetParam() == ProtocolType::kMvcc) {
    // Readers never block or abort the single writer: every batch commits.
    EXPECT_EQ(rows->size(), 10u);  // 10 distinct meters
    EXPECT_EQ(to_measurements->error_count(), 0u);
  } else {
    // Under S2PL/BOCC the writer can lose against ad-hoc readers and drop
    // whole batches (poisoned), but some batches must get through and the
    // key universe is bounded by the 10 meters.
    EXPECT_LE(rows->size(), 10u);
    EXPECT_GT(db_->txn_manager().counters().committed.load(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, IntegrationTest,
                         ::testing::Values(ProtocolType::kMvcc,
                                           ProtocolType::kS2pl,
                                           ProtocolType::kBocc),
                         [](const auto& info) {
                           return ProtocolTypeName(info.param);
                         });

TEST(IntegrationPipelineTest, WindowAggregateToTableToStream) {
  // measurements -> tumbling window -> aggregate -> TO_TABLE -> TO_STREAM
  // (derived processing on committed changes, as in Figure 1's Verify arc).
  DatabaseOptions options;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  auto state = (*db)->CreateState("window_sums");
  ASSERT_TRUE(state.ok());
  TransactionalTable<std::uint64_t, double> sums(&(*db)->txn_manager(),
                                                 *state);

  std::vector<StreamElement<double>> elements;
  for (int i = 1; i <= 12; ++i) {
    elements.emplace_back(static_cast<double>(i));
  }

  Topology topology;
  auto ctx = std::make_shared<StreamTxnContext>(&(*db)->txn_manager());
  auto* source = topology.Add<VectorSource<double>>(std::move(elements));
  auto* window = topology.Add<TumblingCountWindow<double>>(source, 4);
  struct WindowSum {
    std::uint64_t id;
    double sum;
  };
  auto* agg = topology.Add<Map<WindowBatch<double>, WindowSum>>(
      window, [](const WindowBatch<double>& batch) {
        double sum = 0;
        for (double v : batch.elements) sum += v;
        return WindowSum{batch.window_id, sum};
      });
  auto* batcher = topology.Add<Batcher<WindowSum>>(agg, 1);
  topology.Add<ToTable<WindowSum, std::uint64_t, double>>(
      batcher, sums, ctx, [](const WindowSum& w) { return w.id; },
      [](const WindowSum& w) { return w.sum; });

  // TO_STREAM side: collect committed window sums.
  std::mutex mutex;
  std::vector<double> committed_sums;
  ToStream<std::uint64_t, double> to_stream(&(*db)->txn_manager(), sums.id());
  to_stream.Subscribe(
      [&](const StreamElement<ChangeEvent<std::uint64_t, double>>& e) {
        if (e.is_data() && e.data().value.has_value()) {
          std::lock_guard<std::mutex> guard(mutex);
          committed_sums.push_back(*e.data().value);
        }
      });

  topology.Start();
  topology.Join();

  std::lock_guard<std::mutex> guard(mutex);
  EXPECT_EQ(committed_sums, (std::vector<double>{10.0, 26.0, 42.0}));
}

TEST(IntegrationPipelineTest, TwoSourcesSharingOneState) {
  // Two stream queries (separate transactions contexts) writing the same
  // shared state — the protocols must serialize them correctly.
  DatabaseOptions options;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  auto state = (*db)->CreateState("shared");
  ASSERT_TRUE(state.ok());
  TransactionalTable<std::uint64_t, std::uint64_t> shared(
      &(*db)->txn_manager(), *state);

  Topology topology;
  auto make_pipeline = [&](std::uint64_t base) {
    std::vector<StreamElement<std::uint64_t>> elements;
    for (std::uint64_t i = 0; i < 100; ++i) {
      elements.emplace_back(base + i);
    }
    auto ctx = std::make_shared<StreamTxnContext>(&(*db)->txn_manager());
    auto* source =
        topology.Add<VectorSource<std::uint64_t>>(std::move(elements));
    auto* batcher = topology.Add<Batcher<std::uint64_t>>(source, 5);
    topology.Add<ToTable<std::uint64_t, std::uint64_t, std::uint64_t>>(
        batcher, shared, ctx, [](const std::uint64_t& v) { return v; },
        [](const std::uint64_t& v) { return v; });
  };
  make_pipeline(0);
  make_pipeline(1000);
  topology.Start();
  topology.Join();

  auto rows = SnapshotOf(&(*db)->txn_manager(), shared);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 200u);  // disjoint keys: everything commits
}

}  // namespace
}  // namespace streamsi
