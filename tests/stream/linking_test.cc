// The linking operators of §3 (Figure 2): TO_TABLE, TO_STREAM, FROM(table)
// — wired through real transactions against the MVCC protocol.

#include <gtest/gtest.h>

#include <chrono>

#include "common/fault_env.h"
#include "core/streamsi.h"
#include "stream/stream.h"

namespace streamsi {
namespace {

struct Meter {
  std::uint64_t id;
  double kwh;
  bool retired;  // delete marker
};

template <typename T>
std::vector<StreamElement<T>> DataElements(std::vector<T> values) {
  std::vector<StreamElement<T>> out;
  Timestamp ts = 0;
  for (auto& v : values) out.emplace_back(std::move(v), ts++);
  return out;
}

class LinkingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    auto state = db_->CreateState("meters");
    ASSERT_TRUE(state.ok());
    table_ = TransactionalTable<std::uint64_t, double>(&db_->txn_manager(),
                                                       *state);
  }

  std::unique_ptr<Database> db_;
  TransactionalTable<std::uint64_t, double> table_;
};

TEST_F(LinkingTest, ToTableUpsertsWithPunctuationBoundaries) {
  Topology topology;
  std::vector<StreamElement<Meter>> elements;
  elements.emplace_back(Punctuation::kBeginTxn);
  elements.emplace_back(Meter{1, 10.0, false});
  elements.emplace_back(Meter{2, 20.0, false});
  elements.emplace_back(Punctuation::kCommitTxn);
  elements.emplace_back(Punctuation::kBeginTxn);
  elements.emplace_back(Meter{1, 11.5, false});  // update
  elements.emplace_back(Punctuation::kCommitTxn);

  auto ctx = std::make_shared<StreamTxnContext>(&db_->txn_manager());
  auto* source = topology.Add<VectorSource<Meter>>(std::move(elements));
  auto* to_table = topology.Add<ToTable<Meter, std::uint64_t, double>>(
      source, table_, ctx, [](const Meter& m) { return m.id; },
      [](const Meter& m) { return m.kwh; },
      [](const Meter& m) { return m.retired; });
  topology.Start();
  topology.Join();
  EXPECT_EQ(to_table->error_count(), 0u);
  EXPECT_EQ(to_table->write_count(), 3u);

  auto rows = SnapshotOf(&db_->txn_manager(), table_);
  ASSERT_TRUE(rows.ok());
  std::map<std::uint64_t, double> by_key(rows->begin(), rows->end());
  EXPECT_EQ(by_key.size(), 2u);
  EXPECT_DOUBLE_EQ(by_key[1], 11.5);
  EXPECT_DOUBLE_EQ(by_key[2], 20.0);
}

TEST_F(LinkingTest, ToTableRollbackDiscardsBatch) {
  Topology topology;
  std::vector<StreamElement<Meter>> elements;
  elements.emplace_back(Punctuation::kBeginTxn);
  elements.emplace_back(Meter{1, 10.0, false});
  elements.emplace_back(Punctuation::kCommitTxn);
  elements.emplace_back(Punctuation::kBeginTxn);
  elements.emplace_back(Meter{2, 99.0, false});
  elements.emplace_back(Punctuation::kRollbackTxn);  // discard meter 2

  auto ctx = std::make_shared<StreamTxnContext>(&db_->txn_manager());
  auto* source = topology.Add<VectorSource<Meter>>(std::move(elements));
  topology.Add<ToTable<Meter, std::uint64_t, double>>(
      source, table_, ctx, [](const Meter& m) { return m.id; },
      [](const Meter& m) { return m.kwh; });
  topology.Start();
  topology.Join();

  auto rows = SnapshotOf(&db_->txn_manager(), table_);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].first, 1u);
}

TEST_F(LinkingTest, ToTableDeleteTuples) {
  Topology topology;
  std::vector<StreamElement<Meter>> elements;
  elements.emplace_back(Punctuation::kBeginTxn);
  elements.emplace_back(Meter{1, 10.0, false});
  elements.emplace_back(Meter{2, 20.0, false});
  elements.emplace_back(Punctuation::kCommitTxn);
  elements.emplace_back(Punctuation::kBeginTxn);
  elements.emplace_back(Meter{1, 0.0, true});  // explicit delete tuple
  elements.emplace_back(Punctuation::kCommitTxn);

  auto ctx = std::make_shared<StreamTxnContext>(&db_->txn_manager());
  auto* source = topology.Add<VectorSource<Meter>>(std::move(elements));
  topology.Add<ToTable<Meter, std::uint64_t, double>>(
      source, table_, ctx, [](const Meter& m) { return m.id; },
      [](const Meter& m) { return m.kwh; },
      [](const Meter& m) { return m.retired; });
  topology.Start();
  topology.Join();

  auto rows = SnapshotOf(&db_->txn_manager(), table_);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].first, 2u);
}

TEST_F(LinkingTest, ToTableAutoCommitViaBatcher) {
  Topology topology;
  auto ctx = std::make_shared<StreamTxnContext>(&db_->txn_manager());
  auto* source = topology.Add<VectorSource<Meter>>(DataElements<Meter>(
      {{1, 1.0, false}, {2, 2.0, false}, {3, 3.0, false}}));
  auto* batcher = topology.Add<Batcher<Meter>>(source, 1);  // auto-commit
  topology.Add<ToTable<Meter, std::uint64_t, double>>(
      batcher, table_, ctx, [](const Meter& m) { return m.id; },
      [](const Meter& m) { return m.kwh; });
  topology.Start();
  topology.Join();
  EXPECT_EQ(db_->txn_manager().counters().committed.load(), 3u);
  auto rows = SnapshotOf(&db_->txn_manager(), table_);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);
}

// Regression: a mid-batch ResourceExhausted write (here: the transaction
// table is full, so the lane's implicit Begin fails for one tuple) used to
// be counted as an error while the REST of the batch went on to COMMIT —
// publishing a partially-applied batch. ToTable must retry transient
// exhaustion and, when the tuple is lost for good, poison the batch so
// nothing of it commits.
TEST_F(LinkingTest, ExhaustionMidBatchNeverCommitsPartialBatch) {
  Publisher<Meter> source;  // driven synchronously from this thread
  auto ctx = std::make_shared<StreamTxnContext>(&db_->txn_manager());
  ToTable<Meter, std::uint64_t, double> to_table(
      &source, table_, ctx, [](const Meter& m) { return m.id; },
      [](const Meter& m) { return m.kwh; });

  // Inject exhaustion: occupy EVERY transaction slot so the batch's first
  // tuple cannot begin its transaction (Begin => ResourceExhausted).
  std::vector<std::unique_ptr<TransactionHandle>> hog;
  for (;;) {
    auto handle = db_->Begin();
    if (!handle.ok()) {
      ASSERT_TRUE(handle.status().IsResourceExhausted());
      break;
    }
    hog.push_back(std::move(handle).value());
  }

  // Tuple 1 of the batch: exhausted (retries run against a still-full
  // table), must be dropped AND poison the batch.
  source.Publish(StreamElement<Meter>(Meter{1, 10.0, false}, 0));
  EXPECT_EQ(to_table.error_count(), 1u);
  EXPECT_EQ(to_table.write_count(), 0u);

  // Release the slots: tuple 2 could now begin a FRESH transaction — the
  // seed bug committed exactly this tail of the batch without tuple 1.
  hog.clear();
  source.Publish(StreamElement<Meter>(Meter{2, 20.0, false}, 1));
  source.Publish(StreamElement<Meter>(Punctuation::kCommitTxn));

  auto rows = SnapshotOf(&db_->txn_manager(), table_);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty())
      << "a partially-applied batch committed: " << rows->size() << " rows";
  EXPECT_EQ(to_table.write_count(), 0u);
  EXPECT_EQ(to_table.error_count(), 2u);  // both tuples of the batch dropped

  // The poisoning heals at the batch boundary: the next batch commits.
  source.Publish(StreamElement<Meter>(Punctuation::kBeginTxn));
  source.Publish(StreamElement<Meter>(Meter{3, 30.0, false}, 2));
  source.Publish(StreamElement<Meter>(Punctuation::kCommitTxn));
  rows = SnapshotOf(&db_->txn_manager(), table_);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].first, 3u);
  EXPECT_EQ(to_table.write_count(), 1u);
}

// Regression: ToTable's retry loop treated every non-OK write uniformly,
// so a PERMANENT Unavailable (the database degraded to read-only, or an
// unpromoted replication follower) burned the full ResourceExhausted
// retry budget per tuple — ~5 ms of hot sleeping for every element of a
// stream that can never commit again. Unavailable must fail the tuple
// immediately, poison the batch, and keep error_count() accurate.
TEST_F(LinkingTest, UnavailableIsPermanentAndSkipsTheRetryBudget) {
  // A durable database that we degrade up front: fill the disk, fail one
  // commit, and the health machine flips to read-only for good.
  FaultEnv env(/*seed=*/11);
  DatabaseOptions options;
  options.protocol = ProtocolType::kMvcc;
  options.backend = BackendType::kLsm;
  options.backend_options.sync_mode = SyncMode::kFsync;
  options.backend_options.env = &env;
  options.env = &env;
  options.base_dir = "/db";
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  auto state = (*db)->CreateState("meters");
  ASSERT_TRUE(state.ok());
  ASSERT_TRUE((*db)->Recover().ok());
  TransactionalTable<std::uint64_t, double> table(&(*db)->txn_manager(),
                                                  *state);
  env.SetNoSpaceByteBudget(0);
  {
    auto t = (*db)->Begin();
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(table.Put((*t)->txn(), 99, 0.0).ok());
    ASSERT_FALSE((*t)->Commit().ok());
  }
  ASSERT_EQ((*db)->health(), DatabaseHealth::kDegradedReadOnly);

  Publisher<Meter> source;  // driven synchronously from this thread
  auto ctx = std::make_shared<StreamTxnContext>(&(*db)->txn_manager());
  ToTable<Meter, std::uint64_t, double> to_table(
      &source, table, ctx, [](const Meter& m) { return m.id; },
      [](const Meter& m) { return m.kwh; });

  constexpr int kTuples = 100;
  const auto start = std::chrono::steady_clock::now();
  source.Publish(StreamElement<Meter>(Punctuation::kBeginTxn));
  for (int i = 0; i < kTuples; ++i) {
    source.Publish(
        StreamElement<Meter>(Meter{static_cast<std::uint64_t>(i), 1.0, false},
                             static_cast<Timestamp>(i)));
  }
  source.Publish(StreamElement<Meter>(Punctuation::kCommitTxn));
  const auto elapsed = std::chrono::steady_clock::now() - start;

  // Every tuple failed exactly once (no double-booking), nothing committed.
  EXPECT_EQ(to_table.write_count(), 0u);
  // kTuples tuple failures + the BOT punctuation's failed admission probe.
  EXPECT_EQ(to_table.error_count(), 1u + kTuples);
  EXPECT_EQ((*db)->txn_manager().counters().committed.load(), 0u);
  // The permanent status must NOT burn the transient-retry budget: the old
  // path slept ~5 ms per tuple (>= 500 ms here); the fix fails each tuple
  // with no sleep at all. Generous bound to stay robust on loaded CI.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            400);

  env.SetNoSpaceByteBudget(FaultEnv::kUnlimited);
  auto rows = SnapshotOf(&(*db)->txn_manager(), table);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST_F(LinkingTest, ToStreamEmitsCommittedChangesOnly) {
  // TO_STREAM with the kOnCommit trigger policy: nothing is emitted for the
  // rolled-back batch.
  ToStream<std::uint64_t, double> to_stream(&db_->txn_manager(), table_.id());
  std::vector<ChangeEvent<std::uint64_t, double>> events;
  std::mutex events_mutex;
  to_stream.Subscribe(
      [&](const StreamElement<ChangeEvent<std::uint64_t, double>>& e) {
        if (e.is_data()) {
          std::lock_guard<std::mutex> guard(events_mutex);
          events.push_back(e.data());
        }
      });

  // Committed txn.
  {
    auto t = db_->Begin();
    ASSERT_TRUE(table_.Put((*t)->txn(), 1, 10.0).ok());
    ASSERT_TRUE(table_.Put((*t)->txn(), 2, 20.0).ok());
    ASSERT_TRUE((*t)->Commit().ok());
  }
  // Aborted txn: must not emit.
  {
    auto t = db_->Begin();
    ASSERT_TRUE(table_.Put((*t)->txn(), 3, 30.0).ok());
    ASSERT_TRUE((*t)->Abort().ok());
  }
  // Delete: emitted with empty value.
  {
    auto t = db_->Begin();
    ASSERT_TRUE(table_.Delete((*t)->txn(), 1).ok());
    ASSERT_TRUE((*t)->Commit().ok());
  }

  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].key, 1u);
  ASSERT_TRUE(events[0].value.has_value());
  EXPECT_DOUBLE_EQ(*events[0].value, 10.0);
  EXPECT_EQ(events[1].key, 2u);
  EXPECT_EQ(events[2].key, 1u);
  EXPECT_FALSE(events[2].value.has_value()) << "delete must have no value";
  EXPECT_GT(events[2].commit_ts, events[0].commit_ts);
}

TEST_F(LinkingTest, ToStreamConditionFilters) {
  // "Whenever a certain condition on a table is fulfilled" — only values
  // above threshold are emitted.
  ToStream<std::uint64_t, double> to_stream(
      &db_->txn_manager(), table_.id(),
      [](const ChangeEvent<std::uint64_t, double>& e) {
        return e.value.has_value() && *e.value > 15.0;
      });
  std::atomic<int> emitted{0};
  to_stream.Subscribe(
      [&](const StreamElement<ChangeEvent<std::uint64_t, double>>& e) {
        if (e.is_data()) emitted.fetch_add(1);
      });
  auto t = db_->Begin();
  ASSERT_TRUE(table_.Put((*t)->txn(), 1, 10.0).ok());
  ASSERT_TRUE(table_.Put((*t)->txn(), 2, 20.0).ok());
  ASSERT_TRUE((*t)->Commit().ok());
  EXPECT_EQ(emitted.load(), 1);
}

TEST_F(LinkingTest, FromTableScansSnapshot) {
  {
    auto t = db_->Begin();
    for (std::uint64_t k = 0; k < 10; ++k) {
      ASSERT_TRUE(table_.Put((*t)->txn(), k, static_cast<double>(k)).ok());
    }
    ASSERT_TRUE((*t)->Commit().ok());
  }
  Topology topology;
  auto* from = topology.Add<FromTable<std::uint64_t, double>>(
      &db_->txn_manager(), table_);
  auto* collect =
      topology.Add<Collect<std::pair<std::uint64_t, double>>>(from);
  topology.Start();
  collect->WaitForEos();
  topology.Join();
  EXPECT_EQ(collect->size(), 10u);
}

TEST_F(LinkingTest, UnregisterStopsToStream) {
  auto to_stream = std::make_unique<ToStream<std::uint64_t, double>>(
      &db_->txn_manager(), table_.id());
  std::atomic<int> emitted{0};
  to_stream->Subscribe(
      [&](const StreamElement<ChangeEvent<std::uint64_t, double>>&) {
        emitted.fetch_add(1);
      });
  to_stream->Stop();
  auto t = db_->Begin();
  ASSERT_TRUE(table_.Put((*t)->txn(), 1, 1.0).ok());
  ASSERT_TRUE((*t)->Commit().ok());
  EXPECT_EQ(emitted.load(), 0);
}

}  // namespace
}  // namespace streamsi
