// Columnar chunks + vectorized operator kernels: selection-vector views
// (indirection, slicing, compaction on copy), ColumnarTraits/SoaLayout
// scatter-gather round trips, pooled ColumnarChunk reuse, the kernelized
// Where/Map/GroupedAggregate fast paths (output identical to the scalar
// operators, kernel-hit counters in OperatorStats), ColumnarWhere's
// field-column filtering with selection composition, and the regression
// test pinning GroupedAggregate's extractor-call count (exactly one key
// extraction per tuple on every chunk path).

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "stream/stream.h"

namespace streamsi {

/// Fixed-width tuple for SoA tests — registered field-wise below.
struct Quote {
  std::uint64_t symbol = 0;
  std::int64_t price = 0;
  std::uint32_t qty = 0;

  bool operator==(const Quote& other) const {
    return symbol == other.symbol && price == other.price && qty == other.qty;
  }
};

STREAMSI_COLUMNAR_FIELDS(Quote, &Quote::symbol, &Quote::price, &Quote::qty);

namespace {

// ------------------------------------------------------ selection views ---

TEST(SelectionViewTest, IndirectsAndSlices) {
  Chunk<int> chunk(6);
  for (int v = 0; v < 6; ++v) {
    chunk.Append(v * 10, static_cast<Timestamp>(100 + v));
  }
  const ChunkView<int> dense = chunk.view();
  EXPECT_TRUE(dense.dense());
  EXPECT_EQ(dense.selection(), nullptr);

  const std::uint32_t sel[] = {1, 3, 5};
  const ChunkView<int> selected(dense.data(), dense.ts_data(), sel, 3);
  EXPECT_FALSE(selected.dense());
  ASSERT_EQ(selected.size(), 3u);
  EXPECT_EQ(selected[0], 10);
  EXPECT_EQ(selected[1], 30);
  EXPECT_EQ(selected[2], 50);
  EXPECT_EQ(selected.ts(0), 101u);
  EXPECT_EQ(selected.ts(2), 105u);

  // Slicing a selected view slices the selection, not the base arrays.
  const ChunkView<int> slice = selected.Slice(1, 2);
  ASSERT_EQ(slice.size(), 2u);
  EXPECT_FALSE(slice.dense());
  EXPECT_EQ(slice[0], 30);
  EXPECT_EQ(slice[1], 50);
  EXPECT_EQ(slice.ts(0), 103u);
}

TEST(SelectionViewTest, AppendViewCompactsSelection) {
  Chunk<int> source(4);
  for (int v = 0; v < 4; ++v) source.Append(v, static_cast<Timestamp>(v));
  const std::uint32_t sel[] = {0, 2};
  const ChunkView<int> selected(source.view().data(), source.view().ts_data(),
                                sel, 2);

  Chunk<int> copy(4);
  copy.AppendView(selected);
  ASSERT_EQ(copy.size(), 2u);
  const ChunkView<int> dense = copy.view();
  EXPECT_TRUE(dense.dense());
  EXPECT_EQ(dense[0], 0);
  EXPECT_EQ(dense[1], 2);
  EXPECT_EQ(dense.ts(1), 2u);
}

// ------------------------------------------------------- columnar chunks ---

TEST(ColumnarChunkTest, ScatterGatherRoundTrip) {
  Chunk<Quote> rows(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    rows.Append(Quote{i, static_cast<std::int64_t>(100 + i),
                      static_cast<std::uint32_t>(10 * i)},
                static_cast<Timestamp>(i));
  }

  ColumnarChunk<Quote> col(4);
  col.ScatterFrom(rows.view());
  ASSERT_EQ(col.size(), 4u);
  EXPECT_FALSE(col.has_selection());

  // Per-field contiguous arrays.
  const std::uint64_t* symbols = col.column<0>();
  const std::int64_t* prices = col.column<1>();
  const std::uint32_t* qtys = col.column<2>();
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(symbols[i], i);
    EXPECT_EQ(prices[i], static_cast<std::int64_t>(100 + i));
    EXPECT_EQ(qtys[i], 10 * i);
  }

  // Row adapter: gather reassembles the original tuples.
  Chunk<Quote> back(4);
  col.GatherInto(back);
  ASSERT_EQ(back.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(back.view()[i], rows.view()[i]);
    EXPECT_EQ(back.view().ts(i), rows.view().ts(i));
  }
}

TEST(ColumnarChunkTest, SelectionGathersSurvivorsOnly) {
  ColumnarChunk<Quote> col(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    col.Append(Quote{i, static_cast<std::int64_t>(i), 0},
               static_cast<Timestamp>(i));
  }
  std::uint32_t* sel = col.selection_data();
  sel[0] = 1;
  sel[1] = 3;
  col.SetSelection(2);
  EXPECT_TRUE(col.has_selection());
  EXPECT_EQ(col.selected_size(), 2u);

  Chunk<Quote> out(4);
  col.GatherInto(out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.view()[0].symbol, 1u);
  EXPECT_EQ(out.view()[1].symbol, 3u);
  EXPECT_EQ(out.view().ts(1), 3u);

  col.Clear();
  EXPECT_EQ(col.size(), 0u);
  EXPECT_FALSE(col.has_selection());
  EXPECT_EQ(col.selected_size(), 0u);
}

TEST(ColumnarChunkTest, ScatterFromSelectedViewCompacts) {
  Chunk<Quote> rows(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    rows.Append(Quote{i, 0, 0}, static_cast<Timestamp>(i));
  }
  const std::uint32_t sel[] = {0, 3};
  const ChunkView<Quote> selected(rows.view().data(), rows.view().ts_data(),
                                  sel, 2);
  ColumnarChunk<Quote> col(4);
  col.ScatterFrom(selected);
  ASSERT_EQ(col.size(), 2u);
  EXPECT_EQ(col.column<0>()[0], 0u);
  EXPECT_EQ(col.column<0>()[1], 3u);
  EXPECT_EQ(col.ts_data()[1], 3u);
}

TEST(ColumnarChunkTest, ArithmeticTraitSingleColumn) {
  Chunk<std::uint64_t> rows(3);
  for (std::uint64_t v : {7u, 8u, 9u}) rows.Append(v, 0);
  ColumnarChunk<std::uint64_t> col(3);
  col.ScatterFrom(rows.view());
  const std::uint64_t* values = col.column<0>();
  EXPECT_EQ(values[0], 7u);
  EXPECT_EQ(values[2], 9u);
  EXPECT_EQ(ColumnarTraits<std::uint64_t>::Get<0>(rows.view()[1]), 8u);
  EXPECT_EQ((ColumnarTraits<Quote>::Get<1>(Quote{0, 42, 0})), 42);
}

TEST(ColumnarChunkPoolTest, ReusesClearedChunks) {
  auto pool = ColumnarChunkPool<Quote>::Create();
  {
    ColumnarChunkRef<Quote> ref = pool->Acquire(8);
    ref->Append(Quote{1, 2, 3}, 0);
    ref->SetSelection(1);
  }  // released, cleared
  EXPECT_EQ(pool->allocated(), 1u);
  EXPECT_EQ(pool->reused(), 0u);
  for (int round = 0; round < 16; ++round) {
    ColumnarChunkRef<Quote> ref = pool->Acquire(8);
    EXPECT_EQ(ref->size(), 0u);
    EXPECT_FALSE(ref->has_selection());
    ref->Append(Quote{2, 3, 4}, 1);
  }
  EXPECT_EQ(pool->allocated(), 1u) << "steady state must not allocate";
  EXPECT_EQ(pool->reused(), 16u);
}

// ----------------------------------------------------- vectorized Where ---

TEST(VectorizedWhereTest, MatchesScalarWhereAndCountsKernelHits) {
  Publisher<std::uint64_t> scalar_in;
  Where<std::uint64_t> scalar(&scalar_in,
                              [](const std::uint64_t& v) { return v % 3 != 0; });
  Collect<std::uint64_t> scalar_out(&scalar);

  Publisher<std::uint64_t> kernel_in;
  std::unique_ptr<Where<std::uint64_t>> kernel(MakeVectorizedWhere(
      &kernel_in, [](const std::uint64_t& v) { return v % 3 != 0; }));
  Collect<std::uint64_t> kernel_out(kernel.get());

  Chunk<std::uint64_t> chunk(8);
  for (std::uint64_t v = 0; v < 8; ++v) {
    chunk.Append(v, static_cast<Timestamp>(v));
  }
  scalar_in.PublishChunk(chunk.view());
  kernel_in.PublishChunk(chunk.view());
  // Per-element channel must agree too.
  scalar_in.Publish(StreamElement<std::uint64_t>(8, 8));
  kernel_in.Publish(StreamElement<std::uint64_t>(8, 8));

  EXPECT_EQ(kernel_out.Elements(), scalar_out.Elements());
  EXPECT_EQ(kernel_out.Elements(),
            (std::vector<std::uint64_t>{1, 2, 4, 5, 7, 8}));

  const OperatorStats stats = kernel->stats();
  EXPECT_EQ(stats.kernel_chunks, 1u);
  EXPECT_EQ(stats.fallback_chunks, 0u);
  EXPECT_EQ(stats.kernel_tuples_in, 8u);
  EXPECT_EQ(stats.kernel_tuples_out, 5u);
  EXPECT_DOUBLE_EQ(stats.kernel_selectivity(), 5.0 / 8.0);
  EXPECT_DOUBLE_EQ(stats.kernel_hit_ratio(), 1.0);
}

TEST(VectorizedWhereTest, AllPassForwardsOriginalViewZeroCopy) {
  Publisher<int> input;
  std::unique_ptr<Where<int>> where(
      MakeVectorizedWhere(&input, [](const int&) { return true; }));
  const int* seen_data = nullptr;
  bool seen_dense = false;
  where->SubscribeWith([](const StreamElement<int>&) {},
                       [&](const ChunkView<int>& view) {
                         seen_data = view.data();
                         seen_dense = view.dense();
                       });

  Chunk<int> chunk(4);
  for (int v : {1, 2, 3, 4}) chunk.Append(v, 0);
  input.PublishChunk(chunk.view());
  EXPECT_EQ(seen_data, chunk.view().data())
      << "all-pass must forward the original storage";
  EXPECT_TRUE(seen_dense);
}

TEST(VectorizedWhereTest, PartialPassShipsSelectionOverOriginalData) {
  Publisher<int> input;
  std::unique_ptr<Where<int>> where(
      MakeVectorizedWhere(&input, [](const int& v) { return v % 2 == 0; }));
  const int* seen_data = nullptr;
  std::vector<int> seen;
  std::vector<Timestamp> seen_ts;
  bool seen_dense = true;
  where->SubscribeWith([](const StreamElement<int>&) {},
                       [&](const ChunkView<int>& view) {
                         seen_data = view.data();
                         seen_dense = view.dense();
                         for (std::size_t i = 0; i < view.size(); ++i) {
                           seen.push_back(view[i]);
                           seen_ts.push_back(view.ts(i));
                         }
                       });

  Chunk<int> chunk(5);
  for (int v = 0; v < 5; ++v) chunk.Append(v, static_cast<Timestamp>(10 + v));
  input.PublishChunk(chunk.view());

  EXPECT_EQ(seen_data, chunk.view().data())
      << "partial pass must not copy tuple data";
  EXPECT_FALSE(seen_dense);
  EXPECT_EQ(seen, (std::vector<int>{0, 2, 4}));
  EXPECT_EQ(seen_ts, (std::vector<Timestamp>{10, 12, 14}));
}

TEST(VectorizedWhereTest, SelectedInputFallsBackAndIsCounted) {
  Publisher<int> input;
  std::unique_ptr<Where<int>> where(
      MakeVectorizedWhere(&input, [](const int& v) { return v > 0; }));
  Collect<int> out(where.get());

  Chunk<int> chunk(4);
  for (int v : {-1, 1, -2, 2}) chunk.Append(v, 0);
  const std::uint32_t sel[] = {1, 2, 3};
  input.PublishChunk(ChunkView<int>(chunk.view().data(),
                                    chunk.view().ts_data(), sel, 3));

  EXPECT_EQ(out.Elements(), (std::vector<int>{1, 2}));
  const OperatorStats stats = where->stats();
  EXPECT_EQ(stats.kernel_chunks, 0u);
  EXPECT_EQ(stats.fallback_chunks, 1u)
      << "selected input must be observable as a fallback";
}

// ------------------------------------------------------- vectorized Map ---

TEST(VectorizedMapTest, MatchesScalarMapAndSharesTimestamps) {
  Publisher<std::uint64_t> input;
  std::unique_ptr<Map<std::uint64_t, std::uint64_t>> map(
      MakeVectorizedMap<std::uint64_t, std::uint64_t>(
          &input, [](const std::uint64_t& v) { return v * 2 + 1; }));
  std::vector<std::uint64_t> values;
  std::vector<Timestamp> ts;
  map->SubscribeWith([&](const StreamElement<std::uint64_t>& e) {
                       if (e.is_data()) {
                         values.push_back(e.data());
                         ts.push_back(e.ts());
                       }
                     },
                     [&](const ChunkView<std::uint64_t>& view) {
                       for (std::size_t i = 0; i < view.size(); ++i) {
                         values.push_back(view[i]);
                         ts.push_back(view.ts(i));
                       }
                     });

  Chunk<std::uint64_t> chunk(4);
  for (std::uint64_t v = 0; v < 4; ++v) {
    chunk.Append(v, static_cast<Timestamp>(100 + v));
  }
  input.PublishChunk(chunk.view());
  input.Publish(StreamElement<std::uint64_t>(10, 200));

  EXPECT_EQ(values, (std::vector<std::uint64_t>{1, 3, 5, 7, 21}));
  EXPECT_EQ(ts, (std::vector<Timestamp>{100, 101, 102, 103, 200}));
  const OperatorStats stats = map->stats();
  EXPECT_EQ(stats.kernel_chunks, 1u);
  EXPECT_EQ(stats.kernel_tuples_in, 4u);
  EXPECT_DOUBLE_EQ(stats.kernel_selectivity(), 1.0);
}

// ------------------------------------------------------- ColumnarWhere ---

TEST(ColumnarWhereTest, FiltersOnOneFieldColumn) {
  Publisher<Quote> input;
  ColumnarWhere<Quote, 1> where(&input,
                                [](const std::int64_t& price) { return price >= 100; });
  Collect<Quote> out(&where);

  Chunk<Quote> chunk(4);
  chunk.Append(Quote{1, 50, 1}, 0);
  chunk.Append(Quote{2, 150, 2}, 1);
  chunk.Append(Quote{3, 99, 3}, 2);
  chunk.Append(Quote{4, 100, 4}, 3);
  input.PublishChunk(chunk.view());
  input.Publish(StreamElement<Quote>(Quote{5, 120, 5}, 4));  // per-element
  input.Publish(StreamElement<Quote>(Quote{6, 80, 6}, 5));

  const std::vector<Quote> got = out.Elements();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].symbol, 2u);
  EXPECT_EQ(got[1].symbol, 4u);
  EXPECT_EQ(got[2].symbol, 5u);

  const OperatorStats stats = where.stats();
  EXPECT_EQ(stats.kernel_chunks, 1u);
  EXPECT_EQ(stats.kernel_tuples_in, 4u);
  EXPECT_EQ(stats.kernel_tuples_out, 2u);
  EXPECT_EQ(where.pool()->allocated(), 1u);
}

TEST(ColumnarWhereTest, ComposesSelectionsAcrossChainedFilters) {
  Publisher<Quote> input;
  ColumnarWhere<Quote, 1> by_price(&input, [](const std::int64_t& price) {
    return price >= 100;
  });
  ColumnarWhere<Quote, 2> by_qty(&by_price,
                                 [](const std::uint32_t& qty) { return qty >= 10; });
  Collect<Quote> out(&by_qty);

  Chunk<Quote> chunk(5);
  chunk.Append(Quote{1, 200, 5}, 0);   // price ok, qty small
  chunk.Append(Quote{2, 50, 50}, 1);   // price small
  chunk.Append(Quote{3, 300, 30}, 2);  // survives both
  chunk.Append(Quote{4, 100, 10}, 3);  // survives both
  chunk.Append(Quote{5, 90, 90}, 4);   // price small
  input.PublishChunk(chunk.view());

  const std::vector<Quote> got = out.Elements();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].symbol, 3u);
  EXPECT_EQ(got[1].symbol, 4u);
  // The second filter saw a selected view and still ran its kernel.
  EXPECT_EQ(by_qty.stats().kernel_chunks, 1u);
}

// ------------------------------------- vectorized GroupedAggregate ---

TEST(VectorizedGroupedAggregateTest, MatchesScalarOutputSequence) {
  using Pair = std::pair<std::uint64_t, std::uint64_t>;
  Publisher<std::uint64_t> scalar_in;
  GroupedAggregate<std::uint64_t, std::uint64_t, std::uint64_t> scalar(
      &scalar_in, [](const std::uint64_t& v) { return v % 4; }, 0,
      [](std::uint64_t& acc, const std::uint64_t& v) { acc += v; });
  Collect<Pair> scalar_out(&scalar);

  Publisher<std::uint64_t> kernel_in;
  std::unique_ptr<GroupedAggregate<std::uint64_t, std::uint64_t, std::uint64_t>>
      kernel(MakeVectorizedGroupedAggregate<std::uint64_t, std::uint64_t,
                                            std::uint64_t>(
          &kernel_in, [](const std::uint64_t& v) { return v % 4; },
          std::uint64_t{0},
          [](std::uint64_t& acc, const std::uint64_t& v) { acc += v; }));
  Collect<Pair> kernel_out(kernel.get());

  Chunk<std::uint64_t> chunk(16);
  // Runs of equal keys (exercises run-length reuse) plus alternation.
  const std::uint64_t values[] = {0, 4, 8, 1, 5, 2, 2, 6, 3, 7, 0, 1, 1, 9, 3, 11};
  for (std::uint64_t v : values) chunk.Append(v, static_cast<Timestamp>(v));
  scalar_in.PublishChunk(chunk.view());
  kernel_in.PublishChunk(chunk.view());

  EXPECT_EQ(kernel_out.Elements(), scalar_out.Elements());
  EXPECT_EQ(kernel->groups(), scalar.groups());
  EXPECT_EQ(kernel->stats().kernel_chunks, 1u);
  EXPECT_EQ(kernel->stats().fallback_chunks, 0u);
  EXPECT_EQ(scalar.stats().fallback_chunks, 1u);
}

TEST(VectorizedGroupedAggregateTest, SideIndexGrowthKeepsGroupsExact) {
  Publisher<std::uint64_t> input;
  std::unique_ptr<GroupedAggregate<std::uint64_t, std::uint64_t, std::uint64_t>>
      agg(MakeVectorizedGroupedAggregate<std::uint64_t, std::uint64_t,
                                         std::uint64_t>(
          &input, [](const std::uint64_t& v) { return v; }, std::uint64_t{0},
          [](std::uint64_t& acc, const std::uint64_t&) { acc += 1; }));

  // More distinct keys than the initial side-index capacity (1024), in
  // several chunks, some keys repeated across chunks.
  constexpr std::uint64_t kKeys = 3000;
  Chunk<std::uint64_t> chunk(256);
  for (std::uint64_t v = 0; v < kKeys * 2; ++v) {
    chunk.Append(v % kKeys, 0);
    if (chunk.full()) {
      input.PublishChunk(chunk.view());
      chunk.Clear();
    }
  }
  if (!chunk.empty()) input.PublishChunk(chunk.view());

  ASSERT_EQ(agg->groups().size(), kKeys);
  for (const auto& [key, count] : agg->groups()) {
    EXPECT_EQ(count, 2u) << "key " << key;
  }
}

// Satellite regression: exactly ONE key extraction per tuple on the chunk
// paths (extraction is hoisted per chunk; emitting the update pair must
// not re-extract).
TEST(GroupedAggregateExtractionTest, ScalarChunkPathExtractsOncePerTuple) {
  Publisher<int> input;
  std::size_t calls = 0;
  GroupedAggregate<int, int, int> agg(
      &input,
      [&calls](const int& v) {
        ++calls;
        return v % 2;
      },
      0, [](int& acc, const int& v) { acc += v; });
  Collect<std::pair<int, int>> out(&agg);

  Chunk<int> chunk(8);
  for (int v = 0; v < 8; ++v) chunk.Append(v, 0);
  input.PublishChunk(chunk.view());
  EXPECT_EQ(calls, 8u) << "chunk path must extract each key exactly once";
  EXPECT_EQ(out.size(), 8u);

  input.Publish(StreamElement<int>(9, 0));
  EXPECT_EQ(calls, 9u) << "per-tuple path must extract exactly once";
}

TEST(GroupedAggregateExtractionTest, KernelChunkPathExtractsOncePerTuple) {
  Publisher<int> input;
  static std::size_t calls;  // functor must stay capture-light/copyable
  calls = 0;
  struct CountingKey {
    int operator()(const int& v) const {
      ++calls;
      return v % 2;
    }
  };
  std::unique_ptr<GroupedAggregate<int, int, int>> agg(
      MakeVectorizedGroupedAggregate<int, int, int>(
          &input, CountingKey{}, 0,
          [](int& acc, const int& v) { acc += v; }));
  Collect<std::pair<int, int>> out(agg.get());

  Chunk<int> chunk(8);
  for (int v = 0; v < 8; ++v) chunk.Append(v, 0);
  input.PublishChunk(chunk.view());
  EXPECT_EQ(calls, 8u)
      << "vectorized path must extract each key exactly once (hoisted pass)";
  EXPECT_EQ(out.size(), 8u);
}

// -------------------------------------------- steady-state allocation ---

TEST(ColumnarSteadyStateTest, OperatorsReuseScratchAcrossChunks) {
  Publisher<std::uint64_t> input;
  std::unique_ptr<Where<std::uint64_t>> where(MakeVectorizedWhere(
      &input, [](const std::uint64_t& v) { return v % 2 == 0; }));
  std::unique_ptr<GroupedAggregate<std::uint64_t, std::uint64_t, std::uint64_t>>
      agg(MakeVectorizedGroupedAggregate<std::uint64_t, std::uint64_t,
                                         std::uint64_t>(
          where.get(), [](const std::uint64_t& v) { return v % 8; },
          std::uint64_t{0},
          [](std::uint64_t& acc, const std::uint64_t& v) { acc += v; }));
  std::uint64_t drained = 0;
  ForEach<std::pair<std::uint64_t, std::uint64_t>> sink(
      agg.get(),
      [&](const std::pair<std::uint64_t, std::uint64_t>&) { ++drained; });

  Chunk<std::uint64_t> chunk(64);
  for (int round = 0; round < 200; ++round) {
    chunk.Clear();
    for (std::uint64_t v = 0; v < 64; ++v) {
      chunk.Append(v + static_cast<std::uint64_t>(round), 0);
    }
    input.PublishChunk(chunk.view());
  }
  EXPECT_EQ(drained, 200u * 32u);
  EXPECT_EQ(where->stats().kernel_chunks, 200u);
  EXPECT_EQ(agg->stats().kernel_chunks, 200u);
}

}  // namespace
}  // namespace streamsi
