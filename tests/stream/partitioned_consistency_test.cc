// Multi-partition consistency (§3/§4.3 through the partitioned execution
// engine): N lanes write two states under broadcast BOT/COMMIT batches,
// each lane committing its own transactions through the shared
// group-commit WAL path. Ad-hoc readers must never observe a torn batch —
// the partitioned extension of
// ConsistencyTest.ReadersSeeBothStatesOrNeither.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "core/streamsi.h"
#include "stream/stream.h"

namespace streamsi {
namespace {

struct Tuple {
  std::uint64_t key;
  std::uint64_t value;
};

class PartitionedConsistencyTest : public ::testing::TestWithParam<ProtocolType> {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.protocol = GetParam();
    // Deliberately the default mvcc_slots (8): 400 tuples over 8 keys = 50
    // overwrites per key, and on a 1-core container a descheduled reader
    // holds its snapshot pin across dozens of lane commits — this test is
    // the reproducer for hot-key version-array exhaustion. Adaptive slot
    // growth plus bounded writer backpressure must absorb it (disabling
    // them via mvcc_slots_max=8 fails the MVCC case 8/8 runs); before they
    // landed, this test needed a mvcc_slots=64 workaround.
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    auto a = db_->CreateState("a");
    auto b = db_->CreateState("b");
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    a_ = TransactionalTable<std::uint64_t, std::uint64_t>(&db_->txn_manager(),
                                                          *a);
    b_ = TransactionalTable<std::uint64_t, std::uint64_t>(&db_->txn_manager(),
                                                          *b);
    db_->CreateGroup({a_.id(), b_.id()});
  }

  TransactionManager& tm() { return db_->txn_manager(); }

  std::unique_ptr<Database> db_;
  TransactionalTable<std::uint64_t, std::uint64_t> a_;
  TransactionalTable<std::uint64_t, std::uint64_t> b_;
};

TEST_P(PartitionedConsistencyTest, ReadersNeverSeeATornBatch) {
  constexpr std::size_t kLanes = 4;
  constexpr int kTuples = 400;
  constexpr std::uint64_t kKeys = 8;  // key % kLanes fixes the lane

  // key = i % 8, value = i: a batch writes the same value to both states
  // for each touched key, so any (va != vb) observation is a torn batch.
  std::vector<StreamElement<Tuple>> elements;
  elements.reserve(kTuples);
  for (int i = 0; i < kTuples; ++i) {
    elements.emplace_back(Tuple{static_cast<std::uint64_t>(i) % kKeys,
                                static_cast<std::uint64_t>(i)});
  }

  Topology topology;
  auto* source = topology.Add<VectorSource<Tuple>>(std::move(elements));
  // Boundaries upstream of the partitioner: every lane sees the same
  // BOT/COMMIT sequence and runs one transaction per broadcast batch.
  auto* batcher = topology.Add<Batcher<Tuple>>(source, 8);
  PartitionBy<Tuple>::Options options;
  options.queue_capacity = 64;
  auto* partition = topology.Add<PartitionBy<Tuple>>(
      batcher, kLanes,
      [](const Tuple& t) { return static_cast<std::size_t>(t.key); }, options);
  auto* merge = topology.Add<MergePartitions<Tuple>>(kLanes);
  std::vector<ToTable<Tuple, std::uint64_t, std::uint64_t>*> tails;
  for (std::size_t i = 0; i < kLanes; ++i) {
    // Per-lane transaction context: lane transactions commit concurrently
    // through the group-commit WAL, each covering both states.
    auto ctx = std::make_shared<StreamTxnContext>(&db_->txn_manager());
    auto* to_a = topology.Add<ToTable<Tuple, std::uint64_t, std::uint64_t>>(
        partition->lane(i), a_, ctx, [](const Tuple& t) { return t.key; },
        [](const Tuple& t) { return t.value; });
    auto* to_b = topology.Add<ToTable<Tuple, std::uint64_t, std::uint64_t>>(
        to_a, b_, ctx, [](const Tuple& t) { return t.key; },
        [](const Tuple& t) { return t.value; });
    merge->ConnectInput(i, to_b);
    tails.push_back(to_b);
  }
  auto* collect = topology.Add<Collect<Tuple>>(merge);

  std::atomic<bool> stop{false};
  std::atomic<bool> violation{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      const std::uint64_t key = static_cast<std::uint64_t>(r) % kKeys;
      while (!stop.load()) {
        auto t = db_->Begin();
        if (!t.ok()) continue;
        auto va = a_.Get((*t)->txn(), key);
        auto vb = b_.Get((*t)->txn(), key);
        if (va.status().IsAborted() || vb.status().IsAborted()) {
          continue;  // wait-die victim under S2PL
        }
        // BOCC readers that lose validation never "observed" the cut.
        if (!(*t)->Commit().ok()) continue;
        if (va.ok() != vb.ok()) {
          violation.store(true);  // key committed to one state only
        } else if (va.ok() && *va != *vb) {
          violation.store(true);  // torn across states
        }
      }
    });
  }

  topology.Start();
  topology.Join();
  stop.store(true);
  for (auto& reader : readers) reader.join();

  EXPECT_FALSE(violation.load())
      << ProtocolTypeName(GetParam())
      << ": ad-hoc reader observed the two states of one lane transaction "
      << "at different commits";
  // The merge forwarded every tuple exactly once.
  EXPECT_EQ(collect->size(), static_cast<std::size_t>(kTuples));

  if (GetParam() == ProtocolType::kMvcc) {
    // MVCC: readers never block or abort the lanes; every batch commits and
    // both states converge to the full key universe with equal values.
    for (auto* tail : tails) EXPECT_EQ(tail->error_count(), 0u);
    auto rows_a = SnapshotOf(&tm(), a_);
    auto rows_b = SnapshotOf(&tm(), b_);
    ASSERT_TRUE(rows_a.ok());
    ASSERT_TRUE(rows_b.ok());
    EXPECT_EQ(rows_a->size(), kKeys);
    std::sort(rows_a->begin(), rows_a->end());  // scan order is unordered
    std::sort(rows_b->begin(), rows_b->end());
    EXPECT_EQ(*rows_a, *rows_b)
        << "states diverged despite every batch writing both";
  } else {
    // S2PL/BOCC lanes can lose against ad-hoc readers and drop poisoned
    // batches, but some batches must commit.
    EXPECT_GT(tm().counters().committed.load(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, PartitionedConsistencyTest,
                         ::testing::Values(ProtocolType::kMvcc,
                                           ProtocolType::kS2pl,
                                           ProtocolType::kBocc),
                         [](const auto& info) {
                           return ProtocolTypeName(info.param);
                         });

}  // namespace
}  // namespace streamsi
