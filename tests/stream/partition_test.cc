// Partitioned parallel stream execution: bounded queues (backpressure
// policies, close-safe push), PartitionBy routing + punctuation broadcast,
// MergePartitions boundary alignment, topology lifecycle/stats, and the
// end-to-end tuple-conservation/window property across
// PartitionBy -> per-lane windows -> MergePartitions.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <thread>

#include "stream/stream.h"

namespace streamsi {
namespace {

template <typename T>
std::vector<StreamElement<T>> DataElements(std::vector<T> values) {
  std::vector<StreamElement<T>> out;
  Timestamp ts = 0;
  for (auto& v : values) out.emplace_back(std::move(v), ts++);
  return out;
}

// --------------------------------------------------------- BoundedQueue ---

TEST(BoundedQueueTest, PushAfterCloseIsRejected) {
  BoundedQueue<int> queue;
  EXPECT_EQ(queue.Push(1), PushResult::kOk);
  queue.Close();
  // The shutdown race of the seed: a producer publishing concurrently with
  // Close() used to enqueue into a queue whose consumer already observed
  // drain-and-exit. Now the push is rejected deterministically.
  EXPECT_EQ(queue.Push(2), PushResult::kClosed);
  EXPECT_EQ(queue.Pop().value(), 1);  // pre-close elements still drain
  EXPECT_FALSE(queue.Pop().has_value());
  EXPECT_EQ(queue.stats().pushed, 1u);
  EXPECT_EQ(queue.stats().dropped, 1u);
}

TEST(BoundedQueueTest, DropNewestPolicyRejectsWhenFull) {
  BoundedQueue<int> queue(2, BackpressurePolicy::kDropNewest);
  EXPECT_EQ(queue.Push(1), PushResult::kOk);
  EXPECT_EQ(queue.Push(2), PushResult::kOk);
  EXPECT_EQ(queue.Push(3), PushResult::kDropped);
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.Pop().value(), 1);
  EXPECT_EQ(queue.Push(4), PushResult::kOk);  // room again
  const auto stats = queue.stats();
  EXPECT_EQ(stats.pushed, 3u);
  EXPECT_EQ(stats.dropped, 1u);
  EXPECT_EQ(stats.high_water, 2u);
}

TEST(BoundedQueueTest, BlockingProducerResumesAfterPop) {
  BoundedQueue<int> queue(1, BackpressurePolicy::kBlock);
  ASSERT_EQ(queue.Push(1), PushResult::kOk);
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    EXPECT_EQ(queue.Push(2), PushResult::kOk);
    second_pushed.store(true, std::memory_order_release);
  });
  // The queue is full: the producer must be stalled, not dropping.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_pushed.load(std::memory_order_acquire));
  EXPECT_EQ(queue.Pop().value(), 1);
  producer.join();
  EXPECT_TRUE(second_pushed.load(std::memory_order_acquire));
  EXPECT_EQ(queue.Pop().value(), 2);
  EXPECT_GE(queue.stats().stalls, 1u);
  EXPECT_EQ(queue.stats().dropped, 0u);
}

TEST(BoundedQueueTest, CloseWakesBlockedProducer) {
  BoundedQueue<int> queue(1, BackpressurePolicy::kBlock);
  ASSERT_EQ(queue.Push(1), PushResult::kOk);
  PushResult blocked_result = PushResult::kOk;
  std::thread producer([&] { blocked_result = queue.Push(2); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.Close();
  producer.join();
  EXPECT_EQ(blocked_result, PushResult::kClosed)
      << "a producer stalled on a full queue must not enqueue after close";
  EXPECT_EQ(queue.Pop().value(), 1);
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(BoundedQueueTest, PushWaitIsLosslessUnderDropNewest) {
  BoundedQueue<int> queue(1, BackpressurePolicy::kDropNewest);
  ASSERT_EQ(queue.Push(1), PushResult::kOk);
  EXPECT_EQ(queue.Push(2), PushResult::kDropped);
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_EQ(queue.PushWait(3), PushResult::kOk);
    pushed.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(pushed.load(std::memory_order_acquire))
      << "PushWait must block for room, not drop";
  EXPECT_EQ(queue.Pop().value(), 1);
  producer.join();
  EXPECT_EQ(queue.Pop().value(), 3);
}

// --------------------------------------------------------- QueueHandoff ---

TEST(QueueHandoffShutdownTest, ElementsPublishedAfterStopAreDropped) {
  Publisher<int> input;
  Topology topology;
  auto* handoff = topology.Add<QueueHandoff<int>>(&input);
  auto* collect = topology.Add<Collect<int>>(handoff);
  topology.Start();
  input.Publish(StreamElement<int>(1));
  input.Publish(StreamElement<int>(2));
  handoff->Stop();  // close: queued elements drain, later pushes bounce
  input.Publish(StreamElement<int>(3));
  handoff->Join();
  EXPECT_EQ(collect->Elements(), (std::vector<int>{1, 2}))
      << "element published after Stop() leaked through the queue";
  EXPECT_GE(handoff->stats().dropped, 1u);
}

// ---------------------------------------------------------- PartitionBy ---

TEST(PartitionByTest, RoutesByKeyAndBroadcastsPunctuations) {
  constexpr std::size_t kLanes = 3;
  constexpr int kTuples = 21;
  Topology topology;
  std::vector<StreamElement<int>> elements;
  elements.emplace_back(Punctuation::kBeginTxn);
  for (int i = 0; i < kTuples; ++i) elements.emplace_back(i);
  elements.emplace_back(Punctuation::kCommitTxn);
  auto* source = topology.Add<VectorSource<int>>(std::move(elements));
  auto* partition = topology.Add<PartitionBy<int>>(
      source, kLanes, [](const int& v) { return static_cast<std::size_t>(v); });

  struct LaneTrace {
    std::vector<int> data;
    std::vector<Punctuation> puncts;
  };
  std::array<LaneTrace, kLanes> traces;  // each touched by one lane thread
  for (std::size_t i = 0; i < kLanes; ++i) {
    topology.Add<ForEach<int>>(
        partition->lane(i),
        [&traces, i](const int& v) { traces[i].data.push_back(v); },
        [&traces, i](Punctuation p) { traces[i].puncts.push_back(p); });
  }
  topology.Start();
  topology.Join();

  std::vector<int> all;
  for (std::size_t i = 0; i < kLanes; ++i) {
    for (int v : traces[i].data) {
      EXPECT_EQ(static_cast<std::size_t>(v) % kLanes, i)
          << "tuple routed to the wrong lane";
      all.push_back(v);
    }
    EXPECT_EQ(traces[i].puncts,
              (std::vector<Punctuation>{Punctuation::kBeginTxn,
                                        Punctuation::kCommitTxn,
                                        Punctuation::kEndOfStream}))
        << "lane " << i << " missed a broadcast punctuation";
    EXPECT_EQ(partition->lane_stats(i).elements, traces[i].data.size());
  }
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kTuples));
  for (int i = 0; i < kTuples; ++i) EXPECT_EQ(all[static_cast<std::size_t>(i)], i);
}

TEST(PartitionByTest, DropNewestShedsDataButNeverPunctuations) {
  Topology topology;
  std::vector<StreamElement<int>> elements;
  elements.emplace_back(Punctuation::kBeginTxn);
  for (int i = 0; i < 200; ++i) elements.emplace_back(i);
  elements.emplace_back(Punctuation::kCommitTxn);
  auto* source = topology.Add<VectorSource<int>>(std::move(elements));
  PartitionBy<int>::Options options;
  options.queue_capacity = 2;
  options.policy = BackpressurePolicy::kDropNewest;
  auto* partition = topology.Add<PartitionBy<int>>(
      source, 1, [](const int&) { return std::size_t{0}; }, options);
  std::vector<Punctuation> puncts;
  std::atomic<int> data{0};
  topology.Add<ForEach<int>>(
      partition->lane(0),
      [&](const int&) {
        data.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      },
      [&](Punctuation p) { puncts.push_back(p); });
  topology.Start();
  // Must terminate: boundaries and EOS bypass the drop policy, so the lane
  // always sees EOS even while the tiny queue is shedding data.
  topology.Join();
  EXPECT_EQ(puncts,
            (std::vector<Punctuation>{Punctuation::kBeginTxn,
                                      Punctuation::kCommitTxn,
                                      Punctuation::kEndOfStream}));
  EXPECT_GT(partition->stats().dropped, 0u) << "queue never shed data";
  EXPECT_LT(data.load(), 200);
}

TEST(PartitionByTest, StopStillDeliversEosDownstream) {
  // Stop() closes the lane queues, which rejects the source's post-stop
  // EOS — each lane must synthesize one so downstream shutdown (merge
  // alignment, WaitForEos, ToTable's EOS flush) still runs instead of
  // hanging forever.
  Topology topology;
  auto* source = topology.Add<GeneratorSource<int>>(
      [i = 0]() mutable -> std::optional<StreamElement<int>> {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        return StreamElement<int>(i++);
      });
  auto* partition = topology.Add<PartitionBy<int>>(
      source, 2, [](const int& v) { return static_cast<std::size_t>(v); });
  auto* merge = topology.Add<MergePartitions<int>>(partition);
  auto* collect = topology.Add<Collect<int>>(merge);
  topology.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  topology.StopAndJoin();   // must terminate
  collect->WaitForEos();    // and EOS must have crossed the merge
}

// ------------------------------------------------------ MergePartitions ---

TEST(MergePartitionsTest, ForwardsBoundaryOnlyAfterAllLanesDelivered) {
  Publisher<int> lane0;
  Publisher<int> lane1;
  MergePartitions<int> merge(2);
  merge.ConnectInput(0, &lane0);
  merge.ConnectInput(1, &lane1);
  std::vector<std::string> trace;
  ForEach<int> sink(
      &merge, [&](const int& v) { trace.push_back(std::to_string(v)); },
      [&](Punctuation p) { trace.emplace_back(PunctuationName(p)); });

  lane0.Publish(StreamElement<int>(Punctuation::kBeginTxn));
  EXPECT_TRUE(trace.empty()) << "BOT forwarded before lane 1 delivered it";
  // Data behind lane 0's pending boundary must wait too — otherwise the
  // next batch's tuples would overtake this batch's boundary downstream.
  lane0.Publish(StreamElement<int>(1));
  EXPECT_TRUE(trace.empty());
  lane1.Publish(StreamElement<int>(Punctuation::kBeginTxn));
  EXPECT_EQ(trace, (std::vector<std::string>{"BOT", "1"}));
  lane1.Publish(StreamElement<int>(2));  // no pending boundary: direct
  EXPECT_EQ(trace.back(), "2");
  lane0.Publish(StreamElement<int>(Punctuation::kCommitTxn));
  lane0.Publish(StreamElement<int>(Punctuation::kEndOfStream));
  EXPECT_EQ(trace.size(), 3u) << "unaligned COMMIT/EOS leaked";
  lane1.Publish(StreamElement<int>(Punctuation::kCommitTxn));
  EXPECT_EQ(trace.back(), "COMMIT");
  lane1.Publish(StreamElement<int>(Punctuation::kEndOfStream));
  EXPECT_EQ(trace.back(), "EOS");
  EXPECT_EQ(trace.size(), 5u);
}

TEST(MergePartitionsTest, MisalignedLanesFailLoudlyButDrainToEos) {
  // Wiring bug (boundaries NOT injected upstream of the partitioner): the
  // lanes deliver different punctuation sequences. The merge must detect
  // it at runtime (release builds included), count it, and still drain to
  // EOS instead of hanging or silently dropping elements.
  Publisher<int> lane0;
  Publisher<int> lane1;
  MergePartitions<int> merge(2);
  merge.ConnectInput(0, &lane0);
  merge.ConnectInput(1, &lane1);
  std::vector<std::string> trace;
  ForEach<int> sink(
      &merge, [&](const int& v) { trace.push_back(std::to_string(v)); },
      [&](Punctuation p) { trace.emplace_back(PunctuationName(p)); });

  lane0.Publish(StreamElement<int>(Punctuation::kBeginTxn));
  lane1.Publish(StreamElement<int>(Punctuation::kEndOfStream));  // misaligned
  lane0.Publish(StreamElement<int>(7));
  lane0.Publish(StreamElement<int>(Punctuation::kCommitTxn));
  lane0.Publish(StreamElement<int>(Punctuation::kEndOfStream));

  EXPECT_EQ(trace, (std::vector<std::string>{"BOT", "7", "COMMIT", "EOS"}))
      << "best-effort recovery lost elements or never delivered EOS";
  EXPECT_GE(merge.misaligned_count(), 1u);
  EXPECT_EQ(merge.stats().dropped, 0u) << "nothing was actually dropped";
}

// ----------------------------------------------------- topology lifecycle ---

TEST(TopologyLifecycleTest, StopIsIdempotentAndStatsReportCoversOperators) {
  Topology topology;
  auto* source = topology.Add<GeneratorSource<int>>(
      [i = 0]() mutable -> std::optional<StreamElement<int>> {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        return StreamElement<int>(i++);
      });
  auto* partition = topology.Add<PartitionBy<int>>(
      source, 2, [](const int& v) { return static_cast<std::size_t>(v); });
  std::atomic<std::uint64_t> consumed{0};
  for (std::size_t i = 0; i < 2; ++i) {
    topology.Add<ForEach<int>>(partition->lane(i), [&](const int&) {
      consumed.fetch_add(1, std::memory_order_relaxed);
    });
  }
  topology.Start();
  topology.Start();  // idempotent: must not double-spawn lane threads
  while (consumed.load(std::memory_order_relaxed) < 4) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  topology.StopAndJoin();
  topology.StopAndJoin();  // idempotent

  const auto report = topology.StatsReport();
  ASSERT_EQ(report.size(), topology.operator_count());
  bool found_partition = false;
  for (const auto& entry : report) {
    if (entry.name == "PartitionBy") {
      found_partition = true;
      EXPECT_GE(entry.stats.elements, 4u);
    }
  }
  EXPECT_TRUE(found_partition);
}

// -------------------------------------------- end-to-end property check ---

TEST(PartitionPropertyTest, NoTupleLostOrDuplicatedAndWindowIdsMonotone) {
  constexpr int kTuples = 2000;
  constexpr std::size_t kLanes = 4;
  constexpr std::size_t kWindow = 16;

  struct TaggedBatch {
    std::size_t lane;
    WindowBatch<int> batch;
  };

  Topology topology;
  std::vector<int> values(kTuples);
  for (int i = 0; i < kTuples; ++i) values[static_cast<std::size_t>(i)] = i;
  auto* source = topology.Add<VectorSource<int>>(DataElements(values));
  // Boundaries upstream of the partitioner: identical per-lane sequences.
  auto* batcher = topology.Add<Batcher<int>>(source, 64);
  PartitionBy<int>::Options options;
  options.queue_capacity = 128;  // small: exercises blocking backpressure
  auto* partition = topology.Add<PartitionBy<int>>(
      batcher, kLanes, [](const int& v) { return static_cast<std::size_t>(v); },
      options);
  auto* merge = topology.Add<MergePartitions<TaggedBatch>>(kLanes);
  for (std::size_t i = 0; i < kLanes; ++i) {
    auto* window =
        topology.Add<TumblingCountWindow<int>>(partition->lane(i), kWindow);
    auto* tag = topology.Add<Map<WindowBatch<int>, TaggedBatch>>(
        window,
        [i](const WindowBatch<int>& batch) { return TaggedBatch{i, batch}; });
    merge->ConnectInput(i, tag);
  }
  auto* collect = topology.Add<Collect<TaggedBatch>>(merge);

  topology.Start();
  topology.Join();

  std::vector<int> seen;
  std::array<std::vector<std::uint64_t>, kLanes> window_ids;
  for (const TaggedBatch& tagged : collect->Elements()) {
    window_ids[tagged.lane].push_back(tagged.batch.window_id);
    for (int v : tagged.batch.elements) {
      EXPECT_EQ(static_cast<std::size_t>(v) % kLanes, tagged.lane)
          << "tuple crossed lanes";
      seen.push_back(v);
    }
  }
  // Conservation: every input tuple exactly once, none invented.
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kTuples))
      << "tuples lost or duplicated across PartitionBy -> MergePartitions";
  for (int i = 0; i < kTuples; ++i) {
    ASSERT_EQ(seen[static_cast<std::size_t>(i)], i);
  }
  // Per-lane window ids strictly monotone (no reordering within a lane).
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    ASSERT_FALSE(window_ids[lane].empty());
    for (std::size_t k = 1; k < window_ids[lane].size(); ++k) {
      EXPECT_GT(window_ids[lane][k], window_ids[lane][k - 1])
          << "window_id not monotone on lane " << lane;
    }
  }
  // Backpressure was lossless: nothing dropped anywhere.
  EXPECT_EQ(partition->stats().dropped, 0u);
}

}  // namespace
}  // namespace streamsi
