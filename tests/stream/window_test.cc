#include <gtest/gtest.h>

#include "stream/stream.h"

namespace streamsi {
namespace {

template <typename T>
std::vector<StreamElement<T>> DataElements(std::vector<T> values) {
  std::vector<StreamElement<T>> out;
  Timestamp ts = 0;
  for (auto& v : values) out.emplace_back(std::move(v), ts++);
  return out;
}

TEST(TumblingCountWindowTest, BatchesOfN) {
  Topology topology;
  auto* source =
      topology.Add<VectorSource<int>>(DataElements<int>({1, 2, 3, 4, 5, 6}));
  auto* window = topology.Add<TumblingCountWindow<int>>(source, 3);
  auto* collect = topology.Add<Collect<WindowBatch<int>>>(window);
  topology.Start();
  collect->WaitForEos();
  topology.Join();
  auto batches = collect->Elements();
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].window_id, 0u);
  EXPECT_EQ(batches[0].elements, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(batches[1].elements, (std::vector<int>{4, 5, 6}));
}

TEST(TumblingCountWindowTest, PartialWindowFlushedAtEos) {
  Topology topology;
  auto* source =
      topology.Add<VectorSource<int>>(DataElements<int>({1, 2, 3, 4, 5}));
  auto* window = topology.Add<TumblingCountWindow<int>>(source, 3);
  auto* collect = topology.Add<Collect<WindowBatch<int>>>(window);
  topology.Start();
  collect->WaitForEos();
  topology.Join();
  auto batches = collect->Elements();
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[1].elements, (std::vector<int>{4, 5}));
}

TEST(SlidingCountWindowTest, OverlappingBatches) {
  Topology topology;
  auto* source =
      topology.Add<VectorSource<int>>(DataElements<int>({1, 2, 3, 4, 5}));
  auto* window = topology.Add<SlidingCountWindow<int>>(source, 3, 1);
  auto* collect = topology.Add<Collect<WindowBatch<int>>>(window);
  topology.Start();
  collect->WaitForEos();
  topology.Join();
  auto batches = collect->Elements();
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].elements, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(batches[1].elements, (std::vector<int>{2, 3, 4}));
  EXPECT_EQ(batches[2].elements, (std::vector<int>{3, 4, 5}));
}

TEST(SlidingCountWindowTest, SlideBiggerThanOne) {
  Topology topology;
  auto* source = topology.Add<VectorSource<int>>(
      DataElements<int>({1, 2, 3, 4, 5, 6, 7}));
  auto* window = topology.Add<SlidingCountWindow<int>>(source, 2, 3);
  auto* collect = topology.Add<Collect<WindowBatch<int>>>(window);
  topology.Start();
  collect->WaitForEos();
  topology.Join();
  auto batches = collect->Elements();
  // Emissions at elements 3 (window {2,3}) and 6 (window {5,6}).
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].elements, (std::vector<int>{2, 3}));
  EXPECT_EQ(batches[1].elements, (std::vector<int>{5, 6}));
}

struct Reading {
  std::uint64_t time;
  double value;
};

TEST(TumblingTimeWindowTest, BucketsByEventTime) {
  Topology topology;
  auto* source = topology.Add<VectorSource<Reading>>(DataElements<Reading>(
      {{0, 1.0}, {5, 2.0}, {12, 3.0}, {19, 4.0}, {25, 5.0}}));
  auto* window = topology.Add<TumblingTimeWindow<Reading>>(
      source, 10, [](const Reading& r) { return r.time; });
  auto* collect = topology.Add<Collect<WindowBatch<Reading>>>(window);
  topology.Start();
  collect->WaitForEos();
  topology.Join();
  auto batches = collect->Elements();
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].elements.size(), 2u);  // t=0, t=5
  EXPECT_EQ(batches[0].window_id, 0u);
  EXPECT_EQ(batches[1].elements.size(), 2u);  // t=12, t=19
  EXPECT_EQ(batches[1].window_id, 1u);
  EXPECT_EQ(batches[2].elements.size(), 1u);  // t=25 flushed at EOS
  EXPECT_EQ(batches[2].window_id, 2u);
}

TEST(WindowAggregateTest, FoldsEachBatch) {
  Topology topology;
  auto* source =
      topology.Add<VectorSource<int>>(DataElements<int>({1, 2, 3, 4, 5, 6}));
  auto* window = topology.Add<TumblingCountWindow<int>>(source, 3);
  auto* sum = topology.Add<WindowAggregate<int, int>>(
      window, 0, [](int& acc, const int& v) { acc += v; });
  auto* collect = topology.Add<Collect<int>>(sum);
  topology.Start();
  collect->WaitForEos();
  topology.Join();
  EXPECT_EQ(collect->Elements(), (std::vector<int>{6, 15}));
}

TEST(NumericSummaryTest, TracksAllStatistics) {
  NumericSummary summary;
  summary.Add(2.0);
  summary.Add(4.0);
  summary.Add(9.0);
  EXPECT_EQ(summary.count, 3u);
  EXPECT_DOUBLE_EQ(summary.sum, 15.0);
  EXPECT_DOUBLE_EQ(summary.avg(), 5.0);
  EXPECT_DOUBLE_EQ(summary.min, 2.0);
  EXPECT_DOUBLE_EQ(summary.max, 9.0);
}

TEST(GroupedAggregateTest, PerKeyRunningState) {
  Topology topology;
  using Pair = std::pair<int, int>;  // (key, value)
  auto* source = topology.Add<VectorSource<Pair>>(DataElements<Pair>(
      {{1, 10}, {2, 20}, {1, 5}, {2, 1}, {1, 1}}));
  auto* agg = topology.Add<GroupedAggregate<Pair, int, int>>(
      source, [](const Pair& p) { return p.first; }, 0,
      [](int& acc, const Pair& p) { acc += p.second; });
  auto* collect = topology.Add<Collect<std::pair<int, int>>>(agg);
  topology.Start();
  collect->WaitForEos();
  topology.Join();
  auto updates = collect->Elements();
  ASSERT_EQ(updates.size(), 5u);
  EXPECT_EQ(updates.back(), (std::pair<int, int>{1, 16}));
  EXPECT_EQ(agg->groups().at(1), 16);
  EXPECT_EQ(agg->groups().at(2), 21);
}

}  // namespace
}  // namespace streamsi
