// Differential property test: the chunked (morsel) stream path must be
// observationally identical to the per-tuple path. The same seeded
// workload runs through VectorSource -> PartitionBy(4 lanes) -> per-lane
// Batcher -> per-lane ToTable -> MergePartitions twice — once with
// chunking off, once with chunk sizes chosen to NOT divide the batch size
// — under all three concurrency protocols. Committed table state, tuple
// conservation and the per-lane batch boundaries (which tuples share a
// transaction) must match exactly.
//
// Also pins the zero-allocation claim: at steady state the chunked
// transport path recycles pooled chunks, so growing the tuple count by 4x
// must not grow the allocation count with it.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <new>
#include <random>
#include <string>
#include <vector>

#include "core/streamsi.h"
#include "stream/stream.h"

// ------------------------------------------------ allocation accounting ---
// Global operator new/delete replacements counting every allocation in the
// test binary. The aligned forms matter: BoundedQueue's ring storage uses
// align_val_t new, and a missing override would mismatch its delete.

// GCC cannot see that the replacement operator new allocates with malloc,
// so it flags every (inlined) delete in this TU as mismatched. The pairing
// is correct — malloc/aligned_alloc on the new side, free on the delete
// side — which is the standard way to replace the global allocator.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {
std::atomic<std::uint64_t> g_allocations{0};

void* CountedAlloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  const std::size_t rounded = (size + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, rounded == 0 ? align : rounded)) {
    return p;
  }
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace streamsi {

/// Fixed-width event for the columnar differential lanes.
struct Event {
  std::uint64_t key = 0;
  std::uint64_t value = 0;
};

STREAMSI_COLUMNAR_FIELDS(Event, &Event::key, &Event::value);

namespace {

using Tuple = std::pair<std::uint64_t, std::uint64_t>;

constexpr std::size_t kLanes = 4;
constexpr std::uint64_t kTuples = 2040;  // 510 per lane; 510 % 7 != 0
constexpr std::size_t kBatch = 7;        // trailing partial batch per lane
constexpr std::uint64_t kKeySpace = 256;  // 256 % 4 == 0: round-robin lanes

/// Deterministic workload: key i % kKeySpace (round-robin over lanes, so
/// every lane sees the same load and merge alignment is exact), seeded
/// random values with repeated overwrites per key.
std::vector<StreamElement<Tuple>> MakeWorkload() {
  std::mt19937_64 rng(42);
  std::vector<StreamElement<Tuple>> elements;
  elements.reserve(kTuples);
  for (std::uint64_t i = 0; i < kTuples; ++i) {
    elements.emplace_back(Tuple{i % kKeySpace, rng()});
  }
  return elements;
}

struct RunOutput {
  std::map<std::uint64_t, std::uint64_t> committed;  ///< final table state
  /// Per lane: the sequence of transaction batches (tuple keys between
  /// BOT and COMMIT) — the transactional framing the chunk path must not
  /// disturb.
  std::vector<std::vector<std::vector<std::uint64_t>>> lane_batches;
  std::uint64_t drained = 0;
  std::uint64_t write_errors = 0;
  std::uint64_t merge_misaligned = 0;
};

RunOutput RunPipeline(ProtocolType protocol, std::size_t source_chunk,
                      std::size_t lane_chunk) {
  DatabaseOptions options;
  options.protocol = protocol;
  auto db = Database::Open(options).value();
  auto* state = db->CreateState("sink").value();
  TransactionalTable<std::uint64_t, std::uint64_t> table(&db->txn_manager(),
                                                         state);

  RunOutput out;
  out.lane_batches.resize(kLanes);

  Topology topology;
  SourceOptions source_options;
  source_options.chunk_capacity = source_chunk;
  auto* source =
      topology.Add<VectorSource<Tuple>>(MakeWorkload(), source_options);
  PartitionBy<Tuple>::Options poptions;
  poptions.chunk_capacity = lane_chunk;
  auto* partition = topology.Add<PartitionBy<Tuple>>(
      source, kLanes,
      [](const Tuple& t) { return static_cast<std::size_t>(t.first); },
      poptions);
  auto* merge = topology.Add<MergePartitions<Tuple>>(kLanes);
  std::vector<ToTable<Tuple, std::uint64_t, std::uint64_t>*> tails;
  for (std::size_t i = 0; i < kLanes; ++i) {
    auto* batcher =
        topology.Add<Batcher<Tuple>>(partition->lane(i), kBatch);
    // Frame tracer: records which tuples share a transaction batch. It
    // subscribes per-element, so chunk deliveries reach it through the
    // automatic fallback — in the same order ToTable consumes them.
    auto& batches = out.lane_batches[i];
    batcher->Subscribe([&batches](const StreamElement<Tuple>& e) {
      if (e.is_data()) {
        batches.back().push_back(e.data().first);
      } else if (e.punctuation() == Punctuation::kBeginTxn) {
        batches.emplace_back();
      }
    });
    auto ctx = std::make_shared<StreamTxnContext>(&db->txn_manager());
    auto* to_table =
        topology.Add<ToTable<Tuple, std::uint64_t, std::uint64_t>>(
            batcher, table, ctx, [](const Tuple& t) { return t.first; },
            [](const Tuple& t) { return t.second; });
    merge->ConnectInput(i, to_table);
    tails.push_back(to_table);
  }
  std::atomic<std::uint64_t> drained{0};
  topology.Add<ForEach<Tuple>>(merge, [&](const Tuple&) {
    drained.fetch_add(1, std::memory_order_relaxed);
  });
  topology.Start();
  topology.Join();

  out.drained = drained.load();
  for (auto* tail : tails) out.write_errors += tail->error_count();
  out.merge_misaligned = merge->misaligned_count();

  auto txn = db->Begin().value();
  EXPECT_TRUE(table
                  .Scan(txn->txn(),
                        [&](const std::uint64_t& k, const std::uint64_t& v) {
                          out.committed[k] = v;
                          return true;
                        })
                  .ok());
  EXPECT_TRUE(txn->Commit().ok());
  return out;
}

class ChunkDifferentialTest : public ::testing::TestWithParam<ProtocolType> {};

TEST_P(ChunkDifferentialTest, ChunkedPathMatchesPerTuplePath) {
  const RunOutput per_tuple = RunPipeline(GetParam(), 0, 0);
  // Chunk sizes deliberately misaligned with the batch size (7) and with
  // each other, so chunk seams fall mid-batch everywhere.
  const RunOutput chunked = RunPipeline(GetParam(), 32, 13);

  ASSERT_EQ(per_tuple.drained, kTuples);
  ASSERT_EQ(chunked.drained, kTuples) << "chunked path lost tuples";
  EXPECT_EQ(per_tuple.write_errors, 0u);
  EXPECT_EQ(chunked.write_errors, 0u);
  EXPECT_EQ(chunked.merge_misaligned, 0u);

  // Every key's last committed value is identical.
  ASSERT_EQ(per_tuple.committed.size(), kKeySpace);
  EXPECT_EQ(chunked.committed, per_tuple.committed)
      << "chunked path committed different table state";

  // The transactional framing is identical: the same tuples share the
  // same per-lane batches in the same order.
  for (std::size_t i = 0; i < kLanes; ++i) {
    EXPECT_EQ(chunked.lane_batches[i], per_tuple.lane_batches[i])
        << "lane " << i << " batch boundaries moved under chunking";
  }

  // Cross-check against the independently computed expectation.
  std::mt19937_64 rng(42);
  std::map<std::uint64_t, std::uint64_t> expected;
  for (std::uint64_t i = 0; i < kTuples; ++i) expected[i % kKeySpace] = rng();
  EXPECT_EQ(per_tuple.committed, expected);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ChunkDifferentialTest,
                         ::testing::Values(ProtocolType::kMvcc,
                                           ProtocolType::kS2pl,
                                           ProtocolType::kBocc),
                         [](const auto& info) {
                           switch (info.param) {
                             case ProtocolType::kMvcc: return "Mvcc";
                             case ProtocolType::kS2pl: return "S2pl";
                             case ProtocolType::kBocc: return "Bocc";
                           }
                           return "Unknown";
                         });

// ------------------------------------------- columnar/vectorized lanes ---
//
// The same workload runs through Where -> Map -> Batcher -> ToTable ->
// GroupedAggregate three ways: bare per-tuple delivery with scalar
// operators, row chunks through the scalar fallbacks, and row chunks
// through the columnar/vectorized kernels (ColumnarWhere's SoA scatter +
// selection output, MakeVectorizedMap, MakeVectorizedGroupedAggregate).
// Committed table state, the exact per-update aggregate sequence and the
// transaction framing must be byte-identical across all three — under
// every concurrency protocol.

enum class EngineVariant { kPerTuple, kRowChunk, kColumnar };

constexpr std::uint64_t kMixedTuples = 1022;  // not a multiple of 7 or 13
constexpr std::uint64_t kMixedKeys = 64;
constexpr std::size_t kMixedChunk = 13;  // misaligned with kBatch == 7

std::vector<StreamElement<Event>> MakeMixedWorkload() {
  std::mt19937_64 rng(7);
  std::vector<StreamElement<Event>> elements;
  elements.reserve(kMixedTuples);
  for (std::uint64_t i = 0; i < kMixedTuples; ++i) {
    elements.emplace_back(Event{i % kMixedKeys, rng() % 100000});
  }
  return elements;
}

struct MixedOutput {
  std::map<std::uint64_t, std::uint64_t> committed;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> updates;
  std::vector<std::vector<std::uint64_t>> batches;
  std::uint64_t write_errors = 0;
};

MixedOutput RunMixedPipeline(ProtocolType protocol, EngineVariant variant) {
  DatabaseOptions options;
  options.protocol = protocol;
  auto db = Database::Open(options).value();
  auto* state = db->CreateState("mixed_sink").value();
  TransactionalTable<std::uint64_t, std::uint64_t> table(&db->txn_manager(),
                                                         state);

  const auto keep = [](const std::uint64_t& value) {
    return (value & 3) != 0;
  };
  const auto transform = [](const Event& e) {
    return Event{e.key, e.value * 2 + 1};
  };
  const auto group_key = [](const Event& e) { return e.key % 8; };
  const auto fold = [](std::uint64_t& acc, const Event& e) {
    acc += e.value;
  };

  Topology topology;
  SourceOptions source_options;
  source_options.chunk_capacity =
      variant == EngineVariant::kPerTuple ? 0 : kMixedChunk;
  auto* source =
      topology.Add<VectorSource<Event>>(MakeMixedWorkload(), source_options);

  Publisher<Event>* filtered = nullptr;
  if (variant == EngineVariant::kColumnar) {
    // Field-1 (value) column filter over the SoA decomposition.
    filtered = topology.Adopt(new ColumnarWhere<Event, 1>(source, keep));
  } else {
    filtered = topology.Add<Where<Event>>(
        source, [keep](const Event& e) { return keep(e.value); });
  }

  Publisher<Event>* mapped = nullptr;
  if (variant == EngineVariant::kColumnar) {
    mapped = topology.Adopt(
        MakeVectorizedMap<Event, Event>(filtered, transform));
  } else {
    mapped = topology.Add<Map<Event, Event>>(filtered, transform);
  }

  auto* batcher = topology.Add<Batcher<Event>>(mapped, kBatch);
  MixedOutput out;
  batcher->Subscribe([&out](const StreamElement<Event>& e) {
    if (e.is_data()) {
      out.batches.back().push_back(e.data().key);
    } else if (e.punctuation() == Punctuation::kBeginTxn) {
      out.batches.emplace_back();
    }
  });

  auto ctx = std::make_shared<StreamTxnContext>(&db->txn_manager());
  auto* to_table = topology.Add<ToTable<Event, std::uint64_t, std::uint64_t>>(
      batcher, table, ctx, [](const Event& e) { return e.key; },
      [](const Event& e) { return e.value; });

  GroupedAggregate<Event, std::uint64_t, std::uint64_t>* agg = nullptr;
  if (variant == EngineVariant::kColumnar) {
    agg = topology.Adopt(
        MakeVectorizedGroupedAggregate<Event, std::uint64_t, std::uint64_t>(
            to_table, group_key, std::uint64_t{0}, fold));
  } else {
    agg = topology.Add<GroupedAggregate<Event, std::uint64_t, std::uint64_t>>(
        to_table, group_key, std::uint64_t{0}, fold);
  }
  auto* updates =
      topology.Add<Collect<std::pair<std::uint64_t, std::uint64_t>>>(agg);

  topology.Start();
  topology.Join();

  out.updates = updates->Elements();
  out.write_errors = to_table->error_count();

  auto txn = db->Begin().value();
  EXPECT_TRUE(table
                  .Scan(txn->txn(),
                        [&](const std::uint64_t& k, const std::uint64_t& v) {
                          out.committed[k] = v;
                          return true;
                        })
                  .ok());
  EXPECT_TRUE(txn->Commit().ok());
  return out;
}

class MixedEngineDifferentialTest
    : public ::testing::TestWithParam<ProtocolType> {};

TEST_P(MixedEngineDifferentialTest, ColumnarRowAndPerTupleLanesAgree) {
  const MixedOutput per_tuple =
      RunMixedPipeline(GetParam(), EngineVariant::kPerTuple);
  const MixedOutput row = RunMixedPipeline(GetParam(), EngineVariant::kRowChunk);
  const MixedOutput columnar =
      RunMixedPipeline(GetParam(), EngineVariant::kColumnar);

  EXPECT_EQ(per_tuple.write_errors, 0u);
  EXPECT_EQ(row.write_errors, 0u);
  EXPECT_EQ(columnar.write_errors, 0u);

  // Independently computed expectation anchors the per-tuple lane.
  std::mt19937_64 rng(7);
  std::map<std::uint64_t, std::uint64_t> expected_committed;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> expected_updates;
  std::map<std::uint64_t, std::uint64_t> acc;
  for (std::uint64_t i = 0; i < kMixedTuples; ++i) {
    const std::uint64_t key = i % kMixedKeys;
    const std::uint64_t value = rng() % 100000;
    if ((value & 3) == 0) continue;
    const std::uint64_t mapped = value * 2 + 1;
    expected_committed[key] = mapped;
    acc[key % 8] += mapped;
    expected_updates.emplace_back(key % 8, acc[key % 8]);
  }
  EXPECT_EQ(per_tuple.committed, expected_committed);
  EXPECT_EQ(per_tuple.updates, expected_updates);

  // Row-chunk and columnar lanes are byte-identical to the per-tuple lane.
  EXPECT_EQ(row.committed, per_tuple.committed);
  EXPECT_EQ(columnar.committed, per_tuple.committed)
      << "columnar lane committed different table state";
  EXPECT_EQ(row.updates, per_tuple.updates);
  EXPECT_EQ(columnar.updates, per_tuple.updates)
      << "columnar lane emitted a different aggregate update sequence";
  EXPECT_EQ(row.batches, per_tuple.batches);
  EXPECT_EQ(columnar.batches, per_tuple.batches)
      << "columnar lane moved transaction batch boundaries";
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, MixedEngineDifferentialTest,
                         ::testing::Values(ProtocolType::kMvcc,
                                           ProtocolType::kS2pl,
                                           ProtocolType::kBocc),
                         [](const auto& info) {
                           switch (info.param) {
                             case ProtocolType::kMvcc: return "Mvcc";
                             case ProtocolType::kS2pl: return "S2pl";
                             case ProtocolType::kBocc: return "Bocc";
                           }
                           return "Unknown";
                         });

// ------------------------------------------------- steady-state allocs ---

TEST(ChunkAllocationTest, SteadyStateAddsNoPerTupleAllocations) {
  // Chunked transport pipeline with a SHALLOW lane queue: the in-flight
  // chunk population is bounded by queue depth, so after warm-up every
  // chunk comes from the pool. Growing the tuple count 4x must therefore
  // not grow the allocation count measurably — allocations are a function
  // of topology shape, not stream length.
  auto run = [](std::uint64_t tuples) {
    Topology topology;
    std::vector<StreamElement<std::uint64_t>> elements;
    elements.reserve(tuples);
    for (std::uint64_t i = 0; i < tuples; ++i) elements.emplace_back(i);
    SourceOptions source_options;
    source_options.chunk_capacity = 64;
    auto* source = topology.Add<VectorSource<std::uint64_t>>(
        std::move(elements), source_options);
    PartitionBy<std::uint64_t>::Options options;
    options.chunk_capacity = 64;
    options.queue_capacity = 8;  // bounds the pool's working set
    options.policy = BackpressurePolicy::kBlock;
    auto* partition = topology.Add<PartitionBy<std::uint64_t>>(
        source, kLanes,
        [](const std::uint64_t& v) { return static_cast<std::size_t>(v); },
        options);
    auto* merge = topology.Add<MergePartitions<std::uint64_t>>(kLanes);
    for (std::size_t i = 0; i < kLanes; ++i) {
      merge->ConnectInput(i, partition->lane(i));
    }
    std::atomic<std::uint64_t> drained{0};
    topology.Add<ForEach<std::uint64_t>>(merge, [&](const std::uint64_t&) {
      drained.fetch_add(1, std::memory_order_relaxed);
    });

    const std::uint64_t before =
        g_allocations.load(std::memory_order_relaxed);
    topology.Start();
    topology.Join();
    const std::uint64_t during =
        g_allocations.load(std::memory_order_relaxed) - before;
    EXPECT_EQ(drained.load(), tuples);
    return during;
  };

  const std::uint64_t small_tuples = 8192;
  const std::uint64_t large_tuples = 4 * small_tuples;
  const std::uint64_t small_allocs = run(small_tuples);
  const std::uint64_t large_allocs = run(large_tuples);

  // 24576 extra tuples; allow a whisker of slack for thread/cv noise, far
  // below even 0.01 allocations per tuple.
  const std::uint64_t extra_tuples = large_tuples - small_tuples;
  EXPECT_LE(large_allocs, small_allocs + extra_tuples / 100)
      << "chunked path allocates per tuple at steady state (small run: "
      << small_allocs << " allocs, large run: " << large_allocs << ")";
}

TEST(ChunkAllocationTest, ColumnarSteadyStateAddsNoPerTupleAllocations) {
  // Columnar/vectorized pipeline: ColumnarWhere scatters every chunk into
  // a pooled ColumnarChunk and the vectorized GroupedAggregate reuses its
  // key/hash/scratch arrays — after warm-up nothing on the per-chunk path
  // allocates, so 4x the tuples must not grow the allocation count.
  auto run = [](std::uint64_t tuples) {
    Topology topology;
    std::vector<StreamElement<Event>> elements;
    elements.reserve(tuples);
    for (std::uint64_t i = 0; i < tuples; ++i) {
      elements.emplace_back(Event{i % 32, i});
    }
    SourceOptions source_options;
    source_options.chunk_capacity = 64;
    auto* source = topology.Add<VectorSource<Event>>(std::move(elements),
                                                     source_options);
    auto* where = topology.Adopt(new ColumnarWhere<Event, 1>(
        source, [](const std::uint64_t& value) { return (value & 3) != 0; }));
    auto* agg = topology.Adopt(
        MakeVectorizedGroupedAggregate<Event, std::uint64_t, std::uint64_t>(
            where, [](const Event& e) { return e.key; }, std::uint64_t{0},
            [](std::uint64_t& acc, const Event& e) { acc += e.value; }));
    std::atomic<std::uint64_t> drained{0};
    topology.Add<ForEach<std::pair<std::uint64_t, std::uint64_t>>>(
        agg, [&](const std::pair<std::uint64_t, std::uint64_t>&) {
          drained.fetch_add(1, std::memory_order_relaxed);
        });

    const std::uint64_t before =
        g_allocations.load(std::memory_order_relaxed);
    topology.Start();
    topology.Join();
    const std::uint64_t during =
        g_allocations.load(std::memory_order_relaxed) - before;
    EXPECT_EQ(drained.load(), tuples - tuples / 4)
        << "value & 3 drops exactly one tuple in four";
    return during;
  };

  const std::uint64_t small_tuples = 8192;
  const std::uint64_t large_tuples = 4 * small_tuples;
  const std::uint64_t small_allocs = run(small_tuples);
  const std::uint64_t large_allocs = run(large_tuples);

  const std::uint64_t extra_tuples = large_tuples - small_tuples;
  EXPECT_LE(large_allocs, small_allocs + extra_tuples / 100)
      << "columnar path allocates per tuple at steady state (small run: "
      << small_allocs << " allocs, large run: " << large_allocs << ")";
}

}  // namespace
}  // namespace streamsi
