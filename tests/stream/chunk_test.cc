// Chunked (morsel) execution units: chunk/view/pool/builder lifecycle,
// flush-reason accounting (full / boundary / timeout), the ring-backed
// bounded queue, publisher chunk delivery with per-tuple fallback, the
// Subscribe-after-Start() refusal, chunked operator semantics (Where
// compaction, Batcher framing) and the chunked
// PartitionBy -> lanes -> MergePartitions pipeline with its stats.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "stream/stream.h"

namespace streamsi {
namespace {

// --------------------------------------------------------- Chunk basics ---

TEST(ChunkTest, AppendViewAndSlice) {
  Chunk<int> chunk(4);
  chunk.Append(10, 100);
  chunk.Append(11, 101);
  chunk.Append(12, 102);
  EXPECT_EQ(chunk.size(), 3u);
  EXPECT_FALSE(chunk.full());

  const ChunkView<int> view = chunk.view();
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view[0], 10);
  EXPECT_EQ(view.ts(2), 102u);

  const ChunkView<int> slice = view.Slice(1, 2);
  ASSERT_EQ(slice.size(), 2u);
  EXPECT_EQ(slice[0], 11);
  EXPECT_EQ(slice.ts(1), 102u);

  Chunk<int> copy(4);
  copy.AppendView(slice);
  ASSERT_EQ(copy.size(), 2u);
  EXPECT_EQ(copy.view()[1], 12);
  EXPECT_EQ(copy.view().ts(0), 101u);
}

TEST(ChunkPoolTest, ReleaseReturnsStorageForReuse) {
  auto pool = ChunkPool<int>::Create();
  const Chunk<int>* raw = nullptr;
  {
    ChunkRef<int> ref = pool->Acquire(8);
    ref->Append(1, 0);
    raw = ref.get();
  }  // ref destroyed -> chunk back in the pool, cleared
  EXPECT_EQ(pool->allocated(), 1u);

  ChunkRef<int> again = pool->Acquire(8);
  EXPECT_EQ(again.get(), raw) << "pool should hand back the same storage";
  EXPECT_TRUE(again->empty()) << "released chunks must come back cleared";
  EXPECT_EQ(pool->reused(), 1u);
  EXPECT_EQ(pool->allocated(), 1u) << "steady state must not allocate";
}

TEST(ChunkBuilderTest, RecordsFlushReasons) {
  auto pool = ChunkPool<int>::Create();
  ChunkBuildStats stats;
  ChunkBuilder<int> builder(pool, /*capacity=*/2, /*linger_micros=*/0,
                            &stats);

  EXPECT_FALSE(builder.Append(1, 0));
  EXPECT_TRUE(builder.Append(2, 1)) << "second append fills a 2-chunk";
  {
    ChunkRef<int> full = builder.Take(ChunkFlushReason::kFull);
    ASSERT_TRUE(full);
    EXPECT_EQ(full->size(), 2u);
  }
  EXPECT_FALSE(builder.Append(3, 2));
  {
    ChunkRef<int> partial = builder.Take(ChunkFlushReason::kBoundary);
    ASSERT_TRUE(partial);
    EXPECT_EQ(partial->size(), 1u);
  }
  EXPECT_FALSE(builder.Take(ChunkFlushReason::kBoundary))
      << "empty builder yields no chunk";

  EXPECT_EQ(stats.chunks.load(), 2u);
  EXPECT_EQ(stats.tuples.load(), 3u);
  EXPECT_EQ(stats.flush_full.load(), 1u);
  EXPECT_EQ(stats.flush_boundary.load(), 1u);
  EXPECT_EQ(stats.flush_timeout.load(), 0u);
}

TEST(ChunkBuilderTest, LingerDeadlineExpiresOnPartialChunks) {
  auto pool = ChunkPool<int>::Create();
  ChunkBuildStats stats;
  ChunkBuilder<int> builder(pool, /*capacity=*/64, /*linger_micros=*/500,
                            &stats);
  EXPECT_FALSE(builder.LingerExpired()) << "empty builder never lingers";
  builder.Append(1, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  EXPECT_TRUE(builder.LingerExpired());
  (void)builder.Take(ChunkFlushReason::kTimeout);
  EXPECT_EQ(stats.flush_timeout.load(), 1u);
  EXPECT_FALSE(builder.LingerExpired()) << "taking the chunk resets linger";
}

// ----------------------------------------------------- ring BoundedQueue ---

TEST(BoundedQueueRingTest, WrapsAroundManyTimesWithoutLoss) {
  // Capacity 4 ring cycled far past its size: every pushed value pops out
  // in order through repeated head wrap-arounds.
  BoundedQueue<int> queue(4, BackpressurePolicy::kDropNewest);
  int next_push = 0;
  int next_pop = 0;
  for (int round = 0; round < 100; ++round) {
    while (queue.Push(next_push) == PushResult::kOk) ++next_push;
    while (queue.size() > 0) {  // Pop() blocks on an empty open queue
      const auto v = queue.Pop();
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, next_pop);
      ++next_pop;
    }
  }
  EXPECT_EQ(next_pop, next_push);
  EXPECT_GE(next_pop, 400);
}

TEST(BoundedQueueRingTest, DestructionDestroysLiveSlots) {
  // Non-trivial payloads left in the ring at destruction must be released.
  auto tracked = std::make_shared<int>(42);
  std::weak_ptr<int> watch = tracked;
  {
    BoundedQueue<std::shared_ptr<int>> queue(8);
    ASSERT_EQ(queue.Push(std::move(tracked)), PushResult::kOk);
  }
  EXPECT_TRUE(watch.expired()) << "queue destructor leaked a live slot";
}

// ----------------------------------------------------- Publisher chunks ---

TEST(PublisherChunkTest, ChunkSubscribersGetOneCallOthersGetFallback) {
  Publisher<int> publisher;
  std::vector<int> per_tuple;
  std::vector<Timestamp> per_tuple_ts;
  publisher.Subscribe([&](const StreamElement<int>& e) {
    per_tuple.push_back(e.data());
    per_tuple_ts.push_back(e.ts());
  });
  std::size_t chunk_calls = 0;
  std::vector<int> chunked;
  publisher.SubscribeWith([](const StreamElement<int>&) {},
                          [&](const ChunkView<int>& view) {
                            ++chunk_calls;
                            for (std::size_t i = 0; i < view.size(); ++i) {
                              chunked.push_back(view[i]);
                            }
                          });
  EXPECT_TRUE(publisher.has_chunk_subscriber());

  Chunk<int> chunk(3);
  chunk.Append(7, 70);
  chunk.Append(8, 80);
  chunk.Append(9, 90);
  publisher.PublishChunk(chunk.view());

  EXPECT_EQ(chunk_calls, 1u);
  EXPECT_EQ(chunked, (std::vector<int>{7, 8, 9}));
  EXPECT_EQ(per_tuple, (std::vector<int>{7, 8, 9}))
      << "non-chunk subscriber must receive the per-tuple fallback";
  EXPECT_EQ(per_tuple_ts, (std::vector<Timestamp>{70, 80, 90}))
      << "fallback elements must carry the per-tuple timestamps";
}

TEST(PublisherFreezeTest, SubscribeAfterStartIsRefused) {
  Publisher<int> publisher;
  publisher.FreezeSubscriptions();
  EXPECT_DEBUG_DEATH(
      publisher.Subscribe([](const StreamElement<int>&) {}),
      "Subscribe after");
#ifdef NDEBUG
  // Release builds refuse (log + drop) instead of asserting.
  EXPECT_EQ(publisher.subscriber_count(), 0u);
#endif
}

TEST(PublisherFreezeTest, TopologyStartFreezesAllPublishers) {
  Topology topology;
  auto* source = topology.Add<VectorSource<int>>(
      std::vector<StreamElement<int>>{StreamElement<int>(1)});
  auto* collect = topology.Add<Collect<int>>(source);
  topology.Start();
  EXPECT_TRUE(source->subscriptions_frozen());
  topology.Join();
  EXPECT_EQ(collect->size(), 1u);
}

// ------------------------------------------------------- chunked Where ---

TEST(WhereChunkTest, AllPassForwardsAndPartialPassCompacts) {
  Publisher<int> input;
  Where<int> where(&input, [](const int& v) { return v % 2 == 0; });
  Collect<int> collect(&where);

  Chunk<int> all_pass(4);
  for (int v : {0, 2, 4, 6}) all_pass.Append(v, 0);
  input.PublishChunk(all_pass.view());  // zero-copy forward path

  Chunk<int> mixed(4);
  for (int v : {1, 2, 3, 4}) mixed.Append(v, 0);
  input.PublishChunk(mixed.view());  // compaction path

  Chunk<int> none(2);
  for (int v : {1, 3}) none.Append(v, 0);
  input.PublishChunk(none.view());  // nothing survives, nothing published

  EXPECT_EQ(collect.Elements(), (std::vector<int>{0, 2, 4, 6, 2, 4}));
}

// ------------------------------------------------------ Batcher framing ---

/// Records the full output sequence — data values and punctuations with
/// their timestamps — for byte-identical comparisons across paths.
struct Trace {
  std::vector<std::string> events;
  void Attach(Publisher<int>* input) {
    input->Subscribe([this](const StreamElement<int>& e) {
      if (e.is_data()) {
        events.push_back("d" + std::to_string(e.data()) + "@" +
                         std::to_string(e.ts()));
      } else {
        events.push_back("p" + std::to_string(static_cast<int>(
                                   e.punctuation())) +
                         "@" + std::to_string(e.ts()));
      }
    });
  }
};

TEST(BatcherChunkTest, ChunkedFramingMatchesPerTuple) {
  constexpr std::size_t kBatch = 3;
  // 8 tuples: batches of 3 with a trailing partial, flushed by EOS.
  Publisher<int> per_tuple_in;
  Batcher<int> per_tuple_batcher(&per_tuple_in, kBatch);
  Trace per_tuple;
  per_tuple.Attach(&per_tuple_batcher);
  for (int v = 0; v < 8; ++v) {
    per_tuple_in.Publish(StreamElement<int>(v, static_cast<Timestamp>(v)));
  }
  per_tuple_in.Publish(StreamElement<int>(Punctuation::kEndOfStream, 8));

  Publisher<int> chunked_in;
  Batcher<int> chunked_batcher(&chunked_in, kBatch);
  Trace chunked;
  chunked.Attach(&chunked_batcher);
  // Same tuples in two chunks (5 + 3) whose seams do NOT line up with the
  // batch size — the batcher must slice across them identically.
  Chunk<int> first(5);
  for (int v = 0; v < 5; ++v) first.Append(v, static_cast<Timestamp>(v));
  Chunk<int> second(3);
  for (int v = 5; v < 8; ++v) second.Append(v, static_cast<Timestamp>(v));
  chunked_in.PublishChunk(first.view());
  chunked_in.PublishChunk(second.view());
  chunked_in.Publish(StreamElement<int>(Punctuation::kEndOfStream, 8));

  EXPECT_EQ(chunked.events, per_tuple.events)
      << "BOT/COMMIT framing must be byte-identical across both paths";
}

// ---------------------------------------- chunked partition -> merge ---

TEST(ChunkedPartitionMergeTest, ConservesTuplesAlignsAndReportsStats) {
  constexpr std::size_t kLanes = 4;
  constexpr int kTuples = 4096;
  Topology topology;
  std::vector<StreamElement<int>> elements;
  for (int i = 0; i < kTuples; ++i) elements.emplace_back(i);
  SourceOptions source_options;
  source_options.chunk_capacity = 32;
  auto* source = topology.Add<VectorSource<int>>(std::move(elements),
                                                 source_options);
  PartitionBy<int>::Options options;
  // 1024 tuples/lane and 24-chunks: 42 full flushes + a 16-tuple partial
  // that only the EOS boundary can flush.
  options.chunk_capacity = 24;
  auto* partition = topology.Add<PartitionBy<int>>(
      source, kLanes, [](const int& v) { return static_cast<std::size_t>(v); },
      options);
  auto* merge = topology.Add<MergePartitions<int>>(kLanes);
  for (std::size_t i = 0; i < kLanes; ++i) {
    // Batch boundary (every 8) forces boundary flushes inside every lane.
    auto* batcher = topology.Add<Batcher<int>>(partition->lane(i), 8);
    merge->ConnectInput(i, batcher);
  }
  auto* collect = topology.Add<Collect<int>>(merge);
  topology.Start();
  topology.Join();

  std::vector<int> all = collect->TakeElements();
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kTuples))
      << "chunked lanes lost or duplicated tuples";
  for (int i = 0; i < kTuples; ++i) {
    EXPECT_EQ(all[static_cast<std::size_t>(i)], i);
  }
  EXPECT_EQ(merge->misaligned_count(), 0u);

  const OperatorStats pstats = partition->stats();
  EXPECT_EQ(pstats.chunk_capacity, 24u);
  EXPECT_GT(pstats.chunks, 0u);
  EXPECT_EQ(pstats.chunk_tuples, static_cast<std::uint64_t>(kTuples));
  EXPECT_GT(pstats.flush_full, 0u) << "full 16-chunks must have flushed";
  EXPECT_GT(pstats.flush_boundary, 0u) << "EOS must flush partial chunks";
  EXPECT_GT(pstats.chunk_fill_ratio(), 0.0);
  EXPECT_LE(pstats.chunk_fill_ratio(), 1.0);

  const OperatorStats sstats = source->stats();
  EXPECT_EQ(sstats.chunk_capacity, 32u);
  EXPECT_EQ(sstats.chunk_tuples, static_cast<std::uint64_t>(kTuples));

  // The topology report surfaces the chunk counters and the merge
  // misalignment counter without touching the operators directly.
  bool saw_partition = false;
  bool saw_merge = false;
  for (const auto& entry : topology.StatsReport()) {
    if (entry.name == "PartitionBy") {
      saw_partition = true;
      EXPECT_GT(entry.stats.flush_full, 0u);
    }
    if (entry.name == "MergePartitions") {
      saw_merge = true;
      EXPECT_EQ(entry.stats.misaligned, 0u);
    }
  }
  EXPECT_TRUE(saw_partition);
  EXPECT_TRUE(saw_merge);
}

TEST(ChunkedPartitionTest, LingerFlushesQuietLanePartialChunk) {
  // Lane 0 receives one tuple and then goes quiet; lane 1 keeps routing.
  // The router's amortized linger sweep must flush lane 0's partial chunk
  // on timeout instead of holding it until EOS.
  Topology topology;
  std::atomic<int> cursor{0};
  auto* source = topology.Add<GeneratorSource<int>>(
      [&]() -> std::optional<StreamElement<int>> {
        const int i = cursor.fetch_add(1);
        if (i == 0) return StreamElement<int>(0);  // routes to lane 0
        if (i == 1) {
          // Let lane 0's partial chunk age past the linger deadline.
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        if (i <= 256) return StreamElement<int>(1);  // routes to lane 1
        return std::nullopt;
      });
  PartitionBy<int>::Options options;
  options.chunk_capacity = 64;
  options.chunk_linger_micros = 500;
  auto* partition = topology.Add<PartitionBy<int>>(
      source, 2, [](const int& v) { return static_cast<std::size_t>(v); },
      options);
  std::array<std::atomic<int>, 2> counts{};
  for (std::size_t i = 0; i < 2; ++i) {
    topology.Add<ForEach<int>>(partition->lane(i), [&counts, i](const int&) {
      counts[i].fetch_add(1);
    });
  }
  topology.Start();
  topology.Join();

  EXPECT_EQ(counts[0].load(), 1);
  EXPECT_EQ(counts[1].load(), 256);
  EXPECT_GE(partition->stats().flush_timeout, 1u)
      << "quiet lane's partial chunk must flush on linger expiry";
}

}  // namespace
}  // namespace streamsi
