// StreamTxnContext unit tests: shared transactions across operators,
// idempotent BOT, batch poisoning after mid-batch aborts, and the
// participant-snapshot race regression.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/streamsi.h"
#include "stream/txn_context.h"

namespace streamsi {
namespace {

class StreamTxnContextTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    a_ = (*db_->CreateState("a"))->id();
    b_ = (*db_->CreateState("b"))->id();
    db_->CreateGroup({a_, b_});
    ctx_ = std::make_unique<StreamTxnContext>(&db_->txn_manager());
    ctx_->AddParticipant(a_);
    ctx_->AddParticipant(b_);
  }

  std::unique_ptr<Database> db_;
  StateId a_;
  StateId b_;
  std::unique_ptr<StreamTxnContext> ctx_;
};

TEST_F(StreamTxnContextTest, BeginIsIdempotent) {
  ASSERT_TRUE(ctx_->Begin().ok());
  auto t1 = ctx_->Current();
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(ctx_->Begin().ok());  // same transaction
  auto t2 = ctx_->Current();
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ((*t1)->id(), (*t2)->id());
  ASSERT_TRUE(ctx_->CommitAll().ok());
}

TEST_F(StreamTxnContextTest, ParticipantsPreRegistered) {
  ASSERT_TRUE(ctx_->Begin().ok());
  auto txn = ctx_->Current();
  ASSERT_TRUE(txn.ok());
  // Both states registered at BOT: committing only state a must NOT make
  // this caller the coordinator.
  ASSERT_TRUE(
      db_->txn_manager().Write(**txn, a_, "k", "v").ok());
  ASSERT_TRUE(ctx_->CommitState(a_).ok());
  EXPECT_TRUE(ctx_->HasActive()) << "txn finished before state b committed";
  ASSERT_TRUE(ctx_->CommitState(b_).ok());
  EXPECT_FALSE(ctx_->HasActive());
}

TEST_F(StreamTxnContextTest, PoisonedBatchDropsWritesUntilNextBot) {
  ASSERT_TRUE(ctx_->Begin().ok());
  {
    auto txn = ctx_->Current();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(db_->txn_manager().Write(**txn, a_, "k1", "v").ok());
    // The transaction dies underneath the context (as a wait-die victim
    // would).
    ASSERT_TRUE(db_->txn_manager().Abort(**txn).ok());
  }
  // Subsequent writes of the same batch must be refused.
  auto poisoned = ctx_->Current();
  EXPECT_FALSE(poisoned.ok());
  EXPECT_TRUE(poisoned.status().IsAborted());

  // The batch-ending COMMIT punctuation clears the poison...
  ASSERT_TRUE(ctx_->CommitState(a_).ok());
  ASSERT_TRUE(ctx_->CommitState(b_).ok());
  // ...and the next batch proceeds normally.
  ASSERT_TRUE(ctx_->Begin().ok());
  auto fresh = ctx_->Current();
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(db_->txn_manager().Write(**fresh, a_, "k2", "v2").ok());
  ASSERT_TRUE(ctx_->CommitAll().ok());

  // Only the second batch's write survived.
  auto check = db_->Begin();
  std::string value;
  EXPECT_TRUE(
      db_->txn_manager().Read((*check)->txn(), a_, "k1", &value).IsNotFound());
  EXPECT_TRUE(db_->txn_manager().Read((*check)->txn(), a_, "k2", &value).ok());
  ASSERT_TRUE((*check)->Commit().ok());
}

TEST_F(StreamTxnContextTest, CommitStateWithoutTxnIsNoop) {
  EXPECT_TRUE(ctx_->CommitState(a_).ok());
  EXPECT_TRUE(ctx_->AbortState(a_).ok());
  EXPECT_TRUE(ctx_->CommitAll().ok());
}

TEST_F(StreamTxnContextTest, AbortStateAbortsGlobally) {
  ASSERT_TRUE(ctx_->Begin().ok());
  auto txn = ctx_->Current();
  ASSERT_TRUE(db_->txn_manager().Write(**txn, a_, "k", "v").ok());
  ASSERT_TRUE(db_->txn_manager().Write(**txn, b_, "k", "v").ok());
  ASSERT_TRUE(ctx_->AbortState(b_).ok());
  EXPECT_FALSE(ctx_->HasActive());

  auto check = db_->Begin();
  std::string value;
  EXPECT_TRUE(
      db_->txn_manager().Read((*check)->txn(), a_, "k", &value).IsNotFound());
  ASSERT_TRUE((*check)->Commit().ok());
}

TEST_F(StreamTxnContextTest, ParticipantSnapshotRacesWithRegistration) {
  // PR 3 regression (TSan-gated via ci.sh): participants() used to return
  // a const reference to the vector AddParticipant mutates under the lock,
  // so an operator enumerating participants while another lane was still
  // wiring its ToTable read a reallocating vector. The snapshot copy must
  // make concurrent registration + enumeration race-free.
  constexpr StateId kFirst = 100;
  constexpr StateId kCount = 300;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> enumerated{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::uint64_t sum = 0;
      for (StateId s : ctx_->participants()) sum += s;
      enumerated.fetch_add(sum, std::memory_order_relaxed);
    }
  });
  for (StateId s = kFirst; s < kFirst + kCount; ++s) {
    ctx_->AddParticipant(s);
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(ctx_->participants().size(), kCount + 2u);  // a_, b_ + new ones
}

TEST(WatermarkTest, LatestModificationTracksDeletes) {
  // Direct unit check of the FCW watermark semantics the property tests
  // exercised end-to-end.
  DatabaseOptions options;
  auto db = Database::Open(options);
  auto* store = (*db)->CreateState("s").value();

  ASSERT_TRUE(store->ApplyCommitted("k", "v", false, 10, 0, false).ok());
  EXPECT_EQ(store->LatestModification("k"), 10u);
  ASSERT_TRUE(store->ApplyCommitted("k", "", true, 20, 0, false).ok());
  EXPECT_EQ(store->LatestModification("k"), 20u)
      << "a committed delete is a modification";
  // GC may reclaim the deleted version; the watermark must survive.
  store->GarbageCollectAll(/*oldest_active=*/30);
  EXPECT_EQ(store->LatestModification("k"), 20u);
  // No-op delete of a missing key still counts (write-write conflict).
  ASSERT_TRUE(store->ApplyCommitted("ghost", "", true, 25, 0, false).ok());
  EXPECT_EQ(store->LatestModification("ghost"), 25u);
  // Recovery purge rolls the watermark back below the purge point. (GC
  // already reclaimed the version that carried ts=10, so the exact value
  // cannot be reconstructed — only the bound matters, and recovery reloads
  // objects from the backend anyway.)
  store->PurgeVersionsAfter(15);
  EXPECT_LE(store->LatestModification("k"), 15u);
}

}  // namespace
}  // namespace streamsi
