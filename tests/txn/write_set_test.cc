#include "txn/write_set.h"

#include <gtest/gtest.h>

namespace streamsi {
namespace {

TEST(WriteSetTest, EmptyByDefault) {
  WriteSet ws;
  EXPECT_TRUE(ws.empty());
  EXPECT_EQ(ws.size(), 0u);
  EXPECT_FALSE(ws.Get("k").has_value());
}

TEST(WriteSetTest, PutThenGet) {
  WriteSet ws;
  ws.Put("k", "v");
  auto got = ws.Get("k");
  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->has_value());
  EXPECT_EQ(**got, "v");
}

TEST(WriteSetTest, LastWritePerKeyWins) {
  WriteSet ws;
  ws.Put("k", "v1");
  ws.Put("k", "v2");
  EXPECT_EQ(ws.size(), 1u);  // in-place update, one dirty entry
  auto got = ws.Get("k");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(**got, "v2");
}

TEST(WriteSetTest, DeleteIsVisibleAsNullopt) {
  WriteSet ws;
  ws.Put("k", "v");
  ws.Delete("k");
  auto got = ws.Get("k");
  ASSERT_TRUE(got.has_value());        // the txn did write the key...
  EXPECT_FALSE(got->has_value());      // ...and the write is a delete
}

TEST(WriteSetTest, PutAfterDeleteRevives) {
  WriteSet ws;
  ws.Delete("k");
  ws.Put("k", "again");
  auto got = ws.Get("k");
  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->has_value());
  EXPECT_EQ(**got, "again");
}

TEST(WriteSetTest, PreservesFirstTouchOrder) {
  WriteSet ws;
  ws.Put("c", "1");
  ws.Put("a", "2");
  ws.Put("b", "3");
  ws.Put("a", "4");  // update must not move 'a' to the back
  ASSERT_EQ(ws.entries().size(), 3u);
  EXPECT_EQ(ws.entries()[0].key, "c");
  EXPECT_EQ(ws.entries()[1].key, "a");
  EXPECT_EQ(ws.entries()[1].value, "4");
  EXPECT_EQ(ws.entries()[2].key, "b");
}

TEST(WriteSetTest, ForEachEffectiveVisitsCurrentValues) {
  WriteSet ws;
  ws.Put("a", "old");
  ws.Put("a", "new");
  ws.Delete("b");
  int count = 0;
  ws.ForEachEffective([&](const std::string& key, const std::string& value,
                          bool is_delete) {
    ++count;
    if (key == "a") {
      EXPECT_EQ(value, "new");
      EXPECT_FALSE(is_delete);
    } else {
      EXPECT_EQ(key, "b");
      EXPECT_TRUE(is_delete);
    }
  });
  EXPECT_EQ(count, 2);
}

TEST(WriteSetTest, ClearReleasesEverything) {
  WriteSet ws;
  for (int i = 0; i < 100; ++i) ws.Put("k" + std::to_string(i), "v");
  ws.Clear();
  EXPECT_TRUE(ws.empty());
  EXPECT_FALSE(ws.Contains("k5"));
}

}  // namespace
}  // namespace streamsi
