#include "txn/write_set.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>

// ---------------------------------------------------------------------------
// Heap-allocation counter (mirrors the read-path allocation tests): the
// arena-backed write set must stop allocating once it reaches its
// high-water mark.
namespace {
std::atomic<std::uint64_t> g_heap_allocations{0};
std::atomic<bool> g_count_heap_allocations{false};
}  // namespace

void* operator new(std::size_t size) {
  if (g_count_heap_allocations.load(std::memory_order_relaxed)) {
    g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace streamsi {
namespace {

class AllocationCounter {
 public:
  AllocationCounter() {
    g_heap_allocations.store(0, std::memory_order_relaxed);
    g_count_heap_allocations.store(true, std::memory_order_relaxed);
  }
  ~AllocationCounter() {
    g_count_heap_allocations.store(false, std::memory_order_relaxed);
  }
  std::uint64_t count() const {
    return g_heap_allocations.load(std::memory_order_relaxed);
  }
};

TEST(WriteSetTest, EmptyByDefault) {
  WriteSet ws;
  EXPECT_TRUE(ws.empty());
  EXPECT_EQ(ws.size(), 0u);
  EXPECT_FALSE(ws.Find("k").written);
  EXPECT_FALSE(ws.Contains("k"));
}

TEST(WriteSetTest, PutThenFind) {
  WriteSet ws;
  ws.Put("k", "v");
  const auto got = ws.Find("k");
  ASSERT_TRUE(got.written);
  EXPECT_FALSE(got.is_delete);
  EXPECT_EQ(got.value, "v");
}

TEST(WriteSetTest, LastWritePerKeyWins) {
  WriteSet ws;
  ws.Put("k", "v1");
  ws.Put("k", "v2");
  EXPECT_EQ(ws.size(), 1u);  // in-place update, one dirty entry
  const auto got = ws.Find("k");
  ASSERT_TRUE(got.written);
  EXPECT_EQ(got.value, "v2");
}

TEST(WriteSetTest, DeleteIsVisibleAsDelete) {
  WriteSet ws;
  ws.Put("k", "v");
  ws.Delete("k");
  const auto got = ws.Find("k");
  ASSERT_TRUE(got.written);     // the txn did write the key...
  EXPECT_TRUE(got.is_delete);   // ...and the write is a delete
}

TEST(WriteSetTest, PutAfterDeleteRevives) {
  WriteSet ws;
  ws.Delete("k");
  ws.Put("k", "again");
  const auto got = ws.Find("k");
  ASSERT_TRUE(got.written);
  EXPECT_FALSE(got.is_delete);
  EXPECT_EQ(got.value, "again");
}

TEST(WriteSetTest, PreservesFirstTouchOrder) {
  WriteSet ws;
  ws.Put("c", "1");
  ws.Put("a", "2");
  ws.Put("b", "3");
  ws.Put("a", "4");  // update must not move 'a' to the back
  ASSERT_EQ(ws.entries().size(), 3u);
  EXPECT_EQ(ws.entries()[0].key, "c");
  EXPECT_EQ(ws.entries()[1].key, "a");
  EXPECT_EQ(ws.entries()[1].value, "4");
  EXPECT_EQ(ws.entries()[2].key, "b");
}

TEST(WriteSetTest, ForEachEffectiveVisitsCurrentValues) {
  WriteSet ws;
  ws.Put("a", "old");
  ws.Put("a", "new");
  ws.Delete("b");
  int count = 0;
  ws.ForEachEffective([&](std::string_view key, std::string_view value,
                          bool is_delete) {
    ++count;
    if (key == "a") {
      EXPECT_EQ(value, "new");
      EXPECT_FALSE(is_delete);
    } else {
      EXPECT_EQ(key, "b");
      EXPECT_TRUE(is_delete);
    }
  });
  EXPECT_EQ(count, 2);
}

TEST(WriteSetTest, ClearReleasesEverything) {
  WriteSet ws;
  for (int i = 0; i < 100; ++i) ws.Put("k" + std::to_string(i), "v");
  ws.Clear();
  EXPECT_TRUE(ws.empty());
  EXPECT_FALSE(ws.Contains("k5"));
}

TEST(WriteSetTest, ManyKeysGrowsIndexCorrectly) {
  WriteSet ws;
  for (int i = 0; i < 1000; ++i) {
    ws.Put("key-" + std::to_string(i), "value-" + std::to_string(i));
  }
  EXPECT_EQ(ws.size(), 1000u);
  for (int i = 0; i < 1000; ++i) {
    const auto got = ws.Find("key-" + std::to_string(i));
    ASSERT_TRUE(got.written) << i;
    EXPECT_EQ(got.value, "value-" + std::to_string(i));
  }
  EXPECT_FALSE(ws.Contains("key-1000"));
}

TEST(WriteSetTest, LargeValuesSpanArenaBlocks) {
  WriteSet ws;
  const std::string big(16 * 1024, 'B');  // larger than one arena block
  ws.Put("big", big);
  ws.Put("small", "s");
  ws.Put("big2", big);
  EXPECT_EQ(ws.Find("big").value, big);
  EXPECT_EQ(ws.Find("small").value, "s");
  EXPECT_EQ(ws.Find("big2").value, big);
}

TEST(WriteSetTest, ViewsStayValidAcrossIndexGrowthAndUpdates) {
  WriteSet ws;
  ws.Put("stable-key", "stable-value");
  const auto before = ws.Find("stable-key");
  for (int i = 0; i < 500; ++i) ws.Put("filler-" + std::to_string(i), "x");
  // Arena blocks are stable: the old views still point at live bytes.
  EXPECT_EQ(before.value, "stable-value");
  EXPECT_EQ(ws.Find("stable-key").value, "stable-value");
}

TEST(WriteSetTest, SteadyStateReuseAllocatesNothing) {
  WriteSet ws;
  // Keys long enough to defeat SSO in any std::string-based fallback.
  std::string keys[64];
  for (int i = 0; i < 64; ++i) {
    keys[i] = "alloc-test-key-" + std::to_string(100000 + i);
  }
  const std::string value(48, 'v');

  // Warm up: reach the high-water mark (arena blocks, entry capacity,
  // index size), then reset.
  for (const auto& key : keys) ws.Put(key, value);
  ws.Reset();

  AllocationCounter counter;
  for (int cycle = 0; cycle < 10; ++cycle) {
    for (const auto& key : keys) ws.Put(key, value);
    for (const auto& key : keys) {
      ASSERT_TRUE(ws.Contains(key));
      ASSERT_EQ(ws.Find(key).value, value);
    }
    for (const auto& key : keys) ws.Put(key, value);  // in-place updates
    ws.Reset();
  }
  EXPECT_EQ(counter.count(), 0u)
      << "steady-state Put/Find/Contains/Reset must not allocate";
}

}  // namespace
}  // namespace streamsi
