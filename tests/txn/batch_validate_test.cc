// Batch-amortized commit validation (SI Phase 1): LockForCommitBatch must
// be observationally identical to calling LockForCommit key by key — the
// same locks claimed in the same order, the same Conflict outcomes, the
// lock-CAS-failed key left unlocked, the first-committer-wins-failed key
// locked (and released later), and entries created for keys past a
// conflict point invisible to every reader. On top of the store-level
// pins, a two-lane differential drives overlapping write sets through the
// full SiProtocol commit path with batched validation on and off and
// demands identical abort/retry outcomes.

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/streamsi.h"
#include "storage/hash_backend.h"
#include "txn/si_protocol.h"
#include "txn/versioned_store.h"

namespace streamsi {
namespace {

std::unique_ptr<VersionedStore> MakeStore(StateId id = 0,
                                          StoreOptions options = {}) {
  return std::make_unique<VersionedStore>(
      id, "test", std::make_unique<HashTableBackend>(), options);
}

using Request = VersionedStore::CommitLockRequest;

Request MakeRequest(std::string_view key) {
  return Request{key, std::hash<std::string_view>{}(key), nullptr};
}

// ------------------------------------------------ store-level semantics ---

TEST(LockForCommitBatchTest, LocksEveryKeyAndResolvesHandles) {
  auto store = MakeStore();
  // One pre-existing key, two misses that must be created.
  ASSERT_TRUE(store->ApplyCommitted("b", "v", false, 5, 0, false).ok());

  const std::string keys[] = {"a", "b", "c"};
  std::vector<Request> requests;
  for (const auto& k : keys) requests.push_back(MakeRequest(k));

  std::size_t locked = 0;
  ASSERT_TRUE(
      store->LockForCommitBatch(requests.data(), requests.size(), 10, &locked)
          .ok());
  EXPECT_EQ(locked, 3u);
  EXPECT_EQ(store->stats().batch_validates.load(), 1u);
  for (const auto& r : requests) {
    EXPECT_NE(r.handle, nullptr) << r.key;
  }
  // Every key is exclusively owned by txn 10 now.
  for (const auto& k : keys) {
    EXPECT_TRUE(store->LockForCommit(k, 99).IsConflict()) << k;
  }
  // Re-entrant: the same transaction may batch-lock the same keys again.
  std::size_t relocked = 0;
  EXPECT_TRUE(
      store->LockForCommitBatch(requests.data(), requests.size(), 10, &relocked)
          .ok());
  EXPECT_EQ(relocked, 3u);
  for (const auto& r : requests) store->UnlockCommit(r.handle, 10);
  EXPECT_TRUE(store->LockForCommit("a", 99).ok());
  store->UnlockCommit("a", 99);
}

TEST(LockForCommitBatchTest, LockConflictLeavesFailingKeyUnlocked) {
  auto store = MakeStore();
  // Another transaction owns "b"; the batch {a, b, c} must claim "a",
  // fail on "b" WITHOUT locking it, and never touch "c" — exactly the
  // per-key path's observable state at the same conflict.
  ASSERT_TRUE(store->LockForCommit("b", 1).ok());

  const std::string keys[] = {"a", "b", "c"};
  std::vector<Request> requests;
  for (const auto& k : keys) requests.push_back(MakeRequest(k));
  std::size_t locked = 0;
  EXPECT_TRUE(
      store->LockForCommitBatch(requests.data(), requests.size(), 2, &locked)
          .IsConflict());
  EXPECT_EQ(locked, 1u) << "only the pre-conflict prefix holds locks";

  EXPECT_TRUE(store->LockForCommit("a", 3).IsConflict()) << "a is locked by 2";
  // "b" still belongs to txn 1 alone (re-entrant probe proves ownership).
  EXPECT_TRUE(store->LockForCommit("b", 1).ok());
  // "c" was never locked by the failed batch.
  EXPECT_TRUE(store->LockForCommit("c", 3).ok());
  store->UnlockCommit(requests[0].handle, 2);
  store->UnlockCommit("b", 1);
  store->UnlockCommit("c", 3);
}

TEST(LockForCommitBatchTest, FcwConflictCountsFailingKeyAsLocked) {
  auto store = MakeStore();
  // "k" has a committed modification at ts 100 — newer than txn 50's BOT,
  // so first-committer-wins rejects the batch. Matching the per-key path,
  // the FCW-failing key IS locked and counted: the caller records and
  // later releases it like any other claimed lock.
  ASSERT_TRUE(store->ApplyCommitted("k", "new", false, 100, 0, false).ok());

  const std::string keys[] = {"j", "k"};
  std::vector<Request> requests;
  for (const auto& k : keys) requests.push_back(MakeRequest(k));
  std::size_t locked = 0;
  EXPECT_TRUE(
      store->LockForCommitBatch(requests.data(), requests.size(), 50, &locked)
          .IsConflict());
  EXPECT_EQ(locked, 2u) << "the FCW-failed key is locked and counted";

  EXPECT_TRUE(store->LockForCommit("j", 60).IsConflict());
  EXPECT_TRUE(store->LockForCommit("k", 60).IsConflict());
  store->UnlockCommit(requests[0].handle, 50);
  store->UnlockCommit(requests[1].handle, 50);
  EXPECT_TRUE(store->LockForCommit("k", 60).ok());
  store->UnlockCommit("k", 60);
}

TEST(LockForCommitBatchTest, EntriesCreatedPastConflictAreInvisible) {
  auto store = MakeStore();
  ASSERT_TRUE(store->ApplyCommitted("stale", "x", false, 100, 0, false).ok());

  // Batch {stale, ghost} for txn 50: "stale" fails FCW, so the batch never
  // proceeds to lock "ghost" — but Phase B already created its entry. That
  // entry must carry no versions: invisible to snapshot and latest reads.
  const std::string keys[] = {"stale", "ghost"};
  std::vector<Request> requests;
  for (const auto& k : keys) requests.push_back(MakeRequest(k));
  std::size_t locked = 0;
  EXPECT_TRUE(
      store->LockForCommitBatch(requests.data(), requests.size(), 50, &locked)
          .IsConflict());
  EXPECT_EQ(locked, 1u);
  store->UnlockCommit(requests[0].handle, 50);

  std::string value;
  EXPECT_TRUE(store->ReadLatest("ghost", &value).IsNotFound());
  EXPECT_TRUE(store->ReadCommitted(1000, "ghost", &value).IsNotFound());
  std::size_t scanned = 0;
  ASSERT_TRUE(store
                  ->ScanCommitted(1000,
                                  [&](std::string_view, std::string_view) {
                                    ++scanned;
                                    return true;
                                  })
                  .ok());
  EXPECT_EQ(scanned, 1u) << "only 'stale' is visible";
  // The created entry is reusable: a later lock + install works normally.
  EXPECT_TRUE(store->LockForCommit("ghost", 200).ok());
  store->UnlockCommit("ghost", 200);
}

// ------------------------------------- protocol-level differential lanes ---

struct LaneOutcome {
  bool first_committed = false;
  bool second_committed = false;
  std::string second_error;
  bool retry_committed = false;
  std::map<std::string, std::string> committed;
};

/// Two overlapping write sets racing to commit, with a deterministic
/// interleaving: `first` commits while `second` is still open, then
/// `second` tries and must lose first-committer-wins; a fresh retry of the
/// loser's writes must succeed. Returns every observable outcome.
LaneOutcome RunOverlappingLanes(bool batched) {
  DatabaseOptions options;
  options.protocol = ProtocolType::kMvcc;
  auto db = Database::Open(options).value();
  auto* si = dynamic_cast<SiProtocol*>(&db->protocol());
  EXPECT_NE(si, nullptr);
  si->set_batched_validation(batched);
  auto* state = db->CreateState("lanes").value();
  const StateId sid = state->id();

  LaneOutcome out;
  auto first = db->Begin().value();
  auto second = db->Begin().value();
  // Overlap: k2..k4 are contested; k0/k1 and k5/k6 are private.
  for (int i = 0; i <= 4; ++i) {
    const std::string key = "k" + std::to_string(i);
    EXPECT_TRUE(first->Write(sid, key, "first").ok());
  }
  for (int i = 2; i <= 6; ++i) {
    const std::string key = "k" + std::to_string(i);
    EXPECT_TRUE(second->Write(sid, key, "second").ok());
  }
  out.first_committed = first->Commit().ok();
  const Status second_status = second->Commit();
  out.second_committed = second_status.ok();
  out.second_error = second_status.ok() ? "" : second_status.ToString();

  auto retry = db->Begin().value();
  for (int i = 2; i <= 6; ++i) {
    const std::string key = "k" + std::to_string(i);
    EXPECT_TRUE(retry->Write(sid, key, "retry").ok());
  }
  out.retry_committed = retry->Commit().ok();

  auto reader = db->Begin().value();
  EXPECT_TRUE(reader
                  ->Scan(sid,
                         [&](std::string_view k, std::string_view v) {
                           out.committed[std::string(k)] = std::string(v);
                           return true;
                         })
                  .ok());
  EXPECT_TRUE(reader->Commit().ok());
  if (batched) {
    EXPECT_GT(state->stats().batch_validates.load(), 0u)
        << "batched mode must route validation through LockForCommitBatch";
  } else {
    EXPECT_EQ(state->stats().batch_validates.load(), 0u)
        << "per-key mode must not touch the batch path";
  }
  return out;
}

TEST(BatchValidationDifferentialTest, OverlappingLanesAgreeWithPerKeyPath) {
  const LaneOutcome batched = RunOverlappingLanes(true);
  const LaneOutcome per_key = RunOverlappingLanes(false);

  // Both modes: the first committer wins, the overlapping loser aborts,
  // the retry lands.
  EXPECT_TRUE(batched.first_committed);
  EXPECT_TRUE(per_key.first_committed);
  EXPECT_FALSE(batched.second_committed) << "FCW must reject the second lane";
  EXPECT_FALSE(per_key.second_committed);
  EXPECT_TRUE(batched.retry_committed);
  EXPECT_TRUE(per_key.retry_committed);

  // Identical conflict classification and identical final state.
  EXPECT_EQ(batched.second_error, per_key.second_error);
  EXPECT_EQ(batched.committed, per_key.committed);
  std::map<std::string, std::string> expected;
  for (int i = 0; i <= 1; ++i) expected["k" + std::to_string(i)] = "first";
  for (int i = 2; i <= 6; ++i) expected["k" + std::to_string(i)] = "retry";
  EXPECT_EQ(batched.committed, expected);
}

TEST(BatchValidationDifferentialTest, ConcurrentContendedLanesStayCorrect) {
  // Two threads hammer an overlapping key range with retry-on-conflict
  // under each validation mode. The interleaving is nondeterministic, so
  // the assertions are invariants, not traces: every intended write
  // eventually commits, nothing is lost or interleaved within a
  // transaction (all 3 keys of a txn carry the same tag), and the batch
  // counter moves only in batched mode.
  for (const bool batched : {true, false}) {
    DatabaseOptions options;
    options.protocol = ProtocolType::kMvcc;
    auto db = Database::Open(options).value();
    auto* si = dynamic_cast<SiProtocol*>(&db->protocol());
    ASSERT_NE(si, nullptr);
    si->set_batched_validation(batched);
    auto* state = db->CreateState("torture").value();
    const StateId sid = state->id();

    constexpr int kTxnsPerLane = 120;
    std::atomic<std::uint64_t> conflicts{0};
    auto lane = [&](int lane_id) {
      for (int i = 0; i < kTxnsPerLane; ++i) {
        const std::string tag =
            std::to_string(lane_id) + ":" + std::to_string(i);
        for (int attempt = 0;; ++attempt) {
          ASSERT_LT(attempt, 10000) << "livelock in lane " << lane_id;
          auto txn = db->Begin();
          if (!txn.ok()) continue;  // transient slot pressure
          bool write_failed = false;
          // 3 keys per txn, overlapping across lanes: both lanes touch
          // key (i % 8), (i+1) % 8 and (i+2) % 8.
          for (int k = 0; k < 3; ++k) {
            const std::string key = "c" + std::to_string((i + k) % 8);
            if (!(*txn)->Write(sid, key, tag).ok()) write_failed = true;
          }
          if (!write_failed && (*txn)->Commit().ok()) break;
          conflicts.fetch_add(1, std::memory_order_relaxed);
        }
      }
    };
    std::thread t0(lane, 0);
    std::thread t1(lane, 1);
    t0.join();
    t1.join();

    // All 8 contested keys exist and carry a well-formed "lane:i" tag.
    auto reader = db->Begin().value();
    std::map<std::string, std::string> final_state;
    ASSERT_TRUE(reader
                    ->Scan(sid,
                           [&](std::string_view k, std::string_view v) {
                             final_state[std::string(k)] = std::string(v);
                             return true;
                           })
                    .ok());
    EXPECT_TRUE(reader->Commit().ok());
    ASSERT_EQ(final_state.size(), 8u);
    for (const auto& [key, value] : final_state) {
      const auto colon = value.find(':');
      ASSERT_NE(colon, std::string::npos) << key << " => " << value;
      const int lane_id = std::stoi(value.substr(0, colon));
      const int seq = std::stoi(value.substr(colon + 1));
      EXPECT_TRUE(lane_id == 0 || lane_id == 1);
      EXPECT_GE(seq, 0);
      EXPECT_LT(seq, kTxnsPerLane);
    }
    if (batched) {
      EXPECT_GT(state->stats().batch_validates.load(), 0u);
    } else {
      EXPECT_EQ(state->stats().batch_validates.load(), 0u);
    }
  }
}

}  // namespace
}  // namespace streamsi
