#include "txn/versioned_store.h"

#include <gtest/gtest.h>

#include "storage/hash_backend.h"
#include "tests/test_util.h"

namespace streamsi {
namespace {

std::unique_ptr<VersionedStore> MakeStore(StateId id = 0,
                                          StoreOptions options = {}) {
  return std::make_unique<VersionedStore>(
      id, "test", std::make_unique<HashTableBackend>(), options);
}

TEST(VersionedStoreTest, ReadMissingKeyIsNotFound) {
  auto store = MakeStore();
  std::string value;
  EXPECT_TRUE(store->ReadCommitted(100, "k", &value).IsNotFound());
  EXPECT_TRUE(store->ReadLatest("k", &value).IsNotFound());
  EXPECT_EQ(store->LatestCts("k"), kInitialTs);
}

TEST(VersionedStoreTest, ApplyThenReadAtSnapshot) {
  auto store = MakeStore();
  ASSERT_TRUE(store->ApplyCommitted("k", "v1", false, 10, 0, false).ok());
  ASSERT_TRUE(store->ApplyCommitted("k", "v2", false, 20, 0, false).ok());
  std::string value;
  ASSERT_TRUE(store->ReadCommitted(15, "k", &value).ok());
  EXPECT_EQ(value, "v1");
  ASSERT_TRUE(store->ReadCommitted(20, "k", &value).ok());
  EXPECT_EQ(value, "v2");
  ASSERT_TRUE(store->ReadLatest("k", &value).ok());
  EXPECT_EQ(value, "v2");
  EXPECT_EQ(store->LatestCts("k"), 20u);
}

TEST(VersionedStoreTest, DeleteOfMissingKeyIsNoop) {
  auto store = MakeStore();
  EXPECT_TRUE(store->ApplyCommitted("ghost", "", true, 10, 0, false).ok());
}

TEST(VersionedStoreTest, CommitLockIsExclusivePerKey) {
  auto store = MakeStore();
  ASSERT_TRUE(store->LockForCommit("k", 1).ok());
  EXPECT_TRUE(store->LockForCommit("k", 2).IsConflict());
  EXPECT_TRUE(store->LockForCommit("k", 1).ok());  // re-entrant
  EXPECT_TRUE(store->LockForCommit("other", 2).ok());
  store->UnlockCommit("k", 1);
  EXPECT_TRUE(store->LockForCommit("k", 2).ok());
  store->UnlockCommit("k", 2);
  store->UnlockCommit("other", 2);
}

TEST(VersionedStoreTest, UnlockByNonOwnerIsIgnored) {
  auto store = MakeStore();
  ASSERT_TRUE(store->LockForCommit("k", 1).ok());
  store->UnlockCommit("k", 99);  // not the owner
  EXPECT_TRUE(store->LockForCommit("k", 2).IsConflict());
  store->UnlockCommit("k", 1);
}

TEST(VersionedStoreTest, ScanSeesSnapshot) {
  auto store = MakeStore();
  ASSERT_TRUE(store->ApplyCommitted("a", "1", false, 10, 0, false).ok());
  ASSERT_TRUE(store->ApplyCommitted("b", "2", false, 10, 0, false).ok());
  ASSERT_TRUE(store->ApplyCommitted("b", "2'", false, 20, 0, false).ok());
  ASSERT_TRUE(store->ApplyCommitted("c", "3", false, 20, 0, false).ok());

  std::map<std::string, std::string> at10;
  ASSERT_TRUE(store
                  ->ScanCommitted(10,
                                  [&](std::string_view k, std::string_view v) {
                                    at10[std::string(k)] = std::string(v);
                                    return true;
                                  })
                  .ok());
  EXPECT_EQ(at10.size(), 2u);
  EXPECT_EQ(at10["b"], "2");

  std::map<std::string, std::string> at20;
  ASSERT_TRUE(store
                  ->ScanCommitted(20,
                                  [&](std::string_view k, std::string_view v) {
                                    at20[std::string(k)] = std::string(v);
                                    return true;
                                  })
                  .ok());
  EXPECT_EQ(at20.size(), 3u);
  EXPECT_EQ(at20["b"], "2'");
}

TEST(VersionedStoreTest, WriteThroughPersistsAndReloads) {
  StoreOptions options;
  options.write_through = true;
  auto backend = std::make_unique<HashTableBackend>();
  HashTableBackend* backend_raw = backend.get();
  auto store = std::make_unique<VersionedStore>(0, "s", std::move(backend),
                                                options);
  ASSERT_TRUE(store->ApplyCommitted("k", "v", false, 10, 0, true).ok());
  EXPECT_EQ(backend_raw->ApproximateCount(), 1u);

  // A fresh store over the same backend data must see the version again.
  // (HashTableBackend is in-process, so simulate by decoding the blob.)
  std::string blob;
  ASSERT_TRUE(backend_raw->Get("k", &blob).ok());
  auto object = MvccObject::Decode(blob, 8);
  ASSERT_TRUE(object.ok());
  std::string value;
  ASSERT_TRUE(object->GetVisible(10, &value));
  EXPECT_EQ(value, "v");
}

TEST(VersionedStoreTest, BulkLoadVisibleToEveryone) {
  auto store = MakeStore();
  ASSERT_TRUE(store->BulkLoad("k", "preloaded").ok());
  std::string value;
  ASSERT_TRUE(store->ReadCommitted(0, "k", &value).ok());
  EXPECT_EQ(value, "preloaded");
  EXPECT_EQ(store->KeyCount(), 1u);
}

TEST(VersionedStoreTest, PurgeVersionsAfterWatermark) {
  auto store = MakeStore();
  ASSERT_TRUE(store->ApplyCommitted("a", "ok", false, 10, 0, false).ok());
  ASSERT_TRUE(store->ApplyCommitted("a", "lost", false, 30, 0, false).ok());
  ASSERT_TRUE(store->ApplyCommitted("b", "lost", false, 30, 0, false).ok());
  EXPECT_EQ(store->PurgeVersionsAfter(20), 2u);
  std::string value;
  ASSERT_TRUE(store->ReadLatest("a", &value).ok());
  EXPECT_EQ(value, "ok");
  EXPECT_TRUE(store->ReadLatest("b", &value).IsNotFound());
  EXPECT_EQ(store->MaxCommittedCts(), 10u);
}

TEST(VersionedStoreTest, GarbageCollectAllReclaims) {
  StoreOptions options;
  options.mvcc_slots = 4;
  auto store = MakeStore(0, options);
  for (Timestamp ts = 1; ts <= 3; ++ts) {
    ASSERT_TRUE(
        store->ApplyCommitted("k", "v" + std::to_string(ts), false, ts * 10,
                              0, false)
            .ok());
  }
  // All snapshots up to 30 are released.
  EXPECT_EQ(store->GarbageCollectAll(30), 2u);
  std::string value;
  ASSERT_TRUE(store->ReadLatest("k", &value).ok());
  EXPECT_EQ(value, "v3");
}

TEST(VersionedStoreTest, LoadFromBackendRebuildsStore) {
  StoreOptions options;
  std::map<std::string, std::string> blobs;
  {
    auto backend = std::make_unique<HashTableBackend>();
    HashTableBackend* backend_raw = backend.get();
    VersionedStore store(0, "s", std::move(backend), options);
    ASSERT_TRUE(store.ApplyCommitted("x", "1", false, 5, 0, false).ok());
    ASSERT_TRUE(store.ApplyCommitted("y", "2", false, 7, 0, false).ok());
    backend_raw->Scan([&](std::string_view k, std::string_view v) {
      blobs[std::string(k)] = std::string(v);
      return true;
    });
  }
  // Copy the surviving blobs into a fresh backend, as a restart would find
  // them on disk.
  auto backend2 = std::make_unique<HashTableBackend>();
  for (const auto& [k, v] : blobs) backend2->Put(k, v, false);
  VersionedStore reloaded(0, "s", std::move(backend2), options);
  ASSERT_TRUE(reloaded.LoadFromBackend().ok());
  std::string value;
  ASSERT_TRUE(reloaded.ReadLatest("x", &value).ok());
  EXPECT_EQ(value, "1");
  EXPECT_EQ(reloaded.KeyCount(), 2u);
  EXPECT_EQ(reloaded.MaxCommittedCts(), 7u);
}

}  // namespace
}  // namespace streamsi
