#include "txn/versioned_store.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>
#include <thread>

#include "storage/hash_backend.h"
#include "tests/test_util.h"

// ---------------------------------------------------------------------------
// Heap-allocation counter: global operator new/delete overridden binary-wide
// so tests can assert that the snapshot read path allocates nothing for
// resident keys.
namespace {
std::atomic<std::uint64_t> g_heap_allocations{0};
std::atomic<bool> g_count_heap_allocations{false};
}  // namespace

void* operator new(std::size_t size) {
  if (g_count_heap_allocations.load(std::memory_order_relaxed)) {
    g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace streamsi {
namespace {

/// RAII scope that counts heap allocations made while it is alive.
class AllocationCounter {
 public:
  AllocationCounter() {
    g_heap_allocations.store(0, std::memory_order_relaxed);
    g_count_heap_allocations.store(true, std::memory_order_relaxed);
  }
  ~AllocationCounter() {
    g_count_heap_allocations.store(false, std::memory_order_relaxed);
  }
  std::uint64_t count() const {
    return g_heap_allocations.load(std::memory_order_relaxed);
  }
};

std::unique_ptr<VersionedStore> MakeStore(StateId id = 0,
                                          StoreOptions options = {}) {
  return std::make_unique<VersionedStore>(
      id, "test", std::make_unique<HashTableBackend>(), options);
}

TEST(VersionedStoreTest, ReadMissingKeyIsNotFound) {
  auto store = MakeStore();
  std::string value;
  EXPECT_TRUE(store->ReadCommitted(100, "k", &value).IsNotFound());
  EXPECT_TRUE(store->ReadLatest("k", &value).IsNotFound());
  EXPECT_EQ(store->LatestCts("k"), kInitialTs);
}

TEST(VersionedStoreTest, ApplyThenReadAtSnapshot) {
  auto store = MakeStore();
  ASSERT_TRUE(store->ApplyCommitted("k", "v1", false, 10, 0, false).ok());
  ASSERT_TRUE(store->ApplyCommitted("k", "v2", false, 20, 0, false).ok());
  std::string value;
  ASSERT_TRUE(store->ReadCommitted(15, "k", &value).ok());
  EXPECT_EQ(value, "v1");
  ASSERT_TRUE(store->ReadCommitted(20, "k", &value).ok());
  EXPECT_EQ(value, "v2");
  ASSERT_TRUE(store->ReadLatest("k", &value).ok());
  EXPECT_EQ(value, "v2");
  EXPECT_EQ(store->LatestCts("k"), 20u);
}

TEST(VersionedStoreTest, DeleteOfMissingKeyIsNoop) {
  auto store = MakeStore();
  EXPECT_TRUE(store->ApplyCommitted("ghost", "", true, 10, 0, false).ok());
}

TEST(VersionedStoreTest, CommitLockIsExclusivePerKey) {
  auto store = MakeStore();
  ASSERT_TRUE(store->LockForCommit("k", 1).ok());
  EXPECT_TRUE(store->LockForCommit("k", 2).IsConflict());
  EXPECT_TRUE(store->LockForCommit("k", 1).ok());  // re-entrant
  EXPECT_TRUE(store->LockForCommit("other", 2).ok());
  store->UnlockCommit("k", 1);
  EXPECT_TRUE(store->LockForCommit("k", 2).ok());
  store->UnlockCommit("k", 2);
  store->UnlockCommit("other", 2);
}

TEST(VersionedStoreTest, UnlockByNonOwnerIsIgnored) {
  auto store = MakeStore();
  ASSERT_TRUE(store->LockForCommit("k", 1).ok());
  store->UnlockCommit("k", 99);  // not the owner
  EXPECT_TRUE(store->LockForCommit("k", 2).IsConflict());
  store->UnlockCommit("k", 1);
}

TEST(VersionedStoreTest, ScanSeesSnapshot) {
  auto store = MakeStore();
  ASSERT_TRUE(store->ApplyCommitted("a", "1", false, 10, 0, false).ok());
  ASSERT_TRUE(store->ApplyCommitted("b", "2", false, 10, 0, false).ok());
  ASSERT_TRUE(store->ApplyCommitted("b", "2'", false, 20, 0, false).ok());
  ASSERT_TRUE(store->ApplyCommitted("c", "3", false, 20, 0, false).ok());

  std::map<std::string, std::string> at10;
  ASSERT_TRUE(store
                  ->ScanCommitted(10,
                                  [&](std::string_view k, std::string_view v) {
                                    at10[std::string(k)] = std::string(v);
                                    return true;
                                  })
                  .ok());
  EXPECT_EQ(at10.size(), 2u);
  EXPECT_EQ(at10["b"], "2");

  std::map<std::string, std::string> at20;
  ASSERT_TRUE(store
                  ->ScanCommitted(20,
                                  [&](std::string_view k, std::string_view v) {
                                    at20[std::string(k)] = std::string(v);
                                    return true;
                                  })
                  .ok());
  EXPECT_EQ(at20.size(), 3u);
  EXPECT_EQ(at20["b"], "2'");
}

TEST(VersionedStoreTest, WriteThroughPersistsAndReloads) {
  StoreOptions options;
  options.write_through = true;
  auto backend = std::make_unique<HashTableBackend>();
  HashTableBackend* backend_raw = backend.get();
  auto store = std::make_unique<VersionedStore>(0, "s", std::move(backend),
                                                options);
  ASSERT_TRUE(store->ApplyCommitted("k", "v", false, 10, 0, true).ok());
  EXPECT_EQ(backend_raw->ApproximateCount(), 1u);

  // A fresh store over the same backend data must see the version again.
  // (HashTableBackend is in-process, so simulate by decoding the blob.)
  std::string blob;
  ASSERT_TRUE(backend_raw->Get("k", &blob).ok());
  auto object = MvccObject::Decode(blob, 8);
  ASSERT_TRUE(object.ok());
  std::string value;
  ASSERT_TRUE(object->GetVisible(10, &value));
  EXPECT_EQ(value, "v");
}

TEST(VersionedStoreTest, BulkLoadVisibleToEveryone) {
  auto store = MakeStore();
  ASSERT_TRUE(store->BulkLoad("k", "preloaded").ok());
  std::string value;
  ASSERT_TRUE(store->ReadCommitted(0, "k", &value).ok());
  EXPECT_EQ(value, "preloaded");
  EXPECT_EQ(store->KeyCount(), 1u);
}

TEST(VersionedStoreTest, PurgeVersionsAfterWatermark) {
  auto store = MakeStore();
  ASSERT_TRUE(store->ApplyCommitted("a", "ok", false, 10, 0, false).ok());
  ASSERT_TRUE(store->ApplyCommitted("a", "lost", false, 30, 0, false).ok());
  ASSERT_TRUE(store->ApplyCommitted("b", "lost", false, 30, 0, false).ok());
  EXPECT_EQ(store->PurgeVersionsAfter(20), 2u);
  std::string value;
  ASSERT_TRUE(store->ReadLatest("a", &value).ok());
  EXPECT_EQ(value, "ok");
  EXPECT_TRUE(store->ReadLatest("b", &value).IsNotFound());
  EXPECT_EQ(store->MaxCommittedCts(), 10u);
}

TEST(VersionedStoreTest, AdaptiveGrowthAbsorbsHotKeyChurnUnderLaggingPin) {
  StoreOptions options;
  options.mvcc_slots = 2;
  options.mvcc_slots_max = 8;
  options.write_through = false;
  auto store = MakeStore(0, options);
  // A pin at 0 keeps everything visible: each full array must grow.
  for (Timestamp ts = 1; ts <= 8; ++ts) {
    ASSERT_TRUE(store
                    ->ApplyCommitted("hot", "v" + std::to_string(ts), false,
                                     ts * 10, /*oldest_active=*/kInitialTs,
                                     false)
                    .ok())
        << "ts " << ts;
  }
  EXPECT_EQ(store->stats().slot_growths.load(), 2u);  // 2 -> 4 -> 8
  EXPECT_EQ(store->stats().version_wait_stalls.load(), 0u);
  std::string value;
  for (Timestamp ts = 1; ts <= 8; ++ts) {
    ASSERT_TRUE(store->ReadCommitted(ts * 10, "hot", &value).ok());
    EXPECT_EQ(value, "v" + std::to_string(ts));
  }
  // At mvcc_slots_max with a FIXED (non-refreshable) floor: fail fast — a
  // fixed watermark can never rise, so waiting would be pure dead time.
  EXPECT_TRUE(store->ApplyCommitted("hot", "v9", false, 90, kInitialTs, false)
                  .IsResourceExhausted());
  EXPECT_EQ(store->stats().version_wait_stalls.load(), 0u);
}

TEST(VersionedStoreTest, BackpressureWaitsForRefreshableFloorToAdvance) {
  StoreOptions options;
  options.mvcc_slots = 2;
  options.mvcc_slots_max = 2;  // growth off: exercise the wait path alone
  options.version_wait_micros = 2'000'000;
  options.write_through = false;
  auto store = MakeStore(0, options);
  ASSERT_TRUE(store->ApplyCommitted("k", "v1", false, 10, kInitialTs, false)
                  .ok());
  ASSERT_TRUE(store->ApplyCommitted("k", "v2", false, 20, kInitialTs, false)
                  .ok());

  // A refreshable floor that rises from 0 to 15 when the "lagging reader"
  // is released (as EndTransaction would), with the wait hook doubling as
  // the release trigger after the first nap.
  struct Ctx {
    std::atomic<Timestamp> floor{kInitialTs};
    std::atomic<int> computes{0};
    std::atomic<int> waits{0};
  } ctx;
  GcFloor floor(
      +[](void* c) -> Timestamp {
        auto* x = static_cast<Ctx*>(c);
        x->computes.fetch_add(1);
        return x->floor.load();
      },
      &ctx,
      +[](void* c, std::uint64_t) {
        auto* x = static_cast<Ctx*>(c);
        x->waits.fetch_add(1);
        // v1 lives in [10, 20): a floor of 25 releases it — the moment the
        // lagging reader's transaction would have ended.
        x->floor.store(25);
      });
  const Status first = store->ApplyCommitted("k", "v3", false, 30, floor,
                                             false);
  ASSERT_TRUE(first.ok()) << first.ToString();
  EXPECT_GE(ctx.waits.load(), 1);
  EXPECT_GE(ctx.computes.load(), 2);  // initial resolve + >=1 re-resolution
  EXPECT_EQ(store->stats().version_wait_stalls.load(), 1u);
  std::string value;
  ASSERT_TRUE(store->ReadLatest("k", &value).ok());
  EXPECT_EQ(value, "v3");
}

TEST(VersionedStoreTest, BackpressureGivesUpAfterBoundedWait) {
  StoreOptions options;
  options.mvcc_slots = 2;
  options.mvcc_slots_max = 2;
  options.version_wait_micros = 3'000;  // tiny budget: the pin never moves
  options.write_through = false;
  auto store = MakeStore(0, options);
  ASSERT_TRUE(store->ApplyCommitted("k", "v1", false, 10, kInitialTs, false)
                  .ok());
  ASSERT_TRUE(store->ApplyCommitted("k", "v2", false, 20, kInitialTs, false)
                  .ok());

  std::atomic<int> waits{0};
  GcFloor floor(
      +[](void*) -> Timestamp { return kInitialTs; }, &waits,
      +[](void* c, std::uint64_t micros) {
        static_cast<std::atomic<int>*>(c)->fetch_add(1);
        std::this_thread::sleep_for(std::chrono::microseconds(micros));
      });
  EXPECT_TRUE(store->ApplyCommitted("k", "v3", false, 30, floor, false)
                  .IsResourceExhausted());
  EXPECT_GE(waits.load(), 1);
  EXPECT_EQ(store->stats().version_wait_stalls.load(), 1u);
  // The stall left the key intact.
  std::string value;
  ASSERT_TRUE(store->ReadLatest("k", &value).ok());
  EXPECT_EQ(value, "v2");
}

TEST(VersionedStoreTest, GarbageCollectAllReclaims) {
  StoreOptions options;
  options.mvcc_slots = 4;
  auto store = MakeStore(0, options);
  for (Timestamp ts = 1; ts <= 3; ++ts) {
    ASSERT_TRUE(
        store->ApplyCommitted("k", "v" + std::to_string(ts), false, ts * 10,
                              0, false)
            .ok());
  }
  // All snapshots up to 30 are released.
  EXPECT_EQ(store->GarbageCollectAll(30), 2u);
  std::string value;
  ASSERT_TRUE(store->ReadLatest("k", &value).ok());
  EXPECT_EQ(value, "v3");
}

TEST(VersionedStoreTest, LoadFromBackendRebuildsStore) {
  StoreOptions options;
  std::map<std::string, std::string> blobs;
  {
    auto backend = std::make_unique<HashTableBackend>();
    HashTableBackend* backend_raw = backend.get();
    VersionedStore store(0, "s", std::move(backend), options);
    ASSERT_TRUE(store.ApplyCommitted("x", "1", false, 5, 0, false).ok());
    ASSERT_TRUE(store.ApplyCommitted("y", "2", false, 7, 0, false).ok());
    backend_raw->Scan([&](std::string_view k, std::string_view v) {
      blobs[std::string(k)] = std::string(v);
      return true;
    });
  }
  // Copy the surviving blobs into a fresh backend, as a restart would find
  // them on disk.
  auto backend2 = std::make_unique<HashTableBackend>();
  for (const auto& [k, v] : blobs) backend2->Put(k, v, false);
  VersionedStore reloaded(0, "s", std::move(backend2), options);
  ASSERT_TRUE(reloaded.LoadFromBackend().ok());
  std::string value;
  ASSERT_TRUE(reloaded.ReadLatest("x", &value).ok());
  EXPECT_EQ(value, "1");
  EXPECT_EQ(reloaded.KeyCount(), 2u);
  EXPECT_EQ(reloaded.MaxCommittedCts(), 7u);
}

TEST(VersionedStoreTest, WarmReloadReplacesEntriesAndMaintenanceSeesOnlyThem) {
  StoreOptions options;
  auto backend = std::make_unique<HashTableBackend>();
  VersionedStore store(0, "s", std::move(backend), options);
  // Persisted state: k@5. Then advance the in-memory state past the backend
  // snapshot and reload: the store must roll back to what the backend holds.
  ASSERT_TRUE(store.ApplyCommitted("k", "persisted", false, 5, 0, false).ok());
  std::string blob;
  ASSERT_TRUE(store.backend()->Get("k", &blob).ok());
  ASSERT_TRUE(store.ApplyCommitted("k", "newer", false, 100, 0, false).ok());
  ASSERT_TRUE(store.backend()->Put("k", blob, false).ok());  // stale blob
  ASSERT_TRUE(store.LoadFromBackend().ok());

  // The superseded entry (cts=100) is unreachable: reads and maintenance
  // must only see the recovered state.
  std::string value;
  ASSERT_TRUE(store.ReadLatest("k", &value).ok());
  EXPECT_EQ(value, "persisted");
  EXPECT_EQ(store.MaxCommittedCts(), 5u);
  EXPECT_EQ(store.LatestCts("k"), 5u);
  EXPECT_EQ(store.KeyCount(), 1u);
  std::size_t scanned = 0;
  ASSERT_TRUE(store
                  .ScanCommitted(200,
                                 [&](std::string_view, std::string_view v) {
                                   ++scanned;
                                   EXPECT_EQ(v, "persisted");
                                   return true;
                                 })
                  .ok());
  EXPECT_EQ(scanned, 1u) << "graveyarded entry must not be scanned";
}

TEST(VersionedStoreTest, StatsCountReadsInstallsAndMisses) {
  auto store = MakeStore();
  ASSERT_TRUE(store->ApplyCommitted("a", "1", false, 10, 0, false).ok());
  ASSERT_TRUE(store->ApplyCommitted("b", "2", false, 20, 0, false).ok());
  ASSERT_TRUE(store->ApplyCommitted("b", "", true, 30, 0, false).ok());

  std::string value;
  ASSERT_TRUE(store->ReadCommitted(15, "a", &value).ok());
  ASSERT_TRUE(store->ReadLatest("a", &value).ok());
  EXPECT_TRUE(store->ReadCommitted(15, "missing", &value).IsNotFound());
  EXPECT_TRUE(store->ReadCommitted(5, "b", &value).IsNotFound());
  EXPECT_TRUE(store->ReadLatest("b", &value).IsNotFound());  // deleted

  const StoreStats& stats = store->stats();
  EXPECT_EQ(stats.installs.load(), 2u);
  EXPECT_EQ(stats.deletes.load(), 1u);
  EXPECT_EQ(stats.reads.load(), 5u);
  // Exactly one miss per failed read — the miss path must not double-count.
  EXPECT_EQ(stats.read_misses.load(), 3u);
  EXPECT_EQ(stats.scans.load(), 0u);
  ASSERT_TRUE(store
                  ->ScanCommitted(100,
                                  [](std::string_view, std::string_view) {
                                    return true;
                                  })
                  .ok());
  EXPECT_EQ(stats.scans.load(), 1u);
}

TEST(VersionedStoreReadPathTest, ReadCommittedZeroAllocForResidentKeys) {
  StoreOptions options;
  options.write_through = false;
  auto store = MakeStore(0, options);
  for (int k = 0; k < 16; ++k) {
    const std::string key = "key-" + std::to_string(k);
    ASSERT_TRUE(store
                    ->ApplyCommitted(key, "value-" + std::to_string(k), false,
                                     10, 0, false)
                    .ok());
  }

  const std::string key = "key-7";
  std::string value;
  value.reserve(64);
  // Warm-up: claims this thread's epoch slot and sizes the output buffer.
  ASSERT_TRUE(store->ReadCommitted(50, key, &value).ok());

  AllocationCounter counter;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(store->ReadCommitted(50, key, &value).ok());
    ASSERT_TRUE(store->ReadLatest(key, &value).ok());
  }
  EXPECT_EQ(counter.count(), 0u)
      << "snapshot reads of resident keys must not allocate";
  EXPECT_EQ(value, "value-7");
}

TEST(VersionedStoreReadPathTest, ScanCommittedZeroAllocAfterWarmup) {
  StoreOptions options;
  options.write_through = false;
  auto store = MakeStore(0, options);
  for (int k = 0; k < 32; ++k) {
    // Values fit in SSO buffers, so the scan's reusable buffer never grows.
    ASSERT_TRUE(store
                    ->ApplyCommitted("key-" + std::to_string(k), "v", false,
                                     10, 0, false)
                    .ok());
  }
  std::size_t seen = 0;
  const std::function<bool(std::string_view, std::string_view)> callback =
      [&seen](std::string_view, std::string_view) {
        ++seen;
        return true;
      };
  ASSERT_TRUE(store->ScanCommitted(50, callback).ok());  // warm-up
  ASSERT_EQ(seen, 32u);

  AllocationCounter counter;
  ASSERT_TRUE(store->ScanCommitted(50, callback).ok());
  EXPECT_EQ(counter.count(), 0u)
      << "scans over resident keys must not allocate";
  EXPECT_EQ(seen, 64u);
}

TEST(VersionedStoreReadPathTest, ScanCallbackMayCreateKeysInSameStore) {
  // Regression: ScanCommitted used to hold the shard latch in shared mode
  // across the callback, so a callback creating a new key (exclusive latch
  // on the same shard) self-deadlocked. The scan now releases the latch
  // before every callback, making write-backs — including inserts — safe.
  StoreOptions options;
  options.write_through = false;
  auto store = MakeStore(0, options);
  for (int k = 0; k < 16; ++k) {
    ASSERT_TRUE(store
                    ->ApplyCommitted("key-" + std::to_string(k), "v", false,
                                     10, 0, false)
                    .ok());
  }
  std::size_t seen = 0;
  ASSERT_TRUE(store
                  ->ScanCommitted(
                      50,
                      [&](std::string_view key, std::string_view) {
                        ++seen;
                        EXPECT_TRUE(store
                                        ->ApplyCommitted(
                                            std::string("derived-") +
                                                std::string(key),
                                            "d", false, 20, 0, false)
                                        .ok());
                        return true;
                      })
                  .ok());
  EXPECT_GE(seen, 16u);
  std::string value;
  EXPECT_TRUE(store->ReadCommitted(50, "derived-key-0", &value).ok());
  EXPECT_EQ(value, "d");
}

TEST(VersionedStoreReadPathTest, ReadLatestSkipsDeletedAndOldVersions) {
  auto store = MakeStore();
  ASSERT_TRUE(store->ApplyCommitted("k", "v1", false, 10, 0, false).ok());
  ASSERT_TRUE(store->ApplyCommitted("k", "v2", false, 20, 0, false).ok());
  std::string value;
  ASSERT_TRUE(store->ReadLatest("k", &value).ok());
  EXPECT_EQ(value, "v2");
  ASSERT_TRUE(store->ApplyCommitted("k", "", true, 30, 0, false).ok());
  // The newest version is a tombstone: the direct live-version probe must
  // report NotFound, not resurrect v2.
  EXPECT_TRUE(store->ReadLatest("k", &value).IsNotFound());
  // Old snapshots still see the pre-delete value.
  ASSERT_TRUE(store->ReadCommitted(25, "k", &value).ok());
  EXPECT_EQ(value, "v2");
}

// Stress: readers and scanners race installs, deletes, and GC. Asserts no
// torn reads (values always match the key they were written for) and no
// lost visible versions (a never-deleted key must stay readable).
TEST(VersionedStoreStressTest, ConcurrentReadersVsInstallDeleteGc) {
  constexpr int kKeys = 64;
  constexpr int kReaders = 3;
  constexpr auto kRunTime = std::chrono::milliseconds(300);

  StoreOptions options;
  options.mvcc_slots = 4;
  options.write_through = false;
  auto store = MakeStore(0, options);

  const auto key_for = [](int k) { return "key-" + std::to_string(k); };
  const auto value_for = [&](int k, Timestamp ts) {
    return key_for(k) + "@" + std::to_string(ts);
  };
  // Preload every key so readers always have something visible; key 0 is
  // never deleted and must never disappear.
  for (int k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(
        store->ApplyCommitted(key_for(k), value_for(k, 1), false, 1, 0, false)
            .ok());
  }

  std::atomic<Timestamp> clock{1};
  std::atomic<Timestamp> oldest_active{1};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads_ok{0};
  std::atomic<bool> failed{false};
  std::vector<std::string> errors(static_cast<std::size_t>(kReaders) + 3);
  std::vector<std::thread> threads;

  // Active-snapshot table: readers publish their read timestamp, the GC
  // thread derives the oldest-active watermark from it — the same contract
  // the transaction manager provides in the full system. gc_floor is the
  // newest watermark GC may already be collecting at; a reader whose chosen
  // snapshot fell behind it discards the snapshot and picks a fresh one.
  std::array<std::atomic<Timestamp>, kReaders> reader_snapshot;
  for (auto& snapshot : reader_snapshot) snapshot.store(kInfinityTs);
  std::atomic<Timestamp> gc_floor{0};

  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      std::string value;
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const Timestamp now = clock.load(std::memory_order_seq_cst);
        reader_snapshot[static_cast<std::size_t>(r)].store(
            now, std::memory_order_seq_cst);
        if (gc_floor.load(std::memory_order_seq_cst) >= now) {
          // GC may already be reclaiming versions this snapshot needs.
          reader_snapshot[static_cast<std::size_t>(r)].store(
              kInfinityTs, std::memory_order_seq_cst);
          continue;
        }
        const int k = static_cast<int>(i++ % kKeys);
        const std::string key = key_for(k);
        const Status status = store->ReadCommitted(now, key, &value);
        reader_snapshot[static_cast<std::size_t>(r)].store(
            kInfinityTs, std::memory_order_seq_cst);
        if (status.ok()) {
          // Torn-read check: the value must belong to this key.
          if (value.compare(0, key.size(), key) != 0 ||
              value.size() <= key.size() || value[key.size()] != '@') {
            errors[static_cast<std::size_t>(r)] =
                "torn read: key=" + key + " value=" + value;
            failed.store(true, std::memory_order_release);
            return;
          }
          reads_ok.fetch_add(1, std::memory_order_relaxed);
        } else if (k == 0) {
          // Key 0 is never deleted: a miss means a lost visible version.
          errors[static_cast<std::size_t>(r)] =
              "lost visible version for key-0 at ts=" + std::to_string(now);
          failed.store(true, std::memory_order_release);
          return;
        }
      }
    });
  }
  // Scanner thread: snapshot scans must only yield well-formed pairs.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const Timestamp now = clock.load(std::memory_order_acquire);
      const Status status = store->ScanCommitted(
          now, [&](std::string_view key, std::string_view value) {
            if (value.substr(0, key.size()) != key) {
              errors[kReaders] = "torn scan: key=" + std::string(key) +
                                 " value=" + std::string(value);
              failed.store(true, std::memory_order_release);
              return false;
            }
            return true;
          });
      if (!status.ok()) {
        errors[kReaders] = "scan failed: " + std::string(status.message());
        failed.store(true, std::memory_order_release);
        return;
      }
    }
  });
  // Writer thread: installs and tombstones at strictly increasing ts.
  threads.emplace_back([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const Timestamp ts = clock.fetch_add(1, std::memory_order_acq_rel) + 1;
      const int k = static_cast<int>(i++ % kKeys);
      Status status;
      if (k != 0 && i % 7 == 0) {
        status = store->ApplyCommitted(key_for(k), "", true, ts,
                                       oldest_active.load(), false);
        if (status.ok()) {
          status = store->ApplyCommitted(
              key_for(k), value_for(k, ts + 1),
              false, clock.fetch_add(1, std::memory_order_acq_rel) + 1,
              oldest_active.load(), false);
        }
      } else {
        status = store->ApplyCommitted(key_for(k), value_for(k, ts), false,
                                       ts, oldest_active.load(), false);
      }
      if (!status.ok() && !status.IsResourceExhausted()) {
        errors[kReaders + 1] = "write failed: " + std::string(status.message());
        failed.store(true, std::memory_order_release);
        return;
      }
      if (status.IsResourceExhausted()) {
        // Version array full of still-visible versions: legitimate while
        // readers pin old snapshots — yield so the GC thread catches up.
        std::this_thread::yield();
      }
    }
  });
  // GC thread: derives the oldest-active watermark from the reader
  // snapshot table and collects. The double scan around the gc_floor
  // publication closes the race with a reader that picked its snapshot
  // before the first scan but published it after.
  threads.emplace_back([&] {
    const auto oldest_snapshot = [&] {
      Timestamp oldest = clock.load(std::memory_order_seq_cst);
      for (const auto& snapshot : reader_snapshot) {
        oldest =
            std::min(oldest, snapshot.load(std::memory_order_seq_cst));
      }
      return oldest;
    };
    while (!stop.load(std::memory_order_relaxed)) {
      Timestamp floor = oldest_snapshot();
      floor = floor > 0 ? floor - 1 : 0;
      gc_floor.store(floor, std::memory_order_seq_cst);
      const Timestamp recheck = oldest_snapshot();
      if (recheck <= floor) floor = recheck > 0 ? recheck - 1 : 0;
      oldest_active.store(floor, std::memory_order_release);
      store->GarbageCollectAll(floor);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::this_thread::sleep_for(kRunTime);
  stop.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();

  for (const std::string& error : errors) {
    EXPECT_TRUE(error.empty()) << error;
  }
  EXPECT_FALSE(failed.load());
  EXPECT_GT(reads_ok.load(), 0u);
  // Sanity: the stress must have exercised the optimistic path.
  EXPECT_GT(store->stats().reads.load(), 0u);
}

}  // namespace
}  // namespace streamsi
