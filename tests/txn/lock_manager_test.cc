#include "txn/lock_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace streamsi {
namespace {

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm;
  EXPECT_TRUE(lm.LockShared("k", 1).ok());
  EXPECT_TRUE(lm.LockShared("k", 2).ok());
  EXPECT_TRUE(lm.LockShared("k", 3).ok());
  lm.Unlock("k", 1);
  lm.Unlock("k", 2);
  lm.Unlock("k", 3);
  EXPECT_EQ(lm.LockedKeyCount(), 0u);
}

TEST(LockManagerTest, ExclusiveExcludesYoungerReader) {
  LockManager lm;
  ASSERT_TRUE(lm.LockExclusive("k", 10).ok());
  // Requester 20 is younger than holder 10 => dies.
  EXPECT_TRUE(lm.LockShared("k", 20).IsBusy());
  lm.Unlock("k", 10);
  EXPECT_TRUE(lm.LockShared("k", 20).ok());
}

TEST(LockManagerTest, YoungerWriterDiesOnSharedHolders) {
  LockManager lm;
  ASSERT_TRUE(lm.LockShared("k", 10).ok());
  EXPECT_TRUE(lm.LockExclusive("k", 20).IsBusy());
  lm.Unlock("k", 10);
  EXPECT_TRUE(lm.LockExclusive("k", 20).ok());
}

TEST(LockManagerTest, OlderWriterWaitsForYoungerReader) {
  LockManager lm;
  ASSERT_TRUE(lm.LockShared("k", 20).ok());  // young reader
  std::atomic<bool> acquired{false};
  std::thread older([&] {
    // txn 10 is older than holder 20 => waits instead of dying.
    EXPECT_TRUE(lm.LockExclusive("k", 10).ok());
    acquired.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());
  lm.Unlock("k", 20);
  older.join();
  EXPECT_TRUE(acquired.load());
  lm.Unlock("k", 10);
}

TEST(LockManagerTest, ReentrantShared) {
  LockManager lm;
  EXPECT_TRUE(lm.LockShared("k", 1).ok());
  EXPECT_TRUE(lm.LockShared("k", 1).ok());  // no duplicate registration
  lm.Unlock("k", 1);
  EXPECT_EQ(lm.LockedKeyCount(), 0u);
}

TEST(LockManagerTest, ReentrantExclusive) {
  LockManager lm;
  EXPECT_TRUE(lm.LockExclusive("k", 1).ok());
  EXPECT_TRUE(lm.LockExclusive("k", 1).ok());
  EXPECT_TRUE(lm.LockShared("k", 1).ok());  // covered by exclusive
  lm.Unlock("k", 1);
  EXPECT_EQ(lm.LockedKeyCount(), 0u);
}

TEST(LockManagerTest, UpgradeWhenSoleSharedHolder) {
  LockManager lm;
  ASSERT_TRUE(lm.LockShared("k", 5).ok());
  EXPECT_TRUE(lm.LockExclusive("k", 5).ok());
  // Now exclusive: a younger reader dies.
  EXPECT_TRUE(lm.LockShared("k", 9).IsBusy());
  lm.Unlock("k", 5);
}

TEST(LockManagerTest, DifferentKeysIndependent) {
  LockManager lm;
  ASSERT_TRUE(lm.LockExclusive("a", 10).ok());
  EXPECT_TRUE(lm.LockExclusive("b", 20).ok());
  EXPECT_TRUE(lm.LockShared("c", 30).ok());
  lm.Unlock("a", 10);
  lm.Unlock("b", 20);
  lm.Unlock("c", 30);
}

TEST(LockManagerTest, NoDeadlockUnderContention) {
  // Wait-die guarantees progress: many threads locking two keys in
  // opposite orders must all eventually finish (some after Busy-aborts).
  LockManager lm;
  std::atomic<int> completed{0};
  std::atomic<TxnId> next_txn{1};
  auto worker = [&](bool forward) {
    for (int i = 0; i < 300; ++i) {
      for (;;) {
        const TxnId txn = next_txn.fetch_add(1);
        const std::string first = forward ? "x" : "y";
        const std::string second = forward ? "y" : "x";
        if (!lm.LockExclusive(first, txn).ok()) continue;  // died: retry
        if (!lm.LockExclusive(second, txn).ok()) {
          lm.Unlock(first, txn);
          continue;
        }
        lm.Unlock(second, txn);
        lm.Unlock(first, txn);
        break;
      }
      completed.fetch_add(1);
    }
  };
  std::thread t1(worker, true);
  std::thread t2(worker, false);
  std::thread t3(worker, true);
  std::thread t4(worker, false);
  t1.join();
  t2.join();
  t3.join();
  t4.join();
  EXPECT_EQ(completed.load(), 4 * 300);
  EXPECT_EQ(lm.LockedKeyCount(), 0u);
}

}  // namespace
}  // namespace streamsi
