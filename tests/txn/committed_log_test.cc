#include "txn/committed_log.h"

#include <gtest/gtest.h>

namespace streamsi {
namespace {

std::unordered_set<std::string> Keys(std::initializer_list<const char*> ks) {
  std::unordered_set<std::string> out;
  for (const char* k : ks) out.insert(k);
  return out;
}

TEST(CommittedLogTest, EmptyLogHasNoConflict) {
  CommittedTxnLog log;
  EXPECT_FALSE(log.HasConflict(0, Keys({"0/a"})));
}

TEST(CommittedLogTest, ConflictWhenCommittedAfterBegin) {
  CommittedTxnLog log;
  log.Append(10, Keys({"0/a", "0/b"}));
  // Txn began at 5: the commit at 10 wrote a key it read => conflict.
  EXPECT_TRUE(log.HasConflict(5, Keys({"0/a"})));
  // Txn began at 10: commit_ts 10 <= begin => no conflict.
  EXPECT_FALSE(log.HasConflict(10, Keys({"0/a"})));
}

TEST(CommittedLogTest, DisjointKeySetsNoConflict) {
  CommittedTxnLog log;
  log.Append(10, Keys({"0/x"}));
  EXPECT_FALSE(log.HasConflict(5, Keys({"0/a", "0/b"})));
}

TEST(CommittedLogTest, StateNamespacingSeparatesKeys) {
  CommittedTxnLog log;
  log.Append(10, Keys({"1/a"}));
  EXPECT_FALSE(log.HasConflict(5, Keys({"0/a"})));  // same key, other state
  EXPECT_TRUE(log.HasConflict(5, Keys({"1/a"})));
}

TEST(CommittedLogTest, ScansOnlyNewerRecords) {
  CommittedTxnLog log;
  log.Append(10, Keys({"0/old"}));
  log.Append(20, Keys({"0/new"}));
  EXPECT_FALSE(log.HasConflict(15, Keys({"0/old"})));
  EXPECT_TRUE(log.HasConflict(15, Keys({"0/new"})));
}

TEST(CommittedLogTest, PruneDropsOldRecords) {
  CommittedTxnLog log;
  log.Append(10, Keys({"0/a"}));
  log.Append(20, Keys({"0/b"}));
  log.Append(30, Keys({"0/c"}));
  EXPECT_EQ(log.size(), 3u);
  log.Prune(20);
  EXPECT_EQ(log.size(), 1u);
  // Records <= 20 are gone; conflicts against them can no longer be
  // detected — safe, because Prune's argument is the oldest active BOT.
  EXPECT_TRUE(log.HasConflict(25, Keys({"0/c"})));
  EXPECT_FALSE(log.HasConflict(25, Keys({"0/b"})));
}

TEST(CommittedLogTest, LargeReadSetUsesSmallerSideIteration) {
  CommittedTxnLog log;
  log.Append(10, Keys({"0/hot"}));
  std::unordered_set<std::string> big_read_set;
  for (int i = 0; i < 10000; ++i) {
    big_read_set.insert("0/k" + std::to_string(i));
  }
  big_read_set.insert("0/hot");
  EXPECT_TRUE(log.HasConflict(5, big_read_set));
}

}  // namespace
}  // namespace streamsi
