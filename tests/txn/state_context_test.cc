#include "txn/state_context.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

namespace streamsi {
namespace {

TEST(StateContextTest, RegisterStatesAssignsSequentialIds) {
  StateContext ctx;
  EXPECT_EQ(ctx.RegisterState("a"), 0u);
  EXPECT_EQ(ctx.RegisterState("b", "/data/b"), 1u);
  EXPECT_EQ(ctx.StateCount(), 2u);
  ASSERT_NE(ctx.GetState(1), nullptr);
  EXPECT_EQ(ctx.GetState(1)->name, "b");
  EXPECT_EQ(ctx.GetState(1)->location, "/data/b");
  EXPECT_EQ(ctx.GetState(99), nullptr);
}

TEST(StateContextTest, GroupsTrackMembership) {
  StateContext ctx;
  const StateId a = ctx.RegisterState("a");
  const StateId b = ctx.RegisterState("b");
  const StateId c = ctx.RegisterState("c");
  const GroupId g1 = ctx.RegisterGroup({a, b});
  const GroupId g2 = ctx.RegisterGroup({b, c});
  EXPECT_EQ(ctx.GroupsOf(a), std::vector<GroupId>{g1});
  EXPECT_EQ(ctx.GroupsOf(b), (std::vector<GroupId>{g1, g2}));
  EXPECT_EQ(ctx.GroupsOf(c), std::vector<GroupId>{g2});
}

TEST(StateContextTest, LastCtsAdvancesMonotonically) {
  StateContext ctx;
  const GroupId g = ctx.RegisterGroup({ctx.RegisterState("a")});
  EXPECT_EQ(ctx.LastCts(g), kInitialTs);
  ctx.PublishCommit({g}, 10);
  EXPECT_EQ(ctx.LastCts(g), 10u);
  ctx.PublishCommit({g}, 5);  // no regression
  EXPECT_EQ(ctx.LastCts(g), 10u);
  ctx.SetLastCts(g, 3);  // recovery override is allowed
  EXPECT_EQ(ctx.LastCts(g), 3u);
}

TEST(StateContextTest, BeginAssignsUniqueIncreasingTxnIds) {
  StateContext ctx;
  TxnId id1 = 0;
  TxnId id2 = 0;
  auto s1 = ctx.BeginTransaction(&id1);
  auto s2 = ctx.BeginTransaction(&id2);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_NE(s1.value(), s2.value());
  EXPECT_LT(id1, id2);
  EXPECT_EQ(ctx.ActiveTransactionCount(), 2);
  ctx.EndTransaction(s1.value());
  ctx.EndTransaction(s2.value());
  EXPECT_EQ(ctx.ActiveTransactionCount(), 0);
}

TEST(StateContextTest, SlotExhaustion) {
  StateContext ctx;
  std::vector<int> slots;
  TxnId id;
  for (int i = 0; i < StateContext::kMaxActiveTxns; ++i) {
    auto slot = ctx.BeginTransaction(&id);
    ASSERT_TRUE(slot.ok());
    slots.push_back(slot.value());
  }
  EXPECT_TRUE(ctx.BeginTransaction(&id).status().IsResourceExhausted());
  ctx.EndTransaction(slots.back());
  EXPECT_TRUE(ctx.BeginTransaction(&id).ok());
}

TEST(StateContextTest, WaitForTxnTableChangeWakesOnTransactionEnd) {
  StateContext ctx;
  TxnId id;
  auto slot = ctx.BeginTransaction(&id);
  ASSERT_TRUE(slot.ok());
  const std::uint64_t seen = ctx.TxnTableGeneration();

  std::thread ender([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ctx.EndTransaction(slot.value());
  });
  const auto start = std::chrono::steady_clock::now();
  // Generous 2 s cap: the wake must come from the EndTransaction notify,
  // not the timeout.
  const std::uint64_t now = ctx.WaitForTxnTableChange(seen, 2'000'000);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ender.join();
  EXPECT_NE(now, seen);
  EXPECT_LT(elapsed, std::chrono::seconds(1));
}

TEST(StateContextTest, WaitForTxnTableChangeTimesOutWhenNothingChanges) {
  StateContext ctx;
  const std::uint64_t seen = ctx.TxnTableGeneration();
  EXPECT_EQ(ctx.WaitForTxnTableChange(seen, 2'000), seen);
}

TEST(StateContextTest, WaitForTxnTableChangeReturnsImmediatelyIfAlreadyMoved) {
  StateContext ctx;
  const std::uint64_t seen = ctx.TxnTableGeneration();
  TxnId id;
  auto slot = ctx.BeginTransaction(&id);
  ASSERT_TRUE(slot.ok());
  // Generation moved before the wait: the predicate is already true.
  const auto start = std::chrono::steady_clock::now();
  EXPECT_NE(ctx.WaitForTxnTableChange(seen, 2'000'000), seen);
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(1));
  ctx.EndTransaction(slot.value());
}

TEST(StateContextTest, StateStatusFlags) {
  StateContext ctx;
  const StateId a = ctx.RegisterState("a");
  const StateId b = ctx.RegisterState("b");
  TxnId id;
  auto slot = ctx.BeginTransaction(&id);
  ASSERT_TRUE(slot.ok());

  ctx.RegisterStateAccess(*slot, a);
  ctx.RegisterStateAccess(*slot, b);
  ctx.RegisterStateAccess(*slot, a);  // idempotent
  EXPECT_EQ(ctx.StatesOf(*slot).size(), 2u);
  EXPECT_FALSE(ctx.AllRegisteredStatesReady(*slot));
  EXPECT_FALSE(ctx.AnyStateAborted(*slot));

  ctx.SetStateStatus(*slot, a, TxnStatus::kCommit);
  EXPECT_FALSE(ctx.AllRegisteredStatesReady(*slot));
  ctx.SetStateStatus(*slot, b, TxnStatus::kCommit);
  EXPECT_TRUE(ctx.AllRegisteredStatesReady(*slot));

  ctx.SetStateStatus(*slot, a, TxnStatus::kAbort);
  EXPECT_TRUE(ctx.AnyStateAborted(*slot));
  ctx.EndTransaction(*slot);
}

TEST(StateContextTest, NoRegisteredStatesIsNotReady) {
  StateContext ctx;
  TxnId id;
  auto slot = ctx.BeginTransaction(&id);
  ASSERT_TRUE(slot.ok());
  EXPECT_FALSE(ctx.AllRegisteredStatesReady(*slot));
  ctx.EndTransaction(*slot);
}

TEST(StateContextTest, ReadCtsPinnedOnFirstRead) {
  StateContext ctx;
  const StateId a = ctx.RegisterState("a");
  const GroupId g = ctx.RegisterGroup({a});
  ctx.PublishCommit({g}, 42);

  TxnId id;
  auto slot = ctx.BeginTransaction(&id);
  ASSERT_TRUE(slot.ok());
  EXPECT_FALSE(ctx.GetReadCts(*slot, g).has_value());
  EXPECT_EQ(ctx.PinReadCts(*slot, g), 42u);
  // A commit in between must not move the pin.
  ctx.PublishCommit({g}, 100);
  EXPECT_EQ(ctx.PinReadCts(*slot, g), 42u);
  EXPECT_EQ(ctx.GetReadCts(*slot, g).value(), 42u);
  ctx.EndTransaction(*slot);
}

TEST(StateContextTest, OverlapRuleUsesOlderPin) {
  // §4.3: reading states from two topologies with different LastCTS must
  // use the older version.
  StateContext ctx;
  const StateId a = ctx.RegisterState("a");
  const StateId b = ctx.RegisterState("b");
  const StateId shared = ctx.RegisterState("shared");
  const GroupId g1 = ctx.RegisterGroup({a, shared});
  const GroupId g2 = ctx.RegisterGroup({b, shared});
  ctx.PublishCommit({g1}, 10);
  ctx.PublishCommit({g2}, 20);

  TxnId id;
  auto slot = ctx.BeginTransaction(&id);
  ASSERT_TRUE(slot.ok());
  // `shared` is in both groups: the snapshot is the older LastCTS.
  EXPECT_EQ(ctx.PinReadCtsForState(*slot, shared), 10u);
  // Reading state b alone still uses g2's pin (pinned at 20 already).
  EXPECT_EQ(ctx.PinReadCtsForState(*slot, b), 20u);
  ctx.EndTransaction(*slot);
}

TEST(StateContextTest, OldestActiveVersionTracksMinimum) {
  StateContext ctx;
  ctx.clock().AdvanceTo(100);  // keep LastCTS values below clock.Now()
  const StateId a = ctx.RegisterState("a");
  const GroupId g = ctx.RegisterGroup({a});
  // No group has committed yet: any future pin would read LastCTS == 0, so
  // nothing beyond the initial versions may be reclaimed.
  EXPECT_EQ(ctx.OldestActiveVersion(), kInitialTs);

  ctx.PublishCommit({g}, 5);
  // Idle: the floor is the minimum group LastCTS — a future transaction
  // could still pin exactly 5.
  EXPECT_EQ(ctx.OldestActiveVersion(), 5u);

  TxnId id1;
  auto slot1 = ctx.BeginTransaction(&id1);
  ASSERT_TRUE(slot1.ok());
  const Timestamp pinned = ctx.PinReadCts(*slot1, g);  // pin at 5
  EXPECT_EQ(pinned, 5u);
  ctx.PublishCommit({g}, 50);
  // Active pin at 5 holds the watermark down even after LastCTS advanced.
  EXPECT_EQ(ctx.OldestActiveVersion(), 5u);
  ctx.EndTransaction(*slot1);
  EXPECT_EQ(ctx.OldestActiveVersion(), 50u);
}

TEST(StateContextTest, OldestActiveBeginTracksBotTimestamps) {
  StateContext ctx;
  EXPECT_EQ(ctx.OldestActiveBegin(), ctx.clock().Now());
  TxnId id1;
  auto slot1 = ctx.BeginTransaction(&id1);
  ASSERT_TRUE(slot1.ok());
  TxnId id2;
  auto slot2 = ctx.BeginTransaction(&id2);
  ASSERT_TRUE(slot2.ok());
  EXPECT_EQ(ctx.OldestActiveBegin(), id1);
  ctx.EndTransaction(*slot1);
  EXPECT_EQ(ctx.OldestActiveBegin(), id2);
  ctx.EndTransaction(*slot2);
}

TEST(StateContextTest, ConcurrentMultiGroupPublishesNeverTearReaderCuts) {
  // Regression: PublishCommit publications must be mutually exclusive.
  // Overlapping publishers each bump the seqlock twice, which can leave the
  // sequence even while both publications are half-applied — a sweeping
  // reader would then validate a cut that straddles one of them. Every
  // publication below advances BOTH groups to the same cts (and LastCTS is
  // a monotonic max), so any consistent cut has equal pins for g1 and g2;
  // unequal pins mean a reader observed a torn publication.
  StateContext ctx;
  std::vector<GroupId> groups;
  for (int g = 0; g < 8; ++g) {
    groups.push_back(
        ctx.RegisterGroup({ctx.RegisterState("s" + std::to_string(g))}));
  }

  std::atomic<bool> stop{false};
  std::atomic<Timestamp> next_cts{1};
  std::atomic<bool> torn{false};

  std::vector<std::thread> publishers;
  for (int t = 0; t < 4; ++t) {
    publishers.emplace_back([&] {
      for (int i = 0; i < 20000 && !torn.load(std::memory_order_relaxed);
           ++i) {
        const Timestamp cts =
            next_cts.fetch_add(1, std::memory_order_relaxed);
        ctx.PublishCommit(groups, cts);
      }
    });
  }
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        TxnId id;
        auto slot = ctx.BeginTransaction(&id);
        if (!slot.ok()) continue;
        Timestamp lo = kInfinityTs;
        Timestamp hi = kInitialTs;
        for (GroupId g : groups) {
          const Timestamp pin = ctx.PinReadCts(*slot, g);
          lo = std::min(lo, pin);
          hi = std::max(hi, pin);
        }
        if (lo != hi) torn.store(true, std::memory_order_relaxed);
        ctx.EndTransaction(*slot);
      }
    });
  }
  for (auto& thread : publishers) thread.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& thread : readers) thread.join();
  EXPECT_FALSE(torn.load());
}

TEST(StateContextTest, ConcurrentBeginEndChurn) {
  StateContext ctx;
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        TxnId id;
        auto slot = ctx.BeginTransaction(&id);
        if (!slot.ok()) {
          failed.store(true);
          return;
        }
        ctx.RegisterStateAccess(*slot, 0);
        ctx.EndTransaction(*slot);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(ctx.ActiveTransactionCount(), 0);
}

}  // namespace
}  // namespace streamsi
