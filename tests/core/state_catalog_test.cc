#include "core/state_catalog.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/crc32.h"
#include "tests/test_util.h"

namespace streamsi {
namespace {

class StateCatalogTest : public ::testing::Test {
 protected:
  std::string Path() const { return dir_.path() + "/catalog.log"; }

  void WriteThreeDeclarations() {
    StateCatalog catalog(SyncMode::kNone, 0);
    ASSERT_TRUE(catalog.Open(Path()).ok());
    ASSERT_TRUE(catalog.AppendState({0, BackendType::kLsm, "a", "/a"}).ok());
    ASSERT_TRUE(catalog.AppendState({1, BackendType::kHash, "b", ""}).ok());
    ASSERT_TRUE(catalog.AppendGroup({0, false, {0, 1}}).ok());
    ASSERT_TRUE(catalog.Close().ok());
  }

  /// Returns the file offset of frame `index` in the CRC-framed log
  /// ([crc(4)][len(4)][type(1)][payload] per frame).
  static std::size_t FrameOffset(const std::string& contents,
                                 int index) {
    std::size_t offset = 0;
    for (int frame = 0; frame < index; ++frame) {
      offset += 9 + DecodeFixed32(contents.data() + offset + 4);
    }
    return offset;
  }

  testing::TempDir dir_;
};

TEST_F(StateCatalogTest, MidCatalogBitFlipStopsReplayAtBadFrame) {
  WriteThreeDeclarations();
  std::string contents;
  ASSERT_TRUE(fsutil::ReadFileToString(Path(), &contents).ok());
  const std::size_t flip_at = FrameOffset(contents, 1) + 9;
  ASSERT_LT(flip_at, contents.size());
  contents[flip_at] ^= 0x01;  // one flipped bit mid-payload of frame 2
  ASSERT_TRUE(fsutil::WriteStringToFileAtomic(Path(), contents).ok());

  // The CRC catches the flip; replay surfaces the valid prefix only — it
  // must never misdecode the corrupt record or resume beyond it.
  std::vector<StateCatalog::Declaration> declarations;
  ASSERT_TRUE(StateCatalog::Replay(Path(), &declarations).ok());
  ASSERT_EQ(declarations.size(), 1u);
  EXPECT_EQ(declarations[0].kind, StateCatalog::Declaration::Kind::kState);
  EXPECT_EQ(declarations[0].state.name, "a");
}

TEST_F(StateCatalogTest, ReopenAfterBitFlipTruncatesAndNeverAppendsAfterGarbage) {
  WriteThreeDeclarations();
  std::string contents;
  ASSERT_TRUE(fsutil::ReadFileToString(Path(), &contents).ok());
  const std::size_t valid_prefix = FrameOffset(contents, 1);
  contents[valid_prefix + 9] ^= 0x40;
  ASSERT_TRUE(fsutil::WriteStringToFileAtomic(Path(), contents).ok());

  // Open truncates the file to its valid record prefix before appending —
  // a declaration written after garbage would be unreachable to replay.
  {
    StateCatalog catalog(SyncMode::kNone, 0);
    ASSERT_TRUE(catalog.Open(Path()).ok());
    std::uint64_t size = 0;
    ASSERT_TRUE(fsutil::FileSize(Path(), &size).ok());
    EXPECT_EQ(size, valid_prefix);
    ASSERT_TRUE(
        catalog.AppendState({1, BackendType::kHash, "b2", ""}).ok());
    ASSERT_TRUE(catalog.Close().ok());
  }
  std::vector<StateCatalog::Declaration> declarations;
  ASSERT_TRUE(StateCatalog::Replay(Path(), &declarations).ok());
  ASSERT_EQ(declarations.size(), 2u);
  EXPECT_EQ(declarations[0].state.name, "a");
  EXPECT_EQ(declarations[1].state.name, "b2")
      << "post-reopen declarations must stay reachable to replay";
}

TEST_F(StateCatalogTest, PreIndexCatalogReplaysUnchanged) {
  // A catalog written before secondary indexes existed (states + groups
  // only) must replay exactly as it always did — adding the kIndexDecl
  // record kind must not disturb the decoding of older files.
  WriteThreeDeclarations();
  std::vector<StateCatalog::Declaration> declarations;
  ASSERT_TRUE(StateCatalog::Replay(Path(), &declarations).ok());
  ASSERT_EQ(declarations.size(), 3u);
  EXPECT_EQ(declarations[0].kind, StateCatalog::Declaration::Kind::kState);
  EXPECT_EQ(declarations[0].state.name, "a");
  EXPECT_EQ(declarations[0].state.location, "/a");
  EXPECT_EQ(declarations[1].kind, StateCatalog::Declaration::Kind::kState);
  EXPECT_EQ(declarations[1].state.name, "b");
  EXPECT_EQ(declarations[2].kind, StateCatalog::Declaration::Kind::kGroup);
  ASSERT_EQ(declarations[2].group.states.size(), 2u);
  EXPECT_EQ(declarations[2].group.states[0], 0u);
  EXPECT_EQ(declarations[2].group.states[1], 1u);
}

TEST_F(StateCatalogTest, IndexDeclarationsRoundTripInOrder) {
  {
    StateCatalog catalog(SyncMode::kNone, 0);
    ASSERT_TRUE(catalog.Open(Path()).ok());
    ASSERT_TRUE(catalog.AppendState({0, BackendType::kLsm, "rows", "/r"}).ok());
    ASSERT_TRUE(
        catalog.AppendState({1, BackendType::kSkipList, "rows_by_tag", ""}).ok());
    ASSERT_TRUE(catalog.AppendGroup({0, false, {0, 1}}).ok());
    ASSERT_TRUE(catalog.AppendIndex({/*index=*/1, /*base=*/0}).ok());
    ASSERT_TRUE(catalog.Close().ok());
  }
  std::vector<StateCatalog::Declaration> declarations;
  ASSERT_TRUE(StateCatalog::Replay(Path(), &declarations).ok());
  ASSERT_EQ(declarations.size(), 4u);
  EXPECT_EQ(declarations[3].kind, StateCatalog::Declaration::Kind::kIndex);
  EXPECT_EQ(declarations[3].index.index, 1u);
  EXPECT_EQ(declarations[3].index.base, 0u);
}

TEST_F(StateCatalogTest, UnknownRecordKindFromNewerEraIsCorruption) {
  WriteThreeDeclarations();
  std::string contents;
  ASSERT_TRUE(fsutil::ReadFileToString(Path(), &contents).ok());
  // Forge an unknown record KIND (type byte 99) in the first frame and fix
  // up the CRC so the framing stays valid: the catalog must refuse a record
  // kind it does not know — skipping it and then appending would corrupt
  // the schema for the newer-era writer that understands it.
  contents[8] = 99;
  const std::uint32_t len = DecodeFixed32(contents.data() + 4);
  const std::uint32_t crc =
      MaskCrc(Crc32c(std::string_view(contents.data() + 8, 1 + len)));
  std::memcpy(contents.data(), &crc, 4);
  ASSERT_TRUE(fsutil::WriteStringToFileAtomic(Path(), contents).ok());

  std::vector<StateCatalog::Declaration> declarations;
  EXPECT_TRUE(StateCatalog::Replay(Path(), &declarations).IsCorruption());
}

TEST_F(StateCatalogTest, RecordFromNewerFormatEraIsCorruption) {
  WriteThreeDeclarations();
  std::string contents;
  ASSERT_TRUE(fsutil::ReadFileToString(Path(), &contents).ok());
  // Forge a future format version in the FIRST record's payload and fix up
  // its CRC so the frame itself stays valid: the decoder (not the framing)
  // must reject records from a newer era instead of misreading them.
  contents[9] = 0x7F;
  const std::uint32_t len = DecodeFixed32(contents.data() + 4);
  const std::uint32_t crc =
      MaskCrc(Crc32c(std::string_view(contents.data() + 8, 1 + len)));
  std::memcpy(contents.data(), &crc, 4);
  ASSERT_TRUE(fsutil::WriteStringToFileAtomic(Path(), contents).ok());

  std::vector<StateCatalog::Declaration> declarations;
  EXPECT_TRUE(StateCatalog::Replay(Path(), &declarations).IsCorruption());
}

}  // namespace
}  // namespace streamsi
