// The consistency protocol among multiple states (§4.3): modified 2PC with
// last-committer-becomes-coordinator, global abort, per-group LastCTS and
// the multi-state snapshot guarantees for readers.

#include <gtest/gtest.h>

#include <thread>

#include "core/streamsi.h"

namespace streamsi {
namespace {

class ConsistencyTest : public ::testing::TestWithParam<ProtocolType> {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.protocol = GetParam();
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    auto a = db_->CreateState("a");
    auto b = db_->CreateState("b");
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    a_ = (*a)->id();
    b_ = (*b)->id();
    group_ = db_->CreateGroup({a_, b_});
  }

  TransactionManager& tm() { return db_->txn_manager(); }

  std::unique_ptr<Database> db_;
  StateId a_;
  StateId b_;
  GroupId group_;
};

TEST_P(ConsistencyTest, LastCommitStateFlagTriggersGlobalCommit) {
  auto t = db_->Begin();
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(tm().RegisterState((*t)->txn(), a_).ok());
  ASSERT_TRUE(tm().RegisterState((*t)->txn(), b_).ok());
  ASSERT_TRUE(tm().Write((*t)->txn(), a_, "k", "va").ok());
  ASSERT_TRUE(tm().Write((*t)->txn(), b_, "k", "vb").ok());

  // First per-state commit: transaction must still be running (modifications
  // are not persisted until all states are ready).
  ASSERT_TRUE((*t)->CommitState(a_).ok());
  EXPECT_TRUE((*t)->txn().running());
  {
    auto check = db_->Begin();
    std::string value;
    const Status status = tm().Read((*check)->txn(), a_, "k", &value);
    // The uncommitted write must be invisible. MVCC/BOCC report NotFound;
    // under S2PL the younger reader dies on the writer's exclusive lock
    // (wait-die) — either way, no dirty read.
    EXPECT_TRUE(status.IsNotFound() || status.IsAborted())
        << status.ToString();
    if ((*check)->txn().running()) {
      ASSERT_TRUE((*check)->Commit().ok());
    }
  }

  // Second commit flag: this caller becomes the coordinator.
  ASSERT_TRUE((*t)->CommitState(b_).ok());
  EXPECT_FALSE((*t)->txn().running());
  EXPECT_EQ((*t)->txn().phase(), TxnPhase::kCommitted);

  auto check = db_->Begin();
  std::string va;
  std::string vb;
  ASSERT_TRUE(tm().Read((*check)->txn(), a_, "k", &va).ok());
  ASSERT_TRUE(tm().Read((*check)->txn(), b_, "k", &vb).ok());
  EXPECT_EQ(va, "va");
  EXPECT_EQ(vb, "vb");
  ASSERT_TRUE((*check)->Commit().ok());
}

TEST_P(ConsistencyTest, OneAbortFlagAbortsGlobally) {
  auto t = db_->Begin();
  ASSERT_TRUE(tm().RegisterState((*t)->txn(), a_).ok());
  ASSERT_TRUE(tm().RegisterState((*t)->txn(), b_).ok());
  ASSERT_TRUE(tm().Write((*t)->txn(), a_, "k", "va").ok());
  ASSERT_TRUE(tm().Write((*t)->txn(), b_, "k", "vb").ok());

  ASSERT_TRUE((*t)->CommitState(a_).ok());
  ASSERT_TRUE((*t)->AbortState(b_).ok());
  EXPECT_EQ((*t)->txn().phase(), TxnPhase::kAborted);

  auto check = db_->Begin();
  std::string value;
  EXPECT_TRUE(tm().Read((*check)->txn(), a_, "k", &value).IsNotFound())
      << "state a's part must be rolled back too";
  EXPECT_TRUE(tm().Read((*check)->txn(), b_, "k", &value).IsNotFound());
  ASSERT_TRUE((*check)->Commit().ok());
}

TEST_P(ConsistencyTest, CommitStateAfterAbortReportsAborted) {
  auto t = db_->Begin();
  ASSERT_TRUE(tm().RegisterState((*t)->txn(), a_).ok());
  ASSERT_TRUE(tm().RegisterState((*t)->txn(), b_).ok());
  ASSERT_TRUE(tm().Write((*t)->txn(), a_, "k", "v").ok());
  ASSERT_TRUE((*t)->AbortState(a_).ok());
  // The transaction is already globally aborted; the late CommitState on b
  // must not resurrect it.
  const Status status = (*t)->CommitState(b_);
  EXPECT_TRUE(status.IsAborted() || status.ok());
  EXPECT_EQ((*t)->txn().phase(), TxnPhase::kAborted);
}

TEST_P(ConsistencyTest, ReadersSeeBothStatesOrNeither) {
  // One writer continuously commits (k -> i) into both states; readers must
  // never observe state a and state b from different transactions.
  std::atomic<bool> stop{false};
  std::atomic<bool> violation{false};

  std::thread writer([&] {
    for (int i = 0; i < 300; ++i) {
      auto t = db_->Begin();
      if (!t.ok()) continue;
      const std::string v = std::to_string(i);
      if (!tm().Write((*t)->txn(), a_, "k", v).ok()) continue;
      if (!tm().Write((*t)->txn(), b_, "k", v).ok()) continue;
      (void)(*t)->Commit();
    }
    stop.store(true);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        auto t = db_->Begin();
        if (!t.ok()) continue;
        std::string va;
        std::string vb;
        const Status sa = tm().Read((*t)->txn(), a_, "k", &va);
        const Status sb = tm().Read((*t)->txn(), b_, "k", &vb);
        if (sa.IsAborted() || sb.IsAborted()) continue;  // wait-die victim
        // BOCC only discovers the inconsistency at validation: a reader
        // whose commit fails never "observed" the torn state. Count a
        // violation only for successfully committed readers.
        if (!(*t)->Commit().ok()) continue;
        if (sa.ok() != sb.ok()) {
          violation.store(true);  // one state visible, the other not
        } else if (sa.ok() && va != vb) {
          violation.store(true);  // torn across states
        }
      }
    });
  }
  writer.join();
  for (auto& reader : readers) reader.join();
  EXPECT_FALSE(violation.load())
      << ProtocolTypeName(GetParam())
      << ": readers observed states from different transactions";
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ConsistencyTest,
                         ::testing::Values(ProtocolType::kMvcc,
                                           ProtocolType::kS2pl,
                                           ProtocolType::kBocc),
                         [](const auto& info) {
                           return ProtocolTypeName(info.param);
                         });

// ---------------------------------------------------------- MVCC-specific --

class MvccConsistencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.protocol = ProtocolType::kMvcc;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    a_ = (*db_->CreateState("a"))->id();
    b_ = (*db_->CreateState("b"))->id();
    group_ = db_->CreateGroup({a_, b_});
  }

  TransactionManager& tm() { return db_->txn_manager(); }

  std::unique_ptr<Database> db_;
  StateId a_;
  StateId b_;
  GroupId group_;
};

TEST_F(MvccConsistencyTest, ConcurrentCommittersNeverExposePartialApply) {
  // PR 3 regression (surfaced by the partitioned stream stress, reproduced
  // ~13/20 under TSan before the fix): commit timestamps used to be drawn
  // unregistered, so commit X could install state a's version, get
  // descheduled mid-apply, and commit Y (larger cts, same groups) would
  // publish LastCTS past X — readers then pinned a snapshot showing X's
  // a-write without its b-write. The publication-visibility gate clamps
  // reader pins below any in-flight commit timestamp.
  constexpr int kWriters = 4;
  constexpr int kRounds = 60;
  std::atomic<int> writers_done{0};
  std::atomic<bool> violation{false};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      // Disjoint keys per writer: no FCW conflicts, every commit covers
      // both states with the same value.
      const std::string k1 = "k" + std::to_string(w);
      const std::string k2 = "k" + std::to_string(w + kWriters);
      for (int round = 0; round < kRounds; ++round) {
        auto t = db_->Begin();
        if (!t.ok()) continue;
        const std::string v = std::to_string(round);
        bool ok = tm().Write((*t)->txn(), a_, k1, v).ok() &&
                  tm().Write((*t)->txn(), b_, k1, v).ok() &&
                  tm().Write((*t)->txn(), a_, k2, v).ok() &&
                  tm().Write((*t)->txn(), b_, k2, v).ok();
        if (ok) (void)(*t)->Commit();
      }
      writers_done.fetch_add(1);
    });
  }

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      const std::string key = "k" + std::to_string(r % (2 * kWriters));
      while (writers_done.load() < kWriters) {
        auto t = db_->Begin();
        if (!t.ok()) continue;
        std::string va;
        std::string vb;
        const Status sa = tm().Read((*t)->txn(), a_, key, &va);
        const Status sb = tm().Read((*t)->txn(), b_, key, &vb);
        if (!(*t)->Commit().ok()) continue;
        if (sa.ok() != sb.ok()) {
          violation.store(true);  // half of one commit visible
        } else if (sa.ok() && va != vb) {
          violation.store(true);  // states from different commits
        }
      }
    });
  }
  for (auto& writer : writers) writer.join();
  for (auto& reader : readers) reader.join();
  EXPECT_FALSE(violation.load())
      << "a concurrent commit's partial apply became visible";
}

TEST_F(MvccConsistencyTest, GroupLastCtsAdvancesOnCommit) {
  EXPECT_EQ(db_->context().LastCts(group_), kInitialTs);
  auto t = db_->Begin();
  ASSERT_TRUE(tm().Write((*t)->txn(), a_, "k", "v").ok());
  ASSERT_TRUE(tm().Write((*t)->txn(), b_, "k", "v").ok());
  ASSERT_TRUE((*t)->Commit().ok());
  EXPECT_GT(db_->context().LastCts(group_), kInitialTs);
}

TEST_F(MvccConsistencyTest, SnapshotPinnedAcrossBothStates) {
  // Reader pins the group snapshot on its first read of state a; a commit
  // into both states in between must be invisible on state b too.
  {
    auto t = db_->Begin();
    ASSERT_TRUE(tm().Write((*t)->txn(), a_, "k", "a1").ok());
    ASSERT_TRUE(tm().Write((*t)->txn(), b_, "k", "b1").ok());
    ASSERT_TRUE((*t)->Commit().ok());
  }
  auto reader = db_->Begin();
  std::string value;
  ASSERT_TRUE(tm().Read((*reader)->txn(), a_, "k", &value).ok());
  EXPECT_EQ(value, "a1");

  {
    auto writer = db_->Begin();
    ASSERT_TRUE(tm().Write((*writer)->txn(), a_, "k", "a2").ok());
    ASSERT_TRUE(tm().Write((*writer)->txn(), b_, "k", "b2").ok());
    ASSERT_TRUE((*writer)->Commit().ok());
  }

  ASSERT_TRUE(tm().Read((*reader)->txn(), b_, "k", &value).ok());
  EXPECT_EQ(value, "b1") << "read of second state must use the pinned "
                            "snapshot, not the newer commit";
  ASSERT_TRUE((*reader)->Commit().ok());
}

TEST_F(MvccConsistencyTest, PartialCommitInvisibleEvenMidApply) {
  // Writer commits into a and b; a reader that starts between the two
  // installs must see neither (LastCTS only advances at the end).
  auto writer = db_->Begin();
  ASSERT_TRUE(tm().Write((*writer)->txn(), a_, "k", "v").ok());
  ASSERT_TRUE(tm().Write((*writer)->txn(), b_, "k", "v").ok());
  ASSERT_TRUE((*writer)->CommitState(a_).ok());
  // Transaction not finished: only the a-flag is set; nothing is applied.
  auto reader = db_->Begin();
  std::string value;
  EXPECT_TRUE(tm().Read((*reader)->txn(), a_, "k", &value).IsNotFound());
  EXPECT_TRUE(tm().Read((*reader)->txn(), b_, "k", &value).IsNotFound());
  ASSERT_TRUE((*reader)->Commit().ok());
  ASSERT_TRUE((*writer)->CommitState(b_).ok());
}

TEST_F(MvccConsistencyTest, SharedStateAcrossGroupsUsesOlderPin) {
  // A state shared between two groups: reading it after pinning a newer
  // group must fall back to the older pin (§4.3 overlap rule).
  const StateId shared = (*db_->CreateState("shared"))->id();
  const GroupId g2 = db_->CreateGroup({b_, shared});
  (void)g2;

  // Commit into group 1 (a+b) and into group 2 (b+shared) at different
  // times.
  {
    auto t = db_->Begin();
    ASSERT_TRUE(tm().Write((*t)->txn(), a_, "k", "g1").ok());
    ASSERT_TRUE(tm().Write((*t)->txn(), b_, "k", "g1").ok());
    ASSERT_TRUE((*t)->Commit().ok());
  }
  {
    auto t = db_->Begin();
    ASSERT_TRUE(tm().Write((*t)->txn(), shared, "k", "g2").ok());
    ASSERT_TRUE((*t)->Commit().ok());
  }
  auto reader = db_->Begin();
  std::string value;
  ASSERT_TRUE(tm().Read((*reader)->txn(), a_, "k", &value).ok());
  ASSERT_TRUE(tm().Read((*reader)->txn(), shared, "k", &value).ok());
  EXPECT_EQ(value, "g2");
  ASSERT_TRUE((*reader)->Commit().ok());
}

TEST_F(MvccConsistencyTest, ConflictOnOneStateAbortsWholeGroupCommit) {
  // Two txns write the same key of state a, plus distinct keys of state b.
  // The FCW loser must not leave its b-write behind.
  {
    auto t = db_->Begin();
    ASSERT_TRUE(tm().Write((*t)->txn(), a_, "hot", "base").ok());
    ASSERT_TRUE((*t)->Commit().ok());
  }
  auto t1 = db_->Begin();
  auto t2 = db_->Begin();
  ASSERT_TRUE(tm().Write((*t1)->txn(), a_, "hot", "t1").ok());
  ASSERT_TRUE(tm().Write((*t1)->txn(), b_, "b1", "t1").ok());
  ASSERT_TRUE(tm().Write((*t2)->txn(), a_, "hot", "t2").ok());
  ASSERT_TRUE(tm().Write((*t2)->txn(), b_, "b2", "t2").ok());
  ASSERT_TRUE((*t1)->Commit().ok());
  EXPECT_TRUE((*t2)->Commit().IsConflict());

  auto check = db_->Begin();
  std::string value;
  EXPECT_TRUE(tm().Read((*check)->txn(), b_, "b2", &value).IsNotFound())
      << "loser's write to the other state leaked";
  ASSERT_TRUE(tm().Read((*check)->txn(), b_, "b1", &value).ok());
  ASSERT_TRUE((*check)->Commit().ok());
}

}  // namespace
}  // namespace streamsi
