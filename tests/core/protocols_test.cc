// Cross-protocol conformance: all three protocols must provide the same
// basic transactional semantics (the paper runs the identical workload and
// consistency protocol over MVCC, S2PL and BOCC, §5).

#include <gtest/gtest.h>

#include <thread>

#include "core/streamsi.h"

namespace streamsi {
namespace {

class ProtocolConformanceTest
    : public ::testing::TestWithParam<ProtocolType> {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.protocol = GetParam();
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    auto state = db_->CreateState("s");
    ASSERT_TRUE(state.ok());
    state_ = (*state)->id();
  }

  Status Put(Transaction& txn, const std::string& k, const std::string& v) {
    return db_->txn_manager().Write(txn, state_, k, v);
  }
  Result<std::string> Get(Transaction& txn, const std::string& k) {
    std::string value;
    STREAMSI_RETURN_NOT_OK(db_->txn_manager().Read(txn, state_, k, &value));
    return value;
  }

  std::unique_ptr<Database> db_;
  StateId state_;
};

TEST_P(ProtocolConformanceTest, CommitMakesWritesDurable) {
  auto t = db_->Begin();
  ASSERT_TRUE(Put((*t)->txn(), "k", "v").ok());
  ASSERT_TRUE((*t)->Commit().ok());
  auto check = db_->Begin();
  auto got = Get((*check)->txn(), "k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "v");
  ASSERT_TRUE((*check)->Commit().ok());
}

TEST_P(ProtocolConformanceTest, AbortDiscardsWrites) {
  auto t = db_->Begin();
  ASSERT_TRUE(Put((*t)->txn(), "k", "v").ok());
  ASSERT_TRUE((*t)->Abort().ok());
  auto check = db_->Begin();
  EXPECT_TRUE(Get((*check)->txn(), "k").status().IsNotFound());
  ASSERT_TRUE((*check)->Commit().ok());
}

TEST_P(ProtocolConformanceTest, ReadYourOwnWrites) {
  auto t = db_->Begin();
  ASSERT_TRUE(Put((*t)->txn(), "k", "own").ok());
  auto got = Get((*t)->txn(), "k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "own");
  ASSERT_TRUE((*t)->Commit().ok());
}

TEST_P(ProtocolConformanceTest, DeleteCommits) {
  {
    auto t = db_->Begin();
    ASSERT_TRUE(Put((*t)->txn(), "k", "v").ok());
    ASSERT_TRUE((*t)->Commit().ok());
  }
  {
    auto t = db_->Begin();
    ASSERT_TRUE(db_->txn_manager().Delete((*t)->txn(), state_, "k").ok());
    ASSERT_TRUE((*t)->Commit().ok());
  }
  auto check = db_->Begin();
  EXPECT_TRUE(Get((*check)->txn(), "k").status().IsNotFound());
  ASSERT_TRUE((*check)->Commit().ok());
}

TEST_P(ProtocolConformanceTest, SequentialTransactionsNeverConflict) {
  for (int i = 0; i < 50; ++i) {
    auto t = db_->Begin();
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(Put((*t)->txn(), "k", std::to_string(i)).ok());
    ASSERT_TRUE((*t)->Commit().ok()) << "iteration " << i;
  }
  EXPECT_EQ(db_->txn_manager().counters().committed.load(), 50u);
  EXPECT_EQ(db_->txn_manager().counters().conflicts.load(), 0u);
}

TEST_P(ProtocolConformanceTest, ConcurrentCountersAreConsistent) {
  // Hammer one hot key with increments from several threads; the final
  // value must equal the number of successful commits (atomicity +
  // isolation across all protocols).
  {
    auto t = db_->Begin();
    ASSERT_TRUE(Put((*t)->txn(), "counter", "0").ok());
    ASSERT_TRUE((*t)->Commit().ok());
  }
  std::atomic<int> successes{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        auto t = db_->Begin();
        if (!t.ok()) continue;
        auto got = Get((*t)->txn(), "counter");
        if (!got.ok()) continue;  // txn already dead (wait-die)
        const int current = std::stoi(*got);
        if (!Put((*t)->txn(), "counter", std::to_string(current + 1)).ok()) {
          continue;
        }
        if ((*t)->Commit().ok()) successes.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  auto check = db_->Begin();
  auto got = Get((*check)->txn(), "counter");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(std::stoi(*got), successes.load())
      << ProtocolTypeName(GetParam())
      << ": lost updates detected";
  ASSERT_TRUE((*check)->Commit().ok());
  EXPECT_GT(successes.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ProtocolConformanceTest,
                         ::testing::Values(ProtocolType::kMvcc,
                                           ProtocolType::kS2pl,
                                           ProtocolType::kBocc),
                         [](const auto& info) {
                           return ProtocolTypeName(info.param);
                         });

// ------------------------------------------------------------------------
// Protocol-specific behaviours.

TEST(S2plTest, ReaderBlocksBehindOlderWriterAndSeesResult) {
  DatabaseOptions options;
  options.protocol = ProtocolType::kS2pl;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  auto state = (*db)->CreateState("s");
  ASSERT_TRUE(state.ok());
  const StateId sid = (*state)->id();

  {
    auto t = (*db)->Begin();
    ASSERT_TRUE((*db)->txn_manager().Write((*t)->txn(), sid, "k", "v0").ok());
    ASSERT_TRUE((*t)->Commit().ok());
  }

  auto writer = (*db)->Begin();  // older txn: takes X lock
  ASSERT_TRUE(
      (*db)->txn_manager().Write((*writer)->txn(), sid, "k", "v1").ok());

  std::atomic<bool> reader_done{false};
  std::string read_value;
  std::thread reader([&] {
    // Younger reader: wait-die says it dies (Busy -> Aborted).
    auto t = (*db)->Begin();
    std::string value;
    const Status status =
        (*db)->txn_manager().Read((*t)->txn(), sid, "k", &value);
    EXPECT_TRUE(status.IsAborted()) << status.ToString();
    reader_done.store(true);
  });
  reader.join();
  ASSERT_TRUE(reader_done.load());
  ASSERT_TRUE((*writer)->Commit().ok());

  auto check = (*db)->Begin();
  std::string value;
  ASSERT_TRUE((*db)->txn_manager().Read((*check)->txn(), sid, "k", &value).ok());
  EXPECT_EQ(value, "v1");
  ASSERT_TRUE((*check)->Commit().ok());
}

TEST(BoccTest, ReaderAbortsWhenOverlappingCommitHappened) {
  DatabaseOptions options;
  options.protocol = ProtocolType::kBocc;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  auto state = (*db)->CreateState("s");
  ASSERT_TRUE(state.ok());
  const StateId sid = (*state)->id();

  {
    auto t = (*db)->Begin();
    ASSERT_TRUE((*db)->txn_manager().Write((*t)->txn(), sid, "k", "v0").ok());
    ASSERT_TRUE((*t)->Commit().ok());
  }

  // Reader reads k, then a writer commits k, then the reader validates.
  auto reader = (*db)->Begin();
  std::string value;
  ASSERT_TRUE(
      (*db)->txn_manager().Read((*reader)->txn(), sid, "k", &value).ok());
  EXPECT_EQ(value, "v0");

  {
    auto writer = (*db)->Begin();
    ASSERT_TRUE(
        (*db)->txn_manager().Write((*writer)->txn(), sid, "k", "v1").ok());
    ASSERT_TRUE((*writer)->Commit().ok());
  }

  // Reader also writes something so its commit validates.
  ASSERT_TRUE(
      (*db)->txn_manager().Write((*reader)->txn(), sid, "other", "x").ok());
  const Status status = (*reader)->Commit();
  EXPECT_TRUE(status.IsAborted()) << status.ToString();
}

TEST(BoccTest, NonOverlappingReaderCommits) {
  DatabaseOptions options;
  options.protocol = ProtocolType::kBocc;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  auto state = (*db)->CreateState("s");
  const StateId sid = (*state)->id();

  {
    auto t = (*db)->Begin();
    ASSERT_TRUE((*db)->txn_manager().Write((*t)->txn(), sid, "a", "1").ok());
    ASSERT_TRUE((*db)->txn_manager().Write((*t)->txn(), sid, "b", "2").ok());
    ASSERT_TRUE((*t)->Commit().ok());
  }

  auto reader = (*db)->Begin();
  std::string value;
  ASSERT_TRUE(
      (*db)->txn_manager().Read((*reader)->txn(), sid, "a", &value).ok());

  {
    auto writer = (*db)->Begin();
    ASSERT_TRUE(
        (*db)->txn_manager().Write((*writer)->txn(), sid, "b", "3").ok());
    ASSERT_TRUE((*writer)->Commit().ok());
  }

  EXPECT_TRUE((*reader)->Commit().ok()) << "read 'a', writer wrote 'b'";
}

}  // namespace
}  // namespace streamsi
