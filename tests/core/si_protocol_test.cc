// Snapshot-isolation semantics of the paper's MVCC protocol (§4.2).

#include <gtest/gtest.h>

#include "core/streamsi.h"

namespace streamsi {
namespace {

class SiProtocolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.protocol = ProtocolType::kMvcc;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    auto state = db_->CreateState("s");
    ASSERT_TRUE(state.ok());
    state_ = (*state)->id();
  }

  Status Put(Transaction& txn, const std::string& k, const std::string& v) {
    return db_->txn_manager().Write(txn, state_, k, v);
  }
  Result<std::string> Get(Transaction& txn, const std::string& k) {
    std::string value;
    STREAMSI_RETURN_NOT_OK(db_->txn_manager().Read(txn, state_, k, &value));
    return value;
  }

  std::unique_ptr<Database> db_;
  StateId state_;
};

TEST_F(SiProtocolTest, CommittedWriteVisibleToLaterTxn) {
  {
    auto t = db_->Begin();
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(Put((*t)->txn(), "k", "v").ok());
    ASSERT_TRUE((*t)->Commit().ok());
  }
  auto t = db_->Begin();
  ASSERT_TRUE(t.ok());
  auto got = Get((*t)->txn(), "k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "v");
  ASSERT_TRUE((*t)->Commit().ok());
}

TEST_F(SiProtocolTest, UncommittedWriteInvisibleToOthers) {
  auto writer = db_->Begin();
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(Put((*writer)->txn(), "k", "dirty").ok());

  auto reader = db_->Begin();
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(Get((*reader)->txn(), "k").status().IsNotFound());
  ASSERT_TRUE((*reader)->Commit().ok());
  ASSERT_TRUE((*writer)->Commit().ok());
}

TEST_F(SiProtocolTest, ReadYourOwnWrites) {
  auto t = db_->Begin();
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(Put((*t)->txn(), "k", "mine").ok());
  auto got = Get((*t)->txn(), "k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "mine");
  ASSERT_TRUE((*t)->Commit().ok());
}

TEST_F(SiProtocolTest, ReadYourOwnDelete) {
  {
    auto t = db_->Begin();
    ASSERT_TRUE(Put((*t)->txn(), "k", "v").ok());
    ASSERT_TRUE((*t)->Commit().ok());
  }
  auto t = db_->Begin();
  ASSERT_TRUE(db_->txn_manager().Delete((*t)->txn(), state_, "k").ok());
  EXPECT_TRUE(Get((*t)->txn(), "k").status().IsNotFound());
  ASSERT_TRUE((*t)->Commit().ok());

  auto t2 = db_->Begin();
  EXPECT_TRUE(Get((*t2)->txn(), "k").status().IsNotFound());
  ASSERT_TRUE((*t2)->Commit().ok());
}

TEST_F(SiProtocolTest, SnapshotStableAcrossConcurrentCommit) {
  // Reader pins its snapshot at first read; a commit in between must stay
  // invisible ("every operation reads from the same snapshot").
  {
    auto t = db_->Begin();
    ASSERT_TRUE(Put((*t)->txn(), "k", "v1").ok());
    ASSERT_TRUE((*t)->Commit().ok());
  }
  auto reader = db_->Begin();
  ASSERT_TRUE(reader.ok());
  auto got = Get((*reader)->txn(), "k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "v1");  // pin happens here

  {
    auto writer = db_->Begin();
    ASSERT_TRUE(Put((*writer)->txn(), "k", "v2").ok());
    ASSERT_TRUE((*writer)->Commit().ok());
  }

  got = Get((*reader)->txn(), "k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "v1") << "snapshot must not move mid-transaction";
  ASSERT_TRUE((*reader)->Commit().ok());

  auto late = db_->Begin();
  got = Get((*late)->txn(), "k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "v2");
  ASSERT_TRUE((*late)->Commit().ok());
}

TEST_F(SiProtocolTest, FirstCommitterWins) {
  {
    auto t = db_->Begin();
    ASSERT_TRUE(Put((*t)->txn(), "k", "base").ok());
    ASSERT_TRUE((*t)->Commit().ok());
  }
  auto t1 = db_->Begin();
  auto t2 = db_->Begin();
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  ASSERT_TRUE(Put((*t1)->txn(), "k", "from-t1").ok());
  ASSERT_TRUE(Put((*t2)->txn(), "k", "from-t2").ok());

  ASSERT_TRUE((*t1)->Commit().ok());
  const Status second = (*t2)->Commit();
  EXPECT_TRUE(second.IsConflict()) << second.ToString();

  auto check = db_->Begin();
  auto got = Get((*check)->txn(), "k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "from-t1");
  ASSERT_TRUE((*check)->Commit().ok());
  EXPECT_EQ(db_->txn_manager().counters().conflicts.load(), 1u);
}

TEST_F(SiProtocolTest, DisjointWritersBothCommit) {
  auto t1 = db_->Begin();
  auto t2 = db_->Begin();
  ASSERT_TRUE(Put((*t1)->txn(), "a", "1").ok());
  ASSERT_TRUE(Put((*t2)->txn(), "b", "2").ok());
  EXPECT_TRUE((*t1)->Commit().ok());
  EXPECT_TRUE((*t2)->Commit().ok());
}

TEST_F(SiProtocolTest, WriteSkewIsAllowedUnderSi) {
  // The classic SI anomaly: two txns each read the other's key and write
  // their own. Snapshot isolation (unlike serializability) admits this —
  // document the behaviour as a test.
  {
    auto t = db_->Begin();
    ASSERT_TRUE(Put((*t)->txn(), "x", "0").ok());
    ASSERT_TRUE(Put((*t)->txn(), "y", "0").ok());
    ASSERT_TRUE((*t)->Commit().ok());
  }
  auto t1 = db_->Begin();
  auto t2 = db_->Begin();
  ASSERT_TRUE(Get((*t1)->txn(), "y").ok());
  ASSERT_TRUE(Get((*t2)->txn(), "x").ok());
  ASSERT_TRUE(Put((*t1)->txn(), "x", "1").ok());
  ASSERT_TRUE(Put((*t2)->txn(), "y", "1").ok());
  EXPECT_TRUE((*t1)->Commit().ok());
  EXPECT_TRUE((*t2)->Commit().ok());  // write sets are disjoint: both pass
}

TEST_F(SiProtocolTest, AbortDiscardsWrites) {
  auto t = db_->Begin();
  ASSERT_TRUE(Put((*t)->txn(), "k", "doomed").ok());
  ASSERT_TRUE((*t)->Abort().ok());

  auto check = db_->Begin();
  EXPECT_TRUE(Get((*check)->txn(), "k").status().IsNotFound());
  ASSERT_TRUE((*check)->Commit().ok());
  EXPECT_EQ(db_->txn_manager().counters().aborted.load(), 1u);
}

TEST_F(SiProtocolTest, DroppedHandleAutoAborts) {
  {
    auto t = db_->Begin();
    ASSERT_TRUE(Put((*t)->txn(), "k", "leak").ok());
    // handle dropped without Commit
  }
  EXPECT_EQ(db_->txn_manager().counters().aborted.load(), 1u);
  auto check = db_->Begin();
  EXPECT_TRUE(Get((*check)->txn(), "k").status().IsNotFound());
  ASSERT_TRUE((*check)->Commit().ok());
}

TEST_F(SiProtocolTest, OperationsAfterCommitRejected) {
  auto t = db_->Begin();
  ASSERT_TRUE(Put((*t)->txn(), "k", "v").ok());
  ASSERT_TRUE((*t)->Commit().ok());
  EXPECT_TRUE(Put((*t)->txn(), "k2", "v").IsAborted());
  EXPECT_TRUE((*t)->Commit().IsAborted());
}

TEST_F(SiProtocolTest, ScanSeesSnapshotPlusOwnWrites) {
  {
    auto t = db_->Begin();
    ASSERT_TRUE(Put((*t)->txn(), "a", "1").ok());
    ASSERT_TRUE(Put((*t)->txn(), "b", "2").ok());
    ASSERT_TRUE((*t)->Commit().ok());
  }
  auto t = db_->Begin();
  ASSERT_TRUE(Put((*t)->txn(), "c", "3").ok());
  ASSERT_TRUE(db_->txn_manager().Delete((*t)->txn(), state_, "a").ok());
  std::map<std::string, std::string> seen;
  ASSERT_TRUE(db_->txn_manager()
                  .Scan((*t)->txn(), state_,
                        [&](std::string_view k, std::string_view v) {
                          seen[std::string(k)] = std::string(v);
                          return true;
                        })
                  .ok());
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen.count("a"), 0u);  // own delete hides it
  EXPECT_EQ(seen["b"], "2");
  EXPECT_EQ(seen["c"], "3");  // own write visible
  ASSERT_TRUE((*t)->Commit().ok());
}

TEST_F(SiProtocolTest, ScanRangeSurvivesWriteBacksFromCallback) {
  // Regression: the range scan's own-write overlay must stay valid while
  // the callback writes back into the scanned state — those Puts grow the
  // write set's entry vector, which may reallocate under the overlay.
  {
    auto t = db_->Begin();
    for (int k = 10; k <= 50; k += 10) {
      ASSERT_TRUE(Put((*t)->txn(), "k" + std::to_string(k), "committed").ok());
    }
    ASSERT_TRUE((*t)->Commit().ok());
  }
  auto t = db_->Begin();
  ASSERT_TRUE(Put((*t)->txn(), "k15", "own").ok());
  ASSERT_TRUE(Put((*t)->txn(), "k25", "own").ok());
  ASSERT_TRUE(Put((*t)->txn(), "k35", "own").ok());
  std::vector<std::pair<std::string, std::string>> seen;
  int writes = 0;
  ASSERT_TRUE(db_->txn_manager()
                  .ScanRange((*t)->txn(), state_, "k10", "k60",
                             [&](std::string_view k, std::string_view v) {
                               seen.emplace_back(std::string(k),
                                                 std::string(v));
                               // Out-of-range keys: force entry-vector
                               // growth without perturbing the scan.
                               for (int i = 0; i < 16; ++i) {
                                 EXPECT_TRUE(
                                     Put((*t)->txn(),
                                         "z" + std::to_string(writes++), "w")
                                         .ok());
                               }
                               return true;
                             })
                  .ok());
  const std::vector<std::pair<std::string, std::string>> expected = {
      {"k10", "committed"}, {"k15", "own"},       {"k20", "committed"},
      {"k25", "own"},       {"k30", "committed"}, {"k35", "own"},
      {"k40", "committed"}, {"k50", "committed"}};
  EXPECT_EQ(seen, expected);
  ASSERT_TRUE((*t)->Commit().ok());
}

TEST_F(SiProtocolTest, ReadersNeverBlockDuringWriterCommit) {
  // Smoke check of the paper's core claim: run a writer loop and reader
  // loop concurrently; readers must always observe one of the committed
  // values, never a torn/dirty one.
  {
    auto t = db_->Begin();
    ASSERT_TRUE(Put((*t)->txn(), "hot", "0").ok());
    ASSERT_TRUE((*t)->Commit().ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<bool> violation{false};
  std::thread writer([&] {
    for (int i = 1; i <= 500; ++i) {
      auto t = db_->Begin();
      if (!t.ok()) continue;
      if (!Put((*t)->txn(), "hot", std::to_string(i)).ok()) continue;
      (void)(*t)->Commit();
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      std::string last;
      while (!stop.load()) {
        auto t = db_->Begin();
        if (!t.ok()) continue;
        auto got = Get((*t)->txn(), "hot");
        if (!got.ok()) {
          violation.store(true);
        } else {
          // Values are integers 0..500; anything else is torn.
          for (char c : *got) {
            if (c < '0' || c > '9') violation.store(true);
          }
        }
        (void)(*t)->Commit();
      }
    });
  }
  writer.join();
  for (auto& reader : readers) reader.join();
  EXPECT_FALSE(violation.load());
}

}  // namespace
}  // namespace streamsi
