#include "core/group_commit_log.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace streamsi {
namespace {

class GroupCommitLogTest : public ::testing::Test {
 protected:
  std::string Path() const { return dir_.path() + "/groups.log"; }
  testing::TempDir dir_;
};

TEST_F(GroupCommitLogTest, ReplayEmptyOrMissing) {
  auto replayed = GroupCommitLog::Replay(Path());  // missing file
  ASSERT_TRUE(replayed.ok());
  EXPECT_TRUE(replayed->empty());
}

TEST_F(GroupCommitLogTest, KeepsNewestCtsPerGroup) {
  {
    GroupCommitLog log(SyncMode::kNone, 0);
    ASSERT_TRUE(log.Open(Path()).ok());
    ASSERT_TRUE(log.Record(0, 10, false).ok());
    ASSERT_TRUE(log.Record(1, 11, false).ok());
    ASSERT_TRUE(log.Record(0, 25, false).ok());
    ASSERT_TRUE(log.Record(1, 8, true).ok());  // older record later: ignored
    ASSERT_TRUE(log.Close().ok());
  }
  auto replayed = GroupCommitLog::Replay(Path());
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed->size(), 2u);
  EXPECT_EQ(replayed->at(0), 25u);
  EXPECT_EQ(replayed->at(1), 11u);
}

TEST_F(GroupCommitLogTest, SurvivesTornTail) {
  {
    GroupCommitLog log(SyncMode::kNone, 0);
    ASSERT_TRUE(log.Open(Path()).ok());
    ASSERT_TRUE(log.Record(0, 42, true).ok());
    ASSERT_TRUE(log.Close().ok());
  }
  {
    WritableFile file;
    ASSERT_TRUE(file.Open(Path(), false).ok());
    ASSERT_TRUE(file.Append("\xBA\xAD").ok());  // torn partial frame
    ASSERT_TRUE(file.Close().ok());
  }
  auto replayed = GroupCommitLog::Replay(Path());
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed->at(0), 42u);
}

TEST_F(GroupCommitLogTest, RecordCommitCoversAllGroupsAtomically) {
  {
    GroupCommitLog log(SyncMode::kNone, 0);
    ASSERT_TRUE(log.Open(Path()).ok());
    const GroupId commit1[] = {0, 2, 5};
    ASSERT_TRUE(log.RecordCommit(commit1, 3, 30, false).ok());
    const GroupId commit2[] = {2};
    ASSERT_TRUE(log.RecordCommit(commit2, 1, 40, true).ok());
    ASSERT_TRUE(log.Record(5, 35, true).ok());  // legacy single-group record
    ASSERT_TRUE(log.Close().ok());
  }
  auto replayed = GroupCommitLog::Replay(Path());
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed->at(0), 30u);
  EXPECT_EQ(replayed->at(2), 40u);
  EXPECT_EQ(replayed->at(5), 35u);
}

TEST_F(GroupCommitLogTest, TornMultiGroupRecordDropsWholeCommit) {
  // A multi-group publication is ONE record: a crash that tears it must
  // recover none of its groups (never a subset).
  {
    GroupCommitLog log(SyncMode::kNone, 0);
    ASSERT_TRUE(log.Open(Path()).ok());
    const GroupId first[] = {1, 2};
    ASSERT_TRUE(log.RecordCommit(first, 2, 10, true).ok());
    const GroupId second[] = {1, 2, 3};
    ASSERT_TRUE(log.RecordCommit(second, 3, 20, true).ok());
    ASSERT_TRUE(log.Close().ok());
  }
  std::string contents;
  ASSERT_TRUE(fsutil::ReadFileToString(Path(), &contents).ok());
  ASSERT_TRUE(fsutil::WriteStringToFileAtomic(
                  Path(), contents.substr(0, contents.size() - 2))
                  .ok());
  auto replayed = GroupCommitLog::Replay(Path());
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed->at(1), 10u);
  EXPECT_EQ(replayed->at(2), 10u);
  EXPECT_EQ(replayed->count(3), 0u);  // the torn commit vanished entirely
}

TEST_F(GroupCommitLogTest, AppendAcrossReopens) {
  {
    GroupCommitLog log(SyncMode::kNone, 0);
    ASSERT_TRUE(log.Open(Path()).ok());
    ASSERT_TRUE(log.Record(3, 7, false).ok());
    ASSERT_TRUE(log.Close().ok());
  }
  {
    GroupCommitLog log(SyncMode::kNone, 0);
    ASSERT_TRUE(log.Open(Path()).ok());  // append, not truncate
    ASSERT_TRUE(log.Record(3, 9, false).ok());
    ASSERT_TRUE(log.Close().ok());
  }
  auto replayed = GroupCommitLog::Replay(Path());
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed->at(3), 9u);
}

}  // namespace
}  // namespace streamsi
