#include "core/group_commit_log.h"

#include <gtest/gtest.h>

#include "common/coding.h"
#include "tests/test_util.h"

namespace streamsi {
namespace {

class GroupCommitLogTest : public ::testing::Test {
 protected:
  std::string Path() const { return dir_.path() + "/groups.log"; }

  /// Appends a legacy single-group kCheckpoint record (the pre-segment era
  /// encoder was removed; recovery still decodes the records).
  static void AppendLegacyRecord(const std::string& path, GroupId group,
                                 Timestamp cts) {
    WalWriter writer(SyncMode::kNone, 0);
    ASSERT_TRUE(writer.Open(path, /*truncate=*/false).ok());
    std::string payload;
    PutVarint32(&payload, group);
    PutVarint64(&payload, cts);
    ASSERT_TRUE(
        writer.Append(WalRecordType::kCheckpoint, payload, /*sync=*/true)
            .ok());
    ASSERT_TRUE(writer.Close().ok());
  }

  testing::TempDir dir_;
};

TEST_F(GroupCommitLogTest, ReplayEmptyOrMissing) {
  auto replayed = GroupCommitLog::Replay(Path());  // missing file
  ASSERT_TRUE(replayed.ok());
  EXPECT_TRUE(replayed->empty());
}

TEST_F(GroupCommitLogTest, KeepsNewestCtsPerGroup) {
  {
    GroupCommitLog log(SyncMode::kNone, 0);
    ASSERT_TRUE(log.Open(Path()).ok());
    const GroupId g0[] = {0};
    const GroupId g1[] = {1};
    ASSERT_TRUE(log.RecordCommit(g0, 1, 10, false).ok());
    ASSERT_TRUE(log.RecordCommit(g1, 1, 11, false).ok());
    ASSERT_TRUE(log.RecordCommit(g0, 1, 25, false).ok());
    ASSERT_TRUE(log.RecordCommit(g1, 1, 8, true).ok());  // older: ignored
    ASSERT_TRUE(log.Close().ok());
  }
  auto replayed = GroupCommitLog::Replay(Path());
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed->size(), 2u);
  EXPECT_EQ(replayed->at(0), 25u);
  EXPECT_EQ(replayed->at(1), 11u);
}

TEST_F(GroupCommitLogTest, SurvivesTornTail) {
  {
    GroupCommitLog log(SyncMode::kNone, 0);
    ASSERT_TRUE(log.Open(Path()).ok());
    const GroupId g0[] = {0};
    ASSERT_TRUE(log.RecordCommit(g0, 1, 42, true).ok());
    ASSERT_TRUE(log.Close().ok());
  }
  {
    auto file = Env::Default()->NewWritableFile(Path(), false);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("\xBA\xAD").ok());  // torn partial frame
    ASSERT_TRUE((*file)->Close().ok());
  }
  auto replayed = GroupCommitLog::Replay(Path());
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed->at(0), 42u);
}

TEST_F(GroupCommitLogTest, RecordCommitCoversAllGroupsAtomically) {
  {
    GroupCommitLog log(SyncMode::kNone, 0);
    ASSERT_TRUE(log.Open(Path()).ok());
    const GroupId commit1[] = {0, 2, 5};
    ASSERT_TRUE(log.RecordCommit(commit1, 3, 30, false).ok());
    const GroupId commit2[] = {2};
    ASSERT_TRUE(log.RecordCommit(commit2, 1, 40, true).ok());
    ASSERT_TRUE(log.Close().ok());
  }
  auto replayed = GroupCommitLog::Replay(Path());
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed->at(0), 30u);
  EXPECT_EQ(replayed->at(2), 40u);
  EXPECT_EQ(replayed->at(5), 30u);
}

TEST_F(GroupCommitLogTest, MixedEraLogReplaysAllRecordKinds) {
  // One file carrying all three eras: legacy single-group kCheckpoint
  // records, kGroupCommit records, and a kCheckpointCut — on-disk
  // compatibility across the removed legacy append path.
  AppendLegacyRecord(Path(), 5, 35);
  AppendLegacyRecord(Path(), 6, 12);
  {
    GroupCommitLog log(SyncMode::kNone, 0);
    ASSERT_TRUE(log.Open(Path()).ok());  // appends after the legacy records
    const GroupId commit[] = {0, 6};
    ASSERT_TRUE(log.RecordCommit(commit, 2, 40, true).ok());
    const std::pair<GroupId, Timestamp> cut[] = {{0, 40}, {5, 35}, {6, 40}};
    ASSERT_TRUE(log.WriteCheckpoint(cut, 3).ok());
    const GroupId after[] = {5};
    ASSERT_TRUE(log.RecordCommit(after, 1, 50, true).ok());
    ASSERT_TRUE(log.Close().ok());
  }
  GroupCommitLog::ReplayInfo info;
  auto replayed = GroupCommitLog::Replay(Path(), &info);
  ASSERT_TRUE(replayed.ok());
  EXPECT_TRUE(info.from_checkpoint);
  EXPECT_EQ(replayed->at(0), 40u);
  EXPECT_EQ(replayed->at(5), 50u);  // the post-checkpoint commit wins
  EXPECT_EQ(replayed->at(6), 40u);
}

TEST_F(GroupCommitLogTest, TornMultiGroupRecordDropsWholeCommit) {
  // A multi-group publication is ONE record: a crash that tears it must
  // recover none of its groups (never a subset).
  {
    GroupCommitLog log(SyncMode::kNone, 0);
    ASSERT_TRUE(log.Open(Path()).ok());
    const GroupId first[] = {1, 2};
    ASSERT_TRUE(log.RecordCommit(first, 2, 10, true).ok());
    const GroupId second[] = {1, 2, 3};
    ASSERT_TRUE(log.RecordCommit(second, 3, 20, true).ok());
    ASSERT_TRUE(log.Close().ok());
  }
  std::string contents;
  ASSERT_TRUE(fsutil::ReadFileToString(Path(), &contents).ok());
  ASSERT_TRUE(fsutil::WriteStringToFileAtomic(
                  Path(), contents.substr(0, contents.size() - 2))
                  .ok());
  auto replayed = GroupCommitLog::Replay(Path());
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed->at(1), 10u);
  EXPECT_EQ(replayed->at(2), 10u);
  EXPECT_EQ(replayed->count(3), 0u);  // the torn commit vanished entirely
}

TEST_F(GroupCommitLogTest, ReopenAfterTornTailStartsFreshSegment) {
  // Appending after torn garbage would make every later record
  // unreachable to replay (it stops at the first bad frame) — a reopen
  // must retire the torn segment and continue in a fresh one.
  {
    GroupCommitLog log(SyncMode::kNone, 0);
    ASSERT_TRUE(log.Open(Path()).ok());
    const GroupId g0[] = {0};
    ASSERT_TRUE(log.RecordCommit(g0, 1, 10, true).ok());
    ASSERT_TRUE(log.Close().ok());
  }
  {
    auto file = Env::Default()->NewWritableFile(Path(), false);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("\xDE\xAD\xBE").ok());  // crash tail
    ASSERT_TRUE((*file)->Close().ok());
  }
  {
    GroupCommitLog log(SyncMode::kNone, 0);
    ASSERT_TRUE(log.Open(Path()).ok());
    EXPECT_EQ(log.current_segment(), 1u);  // fresh segment, not the torn one
    const GroupId g0[] = {0};
    ASSERT_TRUE(log.RecordCommit(g0, 1, 20, true).ok());
    ASSERT_TRUE(log.Close().ok());
  }
  auto replayed = GroupCommitLog::Replay(Path());
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed->at(0), 20u)
      << "post-reopen record must survive the next replay";
}

TEST_F(GroupCommitLogTest, MidLogBitFlipStopsReplayAndReopenRetiresSegment) {
  // A flipped bit in the MIDDLE of a segment (silent media corruption, not
  // a torn tail): replay must stop at the bad frame — the records behind it
  // are unreachable, never misdecoded — and a reopen must retire the
  // segment rather than append after garbage.
  {
    GroupCommitLog log(SyncMode::kNone, 0);
    ASSERT_TRUE(log.Open(Path()).ok());
    const GroupId g0[] = {0};
    ASSERT_TRUE(log.RecordCommit(g0, 1, 10, false).ok());
    ASSERT_TRUE(log.RecordCommit(g0, 1, 20, false).ok());
    ASSERT_TRUE(log.RecordCommit(g0, 1, 30, true).ok());
    ASSERT_TRUE(log.Close().ok());
  }
  std::string contents;
  ASSERT_TRUE(fsutil::ReadFileToString(Path(), &contents).ok());
  // Walk the [crc(4)][len(4)][type(1)][payload] frames to the second one
  // and flip one bit in its payload.
  std::size_t offset = 0;
  for (int frame = 0; frame < 1; ++frame) {
    offset += 9 + DecodeFixed32(contents.data() + offset + 4);
  }
  const std::size_t flip_at =
      offset + 9;  // first payload byte of frame 2
  ASSERT_LT(flip_at, contents.size());
  contents[flip_at] ^= 0x01;
  ASSERT_TRUE(fsutil::WriteStringToFileAtomic(Path(), contents).ok());

  auto replayed = GroupCommitLog::Replay(Path());
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed->at(0), 10u)
      << "replay must stop at the corrupt frame; later records are gone";

  {
    GroupCommitLog log(SyncMode::kNone, 0);
    ASSERT_TRUE(log.Open(Path()).ok());
    EXPECT_EQ(log.current_segment(), 1u)
        << "reopen must start a fresh segment, never append after garbage";
    const GroupId g0[] = {0};
    ASSERT_TRUE(log.RecordCommit(g0, 1, 40, true).ok());
    ASSERT_TRUE(log.Close().ok());
  }
  replayed = GroupCommitLog::Replay(Path());
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed->at(0), 40u);
}

TEST_F(GroupCommitLogTest, AppendAcrossReopens) {
  {
    GroupCommitLog log(SyncMode::kNone, 0);
    ASSERT_TRUE(log.Open(Path()).ok());
    const GroupId g[] = {3};
    ASSERT_TRUE(log.RecordCommit(g, 1, 7, false).ok());
    ASSERT_TRUE(log.Close().ok());
  }
  {
    GroupCommitLog log(SyncMode::kNone, 0);
    ASSERT_TRUE(log.Open(Path()).ok());  // append, not truncate
    const GroupId g[] = {3};
    ASSERT_TRUE(log.RecordCommit(g, 1, 9, false).ok());
    ASSERT_TRUE(log.Close().ok());
  }
  auto replayed = GroupCommitLog::Replay(Path());
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed->at(3), 9u);
}

TEST_F(GroupCommitLogTest, CheckpointTruncatesChainAndReplayStartsThere) {
  GroupCommitLog log(SyncMode::kNone, 0);
  ASSERT_TRUE(log.Open(Path()).ok());
  const GroupId g0[] = {0};
  for (Timestamp cts = 1; cts <= 100; ++cts) {
    ASSERT_TRUE(log.RecordCommit(g0, 1, cts, false).ok());
  }
  // Checkpoint protocol: rotate, cut, prune.
  ASSERT_TRUE(log.RotateSegment().ok());
  EXPECT_EQ(log.current_segment(), 1u);
  const std::pair<GroupId, Timestamp> cut[] = {{0, 100}};
  ASSERT_TRUE(log.WriteCheckpoint(cut, 1).ok());
  ASSERT_TRUE(log.PruneObsoleteSegments().ok());
  EXPECT_EQ(log.SegmentCount(), 1u);
  EXPECT_FALSE(fsutil::FileExists(Path()));  // segment 0 deleted

  // Post-checkpoint commits land in the surviving segment.
  ASSERT_TRUE(log.RecordCommit(g0, 1, 101, true).ok());
  ASSERT_TRUE(log.Close().ok());

  GroupCommitLog::ReplayInfo info;
  auto replayed = GroupCommitLog::Replay(Path(), &info);
  ASSERT_TRUE(replayed.ok());
  EXPECT_TRUE(info.from_checkpoint);
  EXPECT_EQ(info.segments_present, 1u);
  EXPECT_EQ(replayed->at(0), 101u);
}

TEST_F(GroupCommitLogTest, FailedPruneKeepsReplayCorrect) {
  GroupCommitLog log(SyncMode::kNone, 0);
  ASSERT_TRUE(log.Open(Path()).ok());
  const GroupId g0[] = {0};
  ASSERT_TRUE(log.RecordCommit(g0, 1, 10, false).ok());
  ASSERT_TRUE(log.RotateSegment().ok());
  const std::pair<GroupId, Timestamp> cut[] = {{0, 10}};
  ASSERT_TRUE(log.WriteCheckpoint(cut, 1).ok());
  log.InjectCheckpointFault(GroupCommitLog::CheckpointFault::kBeforePrune);
  EXPECT_FALSE(log.PruneObsoleteSegments().ok());
  EXPECT_EQ(log.SegmentCount(), 2u);  // stale segment survives
  ASSERT_TRUE(log.RecordCommit(g0, 1, 20, true).ok());
  ASSERT_TRUE(log.Close().ok());

  // Replay starts at the checkpoint segment; the stale chain is skipped.
  GroupCommitLog::ReplayInfo info;
  auto replayed = GroupCommitLog::Replay(Path(), &info);
  ASSERT_TRUE(replayed.ok());
  EXPECT_TRUE(info.from_checkpoint);
  EXPECT_EQ(info.segments_present, 2u);
  EXPECT_EQ(info.segments_replayed, 1u);
  EXPECT_EQ(replayed->at(0), 20u);
}

TEST_F(GroupCommitLogTest, TornCheckpointFallsBackToPreviousChain) {
  // Crash between rotation and the checkpoint record: the new segment
  // exists but has no cut. Replay must walk back into the old chain.
  GroupCommitLog log(SyncMode::kNone, 0);
  ASSERT_TRUE(log.Open(Path()).ok());
  const GroupId g0[] = {0};
  const GroupId g1[] = {1};
  ASSERT_TRUE(log.RecordCommit(g0, 1, 10, false).ok());
  ASSERT_TRUE(log.RecordCommit(g1, 1, 12, false).ok());
  ASSERT_TRUE(log.RotateSegment().ok());
  log.InjectCheckpointFault(
      GroupCommitLog::CheckpointFault::kBeforeCheckpointRecord);
  const std::pair<GroupId, Timestamp> cut[] = {{0, 10}, {1, 12}};
  EXPECT_FALSE(log.WriteCheckpoint(cut, 2).ok());
  // The aborted checkpoint never pruned; commits continue in the new
  // segment.
  ASSERT_TRUE(log.RecordCommit(g0, 1, 20, true).ok());
  ASSERT_TRUE(log.Close().ok());

  GroupCommitLog::ReplayInfo info;
  auto replayed = GroupCommitLog::Replay(Path(), &info);
  ASSERT_TRUE(replayed.ok());
  EXPECT_FALSE(info.from_checkpoint);
  EXPECT_EQ(info.segments_replayed, 2u);  // full chain: nothing subsumed it
  EXPECT_EQ(replayed->at(0), 20u);
  EXPECT_EQ(replayed->at(1), 12u);  // old-chain-only group survives
}

}  // namespace
}  // namespace streamsi
