// Commit-path invariants of the group-commit/lazy-floor/zero-allocation
// rebuild:
//   * steady-state commits allocate nothing beyond the immutable version
//     buffers MVCC requires (one per installed version),
//   * the GC-floor handshake runs only when a version array is full,
//   * a failed durable group-commit record FAILS the commit (no publication
//     of data recovery would roll back),
//   * commit listeners observe the write set through allocation-free views.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>

#include "core/streamsi.h"
#include "storage/hash_backend.h"
#include "tests/test_util.h"

// ---------------------------------------------------------------------------
// Heap-allocation counter: global operator new/delete overridden binary-wide
// (same technique as the read-path allocation tests).
namespace {
std::atomic<std::uint64_t> g_heap_allocations{0};
std::atomic<bool> g_count_heap_allocations{false};
}  // namespace

void* operator new(std::size_t size) {
  if (g_count_heap_allocations.load(std::memory_order_relaxed)) {
    g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace streamsi {
namespace {

class AllocationCounter {
 public:
  AllocationCounter() {
    g_heap_allocations.store(0, std::memory_order_relaxed);
    g_count_heap_allocations.store(true, std::memory_order_relaxed);
  }
  ~AllocationCounter() {
    g_count_heap_allocations.store(false, std::memory_order_relaxed);
  }
  std::uint64_t count() const {
    return g_heap_allocations.load(std::memory_order_relaxed);
  }
};

/// Context + one in-memory MVCC store + manager (optionally with a durable
/// group-commit log).
struct Harness {
  explicit Harness(GroupCommitLog* log = nullptr, bool durable = false,
                   bool write_through = false) {
    StoreOptions store_options;
    store_options.write_through = write_through;
    const StateId id = context.RegisterState("s");
    store = std::make_unique<VersionedStore>(
        id, "s", std::make_unique<HashTableBackend>(), store_options);
    group = context.RegisterGroup({id});
    protocol = MakeProtocol(ProtocolType::kMvcc, &context);
    manager = std::make_unique<TransactionManager>(
        &context, protocol.get(),
        [this](StateId sid) { return sid == 0 ? store.get() : nullptr; },
        log, durable);
  }

  StateContext context;
  std::unique_ptr<VersionedStore> store;
  GroupId group;
  std::unique_ptr<ConcurrencyProtocol> protocol;
  std::unique_ptr<TransactionManager> manager;
};

TEST(CommitPathAllocTest, SteadyStateCommitAllocatesOnlyVersionBuffers) {
  Harness h;
  // Keys long enough to defeat SSO in any string-keyed fallback; values
  // short enough for SSO so each installed version buffer is EXACTLY one
  // heap allocation (the immutable std::string object itself).
  const std::string keys[4] = {"alloc-key-000001", "alloc-key-000002",
                               "alloc-key-000003", "alloc-key-000004"};
  const std::string value = "v-small";

  // Warm up: create the keys, reach every pooled buffer's high-water mark
  // (write sets, commit locks, txn-slot vectors, reader string).
  std::string read_buffer;
  for (int cycle = 0; cycle < 8; ++cycle) {
    auto t = h.manager->Begin();
    ASSERT_TRUE(t.ok());
    (void)h.manager->Read((*t)->txn(), 0, keys[0], &read_buffer);
    for (const auto& key : keys) {
      ASSERT_TRUE(h.manager->Write((*t)->txn(), 0, key, value).ok());
    }
    ASSERT_TRUE(h.manager->Commit((*t)->txn()).ok());
  }

  // Steady state: a full transaction cycle must allocate exactly one buffer
  // per installed version — nothing for Put/Get/commit bookkeeping. The
  // minimum over several cycles filters the epoch reclaimer's periodic
  // sweep (which legitimately allocates its scratch every ~64 retires).
  std::uint64_t min_allocs = ~0ull;
  for (int cycle = 0; cycle < 8; ++cycle) {
    auto t = h.manager->Begin();
    ASSERT_TRUE(t.ok());
    AllocationCounter counter;
    ASSERT_TRUE(h.manager->Read((*t)->txn(), 0, keys[0], &read_buffer).ok());
    for (const auto& key : keys) {
      ASSERT_TRUE(h.manager->Write((*t)->txn(), 0, key, value).ok());
    }
    for (const auto& key : keys) {  // read-your-own-writes probes
      ASSERT_TRUE(h.manager->Read((*t)->txn(), 0, key, &read_buffer).ok());
      ASSERT_EQ(read_buffer, value);
    }
    ASSERT_TRUE(h.manager->Commit((*t)->txn()).ok());
    min_allocs = std::min(min_allocs, counter.count());
  }
  EXPECT_EQ(min_allocs, 4u)
      << "commit bookkeeping must not allocate beyond the 4 version buffers";
}

TEST(CommitPathAllocTest, AbortPathAllocatesNothingAtSteadyState) {
  Harness h;
  const std::string key = "abort-key-000001";
  for (int cycle = 0; cycle < 4; ++cycle) {
    auto t = h.manager->Begin();
    ASSERT_TRUE(h.manager->Write((*t)->txn(), 0, key, "doomed").ok());
    ASSERT_TRUE(h.manager->Abort((*t)->txn()).ok());
  }
  std::uint64_t min_allocs = ~0ull;
  for (int cycle = 0; cycle < 4; ++cycle) {
    auto t = h.manager->Begin();
    AllocationCounter counter;
    ASSERT_TRUE(h.manager->Write((*t)->txn(), 0, key, "doomed").ok());
    ASSERT_TRUE(h.manager->Abort((*t)->txn()).ok());
    min_allocs = std::min(min_allocs, counter.count());
  }
  EXPECT_EQ(min_allocs, 0u) << "§4.2 aborts just clear the write set";
}

TEST(CommitPathTest, GcFloorResolvedOnlyWhenVersionArrayIsFull) {
  StoreOptions options;
  options.write_through = false;
  options.mvcc_slots = 4;
  VersionedStore store(0, "s", std::make_unique<HashTableBackend>(), options);

  int floor_computations = 0;
  const auto compute = +[](void* ctx) -> Timestamp {
    ++*static_cast<int*>(ctx);
    return kInfinityTs - 1;  // everything reclaimable
  };

  Timestamp ts = 0;
  // Fill the 4-slot array: install #1..#4 never need the floor (slot free).
  for (int i = 0; i < 4; ++i) {
    GcFloor floor(compute, &floor_computations);
    ASSERT_TRUE(
        store.ApplyCommitted("k", "v", false, ++ts, floor, false).ok());
    EXPECT_EQ(floor_computations, 0) << "floor resolved with free slots";
    EXPECT_FALSE(floor.resolved());
  }
  // Install #5 finds the array full: the floor must be computed exactly
  // once and GC must make room.
  {
    GcFloor floor(compute, &floor_computations);
    ASSERT_TRUE(
        store.ApplyCommitted("k", "v", false, ++ts, floor, false).ok());
    EXPECT_EQ(floor_computations, 1);
  }
}

TEST(CommitPathTest, FailedDurableGroupRecordFailsTheCommit) {
  testing::TempDir dir;
  GroupCommitLog log(SyncMode::kNone, 0);
  ASSERT_TRUE(log.Open(dir.path() + "/groups.log").ok());
  Harness h(&log, /*durable=*/true);

  {
    auto t = h.manager->Begin();
    ASSERT_TRUE(h.manager->Write((*t)->txn(), 0, "k", "good").ok());
    ASSERT_TRUE(h.manager->Commit((*t)->txn()).ok());
  }
  const Timestamp published = h.context.LastCts(h.group);

  log.InjectRecordFailures(1);
  {
    auto t = h.manager->Begin();
    ASSERT_TRUE(h.manager->Write((*t)->txn(), 0, "k", "doomed").ok());
    const Status status = h.manager->Commit((*t)->txn());
    EXPECT_TRUE(status.IsIoError()) << status.ToString();
  }
  // Nothing was published and the installed version was purged: readers
  // still see the old value at the old snapshot.
  EXPECT_EQ(h.context.LastCts(h.group), published);
  {
    auto t = h.manager->Begin();
    std::string value;
    ASSERT_TRUE(h.manager->Read((*t)->txn(), 0, "k", &value).ok());
    EXPECT_EQ(value, "good");
    ASSERT_TRUE(h.manager->Commit((*t)->txn()).ok());
  }
  // The system recovers once the log heals.
  {
    auto t = h.manager->Begin();
    ASSERT_TRUE(h.manager->Write((*t)->txn(), 0, "k", "healed").ok());
    ASSERT_TRUE(h.manager->Commit((*t)->txn()).ok());
  }
  {
    auto t = h.manager->Begin();
    std::string value;
    ASSERT_TRUE(h.manager->Read((*t)->txn(), 0, "k", &value).ok());
    EXPECT_EQ(value, "healed");
    ASSERT_TRUE(h.manager->Commit((*t)->txn()).ok());
  }
  ASSERT_TRUE(log.Close().ok());
}

TEST(CommitPathTest, FailedCommitRollbackIsWrittenThroughToBackend) {
  // ApplyCommitted persists each version BEFORE the durable group record is
  // attempted; when that record fails, the rollback must reach the backend
  // too — otherwise the aborted version resurrects from the base table on
  // recovery once a later commit advances the group's LastCTS past it.
  testing::TempDir dir;
  GroupCommitLog log(SyncMode::kNone, 0);
  ASSERT_TRUE(log.Open(dir.path() + "/groups.log").ok());
  Harness h(&log, /*durable=*/true, /*write_through=*/true);

  {
    auto t = h.manager->Begin();
    ASSERT_TRUE(h.manager->Write((*t)->txn(), 0, "k", "good").ok());
    ASSERT_TRUE(h.manager->Commit((*t)->txn()).ok());
  }
  std::string blob;
  ASSERT_TRUE(h.store->backend()->Get("k", &blob).ok());
  auto persisted = MvccObject::Decode(blob, 8);
  ASSERT_TRUE(persisted.ok());
  const Timestamp good_cts = persisted->LatestCts();

  log.InjectRecordFailures(1);
  {
    auto t = h.manager->Begin();
    ASSERT_TRUE(h.manager->Write((*t)->txn(), 0, "k", "doomed").ok());
    EXPECT_TRUE(h.manager->Commit((*t)->txn()).IsIoError());
  }
  // The base table must hold the rolled-back version array: latest cts is
  // still the good commit's, not the aborted one's.
  blob.clear();
  ASSERT_TRUE(h.store->backend()->Get("k", &blob).ok());
  const auto rolled_back = MvccObject::Decode(blob, 8);
  ASSERT_TRUE(rolled_back.ok());
  EXPECT_EQ(rolled_back->LatestCts(), good_cts)
      << "aborted version leaked into the backend";

  // Same for a failed DELETE: the dts termination ApplyCommitted persisted
  // must be rolled back in the backend too (a rolled-back delete releases
  // no version slot — the reopen itself has to trigger the re-persist).
  log.InjectRecordFailures(1);
  {
    auto t = h.manager->Begin();
    ASSERT_TRUE(h.manager->Delete((*t)->txn(), 0, "k").ok());
    EXPECT_TRUE(h.manager->Commit((*t)->txn()).IsIoError());
  }
  blob.clear();
  ASSERT_TRUE(h.store->backend()->Get("k", &blob).ok());
  const auto after_delete = MvccObject::Decode(blob, 8);
  ASSERT_TRUE(after_delete.ok());
  EXPECT_TRUE(after_delete->HasLiveVersion())
      << "aborted delete leaked into the backend";
  EXPECT_EQ(after_delete->LatestModification(), good_cts);
  ASSERT_TRUE(log.Close().ok());
}

TEST(CommitPathTest, FailedCommitPurgeIsScopedToOwnKeys) {
  // The undo of a failed commit must drop only the failing transaction's
  // own keys: with group commit, a CONCURRENT committer may already have
  // published versions with a HIGHER commit timestamp on other keys of the
  // same store — a store-wide PurgeVersionsAfter would destroy them.
  StoreOptions options;
  options.write_through = false;
  VersionedStore store(0, "s", std::make_unique<HashTableBackend>(),
                       options);
  ASSERT_TRUE(store.ApplyCommitted("own", "pre", false, 5, 0, false).ok());
  ASSERT_TRUE(store.ApplyCommitted("own", "mine", false, 7, 0, false).ok());
  // Concurrent committer's published write, timestamped AFTER ours.
  ASSERT_TRUE(store.ApplyCommitted("other", "theirs", false, 10, 0, false)
                  .ok());

  // Undo "our" commit at cts=7.
  EXPECT_EQ(store.PurgeKeyVersionsAfter("own", 6), 1u);

  std::string value;
  ASSERT_TRUE(store.ReadLatest("own", &value).ok());
  EXPECT_EQ(value, "pre");  // our install rolled back, predecessor revived
  EXPECT_EQ(store.LatestModification("own"), 5u);  // FCW watermark too
  ASSERT_TRUE(store.ReadLatest("other", &value).ok());
  EXPECT_EQ(value, "theirs");  // the concurrent commit is untouched
  EXPECT_EQ(store.LatestModification("other"), 10u);
}

TEST(CommitPathTest, CommitListenersSeeEffectiveChangesAsViews) {
  Harness h;
  struct Seen {
    std::string key;
    std::string value;
    bool is_delete;
  };
  std::vector<Seen> seen;
  Timestamp seen_cts = 0;
  const auto token = h.manager->RegisterCommitListener(
      0, [&](const CommitInfo& info) {
        seen_cts = info.commit_ts;
        info.ForEachChange([&](std::string_view key, std::string_view value,
                               bool is_delete) {
          seen.push_back(Seen{std::string(key), std::string(value),
                              is_delete});
        });
      });

  {
    auto t = h.manager->Begin();
    ASSERT_TRUE(h.manager->Write((*t)->txn(), 0, "a", "old").ok());
    ASSERT_TRUE(h.manager->Write((*t)->txn(), 0, "a", "new").ok());
    ASSERT_TRUE(h.manager->Delete((*t)->txn(), 0, "b").ok());
    ASSERT_TRUE(h.manager->Commit((*t)->txn()).ok());
  }
  ASSERT_EQ(seen.size(), 2u);  // effective changes only (last write wins)
  EXPECT_EQ(seen[0].key, "a");
  EXPECT_EQ(seen[0].value, "new");
  EXPECT_FALSE(seen[0].is_delete);
  EXPECT_EQ(seen[1].key, "b");
  EXPECT_TRUE(seen[1].is_delete);
  EXPECT_EQ(seen_cts, h.context.LastCts(h.group));
  h.manager->UnregisterCommitListener(token);
}

}  // namespace
}  // namespace streamsi
