// Persistence & recoverability (§4 requirements): committed results survive
// restart; states always come back mutually consistent, even when a crash
// interrupts a multi-state group commit.

#include <gtest/gtest.h>

#include <vector>

#include "core/streamsi.h"
#include "tests/test_util.h"

namespace streamsi {
namespace {

class RecoveryTest : public ::testing::Test {
 protected:
  DatabaseOptions Options() {
    DatabaseOptions options;
    options.protocol = ProtocolType::kMvcc;
    options.backend = BackendType::kLsm;
    options.backend_options.sync_mode = SyncMode::kFsync;
    options.base_dir = dir_.path() + "/db";
    return options;
  }

  /// Opens the database and re-declares the schema (two states, one group).
  std::unique_ptr<Database> OpenDb(StateId* a, StateId* b, GroupId* g) {
    auto db = Database::Open(Options());
    EXPECT_TRUE(db.ok());
    auto sa = (*db)->CreateState("a");
    auto sb = (*db)->CreateState("b");
    EXPECT_TRUE(sa.ok());
    EXPECT_TRUE(sb.ok());
    *a = (*sa)->id();
    *b = (*sb)->id();
    *g = (*db)->CreateGroup({*a, *b});
    EXPECT_TRUE((*db)->Recover().ok());
    return std::move(db).value();
  }

  testing::TempDir dir_;
};

TEST_F(RecoveryTest, CommittedDataSurvivesRestart) {
  StateId a, b;
  GroupId g;
  {
    auto db = OpenDb(&a, &b, &g);
    auto t = db->Begin();
    ASSERT_TRUE(db->txn_manager().Write((*t)->txn(), a, "k", "va").ok());
    ASSERT_TRUE(db->txn_manager().Write((*t)->txn(), b, "k", "vb").ok());
    ASSERT_TRUE((*t)->Commit().ok());
  }
  auto db = OpenDb(&a, &b, &g);
  auto t = db->Begin();
  std::string value;
  ASSERT_TRUE(db->txn_manager().Read((*t)->txn(), a, "k", &value).ok());
  EXPECT_EQ(value, "va");
  ASSERT_TRUE(db->txn_manager().Read((*t)->txn(), b, "k", &value).ok());
  EXPECT_EQ(value, "vb");
  ASSERT_TRUE((*t)->Commit().ok());
}

TEST_F(RecoveryTest, AbortedDataDoesNotSurvive) {
  StateId a, b;
  GroupId g;
  {
    auto db = OpenDb(&a, &b, &g);
    auto t = db->Begin();
    ASSERT_TRUE(db->txn_manager().Write((*t)->txn(), a, "k", "doomed").ok());
    ASSERT_TRUE((*t)->Abort().ok());
  }
  auto db = OpenDb(&a, &b, &g);
  auto t = db->Begin();
  std::string value;
  EXPECT_TRUE(db->txn_manager().Read((*t)->txn(), a, "k", &value).IsNotFound());
  ASSERT_TRUE((*t)->Commit().ok());
}

TEST_F(RecoveryTest, DeletesSurviveRestart) {
  StateId a, b;
  GroupId g;
  {
    auto db = OpenDb(&a, &b, &g);
    auto t = db->Begin();
    ASSERT_TRUE(db->txn_manager().Write((*t)->txn(), a, "k", "v").ok());
    ASSERT_TRUE((*t)->Commit().ok());
    auto t2 = db->Begin();
    ASSERT_TRUE(db->txn_manager().Delete((*t2)->txn(), a, "k").ok());
    ASSERT_TRUE((*t2)->Commit().ok());
  }
  auto db = OpenDb(&a, &b, &g);
  auto t = db->Begin();
  std::string value;
  EXPECT_TRUE(db->txn_manager().Read((*t)->txn(), a, "k", &value).IsNotFound());
  ASSERT_TRUE((*t)->Commit().ok());
}

TEST_F(RecoveryTest, ClockAdvancesPastRecoveredCommits) {
  StateId a, b;
  GroupId g;
  Timestamp committed_at = 0;
  {
    auto db = OpenDb(&a, &b, &g);
    auto t = db->Begin();
    ASSERT_TRUE(db->txn_manager().Write((*t)->txn(), a, "k", "v").ok());
    ASSERT_TRUE((*t)->Commit().ok());
    committed_at = db->context().LastCts(g);
  }
  auto db = OpenDb(&a, &b, &g);
  EXPECT_GE(db->context().clock().Now(), committed_at);
  // New commits must get fresh timestamps beyond everything on disk.
  auto t = db->Begin();
  EXPECT_GT((*t)->id(), committed_at);
  ASSERT_TRUE((*t)->Commit().ok());
}

TEST_F(RecoveryTest, GrownVersionArraySurvivesRestart) {
  StateId a, b;
  GroupId g;
  constexpr int kOverwrites = 20;  // > default mvcc_slots (8): forces growth
  std::vector<Timestamp> commit_cts;
  {
    auto db = OpenDb(&a, &b, &g);
    // Lagging reader: holds a snapshot pin across every overwrite, so
    // on-demand GC can reclaim nothing and the hot key's version array must
    // grow (8 -> 16 -> 32) to absorb the churn.
    auto reader = db->Begin();
    std::string ignored;
    ASSERT_TRUE(db->txn_manager()
                    .Read((*reader)->txn(), a, "hot", &ignored)
                    .IsNotFound());  // pins the snapshot
    for (int i = 0; i < kOverwrites; ++i) {
      auto t = db->Begin();
      ASSERT_TRUE(db->txn_manager()
                      .Write((*t)->txn(), a, "hot", "v" + std::to_string(i))
                      .ok());
      ASSERT_TRUE((*t)->Commit().ok()) << "overwrite " << i;
      commit_cts.push_back(db->context().LastCts(g));
    }
    ASSERT_TRUE((*reader)->Commit().ok());
    // The persisted blob must already carry the grown array.
    std::string blob;
    ASSERT_TRUE(db->GetState(a)->backend()->Get("hot", &blob).ok());
    auto object = MvccObject::Decode(blob, 8);
    ASSERT_TRUE(object.ok());
    EXPECT_GT(object->capacity(), 8);
    EXPECT_EQ(object->VersionCount(), kOverwrites);
  }

  // Restart: CreateState reloads from the backend — Decode must size from
  // the blob (not the configured mvcc_slots default of 8) or the grown
  // object would fail recovery.
  auto db = OpenDb(&a, &b, &g);
  VersionedStore* store = db->GetState(a);
  ASSERT_NE(store, nullptr);
  std::string value;
  // Every version of the grown history is back and time-travel works.
  for (int i = 0; i < kOverwrites; ++i) {
    ASSERT_TRUE(store->ReadCommitted(commit_cts[static_cast<std::size_t>(i)],
                                     "hot", &value)
                    .ok())
        << "version " << i;
    EXPECT_EQ(value, "v" + std::to_string(i));
  }
  // PurgeVersionsAfter still works on the recovered grown array (the
  // recovery rollback path).
  const Timestamp mid = commit_cts[9];
  EXPECT_EQ(store->PurgeVersionsAfter(mid),
            static_cast<std::uint64_t>(kOverwrites - 10));
  ASSERT_TRUE(store->ReadLatest("hot", &value).ok());
  EXPECT_EQ(value, "v9");  // reopened as the live version
}

TEST_F(RecoveryTest, UnfinishedGroupCommitIsPurged) {
  // Simulate the torn middle of a group commit: state a's data is durable
  // but the group commit record was never written (crash before phase 3).
  StateId a, b;
  GroupId g;
  Timestamp watermark_before = 0;
  {
    auto db = OpenDb(&a, &b, &g);
    // One complete transaction as the baseline.
    auto t = db->Begin();
    ASSERT_TRUE(db->txn_manager().Write((*t)->txn(), a, "k", "good").ok());
    ASSERT_TRUE(db->txn_manager().Write((*t)->txn(), b, "k", "good").ok());
    ASSERT_TRUE((*t)->Commit().ok());
    watermark_before = db->context().LastCts(g);

    // Now the torn commit: write state a's blob directly through the store
    // (as the apply phase would) without the group record.
    VersionedStore* store_a = db->GetState(a);
    const Timestamp torn_cts = db->context().clock().Next();
    ASSERT_TRUE(store_a
                    ->ApplyCommitted(EncodeToString(std::string("k")),
                                     "torn", false, torn_cts,
                                     /*oldest_active=*/0, /*sync=*/true)
                    .ok());
  }
  auto db = OpenDb(&a, &b, &g);
  EXPECT_EQ(db->context().LastCts(g), watermark_before);
  auto t = db->Begin();
  std::string value;
  ASSERT_TRUE(db->txn_manager().Read((*t)->txn(), a, "k", &value).ok());
  EXPECT_EQ(value, "good") << "torn version must be purged on recovery";
  ASSERT_TRUE(db->txn_manager().Read((*t)->txn(), b, "k", &value).ok());
  EXPECT_EQ(value, "good");
  ASSERT_TRUE((*t)->Commit().ok());
}

TEST_F(RecoveryTest, PurgedTornCommitNeverResurrectsInLaterLives) {
  // The recovery purge must be written through to the backend: a torn
  // version dropped only in memory stays in the persisted blob, and once
  // later commits push LastCTS past its timestamp, the NEXT recovery
  // would keep it — a never-committed write resurrecting as committed.
  StateId a, b;
  GroupId g;
  {
    auto db = OpenDb(&a, &b, &g);
    auto t = db->Begin();
    ASSERT_TRUE(db->txn_manager().Write((*t)->txn(), a, "k", "good").ok());
    ASSERT_TRUE(db->txn_manager().Write((*t)->txn(), b, "k", "good").ok());
    ASSERT_TRUE((*t)->Commit().ok());
    // Torn commit on "k": version persisted, no group record.
    VersionedStore* store_a = db->GetState(a);
    const Timestamp torn_cts = db->context().clock().Next();
    ASSERT_TRUE(store_a
                    ->ApplyCommitted(EncodeToString(std::string("k")),
                                     "torn", false, torn_cts,
                                     /*oldest_active=*/0, /*sync=*/true)
                    .ok());
  }
  {
    // Life 2: recovery purges the torn version; commits to OTHER keys push
    // LastCTS far past the torn timestamp.
    auto db = OpenDb(&a, &b, &g);
    for (int i = 0; i < 10; ++i) {
      auto t = db->Begin();
      ASSERT_TRUE(db->txn_manager()
                      .Write((*t)->txn(), a, "other" + std::to_string(i),
                             "x")
                      .ok());
      ASSERT_TRUE((*t)->Commit().ok());
    }
    std::string value;
    auto t = db->Begin();
    ASSERT_TRUE(db->txn_manager().Read((*t)->txn(), a, "k", &value).ok());
    EXPECT_EQ(value, "good");
    ASSERT_TRUE((*t)->Commit().ok());
  }
  // Life 3: the torn version's timestamp is now below LastCTS — it must
  // STILL be gone (write-through of the life-2 purge).
  auto db = OpenDb(&a, &b, &g);
  auto t = db->Begin();
  std::string value;
  ASSERT_TRUE(db->txn_manager().Read((*t)->txn(), a, "k", &value).ok());
  EXPECT_EQ(value, "good") << "purged torn commit resurrected";
  ASSERT_TRUE((*t)->Commit().ok());
}

TEST_F(RecoveryTest, ManyTransactionsSurvive) {
  StateId a, b;
  GroupId g;
  {
    auto db = OpenDb(&a, &b, &g);
    for (int i = 0; i < 200; ++i) {
      auto t = db->Begin();
      ASSERT_TRUE(db->txn_manager()
                      .Write((*t)->txn(), a, "k" + std::to_string(i),
                             std::to_string(i))
                      .ok());
      ASSERT_TRUE(db->txn_manager()
                      .Write((*t)->txn(), b, "k" + std::to_string(i),
                             std::to_string(i * 2))
                      .ok());
      ASSERT_TRUE((*t)->Commit().ok());
    }
  }
  auto db = OpenDb(&a, &b, &g);
  auto t = db->Begin();
  std::string value;
  ASSERT_TRUE(db->txn_manager().Read((*t)->txn(), a, "k199", &value).ok());
  EXPECT_EQ(value, "199");
  ASSERT_TRUE(db->txn_manager().Read((*t)->txn(), b, "k199", &value).ok());
  EXPECT_EQ(value, "398");
  ASSERT_TRUE((*t)->Commit().ok());
}

TEST_F(RecoveryTest, CrashBetweenFlushAndRotateKeepsOldChainAuthoritative) {
  // Fault point 1: the checkpoint dies after flushing the backends, before
  // the log rotates. Nothing was cut, nothing was deleted — recovery
  // replays the old chain and every acked commit survives.
  StateId a, b;
  GroupId g;
  {
    auto db = OpenDb(&a, &b, &g);
    auto t = db->Begin();
    ASSERT_TRUE(db->txn_manager().Write((*t)->txn(), a, "k", "v").ok());
    ASSERT_TRUE(db->txn_manager().Write((*t)->txn(), b, "k", "v").ok());
    ASSERT_TRUE((*t)->Commit().ok());
    db->group_log()->InjectCheckpointFault(
        GroupCommitLog::CheckpointFault::kBeforeRotate);
    EXPECT_FALSE(db->Checkpoint().ok());
    EXPECT_EQ(db->CheckpointCount(), 0u);
  }
  auto db = OpenDb(&a, &b, &g);
  auto t = db->Begin();
  std::string value;
  ASSERT_TRUE(db->txn_manager().Read((*t)->txn(), a, "k", &value).ok());
  EXPECT_EQ(value, "v");
  ASSERT_TRUE((*t)->Commit().ok());
}

TEST_F(RecoveryTest, CrashBeforeCheckpointRecordKeepsOldChainAuthoritative) {
  // Fault point 2: rotated, but the cut record never lands. The new
  // segment has no checkpoint, so replay walks back across the whole
  // chain; commits before AND after the failed checkpoint survive.
  StateId a, b;
  GroupId g;
  {
    auto db = OpenDb(&a, &b, &g);
    auto t = db->Begin();
    ASSERT_TRUE(db->txn_manager().Write((*t)->txn(), a, "pre", "1").ok());
    ASSERT_TRUE(db->txn_manager().Write((*t)->txn(), b, "pre", "1").ok());
    ASSERT_TRUE((*t)->Commit().ok());
    db->group_log()->InjectCheckpointFault(
        GroupCommitLog::CheckpointFault::kBeforeCheckpointRecord);
    EXPECT_FALSE(db->Checkpoint().ok());
    // The system keeps committing into the rotated segment.
    auto t2 = db->Begin();
    ASSERT_TRUE(db->txn_manager().Write((*t2)->txn(), a, "post", "2").ok());
    ASSERT_TRUE(db->txn_manager().Write((*t2)->txn(), b, "post", "2").ok());
    ASSERT_TRUE((*t2)->Commit().ok());
  }
  auto db = OpenDb(&a, &b, &g);
  auto t = db->Begin();
  std::string value;
  ASSERT_TRUE(db->txn_manager().Read((*t)->txn(), a, "pre", &value).ok());
  EXPECT_EQ(value, "1");
  ASSERT_TRUE(db->txn_manager().Read((*t)->txn(), b, "post", &value).ok());
  EXPECT_EQ(value, "2");
  ASSERT_TRUE((*t)->Commit().ok());
}

TEST_F(RecoveryTest, CrashBeforePruneLosesNothingAndRetriesLater) {
  // Fault point 3: the cut is durable but the old segments were never
  // deleted. Replay starts at the checkpoint; the stale chain merely
  // costs disk until the next checkpoint prunes it.
  StateId a, b;
  GroupId g;
  {
    auto db = OpenDb(&a, &b, &g);
    auto t = db->Begin();
    ASSERT_TRUE(db->txn_manager().Write((*t)->txn(), a, "k", "v").ok());
    ASSERT_TRUE(db->txn_manager().Write((*t)->txn(), b, "k", "v").ok());
    ASSERT_TRUE((*t)->Commit().ok());
    db->group_log()->InjectCheckpointFault(
        GroupCommitLog::CheckpointFault::kBeforePrune);
    EXPECT_FALSE(db->Checkpoint().ok());
    EXPECT_EQ(db->group_log()->SegmentCount(), 2u);  // stale chain remains
  }
  {
    auto db = OpenDb(&a, &b, &g);
    auto t = db->Begin();
    std::string value;
    ASSERT_TRUE(db->txn_manager().Read((*t)->txn(), a, "k", &value).ok());
    EXPECT_EQ(value, "v");
    ASSERT_TRUE((*t)->Commit().ok());
    // The next checkpoint retries the truncation and succeeds.
    ASSERT_TRUE(db->Checkpoint().ok());
    EXPECT_EQ(db->group_log()->SegmentCount(), 1u);
  }
  auto db = OpenDb(&a, &b, &g);
  auto t = db->Begin();
  std::string value;
  ASSERT_TRUE(db->txn_manager().Read((*t)->txn(), a, "k", &value).ok());
  EXPECT_EQ(value, "v");
  ASSERT_TRUE((*t)->Commit().ok());
}

TEST_F(RecoveryTest, CheckpointBeforeRecoveryIsRefused) {
  // A pre-catalog directory recovers only when the app re-declares its
  // schema and calls Recover(). A checkpoint before that (manual or the
  // background thread's first tick) would cut an empty/stale LastCTS
  // snapshot and DELETE the segments recovery still needs — it must be
  // refused, not applied.
  StateId a, b;
  GroupId g;
  {
    auto db = OpenDb(&a, &b, &g);
    auto t = db->Begin();
    ASSERT_TRUE(db->txn_manager().Write((*t)->txn(), a, "k", "v").ok());
    ASSERT_TRUE(db->txn_manager().Write((*t)->txn(), b, "k", "v").ok());
    ASSERT_TRUE((*t)->Commit().ok());
  }
  // Simulate a legacy (pre-catalog) directory.
  ASSERT_TRUE(fsutil::RemoveFile(Options().base_dir + "/catalog.log").ok());
  {
    auto db = Database::Open(Options());
    ASSERT_TRUE(db.ok());
    const Status premature = (*db)->Checkpoint();
    EXPECT_TRUE(premature.IsBusy()) << premature.ToString();
    EXPECT_EQ((*db)->CheckpointCount(), 0u);
    // Declare + recover, then checkpoints work.
    ASSERT_TRUE((*db)->CreateState("a").ok());
    ASSERT_TRUE((*db)->CreateState("b").ok());
    (*db)->CreateGroup({a, b});
    ASSERT_TRUE((*db)->Recover().ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }
  auto db = OpenDb(&a, &b, &g);
  auto t = db->Begin();
  std::string value;
  ASSERT_TRUE(db->txn_manager().Read((*t)->txn(), a, "k", &value).ok());
  EXPECT_EQ(value, "v") << "premature checkpoint must not lose commits";
  ASSERT_TRUE((*t)->Commit().ok());
}

TEST_F(RecoveryTest, VolatileDatabaseRecoverIsNoop) {
  DatabaseOptions options;  // no base_dir
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->CreateState("s").ok());
  EXPECT_TRUE((*db)->Recover().ok());
}

}  // namespace
}  // namespace streamsi
