// Transactional secondary indexes: commit-time maintenance inside the SAME
// §4.3 global commit as the base write, so a snapshot can never observe a
// base row without its index entries or vice versa — plus the durable
// catalog binding (reopen leaves the binding PENDING until the application
// re-binds the extractor) and the declaration-time error surface.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/index_key.h"
#include "core/streamsi.h"
#include "tests/test_util.h"

namespace streamsi {
namespace {

// Rows are "<group>|<payload>"; the secondary key is the group prefix.
std::string GroupOf(std::string_view value) {
  return std::string(value.substr(0, value.find('|')));
}

TransactionManager::IndexKeyExtractor GroupExtractor() {
  return [](std::string_view, std::string_view value) {
    return GroupOf(value);
  };
}

/// All (secondary, primary) pairs the index holds for `txn`'s snapshot.
std::multimap<std::string, std::string> IndexContent(TransactionHandle& txn,
                                                     StateId index) {
  std::multimap<std::string, std::string> content;
  EXPECT_TRUE(txn
                  .ScanRange(index, "", "",
                             [&](std::string_view composite,
                                 std::string_view primary) {
                               std::string_view secondary, suffix;
                               EXPECT_TRUE(SplitIndexKey(composite,
                                                         &secondary,
                                                         &suffix));
                               EXPECT_EQ(suffix, primary)
                                   << "index value must be the primary key";
                               content.emplace(std::string(secondary),
                                               std::string(primary));
                               return true;
                             })
                  .ok());
  return content;
}

TEST(IndexConsistencyTest, MaintenanceFollowsBaseWrites) {
  DatabaseOptions options;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  auto base = (*db)->CreateState("rows");
  ASSERT_TRUE(base.ok());
  auto index = (*db)->CreateIndex("rows", "rows_by_group", GroupExtractor());
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  const StateId base_id = (*base)->id();
  const StateId index_id = (*index)->id();

  // Insert: base row and index entry appear together.
  {
    auto t = (*db)->Begin();
    ASSERT_TRUE((*t)->Write(base_id, "k1", "red|one").ok());
    ASSERT_TRUE((*t)->Write(base_id, "k2", "red|two").ok());
    ASSERT_TRUE((*t)->Write(base_id, "k3", "blue|three").ok());
    ASSERT_TRUE((*t)->Commit().ok());
  }
  {
    auto t = (*db)->Begin();
    const auto content = IndexContent(**t, index_id);
    EXPECT_EQ(content.size(), 3u);
    EXPECT_EQ(content.count("red"), 2u);
    EXPECT_EQ(content.count("blue"), 1u);
    ASSERT_TRUE((*t)->Commit().ok());
  }

  // Update that MOVES the secondary key: old entry gone, new one present.
  {
    auto t = (*db)->Begin();
    ASSERT_TRUE((*t)->Write(base_id, "k2", "blue|two").ok());
    ASSERT_TRUE((*t)->Commit().ok());
  }
  // Update that KEEPS the secondary key: entry neither lost nor duplicated.
  {
    auto t = (*db)->Begin();
    ASSERT_TRUE((*t)->Write(base_id, "k1", "red|one-v2").ok());
    ASSERT_TRUE((*t)->Commit().ok());
  }
  // Delete: entry disappears.
  {
    auto t = (*db)->Begin();
    ASSERT_TRUE((*t)->Delete(base_id, "k3").ok());
    ASSERT_TRUE((*t)->Commit().ok());
  }
  {
    auto t = (*db)->Begin();
    const auto content = IndexContent(**t, index_id);
    EXPECT_EQ(content.size(), 2u);
    EXPECT_EQ(content.count("red"), 1u);
    EXPECT_EQ(content.count("blue"), 1u);
    std::string value;
    // Exact-match probe: only the blue entries.
    std::string lo, hi;
    IndexExactBounds("blue", &lo, &hi);
    std::vector<std::string> primaries;
    ASSERT_TRUE((*t)
                    ->ScanRange(index_id, lo, hi,
                                [&](std::string_view, std::string_view p) {
                                  primaries.emplace_back(p);
                                  return true;
                                })
                    .ok());
    EXPECT_EQ(primaries, std::vector<std::string>{"k2"});
    ASSERT_TRUE((*t)->Commit().ok());
  }
}

TEST(IndexConsistencyTest, CreateIndexBackfillsExistingRows) {
  DatabaseOptions options;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  auto base = (*db)->CreateState("rows");
  ASSERT_TRUE(base.ok());
  {
    auto t = (*db)->Begin();
    ASSERT_TRUE((*t)->Write((*base)->id(), "k1", "red|one").ok());
    ASSERT_TRUE((*t)->Write((*base)->id(), "k2", "blue|two").ok());
    ASSERT_TRUE((*t)->Commit().ok());
  }
  auto index = (*db)->CreateIndex("rows", "rows_by_group", GroupExtractor());
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  auto t = (*db)->Begin();
  const auto content = IndexContent(**t, (*index)->id());
  EXPECT_EQ(content.size(), 2u);
  EXPECT_EQ(content.count("red"), 1u);
  EXPECT_EQ(content.count("blue"), 1u);
  ASSERT_TRUE((*t)->Commit().ok());
}

TEST(IndexConsistencyTest, DeclarationErrorSurface) {
  {
    DatabaseOptions options;
    options.protocol = ProtocolType::kS2pl;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateState("rows").ok());
    EXPECT_TRUE((*db)
                    ->CreateIndex("rows", "idx", GroupExtractor())
                    .status()
                    .IsNotSupported());
  }
  DatabaseOptions options;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->CreateState("rows").ok());
  ASSERT_TRUE((*db)->CreateState("plain").ok());
  {
    // "plain" holds application data: re-declaring it as an index must
    // refuse (an EMPTY unbound state would be adopted instead — see
    // EmptyUnboundStateIsAdoptedAsIndex).
    auto t = (*db)->Begin();
    ASSERT_TRUE(
        (*t)->Write((*db)->FindState("plain")->id(), "k", "data").ok());
    ASSERT_TRUE((*t)->Commit().ok());
  }
  EXPECT_TRUE((*db)
                  ->CreateIndex("rows", "idx", nullptr)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE((*db)
                  ->CreateIndex("missing", "idx", GroupExtractor())
                  .status()
                  .IsInvalidArgument());
  // An existing non-index state with data cannot be re-declared as an
  // index.
  EXPECT_TRUE((*db)
                  ->CreateIndex("rows", "plain", GroupExtractor())
                  .status()
                  .IsInvalidArgument());
  // Idempotent re-declaration of a real index is fine (re-bind).
  auto index = (*db)->CreateIndex("rows", "idx", GroupExtractor());
  ASSERT_TRUE(index.ok());
  auto again = (*db)->CreateIndex("rows", "idx", GroupExtractor());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*index, *again);
  // ...but not as an index over a DIFFERENT base.
  EXPECT_TRUE((*db)
                  ->CreateIndex("plain", "idx", GroupExtractor())
                  .status()
                  .IsInvalidArgument());
}

TEST(IndexConsistencyTest, EmptyUnboundStateIsAdoptedAsIndex) {
  // Repair path for a crash inside a previous CreateIndex: the state (and
  // possibly group) declarations can land in the catalog without the
  // index-binding append. The reopened database then holds an EMPTY
  // unbound state under the index's name — re-issuing CreateIndex adopts
  // it (declares the missing binding, backfills) instead of refusing.
  // Pre-declaring the state directly models that catalog shape.
  DatabaseOptions options;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  auto base = (*db)->CreateState("rows");
  ASSERT_TRUE(base.ok());
  auto orphan = (*db)->CreateState("rows_by_group");
  ASSERT_TRUE(orphan.ok());
  {
    auto t = (*db)->Begin();
    ASSERT_TRUE((*t)->Write((*base)->id(), "k1", "red|one").ok());
    ASSERT_TRUE((*t)->Commit().ok());
  }
  auto index = (*db)->CreateIndex("rows", "rows_by_group", GroupExtractor());
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_EQ(*index, *orphan);  // adopted in place, not re-created
  {
    auto t = (*db)->Begin();
    const auto content = IndexContent(**t, (*index)->id());
    EXPECT_EQ(content.size(), 1u);  // backfilled from the base snapshot
    EXPECT_EQ(content.count("red"), 1u);
    ASSERT_TRUE((*t)->Commit().ok());
  }
  // Maintenance is live after adoption.
  {
    auto t = (*db)->Begin();
    ASSERT_TRUE((*t)->Write((*base)->id(), "k2", "blue|two").ok());
    ASSERT_TRUE((*t)->Commit().ok());
  }
  auto t = (*db)->Begin();
  const auto content = IndexContent(**t, (*index)->id());
  EXPECT_EQ(content.size(), 2u);
  EXPECT_EQ(content.count("blue"), 1u);
  ASSERT_TRUE((*t)->Commit().ok());
}

TEST(IndexConsistencyTest, ExtractorSeparatorByteFailsLoudly) {
  DatabaseOptions options;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  auto base = (*db)->CreateState("rows");
  ASSERT_TRUE(base.ok());
  auto index = (*db)->CreateIndex("rows", "rows_by_group", GroupExtractor());
  ASSERT_TRUE(index.ok());
  // A base value whose group carries a 0x00 makes the extractor emit the
  // separator byte into the secondary key: the commit fails with
  // InvalidArgument instead of corrupting the composite encoding.
  {
    auto t = (*db)->Begin();
    const std::string value("re\0d|one", 8);
    ASSERT_TRUE((*t)->Write((*base)->id(), "k1", value).ok());
    EXPECT_TRUE((*t)->Commit().IsInvalidArgument());
  }
  // The failed commit published nothing — neither base row nor index entry.
  {
    auto t = (*db)->Begin();
    EXPECT_TRUE(IndexContent(**t, (*index)->id()).empty());
    std::string row;
    EXPECT_TRUE((*t)->Read((*base)->id(), "k1", &row).IsNotFound());
    ASSERT_TRUE((*t)->Commit().ok());
  }
  // Backfill enforces the same contract at declaration time.
  {
    auto t = (*db)->Begin();
    ASSERT_TRUE((*t)->Write((*base)->id(), "k2", "red|two").ok());
    ASSERT_TRUE((*t)->Commit().ok());
  }
  EXPECT_TRUE((*db)
                  ->CreateIndex("rows", "bad_idx",
                                [](std::string_view, std::string_view) {
                                  return std::string(1, '\0');
                                })
                  .status()
                  .IsInvalidArgument());
}

TEST(IndexConsistencyTest, ReopenLeavesBindingPendingUntilRebind) {
  testing::TempDir dir;
  DatabaseOptions options;
  options.base_dir = dir.path();
  options.backend = BackendType::kLsm;
  options.backend_options.sync_mode = SyncMode::kFsync;
  StateId base_id = kInvalidStateId;
  StateId index_id = kInvalidStateId;
  {
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    auto base = (*db)->CreateState("rows");
    ASSERT_TRUE(base.ok());
    auto index =
        (*db)->CreateIndex("rows", "rows_by_group", GroupExtractor());
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    base_id = (*base)->id();
    index_id = (*index)->id();
    ASSERT_TRUE((*db)->Recover().ok());
    auto t = (*db)->Begin();
    ASSERT_TRUE((*t)->Write(base_id, "k1", "red|one").ok());
    ASSERT_TRUE((*t)->Write(base_id, "k2", "blue|two").ok());
    ASSERT_TRUE((*t)->Commit().ok());
  }
  {
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    // The catalog reopened base, index and their group; reads work — and
    // the recovered index content matches the recovered base.
    EXPECT_EQ((*db)->FindState("rows")->id(), base_id);
    EXPECT_EQ((*db)->FindState("rows_by_group")->id(), index_id);
    {
      auto t = (*db)->Begin();
      const auto content = IndexContent(**t, index_id);
      EXPECT_EQ(content.size(), 2u);
      EXPECT_EQ(content.count("red"), 1u);
      EXPECT_EQ(content.count("blue"), 1u);
      ASSERT_TRUE((*t)->Commit().ok());
    }
    // The extractor is not persistable, so the binding is PENDING: a write
    // commit on the base refuses rather than silently skipping maintenance.
    {
      auto t = (*db)->Begin();
      ASSERT_TRUE((*t)->Write(base_id, "k3", "red|three").ok());
      EXPECT_TRUE((*t)->Commit().IsUnavailable());
    }
    // Re-binding restores writability; maintenance picks up where it left.
    auto rebound =
        (*db)->CreateIndex("rows", "rows_by_group", GroupExtractor());
    ASSERT_TRUE(rebound.ok()) << rebound.status().ToString();
    EXPECT_EQ((*rebound)->id(), index_id);
    {
      auto t = (*db)->Begin();
      ASSERT_TRUE((*t)->Write(base_id, "k3", "red|three").ok());
      ASSERT_TRUE((*t)->Commit().ok());
    }
    auto t = (*db)->Begin();
    const auto content = IndexContent(**t, index_id);
    EXPECT_EQ(content.size(), 3u);
    EXPECT_EQ(content.count("red"), 2u);
    ASSERT_TRUE((*t)->Commit().ok());
  }
}

// The headline §4.3 property: under concurrent committers that move rows
// between secondary keys, NO snapshot may ever observe a base row and its
// index entries in disagreement — in either direction.
TEST(IndexConsistencyTest, StressBaseAndIndexNeverObservableSeparately) {
  constexpr int kWriters = 3;
  constexpr int kScannerRounds = 400;
  constexpr int kKeys = 32;
  constexpr int kGroups = 4;

  DatabaseOptions options;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  auto base = (*db)->CreateState("rows");
  ASSERT_TRUE(base.ok());
  auto index = (*db)->CreateIndex("rows", "rows_by_group", GroupExtractor());
  ASSERT_TRUE(index.ok());
  const StateId base_id = (*base)->id();
  const StateId index_id = (*index)->id();

  const auto key_for = [](int k) { return "key-" + std::to_string(k); };
  const auto group_for = [](std::uint64_t g) {
    return "group-" + std::to_string(g);
  };

  constexpr int kOpsPerWriter = 4000;
  std::atomic<int> writers_done{0};
  std::atomic<std::uint64_t> commits{0};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Xorshift rng(0xD1CE + w);
      for (int op = 0; op < kOpsPerWriter; ++op) {
        auto t = (*db)->Begin();
        if (!t.ok()) continue;
        const std::string key = key_for(rng.Uniform(kKeys));
        Status status;
        if (rng.Uniform(8) == 0) {
          status = (*t)->Delete(base_id, key);
        } else {
          status = (*t)->Write(base_id, key,
                               group_for(rng.Uniform(kGroups)) + "|payload");
        }
        if (!status.ok()) continue;
        if ((*t)->Commit().ok()) {
          commits.fetch_add(1, std::memory_order_relaxed);
        }
      }
      writers_done.fetch_add(1, std::memory_order_release);
    });
  }

  // Scan while the writers run (the interesting interleavings), then a few
  // more rounds against the settled state.
  for (int round = 0;
       round < kScannerRounds ||
       writers_done.load(std::memory_order_acquire) < kWriters;
       ++round) {
    auto t = (*db)->Begin();
    ASSERT_TRUE(t.ok());
    // One snapshot, both states (they share a topology group, so the §4.3
    // cut covers them together).
    std::multimap<std::string, std::string> index_content =
        IndexContent(**t, index_id);
    std::map<std::string, std::string> rows;
    ASSERT_TRUE((*t)
                    ->Scan(base_id,
                           [&](std::string_view k, std::string_view v) {
                             rows.emplace(std::string(k), std::string(v));
                             return true;
                           })
                    .ok());
    ASSERT_TRUE((*t)->Commit().ok());

    // Forward: every index entry resolves to a base row of the SAME
    // secondary key.
    std::set<std::string> indexed_primaries;
    for (const auto& [secondary, primary] : index_content) {
      auto row = rows.find(primary);
      ASSERT_NE(row, rows.end())
          << "dangling index entry: " << secondary << " -> " << primary;
      ASSERT_EQ(GroupOf(row->second), secondary)
          << "stale index entry for " << primary;
      indexed_primaries.insert(primary);
    }
    // Backward: every base row is indexed (exactly once, by the forward
    // check + this count).
    ASSERT_EQ(index_content.size(), rows.size());
    ASSERT_EQ(indexed_primaries.size(), rows.size());
  }

  for (auto& t : writers) t.join();
  EXPECT_GT(commits.load(), 0u);
}

}  // namespace
}  // namespace streamsi
