// Graceful degradation: storage failures flip the database into
// kDegradedReadOnly instead of killing it — snapshot reads and scans keep
// serving from the in-memory MVCC state while write commits fail fast with
// Status::Unavailable; corruption fails the instance outright. The LSM
// flush worker retries transient background failures with bounded backoff
// before poisoning, and Database::Health() makes all of it observable.

#include <gtest/gtest.h>

#include <string>

#include "common/fault_env.h"
#include "core/streamsi.h"
#include "storage/faulty_backend.h"
#include "storage/hash_backend.h"
#include "storage/lsm_backend.h"
#include "stream/stream.h"
#include "tests/test_util.h"

namespace streamsi {
namespace {

class DegradationTest : public ::testing::Test {
 protected:
  DatabaseOptions Options() {
    DatabaseOptions options;
    options.protocol = ProtocolType::kMvcc;
    options.backend = BackendType::kLsm;
    options.backend_options.sync_mode = SyncMode::kFsync;
    options.backend_options.env = &env_;
    options.backend_options.flush_retry_attempts = 2;
    options.backend_options.flush_retry_backoff_ms = 1;
    options.env = &env_;
    options.base_dir = "/db";
    return options;
  }

  std::unique_ptr<Database> CreateDb(StateId* a) {
    auto db = Database::Open(Options());
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    *a = (*(*db)->CreateState("a"))->id();
    EXPECT_TRUE((*db)->Recover().ok());
    return std::move(db).value();
  }

  static Status CommitOne(Database& db, StateId a, const std::string& key,
                          const std::string& value) {
    auto t = db.Begin();
    EXPECT_TRUE(t.ok());
    const Status write = db.txn_manager().Write((*t)->txn(), a, key, value);
    if (!write.ok()) return write;
    return (*t)->Commit();
  }

  static std::string ReadOne(Database& db, StateId a, const std::string& key) {
    auto t = db.Begin();
    EXPECT_TRUE(t.ok());
    std::string value;
    const Status status = db.txn_manager().Read((*t)->txn(), a, key, &value);
    EXPECT_TRUE((*t)->Commit().ok()) << "read-only commit must keep working";
    return status.ok() ? value : "";
  }

  FaultEnv env_{/*seed=*/7};
};

TEST_F(DegradationTest, EnospcDuringCommitDegradesToReadOnly) {
  StateId a;
  auto db = CreateDb(&a);
  ASSERT_TRUE(CommitOne(*db, a, "k", "v1").ok());
  EXPECT_EQ(db->health(), DatabaseHealth::kHealthy);

  // The disk fills: the commit's write-through (or its durable group
  // record) hits NoSpace and the health machine flips to read-only.
  env_.SetNoSpaceByteBudget(0);
  const Status failed = CommitOne(*db, a, "k", "v2");
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(db->health(), DatabaseHealth::kDegradedReadOnly);

  // Reads and scans keep serving the pre-failure state.
  EXPECT_EQ(ReadOne(*db, a, "k"), "v1");
  {
    auto t = db->Begin();
    ASSERT_TRUE(t.ok());
    int rows = 0;
    EXPECT_TRUE(db->txn_manager()
                    .Scan((*t)->txn(), a,
                          [&](std::string_view, std::string_view) {
                            ++rows;
                            return true;
                          })
                    .ok());
    EXPECT_TRUE((*t)->Commit().ok());
    EXPECT_EQ(rows, 1);
  }

  // Write commits now fail FAST with Unavailable (admission gate, before
  // any IO or conflict accounting) — even after the disk frees up, because
  // health transitions are monotone until reopen.
  env_.SetNoSpaceByteBudget(FaultEnv::kUnlimited);
  const Status rejected = CommitOne(*db, a, "k", "v3");
  EXPECT_TRUE(rejected.IsUnavailable()) << rejected.ToString();
  EXPECT_EQ(ReadOne(*db, a, "k"), "v1");

  // Checkpoints are refused too: pruning while storage fails risks
  // deleting the only good copy.
  EXPECT_TRUE(db->Checkpoint().IsUnavailable());

  const HealthReport report = db->Health();
  EXPECT_EQ(report.state, DatabaseHealth::kDegradedReadOnly);
  EXPECT_TRUE(report.first_error.IsNoSpace()) << report.first_error.ToString();
  EXPECT_GE(report.commit_io_failures, 1u);
  EXPECT_GE(report.degraded_commit_rejections, 1u);
  ASSERT_EQ(report.stores.size(), 1u);
  EXPECT_EQ(report.stores[0].name, "a");
}

TEST_F(DegradationTest, TransientBackgroundFailureRetriesWithoutDegrading) {
  StateId a;
  auto db = CreateDb(&a);
  ASSERT_TRUE(CommitOne(*db, a, "k", "v").ok());

  // One transient sync failure during the background flush: the worker's
  // bounded-backoff retry (fresh SSTable file number, atomic manifest)
  // absorbs it without poisoning anything.
  env_.schedule().Arm("env.sync", /*after=*/0, /*count=*/1,
                      Status::IoError("transient flush hiccup"));
  auto* backend = db->GetState(a)->backend();
  EXPECT_TRUE(backend->Flush().ok());
  env_.schedule().Disarm("env.sync");

  EXPECT_EQ(db->health(), DatabaseHealth::kHealthy);
  const HealthReport report = db->Health();
  ASSERT_EQ(report.stores.size(), 1u);
  EXPECT_TRUE(report.stores[0].backend_status.ok());
  EXPECT_GE(report.stores[0].flush_retries, 1u);
  EXPECT_TRUE(CommitOne(*db, a, "k", "v2").ok());
}

TEST_F(DegradationTest, PersistentBackgroundFailurePoisonsAndDegrades) {
  StateId a;
  auto db = CreateDb(&a);
  ASSERT_TRUE(CommitOne(*db, a, "k", "v").ok());

  // Every append fails from here: the flush worker exhausts its retries,
  // poisons the store, and the failure callback degrades the database.
  env_.schedule().Arm("env.append", /*after=*/0, /*count=*/-1,
                      Status::IoError("dead disk"));
  auto* backend = db->GetState(a)->backend();
  EXPECT_FALSE(backend->Flush().ok());
  env_.schedule().Disarm("env.append");

  EXPECT_EQ(db->health(), DatabaseHealth::kDegradedReadOnly);
  const HealthReport report = db->Health();
  ASSERT_EQ(report.stores.size(), 1u);
  EXPECT_FALSE(report.stores[0].backend_status.ok());
  EXPECT_GE(report.stores[0].flush_retries, 2u) << "bounded retries ran";
  EXPECT_FALSE(report.first_error.ok());

  // Post-mortem contract: reads serve, writes fail Unavailable.
  EXPECT_EQ(ReadOne(*db, a, "k"), "v");
  EXPECT_TRUE(CommitOne(*db, a, "k", "v2").IsUnavailable());
}

TEST_F(DegradationTest, DegradedDatabaseRecoversAfterReopen) {
  StateId a;
  {
    auto db = CreateDb(&a);
    ASSERT_TRUE(CommitOne(*db, a, "k", "v1").ok());
    env_.SetNoSpaceByteBudget(0);
    EXPECT_FALSE(CommitOne(*db, a, "k", "v2").ok());
    EXPECT_EQ(db->health(), DatabaseHealth::kDegradedReadOnly);
  }
  // The operator fixes the disk and restarts the process: a fresh Open
  // recovers the durable state and serves writes again.
  env_.SetNoSpaceByteBudget(FaultEnv::kUnlimited);
  auto db = Database::Open(Options());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ((*db)->health(), DatabaseHealth::kHealthy);
  EXPECT_EQ(ReadOne(**db, a, "k"), "v1");
  EXPECT_TRUE(CommitOne(**db, a, "k", "v2").ok());
  EXPECT_EQ(ReadOne(**db, a, "k"), "v2");
}

// A stream query whose TO_TABLE target degrades to read-only MID-STREAM:
// the batch in flight when the disk filled must be poisoned at its commit
// boundary (nothing of it published), later batches must fail fast at BOT
// without burning per-tuple retry budgets, and the topology must still
// drain to EOS instead of wedging.
TEST_F(DegradationTest, StreamIntoDegradingDatabasePoisonsAtBatchBoundary) {
  StateId a;
  auto db = CreateDb(&a);
  TransactionalTable<std::uint64_t, double> table(&db->txn_manager(),
                                                  db->GetState(a));

  std::vector<StreamElement<std::pair<std::uint64_t, double>>> elements;
  // Batch 1: commits while healthy.
  elements.emplace_back(Punctuation::kBeginTxn);
  elements.emplace_back(std::make_pair(std::uint64_t{1}, 1.0), 0);
  elements.emplace_back(Punctuation::kCommitTxn);
  // Batch 2: the disk fills between its BOT and its COMMIT (see the tap
  // below) — its writes land in memory, the commit's IO fails, and the
  // whole batch must roll back.
  elements.emplace_back(Punctuation::kBeginTxn);
  elements.emplace_back(std::make_pair(std::uint64_t{2}, 2.0), 1);
  elements.emplace_back(std::make_pair(std::uint64_t{3}, 3.0), 2);
  elements.emplace_back(Punctuation::kCommitTxn);
  // Batch 3: the database is read-only now; BOT fails fast Unavailable.
  elements.emplace_back(Punctuation::kBeginTxn);
  elements.emplace_back(std::make_pair(std::uint64_t{4}, 4.0), 3);
  elements.emplace_back(Punctuation::kCommitTxn);
  elements.emplace_back(Punctuation::kEndOfStream);

  Topology topology;
  auto ctx = std::make_shared<StreamTxnContext>(&db->txn_manager());
  auto* source =
      topology.Add<VectorSource<std::pair<std::uint64_t, double>>>(
          std::move(elements));
  // Tap between source and sink: fill the disk right before batch 2's
  // second tuple, so degradation strikes with a transaction open.
  Publisher<std::pair<std::uint64_t, double>> tap;
  source->Subscribe(
      [&](const StreamElement<std::pair<std::uint64_t, double>>& e) {
        if (e.is_data() && e.data().first == 3) {
          env_.SetNoSpaceByteBudget(0);
        }
        tap.Publish(e);
      });
  auto* to_table =
      topology.Add<ToTable<std::pair<std::uint64_t, double>, std::uint64_t,
                           double>>(
          &tap, table, ctx,
          [](const std::pair<std::uint64_t, double>& p) { return p.first; },
          [](const std::pair<std::uint64_t, double>& p) { return p.second; });
  topology.Start();
  topology.Join();  // drains to EOS — no wedge

  EXPECT_EQ(db->health(), DatabaseHealth::kDegradedReadOnly);
  // Batch 1 committed; nothing of batches 2 and 3 published.
  env_.SetNoSpaceByteBudget(FaultEnv::kUnlimited);
  auto rows = SnapshotOf(&db->txn_manager(), table);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u) << "a poisoned batch published its tail";
  EXPECT_EQ((*rows)[0].first, 1u);
  EXPECT_EQ(to_table->write_count(), 3u);  // k=1,2,3 applied in-memory
  EXPECT_GE(to_table->error_count(), 1u);  // batch 2's commit + batch 3
}

// One schedule, two layers: env-level faults (torn WAL write) and
// backend-level faults (failed apply) armed through the SAME FaultSchedule,
// so a single test composes both without two fault vocabularies.
TEST_F(DegradationTest, EnvAndBackendFaultsComposeOnOneSchedule) {
  auto faulty = std::make_unique<FaultyBackend>(
      std::make_unique<HashTableBackend>(), &env_.schedule());
  FaultyBackend* backend = faulty.get();

  env_.schedule().Arm("backend.put", /*after=*/1, /*count=*/1,
                      Status::IoError("injected apply failure"));
  env_.schedule().Arm("env.append", /*after=*/0, /*count=*/1,
                      Status::IoError("injected torn write"));

  // Backend-level: second put fails.
  ASSERT_TRUE(backend->Put("k1", "v", true).ok());
  EXPECT_TRUE(backend->Put("k2", "v", true).IsIoError());
  ASSERT_TRUE(backend->Put("k3", "v", true).ok());

  // Env-level: first append through the same schedule fails.
  auto file = env_.NewWritableFile("/f", true);
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE((*file)->Append("x").IsIoError());
  ASSERT_TRUE((*file)->Append("x").ok());

  // One ledger counts both layers.
  EXPECT_EQ(env_.schedule().injected_failures(), 2u);
  EXPECT_EQ(backend->injected_failures(), 2u);
  EXPECT_EQ(env_.schedule().HitCount("backend.put"), 3u);
  EXPECT_EQ(env_.schedule().HitCount("env.append"), 2u);
}

}  // namespace
}  // namespace streamsi
