// Database checkpoints + durable state catalog (§4.1 "needs to be
// persistent", grown into a full durability lifecycle): restart work is
// bounded by data since the last checkpoint, the group-commit log's disk
// footprint stays bounded under sustained commits, a restarted process is
// ready to serve without re-declaring its schema, and checkpoints running
// concurrently with committers never lose an acked commit.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/streamsi.h"
#include "storage/lsm_backend.h"
#include "tests/test_util.h"

namespace streamsi {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  DatabaseOptions Options() {
    DatabaseOptions options;
    options.protocol = ProtocolType::kMvcc;
    options.backend = BackendType::kLsm;
    options.backend_options.sync_mode = SyncMode::kFsync;
    options.base_dir = dir_.path() + "/db";
    return options;
  }

  /// First life: declares the schema (two states, one explicit group).
  std::unique_ptr<Database> CreateDb(StateId* a, StateId* b, GroupId* g,
                                     DatabaseOptions options) {
    auto db = Database::Open(options);
    EXPECT_TRUE(db.ok());
    *a = (*(*db)->CreateState("a"))->id();
    *b = (*(*db)->CreateState("b"))->id();
    *g = (*db)->CreateGroup({*a, *b});
    EXPECT_TRUE((*db)->Recover().ok());
    return std::move(db).value();
  }

  /// Later lives: the catalog reopens everything — no re-declaration.
  std::unique_ptr<Database> ReopenDb(DatabaseOptions options) {
    auto db = Database::Open(options);
    EXPECT_TRUE(db.ok());
    return std::move(db).value();
  }

  static void CommitPair(Database& db, StateId a, StateId b,
                         const std::string& key, const std::string& value) {
    auto t = db.Begin();
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(db.txn_manager().Write((*t)->txn(), a, key, value).ok());
    ASSERT_TRUE(db.txn_manager().Write((*t)->txn(), b, key, value).ok());
    ASSERT_TRUE((*t)->Commit().ok());
  }

  static std::string ReadOne(Database& db, StateId state,
                             const std::string& key) {
    auto t = db.Begin();
    EXPECT_TRUE(t.ok());
    std::string value;
    const Status status =
        db.txn_manager().Read((*t)->txn(), state, key, &value);
    EXPECT_TRUE((*t)->Commit().ok());
    return status.ok() ? value : "<" + status.ToString() + ">";
  }

  testing::TempDir dir_;
};

TEST_F(CheckpointTest, RestartToReadyWithoutRedeclaringStates) {
  StateId a, b;
  GroupId g;
  {
    auto db = CreateDb(&a, &b, &g, Options());
    CommitPair(*db, a, b, "k", "v1");
  }
  // Second life: Open alone reopens the catalog states and recovers.
  auto db = ReopenDb(Options());
  VersionedStore* store_a = db->FindState("a");
  VersionedStore* store_b = db->FindState("b");
  ASSERT_NE(store_a, nullptr);
  ASSERT_NE(store_b, nullptr);
  EXPECT_EQ(store_a->id(), a);
  EXPECT_EQ(store_b->id(), b);
  EXPECT_EQ(ReadOne(*db, a, "k"), "v1");
  EXPECT_EQ(ReadOne(*db, b, "k"), "v1");

  // Legacy-style re-declaration stays valid and idempotent: the existing
  // store comes back, ids are stable, no duplicate group appears.
  auto again = db->CreateState("a");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, store_a);
  const std::size_t groups_before = db->context().GroupCount();
  EXPECT_EQ(db->CreateGroup({a, b}), g);
  EXPECT_EQ(db->context().GroupCount(), groups_before);
  EXPECT_TRUE(db->Recover().ok());  // no-op second recovery

  // And the database accepts new work immediately.
  CommitPair(*db, a, b, "k2", "v2");
  EXPECT_EQ(ReadOne(*db, a, "k2"), "v2");
}

TEST_F(CheckpointTest, PermutedGroupRedeclarationDedupes) {
  StateId a, b;
  GroupId g;
  {
    auto db = CreateDb(&a, &b, &g, Options());
    CommitPair(*db, a, b, "k", "v");
  }
  auto db = ReopenDb(Options());
  // Same state SET in a different order is the same group.
  EXPECT_EQ(db->CreateGroup({b, a}), g);
  const std::size_t groups = db->context().GroupCount();
  EXPECT_EQ(db->CreateGroup({a, b}), g);
  EXPECT_EQ(db->context().GroupCount(), groups);
}

TEST_F(CheckpointTest, PartialCatalogUpgradeRecoversLateDeclaredStates) {
  // A directory whose catalog covers only SOME states (interrupted
  // upgrade): Open recovers the cataloged ones; the app re-declares the
  // rest (inline load) and calls Recover(), which must purge their torn
  // versions against the re-replayed group-log watermark — not no-op, and
  // not purge-everything at watermark 0.
  StateId a, b;
  GroupId g;
  Timestamp torn_cts = 0;
  {
    auto db = CreateDb(&a, &b, &g, Options());
    CommitPair(*db, a, b, "k", "good");
    // Torn commit on b only: versions persisted, no group record.
    VersionedStore* store_b = db->GetState(b);
    torn_cts = db->context().clock().Next();
    ASSERT_TRUE(store_b
                    ->ApplyCommitted(EncodeToString(std::string("k")),
                                     "torn", false, torn_cts,
                                     /*oldest_active=*/0, /*sync=*/true)
                    .ok());
  }
  // Rebuild the catalog with only state "a" + its singleton group.
  const std::string catalog_path = Options().base_dir + "/catalog.log";
  ASSERT_TRUE(fsutil::RemoveFile(catalog_path).ok());
  {
    StateCatalog partial(SyncMode::kFsync, 0);
    ASSERT_TRUE(partial.Open(catalog_path).ok());
    ASSERT_TRUE(partial
                    .AppendState({a, BackendType::kLsm, "a",
                                  Options().base_dir + "/state_a"})
                    .ok());
    ASSERT_TRUE(partial.AppendGroup({0, /*singleton=*/true, {a}}).ok());
    ASSERT_TRUE(partial.Close().ok());
  }
  auto db = ReopenDb(Options());  // recovers state a only
  ASSERT_EQ(db->FindState("b"), nullptr);
  auto sb = db->CreateState("b");  // upgrade path: inline load
  ASSERT_TRUE(sb.ok());
  ASSERT_EQ((*sb)->id(), b);
  db->CreateGroup({a, b});
  ASSERT_TRUE(db->Recover().ok());  // must purge b's torn version
  EXPECT_EQ(ReadOne(*db, b, "k"), "good")
      << "torn commit must be purged, committed data kept";
  EXPECT_EQ(ReadOne(*db, a, "k"), "good");
  // The clock moved past everything recovered.
  EXPECT_GE(db->context().clock().Now(), torn_cts);
}

TEST_F(CheckpointTest, CheckpointBoundsLogFootprintUnderSustainedCommits) {
  StateId a, b;
  GroupId g;
  auto db = CreateDb(&a, &b, &g, Options());
  std::uint64_t max_footprint = 0;
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 50; ++i) {
      CommitPair(*db, a, b, "k" + std::to_string(i),
                 "r" + std::to_string(round));
    }
    ASSERT_TRUE(db->Checkpoint().ok());
    EXPECT_EQ(db->group_log()->SegmentCount(), 1u)
        << "old segments must be pruned";
    max_footprint =
        std::max(max_footprint, db->group_log()->TotalSizeBytes());
  }
  // Post-checkpoint the log holds one cut record (+ nothing else), however
  // many commits history accumulated before it.
  EXPECT_LT(db->group_log()->TotalSizeBytes(), 1024u);
  EXPECT_EQ(db->CheckpointCount(), 5u);
  EXPECT_EQ(ReadOne(*db, a, "k49"), "r4");
}

TEST_F(CheckpointTest, RecoversFromCheckpointPlusTail) {
  StateId a, b;
  GroupId g;
  Timestamp last_cts = 0;
  {
    auto db = CreateDb(&a, &b, &g, Options());
    for (int i = 0; i < 20; ++i) {
      CommitPair(*db, a, b, "pre" + std::to_string(i), "x");
    }
    ASSERT_TRUE(db->Checkpoint().ok());
    // Post-checkpoint tail: commits after the cut live in the new segment.
    CommitPair(*db, a, b, "post", "tail");
    last_cts = db->context().LastCts(g);
  }
  // Replay must start from the checkpoint (one segment) and still see the
  // tail commit.
  GroupCommitLog::ReplayInfo info;
  auto replayed =
      GroupCommitLog::Replay(Options().base_dir + "/group_commits.log", &info);
  ASSERT_TRUE(replayed.ok());
  EXPECT_TRUE(info.from_checkpoint);
  EXPECT_EQ(info.segments_present, 1u);

  auto db = ReopenDb(Options());
  EXPECT_EQ(db->context().LastCts(g), last_cts);
  EXPECT_EQ(ReadOne(*db, a, "post"), "tail");
  EXPECT_EQ(ReadOne(*db, b, "post"), "tail");
  EXPECT_EQ(ReadOne(*db, a, "pre0"), "x");
}

TEST_F(CheckpointTest, BackgroundCheckpointerRunsAndBoundsTheLog) {
  StateId a, b;
  GroupId g;
  auto options = Options();
  options.checkpoint_interval_ms = 5;
  auto db = CreateDb(&a, &b, &g, options);
  for (int i = 0; i < 50; ++i) {
    CommitPair(*db, a, b, "k" + std::to_string(i), "v");
  }
  for (int i = 0; i < 2000 && db->CheckpointCount() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(db->CheckpointCount(), 1u);
  EXPECT_LE(db->group_log()->SegmentCount(), 2u);
  EXPECT_EQ(ReadOne(*db, a, "k49"), "v");
}

TEST_F(CheckpointTest, CommitPathNeverFlushesInline) {
  // Tiny memtable so the commit workload seals constantly: every flush and
  // compaction must land on the LSM background worker, never a committer.
  StateId a, b;
  GroupId g;
  auto options = Options();
  options.backend_options.memtable_bytes = 4 * 1024;
  options.backend_options.l0_compaction_trigger = 2;
  auto db = CreateDb(&a, &b, &g, options);
  const std::string value(256, 'x');
  for (int i = 0; i < 200; ++i) {
    CommitPair(*db, a, b, "k" + std::to_string(i % 32), value);
  }
  ASSERT_TRUE(db->Checkpoint().ok());
  for (StateId state : {a, b}) {
    auto* backend = db->GetState(state)->backend();
    ASSERT_EQ(backend->Name(), "lsm");
    auto* lsm = static_cast<LsmBackend*>(backend);
    EXPECT_GE(lsm->FlushCount(), 1u);
    EXPECT_EQ(lsm->FlushCount(), lsm->BackgroundFlushCount())
        << "a flush ran inline on a foreground thread";
    EXPECT_EQ(lsm->CompactionCount(), lsm->BackgroundCompactionCount())
        << "a compaction ran inline on a foreground thread";
  }
  EXPECT_EQ(ReadOne(*db, a, "k0"), value);
}

TEST_F(CheckpointTest, ConcurrentCommittersNeverLoseAckedCommits) {
  // The drain step of the checkpoint protocol: a commit whose durable
  // record landed in a pre-rotation segment must be covered by the cut
  // before the old chain is deleted. Committers hammer one group while
  // checkpoints run continuously; every commit acked before the "crash"
  // must be visible after recovery, and the two grouped states must stay
  // identical throughout.
  StateId a, b;
  GroupId g;
  constexpr int kThreads = 4;
  constexpr int kCommitsPerThread = 60;
  std::vector<std::string> last_acked(kThreads);
  {
    auto options = Options();
    options.backend_options.sync_mode = SyncMode::kSimulated;
    options.backend_options.simulated_sync_micros = 50;
    auto db = CreateDb(&a, &b, &g, options);
    std::atomic<bool> stop{false};
    std::thread checkpointer([&] {
      while (!stop.load(std::memory_order_acquire)) {
        ASSERT_TRUE(db->Checkpoint().ok());
      }
    });
    std::thread reader([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto t = db->Begin();
        ASSERT_TRUE(t.ok());
        for (int w = 0; w < kThreads; ++w) {
          const std::string key = "w" + std::to_string(w);
          std::string va, vb;
          const Status sa =
              db->txn_manager().Read((*t)->txn(), a, key, &va);
          const Status sb =
              db->txn_manager().Read((*t)->txn(), b, key, &vb);
          ASSERT_EQ(sa.ok(), sb.ok()) << "states diverged mid-run";
          if (sa.ok()) ASSERT_EQ(va, vb) << "states diverged mid-run";
        }
        ASSERT_TRUE((*t)->Commit().ok());
      }
    });
    std::vector<std::thread> committers;
    for (int w = 0; w < kThreads; ++w) {
      committers.emplace_back([&, w] {
        const std::string key = "w" + std::to_string(w);
        for (int i = 0; i < kCommitsPerThread; ++i) {
          const std::string value = std::to_string(i);
          auto t = db->Begin();
          ASSERT_TRUE(t.ok());
          ASSERT_TRUE(
              db->txn_manager().Write((*t)->txn(), a, key, value).ok());
          ASSERT_TRUE(
              db->txn_manager().Write((*t)->txn(), b, key, value).ok());
          ASSERT_TRUE((*t)->Commit().ok());
          last_acked[static_cast<std::size_t>(w)] = value;
        }
      });
    }
    for (auto& thread : committers) thread.join();
    stop.store(true, std::memory_order_release);
    checkpointer.join();
    reader.join();
    // Crash: destructors, no clean shutdown protocol.
  }
  auto db = ReopenDb(Options());
  for (int w = 0; w < kThreads; ++w) {
    const std::string key = "w" + std::to_string(w);
    EXPECT_EQ(ReadOne(*db, a, key), last_acked[static_cast<std::size_t>(w)])
        << "acked commit lost across checkpoint + crash (state a, " << key
        << ")";
    EXPECT_EQ(ReadOne(*db, b, key), last_acked[static_cast<std::size_t>(w)])
        << "acked commit lost across checkpoint + crash (state b, " << key
        << ")";
  }
}

}  // namespace
}  // namespace streamsi
