// Failure injection: IO errors in the base table during the write-through
// phase of a commit must never publish a partial transaction, the
// in-memory state must stay consistent with what readers can see, and a
// checkpoint failing at any of its fault points must leave the previous
// log-segment chain authoritative while commits keep flowing.

#include <gtest/gtest.h>

#include "core/streamsi.h"
#include "storage/faulty_backend.h"
#include "storage/hash_backend.h"
#include "tests/test_util.h"

namespace streamsi {
namespace {

/// Builds a context + store + manager wired to a FaultyBackend directly
/// (Database always constructs its own backends, so this harness assembles
/// the pieces by hand).
struct Harness {
  Harness() {
    auto faulty =
        std::make_unique<FaultyBackend>(std::make_unique<HashTableBackend>());
    backend = faulty.get();
    StoreOptions store_options;
    store = std::make_unique<VersionedStore>(0, "s", std::move(faulty),
                                             store_options);
    group = context.RegisterGroup({context.RegisterState("s")});
    protocol = MakeProtocol(ProtocolType::kMvcc, &context);
    manager = std::make_unique<TransactionManager>(
        &context, protocol.get(),
        [this](StateId id) { return id == 0 ? store.get() : nullptr; },
        nullptr, false);
  }

  StateContext context;
  FaultyBackend* backend;
  std::unique_ptr<VersionedStore> store;
  GroupId group;
  std::unique_ptr<ConcurrencyProtocol> protocol;
  std::unique_ptr<TransactionManager> manager;
};

TEST(FailureInjectionTest, WriteFailureAbortsCommitCleanly) {
  Harness h;
  // A successful baseline commit.
  {
    auto t = h.manager->Begin();
    ASSERT_TRUE(h.manager->Write((*t)->txn(), 0, "k", "good").ok());
    ASSERT_TRUE(h.manager->Commit((*t)->txn()).ok());
  }

  // Now fail the backend write during commit.
  h.backend->FailNextWrites(1);
  {
    auto t = h.manager->Begin();
    ASSERT_TRUE(h.manager->Write((*t)->txn(), 0, "k", "doomed").ok());
    const Status status = h.manager->Commit((*t)->txn());
    EXPECT_TRUE(status.IsIoError()) << status.ToString();
  }
  EXPECT_EQ(h.backend->injected_failures(), 1u);

  // Readers must still see the previous value — the failed commit's version
  // was purged from memory, and LastCTS never advanced for it.
  {
    auto t = h.manager->Begin();
    std::string value;
    ASSERT_TRUE(h.manager->Read((*t)->txn(), 0, "k", &value).ok());
    EXPECT_EQ(value, "good");
    ASSERT_TRUE(h.manager->Commit((*t)->txn()).ok());
  }
}

TEST(FailureInjectionTest, MultiKeyCommitWithMidBatchFailure) {
  Harness h;
  {
    auto t = h.manager->Begin();
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(h.manager
                      ->Write((*t)->txn(), 0, "k" + std::to_string(i),
                              "base")
                      .ok());
    }
    ASSERT_TRUE(h.manager->Commit((*t)->txn()).ok());
  }
  // Fail the third write of the next commit batch.
  h.backend->FailNextWrites(0);
  {
    auto t = h.manager->Begin();
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(h.manager
                      ->Write((*t)->txn(), 0, "k" + std::to_string(i),
                              "new")
                      .ok());
    }
    // Arm after writes, before commit: fails during ApplyWriteSet.
    h.backend->FailNextWrites(1);
    EXPECT_FALSE(h.manager->Commit((*t)->txn()).ok());
  }
  // No key may show the new value.
  {
    auto t = h.manager->Begin();
    for (int i = 0; i < 4; ++i) {
      std::string value;
      ASSERT_TRUE(
          h.manager->Read((*t)->txn(), 0, "k" + std::to_string(i), &value)
              .ok());
      EXPECT_EQ(value, "base") << "partial commit leaked at key " << i;
    }
    ASSERT_TRUE(h.manager->Commit((*t)->txn()).ok());
  }
}

TEST(FailureInjectionTest, SystemRecoversAfterFailuresClear) {
  Harness h;
  h.backend->FailNextWrites(3);
  int failures = 0;
  for (int attempt = 0; attempt < 10; ++attempt) {
    auto t = h.manager->Begin();
    ASSERT_TRUE(h.manager->Write((*t)->txn(), 0, "k", "v" +
                                 std::to_string(attempt)).ok());
    if (!h.manager->Commit((*t)->txn()).ok()) {
      ++failures;
      continue;
    }
  }
  // Two commits fail, not three: the first failed commit's rollback is
  // written through to the backend (so an aborted version can never
  // resurrect from the base table after recovery), and that best-effort
  // rollback write consumes the second injected failure.
  EXPECT_EQ(failures, 2);
  EXPECT_EQ(h.backend->injected_failures(), 3u);
  auto t = h.manager->Begin();
  std::string value;
  ASSERT_TRUE(h.manager->Read((*t)->txn(), 0, "k", &value).ok());
  EXPECT_EQ(value, "v9");
  ASSERT_TRUE(h.manager->Commit((*t)->txn()).ok());
}

TEST(FailureInjectionTest, FailedCheckpointsNeverInterruptCommitTraffic) {
  // Every checkpoint fault point fires mid-traffic; each failed checkpoint
  // must leave the database fully writable and every acked commit
  // recoverable from the surviving chain.
  testing::TempDir dir;
  DatabaseOptions options;
  options.protocol = ProtocolType::kMvcc;
  options.backend = BackendType::kLsm;
  options.backend_options.sync_mode = SyncMode::kFsync;
  options.base_dir = dir.path() + "/db";
  StateId state;
  {
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    state = (*(*db)->CreateState("s"))->id();
    ASSERT_TRUE((*db)->Recover().ok());

    const GroupCommitLog::CheckpointFault faults[] = {
        GroupCommitLog::CheckpointFault::kBeforeRotate,
        GroupCommitLog::CheckpointFault::kBeforeCheckpointRecord,
        GroupCommitLog::CheckpointFault::kBeforePrune,
    };
    int i = 0;
    for (const auto fault : faults) {
      auto t = (*db)->Begin();
      ASSERT_TRUE((*db)
                      ->txn_manager()
                      .Write((*t)->txn(), state, "k" + std::to_string(i),
                             "v" + std::to_string(i))
                      .ok());
      ASSERT_TRUE((*t)->Commit().ok());
      (*db)->group_log()->InjectCheckpointFault(fault);
      EXPECT_FALSE((*db)->Checkpoint().ok());
      ++i;
    }
    // A clean checkpoint after the faults truncates everything.
    ASSERT_TRUE((*db)->Checkpoint().ok());
    EXPECT_EQ((*db)->group_log()->SegmentCount(), 1u);
  }
  auto db = Database::Open(options);  // catalog reopens the state
  ASSERT_TRUE(db.ok());
  auto t = (*db)->Begin();
  for (int i = 0; i < 3; ++i) {
    std::string value;
    ASSERT_TRUE((*db)
                    ->txn_manager()
                    .Read((*t)->txn(), state, "k" + std::to_string(i),
                          &value)
                    .ok());
    EXPECT_EQ(value, "v" + std::to_string(i));
  }
  ASSERT_TRUE((*t)->Commit().ok());
}

}  // namespace
}  // namespace streamsi
