// Isolation levels (§3: "different isolation levels should provide
// different levels of visibility").

#include <gtest/gtest.h>

#include "core/streamsi.h"

namespace streamsi {
namespace {

class IsolationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.protocol = ProtocolType::kMvcc;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    auto state = db_->CreateState("s");
    table_ = TransactionalTable<std::string, std::string>(&db_->txn_manager(),
                                                          *state);
  }

  void Commit(const std::string& k, const std::string& v) {
    auto t = db_->Begin();
    ASSERT_TRUE(table_.Put((*t)->txn(), k, v).ok());
    ASSERT_TRUE((*t)->Commit().ok());
  }

  std::unique_ptr<Database> db_;
  TransactionalTable<std::string, std::string> table_;
};

TEST_F(IsolationTest, SnapshotGivesRepeatableReads) {
  Commit("k", "v1");
  auto reader = db_->Begin();
  EXPECT_EQ(*table_.Get((*reader)->txn(), "k"), "v1");
  Commit("k", "v2");
  EXPECT_EQ(*table_.Get((*reader)->txn(), "k"), "v1");  // repeatable
  ASSERT_TRUE((*reader)->Commit().ok());
}

TEST_F(IsolationTest, ReadCommittedSeesNewerCommits) {
  Commit("k", "v1");
  auto reader = db_->Begin();
  (*reader)->txn().set_isolation(IsolationLevel::kReadCommitted);
  EXPECT_EQ(*table_.Get((*reader)->txn(), "k"), "v1");
  Commit("k", "v2");
  // Non-repeatable read is the *expected* behaviour at this level.
  EXPECT_EQ(*table_.Get((*reader)->txn(), "k"), "v2");
  ASSERT_TRUE((*reader)->Commit().ok());
}

TEST_F(IsolationTest, ReadCommittedNeverSeesUncommitted) {
  auto writer = db_->Begin();
  ASSERT_TRUE(table_.Put((*writer)->txn(), "k", "dirty").ok());

  auto reader = db_->Begin();
  (*reader)->txn().set_isolation(IsolationLevel::kReadCommitted);
  EXPECT_TRUE(table_.Get((*reader)->txn(), "k").status().IsNotFound());
  ASSERT_TRUE((*reader)->Commit().ok());
  ASSERT_TRUE((*writer)->Commit().ok());
}

TEST_F(IsolationTest, ReadCommittedStillReadsOwnWrites) {
  auto t = db_->Begin();
  (*t)->txn().set_isolation(IsolationLevel::kReadCommitted);
  ASSERT_TRUE(table_.Put((*t)->txn(), "k", "own").ok());
  EXPECT_EQ(*table_.Get((*t)->txn(), "k"), "own");
  ASSERT_TRUE((*t)->Commit().ok());
}

TEST_F(IsolationTest, ReadCommittedScanSeesLatest) {
  Commit("a", "1");
  auto reader = db_->Begin();
  // Pin a snapshot first under default isolation.
  EXPECT_EQ(*table_.Get((*reader)->txn(), "a"), "1");
  Commit("b", "2");

  // Snapshot scan: still one row.
  std::size_t rows = 0;
  ASSERT_TRUE(table_
                  .Scan((*reader)->txn(),
                        [&](const std::string&, const std::string&) {
                          ++rows;
                          return true;
                        })
                  .ok());
  EXPECT_EQ(rows, 1u);

  // Switch to read-committed: the scan now sees both rows.
  (*reader)->txn().set_isolation(IsolationLevel::kReadCommitted);
  rows = 0;
  ASSERT_TRUE(table_
                  .Scan((*reader)->txn(),
                        [&](const std::string&, const std::string&) {
                          ++rows;
                          return true;
                        })
                  .ok());
  EXPECT_EQ(rows, 2u);
  ASSERT_TRUE((*reader)->Commit().ok());
}

TEST_F(IsolationTest, StatsCountReadsAndInstalls) {
  Commit("k", "v1");
  Commit("k", "v2");
  auto t = db_->Begin();
  (void)table_.Get((*t)->txn(), "k");
  (void)table_.Get((*t)->txn(), "missing");
  ASSERT_TRUE((*t)->Commit().ok());
  const StoreStats& stats = db_->GetState(table_.id())->stats();
  EXPECT_GE(stats.reads.load(), 2u);
  EXPECT_GE(stats.read_misses.load(), 1u);
  EXPECT_EQ(stats.installs.load(), 2u);
}

}  // namespace
}  // namespace streamsi
