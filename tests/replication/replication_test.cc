// Replication link tests: primary ships, follower replays, promotion
// recovers. Everything runs in manual-pump mode (no background ship/apply
// threads) against a single FaultEnv hosting both directories, so every
// interleaving is driven explicitly and fully deterministic.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_env.h"
#include "core/database.h"
#include "replication/log_shipper.h"
#include "replication/transport.h"

namespace streamsi {
namespace {

constexpr char kPrimaryDir[] = "/primary";
constexpr char kFollowerDir[] = "/follower";

DatabaseOptions PrimaryOptions(Env* env, ShipTransport* transport) {
  DatabaseOptions options;
  options.protocol = ProtocolType::kMvcc;
  options.backend = BackendType::kLsm;
  options.backend_options.sync_mode = SyncMode::kFsync;
  options.backend_options.env = env;
  options.env = env;
  options.base_dir = kPrimaryDir;
  options.replication.role = ReplicationRole::kPrimary;
  options.replication.transport = transport;
  options.replication.manual_pump = true;
  return options;
}

DatabaseOptions FollowerOptions(Env* env, bool verify_crc = true) {
  DatabaseOptions options;
  options.protocol = ProtocolType::kMvcc;
  options.backend = BackendType::kLsm;
  options.backend_options.sync_mode = SyncMode::kFsync;
  options.backend_options.env = env;
  options.env = env;
  options.base_dir = kFollowerDir;
  options.replication.role = ReplicationRole::kFollower;
  options.replication.manual_pump = true;
  options.replication.verify_shipped_crc = verify_crc;
  return options;
}

/// Commits `key` -> `value` into both states as one group transaction.
void CommitPair(Database& db, StateId a, StateId b, const std::string& key,
                const std::string& value) {
  auto t = db.Begin();
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(db.txn_manager().Write((*t)->txn(), a, key, value).ok());
  ASSERT_TRUE(db.txn_manager().Write((*t)->txn(), b, key, value).ok());
  ASSERT_TRUE((*t)->Commit().ok());
}

/// Reads `key` from `state` in a fresh snapshot; "" = not found.
std::string ReadOne(Database& db, StateId state, const std::string& key) {
  auto t = db.Begin();
  EXPECT_TRUE(t.ok());
  std::string value;
  const Status status = db.txn_manager().Read((*t)->txn(), state, key, &value);
  EXPECT_TRUE((*t)->Commit().ok());
  if (status.IsNotFound()) return "";
  EXPECT_TRUE(status.ok()) << status.ToString();
  return value;
}

class ReplicationTest : public ::testing::Test {
 protected:
  FaultEnv env_{/*seed=*/42};
  EnvFileTransport transport_{&env_, kFollowerDir};
};

TEST_F(ReplicationTest, PrimaryShipsFollowerServesSnapshotReads) {
  auto primary = Database::Open(PrimaryOptions(&env_, &transport_));
  ASSERT_TRUE(primary.ok()) << primary.status().ToString();
  const StateId a = (*(*primary)->CreateState("a"))->id();
  const StateId b = (*(*primary)->CreateState("b"))->id();
  const GroupId g = (*primary)->CreateGroup({a, b});
  ASSERT_NE(g, kInvalidGroupId);
  ASSERT_TRUE((*primary)->Recover().ok());
  for (int i = 0; i < 10; ++i) {
    CommitPair(**primary, a, b, "k" + std::to_string(i), std::to_string(i));
  }
  ASSERT_TRUE((*primary)->ShipNow().ok());

  auto follower = Database::Open(FollowerOptions(&env_));
  ASSERT_TRUE(follower.ok()) << follower.status().ToString();
  ASSERT_TRUE((*follower)->ApplyShippedNow().ok());

  // Schema arrived through the shipped catalog: same names, same ids.
  VersionedStore* fa = (*follower)->FindState("a");
  VersionedStore* fb = (*follower)->FindState("b");
  ASSERT_NE(fa, nullptr);
  ASSERT_NE(fb, nullptr);
  EXPECT_EQ(fa->id(), a);
  EXPECT_EQ(fb->id(), b);
  for (int i = 0; i < 10; ++i) {
    const std::string key = "k" + std::to_string(i);
    EXPECT_EQ(ReadOne(**follower, a, key), std::to_string(i));
    EXPECT_EQ(ReadOne(**follower, b, key), std::to_string(i));
  }

  const HealthReport health = (*follower)->Health();
  EXPECT_TRUE(health.replication_configured);
  EXPECT_TRUE(health.follower);
  EXPECT_FALSE(health.promoted);
  EXPECT_GT(health.replication.commits_applied, 0u);
  EXPECT_EQ(health.replication.staleness_lag, 0u);
  EXPECT_EQ(health.replication.follower_watermark,
            health.replication.primary_watermark);
}

TEST_F(ReplicationTest, FollowerRejectsWritesSchemaChangesAndCheckpoints) {
  auto primary = Database::Open(PrimaryOptions(&env_, &transport_));
  ASSERT_TRUE(primary.ok());
  const StateId a = (*(*primary)->CreateState("a"))->id();
  const StateId b = (*(*primary)->CreateState("b"))->id();
  ASSERT_NE((*primary)->CreateGroup({a, b}), kInvalidGroupId);
  ASSERT_TRUE((*primary)->Recover().ok());
  CommitPair(**primary, a, b, "k", "v");
  ASSERT_TRUE((*primary)->ShipNow().ok());

  auto follower = Database::Open(FollowerOptions(&env_));
  ASSERT_TRUE(follower.ok());
  ASSERT_TRUE((*follower)->ApplyShippedNow().ok());
  EXPECT_TRUE((*follower)->IsUnpromotedFollower());

  // Write commit: fails fast with Unavailable at the admission gate.
  auto t = (*follower)->Begin();
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE((*follower)->txn_manager().Write((*t)->txn(), a, "k", "w").ok());
  EXPECT_TRUE((*t)->Commit().IsUnavailable());
  // The rejected write never became visible.
  EXPECT_EQ(ReadOne(**follower, a, "k"), "v");

  // Schema is replicated, not declared locally.
  EXPECT_TRUE((*follower)->CreateState("local").status().IsUnavailable());
  EXPECT_EQ((*follower)->CreateGroup({a}), kInvalidGroupId);

  // Checkpoints would prune the shipped chain — refused.
  EXPECT_TRUE((*follower)->Checkpoint().IsUnavailable());
  EXPECT_GT((*follower)->Health().degraded_commit_rejections, 0u);
}

TEST_F(ReplicationTest, StalenessLagIsMonotoneAndConvergesToZero) {
  auto primary = Database::Open(PrimaryOptions(&env_, &transport_));
  ASSERT_TRUE(primary.ok());
  const StateId a = (*(*primary)->CreateState("a"))->id();
  const StateId b = (*(*primary)->CreateState("b"))->id();
  ASSERT_NE((*primary)->CreateGroup({a, b}), kInvalidGroupId);
  ASSERT_TRUE((*primary)->Recover().ok());
  CommitPair(**primary, a, b, "k", "v0");
  ASSERT_TRUE((*primary)->ShipNow().ok());

  auto follower = Database::Open(FollowerOptions(&env_));
  ASSERT_TRUE(follower.ok());

  Timestamp last_primary_watermark = 0;
  for (int round = 0; round < 5; ++round) {
    CommitPair(**primary, a, b, "k", "v" + std::to_string(round + 1));
    ASSERT_TRUE((*primary)->ShipNow().ok());
    ASSERT_TRUE((*follower)->ApplyShippedNow().ok());
    const ReplicationStats stats = (*follower)->Health().replication;
    // Monotone non-negative, and zero once the round's apply caught up
    // against the idle primary.
    EXPECT_GE(stats.primary_watermark, last_primary_watermark);
    EXPECT_EQ(stats.staleness_lag, 0u);
    EXPECT_EQ(stats.follower_watermark, stats.primary_watermark);
    last_primary_watermark = stats.primary_watermark;
  }

  // A watermark the follower has not caught up to yet reports as positive
  // lag (the beacon advances ahead of the applied cut).
  const Timestamp ahead = last_primary_watermark + 100;
  ASSERT_TRUE(env_.WriteStringToFileAtomic(
                      std::string(kFollowerDir) + "/" + kPrimaryWatermarkFile,
                      std::to_string(ahead))
                  .ok());
  ASSERT_TRUE((*follower)->ApplyShippedNow().ok());
  const ReplicationStats stats = (*follower)->Health().replication;
  EXPECT_EQ(stats.primary_watermark, ahead);
  EXPECT_EQ(stats.staleness_lag, ahead - stats.follower_watermark);
  EXPECT_GT(stats.staleness_lag, 0u);
}

// Satellite: a hole in the shipped segment chain must be refused as
// Corruption (sticky, reported through Health()) — never skipped over.
TEST_F(ReplicationTest, ShipStreamGapIsRefusedAsCorruption) {
  auto primary = Database::Open(PrimaryOptions(&env_, &transport_));
  ASSERT_TRUE(primary.ok());
  const StateId a = (*(*primary)->CreateState("a"))->id();
  const StateId b = (*(*primary)->CreateState("b"))->id();
  ASSERT_NE((*primary)->CreateGroup({a, b}), kInvalidGroupId);
  ASSERT_TRUE((*primary)->Recover().ok());
  // Build a three-segment chain: the shipper pinned the retain floor at
  // construction, so the checkpoints rotate but never prune.
  CommitPair(**primary, a, b, "k0", "v0");
  ASSERT_TRUE((*primary)->Checkpoint().ok());
  CommitPair(**primary, a, b, "k1", "v1");
  ASSERT_TRUE((*primary)->Checkpoint().ok());
  CommitPair(**primary, a, b, "k2", "v2");
  ASSERT_TRUE((*primary)->ShipNow().ok());

  // Punch a hole: the middle segment vanishes from the follower while a
  // later one exists.
  ASSERT_TRUE(
      env_.RemoveFile(std::string(kFollowerDir) + "/group_commits.log.000001")
          .ok());

  auto follower = Database::Open(FollowerOptions(&env_));
  ASSERT_TRUE(follower.ok());
  const Status status = (*follower)->ApplyShippedNow();
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();

  // Sticky: the refusal does not heal, and the instance reports failed.
  EXPECT_TRUE((*follower)->ApplyShippedNow().IsCorruption());
  const HealthReport health = (*follower)->Health();
  EXPECT_EQ(health.state, DatabaseHealth::kFailed);
  EXPECT_FALSE(health.replication.link_healthy);
  EXPECT_TRUE(health.replication.last_error.IsCorruption());
  // Promotion of a follower whose integrity is in doubt is refused (the
  // drain propagates the sticky Corruption).
  const Status promote = (*follower)->Promote();
  EXPECT_FALSE(promote.ok());
  EXPECT_TRUE((*follower)->IsUnpromotedFollower());
}

// A chain that does not start at the follower's birth (the primary pruned
// it before this follower attached) is a gap too: the checkpoint cut
// references commits newer than anything applied.
TEST_F(ReplicationTest, ChainMissingItsStartIsRefusedAsCorruption) {
  auto primary = Database::Open(PrimaryOptions(&env_, &transport_));
  ASSERT_TRUE(primary.ok());
  const StateId a = (*(*primary)->CreateState("a"))->id();
  const StateId b = (*(*primary)->CreateState("b"))->id();
  ASSERT_NE((*primary)->CreateGroup({a, b}), kInvalidGroupId);
  ASSERT_TRUE((*primary)->Recover().ok());
  CommitPair(**primary, a, b, "k0", "v0");
  ASSERT_TRUE((*primary)->Checkpoint().ok());
  CommitPair(**primary, a, b, "k1", "v1");
  ASSERT_TRUE((*primary)->ShipNow().ok());

  // Drop segment 0: the follower's copy now starts mid-chain, at a segment
  // whose checkpoint cut covers commits it never saw.
  ASSERT_TRUE(
      env_.RemoveFile(std::string(kFollowerDir) + "/group_commits.log").ok());

  auto follower = Database::Open(FollowerOptions(&env_));
  ASSERT_TRUE(follower.ok());
  const Status status = (*follower)->ApplyShippedNow();
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
  EXPECT_EQ((*follower)->Health().state, DatabaseHealth::kFailed);
}

// Segments landing before their catalog chunk is a transient condition
// (unknown state/group), not corruption: the applier retries and succeeds
// once the catalog arrives.
TEST_F(ReplicationTest, SegmentsBeforeCatalogRetryUntilCatalogArrives) {
  auto primary = Database::Open(PrimaryOptions(&env_, &transport_));
  ASSERT_TRUE(primary.ok());
  const StateId a = (*(*primary)->CreateState("a"))->id();
  const StateId b = (*(*primary)->CreateState("b"))->id();
  ASSERT_NE((*primary)->CreateGroup({a, b}), kInvalidGroupId);
  ASSERT_TRUE((*primary)->Recover().ok());
  CommitPair(**primary, a, b, "k", "v");

  // Hand-copy ONLY the segment file (the shipper would send the catalog
  // first; this simulates its chunk being lost/slow).
  std::string segment;
  ASSERT_TRUE(env_
                  .ReadFileToString(
                      std::string(kPrimaryDir) + "/group_commits.log", &segment)
                  .ok());
  ASSERT_TRUE(env_.CreateDirIfMissing(kFollowerDir).ok());
  ASSERT_TRUE(env_
                  .WriteStringToFileAtomic(
                      std::string(kFollowerDir) + "/group_commits.log", segment)
                  .ok());

  auto follower = Database::Open(FollowerOptions(&env_));
  ASSERT_TRUE(follower.ok());
  const Status behind = (*follower)->ApplyShippedNow();
  EXPECT_FALSE(behind.ok());
  EXPECT_FALSE(behind.IsCorruption()) << behind.ToString();
  EXPECT_NE((*follower)->Health().state, DatabaseHealth::kFailed);

  // Catalog lands; the same frames now apply.
  ASSERT_TRUE((*primary)->ShipNow().ok());
  ASSERT_TRUE((*follower)->ApplyShippedNow().ok());
  EXPECT_EQ(ReadOne(**follower, a, "k"), "v");
  EXPECT_EQ(ReadOne(**follower, b, "k"), "v");
}

// A mid-frame tail (the chunk boundary the transport itself never
// produces, but a crashed sender might leave) makes the applier WAIT — and
// the shipper completes it byte-identically on its next rounds.
TEST_F(ReplicationTest, TornTailWaitsThenAppliesItsCompletion) {
  auto primary = Database::Open(PrimaryOptions(&env_, &transport_));
  ASSERT_TRUE(primary.ok());
  const StateId a = (*(*primary)->CreateState("a"))->id();
  const StateId b = (*(*primary)->CreateState("b"))->id();
  ASSERT_NE((*primary)->CreateGroup({a, b}), kInvalidGroupId);
  ASSERT_TRUE((*primary)->Recover().ok());
  CommitPair(**primary, a, b, "k", "v1");
  ASSERT_TRUE((*primary)->ShipNow().ok());

  auto follower = Database::Open(FollowerOptions(&env_));
  ASSERT_TRUE(follower.ok());
  ASSERT_TRUE((*follower)->ApplyShippedNow().ok());
  EXPECT_EQ(ReadOne(**follower, a, "k"), "v1");

  // Commit v2 on the primary, then tear: append only a few bytes of the
  // new frame to the follower's copy, as a crashing sender would.
  CommitPair(**primary, a, b, "k", "v2");
  const std::string primary_segment =
      std::string(kPrimaryDir) + "/group_commits.log";
  const std::string follower_segment =
      std::string(kFollowerDir) + "/group_commits.log";
  std::string full;
  ASSERT_TRUE(env_.ReadFileToString(primary_segment, &full).ok());
  std::uint64_t have = 0;
  ASSERT_TRUE(env_.FileSize(follower_segment, &have).ok());
  ASSERT_GT(full.size(), have + 4);
  {
    auto file = env_.NewWritableFile(follower_segment, /*truncate=*/false);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(
                        std::string_view(full).substr(have, 4))
                    .ok());
    ASSERT_TRUE((*file)->Sync().ok());
    ASSERT_TRUE((*file)->Close().ok());
  }

  // The applier waits on the incomplete frame: no error, no skip, v2 not
  // visible yet.
  ASSERT_TRUE((*follower)->ApplyShippedNow().ok());
  EXPECT_EQ(ReadOne(**follower, a, "k"), "v1");
  EXPECT_NE((*follower)->Health().state, DatabaseHealth::kFailed);

  // The shipper re-syncs from the receiver's size: the completion bytes are
  // identical to what the torn sender would have sent. (The first round may
  // fail while the transport drops its stale cached handle.)
  Status shipped = (*primary)->ShipNow();
  if (!shipped.ok()) shipped = (*primary)->ShipNow();
  ASSERT_TRUE(shipped.ok()) << shipped.ToString();
  ASSERT_TRUE((*follower)->ApplyShippedNow().ok());
  EXPECT_EQ(ReadOne(**follower, a, "k"), "v2");
  EXPECT_EQ(ReadOne(**follower, b, "k"), "v2");
}

TEST_F(ReplicationTest, PromotionServesAckedCommitsAndAcceptsWrites) {
  StateId a = kInvalidStateId;
  StateId b = kInvalidStateId;
  {
    auto primary = Database::Open(PrimaryOptions(&env_, &transport_));
    ASSERT_TRUE(primary.ok());
    a = (*(*primary)->CreateState("a"))->id();
    b = (*(*primary)->CreateState("b"))->id();
    ASSERT_NE((*primary)->CreateGroup({a, b}), kInvalidGroupId);
    ASSERT_TRUE((*primary)->Recover().ok());
    for (int i = 0; i < 5; ++i) {
      CommitPair(**primary, a, b, "k" + std::to_string(i), std::to_string(i));
    }
    ASSERT_TRUE((*primary)->ShipNow().ok());
  }  // primary gone

  auto follower = Database::Open(FollowerOptions(&env_));
  ASSERT_TRUE(follower.ok());
  ASSERT_TRUE((*follower)->ApplyShippedNow().ok());
  ASSERT_TRUE((*follower)->Promote().ok()) << "promotion failed";
  EXPECT_FALSE((*follower)->IsUnpromotedFollower());
  EXPECT_TRUE((*follower)->Promote().ok());  // idempotent

  // Everything acked on the dead primary is served.
  for (int i = 0; i < 5; ++i) {
    const std::string key = "k" + std::to_string(i);
    EXPECT_EQ(ReadOne(**follower, a, key), std::to_string(i));
    EXPECT_EQ(ReadOne(**follower, b, key), std::to_string(i));
  }
  // And the promoted node is a writable database again.
  CommitPair(**follower, a, b, "new", "after-promotion");
  EXPECT_EQ(ReadOne(**follower, a, "new"), "after-promotion");
  EXPECT_TRUE((*follower)->Checkpoint().ok());
  const HealthReport health = (*follower)->Health();
  EXPECT_TRUE(health.promoted);
  EXPECT_FALSE(health.follower);
}

// A follower restart is a plain re-apply: the shipped chain is complete
// from its birth (an unpromoted follower never prunes).
TEST_F(ReplicationTest, FollowerRestartReappliesTheWholeChain) {
  auto primary = Database::Open(PrimaryOptions(&env_, &transport_));
  ASSERT_TRUE(primary.ok());
  const StateId a = (*(*primary)->CreateState("a"))->id();
  const StateId b = (*(*primary)->CreateState("b"))->id();
  ASSERT_NE((*primary)->CreateGroup({a, b}), kInvalidGroupId);
  ASSERT_TRUE((*primary)->Recover().ok());
  CommitPair(**primary, a, b, "k", "v1");
  ASSERT_TRUE((*primary)->ShipNow().ok());

  {
    auto follower = Database::Open(FollowerOptions(&env_));
    ASSERT_TRUE(follower.ok());
    ASSERT_TRUE((*follower)->ApplyShippedNow().ok());
    EXPECT_EQ(ReadOne(**follower, a, "k"), "v1");
  }  // follower restarts

  CommitPair(**primary, a, b, "k", "v2");
  ASSERT_TRUE((*primary)->ShipNow().ok());

  auto follower = Database::Open(FollowerOptions(&env_));
  ASSERT_TRUE(follower.ok());
  ASSERT_TRUE((*follower)->ApplyShippedNow().ok());
  EXPECT_EQ(ReadOne(**follower, a, "k"), "v2");
  EXPECT_EQ(ReadOne(**follower, b, "k"), "v2");
  EXPECT_EQ((*follower)->Health().replication.staleness_lag, 0u);
}

// Background mode smoke test: real ship/apply threads converge without
// manual pumping.
TEST_F(ReplicationTest, BackgroundThreadsConverge) {
  DatabaseOptions popts = PrimaryOptions(&env_, &transport_);
  popts.replication.manual_pump = false;
  popts.replication.ship_interval_ms = 1;
  auto primary = Database::Open(popts);
  ASSERT_TRUE(primary.ok());
  const StateId a = (*(*primary)->CreateState("a"))->id();
  const StateId b = (*(*primary)->CreateState("b"))->id();
  ASSERT_NE((*primary)->CreateGroup({a, b}), kInvalidGroupId);
  ASSERT_TRUE((*primary)->Recover().ok());

  DatabaseOptions fopts = FollowerOptions(&env_);
  fopts.replication.manual_pump = false;
  fopts.replication.apply_interval_ms = 1;
  auto follower = Database::Open(fopts);
  ASSERT_TRUE(follower.ok());

  for (int i = 0; i < 50; ++i) {
    CommitPair(**primary, a, b, "k" + std::to_string(i % 7),
               std::to_string(i));
  }
  // Idle primary: the follower must converge to zero staleness.
  bool converged = false;
  for (int spin = 0; spin < 2000 && !converged; ++spin) {
    const ReplicationStats stats = (*follower)->Health().replication;
    converged = stats.commits_applied >= 50 && stats.staleness_lag == 0 &&
                stats.primary_watermark > 0;
    if (!converged) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_TRUE(converged);
  EXPECT_EQ(ReadOne(**follower, a, "k0"), ReadOne(**follower, b, "k0"));
}

}  // namespace
}  // namespace streamsi
