#include "mvcc/mvcc_object.h"

#include <gtest/gtest.h>

#include "common/coding.h"

namespace streamsi {
namespace {

TEST(MvccObjectTest, EmptyHasNoVisibleVersion) {
  MvccObject object(4);
  std::string value;
  EXPECT_FALSE(object.GetVisible(100, &value));
  EXPECT_EQ(object.LatestCts(), kInitialTs);
  EXPECT_FALSE(object.HasLiveVersion());
}

TEST(MvccObjectTest, InstallMakesVersionVisibleFromCts) {
  MvccObject object(4);
  ASSERT_TRUE(object.Install("v1", 10, 0).ok());
  std::string value;
  EXPECT_FALSE(object.GetVisible(9, &value));  // before cts
  ASSERT_TRUE(object.GetVisible(10, &value));
  EXPECT_EQ(value, "v1");
  ASSERT_TRUE(object.GetVisible(1000, &value));
  EXPECT_EQ(value, "v1");
}

TEST(MvccObjectTest, NewVersionShadowsOldForNewReaders) {
  MvccObject object(4);
  ASSERT_TRUE(object.Install("v1", 10, 0).ok());
  ASSERT_TRUE(object.Install("v2", 20, 0).ok());
  std::string value;
  // Snapshot between the two commits still sees v1 (time travel).
  ASSERT_TRUE(object.GetVisible(15, &value));
  EXPECT_EQ(value, "v1");
  ASSERT_TRUE(object.GetVisible(20, &value));
  EXPECT_EQ(value, "v2");
  EXPECT_EQ(object.LatestCts(), 20u);
  EXPECT_EQ(object.VersionCount(), 2);
}

TEST(MvccObjectTest, DeleteEndsVisibility) {
  MvccObject object(4);
  ASSERT_TRUE(object.Install("v1", 10, 0).ok());
  ASSERT_TRUE(object.MarkDeleted(30).ok());
  std::string value;
  ASSERT_TRUE(object.GetVisible(29, &value));  // still sees it
  EXPECT_FALSE(object.GetVisible(30, &value));  // deleted from 30 on
  EXPECT_FALSE(object.HasLiveVersion());
}

TEST(MvccObjectTest, DeleteWithoutLiveVersionIsNotFound) {
  MvccObject object(4);
  EXPECT_TRUE(object.MarkDeleted(5).IsNotFound());
  ASSERT_TRUE(object.Install("v", 10, 0).ok());
  ASSERT_TRUE(object.MarkDeleted(20).ok());
  EXPECT_TRUE(object.MarkDeleted(30).IsNotFound());
}

TEST(MvccObjectTest, ReinsertAfterDelete) {
  MvccObject object(4);
  ASSERT_TRUE(object.Install("v1", 10, 0).ok());
  ASSERT_TRUE(object.MarkDeleted(20).ok());
  ASSERT_TRUE(object.Install("v2", 30, 0).ok());
  std::string value;
  EXPECT_FALSE(object.GetVisible(25, &value));  // gap
  ASSERT_TRUE(object.GetVisible(30, &value));
  EXPECT_EQ(value, "v2");
}

TEST(MvccObjectTest, GcReclaimsInvisibleVersions) {
  MvccObject object(4);
  ASSERT_TRUE(object.Install("v1", 10, 0).ok());
  ASSERT_TRUE(object.Install("v2", 20, 0).ok());
  ASSERT_TRUE(object.Install("v3", 30, 0).ok());
  EXPECT_EQ(object.VersionCount(), 3);
  // Oldest active snapshot is 25: v1 ([10,20)) is invisible, v2 ([20,30))
  // is still needed.
  EXPECT_EQ(object.GarbageCollect(25), 1);
  EXPECT_EQ(object.VersionCount(), 2);
  std::string value;
  ASSERT_TRUE(object.GetVisible(25, &value));
  EXPECT_EQ(value, "v2");
}

TEST(MvccObjectTest, OnDemandGcWhenArrayFull) {
  MvccObject object(2);
  ASSERT_TRUE(object.Install("v1", 10, 0).ok());
  ASSERT_TRUE(object.Install("v2", 20, 0).ok());
  // Array full. Installing with oldest_active=25 reclaims v1's slot.
  ASSERT_TRUE(object.Install("v3", 30, 25).ok());
  std::string value;
  ASSERT_TRUE(object.GetVisible(30, &value));
  EXPECT_EQ(value, "v3");
  EXPECT_EQ(object.VersionCount(), 2);
}

TEST(MvccObjectTest, InstallFailsWhenNoReclaimableSlot) {
  MvccObject object(2);
  ASSERT_TRUE(object.Install("v1", 10, 0).ok());
  ASSERT_TRUE(object.Install("v2", 20, 0).ok());
  // Oldest active snapshot 5 still needs everything.
  EXPECT_TRUE(object.Install("v3", 30, 5).IsResourceExhausted());
}

TEST(MvccObjectTest, AdaptiveGrowthKeepsPinnedVersionsInstallable) {
  MvccObject object(2);
  // A reader pinned at snapshot 0 keeps every version visible — nothing is
  // reclaimable, so each full array must grow (2 -> 4 -> 8) instead of
  // failing the install.
  for (Timestamp ts = 1; ts <= 8; ++ts) {
    ASSERT_TRUE(object
                    .Install("v" + std::to_string(ts), ts * 10,
                             /*oldest_active=*/kInitialTs, /*grow_limit=*/8)
                    .ok())
        << "ts " << ts;
  }
  EXPECT_EQ(object.capacity(), 8);
  EXPECT_EQ(object.VersionCount(), 8);
  // The full history stays visible across the growths.
  std::string value;
  for (Timestamp ts = 1; ts <= 8; ++ts) {
    ASSERT_TRUE(object.GetVisible(ts * 10, &value));
    EXPECT_EQ(value, "v" + std::to_string(ts));
  }
  // At the grow limit with everything still pinned: the install fails...
  EXPECT_TRUE(object.Install("v9", 90, kInitialTs, 8).IsResourceExhausted());
  // ...and succeeds at unchanged capacity once the pin advances.
  ASSERT_TRUE(object.Install("v9", 90, /*oldest_active=*/85, 8).ok());
  EXPECT_EQ(object.capacity(), 8);
}

TEST(MvccObjectTest, DefaultGrowLimitDisablesGrowth) {
  MvccObject object(2);
  ASSERT_TRUE(object.Install("v1", 10, kInitialTs).ok());
  ASSERT_TRUE(object.Install("v2", 20, kInitialTs).ok());
  EXPECT_TRUE(object.Install("v3", 30, kInitialTs).IsResourceExhausted());
  EXPECT_EQ(object.capacity(), 2);
}

TEST(MvccObjectTest, GrowthPrefersGcWhenVersionsAreReclaimable) {
  MvccObject object(2);
  ASSERT_TRUE(object.Install("v1", 10, kInitialTs, 8).ok());
  ASSERT_TRUE(object.Install("v2", 20, kInitialTs, 8).ok());
  // v1 ([10,20)) is below the watermark: GC must make room — no growth.
  ASSERT_TRUE(object.Install("v3", 30, /*oldest_active=*/25, 8).ok());
  EXPECT_EQ(object.capacity(), 2);
  EXPECT_EQ(object.VersionCount(), 2);
}

TEST(MvccObjectTest, GrownObjectSurvivesEncodeDecodeRoundTrip) {
  MvccObject object(2);
  for (Timestamp ts = 1; ts <= 12; ++ts) {
    ASSERT_TRUE(object
                    .Install("v" + std::to_string(ts), ts * 10, kInitialTs,
                             /*grow_limit=*/16)
                    .ok());
  }
  ASSERT_EQ(object.capacity(), 16);
  std::string blob;
  object.EncodeTo(&blob);

  // Decode with a SMALLER configured default (the store's mvcc_slots): the
  // blob's recorded capacity must win, restoring every version.
  auto decoded = MvccObject::Decode(blob, /*min_capacity=*/8);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->capacity(), 16);
  EXPECT_EQ(decoded->VersionCount(), 12);
  std::string value;
  for (Timestamp ts = 1; ts <= 12; ++ts) {
    ASSERT_TRUE(decoded->GetVisible(ts * 10, &value)) << "ts " << ts;
    EXPECT_EQ(value, "v" + std::to_string(ts));
  }
  // PurgeAfter still works on the grown, decoded array (recovery path).
  EXPECT_EQ(decoded->PurgeAfter(55), 7);
  ASSERT_TRUE(decoded->GetVisible(1000, &value));
  EXPECT_EQ(value, "v5");  // reopened as the live version
}

TEST(MvccObjectTest, DecodeRejectsOverwideCapacity) {
  // A corrupt blob claiming a capacity beyond the slot-mask width must not
  // decode.
  std::string blob;
  PutVarint32(&blob, 65);  // capacity
  PutVarint32(&blob, 0);   // count
  EXPECT_FALSE(MvccObject::Decode(blob, 8).ok());
}

TEST(MvccObjectTest, PurgeAfterRemovesUncommittedTail) {
  MvccObject object(4);
  ASSERT_TRUE(object.Install("v1", 10, 0).ok());
  ASSERT_TRUE(object.Install("v2", 20, 0).ok());
  // Simulate recovery where the group commit for cts=20 never finished.
  EXPECT_EQ(object.PurgeAfter(15), 1);
  std::string value;
  ASSERT_TRUE(object.GetVisible(100, &value));
  EXPECT_EQ(value, "v1");  // v1 is live again (dts reopened)
  EXPECT_TRUE(object.HasLiveVersion());
  EXPECT_EQ(object.LatestCts(), 10u);
}

TEST(MvccObjectTest, PurgeAfterReopensDeletedVersion) {
  MvccObject object(4);
  ASSERT_TRUE(object.Install("v1", 10, 0).ok());
  ASSERT_TRUE(object.MarkDeleted(20).ok());
  EXPECT_EQ(object.PurgeAfter(15), 0);  // nothing installed after 15...
  std::string value;
  // ...but the delete at 20 is also rolled back.
  ASSERT_TRUE(object.GetVisible(100, &value));
  EXPECT_EQ(value, "v1");
}

TEST(MvccObjectTest, EncodeDecodeRoundTrip) {
  MvccObject object(8);
  ASSERT_TRUE(object.Install("first", 5, 0).ok());
  ASSERT_TRUE(object.Install("second", 9, 0).ok());
  std::string blob;
  object.EncodeTo(&blob);

  auto decoded = MvccObject::Decode(blob, 8);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  std::string value;
  ASSERT_TRUE(decoded->GetVisible(7, &value));
  EXPECT_EQ(value, "first");
  ASSERT_TRUE(decoded->GetVisible(9, &value));
  EXPECT_EQ(value, "second");
  EXPECT_EQ(decoded->LatestCts(), 9u);
  EXPECT_EQ(decoded->VersionCount(), 2);
}

TEST(MvccObjectTest, DecodeGarbageFails) {
  EXPECT_FALSE(MvccObject::Decode("not a blob \xFF\xFF\xFF\xFF\xFF", 8).ok());
}

TEST(MvccObjectTest, CapacityClamped) {
  // Minimum is 2: with a single slot an update could never install its new
  // version next to the still-live predecessor.
  MvccObject tiny(0);
  EXPECT_EQ(tiny.capacity(), 2);
  MvccObject one(1);
  EXPECT_EQ(one.capacity(), 2);
  MvccObject huge(1000);
  EXPECT_EQ(huge.capacity(), 64);
}

TEST(MvccObjectTest, HeadersReflectLifetimes) {
  MvccObject object(4);
  ASSERT_TRUE(object.Install("v1", 10, 0).ok());
  ASSERT_TRUE(object.Install("v2", 20, 0).ok());
  auto headers = object.Headers();
  ASSERT_EQ(headers.size(), 2u);
  bool found_closed = false;
  bool found_open = false;
  for (const auto& h : headers) {
    if (h.cts == 10 && h.dts == 20) found_closed = true;
    if (h.cts == 20 && h.dts == kInfinityTs) found_open = true;
  }
  EXPECT_TRUE(found_closed);
  EXPECT_TRUE(found_open);
}

class MvccCapacitySweep : public ::testing::TestWithParam<int> {};

TEST_P(MvccCapacitySweep, LongUpdateChainWithGc) {
  const int capacity = GetParam();
  MvccObject object(capacity);
  // Continuously advancing oldest_active lets on-demand GC keep up
  // regardless of capacity.
  for (Timestamp ts = 1; ts <= 200; ++ts) {
    ASSERT_TRUE(
        object.Install("v" + std::to_string(ts), ts * 10, (ts - 1) * 10).ok())
        << "capacity " << capacity << " ts " << ts;
  }
  std::string value;
  ASSERT_TRUE(object.GetVisible(2000, &value));
  EXPECT_EQ(value, "v200");
  EXPECT_LE(object.VersionCount(), capacity);
}

INSTANTIATE_TEST_SUITE_P(Capacities, MvccCapacitySweep,
                         ::testing::Values(2, 3, 4, 8, 16, 64));

// Regression: a slot freed by PurgeAfter keeps no stale "live" header. The
// next Install must still terminate the real live version — before the fix,
// Install could mistake its freshly acquired slot (carrying the purged
// version's open dts) for the live one and leave two live versions behind.
TEST(MvccObjectTest, InstallAfterPurgeTerminatesRealLiveVersion) {
  MvccObject object(4);
  ASSERT_TRUE(object.Install("v1", 10, 0).ok());
  ASSERT_TRUE(object.Install("v2", 20, 0).ok());   // v1 dts=20
  ASSERT_TRUE(object.Install("v3", 30, 0).ok());   // v2 dts=30
  EXPECT_EQ(object.PurgeAfter(25), 1);             // drops v3, reopens v2
  ASSERT_TRUE(object.Install("v4", 40, 0).ok());   // must close v2
  int live_count = 0;
  for (const VersionHeader& h : object.Headers()) {
    if (h.dts == kInfinityTs) ++live_count;
  }
  EXPECT_EQ(live_count, 1) << "exactly one live version after reinstall";
  std::string value;
  ASSERT_TRUE(object.GetVisible(35, &value));
  EXPECT_EQ(value, "v2");  // v2 lived in [20, 40)
  ASSERT_TRUE(object.GetVisible(45, &value));
  EXPECT_EQ(value, "v4");
}

// The optimistic seqlock accessors must agree with the latched ones when no
// writer interferes, for every probe kind.
TEST(MvccObjectTest, OptimisticReadsAgreeWithLatchedReads) {
  MvccObject object(8);
  ASSERT_TRUE(object.Install("a", 10, 0).ok());
  ASSERT_TRUE(object.Install("b", 20, 0).ok());
  ASSERT_TRUE(object.MarkDeleted(30).ok());

  std::string value;
  EXPECT_EQ(object.TryGetVisible(15, &value), MvccObject::ReadResult::kHit);
  EXPECT_EQ(value, "a");
  EXPECT_EQ(object.TryGetVisible(25, &value), MvccObject::ReadResult::kHit);
  EXPECT_EQ(value, "b");
  EXPECT_EQ(object.TryGetVisible(35, &value), MvccObject::ReadResult::kMiss);
  EXPECT_EQ(object.TryGetVisible(5, &value), MvccObject::ReadResult::kMiss);

  // Deleted: no live version for the direct probe.
  EXPECT_EQ(object.TryGetLatestLive(&value), MvccObject::ReadResult::kMiss);
  EXPECT_FALSE(object.GetLatestLive(&value));

  Timestamp cts = 0;
  EXPECT_EQ(object.TryLatestCts(&cts), MvccObject::ReadResult::kHit);
  EXPECT_EQ(cts, object.LatestCts());
  EXPECT_EQ(cts, 20u);

  ASSERT_TRUE(object.Install("c", 40, 0).ok());
  EXPECT_EQ(object.TryGetLatestLive(&value), MvccObject::ReadResult::kHit);
  EXPECT_EQ(value, "c");
}

}  // namespace
}  // namespace streamsi
