// TSan stress for adaptive version-array growth: optimistic seqlock readers
// (TryGetVisible / TryGetLatestLive) race an installer that repeatedly fills
// and grows one hot key's slot array (2 -> 64) while the background epoch
// reclaimer frees the superseded arrays and replaced value buffers. The
// assertions pin the seqlock contract — a validated read is never torn: the
// returned value always matches the version header it was published with —
// and the EpochManager contract: no reader ever touches freed memory (which
// TSan/ASan would flag, and which tearing would betray).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/epoch.h"
#include "mvcc/mvcc_object.h"

namespace streamsi {
namespace {

/// Value installed at commit timestamp `cts`: the cts is recoverable from
/// the payload so readers can cross-check what they got against what the
/// visibility rule promised.
std::string ValueFor(Timestamp cts) {
  return "cts=" + std::to_string(cts) + std::string(24, 'x');
}

Timestamp CtsOf(const std::string& value) {
  return static_cast<Timestamp>(
      std::stoull(value.substr(4, value.find('x') - 4)));
}

TEST(MvccGrowthStressTest, OptimisticReadersVsGrowthAndEpochReclaim) {
  constexpr int kReaders = 3;
  constexpr int kRounds = 60;
  constexpr Timestamp kStride = 10;
  constexpr int kVersionsPerRound = 70;  // > 64: exercises the full ladder

  EpochManager::Global().StartBackgroundReclaimer(
      std::chrono::milliseconds(1));

  for (int round = 0; round < kRounds; ++round) {
    // Fresh tiny object every round so each round replays the whole growth
    // ladder (2 -> 4 -> ... -> 64) under reader fire.
    MvccObject object(2);
    std::atomic<Timestamp> newest{0};  // newest published cts
    std::atomic<bool> stop{false};
    std::atomic<bool> failed{false};
    std::vector<std::string> errors(kReaders);

    std::vector<std::thread> readers;
    readers.reserve(kReaders);
    for (int r = 0; r < kReaders; ++r) {
      readers.emplace_back([&, r] {
        std::string value;
        std::uint64_t salt = static_cast<std::uint64_t>(r) * 2654435761u;
        while (!stop.load(std::memory_order_relaxed)) {
          const Timestamp high = newest.load(std::memory_order_acquire);
          salt = salt * 6364136223846793005ull + 1442695040888963407ull;
          const Timestamp read_ts = high == 0 ? 1 : 1 + salt % (high + 5);
          EpochGuard guard;  // reads may dereference retired arrays/buffers
          const auto result = object.TryGetVisible(read_ts, &value);
          if (result == MvccObject::ReadResult::kHit) {
            // Torn-read check: the visibility rule cts <= read_ts < dts
            // means the payload's cts can never exceed the snapshot.
            const Timestamp cts = CtsOf(value);
            if (cts > read_ts || cts % kStride != 0) {
              errors[static_cast<std::size_t>(r)] =
                  "torn read: cts " + std::to_string(cts) + " at read_ts " +
                  std::to_string(read_ts);
              failed.store(true, std::memory_order_release);
              return;
            }
          }
          if (object.TryGetLatestLive(&value) ==
              MvccObject::ReadResult::kHit &&
              CtsOf(value) % kStride != 0) {
            errors[static_cast<std::size_t>(r)] =
                "torn live read: " + value.substr(0, 16);
            failed.store(true, std::memory_order_release);
            return;
          }
        }
      });
    }

    // Installer (the exclusive-latch owner in the full system): a lagging
    // pin at 0 makes nothing reclaimable, so every fill grows the array.
    for (int i = 1; i <= kVersionsPerRound; ++i) {
      const Timestamp cts = static_cast<Timestamp>(i) * kStride;
      const Status status = object.Install(
          ValueFor(cts), cts, /*oldest_active=*/kInitialTs, /*grow_limit=*/64);
      if (status.IsResourceExhausted()) {
        // Only possible at the 64-slot ceiling with everything pinned:
        // raise the watermark (the "reader finished" moment) and retry.
        ASSERT_EQ(object.capacity(), 64);
        ASSERT_TRUE(object
                        .Install(ValueFor(cts), cts,
                                 /*oldest_active=*/cts - 1, 64)
                        .ok());
      } else {
        ASSERT_TRUE(status.ok()) << status.ToString();
      }
      newest.store(cts, std::memory_order_release);
    }

    stop.store(true, std::memory_order_relaxed);
    for (auto& reader : readers) reader.join();
    ASSERT_FALSE(failed.load()) << errors[0] << errors[1] << errors[2];
    EXPECT_EQ(object.capacity(), 64);
  }

  EpochManager::Global().StopBackgroundReclaimer();
}

}  // namespace
}  // namespace streamsi
