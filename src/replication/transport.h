// Replication transport: how a primary's log bytes reach a follower.
//
// Single-primary log shipping (see src/README.md §replication): the
// LogShipper streams the group-commit segment chain + the state catalog as
// append-only byte ranges; the ShipTransport abstracts the wire. The first
// implementation is in-process/Env-file based — the "network" is a
// directory on the follower's Env, so FaultEnv can cut power on either
// side and the two-node torture harness stays fully deterministic. A real
// socket transport would implement the same three operations.
//
// This header also carries the replication vocabulary shared by Database,
// LogShipper and FollowerApplier (role enum + stats struct) so that
// core/database.h needs only this one light include.

#ifndef STREAMSI_REPLICATION_TRANSPORT_H_
#define STREAMSI_REPLICATION_TRANSPORT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/env.h"
#include "common/status.h"
#include "txn/types.h"

namespace streamsi {

/// A database's place in a replication pair.
enum class ReplicationRole {
  kNone,      ///< standalone (no shipping, plain kGroupCommit records)
  kPrimary,   ///< accepts writes, ships its log through a ShipTransport
  kFollower,  ///< replays the shipped log, serves snapshot reads; writable
              ///< only after Promote()
};

/// Observability snapshot of one side of the replication link (exposed via
/// Database::Health()). Shipper-side counters are zero on a follower and
/// vice versa.
struct ReplicationStats {
  /// The background ship/apply thread is running.
  bool active = false;
  /// False once the ship retry budget is exhausted or the applier refused
  /// the stream; recovers on the next successful round (shipper side only
  /// — an applier's Corruption is sticky).
  bool link_healthy = true;
  /// Most recent ship/apply failure (sticky for applier Corruption).
  Status last_error;
  std::uint64_t bytes_shipped = 0;
  std::uint64_t ship_rounds = 0;
  /// Failed ship/apply rounds that were retried.
  std::uint64_t transient_failures = 0;
  /// Frames replayed from the shipped stream (follower side).
  std::uint64_t records_applied = 0;
  /// kReplicatedCommit records installed + published (follower side).
  std::uint64_t commits_applied = 0;
  /// Highest commit timestamp the primary advertised (beacon file).
  Timestamp primary_watermark = 0;
  /// Highest commit timestamp the follower has applied + published.
  Timestamp follower_watermark = 0;
  /// Staleness: max(0, primary_watermark - follower_watermark). Monotone
  /// non-negative; converges to 0 against an idle primary.
  Timestamp staleness_lag = 0;
};

/// Name of the primary-watermark beacon inside the follower's directory
/// (published atomically; the applier reads it to compute staleness lag).
inline constexpr char kPrimaryWatermarkFile[] = "PRIMARY_WATERMARK";

/// The wire. All three operations are idempotent-by-offset: the shipper
/// drives them from the receiver's current Size(), so a crash on either
/// side simply re-syncs on the next round.
class ShipTransport {
 public:
  virtual ~ShipTransport() = default;

  /// Bytes of `name` the receiver already has (0 if it does not exist yet).
  virtual Result<std::uint64_t> Size(const std::string& name) = 0;

  /// Appends `data` to `name`, requiring the receiver's current size to be
  /// exactly `offset` (stale-view protection). Durable on return.
  virtual Status Append(const std::string& name, std::uint64_t offset,
                        std::string_view data) = 0;

  /// Publishes the primary's commit watermark (atomic replace; readers on
  /// the follower never see a torn value).
  virtual Status PublishWatermark(Timestamp watermark) = 0;
};

/// In-process transport: shipped files materialize in `follower_dir` on the
/// FOLLOWER's Env — exactly the layout FollowerDatabase replays, and the
/// follower's FaultEnv gets to fail/cut every landed byte.
class EnvFileTransport final : public ShipTransport {
 public:
  /// `follower_env` may be nullptr (Env::Default()); `follower_dir` is the
  /// follower database's base_dir.
  EnvFileTransport(Env* follower_env, std::string follower_dir);

  Result<std::uint64_t> Size(const std::string& name) override;
  Status Append(const std::string& name, std::uint64_t offset,
                std::string_view data) override;
  Status PublishWatermark(Timestamp watermark) override;

 private:
  Status EnsureDirLocked();

  Env* env_;
  const std::string dir_;
  std::mutex mutex_;
  bool dir_created_ = false;  ///< under mutex_
  /// Cached append handles (one open per file, not per chunk). Dropped on
  /// any failure so the next chunk reattaches to the post-crash node.
  std::map<std::string, std::unique_ptr<WritableFile>> open_;  ///< under mutex_
};

}  // namespace streamsi

#endif  // STREAMSI_REPLICATION_TRANSPORT_H_
