#include "replication/transport.h"

namespace streamsi {

EnvFileTransport::EnvFileTransport(Env* follower_env, std::string follower_dir)
    : env_(follower_env != nullptr ? follower_env : Env::Default()),
      dir_(std::move(follower_dir)) {}

Status EnvFileTransport::EnsureDirLocked() {
  if (dir_created_) return Status::OK();
  STREAMSI_RETURN_NOT_OK(env_->CreateDirIfMissing(dir_));
  dir_created_ = true;
  return Status::OK();
}

Result<std::uint64_t> EnvFileTransport::Size(const std::string& name) {
  const std::string path = dir_ + "/" + name;
  if (!env_->FileExists(path)) return std::uint64_t{0};
  std::uint64_t size = 0;
  STREAMSI_RETURN_NOT_OK(env_->FileSize(path, &size));
  return size;
}

Status EnvFileTransport::Append(const std::string& name, std::uint64_t offset,
                                std::string_view data) {
  std::lock_guard<std::mutex> guard(mutex_);
  STREAMSI_RETURN_NOT_OK(EnsureDirLocked());
  auto it = open_.find(name);
  if (it == open_.end()) {
    auto file = env_->NewWritableFile(dir_ + "/" + name, /*truncate=*/false);
    if (!file.ok()) return file.status();
    it = open_.emplace(name, std::move(*file)).first;
  }
  WritableFile* file = it->second.get();
  if (file->size() != offset) {
    // The sender's view of our length went stale (a crash truncated the
    // file, or the handle predates one). Drop the handle — the next chunk
    // reattaches to the current on-disk node — and let the sender re-sync
    // from Size() next round. Never write at the wrong offset: a shipped
    // chain with bytes out of place is indistinguishable from corruption.
    open_.erase(it);
    return Status::InvalidArgument("ship offset mismatch for " + name);
  }
  Status status = file->Append(data);
  // Durable per chunk: once the sender sees this append succeed it may
  // advance its retain floor and prune the segment — the follower copy is
  // then the only one, so it must survive a follower power cut.
  if (status.ok()) status = file->Sync();
  if (!status.ok()) {
    open_.erase(it);
    return status;
  }
  return Status::OK();
}

Status EnvFileTransport::PublishWatermark(Timestamp watermark) {
  std::lock_guard<std::mutex> guard(mutex_);
  STREAMSI_RETURN_NOT_OK(EnsureDirLocked());
  return env_->WriteStringToFileAtomic(dir_ + "/" + kPrimaryWatermarkFile,
                                       std::to_string(watermark));
}

}  // namespace streamsi
