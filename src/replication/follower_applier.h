// FollowerApplier: the follower side of single-primary log shipping.
//
// A background loop replays the shipped group-commit chain continuously:
// for each complete, CRC-valid frame past its cursor it decodes the record
// and re-drives the primary's publication through the follower's OWN
// machinery — kReplicatedCommit installs the carried write sets with the
// stores' eager ApplyCommitted path, then publishes the multi-group
// LastCTS advance through the same publication seqlock committers use, so
// concurrent snapshot readers on the follower keep the §4.3 guarantee:
// they pin a per-group LastCTS cut and never observe half of a multi-store
// commit. The cursor only ever advances over whole frames.
//
// Refusal beats divergence. A hole in the stream — the cursor's segment
// vanished while later ones exist, a successor number is skipped, a
// checkpoint cut references commits newer than everything applied, or a
// commit record without write sets (a non-replicating primary's log) — is
// Corruption: sticky, reported through Health(), applying stops for good.
// A CRC-broken tail is simply *incomplete* (the shipper re-ships its
// completion byte-identically), so the applier waits; it never skips bytes
// within a segment. Transient problems (unknown state: catalog chunk not
// landed yet; IO errors) are retried next round — re-applying a partially
// applied record is idempotent, the same versions land at the same cts and
// publication is monotone.
//
// `Options::verify_crc = false` is the torture harness's negative control:
// it applies frames without checking CRCs, which is exactly the corruption
// the CRC exists to stop — the two-node harness proves the end-to-end
// verifier catches the resulting divergence.

#ifndef STREAMSI_REPLICATION_FOLLOWER_APPLIER_H_
#define STREAMSI_REPLICATION_FOLLOWER_APPLIER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "replication/transport.h"
#include "storage/wal.h"
#include "txn/state_context.h"
#include "txn/versioned_store.h"

namespace streamsi {

/// Defined outside FollowerApplier so it is complete (default member
/// initializers parsed) where the constructor's default argument needs it.
struct FollowerApplierOptions {
  /// Sleep between apply rounds.
  std::uint32_t interval_ms = 2;
  /// Negative-control knob (torture harness): false applies shipped
  /// frames without CRC verification.
  bool verify_crc = true;
};

class FollowerApplier {
 public:
  using Options = FollowerApplierOptions;

  /// The database half of the applier. All callbacks are invoked from the
  /// apply thread; none may call back into the applier (deadlock).
  struct Hooks {
    /// Replays the shipped catalog tail (states/groups declared on the
    /// primary since the last refresh). Called once per round, before any
    /// frame is applied.
    std::function<Status()> refresh_catalog;
    /// StateId -> store; nullptr when unknown (catalog not caught up yet).
    std::function<VersionedStore*(StateId)> resolve;
    /// Sticky-corruption escalation (the database fails the instance).
    std::function<void(const Status&)> on_corruption;
  };

  FollowerApplier(Env* env, std::string log_root, std::string watermark_path,
                  StateContext* context, Hooks hooks, Options options = Options());
  ~FollowerApplier();

  void Start();
  void Stop();

  /// One apply round: refresh catalog, replay complete frames from the
  /// cursor across all shipped segments, refresh watermarks. Public for
  /// manual pumping in tests.
  Status ApplyOnce();

  /// Promotion drain: repeats ApplyOnce until every complete shipped frame
  /// is applied. Returns the sticky Corruption if the stream was refused,
  /// or Unavailable if the stream would not settle within `max_rounds`.
  Status DrainFully(int max_rounds = 64);

  /// True when the last round consumed every complete shipped frame.
  bool CaughtUp() const;

  /// OK, or the sticky Corruption that stopped the applier for good.
  Status sticky_status() const;

  /// Re-reads the shipped primary watermark before reporting, so the
  /// staleness lag reflects what has ARRIVED, not just the last apply
  /// round — Health() stays honest between rounds.
  ReplicationStats Stats() const;

 private:
  void Loop();
  Status ApplyOnceLocked();
  /// Applies complete frames of the cursor segment; `leftover` reports
  /// whether incomplete/unverified bytes remain past the cursor.
  Status ApplySegmentLocked(const std::string& path, bool* leftover);
  Status ApplyRecordLocked(WalRecordType type, std::string_view payload);
  Status ApplyReplicatedCommitLocked(std::string_view payload);
  Status ApplyCheckpointCutLocked(std::string_view payload);
  Status MarkCorruptLocked(Status status);
  void RefreshWatermarksLocked() const;

  Env* env_;
  const std::string log_root_;
  const std::string watermark_path_;
  StateContext* context_;
  const Hooks hooks_;
  const Options options_;

  // Cursor + stats + sticky state, all under mutex_. ApplyOnce holds the
  // mutex for the whole round; Stats()/CaughtUp() are observers.
  mutable std::mutex mutex_;
  std::uint64_t cursor_segment_ = 0;
  std::uint64_t cursor_offset_ = 0;
  bool cursor_started_ = false;
  bool caught_up_ = false;
  Status sticky_;
  mutable ReplicationStats stats_;  ///< watermarks refresh in const Stats()

  std::mutex loop_mutex_;
  std::condition_variable loop_cv_;
  bool stop_ = false;  ///< under loop_mutex_
  std::thread thread_;
};

}  // namespace streamsi

#endif  // STREAMSI_REPLICATION_FOLLOWER_APPLIER_H_
