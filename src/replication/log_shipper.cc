#include "replication/log_shipper.h"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

namespace streamsi {

LogShipper::LogShipper(Env* env, GroupCommitLog* log, std::string log_root,
                       std::string catalog_path, ShipTransport* transport,
                       StateContext* context, Options options)
    : env_(env != nullptr ? env : Env::Default()),
      log_(log),
      log_root_(std::move(log_root)),
      catalog_path_(std::move(catalog_path)),
      transport_(transport),
      context_(context),
      options_(options) {
  // Retain everything until the first successful round has established what
  // the follower actually has — a checkpoint racing the first round must
  // not prune a segment that was never shipped.
  log_->SetRetainFloor(0);
}

LogShipper::~LogShipper() { Stop(); }

void LogShipper::Start() {
  {
    std::lock_guard<std::mutex> guard(loop_mutex_);
    if (thread_.joinable()) return;
    stop_ = false;
  }
  {
    std::lock_guard<std::mutex> guard(stats_mutex_);
    stats_.active = true;
  }
  thread_ = std::thread(&LogShipper::Loop, this);
}

void LogShipper::Stop() {
  {
    std::lock_guard<std::mutex> guard(loop_mutex_);
    stop_ = true;
  }
  loop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  {
    std::lock_guard<std::mutex> guard(stats_mutex_);
    stats_.active = false;
  }
  // Final drain: whatever became durable since the last round (including
  // the batch a destructor-driven Close just flushed) still ships. Best
  // effort — the primary may already be dead/cut.
  (void)ShipOnce();
}

void LogShipper::Loop() {
  std::unique_lock<std::mutex> lk(loop_mutex_);
  while (!stop_) {
    lk.unlock();
    const Status status = ShipOnce();
    std::uint32_t backoff_ms = 0;
    if (!status.ok()) {
      std::lock_guard<std::mutex> guard(stats_mutex_);
      backoff_ms = options_.retry_backoff_ms *
                   std::min<std::uint32_t>(consecutive_failures_, 8);
    }
    lk.lock();
    loop_cv_.wait_for(
        lk, std::chrono::milliseconds(options_.interval_ms + backoff_ms),
        [&] { return stop_; });
  }
}

std::string LogShipper::BaseName(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

Status LogShipper::ShipFile(Env* env, ShipTransport* transport,
                            const std::string& path, const std::string& name,
                            std::uint64_t* bytes_shipped) {
  auto have = transport->Size(name);
  if (!have.ok()) return have.status();
  std::string tail;
  STREAMSI_RETURN_NOT_OK(GroupCommitLog::TailFrom(env, path, *have, &tail));
  if (tail.empty()) return Status::OK();  // caught up (or receiver ahead)
  STREAMSI_RETURN_NOT_OK(transport->Append(name, *have, tail));
  *bytes_shipped += tail.size();
  return Status::OK();
}

Status LogShipper::ShipRound(std::uint64_t* bytes_shipped) {
  // Catalog first: a commit record referencing a state the follower has
  // never heard of would stall its applier for a full round.
  if (env_->FileExists(catalog_path_)) {
    STREAMSI_RETURN_NOT_OK(ShipFile(env_, transport_, catalog_path_,
                                    BaseName(catalog_path_), bytes_shipped));
  }
  std::vector<std::uint64_t> numbers;
  log_->ListLiveSegments(&numbers);
  const std::uint64_t current = log_->current_segment();
  for (std::uint64_t n : numbers) {
    const std::string path = GroupCommitLog::SegmentPath(log_root_, n);
    // Pruned between listing and here: it was fully shipped in an earlier
    // round (the retain floor only advances past shipped segments).
    if (!env_->FileExists(path)) continue;
    const Status status =
        ShipFile(env_, transport_, path, BaseName(path), bytes_shipped);
    if (!status.ok()) {
      // Hold this and every later segment against pruning; the follower
      // does not have them yet.
      log_->SetRetainFloor(std::min(n, current));
      return status;
    }
  }
  // Everything listed is shipped; only the (still growing) current segment
  // needs protection — and pruning already never touches it.
  log_->SetRetainFloor(current);

  std::vector<std::pair<GroupId, Timestamp>> cut;
  context_->SnapshotLastCts(&cut);
  Timestamp watermark = 0;
  for (const auto& entry : cut) watermark = std::max(watermark, entry.second);
  return transport_->PublishWatermark(watermark);
}

Status LogShipper::ShipOnce() {
  std::uint64_t bytes = 0;
  const Status status = ShipRound(&bytes);
  std::lock_guard<std::mutex> guard(stats_mutex_);
  stats_.bytes_shipped += bytes;
  stats_.ship_rounds += 1;
  if (status.ok()) {
    consecutive_failures_ = 0;
    stats_.link_healthy = true;
    stats_.last_error = Status::OK();
  } else {
    consecutive_failures_ += 1;
    stats_.transient_failures += 1;
    stats_.last_error = status;
    if (consecutive_failures_ > options_.retry_limit) {
      stats_.link_healthy = false;
    }
  }
  return status;
}

ReplicationStats LogShipper::Stats() const {
  std::lock_guard<std::mutex> guard(stats_mutex_);
  return stats_;
}

Status LogShipper::DrainFiles(Env* env, const std::string& log_root,
                              const std::string& catalog_path,
                              ShipTransport* transport) {
  if (env == nullptr) env = Env::Default();
  std::uint64_t bytes = 0;
  if (env->FileExists(catalog_path)) {
    STREAMSI_RETURN_NOT_OK(
        ShipFile(env, transport, catalog_path, BaseName(catalog_path), &bytes));
  }
  std::vector<std::uint64_t> numbers;
  STREAMSI_RETURN_NOT_OK(
      GroupCommitLog::ListSegmentsOnDisk(env, log_root, &numbers));
  for (std::uint64_t n : numbers) {
    const std::string path = GroupCommitLog::SegmentPath(log_root, n);
    STREAMSI_RETURN_NOT_OK(
        ShipFile(env, transport, path, BaseName(path), &bytes));
  }
  return Status::OK();
}

}  // namespace streamsi
