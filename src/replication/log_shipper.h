// LogShipper: the primary side of single-primary log-shipping replication.
//
// A background loop streams the primary's durable byte ranges through a
// ShipTransport, strictly OFF the commit path (commits still pay exactly
// one Append+Sync per group-commit batch; the shipper only ever reads):
//
//   1. the state catalog's valid-frame prefix (shipped FIRST: the follower
//      must know a state/group before its first commit record arrives),
//   2. every live group-commit segment, ascending, each to its current
//      valid-frame prefix (GroupCommitLog::TailFrom semantics — only whole,
//      CRC-complete frames are handed out, so a shipped chunk never tears a
//      record across rounds),
//   3. the primary commit watermark beacon (staleness-lag observability).
//
// Prune coordination: before a round, the retain floor holds everything
// (floor of the first segment); after a fully successful round it advances
// to the current segment — a checkpoint never deletes a segment the
// follower has not durably received.
//
// Failure model: ship failures are RETRIED with bounded backoff and never
// block or fail commits; after `retry_limit` consecutive failed rounds the
// link is reported unhealthy (Stats().link_healthy == false, sticky
// last_error) until a round succeeds again. The primary never diverges the
// follower to make progress — chunks are offset-checked by the transport.

#ifndef STREAMSI_REPLICATION_LOG_SHIPPER_H_
#define STREAMSI_REPLICATION_LOG_SHIPPER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "core/group_commit_log.h"
#include "replication/transport.h"
#include "txn/state_context.h"

namespace streamsi {

/// Defined outside LogShipper so it is complete (default member
/// initializers parsed) where the constructor's default argument needs it.
struct LogShipperOptions {
  /// Sleep between ship rounds (the loop also wakes immediately on Stop).
  std::uint32_t interval_ms = 2;
  /// Consecutive failed rounds before Stats() reports the link down.
  /// Shipping keeps retrying regardless — the primary stays writable.
  std::uint32_t retry_limit = 5;
  /// Base backoff after a failed round (scales with consecutive failures).
  std::uint32_t retry_backoff_ms = 1;
};

class LogShipper {
 public:
  using Options = LogShipperOptions;

  /// Borrows everything; all pointers must outlive the shipper. Constructing
  /// the shipper pins the log's retain floor at the oldest segment until the
  /// first successful round — create it BEFORE any checkpoint can prune.
  LogShipper(Env* env, GroupCommitLog* log, std::string log_root,
             std::string catalog_path, ShipTransport* transport,
             StateContext* context, Options options = Options());
  ~LogShipper();

  void Start();
  /// Stops the loop, then runs one final best-effort drain round.
  void Stop();

  /// One full ship round (catalog tail, segments ascending, watermark).
  /// Public for manual pumping in tests; updates Stats() either way.
  Status ShipOnce();

  ReplicationStats Stats() const;

  /// Post-crash drain WITHOUT a database: ships whatever valid frames
  /// survive on disk under `log_root`/`catalog_path` (e.g. after the
  /// primary's power was cut and its filesystem recovered). Every acked
  /// commit was synced before its committer returned, so it is inside the
  /// surviving valid prefix — draining it to the follower is what makes
  /// promotion lose zero acked commits.
  static Status DrainFiles(Env* env, const std::string& log_root,
                           const std::string& catalog_path,
                           ShipTransport* transport);

 private:
  void Loop();
  static std::string BaseName(const std::string& path);
  /// Ships [receiver size, valid prefix) of `path` as one chunk.
  static Status ShipFile(Env* env, ShipTransport* transport,
                         const std::string& path, const std::string& name,
                         std::uint64_t* bytes_shipped);
  Status ShipRound(std::uint64_t* bytes_shipped);

  Env* env_;
  GroupCommitLog* log_;
  const std::string log_root_;
  const std::string catalog_path_;
  ShipTransport* transport_;
  StateContext* context_;
  const Options options_;

  mutable std::mutex stats_mutex_;
  ReplicationStats stats_;                  ///< under stats_mutex_
  std::uint32_t consecutive_failures_ = 0;  ///< under stats_mutex_

  std::mutex loop_mutex_;
  std::condition_variable loop_cv_;
  bool stop_ = false;  ///< under loop_mutex_
  std::thread thread_;
};

}  // namespace streamsi

#endif  // STREAMSI_REPLICATION_LOG_SHIPPER_H_
