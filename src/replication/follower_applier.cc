#include "replication/follower_applier.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <utility>

#include "common/coding.h"
#include "common/crc32.h"
#include "common/small_vec.h"
#include "core/group_commit_log.h"

namespace streamsi {

FollowerApplier::FollowerApplier(Env* env, std::string log_root,
                                 std::string watermark_path,
                                 StateContext* context, Hooks hooks,
                                 Options options)
    : env_(env != nullptr ? env : Env::Default()),
      log_root_(std::move(log_root)),
      watermark_path_(std::move(watermark_path)),
      context_(context),
      hooks_(std::move(hooks)),
      options_(options) {}

FollowerApplier::~FollowerApplier() { Stop(); }

void FollowerApplier::Start() {
  {
    std::lock_guard<std::mutex> guard(loop_mutex_);
    if (thread_.joinable()) return;
    stop_ = false;
  }
  {
    std::lock_guard<std::mutex> guard(mutex_);
    stats_.active = true;
  }
  thread_ = std::thread(&FollowerApplier::Loop, this);
}

void FollowerApplier::Stop() {
  {
    std::lock_guard<std::mutex> guard(loop_mutex_);
    stop_ = true;
  }
  loop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> guard(mutex_);
  stats_.active = false;
}

void FollowerApplier::Loop() {
  std::unique_lock<std::mutex> lk(loop_mutex_);
  while (!stop_) {
    lk.unlock();
    const Status status = ApplyOnce();
    lk.lock();
    if (status.IsCorruption()) break;  // sticky; nothing left to do
    loop_cv_.wait_for(lk, std::chrono::milliseconds(options_.interval_ms),
                      [&] { return stop_; });
  }
}

Status FollowerApplier::ApplyOnce() {
  std::lock_guard<std::mutex> guard(mutex_);
  const Status status = ApplyOnceLocked();
  if (!status.ok() && !status.IsCorruption()) {
    stats_.transient_failures += 1;
    stats_.last_error = status;
  } else if (status.ok() && sticky_.ok()) {
    stats_.last_error = Status::OK();
  }
  RefreshWatermarksLocked();
  return status;
}

Status FollowerApplier::MarkCorruptLocked(Status status) {
  sticky_ = status;
  stats_.link_healthy = false;
  stats_.last_error = status;
  if (hooks_.on_corruption) hooks_.on_corruption(status);
  return status;
}

Status FollowerApplier::ApplyOnceLocked() {
  if (!sticky_.ok()) return sticky_;
  caught_up_ = false;
  if (hooks_.refresh_catalog) {
    const Status status = hooks_.refresh_catalog();
    if (!status.ok()) {
      if (status.IsCorruption()) return MarkCorruptLocked(status);
      return status;  // transient (e.g. catalog chunk mid-flight)
    }
  }
  std::vector<std::uint64_t> numbers;
  STREAMSI_RETURN_NOT_OK(
      GroupCommitLog::ListSegmentsOnDisk(env_, log_root_, &numbers));
  if (numbers.empty()) {
    caught_up_ = true;  // nothing shipped yet
    return Status::OK();
  }
  if (!cursor_started_) {
    // Segments ship strictly ascending, so the first nonempty listing's
    // front is the true start of the shipped chain.
    cursor_segment_ = numbers.front();
    cursor_offset_ = 0;
    cursor_started_ = true;
  }
  for (;;) {
    const bool cursor_present =
        std::binary_search(numbers.begin(), numbers.end(), cursor_segment_);
    if (!cursor_present) {
      if (numbers.back() > cursor_segment_) {
        // The stream continues past a segment we never finished: bytes are
        // gone for good. Refusing is the whole point — applying around a
        // hole would silently diverge from the primary.
        return MarkCorruptLocked(Status::Corruption(
            "ship stream gap: segment " + std::to_string(cursor_segment_) +
            " missing but later segments exist"));
      }
      caught_up_ = true;  // ahead of everything shipped
      return Status::OK();
    }
    bool leftover = false;
    STREAMSI_RETURN_NOT_OK(ApplySegmentLocked(
        GroupCommitLog::SegmentPath(log_root_, cursor_segment_), &leftover));
    const bool next_present = std::binary_search(
        numbers.begin(), numbers.end(), cursor_segment_ + 1);
    if (!next_present) {
      if (numbers.back() > cursor_segment_) {
        return MarkCorruptLocked(Status::Corruption(
            "ship stream gap: segment " +
            std::to_string(cursor_segment_ + 1) +
            " skipped but later segments exist"));
      }
      // Newest shipped segment (the primary's live one). Incomplete tail
      // bytes are a chunk still in flight — the shipper completes them
      // byte-identically next round; never skip within a segment.
      caught_up_ = !leftover;
      return Status::OK();
    }
    if (leftover) {
      // Closed on the primary, but our copy still ends mid-frame (a crash
      // on either side tore the last chunk). Wait: the re-shipped
      // completion is byte-identical, or promotion-time recovery truncates
      // a tail the dead primary never made durable (unacked by definition).
      caught_up_ = false;
      return Status::OK();
    }
    cursor_segment_ += 1;
    cursor_offset_ = 0;
  }
}

Status FollowerApplier::ApplySegmentLocked(const std::string& path,
                                           bool* leftover) {
  *leftover = false;
  std::string contents;
  STREAMSI_RETURN_NOT_OK(env_->ReadFileToString(path, &contents));
  const char* base = contents.data();
  std::uint64_t pos = std::min<std::uint64_t>(cursor_offset_, contents.size());
  while (pos + 9 <= contents.size()) {
    const char* p = base + pos;
    const std::uint32_t stored_crc = UnmaskCrc(DecodeFixed32(p));
    const std::uint32_t len = DecodeFixed32(p + 4);
    if (len > contents.size() - pos - 9) break;  // incomplete frame
    if (options_.verify_crc &&
        Crc32c(std::string_view(p + 8, 1 + len)) != stored_crc) {
      break;  // incomplete: a torn chunk completes byte-identically later
    }
    const auto type = static_cast<WalRecordType>(p[8]);
    const Status status =
        ApplyRecordLocked(type, std::string_view(p + 9, len));
    if (!status.ok()) {
      if (status.IsCorruption()) return MarkCorruptLocked(status);
      return status;  // transient: retry the SAME frame next round
    }
    pos += 9 + static_cast<std::uint64_t>(len);
    cursor_offset_ = pos;
    stats_.records_applied += 1;
  }
  *leftover = pos < contents.size();
  return Status::OK();
}

Status FollowerApplier::ApplyRecordLocked(WalRecordType type,
                                          std::string_view payload) {
  switch (type) {
    case WalRecordType::kReplicatedCommit:
      return ApplyReplicatedCommitLocked(payload);
    case WalRecordType::kCheckpointCut:
      return ApplyCheckpointCutLocked(payload);
    case WalRecordType::kGroupCommit:
    case WalRecordType::kCheckpoint:
      // A commit record without its write sets cannot be replayed here —
      // the primary was not in replication mode when it wrote this chain.
      // Divergence, not progress: refuse.
      return Status::Corruption(
          "shipped stream contains a data-less commit record "
          "(primary log predates replication mode)");
    default:
      return Status::OK();  // future record kinds: skip
  }
}

Status FollowerApplier::ApplyReplicatedCommitLocked(std::string_view payload) {
  const char* p = payload.data();
  const char* limit = p + payload.size();
  std::uint32_t group_count = 0;
  p = GetVarint32(p, limit, &group_count);
  if (p == nullptr || group_count > payload.size()) {
    return Status::Corruption("bad replicated-commit group count");
  }
  SmallVec<GroupId, 64> groups;
  for (std::uint32_t i = 0; i < group_count && p != nullptr; ++i) {
    GroupId id = kInvalidGroupId;
    p = GetVarint32(p, limit, &id);
    if (p != nullptr) groups.push_back(id);
  }
  std::uint64_t cts = 0;
  if (p != nullptr) p = GetVarint64(p, limit, &cts);
  std::uint32_t state_count = 0;
  if (p != nullptr) p = GetVarint32(p, limit, &state_count);
  if (p == nullptr || state_count > payload.size()) {
    return Status::Corruption("bad replicated-commit header");
  }
  const std::size_t known_groups = context_->GroupCount();
  for (GroupId group : groups) {
    if (group >= known_groups) {
      // The declaring catalog chunk has not landed yet; retry next round.
      return Status::Busy("follower catalog behind: unknown group " +
                          std::to_string(group));
    }
  }
  // Pass 1: bounds-check the whole record and resolve every store BEFORE
  // installing anything, so the common transient (catalog behind) does not
  // do per-entry work just to throw it away.
  struct StateBlock {
    VersionedStore* store;
    const char* begin;
    std::uint32_t entries;
  };
  SmallVec<StateBlock, 8> blocks;
  const char* scan = p;
  for (std::uint32_t s = 0; s < state_count; ++s) {
    std::uint32_t state_id = 0;
    std::uint32_t entry_count = 0;
    scan = GetVarint32(scan, limit, &state_id);
    if (scan != nullptr) scan = GetVarint32(scan, limit, &entry_count);
    if (scan == nullptr || entry_count > payload.size()) {
      return Status::Corruption("bad replicated-commit state block");
    }
    VersionedStore* store = hooks_.resolve ? hooks_.resolve(state_id) : nullptr;
    if (store == nullptr) {
      return Status::Busy("follower catalog behind: unknown state " +
                          std::to_string(state_id));
    }
    const char* entries_begin = scan;
    for (std::uint32_t e = 0; e < entry_count && scan != nullptr; ++e) {
      std::uint32_t key_len = 0;
      scan = GetVarint32(scan, limit, &key_len);
      if (scan == nullptr || key_len > static_cast<std::size_t>(limit - scan)) {
        scan = nullptr;
        break;
      }
      scan += key_len;
      if (scan >= limit) {
        scan = nullptr;
        break;
      }
      const bool is_delete = *scan != 0;
      scan += 1;
      if (!is_delete) {
        std::uint32_t val_len = 0;
        scan = GetVarint32(scan, limit, &val_len);
        if (scan == nullptr ||
            val_len > static_cast<std::size_t>(limit - scan)) {
          scan = nullptr;
          break;
        }
        scan += val_len;
      }
    }
    if (scan == nullptr) {
      return Status::Corruption("bad replicated-commit entry");
    }
    blocks.push_back(StateBlock{store, entries_begin, entry_count});
  }
  // Pass 2: install. A transient failure mid-record leaves a partial,
  // UNPUBLISHED apply; the retry re-installs the same versions at the same
  // cts (idempotent) and only then publishes.
  for (const StateBlock& block : blocks) {
    const char* cur = block.begin;
    const Timestamp oldest_active =
        context_->OldestActiveVersionFor(block.store->id());
    for (std::uint32_t e = 0; e < block.entries; ++e) {
      std::uint32_t key_len = 0;
      cur = GetVarint32(cur, limit, &key_len);
      const std::string_view key(cur, key_len);
      cur += key_len;
      const bool is_delete = *cur != 0;
      cur += 1;
      std::string_view value;
      if (!is_delete) {
        std::uint32_t val_len = 0;
        cur = GetVarint32(cur, limit, &val_len);
        value = std::string_view(cur, val_len);
        cur += val_len;
      }
      STREAMSI_RETURN_NOT_OK(block.store->ApplyCommitted(
          key, value, is_delete, cts, oldest_active, /*sync_hint=*/false));
    }
  }
  // Same publication seqlock the primary's committers use: concurrent
  // follower readers see the multi-group advance atomically (§4.3).
  context_->PublishCommit(groups.data(), groups.size(), cts);
  context_->clock().AdvanceTo(cts);
  stats_.commits_applied += 1;
  stats_.follower_watermark = std::max(stats_.follower_watermark, cts);
  return Status::OK();
}

Status FollowerApplier::ApplyCheckpointCutLocked(std::string_view payload) {
  const char* p = payload.data();
  const char* limit = p + payload.size();
  std::uint32_t count = 0;
  p = GetVarint32(p, limit, &count);
  if (p == nullptr || count > payload.size()) {
    return Status::Corruption("bad shipped checkpoint cut");
  }
  const std::size_t known_groups = context_->GroupCount();
  for (std::uint32_t i = 0; i < count; ++i) {
    GroupId group = kInvalidGroupId;
    std::uint64_t cts = 0;
    p = GetVarint32(p, limit, &group);
    if (p != nullptr) p = GetVarint64(p, limit, &cts);
    if (p == nullptr) return Status::Corruption("bad shipped cut entry");
    if (group >= known_groups) {
      return Status::Busy("follower catalog behind: unknown group " +
                          std::to_string(group));
    }
    // Every commit covered by the cut was durable + drained on the primary
    // BEFORE the cut record was written, i.e. it sits in older shipped
    // bytes we have already applied. A cut ahead of our applied state means
    // commit records are missing from the stream: a gap, not staleness.
    if (cts > context_->LastCts(group)) {
      return Status::Corruption(
          "shipped checkpoint cut ahead of applied stream (group " +
          std::to_string(group) + " cut " + std::to_string(cts) +
          " > applied " + std::to_string(context_->LastCts(group)) + ")");
    }
  }
  return Status::OK();  // cut fully subsumed by applied records
}

void FollowerApplier::RefreshWatermarksLocked() const {
  std::string contents;
  if (env_->FileExists(watermark_path_) &&
      env_->ReadFileToString(watermark_path_, &contents).ok()) {
    const Timestamp advertised = std::strtoull(contents.c_str(), nullptr, 10);
    stats_.primary_watermark =
        std::max(stats_.primary_watermark, advertised);
  }
  Timestamp applied = stats_.follower_watermark;
  const std::size_t groups = context_->GroupCount();
  for (std::size_t g = 0; g < groups; ++g) {
    applied = std::max(applied, context_->LastCts(static_cast<GroupId>(g)));
  }
  stats_.follower_watermark = applied;
  stats_.staleness_lag = stats_.primary_watermark > applied
                             ? stats_.primary_watermark - applied
                             : 0;
}

Status FollowerApplier::DrainFully(int max_rounds) {
  Status last;
  for (int i = 0; i < max_rounds; ++i) {
    last = ApplyOnce();
    if (last.IsCorruption()) return last;
    {
      std::lock_guard<std::mutex> guard(mutex_);
      if (last.ok() && caught_up_) return Status::OK();
    }
  }
  return last.ok() ? Status::Unavailable(
                         "follower did not catch up with the shipped stream")
                   : last;
}

bool FollowerApplier::CaughtUp() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return caught_up_;
}

Status FollowerApplier::sticky_status() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return sticky_;
}

ReplicationStats FollowerApplier::Stats() const {
  std::lock_guard<std::mutex> guard(mutex_);
  RefreshWatermarksLocked();
  return stats_;
}

}  // namespace streamsi
