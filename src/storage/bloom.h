// Bloom filter for SSTable point-lookup short-circuiting.

#ifndef STREAMSI_STORAGE_BLOOM_H_
#define STREAMSI_STORAGE_BLOOM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace streamsi {

/// Double-hashed Bloom filter (Kirsch–Mitzenmacher), LevelDB-style layout:
/// the serialized form is the bit array followed by one byte holding the
/// number of probes.
class BloomFilter {
 public:
  /// Builds a filter for `keys` with `bits_per_key` bits each.
  static std::string Build(const std::vector<std::string>& keys,
                           int bits_per_key);

  /// Tests membership against a serialized filter. Empty filters match
  /// everything (fail-open), so a missing filter never causes a miss.
  static bool MayContain(std::string_view filter, std::string_view key);

 private:
  static std::uint64_t Hash(std::string_view key);
};

}  // namespace streamsi

#endif  // STREAMSI_STORAGE_BLOOM_H_
