#include "storage/lsm_backend.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <optional>

#include "common/coding.h"
#include "common/logging.h"

namespace streamsi {

namespace {

// WAL payload for kPut: length-prefixed key + value. For kDelete: key only.
std::string EncodePut(std::string_view key, std::string_view value) {
  std::string payload;
  PutLengthPrefixed(&payload, key);
  PutLengthPrefixed(&payload, value);
  return payload;
}

}  // namespace

LsmBackend::LsmBackend(const BackendOptions& options)
    : options_(options),
      env_(options.env != nullptr ? options.env : Env::Default()) {}

LsmBackend::~LsmBackend() {
  // Stop the worker AFTER it drained the queue: sealed memtables are still
  // recoverable from their WAL segments, but flushing them keeps the next
  // open's replay short and the flush counters deterministic.
  {
    std::lock_guard<std::mutex> guard(work_mutex_);
    stop_worker_ = true;
  }
  work_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  if (wal_ != nullptr) wal_->Close();
}

Result<std::unique_ptr<LsmBackend>> LsmBackend::Open(
    const BackendOptions& options) {
  if (options.path.empty()) {
    return Status::InvalidArgument("LsmBackend requires options.path");
  }
  auto backend = std::unique_ptr<LsmBackend>(new LsmBackend(options));
  STREAMSI_RETURN_NOT_OK(backend->env_->CreateDirIfMissing(options.path));
  STREAMSI_RETURN_NOT_OK(backend->Recover());
  backend->worker_ = std::thread(&LsmBackend::BackgroundWorker, backend.get());
  return backend;
}

std::string LsmBackend::SsTablePath(std::uint64_t number) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/sst_%08llu.sst",
                static_cast<unsigned long long>(number));
  return options_.path + buf;
}

std::string LsmBackend::WalSegmentPath(std::uint64_t number) const {
  if (number == 0) return options_.path + "/wal.log";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/wal_%06llu.log",
                static_cast<unsigned long long>(number));
  return options_.path + buf;
}

std::shared_ptr<const LsmBackend::Version> LsmBackend::CurrentVersion() const {
  std::lock_guard<SpinLock> guard(version_lock_);
  return version_;
}

void LsmBackend::InstallVersion(std::shared_ptr<const Version> v) {
  std::lock_guard<SpinLock> guard(version_lock_);
  version_ = std::move(v);
}

Status LsmBackend::Recover() {
  // 1. Manifest: whitespace-separated list of live SSTable numbers,
  //    newest first.
  live_files_.clear();
  if (env_->FileExists(ManifestPath())) {
    std::string contents;
    STREAMSI_RETURN_NOT_OK(
        env_->ReadFileToString(ManifestPath(), &contents));
    std::uint64_t number = 0;
    bool in_number = false;
    for (char c : contents) {
      if (c >= '0' && c <= '9') {
        number = number * 10 + static_cast<std::uint64_t>(c - '0');
        in_number = true;
      } else if (in_number) {
        live_files_.push_back(number);
        next_file_number_ = std::max(next_file_number_, number + 1);
        number = 0;
        in_number = false;
      }
    }
    if (in_number) {
      live_files_.push_back(number);
      next_file_number_ = std::max(next_file_number_, number + 1);
    }
  }

  auto version = std::make_shared<Version>();
  version->mem = std::make_shared<SkipList>();
  for (std::uint64_t number : live_files_) {
    auto reader = SsTableReader::Open(SsTablePath(number), env_);
    if (!reader.ok()) return reader.status();
    version->tables.push_back(std::move(reader).value());
  }

  // 2. WAL segments (records after the last flush): discover the live
  //    chain — the historical single "wal.log" is segment 0 — and replay
  //    oldest first, so newer segments' records overwrite older ones.
  // Discover the chain with the shared numbered-file helper: any digit
  // count (a fixed-width parser would silently drop segments past 6
  // digits from replay). "wal.log" is segment 0; "wal_0.log" would
  // collide with it and cannot be produced by WalSegmentPath.
  std::vector<std::uint64_t> segments;
  STREAMSI_RETURN_NOT_OK(
      env_->ListNumberedFiles(options_.path, "wal_", ".log", &segments));
  segments.erase(std::remove(segments.begin(), segments.end(), 0ull),
                 segments.end());
  if (env_->FileExists(options_.path + "/wal.log")) segments.push_back(0);
  std::sort(segments.begin(), segments.end());
  bool newest_torn = false;
  for (std::uint64_t segment : segments) {
    WalReader::ReplayStats stats;
    STREAMSI_RETURN_NOT_OK(WalReader::Replay(
        WalSegmentPath(segment),
        [&](WalRecordType type, std::string_view payload) -> Status {
          const char* p = payload.data();
          const char* limit = p + payload.size();
          std::string_view key;
          p = GetLengthPrefixed(p, limit, &key);
          if (p == nullptr) return Status::Corruption("bad WAL key");
          switch (type) {
            case WalRecordType::kPut: {
              std::string_view value;
              p = GetLengthPrefixed(p, limit, &value);
              if (p == nullptr) return Status::Corruption("bad WAL value");
              version->mem->Upsert(key, value, /*tombstone=*/false);
              break;
            }
            case WalRecordType::kDelete:
              version->mem->Upsert(key, "", /*tombstone=*/true);
              break;
            default:
              break;  // informational / foreign record kinds
          }
          return Status::OK();
        },
        &stats, env_));
    newest_torn = stats.tail_truncated;
    if (stats.tail_truncated) {
      STREAMSI_INFO("WAL tail truncated during recovery (crash tail)");
    }
  }

  InstallVersion(version);

  // Continue appending to the newest segment — unless its tail was torn:
  // records appended after torn garbage would be unreachable to replay, so
  // a torn segment is retired (deleted with the chain at the next flush)
  // and appends start a fresh one.
  active_wal_segment_ = segments.empty() ? 0 : segments.back();
  if (newest_torn) ++active_wal_segment_;
  {
    std::lock_guard<std::mutex> guard(work_mutex_);
    live_wal_segments_ = segments;
    if (segments.empty() || newest_torn) {
      live_wal_segments_.push_back(active_wal_segment_);
    }
  }

  wal_ = std::make_unique<WalWriter>(options_.sync_mode,
                                     options_.simulated_sync_micros, env_);
  return wal_->Open(WalSegmentPath(active_wal_segment_), /*truncate=*/false);
}

Status LsmBackend::Get(std::string_view key, std::string* value) const {
  auto version = CurrentVersion();
  bool tombstone = false;
  if (version->mem->Get(key, value, &tombstone)) return Status::OK();
  if (tombstone) return Status::NotFound();
  for (const auto& sealed : version->sealed) {  // newest first
    if (sealed->Get(key, value, &tombstone)) return Status::OK();
    if (tombstone) return Status::NotFound();
  }
  for (const auto& table : version->tables) {
    bool found = false;
    bool tomb = false;
    STREAMSI_RETURN_NOT_OK(table->Get(key, value, &found, &tomb));
    if (found) return tomb ? Status::NotFound() : Status::OK();
  }
  return Status::NotFound();
}

Status LsmBackend::Put(std::string_view key, std::string_view value,
                       bool sync) {
  return WriteInternal(key, value, /*tombstone=*/false, sync);
}

Status LsmBackend::Delete(std::string_view key, bool sync) {
  return WriteInternal(key, "", /*tombstone=*/true, sync);
}

Status LsmBackend::WriteInternal(std::string_view key, std::string_view value,
                                 bool tombstone, bool sync) {
  std::lock_guard<std::mutex> guard(write_mutex_);
  // A failed background flush/compaction poisons the store: accepting more
  // writes against a backend that cannot persist them would turn an IO
  // error into silent data loss. The flag keeps the per-write check
  // lock-free (the commit path's latch-minimal discipline); the mutex is
  // only taken on the already-failed path to fetch the sticky status.
  if (bg_failed_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> work_guard(work_mutex_);
    return bg_status_;
  }
  if (tombstone) {
    std::string payload;
    PutLengthPrefixed(&payload, key);
    STREAMSI_RETURN_NOT_OK(
        wal_->Append(WalRecordType::kDelete, payload, sync));
  } else {
    STREAMSI_RETURN_NOT_OK(
        wal_->Append(WalRecordType::kPut, EncodePut(key, value), sync));
  }
  auto version = CurrentVersion();
  version->mem->Upsert(key, value, tombstone);
  if (version->mem->ApproximateBytes() >= options_.memtable_bytes) {
    STREAMSI_RETURN_NOT_OK(SealMemTableLocked());
  }
  return Status::OK();
}

Status LsmBackend::SealMemTableLocked() {
  if (CurrentVersion()->mem->NodeCount() == 0) return Status::OK();

  // Bounded admission: the ONLY point a writer ever waits for the flush
  // machinery. Sealing itself is a pointer swap + WAL rotation.
  {
    std::unique_lock<std::mutex> work_lock(work_mutex_);
    if (static_cast<int>(flush_queue_.size()) >=
        std::max(1, options_.max_sealed_memtables)) {
      flush_stalls_.fetch_add(1, std::memory_order_relaxed);
      done_cv_.wait(work_lock, [&] {
        return static_cast<int>(flush_queue_.size()) <
                   std::max(1, options_.max_sealed_memtables) ||
               !bg_status_.ok();
      });
    }
    if (!bg_status_.ok()) return bg_status_;
  }

  // Rotate the WAL first: the sealed memtable's records all live in
  // segments <= sealed_through, so the flush worker can retire exactly
  // those once the SSTable is durable.
  const std::uint64_t sealed_through = active_wal_segment_;
  STREAMSI_RETURN_NOT_OK(wal_->RotateTo(WalSegmentPath(++active_wal_segment_)));
  {
    std::lock_guard<std::mutex> work_guard(work_mutex_);
    live_wal_segments_.push_back(active_wal_segment_);
  }

  std::shared_ptr<SkipList> sealed_mem;
  {
    std::lock_guard<std::mutex> version_guard(version_update_mutex_);
    auto cur = CurrentVersion();
    sealed_mem = cur->mem;
    auto next = std::make_shared<Version>();
    next->mem = std::make_shared<SkipList>();
    next->sealed.reserve(cur->sealed.size() + 1);
    next->sealed.push_back(cur->mem);
    next->sealed.insert(next->sealed.end(), cur->sealed.begin(),
                        cur->sealed.end());
    next->tables = cur->tables;
    InstallVersion(std::move(next));
  }

  {
    std::lock_guard<std::mutex> work_guard(work_mutex_);
    flush_queue_.push_back(FlushJob{std::move(sealed_mem), sealed_through});
    ++jobs_submitted_;
  }
  work_cv_.notify_one();
  return Status::OK();
}

void LsmBackend::BackgroundWorker() {
  for (;;) {
    FlushJob job;
    {
      std::unique_lock<std::mutex> work_lock(work_mutex_);
      work_cv_.wait(work_lock,
                    [&] { return stop_worker_ || !flush_queue_.empty(); });
      if (flush_queue_.empty()) return;  // stop requested, queue drained
      job = std::move(flush_queue_.front());
      flush_queue_.pop_front();
    }
    // Transient IO hiccups must not poison the store on first contact:
    // both steps are idempotent (fresh file number per attempt, atomic
    // manifest publication, orphan SSTables invisible to recovery), so
    // retrying with backoff is safe.
    Status status =
        RunWithRetries("flush", [&] { return FlushJobToSsTable(job); });
    if (status.ok()) {
      status = RunWithRetries("compaction", [&] { return MaybeCompact(); });
    }
    bool newly_poisoned = false;
    {
      std::lock_guard<std::mutex> work_guard(work_mutex_);
      if (!status.ok() && bg_status_.ok()) {
        bg_status_ = status;
        bg_failed_.store(true, std::memory_order_release);
        newly_poisoned = true;
      }
      ++jobs_done_;
    }
    done_cv_.notify_all();
    if (newly_poisoned && options_.on_background_failure) {
      // Outside every lock: the database's hook takes its own health mutex.
      options_.on_background_failure(status);
    }
  }
}

Status LsmBackend::RunWithRetries(const char* what,
                                  const std::function<Status()>& op) {
  Status status = op();
  std::uint64_t backoff_ms = std::max<std::uint64_t>(
      1, options_.flush_retry_backoff_ms);
  for (int attempt = 0;
       !status.ok() && attempt < options_.flush_retry_attempts; ++attempt) {
    // A full disk or a checksum mismatch does not heal on retry.
    if (status.IsNoSpace() || status.IsCorruption()) break;
    {
      // Interruptible backoff: a stop request (or prior poisoning) ends the
      // retry loop instead of holding shutdown hostage for the backoff sum.
      std::unique_lock<std::mutex> work_lock(work_mutex_);
      if (!bg_status_.ok()) break;
      work_cv_.wait_for(work_lock, std::chrono::milliseconds(backoff_ms),
                        [&] { return stop_worker_; });
      if (stop_worker_) break;
    }
    flush_retries_.fetch_add(1, std::memory_order_relaxed);
    STREAMSI_INFO("background " << what << " failed (" << status.ToString()
                                << "), retry " << (attempt + 1) << "/"
                                << options_.flush_retry_attempts);
    status = op();
    backoff_ms *= 2;
  }
  return status;
}

Status LsmBackend::HealthStatus() const {
  std::lock_guard<std::mutex> guard(work_mutex_);
  return bg_status_;
}

Status LsmBackend::FlushJobToSsTable(const FlushJob& job) {
  const std::uint64_t number = next_file_number_++;
  const std::string path = SsTablePath(number);
  SsTableWriter writer(options_.block_bytes, options_.bloom_bits_per_key,
                       env_);
  STREAMSI_RETURN_NOT_OK(writer.Open(path));
  Status add_status = Status::OK();
  job.mem->Iterate(
      [&](std::string_view key, std::string_view value, bool tombstone) {
        add_status = writer.Add(key, value, tombstone);
        return add_status.ok();
      });
  STREAMSI_RETURN_NOT_OK(add_status);
  STREAMSI_RETURN_NOT_OK(writer.Finish());

  auto reader = SsTableReader::Open(path, env_);
  if (!reader.ok()) return reader.status();

  std::vector<std::uint64_t> files;
  files.push_back(number);
  files.insert(files.end(), live_files_.begin(), live_files_.end());
  STREAMSI_RETURN_NOT_OK(WriteManifest(files));
  live_files_ = std::move(files);

  {
    std::lock_guard<std::mutex> version_guard(version_update_mutex_);
    auto cur = CurrentVersion();
    auto next = std::make_shared<Version>();
    next->mem = cur->mem;
    next->sealed = cur->sealed;
    // FIFO: the flushed memtable is the oldest sealed one.
    auto it = std::find(next->sealed.begin(), next->sealed.end(), job.mem);
    if (it != next->sealed.end()) next->sealed.erase(it);
    // Newer than every existing SSTable (older sealed memtables flushed
    // before it), older than the remaining sealed ones and the memtable.
    next->tables.reserve(cur->tables.size() + 1);
    next->tables.push_back(std::move(reader).value());
    next->tables.insert(next->tables.end(), cur->tables.begin(),
                        cur->tables.end());
    InstallVersion(std::move(next));
  }

  // The flushed data is durable in the SSTable: its WAL segments are
  // obsolete. FIFO flushing means an older segment never outlives a newer
  // one, which keeps stale-WAL shadowing impossible on recovery.
  {
    std::lock_guard<std::mutex> work_guard(work_mutex_);
    auto it = live_wal_segments_.begin();
    while (it != live_wal_segments_.end() && *it <= job.sealed_through) {
      // A failed unlink stays in the list AND stops the pass (retried by
      // the next flush): deleting a newer segment while an older one
      // survives on disk would let a later recovery replay the stale old
      // records OVER newer SSTable data — the older-never-outlives-newer
      // invariant the whole segment scheme rests on.
      if (!env_->RemoveFile(WalSegmentPath(*it)).ok()) break;
      it = live_wal_segments_.erase(it);
    }
  }

  flushes_.fetch_add(1, std::memory_order_relaxed);
  if (std::this_thread::get_id() == worker_.get_id()) {
    background_flushes_.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status LsmBackend::MaybeCompact() {
  if (static_cast<int>(live_files_.size()) <= options_.l0_compaction_trigger) {
    return Status::OK();
  }
  // Full merge: newest-wins per key; drop tombstones (no older level exists
  // after a full merge).
  auto version = CurrentVersion();
  std::map<std::string, std::pair<std::string, bool>> merged;
  for (auto it = version->tables.rbegin(); it != version->tables.rend();
       ++it) {  // oldest -> newest so newer overwrites
    STREAMSI_RETURN_NOT_OK((*it)->Iterate(
        [&](std::string_view key, std::string_view value, bool tombstone) {
          merged[std::string(key)] = {std::string(value), tombstone};
          return true;
        }));
  }

  const std::uint64_t number = next_file_number_++;
  const std::string path = SsTablePath(number);
  SsTableWriter writer(options_.block_bytes, options_.bloom_bits_per_key,
                       env_);
  STREAMSI_RETURN_NOT_OK(writer.Open(path));
  for (const auto& [key, entry] : merged) {
    if (entry.second) continue;  // tombstone: gone for good
    STREAMSI_RETURN_NOT_OK(writer.Add(key, entry.first, false));
  }
  STREAMSI_RETURN_NOT_OK(writer.Finish());

  auto reader = SsTableReader::Open(path, env_);
  if (!reader.ok()) return reader.status();

  const std::vector<std::uint64_t> old_files = live_files_;
  std::vector<std::uint64_t> files{number};
  STREAMSI_RETURN_NOT_OK(WriteManifest(files));
  live_files_ = std::move(files);

  {
    std::lock_guard<std::mutex> version_guard(version_update_mutex_);
    auto cur = CurrentVersion();
    auto next = std::make_shared<Version>();
    next->mem = cur->mem;        // memtable unaffected
    next->sealed = cur->sealed;  // sealed memtables unaffected
    next->tables.push_back(std::move(reader).value());
    InstallVersion(std::move(next));
  }

  for (std::uint64_t old : old_files) {
    (void)env_->RemoveFile(SsTablePath(old));
  }
  compactions_.fetch_add(1, std::memory_order_relaxed);
  if (std::this_thread::get_id() == worker_.get_id()) {
    background_compactions_.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status LsmBackend::WriteManifest(const std::vector<std::uint64_t>& files) {
  std::string contents;
  for (std::uint64_t number : files) {
    contents += std::to_string(number);
    contents += '\n';
  }
  return env_->WriteStringToFileAtomic(ManifestPath(), contents);
}

Status LsmBackend::Scan(const ScanCallback& callback) const {
  auto version = CurrentVersion();
  // Newest-wins merge across memtable + sealed memtables + tables.
  std::map<std::string, std::optional<std::string>> merged;
  for (auto it = version->tables.rbegin(); it != version->tables.rend();
       ++it) {
    STREAMSI_RETURN_NOT_OK((*it)->Iterate(
        [&](std::string_view key, std::string_view value, bool tombstone) {
          if (tombstone) {
            merged[std::string(key)] = std::nullopt;
          } else {
            merged[std::string(key)] = std::string(value);
          }
          return true;
        }));
  }
  const auto upsert = [&](std::string_view key, std::string_view value,
                          bool tombstone) {
    if (tombstone) {
      merged[std::string(key)] = std::nullopt;
    } else {
      merged[std::string(key)] = std::string(value);
    }
    return true;
  };
  for (auto it = version->sealed.rbegin(); it != version->sealed.rend();
       ++it) {  // oldest -> newest
    (*it)->Iterate(upsert);
  }
  version->mem->Iterate(upsert);
  for (const auto& [key, value] : merged) {
    if (!value.has_value()) continue;
    if (!callback(key, *value)) return Status::OK();
  }
  return Status::OK();
}

Status LsmBackend::ScanRange(std::string_view lo, std::string_view hi,
                             const ScanCallback& callback) const {
  auto version = CurrentVersion();
  // Same newest-wins merge as Scan, bounded to [lo, hi). Every source is
  // sorted, so each one skips forward to `lo` and stops at `hi` instead of
  // materializing keys outside the range.
  std::map<std::string, std::optional<std::string>> merged;
  const auto upsert = [&](std::string_view key, std::string_view value,
                          bool tombstone) {
    if (!hi.empty() && key >= hi) return false;  // sorted source: done
    if (tombstone) {
      merged[std::string(key)] = std::nullopt;
    } else {
      merged[std::string(key)] = std::string(value);
    }
    return true;
  };
  for (auto it = version->tables.rbegin(); it != version->tables.rend();
       ++it) {
    STREAMSI_RETURN_NOT_OK((*it)->Iterate(
        [&](std::string_view key, std::string_view value, bool tombstone) {
          if (key < lo) return true;  // not yet in range
          return upsert(key, value, tombstone);
        }));
  }
  for (auto it = version->sealed.rbegin(); it != version->sealed.rend();
       ++it) {  // oldest -> newest
    (*it)->IterateFrom(lo, upsert);
  }
  version->mem->IterateFrom(lo, upsert);
  for (const auto& [key, value] : merged) {
    if (!value.has_value()) continue;
    if (!callback(key, *value)) return Status::OK();
  }
  return Status::OK();
}

std::uint64_t LsmBackend::ApproximateCount() const {
  auto version = CurrentVersion();
  std::uint64_t count = version->mem->NodeCount();
  for (const auto& sealed : version->sealed) count += sealed->NodeCount();
  for (const auto& table : version->tables) count += table->entry_count();
  return count;
}

Status LsmBackend::Flush() {
  {
    std::lock_guard<std::mutex> guard(write_mutex_);
    if (CurrentVersion()->mem->NodeCount() > 0) {
      STREAMSI_RETURN_NOT_OK(SealMemTableLocked());
    }
  }
  // Barrier: every job sealed so far (ours included) flushed + compacted.
  std::unique_lock<std::mutex> work_lock(work_mutex_);
  const std::uint64_t target = jobs_submitted_;
  done_cv_.wait(work_lock, [&] { return jobs_done_ >= target; });
  return bg_status_;
}

int LsmBackend::SsTableCount() const {
  return static_cast<int>(CurrentVersion()->tables.size());
}

int LsmBackend::SealedMemtableCount() const {
  return static_cast<int>(CurrentVersion()->sealed.size());
}

}  // namespace streamsi
