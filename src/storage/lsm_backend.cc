#include "storage/lsm_backend.h"

#include <algorithm>
#include <map>
#include <optional>

#include "common/coding.h"
#include "common/logging.h"

namespace streamsi {

namespace {

// WAL payload for kPut: length-prefixed key + value. For kDelete: key only.
std::string EncodePut(std::string_view key, std::string_view value) {
  std::string payload;
  PutLengthPrefixed(&payload, key);
  PutLengthPrefixed(&payload, value);
  return payload;
}

}  // namespace

LsmBackend::LsmBackend(const BackendOptions& options) : options_(options) {}

LsmBackend::~LsmBackend() {
  if (wal_ != nullptr) wal_->Close();
}

Result<std::unique_ptr<LsmBackend>> LsmBackend::Open(
    const BackendOptions& options) {
  if (options.path.empty()) {
    return Status::InvalidArgument("LsmBackend requires options.path");
  }
  STREAMSI_RETURN_NOT_OK(fsutil::CreateDirIfMissing(options.path));
  auto backend = std::unique_ptr<LsmBackend>(new LsmBackend(options));
  STREAMSI_RETURN_NOT_OK(backend->Recover());
  return backend;
}

std::string LsmBackend::SsTablePath(std::uint64_t number) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/sst_%08llu.sst",
                static_cast<unsigned long long>(number));
  return options_.path + buf;
}

std::shared_ptr<const LsmBackend::Version> LsmBackend::CurrentVersion() const {
  std::lock_guard<SpinLock> guard(version_lock_);
  return version_;
}

void LsmBackend::InstallVersion(std::shared_ptr<const Version> v) {
  std::lock_guard<SpinLock> guard(version_lock_);
  version_ = std::move(v);
}

Status LsmBackend::Recover() {
  // 1. Manifest: whitespace-separated list of live SSTable numbers,
  //    newest first.
  live_files_.clear();
  if (fsutil::FileExists(ManifestPath())) {
    std::string contents;
    STREAMSI_RETURN_NOT_OK(
        fsutil::ReadFileToString(ManifestPath(), &contents));
    std::uint64_t number = 0;
    bool in_number = false;
    for (char c : contents) {
      if (c >= '0' && c <= '9') {
        number = number * 10 + static_cast<std::uint64_t>(c - '0');
        in_number = true;
      } else if (in_number) {
        live_files_.push_back(number);
        next_file_number_ = std::max(next_file_number_, number + 1);
        number = 0;
        in_number = false;
      }
    }
    if (in_number) {
      live_files_.push_back(number);
      next_file_number_ = std::max(next_file_number_, number + 1);
    }
  }

  auto version = std::make_shared<Version>();
  version->mem = std::make_shared<SkipList>();
  for (std::uint64_t number : live_files_) {
    auto reader = SsTableReader::Open(SsTablePath(number));
    if (!reader.ok()) return reader.status();
    version->tables.push_back(std::move(reader).value());
  }

  // 2. WAL replay into the fresh memtable (records after the last flush).
  if (fsutil::FileExists(WalPath())) {
    WalReader::ReplayStats stats;
    STREAMSI_RETURN_NOT_OK(WalReader::Replay(
        WalPath(),
        [&](WalRecordType type, std::string_view payload) -> Status {
          const char* p = payload.data();
          const char* limit = p + payload.size();
          std::string_view key;
          p = GetLengthPrefixed(p, limit, &key);
          if (p == nullptr) return Status::Corruption("bad WAL key");
          switch (type) {
            case WalRecordType::kPut: {
              std::string_view value;
              p = GetLengthPrefixed(p, limit, &value);
              if (p == nullptr) return Status::Corruption("bad WAL value");
              version->mem->Upsert(key, value, /*tombstone=*/false);
              break;
            }
            case WalRecordType::kDelete:
              version->mem->Upsert(key, "", /*tombstone=*/true);
              break;
            case WalRecordType::kCheckpoint:
              break;  // informational
          }
          return Status::OK();
        },
        &stats));
    if (stats.tail_truncated) {
      STREAMSI_INFO("WAL tail truncated during recovery (crash tail)");
    }
  }

  InstallVersion(version);

  wal_ = std::make_unique<WalWriter>(options_.sync_mode,
                                     options_.simulated_sync_micros);
  return wal_->Open(WalPath(), /*truncate=*/false);
}

Status LsmBackend::Get(std::string_view key, std::string* value) const {
  auto version = CurrentVersion();
  bool tombstone = false;
  if (version->mem->Get(key, value, &tombstone)) return Status::OK();
  if (tombstone) return Status::NotFound();
  for (const auto& table : version->tables) {
    bool found = false;
    bool tomb = false;
    STREAMSI_RETURN_NOT_OK(table->Get(key, value, &found, &tomb));
    if (found) return tomb ? Status::NotFound() : Status::OK();
  }
  return Status::NotFound();
}

Status LsmBackend::Put(std::string_view key, std::string_view value,
                       bool sync) {
  return WriteInternal(key, value, /*tombstone=*/false, sync);
}

Status LsmBackend::Delete(std::string_view key, bool sync) {
  return WriteInternal(key, "", /*tombstone=*/true, sync);
}

Status LsmBackend::WriteInternal(std::string_view key, std::string_view value,
                                 bool tombstone, bool sync) {
  std::lock_guard<std::mutex> guard(write_mutex_);
  if (tombstone) {
    std::string payload;
    PutLengthPrefixed(&payload, key);
    STREAMSI_RETURN_NOT_OK(
        wal_->Append(WalRecordType::kDelete, payload, sync));
  } else {
    STREAMSI_RETURN_NOT_OK(
        wal_->Append(WalRecordType::kPut, EncodePut(key, value), sync));
  }
  auto version = CurrentVersion();
  version->mem->Upsert(key, value, tombstone);
  if (version->mem->ApproximateBytes() >= options_.memtable_bytes) {
    STREAMSI_RETURN_NOT_OK(FlushMemTableLocked());
  }
  return Status::OK();
}

Status LsmBackend::FlushMemTableLocked() {
  auto old_version = CurrentVersion();
  if (old_version->mem->NodeCount() == 0) return Status::OK();

  const std::uint64_t number = next_file_number_++;
  const std::string path = SsTablePath(number);
  SsTableWriter writer(options_.block_bytes, options_.bloom_bits_per_key);
  STREAMSI_RETURN_NOT_OK(writer.Open(path));
  Status add_status = Status::OK();
  old_version->mem->Iterate(
      [&](std::string_view key, std::string_view value, bool tombstone) {
        add_status = writer.Add(key, value, tombstone);
        return add_status.ok();
      });
  STREAMSI_RETURN_NOT_OK(add_status);
  STREAMSI_RETURN_NOT_OK(writer.Finish());

  auto reader = SsTableReader::Open(path);
  if (!reader.ok()) return reader.status();

  std::vector<std::uint64_t> files;
  files.push_back(number);
  files.insert(files.end(), live_files_.begin(), live_files_.end());
  STREAMSI_RETURN_NOT_OK(WriteManifestLocked(files));
  live_files_ = std::move(files);

  auto new_version = std::make_shared<Version>();
  new_version->mem = std::make_shared<SkipList>();
  new_version->tables.push_back(std::move(reader).value());
  new_version->tables.insert(new_version->tables.end(),
                             old_version->tables.begin(),
                             old_version->tables.end());
  InstallVersion(new_version);

  // The flushed data is durable in the SSTable; start a fresh WAL.
  STREAMSI_RETURN_NOT_OK(wal_->Close());
  wal_ = std::make_unique<WalWriter>(options_.sync_mode,
                                     options_.simulated_sync_micros);
  STREAMSI_RETURN_NOT_OK(wal_->Open(WalPath(), /*truncate=*/true));

  flushes_.fetch_add(1, std::memory_order_relaxed);
  return MaybeCompactLocked();
}

Status LsmBackend::MaybeCompactLocked() {
  if (static_cast<int>(live_files_.size()) <= options_.l0_compaction_trigger) {
    return Status::OK();
  }
  // Full merge: newest-wins per key; drop tombstones (no older level exists
  // after a full merge).
  auto version = CurrentVersion();
  std::map<std::string, std::pair<std::string, bool>> merged;
  for (auto it = version->tables.rbegin(); it != version->tables.rend();
       ++it) {  // oldest -> newest so newer overwrites
    STREAMSI_RETURN_NOT_OK((*it)->Iterate(
        [&](std::string_view key, std::string_view value, bool tombstone) {
          merged[std::string(key)] = {std::string(value), tombstone};
          return true;
        }));
  }

  const std::uint64_t number = next_file_number_++;
  const std::string path = SsTablePath(number);
  SsTableWriter writer(options_.block_bytes, options_.bloom_bits_per_key);
  STREAMSI_RETURN_NOT_OK(writer.Open(path));
  for (const auto& [key, entry] : merged) {
    if (entry.second) continue;  // tombstone: gone for good
    STREAMSI_RETURN_NOT_OK(writer.Add(key, entry.first, false));
  }
  STREAMSI_RETURN_NOT_OK(writer.Finish());

  auto reader = SsTableReader::Open(path);
  if (!reader.ok()) return reader.status();

  const std::vector<std::uint64_t> old_files = live_files_;
  std::vector<std::uint64_t> files{number};
  STREAMSI_RETURN_NOT_OK(WriteManifestLocked(files));
  live_files_ = std::move(files);

  auto new_version = std::make_shared<Version>();
  new_version->mem = version->mem;  // memtable unaffected
  new_version->tables.push_back(std::move(reader).value());
  InstallVersion(new_version);

  for (std::uint64_t old : old_files) {
    (void)fsutil::RemoveFile(SsTablePath(old));
  }
  compactions_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status LsmBackend::WriteManifestLocked(
    const std::vector<std::uint64_t>& files) {
  std::string contents;
  for (std::uint64_t number : files) {
    contents += std::to_string(number);
    contents += '\n';
  }
  return fsutil::WriteStringToFileAtomic(ManifestPath(), contents);
}

Status LsmBackend::Scan(const ScanCallback& callback) const {
  auto version = CurrentVersion();
  // Newest-wins merge across memtable + tables.
  std::map<std::string, std::optional<std::string>> merged;
  for (auto it = version->tables.rbegin(); it != version->tables.rend();
       ++it) {
    STREAMSI_RETURN_NOT_OK((*it)->Iterate(
        [&](std::string_view key, std::string_view value, bool tombstone) {
          if (tombstone) {
            merged[std::string(key)] = std::nullopt;
          } else {
            merged[std::string(key)] = std::string(value);
          }
          return true;
        }));
  }
  version->mem->Iterate(
      [&](std::string_view key, std::string_view value, bool tombstone) {
        if (tombstone) {
          merged[std::string(key)] = std::nullopt;
        } else {
          merged[std::string(key)] = std::string(value);
        }
        return true;
      });
  for (const auto& [key, value] : merged) {
    if (!value.has_value()) continue;
    if (!callback(key, *value)) return Status::OK();
  }
  return Status::OK();
}

std::uint64_t LsmBackend::ApproximateCount() const {
  auto version = CurrentVersion();
  std::uint64_t count = version->mem->NodeCount();
  for (const auto& table : version->tables) count += table->entry_count();
  return count;
}

Status LsmBackend::Flush() {
  std::lock_guard<std::mutex> guard(write_mutex_);
  return FlushMemTableLocked();
}

int LsmBackend::SsTableCount() const {
  return static_cast<int>(CurrentVersion()->tables.size());
}

}  // namespace streamsi
