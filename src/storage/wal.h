// Write-ahead log: CRC-framed append-only record log with configurable
// durability (fsync per write, or deterministic simulated sync latency).
//
// Record frame: [masked crc32c(4)] [payload_len(4)] [type(1)] [payload].
// The CRC covers type + payload. Torn tails (partial final record after a
// crash) are detected and truncated during replay.

#ifndef STREAMSI_STORAGE_WAL_H_
#define STREAMSI_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "common/env.h"
#include "common/status.h"
#include "storage/backend.h"

namespace streamsi {

/// Logical record types inside the WAL.
enum class WalRecordType : unsigned char {
  kPut = 1,
  kDelete = 2,
  kCheckpoint = 3,  ///< marks "everything before this is in SSTables"
};

/// Append-only writer. Thread-safe (internally serialized).
class WalWriter {
 public:
  WalWriter(SyncMode sync_mode, std::uint64_t simulated_sync_micros)
      : sync_mode_(sync_mode),
        simulated_sync_micros_(simulated_sync_micros) {}

  Status Open(const std::string& path, bool truncate);

  /// Appends one record; if `sync`, it is durable on return per SyncMode.
  Status Append(WalRecordType type, std::string_view payload, bool sync);

  /// Total bytes appended so far.
  std::uint64_t size() const { return file_.size(); }

  Status SyncNow();
  Status Close();

 private:
  Status ApplySync();

  std::mutex mutex_;
  WritableFile file_;
  SyncMode sync_mode_;
  std::uint64_t simulated_sync_micros_;
};

/// Sequential replay of a WAL file.
///
/// The visitor receives each well-formed record in order. Replay stops at
/// the first corrupt/torn record; that is reported as OK with
/// `tail_truncated = true` (crash tail), because an interrupted final write
/// is expected after a crash.
class WalReader {
 public:
  struct ReplayStats {
    std::uint64_t records = 0;
    bool tail_truncated = false;
  };

  using Visitor =
      std::function<Status(WalRecordType type, std::string_view payload)>;

  static Status Replay(const std::string& path, const Visitor& visitor,
                       ReplayStats* stats);
};

}  // namespace streamsi

#endif  // STREAMSI_STORAGE_WAL_H_
