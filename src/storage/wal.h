// Write-ahead log: CRC-framed append-only record log with configurable
// durability (fsync per batch, or deterministic simulated sync latency).
//
// Record frame: [masked crc32c(4)] [payload_len(4)] [type(1)] [payload].
// The CRC covers type + payload. Torn tails (partial final record after a
// crash) are detected and truncated during replay.
//
// Group commit (leader/follower): concurrent synchronous appenders encode
// their records into a shared pending batch under the writer mutex; the
// first of them becomes the batch leader, writes and syncs the whole batch
// with the mutex *released*, and everyone whose record rode in that batch
// returns once the batch's generation is durable. Committers that arrive
// while a leader's sync is in flight accumulate the next batch — one
// fsync (or simulated sync sleep) amortizes over every commit in the batch
// instead of serializing per record.

#ifndef STREAMSI_STORAGE_WAL_H_
#define STREAMSI_STORAGE_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "common/env.h"
#include "common/status.h"
#include "storage/backend.h"

namespace streamsi {

/// Logical record types inside the WAL.
enum class WalRecordType : unsigned char {
  kPut = 1,
  kDelete = 2,
  kCheckpoint = 3,     ///< legacy single-group LastCTS record (decode only)
  kGroupCommit = 4,    ///< one commit's LastCTS advance across all its groups
  kCheckpointCut = 5,  ///< full LastCTS snapshot: every group's value at one
                       ///< publication-seqlock-consistent cut (checkpoints)
  kStateDecl = 6,      ///< catalog: one state declaration
  kGroupDecl = 7,      ///< catalog: one topology-group declaration
  kReplicatedCommit = 8,  ///< kGroupCommit payload + the commit's write sets
                          ///< (log shipping: followers replay data from the
                          ///< shipped stream alone). Replays everywhere a
                          ///< kGroupCommit does — the payload is a strict
                          ///< superset.
  kIndexDecl = 9,  ///< catalog: one secondary-index binding (index state
                   ///< derived from a base state)
};

/// Append-only writer. Thread-safe; synchronous appends use group commit.
class WalWriter {
 public:
  WalWriter(SyncMode sync_mode, std::uint64_t simulated_sync_micros,
            Env* env = nullptr)
      : env_(env != nullptr ? env : Env::Default()),
        sync_mode_(sync_mode),
        simulated_sync_micros_(simulated_sync_micros) {}

  Status Open(const std::string& path, bool truncate);

  /// Appends one record; if `sync`, it is durable on return per SyncMode
  /// (possibly batched with concurrent appenders — one sync per batch).
  /// Unsynced appends are written through immediately unless a batch sync
  /// is in flight, in which case they ride with the next batch write.
  Status Append(WalRecordType type, std::string_view payload, bool sync);

  /// Total bytes appended so far (including bytes still in the pending
  /// batch buffer).
  std::uint64_t size() const {
    return appended_bytes_.load(std::memory_order_acquire);
  }

  /// Number of batch writes performed (observability: group-commit ratio =
  /// records appended / batches synced).
  std::uint64_t batches_written() const {
    return batches_written_.load(std::memory_order_relaxed);
  }

  Status SyncNow();

  /// The first IO error this writer hit, if any. Once set, every later
  /// append fails with it — the health machine probes this to decide
  /// whether the commit path is permanently poisoned.
  Status sticky_status() {
    std::lock_guard<std::mutex> guard(mutex_);
    return sticky_status_;
  }

  /// Segment rotation: drains every in-flight batch and parked sync waiter
  /// (their records become durable in the CURRENT file), then atomically
  /// switches appends over to `path` (created/truncated). Concurrent
  /// appenders simply land on one side of the switch — every record lives
  /// in exactly one segment. Callers own naming and deletion of obsolete
  /// segments (checkpoint truncation, LSM memtable seals).
  Status RotateTo(const std::string& path);

  Status Close();

 private:
  Status ApplySync();
  /// Appends one framed record to `out` using no temporary buffers.
  static void EncodeRecordTo(std::string* out, WalRecordType type,
                             std::string_view payload);
  /// Writes the accumulated pending batch through to the file (no sync).
  /// Caller holds mutex_ and there is no leader in flight.
  Status FlushPendingLocked();
  /// Leader/follower protocol: returns once every batch up to `my_batch`
  /// is durable (leading batches ourselves whenever no leader is active).
  Status AwaitDurableLocked(std::unique_lock<std::mutex>& lk,
                            std::uint64_t my_batch);

  std::mutex mutex_;
  std::condition_variable cv_;
  Env* env_;
  std::unique_ptr<WritableFile> file_;
  SyncMode sync_mode_;
  std::uint64_t simulated_sync_micros_;

  // Group-commit state, all under mutex_ (except the atomics).
  std::string pending_;   ///< batch currently accumulating
  std::string writing_;   ///< batch the leader is writing (buffer reused)
  bool leader_active_ = false;
  bool sync_requested_ = false;  ///< pending batch contains a sync record
  std::uint64_t accumulating_batch_ = 1;  ///< id of the pending batch
  std::uint64_t durable_batch_ = 0;       ///< highest batch synced
  Status sticky_status_;  ///< first IO error; poisons all later appends
  std::atomic<std::uint64_t> appended_bytes_{0};
  std::atomic<std::uint64_t> batches_written_{0};
};

/// Sequential replay of a WAL file.
///
/// The visitor receives each well-formed record in order. Replay stops at
/// the first corrupt/torn record; that is reported as OK with
/// `tail_truncated = true` (crash tail), because an interrupted final write
/// is expected after a crash. A torn group-commit batch therefore recovers
/// to a prefix of whole records — i.e. a prefix of whole commits, since
/// each commit's group records form a single record.
class WalReader {
 public:
  struct ReplayStats {
    std::uint64_t records = 0;
    /// Byte offset where replay stopped: the length of the valid record
    /// prefix. Equals the file size unless the tail was torn. Reopeners
    /// use it to avoid appending after torn garbage (records appended
    /// beyond a bad frame would be unreachable to every future replay).
    std::uint64_t valid_bytes = 0;
    bool tail_truncated = false;
  };

  using Visitor =
      std::function<Status(WalRecordType type, std::string_view payload)>;

  static Status Replay(const std::string& path, const Visitor& visitor,
                       ReplayStats* stats, Env* env = nullptr);

  /// Length of the longest prefix of `contents` made of whole, CRC-valid
  /// frames — the same boundary Replay stops at, computed without invoking
  /// a visitor. Log shipping uses it to hand out only complete frames of a
  /// live segment (a frame-aligned tail).
  static std::uint64_t ValidFramePrefix(std::string_view contents);
};

}  // namespace streamsi

#endif  // STREAMSI_STORAGE_WAL_H_
