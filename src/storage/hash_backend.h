// Sharded in-memory hash map backend (volatile).

#ifndef STREAMSI_STORAGE_HASH_BACKEND_H_
#define STREAMSI_STORAGE_HASH_BACKEND_H_

#include <array>
#include <atomic>
#include <string>
#include <unordered_map>

#include "common/latch.h"
#include "storage/backend.h"

namespace streamsi {

/// Volatile hash backend: N shards, each an unordered_map guarded by an
/// RwLatch. Scans are unordered.
class HashTableBackend final : public TableBackend {
 public:
  explicit HashTableBackend(const BackendOptions& options = {});

  Status Get(std::string_view key, std::string* value) const override;
  Status Put(std::string_view key, std::string_view value, bool sync) override;
  Status Delete(std::string_view key, bool sync) override;
  Status Scan(const ScanCallback& callback) const override;
  /// A hash map has no key order to offer; filtering a full scan down to
  /// [lo, hi) would silently hide an O(n) walk behind a range API, so this
  /// refuses instead. Pick kSkipList or kLsm for states that need ranges.
  Status ScanRange(std::string_view, std::string_view,
                   const ScanCallback&) const override {
    return Status::NotSupported(
        "hash backend cannot serve ordered range scans: keys are stored "
        "unordered; use a skiplist or lsm backend for this state");
  }
  std::uint64_t ApproximateCount() const override;
  Status Flush() override { return Status::OK(); }
  bool IsPersistent() const override { return false; }
  std::string_view Name() const override { return "hash"; }

 private:
  static constexpr std::size_t kShards = 64;

  struct Shard {
    mutable RwLatch latch;
    std::unordered_map<std::string, std::string> map;
  };

  std::size_t ShardFor(std::string_view key) const;

  std::array<Shard, kShards> shards_;
  std::atomic<std::uint64_t> count_{0};
};

}  // namespace streamsi

#endif  // STREAMSI_STORAGE_HASH_BACKEND_H_
