#include "storage/backend.h"

#include "storage/hash_backend.h"
#include "storage/lsm_backend.h"
#include "storage/skiplist_backend.h"

namespace streamsi {

Result<std::unique_ptr<TableBackend>> OpenBackend(
    BackendType type, const BackendOptions& options) {
  switch (type) {
    case BackendType::kHash:
      return std::unique_ptr<TableBackend>(new HashTableBackend(options));
    case BackendType::kSkipList:
      return std::unique_ptr<TableBackend>(new SkipListBackend(options));
    case BackendType::kLsm: {
      auto backend = LsmBackend::Open(options);
      if (!backend.ok()) return backend.status();
      return std::unique_ptr<TableBackend>(std::move(backend).value());
    }
  }
  return Status::InvalidArgument("unknown backend type");
}

Result<BackendType> ParseBackendType(std::string_view name) {
  if (name == "hash") return BackendType::kHash;
  if (name == "skiplist") return BackendType::kSkipList;
  if (name == "lsm") return BackendType::kLsm;
  return Status::InvalidArgument("unknown backend: " + std::string(name));
}

}  // namespace streamsi
