// LsmBackend: persistent log-structured merge key-value store built from
// scratch — the stand-in for RocksDB in the paper's evaluation (§5.1: LSM
// design, default config, sync=true for failure atomicity).
//
// Architecture:
//   Put/Delete -> WAL append (sync per SyncMode) -> memtable (skip list)
//   memtable full -> flush to a new SSTable, manifest update, WAL reset
//   too many SSTables -> full merge compaction (newest-wins)
//   Get -> memtable, then SSTables newest-to-oldest
//   recovery -> manifest (live SSTables) + WAL replay into a fresh memtable
//
// Readers never block behind writers: they grab an immutable snapshot
// (shared_ptr to the current Version) and read lock-free structures.

#ifndef STREAMSI_STORAGE_LSM_BACKEND_H_
#define STREAMSI_STORAGE_LSM_BACKEND_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/latch.h"
#include "storage/backend.h"
#include "storage/skiplist.h"
#include "storage/sstable.h"
#include "storage/wal.h"

namespace streamsi {

class LsmBackend final : public TableBackend {
 public:
  /// Opens (and recovers) the store in `options.path`.
  static Result<std::unique_ptr<LsmBackend>> Open(const BackendOptions& options);

  ~LsmBackend() override;

  Status Get(std::string_view key, std::string* value) const override;
  Status Put(std::string_view key, std::string_view value, bool sync) override;
  Status Delete(std::string_view key, bool sync) override;
  Status Scan(const ScanCallback& callback) const override;
  std::uint64_t ApproximateCount() const override;
  Status Flush() override;
  bool IsPersistent() const override { return true; }
  std::string_view Name() const override { return "lsm"; }

  /// Diagnostics.
  int SsTableCount() const;
  std::uint64_t FlushCount() const {
    return flushes_.load(std::memory_order_relaxed);
  }
  std::uint64_t CompactionCount() const {
    return compactions_.load(std::memory_order_relaxed);
  }

 private:
  explicit LsmBackend(const BackendOptions& options);

  /// Immutable view of the store used by readers.
  struct Version {
    std::shared_ptr<SkipList> mem;
    // Newest first; a hit in an earlier element shadows later ones.
    std::vector<std::shared_ptr<SsTableReader>> tables;
  };

  std::shared_ptr<const Version> CurrentVersion() const;
  void InstallVersion(std::shared_ptr<const Version> v);

  Status Recover();
  Status WriteInternal(std::string_view key, std::string_view value,
                       bool tombstone, bool sync);
  /// Must hold write_mutex_. Flushes the memtable and maybe compacts.
  Status FlushMemTableLocked();
  Status MaybeCompactLocked();
  Status WriteManifestLocked(const std::vector<std::uint64_t>& files);

  std::string SsTablePath(std::uint64_t number) const;
  std::string WalPath() const { return options_.path + "/wal.log"; }
  std::string ManifestPath() const { return options_.path + "/MANIFEST"; }

  BackendOptions options_;

  mutable SpinLock version_lock_;
  std::shared_ptr<const Version> version_;

  std::mutex write_mutex_;  // serializes writers, flushes, compactions
  std::unique_ptr<WalWriter> wal_;
  std::vector<std::uint64_t> live_files_;  // newest first
  std::uint64_t next_file_number_ = 1;

  std::atomic<std::uint64_t> flushes_{0};
  std::atomic<std::uint64_t> compactions_{0};
};

}  // namespace streamsi

#endif  // STREAMSI_STORAGE_LSM_BACKEND_H_
