// LsmBackend: persistent log-structured merge key-value store built from
// scratch — the stand-in for RocksDB in the paper's evaluation (§5.1: LSM
// design, default config, sync=true for failure atomicity).
//
// Architecture:
//   Put/Delete -> WAL append (sync per SyncMode) -> memtable (skip list)
//   memtable full -> SEALED (immutable) + fresh memtable + WAL segment
//                    rotation; a background worker flushes sealed memtables
//                    to SSTables, updates the manifest and deletes the WAL
//                    segments they covered
//   too many SSTables -> full merge compaction (newest-wins), also on the
//                    background worker
//   Get -> memtable, sealed memtables (newest first), SSTables newest-first
//   recovery -> manifest (live SSTables) + replay of every live WAL segment
//               (oldest first) into a fresh memtable
//
// Writers never pay a flush or compaction inline: sealing is a pointer swap
// plus a WAL rotation. The only writer stall is bounded admission — when
// `max_sealed_memtables` sealed memtables are already queued (the worker
// cannot keep up), the sealing writer waits for the queue to drain below
// the ceiling (`FlushStallCount` counts these).
//
// Readers never block behind writers: they grab an immutable snapshot
// (shared_ptr to the current Version) and read lock-free structures.

#ifndef STREAMSI_STORAGE_LSM_BACKEND_H_
#define STREAMSI_STORAGE_LSM_BACKEND_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/latch.h"
#include "storage/backend.h"
#include "storage/skiplist.h"
#include "storage/sstable.h"
#include "storage/wal.h"

namespace streamsi {

class LsmBackend final : public TableBackend {
 public:
  /// Opens (and recovers) the store in `options.path`.
  static Result<std::unique_ptr<LsmBackend>> Open(const BackendOptions& options);

  ~LsmBackend() override;

  Status Get(std::string_view key, std::string* value) const override;
  Status Put(std::string_view key, std::string_view value, bool sync) override;
  Status Delete(std::string_view key, bool sync) override;
  Status Scan(const ScanCallback& callback) const override;
  Status ScanRange(std::string_view lo, std::string_view hi,
                   const ScanCallback& callback) const override;
  std::uint64_t ApproximateCount() const override;
  /// Synchronous barrier: seals the active memtable (if non-empty) and
  /// waits until the background worker has flushed every queued memtable
  /// (and run any triggered compaction). Checkpoints and tests use this;
  /// the commit path never does.
  Status Flush() override;
  bool IsPersistent() const override { return true; }
  std::string_view Name() const override { return "lsm"; }

  /// Diagnostics.
  int SsTableCount() const;
  std::uint64_t FlushCount() const {
    return flushes_.load(std::memory_order_relaxed);
  }
  std::uint64_t CompactionCount() const {
    return compactions_.load(std::memory_order_relaxed);
  }
  /// Flushes (of FlushCount) performed on the background worker thread.
  /// The do-not-regress invariant "flush/compaction never run inline on a
  /// writer's thread" is exactly FlushCount() == BackgroundFlushCount()
  /// (and the same for compactions) — pinned by tests.
  std::uint64_t BackgroundFlushCount() const {
    return background_flushes_.load(std::memory_order_relaxed);
  }
  std::uint64_t BackgroundCompactionCount() const {
    return background_compactions_.load(std::memory_order_relaxed);
  }
  /// Writers that hit the sealed-memtable ceiling and had to wait.
  std::uint64_t FlushStallCount() const {
    return flush_stalls_.load(std::memory_order_relaxed);
  }
  int SealedMemtableCount() const;

  /// Sticky background status: OK, or the failure that poisoned the store
  /// after the worker exhausted its retries.
  Status HealthStatus() const override;
  std::uint64_t FlushRetries() const override {
    return flush_retries_.load(std::memory_order_relaxed);
  }

 private:
  explicit LsmBackend(const BackendOptions& options);

  /// Immutable view of the store used by readers.
  struct Version {
    std::shared_ptr<SkipList> mem;
    /// Sealed, flush-pending memtables, newest first.
    std::vector<std::shared_ptr<SkipList>> sealed;
    // Newest first; a hit in an earlier element shadows later ones.
    std::vector<std::shared_ptr<SsTableReader>> tables;
  };

  /// One sealed memtable queued for the background worker. `sealed_through`
  /// is the newest WAL segment containing its records: once the memtable is
  /// durable in an SSTable, every segment <= sealed_through is obsolete
  /// (FIFO: older memtables flush first, so an older segment never outlives
  /// a newer one — which is what keeps stale-WAL shadowing impossible on
  /// recovery).
  struct FlushJob {
    std::shared_ptr<SkipList> mem;
    std::uint64_t sealed_through = 0;
  };

  std::shared_ptr<const Version> CurrentVersion() const;
  void InstallVersion(std::shared_ptr<const Version> v);

  Status Recover();
  Status WriteInternal(std::string_view key, std::string_view value,
                       bool tombstone, bool sync);
  /// Must hold write_mutex_. Seals the (non-empty) active memtable: stalls
  /// at the admission ceiling, rotates the WAL to a fresh segment, installs
  /// a Version with a fresh memtable and hands the sealed one to the
  /// background worker.
  Status SealMemTableLocked();
  /// Background worker only: writes `job.mem` to a new SSTable, publishes
  /// it (manifest + version), and deletes the WAL segments it covered.
  Status FlushJobToSsTable(const FlushJob& job);
  /// Background worker only: full merge compaction when the SSTable count
  /// exceeds the trigger.
  Status MaybeCompact();
  Status WriteManifest(const std::vector<std::uint64_t>& files);
  void BackgroundWorker();
  /// Background worker only: runs `op`, retrying transient failures up to
  /// options_.flush_retry_attempts times with doubling backoff. NoSpace and
  /// Corruption are terminal (retrying a full disk or bad checksum cannot
  /// help); a stop request or existing poisoning cuts the retries short.
  Status RunWithRetries(const char* what, const std::function<Status()>& op);

  std::string SsTablePath(std::uint64_t number) const;
  /// Segment 0 keeps the historical "wal.log" name (pre-segment databases
  /// recover as a one-segment chain); later segments are wal_NNNNNN.log.
  std::string WalSegmentPath(std::uint64_t number) const;
  std::string ManifestPath() const { return options_.path + "/MANIFEST"; }

  BackendOptions options_;
  Env* env_;

  mutable SpinLock version_lock_;
  std::shared_ptr<const Version> version_;
  /// Serializes read-modify-write Version installs (writer seals vs worker
  /// flush/compaction publishes). Held only for the pointer swap.
  std::mutex version_update_mutex_;

  std::mutex write_mutex_;  // serializes writers + seal decisions
  std::unique_ptr<WalWriter> wal_;        // active segment, under write_mutex_
  std::uint64_t active_wal_segment_ = 0;  // under write_mutex_

  // Background-worker state.
  mutable std::mutex work_mutex_;
  std::condition_variable work_cv_;   ///< wakes the worker (new job / stop)
  std::condition_variable done_cv_;   ///< wakes stalled writers + Flush()
  std::deque<FlushJob> flush_queue_;  ///< under work_mutex_
  std::vector<std::uint64_t> live_wal_segments_;  ///< under work_mutex_
  std::uint64_t jobs_submitted_ = 0;  ///< under work_mutex_
  std::uint64_t jobs_done_ = 0;       ///< under work_mutex_
  Status bg_status_;  ///< sticky first background failure, under work_mutex_
  /// Lock-free mirror of "bg_status_ is not OK" for the per-write check.
  std::atomic<bool> bg_failed_{false};
  bool stop_worker_ = false;
  std::thread worker_;

  // Worker-thread-only state (single worker; no lock needed).
  std::vector<std::uint64_t> live_files_;  // newest first
  std::uint64_t next_file_number_ = 1;

  std::atomic<std::uint64_t> flushes_{0};
  std::atomic<std::uint64_t> compactions_{0};
  std::atomic<std::uint64_t> background_flushes_{0};
  std::atomic<std::uint64_t> background_compactions_{0};
  std::atomic<std::uint64_t> flush_stalls_{0};
  std::atomic<std::uint64_t> flush_retries_{0};
};

}  // namespace streamsi

#endif  // STREAMSI_STORAGE_LSM_BACKEND_H_
