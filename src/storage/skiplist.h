// Concurrent skip list over string keys.
//
// Lock-free reads (atomic forward pointers), CAS-based inserts, per-node
// spinlocked value updates. Used both as the ordered in-memory backend and
// as the LSM memtable.

#ifndef STREAMSI_STORAGE_SKIPLIST_H_
#define STREAMSI_STORAGE_SKIPLIST_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/latch.h"
#include "common/random.h"

namespace streamsi {

/// Ordered map string -> (string value | tombstone).
///
/// Nodes are never removed before destruction (tombstones mark deletes), so
/// readers need no reclamation scheme.
class SkipList {
 public:
  static constexpr int kMaxHeight = 16;

  SkipList();
  ~SkipList();
  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  /// Inserts or replaces `key`. `tombstone` records a delete marker.
  void Upsert(std::string_view key, std::string_view value,
              bool tombstone = false);

  /// Looks up `key`. Returns false if absent or tombstoned (tombstoned keys
  /// set *is_tombstone when the pointer is non-null).
  bool Get(std::string_view key, std::string* value,
           bool* is_tombstone = nullptr) const;

  /// Visits entries in key order, including tombstones. Return false from
  /// the callback to stop.
  void Iterate(const std::function<bool(std::string_view key,
                                        std::string_view value,
                                        bool tombstone)>& callback) const;

  /// Visits entries with key >= `lo` in key order, including tombstones;
  /// seeks via the skip-list levels rather than walking from the head.
  /// Return false from the callback to stop (callers bound the upper end
  /// themselves — the list cannot know the half-open [lo, hi) contract).
  void IterateFrom(std::string_view lo,
                   const std::function<bool(std::string_view key,
                                            std::string_view value,
                                            bool tombstone)>& callback) const;

  /// Number of nodes (tombstones included).
  std::uint64_t NodeCount() const {
    return node_count_.load(std::memory_order_relaxed);
  }

  /// Rough memory footprint used for memtable flush decisions.
  std::uint64_t ApproximateBytes() const {
    return approximate_bytes_.load(std::memory_order_relaxed);
  }

 private:
  struct Node {
    std::string key;
    mutable SpinLock value_lock;
    std::string value;
    bool tombstone = false;
    std::uint32_t version = 0;  // bumped on every value update
    int height;
    std::atomic<Node*> next[1];  // variable-length trailing array

    Node* Next(int level) const {
      return next[level].load(std::memory_order_acquire);
    }
    void SetNext(int level, Node* n) {
      next[level].store(n, std::memory_order_release);
    }
    bool CasNext(int level, Node* expected, Node* n) {
      return next[level].compare_exchange_strong(expected, n,
                                                 std::memory_order_acq_rel);
    }
  };

  static Node* NewNode(std::string_view key, int height);
  int RandomHeight();

  /// Finds the node >= key at each level; fills prev[] with predecessors.
  Node* FindGreaterOrEqual(std::string_view key, Node** prev) const;

  Node* head_;
  std::atomic<int> max_height_{1};
  std::atomic<std::uint64_t> node_count_{0};
  std::atomic<std::uint64_t> approximate_bytes_{0};
  SpinLock rng_lock_;
  Xorshift rng_{0xDECAFBADull};
};

}  // namespace streamsi

#endif  // STREAMSI_STORAGE_SKIPLIST_H_
