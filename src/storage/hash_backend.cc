#include "storage/hash_backend.h"

#include <functional>

namespace streamsi {

HashTableBackend::HashTableBackend(const BackendOptions& /*options*/) {}

std::size_t HashTableBackend::ShardFor(std::string_view key) const {
  return std::hash<std::string_view>{}(key) % kShards;
}

Status HashTableBackend::Get(std::string_view key, std::string* value) const {
  const Shard& shard = shards_[ShardFor(key)];
  SharedGuard guard(shard.latch);
  auto it = shard.map.find(std::string(key));
  if (it == shard.map.end()) return Status::NotFound();
  *value = it->second;
  return Status::OK();
}

Status HashTableBackend::Put(std::string_view key, std::string_view value,
                             bool /*sync*/) {
  Shard& shard = shards_[ShardFor(key)];
  ExclusiveGuard guard(shard.latch);
  auto [it, inserted] =
      shard.map.insert_or_assign(std::string(key), std::string(value));
  (void)it;
  if (inserted) count_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status HashTableBackend::Delete(std::string_view key, bool /*sync*/) {
  Shard& shard = shards_[ShardFor(key)];
  ExclusiveGuard guard(shard.latch);
  if (shard.map.erase(std::string(key)) > 0) {
    count_.fetch_sub(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status HashTableBackend::Scan(const ScanCallback& callback) const {
  for (const Shard& shard : shards_) {
    SharedGuard guard(shard.latch);
    for (const auto& [key, value] : shard.map) {
      if (!callback(key, value)) return Status::OK();
    }
  }
  return Status::OK();
}

std::uint64_t HashTableBackend::ApproximateCount() const {
  return count_.load(std::memory_order_relaxed);
}

}  // namespace streamsi
