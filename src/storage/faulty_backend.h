// FaultyBackend: failure-injection wrapper around any TableBackend, used by
// tests to prove that IO errors during the commit's write-through phase
// never publish partial transactions (recovery requirement of §4).
//
// Two ways to arm it, freely combined:
//   * the legacy counters (FailNextWrites / set_fail_reads), and
//   * a shared FaultSchedule (points "backend.put", "backend.delete",
//     "backend.get") — the SAME schedule object a FaultEnv uses, so one
//     test composes env-level (torn WAL write) and backend-level (failed
//     apply) faults without two fault vocabularies.

#ifndef STREAMSI_STORAGE_FAULTY_BACKEND_H_
#define STREAMSI_STORAGE_FAULTY_BACKEND_H_

#include <atomic>
#include <memory>

#include "common/fault_env.h"
#include "storage/backend.h"

namespace streamsi {

class FaultyBackend final : public TableBackend {
 public:
  explicit FaultyBackend(std::unique_ptr<TableBackend> inner,
                         FaultSchedule* schedule = nullptr)
      : inner_(std::move(inner)), schedule_(schedule) {}

  /// Makes the next `n` Put/Delete calls fail with IoError.
  void FailNextWrites(int n) {
    fail_writes_.store(n, std::memory_order_release);
  }
  /// Makes every Get fail until cleared.
  void set_fail_reads(bool fail) {
    fail_reads_.store(fail, std::memory_order_release);
  }

  std::uint64_t injected_failures() const {
    return injected_.load(std::memory_order_relaxed) +
           (schedule_ != nullptr ? schedule_->injected_failures() : 0);
  }

  Status Get(std::string_view key, std::string* value) const override {
    if (fail_reads_.load(std::memory_order_acquire)) {
      injected_.fetch_add(1, std::memory_order_relaxed);
      return Status::IoError("injected read failure");
    }
    if (schedule_ != nullptr) {
      STREAMSI_RETURN_NOT_OK(schedule_->Check("backend.get"));
    }
    return inner_->Get(key, value);
  }

  Status Put(std::string_view key, std::string_view value,
             bool sync) override {
    if (ConsumeWriteFault()) return Status::IoError("injected write failure");
    if (schedule_ != nullptr) {
      STREAMSI_RETURN_NOT_OK(schedule_->Check("backend.put"));
    }
    return inner_->Put(key, value, sync);
  }

  Status Delete(std::string_view key, bool sync) override {
    if (ConsumeWriteFault()) return Status::IoError("injected write failure");
    if (schedule_ != nullptr) {
      STREAMSI_RETURN_NOT_OK(schedule_->Check("backend.delete"));
    }
    return inner_->Delete(key, sync);
  }

  Status Scan(const ScanCallback& callback) const override {
    return inner_->Scan(callback);
  }
  std::uint64_t ApproximateCount() const override {
    return inner_->ApproximateCount();
  }
  Status Flush() override { return inner_->Flush(); }
  bool IsPersistent() const override { return inner_->IsPersistent(); }
  std::string_view Name() const override { return "faulty"; }
  Status HealthStatus() const override { return inner_->HealthStatus(); }
  std::uint64_t FlushRetries() const override {
    return inner_->FlushRetries();
  }

  TableBackend* inner() { return inner_.get(); }

 private:
  bool ConsumeWriteFault() {
    int remaining = fail_writes_.load(std::memory_order_acquire);
    while (remaining > 0) {
      if (fail_writes_.compare_exchange_weak(remaining, remaining - 1,
                                             std::memory_order_acq_rel)) {
        injected_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  std::unique_ptr<TableBackend> inner_;
  FaultSchedule* schedule_;  ///< optional, not owned (test-scoped)
  std::atomic<int> fail_writes_{0};
  std::atomic<bool> fail_reads_{false};
  mutable std::atomic<std::uint64_t> injected_{0};
};

}  // namespace streamsi

#endif  // STREAMSI_STORAGE_FAULTY_BACKEND_H_
