// Sorted String Table: immutable on-disk run of key-ordered entries.
//
// File layout:
//   [data block]*            entries: varint-prefixed key, varint-prefixed
//                            value, 1 tombstone byte; each block is CRC'd
//   [bloom filter block]
//   [index block]            per data block: last key, offset, size
//   [footer]                 offsets/sizes of bloom + index, entry count,
//                            magic number
//
// Writers require keys to be added in strictly increasing order. Readers
// keep the index and bloom filter in memory and pread data blocks on demand.

#ifndef STREAMSI_STORAGE_SSTABLE_H_
#define STREAMSI_STORAGE_SSTABLE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/status.h"
#include "storage/backend.h"

namespace streamsi {

inline constexpr std::uint64_t kSsTableMagic = 0x5353495f53535400ull;

/// Streams sorted entries into a new SSTable file.
class SsTableWriter {
 public:
  SsTableWriter(std::size_t block_bytes, int bloom_bits_per_key,
                Env* env = nullptr)
      : block_bytes_(block_bytes),
        bloom_bits_per_key_(bloom_bits_per_key),
        env_(env != nullptr ? env : Env::Default()) {}

  Status Open(const std::string& path);

  /// Adds an entry; keys must arrive in strictly increasing order.
  Status Add(std::string_view key, std::string_view value, bool tombstone);

  /// Flushes the final block, index, bloom filter and footer; fsyncs.
  Status Finish();

  std::uint64_t entry_count() const { return entry_count_; }

 private:
  Status FlushBlock();

  std::size_t block_bytes_;
  int bloom_bits_per_key_;
  Env* env_;
  std::unique_ptr<WritableFile> file_;
  std::string path_;
  std::string current_block_;
  std::string last_key_;
  std::string block_last_key_;
  bool has_entries_in_block_ = false;
  std::uint64_t entry_count_ = 0;
  std::uint64_t offset_ = 0;
  std::vector<std::string> bloom_keys_;
  // index entries: (last key of block, offset, size)
  struct IndexEntry {
    std::string last_key;
    std::uint64_t offset;
    std::uint32_t size;
  };
  std::vector<IndexEntry> index_;
};

/// Read-only view of a finished SSTable.
class SsTableReader {
 public:
  using EntryCallback = std::function<bool(
      std::string_view key, std::string_view value, bool tombstone)>;

  /// Opens the file and loads footer, index and bloom filter.
  static Result<std::shared_ptr<SsTableReader>> Open(const std::string& path,
                                                     Env* env = nullptr);

  /// Point lookup. Sets *found=false if the key is not in this table;
  /// if found, *tombstone tells whether it is a delete marker.
  Status Get(std::string_view key, std::string* value, bool* found,
             bool* tombstone) const;

  /// Visits all entries in key order (tombstones included).
  Status Iterate(const EntryCallback& callback) const;

  std::uint64_t entry_count() const { return entry_count_; }
  const std::string& path() const { return path_; }

 private:
  SsTableReader() = default;

  Status ReadBlock(std::uint64_t offset, std::uint32_t size,
                   std::string* out) const;
  static Status ParseBlock(std::string_view block,
                           const EntryCallback& callback);

  std::unique_ptr<RandomAccessFile> file_;
  std::string path_;
  std::string bloom_;
  std::uint64_t entry_count_ = 0;
  struct IndexEntry {
    std::string last_key;
    std::uint64_t offset;
    std::uint32_t size;
  };
  std::vector<IndexEntry> index_;
};

}  // namespace streamsi

#endif  // STREAMSI_STORAGE_SSTABLE_H_
