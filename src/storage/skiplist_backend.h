// Ordered in-memory backend built on the concurrent SkipList.

#ifndef STREAMSI_STORAGE_SKIPLIST_BACKEND_H_
#define STREAMSI_STORAGE_SKIPLIST_BACKEND_H_

#include <atomic>

#include "storage/backend.h"
#include "storage/skiplist.h"

namespace streamsi {

/// Volatile ordered backend; scans visit keys in byte order.
class SkipListBackend final : public TableBackend {
 public:
  explicit SkipListBackend(const BackendOptions& options = {});

  Status Get(std::string_view key, std::string* value) const override;
  Status Put(std::string_view key, std::string_view value, bool sync) override;
  Status Delete(std::string_view key, bool sync) override;
  Status Scan(const ScanCallback& callback) const override;
  Status ScanRange(std::string_view lo, std::string_view hi,
                   const ScanCallback& callback) const override;
  std::uint64_t ApproximateCount() const override;
  Status Flush() override { return Status::OK(); }
  bool IsPersistent() const override { return false; }
  std::string_view Name() const override { return "skiplist"; }

 private:
  SkipList list_;
  std::atomic<std::uint64_t> live_count_{0};
};

}  // namespace streamsi

#endif  // STREAMSI_STORAGE_SKIPLIST_BACKEND_H_
