#include "storage/skiplist_backend.h"

namespace streamsi {

SkipListBackend::SkipListBackend(const BackendOptions& /*options*/) {}

Status SkipListBackend::Get(std::string_view key, std::string* value) const {
  if (!list_.Get(key, value)) return Status::NotFound();
  return Status::OK();
}

Status SkipListBackend::Put(std::string_view key, std::string_view value,
                            bool /*sync*/) {
  std::string old;
  const bool existed = list_.Get(key, &old);
  list_.Upsert(key, value, /*tombstone=*/false);
  if (!existed) live_count_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status SkipListBackend::Delete(std::string_view key, bool /*sync*/) {
  std::string old;
  if (list_.Get(key, &old)) {
    live_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  list_.Upsert(key, "", /*tombstone=*/true);
  return Status::OK();
}

Status SkipListBackend::Scan(const ScanCallback& callback) const {
  Status status = Status::OK();
  list_.Iterate([&](std::string_view key, std::string_view value,
                    bool tombstone) {
    if (tombstone) return true;
    return callback(key, value);
  });
  return status;
}

Status SkipListBackend::ScanRange(std::string_view lo, std::string_view hi,
                                  const ScanCallback& callback) const {
  list_.IterateFrom(lo, [&](std::string_view key, std::string_view value,
                            bool tombstone) {
    if (!hi.empty() && key >= hi) return false;
    if (tombstone) return true;
    return callback(key, value);
  });
  return Status::OK();
}

std::uint64_t SkipListBackend::ApproximateCount() const {
  return live_count_.load(std::memory_order_relaxed);
}

}  // namespace streamsi
