#include "storage/wal.h"

#include <chrono>
#include <thread>

#include "common/coding.h"
#include "common/crc32.h"

namespace streamsi {

Status WalWriter::Open(const std::string& path, bool truncate) {
  std::lock_guard<std::mutex> guard(mutex_);
  return file_.Open(path, truncate);
}

Status WalWriter::Append(WalRecordType type, std::string_view payload,
                         bool sync) {
  std::lock_guard<std::mutex> guard(mutex_);
  std::string frame;
  frame.reserve(9 + payload.size());
  std::string body;
  body.reserve(1 + payload.size());
  body.push_back(static_cast<char>(type));
  body.append(payload.data(), payload.size());
  PutFixed32(&frame, MaskCrc(Crc32c(body)));
  PutFixed32(&frame, static_cast<std::uint32_t>(payload.size()));
  frame.append(body);
  STREAMSI_RETURN_NOT_OK(file_.Append(frame));
  if (sync) return ApplySync();
  return Status::OK();
}

Status WalWriter::ApplySync() {
  switch (sync_mode_) {
    case SyncMode::kNone:
      return file_.Flush();
    case SyncMode::kFsync:
      return file_.Sync();
    case SyncMode::kSimulated: {
      STREAMSI_RETURN_NOT_OK(file_.Flush());
      // Deterministic stand-in for the fsync cost: the paper's evaluation
      // depends on synchronous writes being orders of magnitude slower than
      // in-memory reads. A real sleep (like a real fsync) blocks the
      // calling thread and releases the CPU, so the writer is not starved
      // when threads outnumber cores.
      std::this_thread::sleep_for(
          std::chrono::microseconds(simulated_sync_micros_));
      return Status::OK();
    }
  }
  return Status::OK();
}

Status WalWriter::SyncNow() {
  std::lock_guard<std::mutex> guard(mutex_);
  return ApplySync();
}

Status WalWriter::Close() {
  std::lock_guard<std::mutex> guard(mutex_);
  return file_.Close();
}

Status WalReader::Replay(const std::string& path, const Visitor& visitor,
                         ReplayStats* stats) {
  ReplayStats local;
  std::string contents;
  STREAMSI_RETURN_NOT_OK(fsutil::ReadFileToString(path, &contents));
  const char* p = contents.data();
  const char* limit = p + contents.size();
  while (p + 9 <= limit) {
    const std::uint32_t stored_crc = UnmaskCrc(DecodeFixed32(p));
    const std::uint32_t len = DecodeFixed32(p + 4);
    if (p + 9 + len > limit) {
      local.tail_truncated = true;  // torn final record
      break;
    }
    const char* body = p + 8;
    if (Crc32c(std::string_view(body, 1 + len)) != stored_crc) {
      local.tail_truncated = true;
      break;
    }
    const auto type = static_cast<WalRecordType>(*body);
    STREAMSI_RETURN_NOT_OK(visitor(type, std::string_view(body + 1, len)));
    ++local.records;
    p += 9 + len;
  }
  if (p != limit && !local.tail_truncated) local.tail_truncated = true;
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

}  // namespace streamsi
