#include "storage/wal.h"

#include <chrono>
#include <thread>

#include "common/coding.h"
#include "common/crc32.h"

namespace streamsi {

Status WalWriter::Open(const std::string& path, bool truncate) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto file = env_->NewWritableFile(path, truncate);
  if (!file.ok()) return file.status();
  file_ = std::move(*file);
  appended_bytes_.store(file_->size(), std::memory_order_release);
  sticky_status_ = Status::OK();
  return Status::OK();
}

void WalWriter::EncodeRecordTo(std::string* out, WalRecordType type,
                               std::string_view payload) {
  // Frame layout: [crc(4)] [len(4)] [type(1)] [payload]. The CRC is patched
  // in after the body lands in the (reused) batch buffer, so a record is
  // encoded with zero temporary strings.
  const std::size_t frame_start = out->size();
  out->append(8, '\0');  // crc + len placeholders
  out->push_back(static_cast<char>(type));
  out->append(payload.data(), payload.size());
  const std::uint32_t crc =
      Crc32c(out->data() + frame_start + 8, 1 + payload.size());
  const std::uint32_t masked = MaskCrc(crc);
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  std::memcpy(out->data() + frame_start, &masked, 4);
  std::memcpy(out->data() + frame_start + 4, &len, 4);
}

Status WalWriter::FlushPendingLocked() {
  if (pending_.empty()) return sticky_status_;
  Status status = sticky_status_;
  if (status.ok()) {
    status = file_ != nullptr ? file_->Append(pending_)
                              : Status::IoError("append to closed file");
  }
  if (!status.ok() && sticky_status_.ok()) sticky_status_ = status;
  pending_.clear();
  return sticky_status_;
}

Status WalWriter::AwaitDurableLocked(std::unique_lock<std::mutex>& lk,
                                     std::uint64_t my_batch) {
  while (durable_batch_ < my_batch) {
    if (leader_active_) {
      // A leader's write+sync is in flight; our records accumulate into the
      // next batch. Sleep until it finishes (it may have covered us).
      cv_.wait(lk, [&] {
        return !leader_active_ || durable_batch_ >= my_batch;
      });
      continue;
    }
    // Become the leader for everything accumulated so far.
    leader_active_ = true;
    std::swap(writing_, pending_);
    const std::uint64_t batch = accumulating_batch_++;
    const bool want_sync = sync_requested_;
    sync_requested_ = false;
    Status status = sticky_status_;
    lk.unlock();
    if (status.ok() && file_ == nullptr) {
      status = Status::IoError("append to closed file");
    }
    if (status.ok() && !writing_.empty()) status = file_->Append(writing_);
    if (status.ok() && want_sync) status = ApplySync();
    writing_.clear();
    lk.lock();
    batches_written_.fetch_add(1, std::memory_order_relaxed);
    if (!status.ok() && sticky_status_.ok()) sticky_status_ = status;
    durable_batch_ = batch;
    leader_active_ = false;
    if (!pending_.empty() && !sync_requested_) {
      // Unsynced riders that arrived during our IO: write them through now
      // so buffered bytes never outlive the batch that delayed them. (A
      // pending batch with a sync request has a waiter that will lead it.)
      (void)FlushPendingLocked();
    }
    cv_.notify_all();
  }
  return sticky_status_;
}

Status WalWriter::Append(WalRecordType type, std::string_view payload,
                         bool sync) {
  std::unique_lock<std::mutex> lk(mutex_);
  if (!sticky_status_.ok()) return sticky_status_;
  EncodeRecordTo(&pending_, type, payload);
  appended_bytes_.fetch_add(9 + payload.size(), std::memory_order_acq_rel);
  if (!sync) {
    // Keep write-through semantics for unsynced appends unless a leader is
    // mid-sync (then the bytes ride with the next batch write).
    if (!leader_active_) return FlushPendingLocked();
    return Status::OK();
  }
  sync_requested_ = true;
  return AwaitDurableLocked(lk, accumulating_batch_);
}

Status WalWriter::ApplySync() {
  switch (sync_mode_) {
    case SyncMode::kNone:
      return file_->Flush();
    case SyncMode::kFsync:
      return file_->Sync();
    case SyncMode::kSimulated: {
      STREAMSI_RETURN_NOT_OK(file_->Flush());
      // Deterministic stand-in for the fsync cost: the paper's evaluation
      // depends on synchronous writes being orders of magnitude slower than
      // in-memory reads. A real sleep (like a real fsync) blocks the
      // calling thread and releases the CPU, so the writer is not starved
      // when threads outnumber cores — and, like a real fsync, the whole
      // group-commit batch pays it once.
      std::this_thread::sleep_for(
          std::chrono::microseconds(simulated_sync_micros_));
      return Status::OK();
    }
  }
  return Status::OK();
}

Status WalWriter::SyncNow() {
  std::unique_lock<std::mutex> lk(mutex_);
  if (!sticky_status_.ok()) return sticky_status_;
  sync_requested_ = true;
  return AwaitDurableLocked(lk, accumulating_batch_);
}

Status WalWriter::RotateTo(const std::string& path) {
  std::unique_lock<std::mutex> lk(mutex_);
  // Drain the queue completely (same protocol as Close): leaders in flight,
  // parked sync followers AND buffered unsynced riders all reach the current
  // file before the switch — a sync follower whose batch we silently moved
  // to the new file would otherwise have its durability satisfied by a sync
  // of the wrong fd. Loop: leading a batch releases the mutex, so new
  // appends may accumulate behind us.
  while (leader_active_ || !pending_.empty() || sync_requested_) {
    STREAMSI_RETURN_NOT_OK(AwaitDurableLocked(lk, accumulating_batch_));
  }
  if (!sticky_status_.ok()) return sticky_status_;
  if (file_ != nullptr) STREAMSI_RETURN_NOT_OK(file_->Close());
  auto file = env_->NewWritableFile(path, /*truncate=*/true);
  if (!file.ok()) {
    file_.reset();
    sticky_status_ = file.status();  // no open file: poison later appends
    return file.status();
  }
  file_ = std::move(*file);
  appended_bytes_.store(file_->size(), std::memory_order_release);
  return Status::OK();
}

Status WalWriter::Close() {
  std::unique_lock<std::mutex> lk(mutex_);
  // Drain the whole queue — in-flight leader AND parked sync followers —
  // by leading the remaining batches ourselves: waiting only for the
  // current leader would let a queued follower wake after the close and
  // lead against a closed file. Afterwards every waiter's batch is durable
  // (they return without touching the file) and pending bytes are written,
  // so a cleanly closed log replays every appended record.
  // sync_requested_ covers the corner where a parked follower's bytes were
  // already flushed by a rider (pending empty) but its batch is not yet
  // durable — the flag is only cleared by the leader that owns the batch.
  if (leader_active_ || !pending_.empty() || sync_requested_) {
    (void)AwaitDurableLocked(lk, accumulating_batch_);
  }
  if (file_ == nullptr) return Status::OK();
  return file_->Close();
}

std::uint64_t WalReader::ValidFramePrefix(std::string_view contents) {
  const char* p = contents.data();
  const char* limit = p + contents.size();
  while (p + 9 <= limit) {
    const std::uint32_t stored_crc = UnmaskCrc(DecodeFixed32(p));
    const std::uint32_t len = DecodeFixed32(p + 4);
    if (len > static_cast<std::uint64_t>(limit - p) - 9) break;
    if (Crc32c(std::string_view(p + 8, 1 + len)) != stored_crc) break;
    p += 9 + len;
  }
  return static_cast<std::uint64_t>(p - contents.data());
}

Status WalReader::Replay(const std::string& path, const Visitor& visitor,
                         ReplayStats* stats, Env* env) {
  if (env == nullptr) env = Env::Default();
  ReplayStats local;
  std::string contents;
  STREAMSI_RETURN_NOT_OK(env->ReadFileToString(path, &contents));
  const char* p = contents.data();
  const char* limit = p + contents.size();
  while (p + 9 <= limit) {
    const std::uint32_t stored_crc = UnmaskCrc(DecodeFixed32(p));
    const std::uint32_t len = DecodeFixed32(p + 4);
    if (p + 9 + len > limit) {
      local.tail_truncated = true;  // torn final record
      break;
    }
    const char* body = p + 8;
    if (Crc32c(std::string_view(body, 1 + len)) != stored_crc) {
      local.tail_truncated = true;
      break;
    }
    const auto type = static_cast<WalRecordType>(*body);
    STREAMSI_RETURN_NOT_OK(visitor(type, std::string_view(body + 1, len)));
    ++local.records;
    p += 9 + len;
  }
  local.valid_bytes = static_cast<std::uint64_t>(p - contents.data());
  if (p != limit && !local.tail_truncated) local.tail_truncated = true;
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

}  // namespace streamsi
