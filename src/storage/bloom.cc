#include "storage/bloom.h"

#include <algorithm>

namespace streamsi {

std::uint64_t BloomFilter::Hash(std::string_view key) {
  // FNV-1a 64-bit.
  std::uint64_t h = 14695981039346656037ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string BloomFilter::Build(const std::vector<std::string>& keys,
                               int bits_per_key) {
  if (keys.empty() || bits_per_key <= 0) return {};
  // k = bits_per_key * ln2 probes is optimal.
  int probes = static_cast<int>(bits_per_key * 0.69);
  probes = std::clamp(probes, 1, 30);

  std::size_t bits = keys.size() * static_cast<std::size_t>(bits_per_key);
  bits = std::max<std::size_t>(bits, 64);
  const std::size_t bytes = (bits + 7) / 8;
  bits = bytes * 8;

  std::string filter(bytes, '\0');
  for (const auto& key : keys) {
    std::uint64_t h = Hash(key);
    const std::uint64_t delta = (h >> 17) | (h << 47);  // second hash
    for (int i = 0; i < probes; ++i) {
      const std::size_t bit = h % bits;
      filter[bit / 8] |= static_cast<char>(1 << (bit % 8));
      h += delta;
    }
  }
  filter.push_back(static_cast<char>(probes));
  return filter;
}

bool BloomFilter::MayContain(std::string_view filter, std::string_view key) {
  if (filter.size() < 2) return true;  // fail open
  const int probes = static_cast<unsigned char>(filter.back());
  if (probes <= 0 || probes > 30) return true;
  const std::size_t bits = (filter.size() - 1) * 8;
  std::uint64_t h = Hash(key);
  const std::uint64_t delta = (h >> 17) | (h << 47);
  for (int i = 0; i < probes; ++i) {
    const std::size_t bit = h % bits;
    if ((filter[bit / 8] & (1 << (bit % 8))) == 0) return false;
    h += delta;
  }
  return true;
}

}  // namespace streamsi
