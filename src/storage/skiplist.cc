#include "storage/skiplist.h"

#include <cstdlib>
#include <new>

namespace streamsi {

SkipList::SkipList() { head_ = NewNode("", kMaxHeight); }

SkipList::~SkipList() {
  Node* node = head_;
  while (node != nullptr) {
    Node* next = node->Next(0);
    node->~Node();
    std::free(node);
    node = next;
  }
}

SkipList::Node* SkipList::NewNode(std::string_view key, int height) {
  const std::size_t size =
      sizeof(Node) + sizeof(std::atomic<Node*>) * (height - 1);
  void* mem = std::malloc(size);
  Node* node = new (mem) Node();
  node->key.assign(key.data(), key.size());
  node->height = height;
  for (int i = 0; i < height; ++i) node->SetNext(i, nullptr);
  return node;
}

int SkipList::RandomHeight() {
  std::lock_guard<SpinLock> guard(rng_lock_);
  int height = 1;
  while (height < kMaxHeight && (rng_.Next() & 3) == 0) ++height;
  return height;
}

SkipList::Node* SkipList::FindGreaterOrEqual(std::string_view key,
                                             Node** prev) const {
  Node* node = head_;
  int level = max_height_.load(std::memory_order_acquire) - 1;
  for (;;) {
    Node* next = node->Next(level);
    if (next != nullptr && next->key < key) {
      node = next;
    } else {
      if (prev != nullptr) prev[level] = node;
      if (level == 0) return next;
      --level;
    }
  }
}

void SkipList::Upsert(std::string_view key, std::string_view value,
                      bool tombstone) {
  for (;;) {
    Node* prev[kMaxHeight];
    Node* found = FindGreaterOrEqual(key, prev);
    if (found != nullptr && found->key == key) {
      std::lock_guard<SpinLock> guard(found->value_lock);
      approximate_bytes_.fetch_add(value.size() - found->value.size(),
                                   std::memory_order_relaxed);
      found->value.assign(value.data(), value.size());
      found->tombstone = tombstone;
      ++found->version;
      return;
    }

    const int height = RandomHeight();
    int cur_max = max_height_.load(std::memory_order_relaxed);
    while (height > cur_max &&
           !max_height_.compare_exchange_weak(cur_max, height,
                                              std::memory_order_acq_rel)) {
    }
    for (int i = cur_max; i < height; ++i) prev[i] = head_;

    Node* node = NewNode(key, height);
    {
      std::lock_guard<SpinLock> guard(node->value_lock);
      node->value.assign(value.data(), value.size());
      node->tombstone = tombstone;
    }

    // Link bottom level first with CAS; on conflict, retry the whole insert.
    node->SetNext(0, found);
    if (!prev[0]->CasNext(0, found, node)) {
      node->~Node();
      std::free(node);
      continue;  // someone inserted concurrently; retry
    }
    node_count_.fetch_add(1, std::memory_order_relaxed);
    approximate_bytes_.fetch_add(
        sizeof(Node) + key.size() + value.size() + 16 * height,
        std::memory_order_relaxed);

    // Upper levels are best-effort: a failed CAS leaves the node reachable
    // via level 0, which preserves correctness.
    for (int level = 1; level < height; ++level) {
      for (;;) {
        Node* next = prev[level]->Next(level);
        if (next != nullptr && next->key < node->key) {
          // A concurrent insert moved the predecessor; re-locate.
          Node* p = prev[level];
          while (true) {
            Node* n = p->Next(level);
            if (n == nullptr || n->key >= node->key) break;
            p = n;
          }
          prev[level] = p;
          continue;
        }
        node->SetNext(level, next);
        if (prev[level]->CasNext(level, next, node)) break;
      }
    }
    return;
  }
}

bool SkipList::Get(std::string_view key, std::string* value,
                   bool* is_tombstone) const {
  Node* node = FindGreaterOrEqual(key, nullptr);
  if (node == nullptr || node->key != key) return false;
  std::lock_guard<SpinLock> guard(node->value_lock);
  if (is_tombstone != nullptr) *is_tombstone = node->tombstone;
  if (node->tombstone) return false;
  *value = node->value;
  return true;
}

void SkipList::Iterate(
    const std::function<bool(std::string_view, std::string_view, bool)>&
        callback) const {
  Node* node = head_->Next(0);
  while (node != nullptr) {
    std::string value;
    bool tombstone;
    {
      std::lock_guard<SpinLock> guard(node->value_lock);
      value = node->value;
      tombstone = node->tombstone;
    }
    if (!callback(node->key, value, tombstone)) return;
    node = node->Next(0);
  }
}

void SkipList::IterateFrom(
    std::string_view lo,
    const std::function<bool(std::string_view, std::string_view, bool)>&
        callback) const {
  Node* node = FindGreaterOrEqual(lo, nullptr);
  while (node != nullptr) {
    std::string value;
    bool tombstone;
    {
      std::lock_guard<SpinLock> guard(node->value_lock);
      value = node->value;
      tombstone = node->tombstone;
    }
    if (!callback(node->key, value, tombstone)) return;
    node = node->Next(0);
  }
}

}  // namespace streamsi
