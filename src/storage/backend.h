// TableBackend: the pluggable key-value mapping underneath a transactional
// state table.
//
// §4.1: "For the base table, any existing backend structure with a key-value
// mapping can be used. Therefore, every state type can use a suitable
// underlying structure making our design extremely versatile."
//
// The paper's evaluation used RocksDB (LSM, sync=true). This repo ships three
// from-scratch backends behind this interface:
//   * HashTableBackend  — volatile, sharded hash map (fastest, no ordering)
//   * SkipListBackend   — volatile, ordered (range scans)
//   * LsmBackend        — persistent log-structured merge store with WAL,
//                         memtable, SSTables, compaction and recovery;
//                         the RocksDB stand-in for the paper's experiments.

#ifndef STREAMSI_STORAGE_BACKEND_H_
#define STREAMSI_STORAGE_BACKEND_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"

namespace streamsi {

class Env;

/// How writes are made durable.
enum class SyncMode {
  kNone,       ///< No durability guarantee (volatile backends, async tests).
  kFsync,      ///< fsync(2) the WAL on every synchronous write (paper setup).
  kSimulated,  ///< Deterministic artificial latency instead of real fsync —
               ///< reproduces the paper's "synchronous write dominates" shape
               ///< on any hardware/filesystem.
};

/// Options shared by all backends.
struct BackendOptions {
  /// Durability mode for writes (LsmBackend only; ignored by volatile ones).
  SyncMode sync_mode = SyncMode::kNone;
  /// Latency injected per synchronous write when sync_mode == kSimulated.
  std::uint64_t simulated_sync_micros = 50;
  /// Memtable size that triggers a flush to SSTable.
  std::size_t memtable_bytes = 8 * 1024 * 1024;
  /// Number of L0 SSTables that triggers a compaction.
  int l0_compaction_trigger = 4;
  /// Admission bound for the background flush worker (LsmBackend): a writer
  /// that fills the active memtable seals it and moves on; only when this
  /// many sealed memtables are already queued for flushing does the writer
  /// stall until the worker catches up (the memtable ceiling).
  int max_sealed_memtables = 2;
  /// Bits per key for SSTable bloom filters (0 disables).
  int bloom_bits_per_key = 10;
  /// Block size for SSTable data blocks.
  std::size_t block_bytes = 4 * 1024;
  /// Directory for persistent backends.
  std::string path;
  /// Storage environment for all file IO (nullptr = Env::Default()). Tests
  /// inject a FaultEnv here to simulate crashes and disk faults.
  Env* env = nullptr;
  /// Background flush/compaction failures are retried this many times with
  /// bounded exponential backoff before the store is poisoned. NoSpace and
  /// Corruption are not retried (retrying cannot help).
  int flush_retry_attempts = 3;
  /// Initial backoff between background retries; doubles per attempt.
  std::uint64_t flush_retry_backoff_ms = 2;
  /// Invoked (once, off the caller's commit path) when the background
  /// worker exhausts its retries and poisons the store. The database hooks
  /// this to degrade itself to read-only instead of silently losing the
  /// flush pipeline.
  std::function<void(const Status&)> on_background_failure;
};

/// Abstract key-value mapping. All methods are thread-safe.
class TableBackend {
 public:
  virtual ~TableBackend() = default;

  /// Visitor for scans; return false to stop early.
  using ScanCallback =
      std::function<bool(std::string_view key, std::string_view value)>;

  /// Looks up `key`; NotFound if absent.
  virtual Status Get(std::string_view key, std::string* value) const = 0;

  /// Inserts or replaces `key`. If `sync`, the write is durable on return
  /// (according to the backend's SyncMode).
  virtual Status Put(std::string_view key, std::string_view value,
                     bool sync) = 0;

  /// Removes `key` (idempotent).
  virtual Status Delete(std::string_view key, bool sync) = 0;

  /// Visits all live entries.
  ///
  /// Ordering contract per backend (do not rely on more than this):
  ///   * HashTableBackend — UNORDERED: shard-by-shard hash-map walk; the
  ///     visit order is arbitrary and changes across runs.
  ///   * SkipListBackend  — key order (byte-wise lexicographic).
  ///   * LsmBackend       — key order (newest-wins merge of memtable +
  ///     sealed memtables + SSTables).
  virtual Status Scan(const ScanCallback& callback) const = 0;

  /// Visits live entries with lo <= key < hi in byte-wise key order; an
  /// empty `hi` means "to the end". Only ordered backends support this —
  /// the default returns NotSupported so an unordered backend can never
  /// masquerade as a sorted one by silently full-scanning.
  virtual Status ScanRange(std::string_view lo, std::string_view hi,
                           const ScanCallback& callback) const {
    (void)lo;
    (void)hi;
    (void)callback;
    return Status::NotSupported(
        "ScanRange requires an ordered backend (skiplist or lsm); '" +
        std::string(Name()) + "' scans are unordered");
  }

  /// Number of live entries (exact for volatile backends, may count
  /// tombstoned duplicates approximately for LSM).
  virtual std::uint64_t ApproximateCount() const = 0;

  /// Forces buffered data to durable storage (volatile backends: no-op).
  virtual Status Flush() = 0;

  /// True if entries survive Close()/reopen.
  virtual bool IsPersistent() const = 0;

  /// Name for diagnostics ("hash", "skiplist", "lsm").
  virtual std::string_view Name() const = 0;

  /// Sticky background health: OK, or the error that poisoned the store
  /// (LSM flush/compaction failure after retries). Volatile backends are
  /// always healthy.
  virtual Status HealthStatus() const { return Status::OK(); }

  /// Background flush/compaction attempts that were retried after a
  /// transient failure (observability for the health report).
  virtual std::uint64_t FlushRetries() const { return 0; }
};

/// Which backend to instantiate.
enum class BackendType { kHash, kSkipList, kLsm };

/// Factory. For kLsm, `options.path` must be set; the directory is created
/// if missing and existing data is recovered.
Result<std::unique_ptr<TableBackend>> OpenBackend(BackendType type,
                                                  const BackendOptions& options);

/// Parses "hash" / "skiplist" / "lsm".
Result<BackendType> ParseBackendType(std::string_view name);

}  // namespace streamsi

#endif  // STREAMSI_STORAGE_BACKEND_H_
