#include "storage/sstable.h"

#include <algorithm>

#include "common/coding.h"
#include "common/crc32.h"
#include "storage/bloom.h"

namespace streamsi {

// ---------------------------------------------------------------- writer ---

Status SsTableWriter::Open(const std::string& path) {
  path_ = path;
  auto file = env_->NewWritableFile(path, /*truncate=*/true);
  if (!file.ok()) return file.status();
  file_ = std::move(*file);
  return Status::OK();
}

Status SsTableWriter::Add(std::string_view key, std::string_view value,
                          bool tombstone) {
  if (entry_count_ > 0 && key <= last_key_) {
    return Status::InvalidArgument("SSTable keys must be strictly increasing");
  }
  PutLengthPrefixed(&current_block_, key);
  PutLengthPrefixed(&current_block_, value);
  current_block_.push_back(tombstone ? 1 : 0);
  last_key_.assign(key.data(), key.size());
  block_last_key_ = last_key_;
  has_entries_in_block_ = true;
  ++entry_count_;
  if (bloom_bits_per_key_ > 0) bloom_keys_.emplace_back(key);
  if (current_block_.size() >= block_bytes_) return FlushBlock();
  return Status::OK();
}

Status SsTableWriter::FlushBlock() {
  if (!has_entries_in_block_) return Status::OK();
  if (file_ == nullptr) return Status::IoError("SSTable writer not open");
  std::string framed;
  PutFixed32(&framed, MaskCrc(Crc32c(current_block_)));
  framed.append(current_block_);
  index_.push_back({block_last_key_, offset_,
                    static_cast<std::uint32_t>(framed.size())});
  STREAMSI_RETURN_NOT_OK(file_->Append(framed));
  offset_ += framed.size();
  current_block_.clear();
  has_entries_in_block_ = false;
  return Status::OK();
}

Status SsTableWriter::Finish() {
  if (file_ == nullptr) return Status::IoError("SSTable writer not open");
  STREAMSI_RETURN_NOT_OK(FlushBlock());

  const std::string bloom =
      BloomFilter::Build(bloom_keys_, bloom_bits_per_key_);
  const std::uint64_t bloom_offset = offset_;
  STREAMSI_RETURN_NOT_OK(file_->Append(bloom));
  offset_ += bloom.size();

  std::string index_block;
  for (const auto& entry : index_) {
    PutLengthPrefixed(&index_block, entry.last_key);
    PutFixed64(&index_block, entry.offset);
    PutFixed32(&index_block, entry.size);
  }
  const std::uint64_t index_offset = offset_;
  STREAMSI_RETURN_NOT_OK(file_->Append(index_block));
  offset_ += index_block.size();

  std::string footer;
  PutFixed64(&footer, bloom_offset);
  PutFixed32(&footer, static_cast<std::uint32_t>(bloom.size()));
  PutFixed64(&footer, index_offset);
  PutFixed32(&footer, static_cast<std::uint32_t>(index_block.size()));
  PutFixed64(&footer, entry_count_);
  PutFixed64(&footer, kSsTableMagic);
  STREAMSI_RETURN_NOT_OK(file_->Append(footer));

  STREAMSI_RETURN_NOT_OK(file_->Sync());
  return file_->Close();
}

// ---------------------------------------------------------------- reader ---

Result<std::shared_ptr<SsTableReader>> SsTableReader::Open(
    const std::string& path, Env* env) {
  if (env == nullptr) env = Env::Default();
  auto reader = std::shared_ptr<SsTableReader>(new SsTableReader());
  reader->path_ = path;
  auto file = env->NewRandomAccessFile(path);
  if (!file.ok()) return file.status();
  reader->file_ = std::move(*file);

  constexpr std::size_t kFooterSize = 8 + 4 + 8 + 4 + 8 + 8;
  if (reader->file_->size() < kFooterSize) {
    return Status::Corruption("SSTable too small: " + path);
  }
  std::string footer;
  STREAMSI_RETURN_NOT_OK(reader->file_->Read(
      reader->file_->size() - kFooterSize, kFooterSize, &footer));
  const char* p = footer.data();
  const std::uint64_t bloom_offset = DecodeFixed64(p);
  const std::uint32_t bloom_size = DecodeFixed32(p + 8);
  const std::uint64_t index_offset = DecodeFixed64(p + 12);
  const std::uint32_t index_size = DecodeFixed32(p + 20);
  reader->entry_count_ = DecodeFixed64(p + 24);
  if (DecodeFixed64(p + 32) != kSsTableMagic) {
    return Status::Corruption("bad SSTable magic: " + path);
  }

  if (bloom_size > 0) {
    STREAMSI_RETURN_NOT_OK(
        reader->file_->Read(bloom_offset, bloom_size, &reader->bloom_));
  }

  std::string index_block;
  STREAMSI_RETURN_NOT_OK(
      reader->file_->Read(index_offset, index_size, &index_block));
  const char* q = index_block.data();
  const char* limit = q + index_block.size();
  while (q < limit) {
    std::string_view last_key;
    q = GetLengthPrefixed(q, limit, &last_key);
    if (q == nullptr || q + 12 > limit) {
      return Status::Corruption("bad SSTable index: " + path);
    }
    IndexEntry entry;
    entry.last_key.assign(last_key.data(), last_key.size());
    entry.offset = DecodeFixed64(q);
    entry.size = DecodeFixed32(q + 8);
    q += 12;
    reader->index_.push_back(std::move(entry));
  }
  return reader;
}

Status SsTableReader::ReadBlock(std::uint64_t offset, std::uint32_t size,
                                std::string* out) const {
  std::string framed;
  STREAMSI_RETURN_NOT_OK(file_->Read(offset, size, &framed));
  if (framed.size() < 4) return Status::Corruption("short block");
  const std::uint32_t crc = UnmaskCrc(DecodeFixed32(framed.data()));
  std::string_view body(framed.data() + 4, framed.size() - 4);
  if (Crc32c(body) != crc) {
    return Status::Corruption("block checksum mismatch in " + path_);
  }
  out->assign(body.data(), body.size());
  return Status::OK();
}

Status SsTableReader::ParseBlock(std::string_view block,
                                 const EntryCallback& callback) {
  const char* p = block.data();
  const char* limit = p + block.size();
  while (p < limit) {
    std::string_view key;
    std::string_view value;
    p = GetLengthPrefixed(p, limit, &key);
    if (p == nullptr) return Status::Corruption("bad block entry key");
    p = GetLengthPrefixed(p, limit, &value);
    if (p == nullptr || p >= limit + 1) {
      return Status::Corruption("bad block entry value");
    }
    if (p >= limit) return Status::Corruption("missing tombstone byte");
    const bool tombstone = (*p++ != 0);
    if (!callback(key, value, tombstone)) return Status::OK();
  }
  return Status::OK();
}

Status SsTableReader::Get(std::string_view key, std::string* value,
                          bool* found, bool* tombstone) const {
  *found = false;
  if (!BloomFilter::MayContain(bloom_, key)) return Status::OK();

  // Binary search: first block whose last_key >= key.
  auto it = std::lower_bound(
      index_.begin(), index_.end(), key,
      [](const IndexEntry& e, std::string_view k) { return e.last_key < k; });
  if (it == index_.end()) return Status::OK();

  std::string block;
  STREAMSI_RETURN_NOT_OK(ReadBlock(it->offset, it->size, &block));
  Status status = ParseBlock(
      block, [&](std::string_view k, std::string_view v, bool tomb) {
        if (k == key) {
          *found = true;
          *tombstone = tomb;
          value->assign(v.data(), v.size());
          return false;
        }
        return k < key;  // keep scanning while before the key
      });
  return status;
}

Status SsTableReader::Iterate(const EntryCallback& callback) const {
  for (const auto& entry : index_) {
    std::string block;
    STREAMSI_RETURN_NOT_OK(ReadBlock(entry.offset, entry.size, &block));
    bool stop = false;
    STREAMSI_RETURN_NOT_OK(ParseBlock(
        block, [&](std::string_view k, std::string_view v, bool tomb) {
          if (!callback(k, v, tomb)) {
            stop = true;
            return false;
          }
          return true;
        }));
    if (stop) break;
  }
  return Status::OK();
}

}  // namespace streamsi
