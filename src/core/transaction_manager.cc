#include "core/transaction_manager.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace streamsi {

Result<std::unique_ptr<TransactionHandle>> TransactionManager::Begin() {
  TxnId id = 0;
  auto slot = context_->BeginTransaction(&id);
  if (!slot.ok()) return slot.status();
  counters_.begun.fetch_add(1, std::memory_order_relaxed);
  return std::make_unique<TransactionHandle>(this, context_, slot.value(), id);
}

Status TransactionManager::Read(Transaction& txn, StateId state,
                                std::string_view key, std::string* value) {
  if (!txn.running()) return Status::Aborted("transaction not running");
  VersionedStore* store = resolver_(state);
  if (store == nullptr) return Status::InvalidArgument("unknown state");
  context_->RegisterStateAccess(txn.slot(), state);
  const Status status = protocol_->Read(txn, *store, key, value);
  if (status.IsBusy()) {
    // wait-die victim: the transaction must abort.
    counters_.conflicts.fetch_add(1, std::memory_order_relaxed);
    Abort(txn);
    return Status::Aborted("wait-die abort during read");
  }
  return status;
}

Status TransactionManager::Write(Transaction& txn, StateId state,
                                 std::string_view key,
                                 std::string_view value) {
  if (!txn.running()) return Status::Aborted("transaction not running");
  VersionedStore* store = resolver_(state);
  if (store == nullptr) return Status::InvalidArgument("unknown state");
  const Status status = protocol_->Write(txn, *store, key, value);
  if (status.IsBusy()) {
    counters_.conflicts.fetch_add(1, std::memory_order_relaxed);
    Abort(txn);
    return Status::Aborted("wait-die abort during write");
  }
  return status;
}

Status TransactionManager::Delete(Transaction& txn, StateId state,
                                  std::string_view key) {
  if (!txn.running()) return Status::Aborted("transaction not running");
  VersionedStore* store = resolver_(state);
  if (store == nullptr) return Status::InvalidArgument("unknown state");
  const Status status = protocol_->Delete(txn, *store, key);
  if (status.IsBusy()) {
    counters_.conflicts.fetch_add(1, std::memory_order_relaxed);
    Abort(txn);
    return Status::Aborted("wait-die abort during delete");
  }
  return status;
}

Status TransactionManager::Scan(
    Transaction& txn, StateId state,
    const std::function<bool(std::string_view, std::string_view)>& callback) {
  if (!txn.running()) return Status::Aborted("transaction not running");
  VersionedStore* store = resolver_(state);
  if (store == nullptr) return Status::InvalidArgument("unknown state");
  context_->RegisterStateAccess(txn.slot(), state);
  return protocol_->Scan(txn, *store, callback);
}

Status TransactionManager::RegisterState(Transaction& txn, StateId state) {
  if (!txn.running()) return Status::Aborted("transaction not running");
  if (resolver_(state) == nullptr) {
    return Status::InvalidArgument("unknown state");
  }
  context_->RegisterStateAccess(txn.slot(), state);
  return Status::OK();
}

Status TransactionManager::CommitState(Transaction& txn, StateId state) {
  if (!txn.running()) return Status::Aborted("transaction not running");
  context_->SetStateStatus(txn.slot(), state, TxnStatus::kCommit);

  if (context_->AnyStateAborted(txn.slot())) {
    if (txn.TryClaimCoordinator()) GlobalAbort(txn);
    return Status::Aborted("another state flagged Abort");
  }
  if (context_->AllRegisteredStatesReady(txn.slot()) &&
      txn.TryClaimCoordinator()) {
    // "The operator that sets the last status flag to Commit becomes the
    // coordinator and is responsible for the global commit."
    return GlobalCommit(txn);
  }
  return Status::OK();
}

Status TransactionManager::AbortState(Transaction& txn, StateId state) {
  if (!txn.running()) return Status::OK();  // already finished globally
  context_->SetStateStatus(txn.slot(), state, TxnStatus::kAbort);
  if (txn.TryClaimCoordinator()) GlobalAbort(txn);
  return Status::OK();
}

Status TransactionManager::Commit(Transaction& txn) {
  if (!txn.running()) return Status::Aborted("transaction not running");
  for (const auto& [state, status] : context_->StatesOf(txn.slot())) {
    (void)status;
    context_->SetStateStatus(txn.slot(), state, TxnStatus::kCommit);
  }
  if (!txn.TryClaimCoordinator()) {
    return Status::Aborted("commit raced with another coordinator");
  }
  return GlobalCommit(txn);
}

Status TransactionManager::Abort(Transaction& txn) {
  if (!txn.running()) return Status::OK();
  if (txn.TryClaimCoordinator()) GlobalAbort(txn);
  return Status::OK();
}

Status TransactionManager::GlobalCommit(Transaction& txn) {
  const std::vector<StateId> written = txn.WrittenStates();

  if (written.empty()) {
    // Read-only fast path: no apply, no commit timestamp, no group
    // publication. Validation still runs (BOCC must check the read set).
    Status status = protocol_->PreCommit(txn);
    if (status.ok()) {
      for (const auto& [state, st] : context_->StatesOf(txn.slot())) {
        (void)st;
        if (VersionedStore* store = resolver_(state); store != nullptr) {
          status = protocol_->Validate(txn, *store);
          if (!status.ok()) break;
        }
      }
    }
    protocol_->PostCommit(txn, /*commit_ts=*/0, status.ok());
    if (!status.ok()) {
      counters_.conflicts.fetch_add(1, std::memory_order_relaxed);
      GlobalAbort(txn);
      return status;
    }
    ReleaseAll(txn, /*committed=*/true);
    Finish(txn, /*committed=*/true);
    return Status::OK();
  }

  // Resolve stores up front.
  std::vector<VersionedStore*> stores;
  stores.reserve(written.size());
  for (StateId state : written) {
    VersionedStore* store = resolver_(state);
    if (store == nullptr) {
      GlobalAbort(txn);
      return Status::InvalidArgument("unknown state in commit");
    }
    stores.push_back(store);
  }

  // --- Phase 1: validation. Runs over every *touched* state (not just the
  // written ones): BOCC has to validate read-only transactions too, since
  // its reads are only checked against later commits at commit time. ------
  Status status = protocol_->PreCommit(txn);
  if (!status.ok()) {
    GlobalAbort(txn);
    return status;
  }
  for (const auto& [state, state_status] : context_->StatesOf(txn.slot())) {
    (void)state_status;
    VersionedStore* store = resolver_(state);
    if (store == nullptr) continue;
    status = protocol_->Validate(txn, *store);
    if (!status.ok()) break;
  }
  if (!status.ok()) {
    counters_.conflicts.fetch_add(1, std::memory_order_relaxed);
    protocol_->PostCommit(txn, /*commit_ts=*/0, /*committed=*/false);
    GlobalAbort(txn);
    return status;
  }

  // --- Phase 2: apply. All states become visible atomically because the
  // new versions carry a commit timestamp no reader has pinned yet; the
  // groups' LastCTS advances only after every state is durable. -----------
  const Timestamp commit_ts = context_->clock().Next();
  for (VersionedStore* store : stores) {
    // Per-state GC watermark: only snapshots that can see this state pin
    // its old versions (an idle group elsewhere must not block GC here).
    const Timestamp oldest_active =
        context_->OldestActiveVersionFor(store->id());
    status = protocol_->Apply(txn, *store, commit_ts, oldest_active);
    if (!status.ok()) {
      // Apply failures (e.g. IO errors) after partial installation are
      // resolved by recovery: LastCTS was never advanced, so the versions
      // of this commit are purged on restart. In-memory, purge right away.
      for (VersionedStore* s : stores) {
        s->PurgeVersionsAfter(commit_ts - 1);
      }
      protocol_->PostCommit(txn, commit_ts, /*committed=*/false);
      GlobalAbort(txn);
      return status;
    }
  }
  protocol_->PostCommit(txn, commit_ts, /*committed=*/true);

  // --- Phase 3: publish. LastCTS per affected group, durably logged. ----
  std::set<GroupId> groups;
  for (StateId state : written) {
    for (GroupId group : context_->GroupsOf(state)) groups.insert(group);
  }
  // Durable log records first, then one atomic multi-group publication:
  // readers sweeping their snapshot pins must never observe a commit that
  // has advanced only some of its groups (§4.3 overlap-rule consistency).
  for (GroupId group : groups) {
    if (group_log_ != nullptr && durable_group_log_) {
      const Status log_status =
          group_log_->Record(group, commit_ts, /*sync=*/true);
      if (!log_status.ok()) {
        STREAMSI_WARN("group commit log write failed: "
                      << log_status.ToString());
      }
    }
  }
  context_->PublishCommit(
      std::vector<GroupId>(groups.begin(), groups.end()), commit_ts);

  // Commit listeners fire after publication: the changes are now visible
  // to new snapshots (TO_STREAM kOnCommit trigger).
  if (has_listeners_.load(std::memory_order_acquire)) {
    NotifyCommitListeners(txn, commit_ts, written);
  }

  ReleaseAll(txn, /*committed=*/true);
  Finish(txn, /*committed=*/true);
  return Status::OK();
}

void TransactionManager::NotifyCommitListeners(
    Transaction& txn, Timestamp commit_ts,
    const std::vector<StateId>& written) {
  for (StateId state : written) {
    std::vector<std::pair<std::uint64_t, CommitListener>> listeners;
    {
      SharedGuard guard(listeners_latch_);
      auto it = listeners_.find(state);
      if (it == listeners_.end()) continue;
      listeners = it->second;  // copy: listeners may (un)register in callbacks
    }
    if (listeners.empty()) continue;
    const WriteSet* ws = txn.FindWriteSet(state);
    if (ws == nullptr) continue;
    CommitInfo info;
    info.txn_id = txn.id();
    info.commit_ts = commit_ts;
    info.changes.reserve(ws->entries().size());
    for (const auto& entry : ws->entries()) {
      info.changes.push_back(CommitChange{
          entry.key, entry.is_delete
                         ? std::nullopt
                         : std::optional<std::string>(entry.value)});
    }
    for (const auto& [token, listener] : listeners) {
      (void)token;
      listener(info);
    }
  }
}

std::uint64_t TransactionManager::RegisterCommitListener(
    StateId state, CommitListener listener) {
  ExclusiveGuard guard(listeners_latch_);
  const std::uint64_t token = next_listener_token_++;
  listeners_[state].emplace_back(token, std::move(listener));
  has_listeners_.store(true, std::memory_order_release);
  return token;
}

void TransactionManager::UnregisterCommitListener(std::uint64_t token) {
  ExclusiveGuard guard(listeners_latch_);
  bool any = false;
  for (auto& [state, vec] : listeners_) {
    vec.erase(std::remove_if(vec.begin(), vec.end(),
                             [token](const auto& p) {
                               return p.first == token;
                             }),
              vec.end());
    any = any || !vec.empty();
  }
  has_listeners_.store(any, std::memory_order_release);
}

void TransactionManager::GlobalAbort(Transaction& txn) {
  // §4.2: "it is enough for the abort operation to simply clear the
  // corresponding write set and release the memory."
  txn.ClearWriteSets();
  ReleaseAll(txn, /*committed=*/false);
  Finish(txn, /*committed=*/false);
}

void TransactionManager::ReleaseAll(Transaction& txn, bool committed) {
  for (const auto& [state, status] : context_->StatesOf(txn.slot())) {
    (void)status;
    if (VersionedStore* store = resolver_(state); store != nullptr) {
      protocol_->ReleaseState(txn, *store, committed);
    }
  }
  protocol_->FinalizeTxn(txn, committed);
}

void TransactionManager::Finish(Transaction& txn, bool committed) {
  txn.set_phase(committed ? TxnPhase::kCommitted : TxnPhase::kAborted);
  context_->EndTransaction(txn.slot());
  auto& counter = committed ? counters_.committed : counters_.aborted;
  counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace streamsi
