#include "core/transaction_manager.h"

#include <algorithm>

#include "common/coding.h"
#include "common/logging.h"
#include "core/index_key.h"

namespace streamsi {

Result<std::unique_ptr<TransactionHandle>> TransactionManager::Begin() {
  TxnId id = 0;
  auto slot = context_->BeginTransaction(&id);
  if (!slot.ok()) return slot.status();
  counters_.begun.fetch_add(1, std::memory_order_relaxed);
  // The slot is exclusively ours until EndTransaction: hand out its pooled
  // scratch (allocated once per slot, then reused forever).
  auto& scratch = scratch_pool_[static_cast<std::size_t>(slot.value())];
  if (scratch == nullptr) scratch = std::make_unique<TxnScratch>();
  return std::make_unique<TransactionHandle>(this, context_, slot.value(), id,
                                             scratch.get());
}

Status TransactionManager::Read(Transaction& txn, StateId state,
                                std::string_view key, std::string* value) {
  if (!txn.running()) return Status::Aborted("transaction not running");
  VersionedStore* store = resolver_(state);
  if (store == nullptr) return Status::InvalidArgument("unknown state");
  context_->RegisterStateAccess(txn.slot(), state);
  const Status status = protocol_->Read(txn, *store, key, value);
  if (status.IsBusy()) {
    // wait-die victim: the transaction must abort.
    counters_.conflicts.fetch_add(1, std::memory_order_relaxed);
    Abort(txn);
    return Status::Aborted("wait-die abort during read");
  }
  return status;
}

Status TransactionManager::Write(Transaction& txn, StateId state,
                                 std::string_view key,
                                 std::string_view value) {
  if (!txn.running()) return Status::Aborted("transaction not running");
  VersionedStore* store = resolver_(state);
  if (store == nullptr) return Status::InvalidArgument("unknown state");
  const Status status = protocol_->Write(txn, *store, key, value);
  if (status.IsBusy()) {
    counters_.conflicts.fetch_add(1, std::memory_order_relaxed);
    Abort(txn);
    return Status::Aborted("wait-die abort during write");
  }
  return status;
}

Status TransactionManager::Delete(Transaction& txn, StateId state,
                                  std::string_view key) {
  if (!txn.running()) return Status::Aborted("transaction not running");
  VersionedStore* store = resolver_(state);
  if (store == nullptr) return Status::InvalidArgument("unknown state");
  const Status status = protocol_->Delete(txn, *store, key);
  if (status.IsBusy()) {
    counters_.conflicts.fetch_add(1, std::memory_order_relaxed);
    Abort(txn);
    return Status::Aborted("wait-die abort during delete");
  }
  return status;
}

Status TransactionManager::Scan(
    Transaction& txn, StateId state,
    const std::function<bool(std::string_view, std::string_view)>& callback) {
  if (!txn.running()) return Status::Aborted("transaction not running");
  VersionedStore* store = resolver_(state);
  if (store == nullptr) return Status::InvalidArgument("unknown state");
  context_->RegisterStateAccess(txn.slot(), state);
  return protocol_->Scan(txn, *store, callback);
}

Status TransactionManager::ScanRange(
    Transaction& txn, StateId state, std::string_view lo, std::string_view hi,
    const std::function<bool(std::string_view, std::string_view)>& callback) {
  if (!txn.running()) return Status::Aborted("transaction not running");
  VersionedStore* store = resolver_(state);
  if (store == nullptr) return Status::InvalidArgument("unknown state");
  context_->RegisterStateAccess(txn.slot(), state);
  return protocol_->ScanRange(txn, *store, lo, hi, callback);
}

Status TransactionManager::RegisterState(Transaction& txn, StateId state) {
  if (!txn.running()) return Status::Aborted("transaction not running");
  if (resolver_(state) == nullptr) {
    return Status::InvalidArgument("unknown state");
  }
  context_->RegisterStateAccess(txn.slot(), state);
  return Status::OK();
}

Status TransactionManager::CommitState(Transaction& txn, StateId state) {
  if (!txn.running()) return Status::Aborted("transaction not running");
  context_->SetStateStatus(txn.slot(), state, TxnStatus::kCommit);

  if (context_->AnyStateAborted(txn.slot())) {
    if (txn.TryClaimCoordinator()) GlobalAbort(txn);
    return Status::Aborted("another state flagged Abort");
  }
  if (context_->AllRegisteredStatesReady(txn.slot()) &&
      txn.TryClaimCoordinator()) {
    // "The operator that sets the last status flag to Commit becomes the
    // coordinator and is responsible for the global commit."
    return GlobalCommit(txn);
  }
  return Status::OK();
}

Status TransactionManager::AbortState(Transaction& txn, StateId state) {
  if (!txn.running()) return Status::OK();  // already finished globally
  context_->SetStateStatus(txn.slot(), state, TxnStatus::kAbort);
  if (txn.TryClaimCoordinator()) GlobalAbort(txn);
  return Status::OK();
}

Status TransactionManager::Commit(Transaction& txn) {
  if (!txn.running()) return Status::Aborted("transaction not running");
  SmallVec<std::pair<StateId, TxnStatus>, kInlineCommitStates> touched;
  context_->CopyStatesOf(txn.slot(), &touched);
  for (const auto& [state, status] : touched) {
    (void)status;
    context_->SetStateStatus(txn.slot(), state, TxnStatus::kCommit);
  }
  if (!txn.TryClaimCoordinator()) {
    return Status::Aborted("commit raced with another coordinator");
  }
  return GlobalCommit(txn);
}

Status TransactionManager::Abort(Transaction& txn) {
  if (!txn.running()) return Status::OK();
  if (txn.TryClaimCoordinator()) GlobalAbort(txn);
  return Status::OK();
}

namespace {

/// Context for the lazily computed per-store GC watermark.
struct StoreFloorCtx {
  StateContext* context;
  VersionedStore* store;
};

}  // namespace

Timestamp TransactionManager::ComputeStoreGcFloor(void* ctx) {
  auto* c = static_cast<StoreFloorCtx*>(ctx);
  // Generation-tagged cache: a watermark computed through the publish-floor
  // handshake stays safe forever (future pins validate against the
  // published floor), so serving a cached value is always sound. The
  // generation — bumped on every transaction begin/end — bounds how
  // conservative (stale-low) the served floor can get.
  const std::uint64_t generation = c->context->TxnTableGeneration();
  Timestamp floor = kInitialTs;
  if (c->store->TryGetCachedGcFloor(generation, &floor)) return floor;
  floor = c->context->OldestActiveVersionFor(c->store->id());
  c->store->CacheGcFloor(generation, floor);
  return floor;
}

void TransactionManager::WaitForStoreGcFloor(void* ctx, std::uint64_t micros) {
  auto* c = static_cast<StoreFloorCtx*>(ctx);
  // The floor rises only when a transaction ends (its pins disappear) or
  // begins (the cached-generation floor gets recomputed) — both bump the
  // transaction-table generation, so sleep on that signal instead of
  // polling. Waking early or late is harmless: the caller re-resolves the
  // floor and retries either way.
  c->context->WaitForTxnTableChange(c->context->TxnTableGeneration(), micros);
}

void TransactionManager::RegisterIndex(StateId base, StateId index,
                                       IndexKeyExtractor extractor) {
  ExclusiveGuard guard(indexes_latch_);
  auto& bindings = indexes_[base];
  for (auto& binding : bindings) {
    if (binding.index == index) {  // re-bind (reopen) replaces the extractor
      binding.extractor = std::move(extractor);
      return;
    }
  }
  bindings.push_back(IndexBinding{index, std::move(extractor)});
  has_indexes_.store(true, std::memory_order_release);
}

Status TransactionManager::DeriveIndexMutations(Transaction& txn) {
  // Snapshot the written states first: MutableWriteSet(index) below grows
  // the very set ForEachWrittenState walks.
  SmallVec<StateId, kInlineCommitStates> bases;
  txn.ForEachWrittenState([&](StateId state) { bases.push_back(state); });
  SharedGuard guard(indexes_latch_);
  std::string pre_image;
  std::string old_composite;
  std::string new_composite;
  for (StateId base : bases) {
    const auto it = indexes_.find(base);
    if (it == indexes_.end()) continue;
    VersionedStore* base_store = resolver_(base);
    const WriteSet* ws = txn.FindWriteSet(base);
    if (base_store == nullptr || ws == nullptr || ws->empty()) continue;
    for (const IndexBinding& binding : it->second) {
      if (!binding.extractor) {
        return Status::Unavailable(
            "state '" + base_store->name() +
            "' has a secondary index whose extractor is not bound in this "
            "process; call Database::CreateIndex again after Open");
      }
      WriteSet& index_ws = txn.MutableWriteSet(binding.index);
      // Extracted keys must honor the no-0x00 contract (core/index_key.h):
      // a separator byte inside the secondary would make SplitIndexKey cut
      // at the wrong position — silently wrong groupings and dangling
      // probes — so the commit fails loudly instead.
      Status derive = Status::OK();
      const auto extract = [&](std::string_view key, std::string_view value,
                               std::string* composite) {
        const std::string secondary = binding.extractor(key, value);
        if (!ValidIndexSecondary(secondary)) {
          derive = Status::InvalidArgument(
              "index extractor for state '" + base_store->name() +
              "' emitted a 0x00 byte in the secondary key of base key '" +
              std::string(key) + "' (see core/index_key.h)");
          return false;
        }
        AppendIndexKey(composite, secondary, key);
        return true;
      };
      ws->ForEachEffective([&](std::string_view key, std::string_view value,
                               bool is_delete) {
        if (!derive.ok()) return;
        // Pre-image: the newest committed live version of the base row.
        // This read is race-free under First-Committer-Wins: any commit
        // that modifies this key between our BOT and our validation makes
        // validation abort us, so a pre-image that passed validation was
        // the version our commit supersedes.
        pre_image.clear();
        const bool had_old = base_store->ReadLatest(key, &pre_image).ok();
        old_composite.clear();
        if (had_old && !extract(key, pre_image, &old_composite)) return;
        new_composite.clear();
        if (!is_delete && !extract(key, value, &new_composite)) return;
        if (had_old && old_composite != new_composite) {
          index_ws.Delete(old_composite);
        }
        if (!is_delete) index_ws.Put(new_composite, key);
      });
      if (!derive.ok()) return derive;
    }
  }
  return Status::OK();
}

Status TransactionManager::GlobalCommit(Transaction& txn) {
  // Secondary-index maintenance first: the derived index write sets join
  // the transaction's own, so everything downstream — validation, apply,
  // the ONE group-commit record, the ONE LastCTS publication — treats the
  // index states exactly like explicitly written ones. §4.3's atomic
  // multi-state publication is what makes index/base consistency free.
  if (has_indexes_.load(std::memory_order_acquire)) {
    const Status derived = DeriveIndexMutations(txn);
    if (!derived.ok()) {
      GlobalAbort(txn);
      return derived;
    }
  }

  // All commit bookkeeping lives on the coordinator's stack: written
  // states, resolved stores and the affected group set spill to the heap
  // only past kInlineCommitStates entries.
  SmallVec<StateId, kInlineCommitStates> written;
  txn.ForEachWrittenState([&](StateId state) { written.push_back(state); });

  if (written.empty()) {
    // Read-only fast path: no apply, no commit timestamp, no group
    // publication. Validation still runs (BOCC must check the read set).
    Status status = protocol_->PreCommit(txn);
    if (status.ok()) {
      SmallVec<std::pair<StateId, TxnStatus>, kInlineCommitStates> touched;
      context_->CopyStatesOf(txn.slot(), &touched);
      for (const auto& [state, st] : touched) {
        (void)st;
        if (VersionedStore* store = resolver_(state); store != nullptr) {
          status = protocol_->Validate(txn, *store);
          if (!status.ok()) break;
        }
      }
    }
    protocol_->PostCommit(txn, /*commit_ts=*/0, status.ok());
    if (!status.ok()) {
      counters_.conflicts.fetch_add(1, std::memory_order_relaxed);
      GlobalAbort(txn);
      return status;
    }
    ReleaseAll(txn, /*committed=*/true);
    Finish(txn, /*committed=*/true);
    return Status::OK();
  }

  // Degraded-mode gate: a read-only database rejects write-commits up
  // front with Unavailable — fail-fast, before any validation or IO, and
  // without counting a conflict. Read-only transactions (above) never hit
  // the gate: reads keep serving while degraded.
  if (commit_admission_) {
    const Status gate = commit_admission_();
    if (!gate.ok()) {
      GlobalAbort(txn);
      return gate;
    }
  }

  // Resolve stores up front.
  SmallVec<VersionedStore*, kInlineCommitStates> stores;
  for (StateId state : written) {
    VersionedStore* store = resolver_(state);
    if (store == nullptr) {
      GlobalAbort(txn);
      return Status::InvalidArgument("unknown state in commit");
    }
    stores.push_back(store);
  }

  // --- Phase 1: validation. Runs over every *touched* state (not just the
  // written ones): BOCC has to validate read-only transactions too, since
  // its reads are only checked against later commits at commit time. ------
  Status status = protocol_->PreCommit(txn);
  if (!status.ok()) {
    GlobalAbort(txn);
    return status;
  }
  {
    SmallVec<std::pair<StateId, TxnStatus>, kInlineCommitStates> touched;
    context_->CopyStatesOf(txn.slot(), &touched);
    for (const auto& [state, state_status] : touched) {
      (void)state_status;
      VersionedStore* store = resolver_(state);
      if (store == nullptr) continue;
      status = protocol_->Validate(txn, *store);
      if (!status.ok()) break;
    }
  }
  if (!status.ok()) {
    counters_.conflicts.fetch_add(1, std::memory_order_relaxed);
    protocol_->PostCommit(txn, /*commit_ts=*/0, /*committed=*/false);
    GlobalAbort(txn);
    return status;
  }

  // --- Phase 2: apply. All states become visible atomically because the
  // new versions carry a commit timestamp no reader has pinned yet; the
  // groups' LastCTS advances only after every state is durable. The GC
  // watermark is LAZY: the two-scan OldestActiveVersionFor handshake runs
  // only if some key's version array is actually full (generation-cached
  // per store), instead of once per written store on every commit. --------
  // Drawn through the publication-visibility gate: the timestamp is
  // registered as in flight, and readers clamp their snapshot pins below
  // it until it retires — a concurrent commit publishing a larger LastCTS
  // can never expose this commit's partial apply.
  const Timestamp commit_ts = context_->AssignCommitTimestamp(txn.slot());
  // Undo helper for failed commits: drop ONLY this transaction's freshly
  // installed versions (its write-set keys, which it still commit-owns). A
  // store-wide PurgeVersionsAfter would also destroy concurrent
  // committers' higher-timestamped — possibly already published — versions.
  const auto purge_own_writes = [&] {
    for (VersionedStore* store : stores) {
      const WriteSet* ws = txn.FindWriteSet(store->id());
      if (ws == nullptr) continue;
      ws->ForEachEffective(
          [&](std::string_view key, std::string_view, bool) {
            (void)store->PurgeKeyVersionsAfter(key, commit_ts - 1);
          });
    }
  };
  for (VersionedStore* store : stores) {
    StoreFloorCtx floor_ctx{context_, store};
    GcFloor floor(&TransactionManager::ComputeStoreGcFloor, &floor_ctx,
                  &TransactionManager::WaitForStoreGcFloor);
    status = protocol_->Apply(txn, *store, commit_ts, floor);
    if (!status.ok()) {
      // Apply failures (e.g. IO errors) after partial installation are
      // resolved by recovery: LastCTS was never advanced, so the versions
      // of this commit are purged on restart. In-memory, purge right away.
      purge_own_writes();  // before retiring: the clamp may rise past us
      context_->RetireCommitTimestamp(txn.slot());
      protocol_->PostCommit(txn, commit_ts, /*committed=*/false);
      GlobalAbort(txn);
      if (commit_failure_observer_) commit_failure_observer_(status);
      return status;
    }
  }

  // --- Phase 3: durability point. One group-commit record covers ALL of
  // this commit's groups (atomic on disk) and rides a WAL group-commit
  // batch shared with concurrent committers. A failed durable record FAILS
  // THE COMMIT: nothing was published, so the installed versions are purged
  // and the transaction aborts — publishing anyway would hand out data that
  // recovery is guaranteed to roll back. ---------------------------------
  SmallVec<GroupId, kInlineCommitStates> groups;
  for (StateId state : written) {
    context_->CollectGroupsOf(state, &groups);
  }
  if (group_log_ != nullptr && durable_group_log_ && !groups.empty()) {
    // Replication piggybacks the write sets onto the SAME record (still one
    // Append+Sync per group-commit batch): a follower replays data from the
    // shipped log alone. Encoded into a reused thread-local buffer, like
    // the record prefix itself.
    std::string_view replicated_data;
    if (replicate_commits_) {
      thread_local std::string ship_payload;
      ship_payload.clear();
      PutVarint32(&ship_payload, static_cast<std::uint32_t>(written.size()));
      for (StateId state : written) {
        const WriteSet* ws = txn.FindWriteSet(state);
        PutVarint32(&ship_payload, state);
        PutVarint32(&ship_payload,
                    static_cast<std::uint32_t>(ws->entries().size()));
        ws->ForEachEffective([&](std::string_view key, std::string_view value,
                                 bool is_delete) {
          PutVarint32(&ship_payload, static_cast<std::uint32_t>(key.size()));
          ship_payload.append(key.data(), key.size());
          ship_payload.push_back(is_delete ? '\1' : '\0');
          if (!is_delete) {
            PutVarint32(&ship_payload,
                        static_cast<std::uint32_t>(value.size()));
            ship_payload.append(value.data(), value.size());
          }
        });
      }
      replicated_data = ship_payload;
    }
    const Status log_status =
        group_log_->RecordCommit(groups.data(), groups.size(), commit_ts,
                                 /*sync=*/true, replicated_data);
    if (!log_status.ok()) {
      STREAMSI_WARN("group commit log write failed, aborting commit: "
                    << log_status.ToString());
      purge_own_writes();  // before retiring: the clamp may rise past us
      context_->RetireCommitTimestamp(txn.slot());
      protocol_->PostCommit(txn, commit_ts, /*committed=*/false);
      GlobalAbort(txn);
      if (commit_failure_observer_) commit_failure_observer_(log_status);
      return log_status;
    }
  }
  protocol_->PostCommit(txn, commit_ts, /*committed=*/true);

  // --- Phase 4: publish. One atomic multi-group LastCTS advance: readers
  // sweeping their snapshot pins must never observe a commit that has
  // advanced only some of its groups (§4.3 overlap-rule consistency). The
  // in-flight timestamp retires only after the publication is fully
  // visible — from then on readers may pin snapshots covering it. --------
  context_->PublishCommit(groups.data(), groups.size(), commit_ts);
  context_->RetireCommitTimestamp(txn.slot());

  // Commit listeners fire after publication: the changes are now visible
  // to new snapshots (TO_STREAM kOnCommit trigger).
  if (has_listeners_.load(std::memory_order_acquire)) {
    NotifyCommitListeners(txn, commit_ts, written.data(), written.size());
  }

  ReleaseAll(txn, /*committed=*/true);
  Finish(txn, /*committed=*/true);
  return Status::OK();
}

void TransactionManager::NotifyCommitListeners(Transaction& txn,
                                               Timestamp commit_ts,
                                               const StateId* written,
                                               std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    const StateId state = written[i];
    std::vector<std::pair<std::uint64_t, CommitListener>> listeners;
    {
      SharedGuard guard(listeners_latch_);
      auto it = listeners_.find(state);
      if (it == listeners_.end()) continue;
      listeners = it->second;  // copy: listeners may (un)register in callbacks
    }
    if (listeners.empty()) continue;
    const WriteSet* ws = txn.FindWriteSet(state);
    if (ws == nullptr) continue;
    CommitInfo info;
    info.txn_id = txn.id();
    info.commit_ts = commit_ts;
    info.changes = ws;
    for (const auto& [token, listener] : listeners) {
      (void)token;
      listener(info);
    }
  }
}

std::uint64_t TransactionManager::RegisterCommitListener(
    StateId state, CommitListener listener) {
  ExclusiveGuard guard(listeners_latch_);
  const std::uint64_t token = next_listener_token_++;
  listeners_[state].emplace_back(token, std::move(listener));
  has_listeners_.store(true, std::memory_order_release);
  return token;
}

void TransactionManager::UnregisterCommitListener(std::uint64_t token) {
  ExclusiveGuard guard(listeners_latch_);
  bool any = false;
  for (auto& [state, vec] : listeners_) {
    vec.erase(std::remove_if(vec.begin(), vec.end(),
                             [token](const auto& p) {
                               return p.first == token;
                             }),
              vec.end());
    any = any || !vec.empty();
  }
  has_listeners_.store(any, std::memory_order_release);
}

void TransactionManager::GlobalAbort(Transaction& txn) {
  // Release protocol resources FIRST: SI commit locks reference key bytes
  // inside the write sets, so the locks must be gone before the sets reset.
  ReleaseAll(txn, /*committed=*/false);
  // §4.2: "it is enough for the abort operation to simply clear the
  // corresponding write set and release the memory."
  txn.ClearWriteSets();
  Finish(txn, /*committed=*/false);
}

void TransactionManager::ReleaseAll(Transaction& txn, bool committed) {
  SmallVec<std::pair<StateId, TxnStatus>, kInlineCommitStates> touched;
  context_->CopyStatesOf(txn.slot(), &touched);
  for (const auto& [state, status] : touched) {
    (void)status;
    if (VersionedStore* store = resolver_(state); store != nullptr) {
      protocol_->ReleaseState(txn, *store, committed);
    }
  }
  protocol_->FinalizeTxn(txn, committed);
}

void TransactionManager::Finish(Transaction& txn, bool committed) {
  txn.set_phase(committed ? TxnPhase::kCommitted : TxnPhase::kAborted);
  // Reset the pooled scratch BEFORE the slot is released: once
  // EndTransaction runs, the next Begin may hand the same scratch to a new
  // transaction on another thread.
  txn.ResetScratch();
  context_->EndTransaction(txn.slot());
  auto& counter = committed ? counters_.committed : counters_.aborted;
  counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace streamsi
