// StateCatalog: the durable manifest of a database's schema — which states
// exist (name, id, backend type, on-disk location) and which topology
// groups tie them together.
//
// Before the catalog, recovery depended on the application re-issuing its
// CreateState/CreateGroup calls in the original order after every restart;
// nothing durable recorded which states existed. The catalog closes that
// hole: Database::Open replays it, reopens every state itself and restores
// the group topology, so a restarted process is read-to-serve without
// re-declaring anything.
//
// The catalog is an append-only log written through the same WAL machinery
// as the group-commit log (CRC-framed records, torn tails truncated on
// replay). Records are versioned (a leading format byte) so future eras can
// extend the payload without breaking old files. Declarations are rare and
// idempotent on replay: record order IS declaration order, which is what
// makes the replayed StateId/GroupId assignment deterministic.

#ifndef STREAMSI_CORE_STATE_CATALOG_H_
#define STREAMSI_CORE_STATE_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/backend.h"
#include "storage/wal.h"
#include "txn/types.h"

namespace streamsi {

class StateCatalog {
 public:
  struct StateRecord {
    StateId id = kInvalidStateId;
    BackendType backend = BackendType::kHash;
    std::string name;
    std::string location;  ///< filesystem path for persistent states, else ""
  };

  struct GroupRecord {
    GroupId id = kInvalidGroupId;
    bool singleton = false;  ///< the per-state implicit group of CreateState
    std::vector<StateId> states;
  };

  /// Secondary-index binding: state `index` is derived from state `base` by
  /// commit-time maintenance. The extractor function itself cannot be
  /// persisted — the application re-binds it via Database::CreateIndex
  /// after reopen; until then, write commits touching `base` refuse.
  struct IndexRecord {
    StateId index = kInvalidStateId;
    StateId base = kInvalidStateId;
  };

  /// One replayed declaration, in on-disk order (exactly one of the
  /// members-by-kind is meaningful).
  struct Declaration {
    enum class Kind { kState, kGroup, kIndex } kind = Kind::kState;
    StateRecord state;
    GroupRecord group;
    IndexRecord index;
  };

  StateCatalog(SyncMode sync_mode, std::uint64_t simulated_sync_micros,
               Env* env = nullptr)
      : env_(env != nullptr ? env : Env::Default()),
        writer_(sync_mode, simulated_sync_micros, env) {}

  /// Opens `path` for appending (declarations made before this process).
  /// A torn tail (crash mid-append) is truncated to the valid record
  /// prefix first — appending after torn garbage would make every later
  /// declaration unreachable to replay.
  Status Open(const std::string& path);

  /// Appends one state declaration, durably (synced per SyncMode).
  Status AppendState(const StateRecord& record);

  /// Appends one topology-group declaration, durably.
  Status AppendGroup(const GroupRecord& record);

  /// Appends one secondary-index binding, durably.
  Status AppendIndex(const IndexRecord& record);

  /// Replays `path` into declaration order. Missing file => empty catalog.
  static Status Replay(const std::string& path,
                       std::vector<Declaration>* declarations,
                       Env* env = nullptr);

  Status Close() { return writer_.Close(); }

 private:
  /// On-disk format version of records this writer emits.
  static constexpr unsigned char kFormatVersion = 1;

  Env* env_;  ///< declared before writer_: the writer borrows it
  WalWriter writer_;
};

}  // namespace streamsi

#endif  // STREAMSI_CORE_STATE_CATALOG_H_
