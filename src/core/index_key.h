// Composite secondary-index key encoding.
//
// An index state maps  [secondary key][0x00][primary key]  ->  primary key.
// The 0x00 separator keeps the composite order grouped by secondary key
// (and ordered by primary key within one secondary key) under plain
// byte-wise comparison, PROVIDED the secondary key contains no 0x00 byte —
// that is the extractor's contract, enforced wherever an extracted key
// enters the index (commit-time maintenance and backfill fail the write
// with InvalidArgument via ValidIndexSecondary below). Primary keys are
// unrestricted (they only ever appear after the separator, and the split
// always takes the FIRST 0x00).
//
// Probing all entries of one secondary key S is the half-open composite
// range [S 0x00, S 0x01): every composite for S starts with S 0x00, and
// nothing else does. A range of secondary keys [s1, s2) maps to the
// composite range [s1 0x00, s2 0x00).

#ifndef STREAMSI_CORE_INDEX_KEY_H_
#define STREAMSI_CORE_INDEX_KEY_H_

#include <string>
#include <string_view>

namespace streamsi {

inline constexpr char kIndexKeySeparator = '\0';

/// True iff `secondary` honors the extractor contract (no separator byte).
/// A violating key would make SplitIndexKey cut at the wrong position —
/// wrong groupings and dangling probes — so writers must reject it.
inline bool ValidIndexSecondary(std::string_view secondary) {
  return secondary.find(kIndexKeySeparator) == std::string_view::npos;
}

/// Appends the composite key for (secondary, primary) to `out`.
inline void AppendIndexKey(std::string* out, std::string_view secondary,
                           std::string_view primary) {
  out->append(secondary.data(), secondary.size());
  out->push_back(kIndexKeySeparator);
  out->append(primary.data(), primary.size());
}

inline std::string MakeIndexKey(std::string_view secondary,
                                std::string_view primary) {
  std::string out;
  out.reserve(secondary.size() + 1 + primary.size());
  AppendIndexKey(&out, secondary, primary);
  return out;
}

/// Splits a composite key at the first separator. Returns false for a
/// malformed key (no separator).
inline bool SplitIndexKey(std::string_view composite,
                          std::string_view* secondary,
                          std::string_view* primary) {
  const std::size_t sep = composite.find(kIndexKeySeparator);
  if (sep == std::string_view::npos) return false;
  if (secondary != nullptr) *secondary = composite.substr(0, sep);
  if (primary != nullptr) *primary = composite.substr(sep + 1);
  return true;
}

/// Composite bounds covering exactly the entries of one secondary key.
inline void IndexExactBounds(std::string_view secondary, std::string* lo,
                             std::string* hi) {
  lo->clear();
  lo->append(secondary.data(), secondary.size());
  lo->push_back('\0');
  hi->clear();
  hi->append(secondary.data(), secondary.size());
  hi->push_back('\x01');
}

/// Composite bounds covering the secondary-key range [s1, s2).
inline void IndexRangeBounds(std::string_view s1, std::string_view s2,
                             std::string* lo, std::string* hi) {
  lo->clear();
  lo->append(s1.data(), s1.size());
  lo->push_back('\0');
  hi->clear();
  if (!s2.empty()) {
    hi->append(s2.data(), s2.size());
    hi->push_back('\0');
  }
}

}  // namespace streamsi

#endif  // STREAMSI_CORE_INDEX_KEY_H_
