// Umbrella header: everything a library user needs.
//
//   #include "core/streamsi.h"
//
//   using namespace streamsi;
//   DatabaseOptions options;                       // MVCC + in-memory hash
//   auto db = Database::Open(options).value();
//   auto* state = db->CreateState("counts").value();
//   TransactionalTable<uint64_t, uint64_t> table(&db->txn_manager(), state);
//   auto txn = db->Begin().value();
//   table.Put(txn->txn(), 1, 42);
//   txn->Commit();

#ifndef STREAMSI_CORE_STREAMSI_H_
#define STREAMSI_CORE_STREAMSI_H_

#include "common/clock.h"
#include "common/serde.h"
#include "common/status.h"
#include "common/zipf.h"
#include "core/database.h"
#include "core/index_key.h"
#include "core/transaction_manager.h"
#include "core/transactional_table.h"
#include "storage/backend.h"
#include "txn/protocol.h"
#include "txn/state_context.h"
#include "txn/transaction.h"
#include "txn/types.h"
#include "txn/versioned_store.h"

#endif  // STREAMSI_CORE_STREAMSI_H_
