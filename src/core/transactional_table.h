// TransactionalTable<K, V>: the typed public API over one transactional
// state (requirement 1 of the paper's introduction: "state representations
// (tables) have to be queryable at all").
//
// Keys and values are translated through Serializer<T>; any trivially
// copyable type or std::string works out of the box.

#ifndef STREAMSI_CORE_TRANSACTIONAL_TABLE_H_
#define STREAMSI_CORE_TRANSACTIONAL_TABLE_H_

#include <functional>
#include <string>

#include "common/serde.h"
#include "core/transaction_manager.h"
#include "txn/versioned_store.h"

namespace streamsi {

template <typename K, typename V>
class TransactionalTable {
 public:
  TransactionalTable() = default;
  TransactionalTable(TransactionManager* manager, VersionedStore* store)
      : manager_(manager), store_(store) {}

  bool valid() const { return manager_ != nullptr && store_ != nullptr; }
  StateId id() const { return store_->id(); }
  const std::string& name() const { return store_->name(); }
  VersionedStore* store() { return store_; }

  /// Inserts or updates (upsert — TO_TABLE semantics, §3: "Whether a stream
  /// tuple is inserted or updated in a table depends on the presence of a
  /// table tuple with the same key").
  Status Put(Transaction& txn, const K& key, const V& value) {
    return manager_->Write(txn, store_->id(), EncodeToString(key),
                           EncodeToString(value));
  }

  /// Transactional point read.
  Result<V> Get(Transaction& txn, const K& key) {
    std::string raw;
    STREAMSI_RETURN_NOT_OK(
        manager_->Read(txn, store_->id(), EncodeToString(key), &raw));
    V value;
    if (!Serializer<V>::Decode(raw, &value)) {
      return Status::Corruption("value decode failed");
    }
    return value;
  }

  /// Transactional delete.
  Status Delete(Transaction& txn, const K& key) {
    return manager_->Delete(txn, store_->id(), EncodeToString(key));
  }

  /// Transactional scan over the snapshot (plus own writes).
  Status Scan(Transaction& txn,
              const std::function<bool(const K&, const V&)>& callback) {
    Status decode_status = Status::OK();
    STREAMSI_RETURN_NOT_OK(manager_->Scan(
        txn, store_->id(),
        [&](std::string_view raw_key, std::string_view raw_value) {
          K key;
          V value;
          if (!Serializer<K>::Decode(raw_key, &key) ||
              !Serializer<V>::Decode(raw_value, &value)) {
            decode_status = Status::Corruption("scan decode failed");
            return false;
          }
          return callback(key, value);
        }));
    return decode_status;
  }

  /// Transactional ordered range scan over [lo, hi) at the snapshot (plus
  /// own writes). The range is evaluated over the ENCODED byte order of K:
  /// std::string keys order naturally; integer keys must be encoded
  /// order-preservingly (see OrderPreservingKey in common/serde.h) — a raw
  /// memcpy'd little-endian int does NOT sort numerically. MVCC only.
  Status ScanRange(Transaction& txn, const K& lo, const K& hi,
                   const std::function<bool(const K&, const V&)>& callback) {
    Status decode_status = Status::OK();
    STREAMSI_RETURN_NOT_OK(manager_->ScanRange(
        txn, store_->id(), EncodeToString(lo), EncodeToString(hi),
        [&](std::string_view raw_key, std::string_view raw_value) {
          K key;
          V value;
          if (!Serializer<K>::Decode(raw_key, &key) ||
              !Serializer<V>::Decode(raw_value, &value)) {
            decode_status = Status::Corruption("scan decode failed");
            return false;
          }
          return callback(key, value);
        }));
    return decode_status;
  }

  /// Non-transactional bulk load for initialization (visible to everyone).
  Status BulkLoad(const K& key, const V& value) {
    return store_->BulkLoad(EncodeToString(key), EncodeToString(value));
  }

  /// Flushes the backend after a bulk load.
  Status FlushBackend() { return store_->backend()->Flush(); }

 private:
  TransactionManager* manager_ = nullptr;
  VersionedStore* store_ = nullptr;
};

}  // namespace streamsi

#endif  // STREAMSI_CORE_TRANSACTIONAL_TABLE_H_
