// TransactionManager: drives transactions through the configured
// concurrency protocol and implements the consistency protocol among
// multiple states (§4.3) — a modified 2-phase commit where the operator
// that sets the last per-state Commit flag becomes the coordinator of the
// global commit, and one Abort flag aborts the transaction globally.

#ifndef STREAMSI_CORE_TRANSACTION_MANAGER_H_
#define STREAMSI_CORE_TRANSACTION_MANAGER_H_

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/small_vec.h"
#include "core/group_commit_log.h"
#include "txn/protocol.h"
#include "txn/state_context.h"
#include "txn/transaction.h"
#include "txn/versioned_store.h"

namespace streamsi {

/// Counters for the benchmark harness and diagnostics.
struct TxnCounters {
  std::atomic<std::uint64_t> begun{0};
  std::atomic<std::uint64_t> committed{0};
  std::atomic<std::uint64_t> aborted{0};
  std::atomic<std::uint64_t> conflicts{0};  // FCW / validation / wait-die
};

/// A running transaction, owned by the caller. Destroying an unfinished
/// handle aborts the transaction.
class TransactionHandle;

/// What a commit listener learns about a finished transaction on one state.
/// The changes are exposed as views into the transaction's write set (valid
/// for the duration of the synchronous listener call) — building the
/// notification allocates nothing.
struct CommitInfo {
  TxnId txn_id = 0;
  Timestamp commit_ts = 0;
  /// The state's effective write set, in first-touch order.
  const WriteSet* changes = nullptr;

  /// fn(key, value, is_delete); `value` is empty for deletes.
  template <typename Fn>
  void ForEachChange(Fn&& fn) const {
    if (changes != nullptr) changes->ForEachEffective(fn);
  }
};

/// Observer of committed changes on one state. Invoked synchronously in the
/// committing thread *after* the group's LastCTS advanced, i.e. the changes
/// are visible to new snapshots — this is the kOnCommit trigger policy of
/// TO_STREAM (§3 "Transactional semantics").
using CommitListener = std::function<void(const CommitInfo&)>;

class TransactionManager {
 public:
  using StoreResolver = std::function<VersionedStore*(StateId)>;

  TransactionManager(StateContext* context, ConcurrencyProtocol* protocol,
                     StoreResolver resolver, GroupCommitLog* group_log,
                     bool durable_group_log)
      : context_(context),
        protocol_(protocol),
        resolver_(std::move(resolver)),
        group_log_(group_log),
        durable_group_log_(durable_group_log) {}

  /// BOT: claims a slot, assigns the transaction timestamp (§4.1).
  Result<std::unique_ptr<TransactionHandle>> Begin();

  // ------------------------------------------------------- data access ---

  Status Read(Transaction& txn, StateId state, std::string_view key,
              std::string* value);
  Status Write(Transaction& txn, StateId state, std::string_view key,
               std::string_view value);
  Status Delete(Transaction& txn, StateId state, std::string_view key);
  Status Scan(Transaction& txn, StateId state,
              const std::function<bool(std::string_view, std::string_view)>&
                  callback);
  /// Ordered range scan over [lo, hi) (empty `hi` = unbounded) at the
  /// transaction's §4.3 snapshot cut; MVCC only (see
  /// ConcurrencyProtocol::ScanRange for why the baselines refuse).
  Status ScanRange(Transaction& txn, StateId state, std::string_view lo,
                   std::string_view hi,
                   const std::function<bool(std::string_view,
                                            std::string_view)>& callback);

  /// Pre-declares that `txn` will access `state` (TO_TABLE operators call
  /// this at BOT so the consistency protocol knows the full state set
  /// before any operator commits its part).
  Status RegisterState(Transaction& txn, StateId state);

  // ---------------------------------------- consistency protocol (§4.3) ---

  /// Operator-level commit: flags `state` as Commit. If that was the last
  /// outstanding flag, the caller becomes the coordinator and performs the
  /// global commit; the returned status then reflects the global outcome
  /// (e.g. Conflict for a First-Committer-Wins abort). A non-coordinator
  /// gets OK and must not touch the transaction again except through
  /// CommitState/AbortState on its own state.
  Status CommitState(Transaction& txn, StateId state);

  /// Operator-level abort: flags `state` as Abort and aborts globally
  /// (§4.3: "a transaction must be aborted globally as soon as Abort has
  /// been flagged for at least one state").
  Status AbortState(Transaction& txn, StateId state);

  /// Query-centric convenience: commits all registered states at once
  /// (single coordinator).
  Status Commit(Transaction& txn);

  /// Aborts the whole transaction.
  Status Abort(Transaction& txn);

  /// Registers a commit observer for `state`; returns a token for
  /// UnregisterCommitListener.
  std::uint64_t RegisterCommitListener(StateId state, CommitListener listener);
  void UnregisterCommitListener(std::uint64_t token);

  // ------------------------------------------------- secondary indexes ---

  /// Derives the secondary key of one base row. Must be deterministic and
  /// must never emit a 0x00 byte (see core/index_key.h).
  using IndexKeyExtractor =
      std::function<std::string(std::string_view key, std::string_view value)>;

  /// Binds index state `index` to base state `base`: every GlobalCommit
  /// that wrote `base` derives the index mutations from its write set and
  /// commits them in the SAME §4.3 global commit, so base and index publish
  /// atomically. Re-binding the same pair replaces the extractor (reopen).
  /// A null extractor registers the binding as PENDING — write commits on
  /// `base` then refuse with Unavailable until the application re-binds a
  /// real extractor (Database::CreateIndex after reopen does this).
  void RegisterIndex(StateId base, StateId index, IndexKeyExtractor extractor);

  const TxnCounters& counters() const { return counters_; }
  StateContext* context() { return context_; }
  ConcurrencyProtocol* protocol() { return protocol_; }

  /// Gate consulted before a write-commit does any work; returning non-OK
  /// rejects the commit with that status (no IO, no conflict counted).
  using CommitAdmission = std::function<Status()>;
  /// Told about IO failures in the commit's apply/durability phases; the
  /// database classifies them into health-state transitions.
  using CommitFailureObserver = std::function<void(const Status&)>;

  /// Installs the database's health hooks (call before serving traffic;
  /// not thread-safe against in-flight commits). Either may be null.
  void SetHealthHooks(CommitAdmission admission,
                      CommitFailureObserver observer) {
    commit_admission_ = std::move(admission);
    commit_failure_observer_ = std::move(observer);
  }

  /// Write-transaction admission probe: the same gate GlobalCommit
  /// consults, exposed so writers (stream batches) can fail fast at BOT
  /// against a read-only database instead of doing a batch of work that
  /// can only be rejected at commit.
  Status AdmitWrites() const {
    return commit_admission_ ? commit_admission_() : Status::OK();
  }

  /// Replication: encode each commit's write sets into its durable record
  /// (kReplicatedCommit instead of kGroupCommit) so the shipped log replays
  /// on a follower with no other data channel. Call before serving traffic.
  void SetReplicationEnabled(bool enabled) { replicate_commits_ = enabled; }

  /// Promotion: installs the (fresh) group-commit log after a follower
  /// becomes writable. Not thread-safe against in-flight commits — the
  /// caller guarantees none exist (an unpromoted follower admits no write
  /// commit, so the commit path is quiescent when this runs).
  void SetGroupLog(GroupCommitLog* group_log, bool durable) {
    group_log_ = group_log;
    durable_group_log_ = durable;
  }

 private:
  friend class TransactionHandle;

  /// Inline capacity for the commit path's stack-resident bookkeeping
  /// (written states, stores, groups). Commits spanning more spill to the
  /// heap but stay correct.
  static constexpr std::size_t kInlineCommitStates = 8;

  Status GlobalCommit(Transaction& txn);
  void GlobalAbort(Transaction& txn);
  /// Commit-time index maintenance: for every written base state with
  /// bound indexes, folds the derived index mutations into the
  /// transaction's write sets (see GlobalCommit for the FCW argument that
  /// makes the pre-image read race-free).
  Status DeriveIndexMutations(Transaction& txn);
  void ReleaseAll(Transaction& txn, bool committed);
  void Finish(Transaction& txn, bool committed);
  void NotifyCommitListeners(Transaction& txn, Timestamp commit_ts,
                             const StateId* written, std::size_t count);
  /// GcFloor compute hook: generation-cached OldestActiveVersionFor.
  static Timestamp ComputeStoreGcFloor(void* ctx);
  /// GcFloor wait hook (writer backpressure): sleeps until the transaction
  /// table changed — the only event that can raise the floor — or `micros`
  /// elapsed.
  static void WaitForStoreGcFloor(void* ctx, std::uint64_t micros);

  StateContext* context_;
  ConcurrencyProtocol* protocol_;
  StoreResolver resolver_;
  GroupCommitLog* group_log_;
  bool durable_group_log_;
  bool replicate_commits_ = false;
  CommitAdmission commit_admission_;
  CommitFailureObserver commit_failure_observer_;
  TxnCounters counters_;
  /// Per-slot pooled transaction scratch (write sets, lock lists, caches).
  /// A slot is exclusively owned between BeginTransaction/EndTransaction,
  /// so no lock guards the entries; the unique_ptrs are created lazily and
  /// reused for every later transaction in the slot.
  std::array<std::unique_ptr<TxnScratch>, StateContext::kMaxActiveTxns>
      scratch_pool_;

  /// Secondary-index bindings, base state -> its indexes. Registration is
  /// a rare schema-time event; the commit path checks the atomic flag
  /// first and only takes the shared latch when indexes exist at all.
  struct IndexBinding {
    StateId index = kInvalidStateId;
    IndexKeyExtractor extractor;  ///< null = pending re-bind after reopen
  };
  mutable RwLatch indexes_latch_;
  std::unordered_map<StateId, std::vector<IndexBinding>> indexes_;
  std::atomic<bool> has_indexes_{false};

  mutable RwLatch listeners_latch_;
  std::uint64_t next_listener_token_ = 1;
  std::unordered_map<StateId,
                     std::vector<std::pair<std::uint64_t, CommitListener>>>
      listeners_;
  std::atomic<bool> has_listeners_{false};
};

/// RAII transaction wrapper returned by Begin(); aborts on destruction if
/// still running.
class TransactionHandle {
 public:
  TransactionHandle(TransactionManager* manager, StateContext* context,
                    int slot, TxnId id, TxnScratch* scratch)
      : manager_(manager), txn_(context, slot, id, scratch) {}

  ~TransactionHandle() {
    if (txn_.running()) manager_->Abort(txn_);
  }

  TransactionHandle(const TransactionHandle&) = delete;
  TransactionHandle& operator=(const TransactionHandle&) = delete;

  Transaction& txn() { return txn_; }
  TxnId id() const { return txn_.id(); }

  Status Read(StateId state, std::string_view key, std::string* value) {
    return manager_->Read(txn_, state, key, value);
  }
  Status Write(StateId state, std::string_view key, std::string_view value) {
    return manager_->Write(txn_, state, key, value);
  }
  Status Delete(StateId state, std::string_view key) {
    return manager_->Delete(txn_, state, key);
  }
  Status Scan(StateId state,
              const std::function<bool(std::string_view, std::string_view)>&
                  callback) {
    return manager_->Scan(txn_, state, callback);
  }
  Status ScanRange(StateId state, std::string_view lo, std::string_view hi,
                   const std::function<bool(std::string_view,
                                            std::string_view)>& callback) {
    return manager_->ScanRange(txn_, state, lo, hi, callback);
  }
  Status Commit() { return manager_->Commit(txn_); }
  Status Abort() { return manager_->Abort(txn_); }
  Status CommitState(StateId state) {
    return manager_->CommitState(txn_, state);
  }
  Status AbortState(StateId state) { return manager_->AbortState(txn_, state); }

 private:
  TransactionManager* manager_;
  Transaction txn_;
};

}  // namespace streamsi

#endif  // STREAMSI_CORE_TRANSACTION_MANAGER_H_
