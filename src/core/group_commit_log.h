// GroupCommitLog: durable record of each topology group's last globally
// committed transaction (LastCTS).
//
// §4.1: "the last committed transaction (LastCTS) per group is recorded.
// For recovery purposes, this information needs to be persistent."
//
// The log is append-only, written after the state data is durable; recovery
// replays it and keeps the newest CTS per group. Any state version with a
// CTS beyond its groups' recovered LastCTS belongs to a commit that never
// finished globally and is purged, which is what keeps multiple states of
// one query mutually consistent across crashes.
//
// A commit that spans several groups is logged as ONE record (kGroupCommit:
// all its group ids + the commit timestamp). That makes the publication
// atomic on disk — recovery sees either every group advanced or none, so a
// crash can no longer leave a multi-group commit half-recorded — and it
// turns N per-group synced appends into a single append that rides one
// group-commit batch of the underlying WalWriter.

#ifndef STREAMSI_CORE_GROUP_COMMIT_LOG_H_
#define STREAMSI_CORE_GROUP_COMMIT_LOG_H_

#include <atomic>
#include <string>
#include <unordered_map>

#include "common/coding.h"
#include "common/small_vec.h"
#include "storage/wal.h"
#include "txn/types.h"

namespace streamsi {

class GroupCommitLog {
 public:
  GroupCommitLog(SyncMode sync_mode, std::uint64_t simulated_sync_micros)
      : writer_(sync_mode, simulated_sync_micros) {}

  Status Open(const std::string& path) {
    path_ = path;
    return writer_.Open(path, /*truncate=*/false);
  }

  /// Appends "group committed through cts" (durable on return when the
  /// log's SyncMode says so). Single-group legacy record.
  Status Record(GroupId group, Timestamp cts, bool sync) {
    std::string payload;
    PutVarint32(&payload, group);
    PutVarint64(&payload, cts);
    return writer_.Append(WalRecordType::kCheckpoint, payload, sync);
  }

  /// Appends one commit's whole publication — every affected group advances
  /// to `cts` — as a single all-or-nothing record. The payload buffer is
  /// thread-local and reused, so steady-state commits encode without heap
  /// allocation.
  Status RecordCommit(const GroupId* groups, std::size_t count, Timestamp cts,
                      bool sync) {
    if (failures_to_inject_.load(std::memory_order_relaxed) > 0 &&
        failures_to_inject_.fetch_sub(1, std::memory_order_relaxed) > 0) {
      return Status::IoError("injected group-commit log failure");
    }
    thread_local std::string payload;
    payload.clear();
    PutVarint32(&payload, static_cast<std::uint32_t>(count));
    for (std::size_t i = 0; i < count; ++i) PutVarint32(&payload, groups[i]);
    PutVarint64(&payload, cts);
    return writer_.Append(WalRecordType::kGroupCommit, payload, sync);
  }

  /// Records written / batches synced (group-commit amortization ratio).
  std::uint64_t batches_written() const { return writer_.batches_written(); }

  /// Replays `path` and returns the newest CTS per group.
  static Result<std::unordered_map<GroupId, Timestamp>> Replay(
      const std::string& path) {
    std::unordered_map<GroupId, Timestamp> result;
    if (!fsutil::FileExists(path)) return result;
    STREAMSI_RETURN_NOT_OK(WalReader::Replay(
        path,
        [&](WalRecordType type, std::string_view payload) -> Status {
          const char* p = payload.data();
          const char* limit = p + payload.size();
          if (type == WalRecordType::kGroupCommit) {
            std::uint32_t count = 0;
            p = GetVarint32(p, limit, &count);
            if (p == nullptr) return Status::Corruption("bad group count");
            // Bounded by the payload itself: each group id is >= 1 byte.
            if (count > payload.size()) {
              return Status::Corruption("group count exceeds record");
            }
            SmallVec<GroupId, 64> ids;
            for (std::uint32_t i = 0; i < count && p != nullptr; ++i) {
              GroupId id = kInvalidGroupId;
              p = GetVarint32(p, limit, &id);
              if (p != nullptr) ids.push_back(id);
            }
            std::uint64_t cts = 0;
            if (p != nullptr) p = GetVarint64(p, limit, &cts);
            if (p == nullptr) {
              return Status::Corruption("bad group commit record");
            }
            for (GroupId id : ids) {
              Timestamp& entry = result[id];
              entry = std::max(entry, cts);
            }
            return Status::OK();
          }
          std::uint32_t group = 0;
          std::uint64_t cts = 0;
          p = GetVarint32(p, limit, &group);
          if (p == nullptr) return Status::Corruption("bad group id");
          p = GetVarint64(p, limit, &cts);
          if (p == nullptr) return Status::Corruption("bad group cts");
          Timestamp& entry = result[group];
          entry = std::max(entry, cts);
          return Status::OK();
        },
        nullptr));
    return result;
  }

  Status Close() { return writer_.Close(); }

  /// Fault injection: the next `n` RecordCommit calls fail with IoError
  /// (durability-hole tests — a failed durable record must fail the commit).
  void InjectRecordFailures(int n) {
    failures_to_inject_.store(n, std::memory_order_relaxed);
  }

 private:
  std::string path_;
  WalWriter writer_;
  std::atomic<int> failures_to_inject_{0};
};

}  // namespace streamsi

#endif  // STREAMSI_CORE_GROUP_COMMIT_LOG_H_
