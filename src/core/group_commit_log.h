// GroupCommitLog: durable, segmented record of each topology group's last
// globally committed transaction (LastCTS), with database checkpoints.
//
// §4.1: "the last committed transaction (LastCTS) per group is recorded.
// For recovery purposes, this information needs to be persistent."
//
// The log is a chain of append-only segments. Commits append kGroupCommit
// records (one commit's whole multi-group publication as a single
// all-or-nothing record, riding a WalWriter group-commit batch); replay
// keeps the newest CTS per group AND the exact set of replayed commit
// timestamps. Recovery keeps a state version iff its CTS is covered by a
// checkpoint cut or appears in that set — a commit that never logged its
// record (aborted at the durability point) is purged from every store even
// when a concurrent commit with a larger CTS did log, which is what keeps
// multiple states of one query mutually consistent across crashes.
//
// Checkpoints bound the chain (Database::Checkpoint drives the protocol):
//   1. RotateSegment()   — later commit records land in a fresh segment.
//   2. (the database drains in-flight commits and takes one
//      publication-seqlock-consistent LastCTS cut)
//   3. WriteCheckpoint() — the cut becomes a durable kCheckpointCut record
//      in the new segment; it subsumes every record in OLDER segments
//      (their commits published before the cut was taken).
//   4. PruneObsoleteSegments() — older segments are deleted.
// Replay walks segments newest -> oldest until it finds one containing a
// complete checkpoint cut and max-merges that segment and everything newer,
// so restart work is bounded by data since the last checkpoint. A torn or
// failed checkpoint (crash anywhere in 1-4) leaves the previous segment
// chain authoritative: older segments are only deleted after the cut record
// is durable, and max-merge replay of extra segments is always sound.

#ifndef STREAMSI_CORE_GROUP_COMMIT_LOG_H_
#define STREAMSI_CORE_GROUP_COMMIT_LOG_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "storage/wal.h"
#include "txn/types.h"

namespace streamsi {

class GroupCommitLog {
 public:
  GroupCommitLog(SyncMode sync_mode, std::uint64_t simulated_sync_micros,
                 Env* env = nullptr)
      : env_(env != nullptr ? env : Env::Default()),
        writer_(sync_mode, simulated_sync_micros, env) {}

  /// Opens the segment chain rooted at `path` (the root name doubles as
  /// segment 0 for on-disk compatibility with pre-checkpoint databases;
  /// later segments are `<path>.NNNNNN`). Appends continue on the newest
  /// existing segment.
  Status Open(const std::string& path);

  /// Appends one commit's whole publication — every affected group advances
  /// to `cts` — as a single all-or-nothing record. The payload buffer is
  /// thread-local and reused, so steady-state commits encode without heap
  /// allocation. When `replicated_data` is non-empty the record is written
  /// as kReplicatedCommit with that buffer appended after the group/cts
  /// prefix — the write sets ride the same record so a shipped log replays
  /// on a follower with no other data channel (still ONE Append+Sync per
  /// group-commit batch; shipping itself stays off the commit path).
  Status RecordCommit(const GroupId* groups, std::size_t count, Timestamp cts,
                      bool sync, std::string_view replicated_data = {});

  /// Records written / batches synced (group-commit amortization ratio).
  std::uint64_t batches_written() const { return writer_.batches_written(); }

  // ------------------------------------------------- checkpoint protocol ---

  /// Starts a fresh segment; subsequent records land there. Step 1 of a
  /// checkpoint (see file comment).
  Status RotateSegment();

  /// Appends the LastCTS cut as a durable (synced) kCheckpointCut record.
  Status WriteCheckpoint(const std::pair<GroupId, Timestamp>* cut,
                         std::size_t count);

  /// Deletes every segment older than the current one, except those at or
  /// above the retain floor (a replication slot: the shipper holds back
  /// segments it has not fully streamed yet). Failures leave the stale
  /// segments in place — replay stays correct (max-merge), only the disk
  /// footprint suffers until the next checkpoint retries.
  Status PruneObsoleteSegments();

  /// Replication slot: segments numbered >= `segment` survive pruning until
  /// the shipper advances the floor. kNoRetainFloor (the default) retains
  /// nothing extra.
  static constexpr std::uint64_t kNoRetainFloor = ~0ull;
  void SetRetainFloor(std::uint64_t segment) {
    retain_floor_.store(segment, std::memory_order_relaxed);
  }

  /// Newest (currently appended-to) segment number.
  std::uint64_t current_segment() const;
  /// Live on-disk segments, current included (footprint observability).
  std::size_t SegmentCount() const;
  /// Total on-disk bytes across live segments.
  std::uint64_t TotalSizeBytes() const;

  // ------------------------------------------------- replication read API ---

  /// The on-disk path of segment `n` of the chain rooted at `root` (n == 0
  /// is the bare root name).
  static std::string SegmentPath(const std::string& root, std::uint64_t n);

  /// All on-disk segment numbers of the chain at `root`, ascending. Static:
  /// a follower enumerates a SHIPPED chain it has no writer over.
  static Status ListSegmentsOnDisk(Env* env, const std::string& root,
                                   std::vector<std::uint64_t>* numbers) {
    return ListSegments(env != nullptr ? env : Env::Default(), root, numbers);
  }

  /// Snapshot of this log's live segment numbers, ascending (current
  /// included) — the shipper's work list, consistent under the log's own
  /// bookkeeping instead of a racy directory scan.
  void ListLiveSegments(std::vector<std::uint64_t>* numbers) const;

  /// Reads the frame-aligned tail of `path` past `offset`: the bytes
  /// [offset, L) where L is the valid-frame prefix of the file — only
  /// whole, CRC-complete frames are ever handed out, so shipped bytes
  /// always replay to whole records. `offset` beyond L yields empty (the
  /// receiver is ahead of the durable prefix; nothing to ship).
  static Status TailFrom(Env* env, const std::string& path,
                         std::uint64_t offset, std::string* out);

  // ----------------------------------------------------------- recovery ---

  struct ReplayInfo {
    std::uint64_t segments_present = 0;
    std::uint64_t segments_replayed = 0;
    std::uint64_t records = 0;
    bool from_checkpoint = false;
    /// Exact timestamps of the individual commit records replayed
    /// (kGroupCommit, kReplicatedCommit + legacy kCheckpoint). Recovery needs the exact set,
    /// not just the per-group max: a commit whose record never landed
    /// (aborted at the durability point) can hold a cts BELOW a later
    /// commit that did log — a single watermark would resurrect its
    /// partially-applied versions.
    std::unordered_set<Timestamp> committed_cts;
    /// Per-group watermarks from kCheckpointCut records only. A cut is
    /// wholesale coverage: every commit with cts <= watermark was durable
    /// and drained when the cut was taken (its individual record may since
    /// have been pruned).
    std::unordered_map<GroupId, Timestamp> cut_watermarks;
  };

  /// Replays the segment chain rooted at `path` and returns the newest CTS
  /// per group, starting from the newest complete checkpoint (older
  /// segments are skipped entirely). Decodes all three record eras:
  /// kGroupCommit, kCheckpointCut, and the legacy single-group kCheckpoint.
  static Result<std::unordered_map<GroupId, Timestamp>> Replay(
      const std::string& path, ReplayInfo* info = nullptr,
      Env* env = nullptr);

  Status Close() { return writer_.Close(); }

  /// OK, or the first IO error that poisoned the underlying writer (every
  /// later commit record fails with it). The health machine uses this to
  /// distinguish a one-shot injected failure from a dead commit path.
  Status WriterHealth() { return writer_.sticky_status(); }

  // ---------------------------------------------------- fault injection ---

  /// The next `n` RecordCommit calls fail with IoError (durability-hole
  /// tests — a failed durable record must fail the commit).
  void InjectRecordFailures(int n) {
    failures_to_inject_.store(n, std::memory_order_relaxed);
  }

  /// Where to fail the next checkpoint (crash-mid-checkpoint tests; the
  /// fault is consumed by the first checkpoint that reaches the point).
  enum class CheckpointFault {
    kNone,
    kBeforeRotate,            ///< between backend flush and segment rotation
    kBeforeCheckpointRecord,  ///< rotated, but the cut record never lands
    kBeforePrune,             ///< cut durable, old segments never deleted
  };
  void InjectCheckpointFault(CheckpointFault fault) {
    checkpoint_fault_.store(fault, std::memory_order_relaxed);
  }

 private:
  /// All on-disk segment numbers of the chain at `root`, ascending.
  static Status ListSegments(Env* env, const std::string& root,
                             std::vector<std::uint64_t>* numbers);
  /// Fails with IoError iff `point` is the armed fault (one-shot).
  Status ConsumeFault(CheckpointFault point);

  std::string root_path_;
  Env* env_;  ///< declared before writer_: the writer borrows it
  WalWriter writer_;
  mutable std::mutex segments_mutex_;
  std::vector<std::uint64_t> segments_;  ///< live on disk, ascending
  std::uint64_t current_segment_ = 0;    ///< under segments_mutex_
  std::atomic<int> failures_to_inject_{0};
  std::atomic<CheckpointFault> checkpoint_fault_{CheckpointFault::kNone};
  std::atomic<std::uint64_t> retain_floor_{kNoRetainFloor};
};

}  // namespace streamsi

#endif  // STREAMSI_CORE_GROUP_COMMIT_LOG_H_
