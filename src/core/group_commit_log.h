// GroupCommitLog: durable record of each topology group's last globally
// committed transaction (LastCTS).
//
// §4.1: "the last committed transaction (LastCTS) per group is recorded.
// For recovery purposes, this information needs to be persistent."
//
// The log is append-only (one record per group commit, written after the
// state data is durable); recovery replays it and keeps the newest CTS per
// group. Any state version with a CTS beyond its groups' recovered LastCTS
// belongs to a commit that never finished globally and is purged, which is
// what keeps multiple states of one query mutually consistent across
// crashes.

#ifndef STREAMSI_CORE_GROUP_COMMIT_LOG_H_
#define STREAMSI_CORE_GROUP_COMMIT_LOG_H_

#include <string>
#include <unordered_map>

#include "common/coding.h"
#include "storage/wal.h"
#include "txn/types.h"

namespace streamsi {

class GroupCommitLog {
 public:
  GroupCommitLog(SyncMode sync_mode, std::uint64_t simulated_sync_micros)
      : writer_(sync_mode, simulated_sync_micros) {}

  Status Open(const std::string& path) {
    path_ = path;
    return writer_.Open(path, /*truncate=*/false);
  }

  /// Appends "group committed through cts" (durable on return when the
  /// log's SyncMode says so).
  Status Record(GroupId group, Timestamp cts, bool sync) {
    std::string payload;
    PutVarint32(&payload, group);
    PutVarint64(&payload, cts);
    return writer_.Append(WalRecordType::kCheckpoint, payload, sync);
  }

  /// Replays `path` and returns the newest CTS per group.
  static Result<std::unordered_map<GroupId, Timestamp>> Replay(
      const std::string& path) {
    std::unordered_map<GroupId, Timestamp> result;
    if (!fsutil::FileExists(path)) return result;
    STREAMSI_RETURN_NOT_OK(WalReader::Replay(
        path,
        [&](WalRecordType /*type*/, std::string_view payload) -> Status {
          const char* p = payload.data();
          const char* limit = p + payload.size();
          std::uint32_t group = 0;
          std::uint64_t cts = 0;
          p = GetVarint32(p, limit, &group);
          if (p == nullptr) return Status::Corruption("bad group id");
          p = GetVarint64(p, limit, &cts);
          if (p == nullptr) return Status::Corruption("bad group cts");
          Timestamp& entry = result[group];
          entry = std::max(entry, cts);
          return Status::OK();
        },
        nullptr));
    return result;
  }

  Status Close() { return writer_.Close(); }

 private:
  std::string path_;
  WalWriter writer_;
};

}  // namespace streamsi

#endif  // STREAMSI_CORE_GROUP_COMMIT_LOG_H_
