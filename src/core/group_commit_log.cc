#include "core/group_commit_log.h"

#include <algorithm>
#include <cstdio>

#include "common/coding.h"
#include "common/small_vec.h"

namespace streamsi {

namespace {

/// Decodes one segment into `result` (max-merge) and `info` (exact
/// committed-cts set + cut-only watermarks). `has_checkpoint` reports
/// whether a complete kCheckpointCut record was seen.
Status ReplaySegment(Env* env, const std::string& path,
                     std::unordered_map<GroupId, Timestamp>* result,
                     GroupCommitLog::ReplayInfo* info,
                     bool* has_checkpoint, std::uint64_t* records) {
  return WalReader::Replay(
      path,
      [&](WalRecordType type, std::string_view payload) -> Status {
        ++*records;
        const char* p = payload.data();
        const char* limit = p + payload.size();
        switch (type) {
          // kReplicatedCommit = kGroupCommit prefix + the commit's write
          // sets appended; the prefix decode below reads exactly the prefix
          // and ignores the suffix, so both kinds share one case.
          case WalRecordType::kReplicatedCommit:
          case WalRecordType::kGroupCommit: {
            std::uint32_t count = 0;
            p = GetVarint32(p, limit, &count);
            if (p == nullptr) return Status::Corruption("bad group count");
            // Bounded by the payload itself: each group id is >= 1 byte.
            if (count > payload.size()) {
              return Status::Corruption("group count exceeds record");
            }
            SmallVec<GroupId, 64> ids;
            for (std::uint32_t i = 0; i < count && p != nullptr; ++i) {
              GroupId id = kInvalidGroupId;
              p = GetVarint32(p, limit, &id);
              if (p != nullptr) ids.push_back(id);
            }
            std::uint64_t cts = 0;
            if (p != nullptr) p = GetVarint64(p, limit, &cts);
            if (p == nullptr) {
              return Status::Corruption("bad group commit record");
            }
            for (GroupId id : ids) {
              Timestamp& entry = (*result)[id];
              entry = std::max(entry, cts);
            }
            info->committed_cts.insert(cts);
            return Status::OK();
          }
          case WalRecordType::kCheckpointCut: {
            std::uint32_t count = 0;
            p = GetVarint32(p, limit, &count);
            if (p == nullptr || count > payload.size()) {
              return Status::Corruption("bad checkpoint cut count");
            }
            for (std::uint32_t i = 0; i < count; ++i) {
              GroupId id = kInvalidGroupId;
              std::uint64_t cts = 0;
              p = GetVarint32(p, limit, &id);
              if (p != nullptr) p = GetVarint64(p, limit, &cts);
              if (p == nullptr) {
                return Status::Corruption("bad checkpoint cut entry");
              }
              Timestamp& entry = (*result)[id];
              entry = std::max(entry, cts);
              Timestamp& cut_entry = info->cut_watermarks[id];
              cut_entry = std::max(cut_entry, cts);
            }
            *has_checkpoint = true;
            return Status::OK();
          }
          case WalRecordType::kCheckpoint: {
            // Legacy single-group record (pre-checkpoint era; no writer
            // remains, decode kept for on-disk compatibility).
            std::uint32_t group = 0;
            std::uint64_t cts = 0;
            p = GetVarint32(p, limit, &group);
            if (p == nullptr) return Status::Corruption("bad group id");
            p = GetVarint64(p, limit, &cts);
            if (p == nullptr) return Status::Corruption("bad group cts");
            Timestamp& entry = (*result)[group];
            entry = std::max(entry, cts);
            info->committed_cts.insert(cts);  // one record per commit
            return Status::OK();
          }
          default:
            // Foreign record kinds (future eras) are skipped, not fatal.
            return Status::OK();
        }
      },
      nullptr, env);
}

}  // namespace

std::string GroupCommitLog::SegmentPath(const std::string& root,
                                        std::uint64_t n) {
  if (n == 0) return root;
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), ".%06llu",
                static_cast<unsigned long long>(n));
  return root + suffix;
}

Status GroupCommitLog::ListSegments(Env* env, const std::string& root,
                                    std::vector<std::uint64_t>* numbers) {
  numbers->clear();
  const std::size_t slash = root.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? std::string(".") : root.substr(0, slash);
  const std::string base =
      slash == std::string::npos ? root : root.substr(slash + 1);
  STREAMSI_RETURN_NOT_OK(
      env->ListNumberedFiles(dir, base + ".", "", numbers));
  // Segment numbers start at 1 — the bare root name IS segment 0, so a
  // stray "<root>.0" would collide with it.
  numbers->erase(std::remove(numbers->begin(), numbers->end(), 0ull),
                 numbers->end());
  if (env->FileExists(root)) numbers->push_back(0);
  std::sort(numbers->begin(), numbers->end());
  return Status::OK();
}

Status GroupCommitLog::Open(const std::string& path) {
  root_path_ = path;
  std::vector<std::uint64_t> numbers;
  STREAMSI_RETURN_NOT_OK(ListSegments(env_, path, &numbers));
  std::lock_guard<std::mutex> guard(segments_mutex_);
  if (numbers.empty()) numbers.push_back(0);
  segments_ = std::move(numbers);
  current_segment_ = segments_.back();
  // Never append after a torn tail: replay stops at the first bad frame,
  // so records appended behind one would be unreachable forever — acked
  // commits silently lost at the next recovery. A torn newest segment is
  // retired in place (it replays to its valid prefix; pruned by the next
  // checkpoint) and appends start a fresh segment.
  if (env_->FileExists(SegmentPath(root_path_, current_segment_))) {
    WalReader::ReplayStats stats;
    STREAMSI_RETURN_NOT_OK(WalReader::Replay(
        SegmentPath(root_path_, current_segment_),
        [](WalRecordType, std::string_view) { return Status::OK(); },
        &stats, env_));
    if (stats.tail_truncated) {
      ++current_segment_;
      segments_.push_back(current_segment_);
    }
  }
  return writer_.Open(SegmentPath(root_path_, current_segment_),
                      /*truncate=*/false);
}

Status GroupCommitLog::RecordCommit(const GroupId* groups, std::size_t count,
                                    Timestamp cts, bool sync,
                                    std::string_view replicated_data) {
  if (failures_to_inject_.load(std::memory_order_relaxed) > 0 &&
      failures_to_inject_.fetch_sub(1, std::memory_order_relaxed) > 0) {
    return Status::IoError("injected group-commit log failure");
  }
  thread_local std::string payload;
  payload.clear();
  PutVarint32(&payload, static_cast<std::uint32_t>(count));
  for (std::size_t i = 0; i < count; ++i) PutVarint32(&payload, groups[i]);
  PutVarint64(&payload, cts);
  if (replicated_data.empty()) {
    return writer_.Append(WalRecordType::kGroupCommit, payload, sync);
  }
  payload.append(replicated_data.data(), replicated_data.size());
  return writer_.Append(WalRecordType::kReplicatedCommit, payload, sync);
}

Status GroupCommitLog::ConsumeFault(CheckpointFault point) {
  CheckpointFault expected = point;
  if (checkpoint_fault_.compare_exchange_strong(expected,
                                                CheckpointFault::kNone,
                                                std::memory_order_relaxed)) {
    return Status::IoError("injected checkpoint fault");
  }
  return Status::OK();
}

Status GroupCommitLog::RotateSegment() {
  STREAMSI_RETURN_NOT_OK(ConsumeFault(CheckpointFault::kBeforeRotate));
  std::lock_guard<std::mutex> guard(segments_mutex_);
  const std::uint64_t next = current_segment_ + 1;
  STREAMSI_RETURN_NOT_OK(writer_.RotateTo(SegmentPath(root_path_, next)));
  current_segment_ = next;
  segments_.push_back(next);
  return Status::OK();
}

Status GroupCommitLog::WriteCheckpoint(
    const std::pair<GroupId, Timestamp>* cut, std::size_t count) {
  STREAMSI_RETURN_NOT_OK(
      ConsumeFault(CheckpointFault::kBeforeCheckpointRecord));
  std::string payload;
  PutVarint32(&payload, static_cast<std::uint32_t>(count));
  for (std::size_t i = 0; i < count; ++i) {
    PutVarint32(&payload, cut[i].first);
    PutVarint64(&payload, cut[i].second);
  }
  return writer_.Append(WalRecordType::kCheckpointCut, payload,
                        /*sync=*/true);
}

Status GroupCommitLog::PruneObsoleteSegments() {
  STREAMSI_RETURN_NOT_OK(ConsumeFault(CheckpointFault::kBeforePrune));
  std::lock_guard<std::mutex> guard(segments_mutex_);
  const std::uint64_t floor = retain_floor_.load(std::memory_order_relaxed);
  Status first_error;
  std::vector<std::uint64_t> kept;
  for (std::uint64_t n : segments_) {
    if (n == current_segment_ || n >= floor) {
      kept.push_back(n);
      continue;
    }
    const Status status = env_->RemoveFile(SegmentPath(root_path_, n));
    if (!status.ok()) {
      kept.push_back(n);
      if (first_error.ok()) first_error = status;
    }
  }
  segments_ = std::move(kept);
  return first_error;
}

void GroupCommitLog::ListLiveSegments(
    std::vector<std::uint64_t>* numbers) const {
  std::lock_guard<std::mutex> guard(segments_mutex_);
  *numbers = segments_;
}

Status GroupCommitLog::TailFrom(Env* env, const std::string& path,
                                std::uint64_t offset, std::string* out) {
  out->clear();
  if (env == nullptr) env = Env::Default();
  std::string contents;
  STREAMSI_RETURN_NOT_OK(env->ReadFileToString(path, &contents));
  const std::uint64_t valid = WalReader::ValidFramePrefix(contents);
  if (offset >= valid) return Status::OK();
  out->assign(contents, offset, valid - offset);
  return Status::OK();
}

std::uint64_t GroupCommitLog::current_segment() const {
  std::lock_guard<std::mutex> guard(segments_mutex_);
  return current_segment_;
}

std::size_t GroupCommitLog::SegmentCount() const {
  std::lock_guard<std::mutex> guard(segments_mutex_);
  return segments_.size();
}

std::uint64_t GroupCommitLog::TotalSizeBytes() const {
  std::lock_guard<std::mutex> guard(segments_mutex_);
  std::uint64_t total = 0;
  for (std::uint64_t n : segments_) {
    std::uint64_t size = 0;
    if (env_->FileSize(SegmentPath(root_path_, n), &size).ok()) {
      total += size;
    }
  }
  return total;
}

Result<std::unordered_map<GroupId, Timestamp>> GroupCommitLog::Replay(
    const std::string& path, ReplayInfo* info, Env* env) {
  if (env == nullptr) env = Env::Default();
  ReplayInfo local;
  std::unordered_map<GroupId, Timestamp> result;
  std::vector<std::uint64_t> numbers;
  STREAMSI_RETURN_NOT_OK(ListSegments(env, path, &numbers));
  local.segments_present = numbers.size();
  // Newest -> oldest until a segment containing a complete checkpoint cut:
  // every record in older segments is subsumed by the cut (their commits
  // published before it was taken — Database::Checkpoint drains in-flight
  // commits between rotating and cutting). Max-merge makes the combination
  // order-insensitive, so the newer segments' records apply cleanly on top.
  for (std::size_t i = numbers.size(); i-- > 0;) {
    bool has_checkpoint = false;
    STREAMSI_RETURN_NOT_OK(ReplaySegment(env, SegmentPath(path, numbers[i]),
                                         &result, &local, &has_checkpoint,
                                         &local.records));
    ++local.segments_replayed;
    if (has_checkpoint) {
      local.from_checkpoint = true;
      break;
    }
  }
  if (info != nullptr) *info = local;
  return result;
}

}  // namespace streamsi
