#include "core/database.h"

#include <algorithm>

#include "common/logging.h"

namespace streamsi {

Database::Database(const DatabaseOptions& options) : options_(options) {}

Database::~Database() {
  // Shutdown ordering: release the background-reclaimer reference BEFORE
  // the member destructors tear the stores down. The stores' destructors
  // run their own bounded reclaim passes, and no detached thread may be
  // sweeping epoch garbage during (or after, into static destruction) the
  // teardown of the structures that produce it.
  if (reclaimer_started_) EpochManager::Global().StopBackgroundReclaimer();
  if (group_log_ != nullptr) group_log_->Close();
}

Result<std::unique_ptr<Database>> Database::Open(
    const DatabaseOptions& options) {
  auto db = std::unique_ptr<Database>(new Database(options));
  db->protocol_ = MakeProtocol(options.protocol, &db->context_);
  if (db->protocol_ == nullptr) {
    return Status::InvalidArgument("unknown protocol");
  }

  const bool durable =
      !options.base_dir.empty() &&
      options.backend_options.sync_mode != SyncMode::kNone &&
      options.backend == BackendType::kLsm;
  if (!options.base_dir.empty()) {
    STREAMSI_RETURN_NOT_OK(fsutil::CreateDirIfMissing(options.base_dir));
    db->group_log_ = std::make_unique<GroupCommitLog>(
        options.backend_options.sync_mode,
        options.backend_options.simulated_sync_micros);
    STREAMSI_RETURN_NOT_OK(
        db->group_log_->Open(options.base_dir + "/group_commits.log"));
  }

  Database* raw = db.get();
  db->txn_manager_ = std::make_unique<TransactionManager>(
      &db->context_, db->protocol_.get(),
      [raw](StateId id) { return raw->GetState(id); }, db->group_log_.get(),
      durable);
  if (options.background_epoch_reclaim) {
    EpochManager::Global().StartBackgroundReclaimer(
        std::chrono::milliseconds(options.epoch_reclaim_interval_ms));
    db->reclaimer_started_ = true;
  }
  return db;
}

std::string Database::StateDir(const std::string& name) const {
  return options_.base_dir + "/state_" + name;
}

Result<VersionedStore*> Database::CreateState(const std::string& name) {
  {
    SharedGuard guard(stores_latch_);
    if (stores_by_name_.count(name) > 0) {
      return Status::InvalidArgument("state already exists: " + name);
    }
  }

  BackendOptions backend_options = options_.backend_options;
  std::string location;
  if (options_.backend == BackendType::kLsm) {
    if (options_.base_dir.empty()) {
      return Status::InvalidArgument("LSM backend requires base_dir");
    }
    location = StateDir(name);
    backend_options.path = location;
  }
  auto backend = OpenBackend(options_.backend, backend_options);
  if (!backend.ok()) return backend.status();

  const StateId id = context_.RegisterState(name, location);
  auto store = std::make_unique<VersionedStore>(
      id, name, std::move(backend).value(), options_.store_options);

  // Re-opened persistent state: reload the committed version arrays.
  if (store->backend()->IsPersistent() &&
      store->backend()->ApproximateCount() > 0) {
    STREAMSI_RETURN_NOT_OK(store->LoadFromBackend());
  }

  VersionedStore* raw = store.get();
  {
    ExclusiveGuard guard(stores_latch_);
    if (stores_.size() != id) {
      return Status::InvalidArgument("state registration raced");
    }
    stores_.push_back(std::move(store));
    stores_by_name_[name] = id;
  }
  // Singleton group: gives single-state queries LastCTS snapshots and the
  // recovery watermark.
  singleton_groups_[id] = context_.RegisterGroup({id});
  return raw;
}

GroupId Database::CreateGroup(const std::vector<StateId>& states) {
  return context_.RegisterGroup(states);
}

VersionedStore* Database::GetState(StateId id) {
  SharedGuard guard(stores_latch_);
  if (id >= stores_.size()) return nullptr;
  return stores_[id].get();
}

VersionedStore* Database::FindState(const std::string& name) {
  SharedGuard guard(stores_latch_);
  auto it = stores_by_name_.find(name);
  if (it == stores_by_name_.end()) return nullptr;
  return stores_[it->second].get();
}

Status Database::Recover() {
  if (options_.base_dir.empty()) return Status::OK();

  auto replayed =
      GroupCommitLog::Replay(options_.base_dir + "/group_commits.log");
  if (!replayed.ok()) return replayed.status();

  Timestamp max_ts = kInitialTs;
  for (const auto& [group, cts] : replayed.value()) {
    context_.SetLastCts(group, cts);
    max_ts = std::max(max_ts, cts);
  }

  // Purge versions of unfinished group commits: a state's recovered
  // watermark is the max LastCTS over the groups containing it.
  SharedGuard guard(stores_latch_);
  for (const auto& store : stores_) {
    Timestamp watermark = kInitialTs;
    for (GroupId group : context_.GroupsOf(store->id())) {
      watermark = std::max(watermark, context_.LastCts(group));
    }
    const std::uint64_t purged = store->PurgeVersionsAfter(watermark);
    if (purged > 0) {
      STREAMSI_INFO("recovery purged " << purged << " versions of state '"
                                       << store->name() << "' beyond cts "
                                       << watermark);
    }
    max_ts = std::max(max_ts, store->MaxCommittedCts());
  }
  context_.clock().AdvanceTo(max_ts);
  return Status::OK();
}

}  // namespace streamsi
