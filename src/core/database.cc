#include "core/database.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "common/env.h"
#include "common/logging.h"
#include "core/index_key.h"
#include "replication/follower_applier.h"
#include "replication/log_shipper.h"

namespace streamsi {

Database::Database(const DatabaseOptions& options)
    : options_(options),
      env_(options.env != nullptr ? options.env : Env::Default()) {}

Database::~Database() {
  // Shutdown ordering: replication first — the shipper reads the group log
  // and the applier installs into the stores, so both must stop before
  // anything they touch goes away (the shipper's Stop also drains one last
  // round, so a cleanly closed primary leaves its follower current). Then
  // the background checkpointer (it walks the stores and writes the group
  // log), then the epoch reclaimer reference BEFORE the member destructors
  // tear the stores down. The stores' destructors run their own bounded
  // reclaim passes, and no detached thread may be sweeping epoch garbage
  // during (or after, into static destruction) the teardown of the
  // structures that produce it.
  if (applier_ != nullptr) applier_->Stop();
  {
    std::lock_guard<std::mutex> guard(checkpointer_mutex_);
    stop_checkpointer_ = true;
  }
  checkpointer_cv_.notify_all();
  if (checkpointer_.joinable()) checkpointer_.join();
  if (reclaimer_started_) EpochManager::Global().StopBackgroundReclaimer();
  if (group_log_ != nullptr) group_log_->Close();
  if (catalog_ != nullptr) catalog_->Close();
  // After Close flushed the last buffered records: the shipper's Stop runs
  // a final drain round over the (now complete) on-disk chain.
  if (shipper_ != nullptr) shipper_->Stop();
}

Result<std::unique_ptr<Database>> Database::Open(
    const DatabaseOptions& options) {
  auto db = std::unique_ptr<Database>(new Database(options));
  db->protocol_ = MakeProtocol(options.protocol, &db->context_);
  if (db->protocol_ == nullptr) {
    return Status::InvalidArgument("unknown protocol");
  }

  const ReplicationRole role = options.replication.role;
  db->follower_mode_ = role == ReplicationRole::kFollower;
  if (db->follower_mode_ && options.base_dir.empty()) {
    return Status::InvalidArgument(
        "replication follower requires base_dir (the shipped chain and the "
        "replayed state tables live there)");
  }
  if (role == ReplicationRole::kPrimary &&
      options.replication.transport == nullptr) {
    return Status::InvalidArgument("replication primary requires a transport");
  }

  const bool durable =
      !db->follower_mode_ && !options.base_dir.empty() &&
      options.backend_options.sync_mode != SyncMode::kNone &&
      options.backend == BackendType::kLsm;
  if (role == ReplicationRole::kPrimary && !durable) {
    // An acked-but-volatile commit shipped to a follower would survive the
    // primary while officially never having been durable — refuse the
    // ambiguity up front.
    return Status::InvalidArgument(
        "replication primary requires a durable database "
        "(base_dir + LSM backend + a sync mode)");
  }
  if (!options.base_dir.empty()) {
    STREAMSI_RETURN_NOT_OK(db->env_->CreateDirIfMissing(options.base_dir));
    // A follower opens NO writer over the shipped files: the chain is the
    // transport's to append and the applier's to read.
    if (!db->follower_mode_) {
      db->group_log_ = std::make_unique<GroupCommitLog>(
          options.backend_options.sync_mode,
          options.backend_options.simulated_sync_micros, db->env_);
      STREAMSI_RETURN_NOT_OK(db->group_log_->Open(db->GroupLogPath()));
    }
  }

  Database* raw = db.get();
  db->txn_manager_ = std::make_unique<TransactionManager>(
      &db->context_, db->protocol_.get(),
      [raw](StateId id) { return raw->GetState(id); }, db->group_log_.get(),
      durable);
  // Health hooks: commits consult the admission gate before doing any work
  // (so a degraded database fails them fast, without IO or conflict
  // accounting) and report their IO failures for classification. Reads and
  // scans bypass the gate entirely — a read-only degraded database keeps
  // serving them from the in-memory MVCC state.
  db->txn_manager_->SetHealthHooks(
      [raw] { return raw->AdmitCommit(); },
      [raw](const Status& status) { raw->NoteIoFailure(status); });
  if (role == ReplicationRole::kPrimary) {
    db->txn_manager_->SetReplicationEnabled(true);
  }
  if (options.background_epoch_reclaim) {
    EpochManager::Global().StartBackgroundReclaimer(
        std::chrono::milliseconds(options.epoch_reclaim_interval_ms));
    db->reclaimer_started_ = true;
  }

  // Durable state catalog: rediscover the schema of a previous life and
  // recover before returning — the application does not have to re-issue
  // its CreateState/CreateGroup calls (and a first-time directory simply
  // has an empty catalog).
  if (!options.base_dir.empty() && !db->follower_mode_) {
    db->catalog_ = std::make_unique<StateCatalog>(
        options.backend_options.sync_mode,
        options.backend_options.simulated_sync_micros, db->env_);
    const bool had_catalog = db->env_->FileExists(db->CatalogPath());
    if (had_catalog) STREAMSI_RETURN_NOT_OK(db->ApplyCatalogTail());
    STREAMSI_RETURN_NOT_OK(db->catalog_->Open(db->CatalogPath()));
    if (had_catalog) STREAMSI_RETURN_NOT_OK(db->RecoverInternal());
  }

  if (db->follower_mode_) {
    // A follower's state is rebuilt from the shipped chain ALONE, applied
    // in commit order — never from its backends, whose contents interleave
    // arbitrarily with the stream and would install versions out of order
    // under concurrent readers. The chain is complete from its birth (an
    // unpromoted follower refuses checkpoints, so it never prunes), which
    // also makes a follower restart a plain re-apply.
    STREAMSI_RETURN_NOT_OK(db->ApplyCatalogTail());
    {
      ExclusiveGuard guard(db->stores_latch_);
      db->recovered_ = true;  // reads serve the replayed cut from round one
    }
    FollowerApplier::Hooks hooks;
    hooks.refresh_catalog = [raw] { return raw->ApplyCatalogTail(); };
    hooks.resolve = [raw](StateId id) { return raw->GetState(id); };
    hooks.on_corruption = [raw](const Status& status) {
      raw->TransitionTo(DatabaseHealth::kFailed, status);
    };
    FollowerApplier::Options apply_options;
    apply_options.interval_ms = options.replication.apply_interval_ms;
    apply_options.verify_crc = options.replication.verify_shipped_crc;
    db->applier_ = std::make_unique<FollowerApplier>(
        db->env_, db->GroupLogPath(),
        options.base_dir + "/" + kPrimaryWatermarkFile, &db->context_,
        std::move(hooks), apply_options);
    if (!options.replication.manual_pump) db->applier_->Start();
  } else if (role == ReplicationRole::kPrimary) {
    LogShipper::Options ship_options;
    ship_options.interval_ms = options.replication.ship_interval_ms;
    ship_options.retry_limit = options.replication.ship_retry_limit;
    ship_options.retry_backoff_ms = options.replication.ship_retry_backoff_ms;
    // Constructed BEFORE the checkpointer can run: the shipper pins the
    // log's retain floor, so no checkpoint ever prunes an unshipped
    // segment.
    db->shipper_ = std::make_unique<LogShipper>(
        db->env_, db->group_log_.get(), db->GroupLogPath(), db->CatalogPath(),
        options.replication.transport, &db->context_, ship_options);
    if (!options.replication.manual_pump) db->shipper_->Start();
  }

  if (options.checkpoint_interval_ms > 0 && db->group_log_ != nullptr) {
    db->checkpointer_ = std::thread(&Database::CheckpointLoop, raw);
  }
  return db;
}

std::string Database::StateDir(const std::string& name) const {
  return options_.base_dir + "/state_" + name;
}

Status Database::ApplyCatalogTail() {
  if (!env_->FileExists(CatalogPath())) return Status::OK();
  std::vector<StateCatalog::Declaration> declarations;
  STREAMSI_RETURN_NOT_OK(
      StateCatalog::Replay(CatalogPath(), &declarations, env_));
  // Only the not-yet-applied suffix: on a follower this runs every apply
  // round against a file that keeps growing as catalog chunks ship in.
  for (std::size_t i = catalog_applied_; i < declarations.size(); ++i) {
    const auto& decl = declarations[i];
    if (decl.kind == StateCatalog::Declaration::Kind::kState) {
      auto store = CreateStateInternal(decl.state.name, &decl.state);
      if (!store.ok()) return store.status();
      if ((*store)->id() != decl.state.id) {
        return Status::Corruption("catalog state id mismatch: " +
                                  decl.state.name);
      }
    } else if (decl.kind == StateCatalog::Declaration::Kind::kIndex) {
      // The index's state and its {base, index} group replayed just above
      // (catalog order). The extractor cannot be persisted, so the binding
      // comes back PENDING: write commits on the base refuse until the
      // application re-binds via CreateIndex.
      {
        ExclusiveGuard guard(stores_latch_);
        index_base_[decl.index.index] = decl.index.base;
      }
      txn_manager_->RegisterIndex(decl.index.base, decl.index.index,
                                  /*extractor=*/nullptr);
    } else {
      // Replay reproduces RegisterGroup order, so the assigned id must
      // match the recorded one (both kinds of group: the singleton group a
      // CreateState declared alongside its state, and explicit topologies).
      const GroupId id = context_.RegisterGroup(decl.group.states);
      if (id != decl.group.id) {
        return Status::Corruption("catalog group id mismatch");
      }
      if (decl.group.singleton && !decl.group.states.empty()) {
        ExclusiveGuard guard(stores_latch_);
        singleton_groups_[decl.group.states[0]] = id;
      }
    }
  }
  catalog_applied_ = declarations.size();
  return Status::OK();
}

Result<VersionedStore*> Database::CreateState(const std::string& name) {
  {
    // Idempotent re-declaration (catalog-reopened state or earlier call).
    SharedGuard guard(stores_latch_);
    auto it = stores_by_name_.find(name);
    if (it != stores_by_name_.end()) return stores_[it->second].get();
  }
  if (IsUnpromotedFollower()) {
    // The schema is replicated: a locally declared state would fork the
    // id sequence away from the primary's catalog.
    return Status::Unavailable(
        "follower schema is replicated from the primary; declare the state "
        "there (or Promote() first)");
  }
  return CreateStateInternal(name, nullptr);
}

Result<VersionedStore*> Database::CreateStateInternal(
    const std::string& name, const StateCatalog::StateRecord* declared) {
  const BackendType backend_type =
      declared != nullptr ? declared->backend : options_.backend;
  BackendOptions backend_options = options_.backend_options;
  std::string location;
  if (backend_type == BackendType::kLsm) {
    if (options_.base_dir.empty()) {
      return Status::InvalidArgument("LSM backend requires base_dir");
    }
    location = declared != nullptr ? declared->location : StateDir(name);
    // A follower replays the PRIMARY's catalog records, whose locations
    // are paths on the primary; its stores live under OUR base_dir.
    if (follower_mode_) location = StateDir(name);
    backend_options.path = location;
  }
  backend_options.env = env_;
  // Background flush/compaction failures (after the worker's own bounded
  // retries) degrade the whole database: a store that can no longer make
  // its memtables durable must not keep acking commits.
  Database* self = this;
  backend_options.on_background_failure = [self](const Status& status) {
    self->NoteBackgroundFailure(status);
  };
  auto backend = OpenBackend(backend_type, backend_options);
  if (!backend.ok()) return backend.status();

  ExclusiveGuard guard(stores_latch_);
  if (auto it = stores_by_name_.find(name); it != stores_by_name_.end()) {
    // Lost a creation race for the same name: the winner's store is the
    // state. (The transiently opened backend above is dropped unused.)
    return stores_[it->second].get();
  }
  // Ids are assigned under the exclusive latch (Database is the only
  // registrar of its context), so stores_ and the context's registries
  // advance in lockstep and the upcoming ids are known in advance.
  const StateId id = static_cast<StateId>(context_.StateCount());
  if (stores_.size() != id) {
    return Status::Corruption("state registry out of sync with store table");
  }

  auto store = std::make_unique<VersionedStore>(
      id, name, std::move(backend).value(), options_.store_options);
  VersionedStore* raw = store.get();

  const bool has_data = store->backend()->IsPersistent() &&
                        store->backend()->ApproximateCount() > 0;
  if (declared == nullptr && has_data) {
    // Pre-catalog directory reopened by a re-declaring application (the
    // upgrade path): load inline, as every life before the catalog did.
    // Runs before the catalog append below so that EVERY fallible step
    // precedes it — a failure here leaves no trace anywhere.
    STREAMSI_RETURN_NOT_OK(store->LoadFromBackend());
  }

  // Catalog BEFORE registration: a failed append leaves nothing registered
  // — the caller sees the error, a retry starts from scratch, and the
  // on-disk catalog stays a strict prefix of the in-memory schema (the
  // writer's sticky IO error fails every later declaration loudly too).
  if (declared == nullptr && catalog_ != nullptr) {
    const GroupId gid = static_cast<GroupId>(context_.GroupCount());
    STREAMSI_RETURN_NOT_OK(catalog_->AppendState(
        StateCatalog::StateRecord{id, backend_type, name, location}));
    STREAMSI_RETURN_NOT_OK(catalog_->AppendGroup(
        StateCatalog::GroupRecord{gid, /*singleton=*/true, {id}}));
  }

  if (context_.RegisterState(name, location) != id) {
    return Status::Corruption("state registry out of sync with store table");
  }
  if (declared != nullptr && has_data && !follower_mode_) {
    // Catalog reopen: defer the (possibly large) version-array load to the
    // parallel recovery fan-out. Never on a follower: its state is rebuilt
    // from the shipped chain in commit order, and backend contents would
    // install versions out of order under concurrent readers.
    pending_loads_.push_back(id);
  }
  stores_.push_back(std::move(store));
  stores_by_name_[name] = id;

  if (declared == nullptr) {
    // Singleton group: gives single-state queries LastCTS snapshots and the
    // recovery watermark. Registered under the same latch hold as the
    // catalog append above, so replay reproduces the id sequence.
    singleton_groups_[id] = context_.RegisterGroup({id});
    // Inline-loaded after recovery already ran (partially-upgraded
    // directory): the loaded versions have not been purged against any
    // watermark — the app's Recover() call must still do that.
    if (has_data && recovered_) post_recovery_loads_.push_back(id);
  }
  return raw;
}

GroupId Database::CreateGroup(const std::vector<StateId>& states) {
  if (IsUnpromotedFollower()) {
    STREAMSI_WARN("follower topology is replicated from the primary; "
                  "CreateGroup refused");
    return kInvalidGroupId;
  }
  ExclusiveGuard guard(stores_latch_);
  // Idempotent re-declaration: an identical explicit topology (same state
  // set) is the same group. Singleton groups are exempt — an explicit
  // one-state group remains distinct from the implicit per-state one.
  std::unordered_set<GroupId> singleton_ids;
  singleton_ids.reserve(singleton_groups_.size());
  for (const auto& [state, gid] : singleton_groups_) {
    (void)state;
    singleton_ids.insert(gid);
  }
  // Same state SET, not sequence: apps routinely rebuild the vector in a
  // different order across restarts.
  std::vector<StateId> wanted = states;
  std::sort(wanted.begin(), wanted.end());
  const std::size_t group_count = context_.GroupCount();
  for (GroupId gid = 0; gid < group_count; ++gid) {
    if (singleton_ids.count(gid) > 0) continue;
    const GroupInfo* info = context_.GetGroup(gid);
    if (info == nullptr) continue;
    std::vector<StateId> existing = info->states;
    std::sort(existing.begin(), existing.end());
    if (existing == wanted) return gid;
  }
  // Catalog BEFORE registration (same discipline as CreateStateInternal):
  // a group the catalog never learned about would make recovery treat its
  // durable commit records as unfinished and purge them. A failed append
  // registers nothing and reports kInvalidGroupId.
  const GroupId id = static_cast<GroupId>(group_count);
  if (catalog_ != nullptr) {
    const Status status = catalog_->AppendGroup(
        StateCatalog::GroupRecord{id, /*singleton=*/false, states});
    if (!status.ok()) {
      STREAMSI_WARN("catalog group append failed: " << status.ToString());
      return kInvalidGroupId;
    }
  }
  if (context_.RegisterGroup(states) != id) {
    STREAMSI_WARN("group registry out of sync with catalog");
  }
  return id;
}

Result<VersionedStore*> Database::CreateIndex(
    const std::string& base_name, const std::string& index_name,
    TransactionManager::IndexKeyExtractor extractor) {
  if (extractor == nullptr) {
    return Status::InvalidArgument(
        "CreateIndex requires an extractor (re-binding after reopen passes "
        "the same function the index was created with)");
  }
  if (options_.protocol != ProtocolType::kMvcc) {
    // Commit-time maintenance writes the index state directly through the
    // transaction's write set, bypassing the baseline protocols' lock
    // acquisition — and index probes are range scans, which they refuse
    // anyway (see ConcurrencyProtocol::ScanRange).
    return Status::NotSupported(
        "secondary indexes require the MVCC protocol");
  }
  if (IsUnpromotedFollower()) {
    return Status::Unavailable(
        "follower schema is replicated from the primary; create the index "
        "there (or Promote() first)");
  }
  VersionedStore* base = FindState(base_name);
  if (base == nullptr) {
    return Status::InvalidArgument("unknown base state: " + base_name);
  }

  VersionedStore* existing = nullptr;
  VersionedStore* orphan = nullptr;
  {
    // Re-bind path (catalog reopen, or a repeated declaration): the index
    // state already exists. Verify it is bound to THIS base, then just
    // refresh the extractor — the index contents recovered with the rest of
    // the database, so there is nothing to backfill.
    SharedGuard guard(stores_latch_);
    auto it = stores_by_name_.find(index_name);
    if (it != stores_by_name_.end()) {
      auto bound = index_base_.find(it->second);
      if (bound != index_base_.end()) {
        if (bound->second != base->id()) {
          return Status::InvalidArgument(
              "state '" + index_name +
              "' is an index over a different base than '" + base_name + "'");
        }
        existing = stores_[it->second].get();
      } else if (stores_[it->second]->KeyCount() == 0) {
        // Adoption path: the state exists, is bound to nothing and holds
        // nothing. Either a crash inside a previous CreateIndex landed
        // after the state (and possibly group) declarations but before the
        // index-binding append — the reopened catalog then shows exactly
        // this — or the application pre-declared an empty state under the
        // index's name. Both are repaired the same way: fall through to
        // the fresh-index tail below, which (idempotently) declares the
        // group, appends the missing binding and backfills.
        orphan = stores_[it->second].get();
      } else {
        // A NON-empty unbound state is application data: backfilling index
        // entries into it would corrupt it, so refuse — and since commits
        // on the base are not deriving maintenance for it, it can never
        // silently pass as an index either.
        return Status::InvalidArgument(
            "state '" + index_name + "' holds data and is not an index over '" +
            base_name + "'; refusing to adopt it as one");
      }
    }
  }
  if (existing != nullptr) {
    txn_manager_->RegisterIndex(base->id(), existing->id(),
                                std::move(extractor));
    return existing;
  }

  // Fresh (or adopted-orphan) index. The state + its singleton group + the
  // {base, index} topology group + the binding append to the catalog in
  // that order, so replay reconstructs the same ids and re-registers the
  // (pending) binding before any recovered commit could touch the base.
  // Each step is idempotent against a catalog prefix a crashed CreateIndex
  // left behind: the state is adopted above, CreateGroup returns an
  // already-declared identical topology without re-appending, and only the
  // genuinely missing records are written.
  VersionedStore* store = orphan;
  if (store == nullptr) {
    auto created = CreateStateInternal(index_name, nullptr);
    if (!created.ok()) return created.status();
    store = *created;
  }
  const GroupId group = CreateGroup({base->id(), store->id()});
  if (group == kInvalidGroupId) {
    return Status::IoError("index group declaration failed (catalog append)");
  }
  if (catalog_ != nullptr) {
    STREAMSI_RETURN_NOT_OK(catalog_->AppendIndex(
        StateCatalog::IndexRecord{store->id(), base->id()}));
  }
  {
    ExclusiveGuard guard(stores_latch_);
    index_base_[store->id()] = base->id();
  }
  // Keep a callable copy: the registered binding owns the moved-in one.
  TransactionManager::IndexKeyExtractor backfill_extract = extractor;
  txn_manager_->RegisterIndex(base->id(), store->id(), std::move(extractor));

  // Backfill from the base's committed snapshot. CreateIndex runs before
  // concurrent writers touch the base (schema declaration time), so the
  // snapshot is the complete base content and BulkLoad's
  // visible-to-everyone versions (cts = kInitialTs) are exactly right.
  std::string composite;
  Status backfill = Status::OK();
  STREAMSI_RETURN_NOT_OK(base->ScanCommitted(
      kInfinityTs - 1, [&](std::string_view key, std::string_view value) {
        const std::string secondary = backfill_extract(key, value);
        if (!ValidIndexSecondary(secondary)) {
          // Same contract check as commit-time maintenance: a 0x00 byte in
          // the secondary would corrupt the composite encoding silently.
          backfill = Status::InvalidArgument(
              "index extractor for state '" + base_name +
              "' emitted a 0x00 byte in the secondary key of base key '" +
              std::string(key) + "' (see core/index_key.h)");
          return false;
        }
        composite.clear();
        AppendIndexKey(&composite, secondary, key);
        backfill = store->BulkLoad(composite, key);
        return backfill.ok();
      }));
  STREAMSI_RETURN_NOT_OK(backfill);
  return store;
}

VersionedStore* Database::GetState(StateId id) {
  SharedGuard guard(stores_latch_);
  if (id >= stores_.size()) return nullptr;
  return stores_[id].get();
}

VersionedStore* Database::FindState(const std::string& name) {
  SharedGuard guard(stores_latch_);
  auto it = stores_by_name_.find(name);
  if (it == stores_by_name_.end()) return nullptr;
  return stores_[it->second].get();
}

Status Database::Recover() {
  std::vector<VersionedStore*> late_loaded;
  {
    ExclusiveGuard guard(stores_latch_);
    if (recovered_) {
      // Open already ran recovery. Only states inline-loaded SINCE then
      // (pre-catalog upgrade of a partially-cataloged directory) still
      // need their purge + clock fast-forward; everything else is done.
      for (StateId id : post_recovery_loads_) {
        if (id < stores_.size()) late_loaded.push_back(stores_[id].get());
      }
      post_recovery_loads_.clear();
      if (late_loaded.empty()) return Status::OK();
    }
  }
  if (!late_loaded.empty()) {
    // These states' groups did not exist when Open's recovery replayed the
    // log, so SetLastCts dropped their entries. Re-replay and max-merge:
    // never roll back a LastCTS this life already advanced (replayed
    // values are from the previous life, below everything the recovered
    // clock hands out).
    GroupCommitLog::ReplayInfo replay_info;
    if (group_log_ != nullptr) {
      auto replayed =
          GroupCommitLog::Replay(GroupLogPath(), &replay_info, env_);
      if (!replayed.ok()) return replayed.status();
      for (const auto& [group, cts] : replayed.value()) {
        if (cts > context_.LastCts(group)) context_.SetLastCts(group, cts);
      }
    }
    const auto is_committed = [&replay_info](Timestamp cts) {
      return replay_info.committed_cts.count(cts) != 0;
    };
    Timestamp max_ts = kInitialTs;
    for (VersionedStore* store : late_loaded) {
      Timestamp covered = kInitialTs;
      for (GroupId group : context_.GroupsOf(store->id())) {
        auto it = replay_info.cut_watermarks.find(group);
        if (it != replay_info.cut_watermarks.end()) {
          covered = std::max(covered, it->second);
        }
      }
      const std::uint64_t purged =
          store->PurgeUncommittedVersions(covered, is_committed);
      if (purged > 0) {
        STREAMSI_INFO("recovery purged " << purged << " versions of state '"
                                         << store->name()
                                         << "' beyond the commit-record set");
      }
      max_ts = std::max(max_ts, store->MaxCommittedCts());
    }
    context_.clock().AdvanceTo(max_ts);
    return Status::OK();
  }
  return RecoverInternal();
}

Status Database::RecoverInternal() {
  if (options_.base_dir.empty()) {
    ExclusiveGuard guard(stores_latch_);
    recovered_ = true;
    return Status::OK();
  }

  GroupCommitLog::ReplayInfo replay_info;
  auto replayed = GroupCommitLog::Replay(GroupLogPath(), &replay_info, env_);
  if (!replayed.ok()) return replayed.status();
  if (replay_info.from_checkpoint) {
    STREAMSI_INFO("recovery starting from checkpoint ("
                  << replay_info.segments_replayed << " of "
                  << replay_info.segments_present << " segments, "
                  << replay_info.records << " records)");
  }

  Timestamp max_ts = kInitialTs;
  for (const auto& [group, cts] : replayed.value()) {
    context_.SetLastCts(group, cts);
    max_ts = std::max(max_ts, cts);
  }

  // Work list: snapshot the stores (and consume the deferred catalog
  // loads) under the latch; the heavy lifting runs outside it.
  std::vector<VersionedStore*> stores;
  std::vector<bool> needs_load;
  {
    ExclusiveGuard guard(stores_latch_);
    stores.reserve(stores_.size());
    for (const auto& store : stores_) stores.push_back(store.get());
    needs_load.assign(stores.size(), false);
    for (StateId id : pending_loads_) {
      if (id < needs_load.size()) needs_load[id] = true;
    }
    pending_loads_.clear();
  }

  // Parallel recovery: LoadFromBackend + purge are per-store work with no
  // shared mutable state (the epoch manager and context reads are
  // thread-safe), so fan out across a small pool. Purge rule: a version
  // survives iff its cts is covered by the checkpoint cut of one of the
  // store's groups OR appears in the replayed commit-record set. The exact
  // set (not just the per-group max) matters: a commit aborted at the
  // durability point can hold a cts below a later commit that did log, and
  // its partially-applied versions resurrecting in SOME stores would break
  // group atomicity.
  const auto is_committed = [&replay_info](Timestamp cts) {
    return replay_info.committed_cts.count(cts) != 0;
  };
  std::atomic<std::size_t> next_index{0};
  std::atomic<Timestamp> recovered_max{max_ts};
  std::mutex error_mutex;
  Status first_error;
  auto worker = [&] {
    std::size_t i;
    while ((i = next_index.fetch_add(1, std::memory_order_relaxed)) <
           stores.size()) {
      VersionedStore* store = stores[i];
      if (needs_load[i]) {
        const Status status = store->LoadFromBackend();
        if (!status.ok()) {
          std::lock_guard<std::mutex> guard(error_mutex);
          if (first_error.ok()) first_error = status;
          continue;
        }
      }
      Timestamp covered = kInitialTs;
      for (GroupId group : context_.GroupsOf(store->id())) {
        auto it = replay_info.cut_watermarks.find(group);
        if (it != replay_info.cut_watermarks.end()) {
          covered = std::max(covered, it->second);
        }
      }
      const std::uint64_t purged =
          store->PurgeUncommittedVersions(covered, is_committed);
      if (purged > 0) {
        STREAMSI_INFO("recovery purged " << purged << " versions of state '"
                                         << store->name()
                                         << "' beyond the commit-record set");
      }
      const Timestamp store_max = store->MaxCommittedCts();
      Timestamp cur = recovered_max.load(std::memory_order_relaxed);
      while (store_max > cur && !recovered_max.compare_exchange_weak(
                                    cur, store_max,
                                    std::memory_order_relaxed)) {
      }
    }
  };
  const unsigned hw = options_.recovery_threads != 0
                          ? options_.recovery_threads
                          : std::max(1u, std::thread::hardware_concurrency());
  const std::size_t worker_count =
      std::min<std::size_t>(stores.size(), static_cast<std::size_t>(hw));
  if (worker_count <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(worker_count);
    for (std::size_t i = 0; i < worker_count; ++i) threads.emplace_back(worker);
    for (auto& thread : threads) thread.join();
  }
  if (!first_error.ok()) return first_error;

  context_.clock().AdvanceTo(recovered_max.load(std::memory_order_relaxed));
  {
    ExclusiveGuard guard(stores_latch_);
    recovered_ = true;
  }
  return Status::OK();
}

HealthReport Database::Health() const {
  HealthReport report;
  report.state = health_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> guard(health_mutex_);
    report.first_error = first_health_error_;
  }
  report.commit_io_failures =
      commit_io_failures_.load(std::memory_order_relaxed);
  report.degraded_commit_rejections =
      degraded_commit_rejections_.load(std::memory_order_relaxed);
  // Replication stats BEFORE taking the stores latch: the applier thread
  // holds its own mutex while registering shipped states (exclusive latch),
  // so touching it while we hold the latch shared would deadlock.
  report.replication_configured =
      options_.replication.role != ReplicationRole::kNone;
  report.promoted = promoted_.load(std::memory_order_acquire);
  report.follower = follower_mode_ && !report.promoted;
  if (shipper_ != nullptr) report.replication = shipper_->Stats();
  if (applier_ != nullptr) report.replication = applier_->Stats();
  SharedGuard guard(stores_latch_);
  report.stores.reserve(stores_.size());
  for (const auto& store : stores_) {
    HealthReport::StoreHealth entry;
    entry.name = store->name();
    entry.backend_status = store->backend()->HealthStatus();
    entry.flush_retries = store->backend()->FlushRetries();
    report.stores.push_back(std::move(entry));
  }
  return report;
}

void Database::TransitionTo(DatabaseHealth target, const Status& cause) {
  DatabaseHealth current = health_.load(std::memory_order_relaxed);
  while (static_cast<int>(target) > static_cast<int>(current)) {
    if (health_.compare_exchange_weak(current, target,
                                      std::memory_order_relaxed)) {
      {
        std::lock_guard<std::mutex> guard(health_mutex_);
        if (first_health_error_.ok()) first_health_error_ = cause;
      }
      STREAMSI_WARN(
          "database health degraded to "
          << (target == DatabaseHealth::kFailed ? "FAILED" : "READ-ONLY")
          << ": " << cause.ToString());
      return;
    }
  }
}

void Database::NoteIoFailure(const Status& status) {
  if (status.ok()) return;
  commit_io_failures_.fetch_add(1, std::memory_order_relaxed);
  if (status.IsCorruption()) {
    TransitionTo(DatabaseHealth::kFailed, status);
    return;
  }
  if (status.IsNoSpace()) {
    TransitionTo(DatabaseHealth::kDegradedReadOnly, status);
    return;
  }
  // A one-shot IO error (e.g. an injected fault that clears) does not
  // degrade — the system is expected to recover once the cause passes. But
  // if the failure sticky-poisoned the group log's writer, every future
  // commit is doomed: degrade now so they fail fast as Unavailable instead
  // of trickling IoErrors.
  if (group_log_ != nullptr) {
    const Status writer = group_log_->WriterHealth();
    if (!writer.ok()) {
      TransitionTo(DatabaseHealth::kDegradedReadOnly, writer);
    }
  }
}

void Database::NoteBackgroundFailure(const Status& status) {
  if (status.ok()) return;
  commit_io_failures_.fetch_add(1, std::memory_order_relaxed);
  TransitionTo(status.IsCorruption() ? DatabaseHealth::kFailed
                                     : DatabaseHealth::kDegradedReadOnly,
               status);
}

Status Database::AdmitCommit() {
  if (IsUnpromotedFollower()) {
    degraded_commit_rejections_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable(
        "follower is read-only; call Promote() to accept writes");
  }
  if (health_.load(std::memory_order_relaxed) == DatabaseHealth::kHealthy) {
    return Status::OK();
  }
  degraded_commit_rejections_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> guard(health_mutex_);
  return Status::Unavailable("database is read-only (degraded): " +
                             first_health_error_.ToString());
}

Status Database::Checkpoint() {
  if (IsUnpromotedFollower()) {
    // BEFORE the volatile short-circuit (a follower has no log writer): a
    // follower checkpoint would prune the shipped chain — the only place
    // its state can be rebuilt from — and must be refused loudly, not
    // silently "succeed".
    return Status::Unavailable(
        "follower is read-only; checkpoints run on the primary");
  }
  if (group_log_ == nullptr) return Status::OK();  // volatile: nothing to cut
  if (health_.load(std::memory_order_relaxed) != DatabaseHealth::kHealthy) {
    // A degraded database cannot make progress durable — and pruning
    // segments while storage is failing risks deleting the only good copy.
    return Status::Unavailable("database degraded; checkpoint refused");
  }
  const Status status = DoCheckpoint();
  if (!status.ok() && !status.IsBusy()) {
    // NoSpace/corruption during a checkpoint degrades like any other IO
    // failure; a one-shot injected error stays a counted transient (the
    // failure-injection tests pin that commits keep flowing after it).
    NoteIoFailure(status);
  }
  return status;
}

Status Database::DoCheckpoint() {
  {
    // Never checkpoint a database that has not recovered: the LastCTS cut
    // would be empty/stale, yet pruning would delete the very segments
    // recovery still needs — on a pre-catalog directory (the app declares
    // states and THEN calls Recover()) that silently purges every prior
    // life's commits. The background loop simply retries next tick.
    SharedGuard stores_guard(stores_latch_);
    if (!recovered_) {
      return Status::Busy("database not recovered yet; checkpoint skipped");
    }
  }
  // Serialize checkpoints (manual calls vs the background thread); commits
  // keep flowing throughout.
  std::lock_guard<std::mutex> guard(checkpoint_mutex_);

  // 1. Backends durable: every sealed/active memtable flushed, so each
  //    store's own recovery work is also reset to "since this checkpoint".
  {
    std::vector<VersionedStore*> stores;
    {
      SharedGuard stores_guard(stores_latch_);
      stores.reserve(stores_.size());
      for (const auto& store : stores_) stores.push_back(store.get());
    }
    for (VersionedStore* store : stores) {
      STREAMSI_RETURN_NOT_OK(store->backend()->Flush());
    }
  }

  // 2. Fresh segment: every commit record from here on lands after the
  //    upcoming cut.
  STREAMSI_RETURN_NOT_OK(group_log_->RotateSegment());

  // 3. Drain the publication gate: a commit registers in flight BEFORE its
  //    durable record, so every commit whose record could live in the old
  //    segments has, after this, either published (its LastCTS advance is
  //    visible to the cut) or purged its versions. Deleting the old chain
  //    can therefore never lose an acked commit.
  context_.DrainInflightCommits();

  // 4. One publication-seqlock-consistent cut of every group's LastCTS.
  std::vector<std::pair<GroupId, Timestamp>> cut;
  context_.SnapshotLastCts(&cut);

  if (options_.test_hooks.checkpoint_prune_before_cut) {
    // NEGATIVE CONTROL (tests only): prune the old chain BEFORE the cut is
    // durable. A power cut between here and the checkpoint record leaves no
    // durable trace of the pruned segments' commits — exactly the lost-ack
    // bug the ordering below prevents, and what the crash-torture harness
    // must be able to detect.
    STREAMSI_RETURN_NOT_OK(group_log_->PruneObsoleteSegments());
  }

  // 5. Durable checkpoint record. Any failure up to here (fault-injection
  //    tested) leaves the previous chain authoritative: nothing has been
  //    deleted, and replay max-merges the rotated segment with the chain.
  STREAMSI_RETURN_NOT_OK(group_log_->WriteCheckpoint(cut.data(), cut.size()));

  // 6. The old chain is subsumed by the cut: truncate.
  STREAMSI_RETURN_NOT_OK(group_log_->PruneObsoleteSegments());
  checkpoints_completed_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status Database::Promote() {
  if (!follower_mode_) {
    return Status::InvalidArgument(
        "Promote() is only valid on a replication follower");
  }
  if (promoted_.load(std::memory_order_acquire)) return Status::OK();
  // 1. Stop continuous apply, then drain to the end of the shipped stream:
  //    an acked commit on the (dead) primary was synced before its
  //    committer returned, so its record is inside the chain's valid prefix
  //    — which the caller drains over (LogShipper::DrainFiles) before
  //    promoting. Applying it here is what makes promotion lose nothing.
  if (applier_ != nullptr) {
    applier_->Stop();
    STREAMSI_RETURN_NOT_OK(applier_->DrainFully());
  }
  if (health_.load(std::memory_order_relaxed) == DatabaseHealth::kFailed) {
    std::lock_guard<std::mutex> guard(health_mutex_);
    return Status::Unavailable("follower integrity in doubt; promotion "
                               "refused: " +
                               first_health_error_.ToString());
  }
  // 2. Promotion IS recovery: the standard parallel recovery replays the
  //    shipped chain (equal to the applied state now that the drain caught
  //    up), purges any version beyond the exact committed-record set and
  //    fast-forwards the clock — the same machinery a crashed primary
  //    restarts through, torture-tested in both roles.
  STREAMSI_RETURN_NOT_OK(RecoverInternal());
  // 3. Take over the chain as OUR durable log. Open() retires a torn
  //    newest segment in place, so new commit records never land behind
  //    garbage bytes the dead primary left mid-frame.
  auto log = std::make_unique<GroupCommitLog>(
      options_.backend_options.sync_mode,
      options_.backend_options.simulated_sync_micros, env_);
  STREAMSI_RETURN_NOT_OK(log->Open(GroupLogPath()));
  auto catalog = std::make_unique<StateCatalog>(
      options_.backend_options.sync_mode,
      options_.backend_options.simulated_sync_micros, env_);
  STREAMSI_RETURN_NOT_OK(catalog->Open(CatalogPath()));
  group_log_ = std::move(log);
  catalog_ = std::move(catalog);
  const bool durable =
      options_.backend_options.sync_mode != SyncMode::kNone &&
      options_.backend == BackendType::kLsm;
  // Quiescent by construction: an unpromoted follower admits no write
  // commit, so no commit is in flight while the log is swapped in.
  txn_manager_->SetGroupLog(group_log_.get(), durable);
  // Keep writing data-carrying records: a fresh follower can attach to the
  // promoted node's chain.
  txn_manager_->SetReplicationEnabled(true);
  promoted_.store(true, std::memory_order_release);
  if (options_.checkpoint_interval_ms > 0 && !checkpointer_.joinable()) {
    checkpointer_ = std::thread(&Database::CheckpointLoop, this);
  }
  return Status::OK();
}

Status Database::ShipNow() {
  if (shipper_ == nullptr) {
    return Status::InvalidArgument("not a replication primary");
  }
  return shipper_->ShipOnce();
}

Status Database::ApplyShippedNow() {
  if (applier_ == nullptr) {
    return Status::InvalidArgument("not a replication follower");
  }
  return applier_->ApplyOnce();
}

void Database::CheckpointLoop() {
  std::unique_lock<std::mutex> lock(checkpointer_mutex_);
  while (!stop_checkpointer_) {
    if (checkpointer_cv_.wait_for(
            lock, std::chrono::milliseconds(options_.checkpoint_interval_ms),
            [&] { return stop_checkpointer_; })) {
      break;
    }
    lock.unlock();
    const Status status = Checkpoint();
    // Busy = recovery not run yet; Unavailable = degraded (already warned
    // once by the health transition) — neither is news worth repeating.
    if (!status.ok() && !status.IsBusy() && !status.IsUnavailable()) {
      STREAMSI_WARN("background checkpoint failed: " << status.ToString());
    }
    lock.lock();
  }
}

}  // namespace streamsi
