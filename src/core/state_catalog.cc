#include "core/state_catalog.h"

#include "common/coding.h"

namespace streamsi {

Status StateCatalog::Open(const std::string& path) {
  if (env_->FileExists(path)) {
    WalReader::ReplayStats stats;
    STREAMSI_RETURN_NOT_OK(WalReader::Replay(
        path, [](WalRecordType, std::string_view) { return Status::OK(); },
        &stats, env_));
    if (stats.tail_truncated) {
      // Rewrite the file as its valid prefix (atomic replace), so the
      // appends below stay reachable to replay.
      std::string contents;
      STREAMSI_RETURN_NOT_OK(env_->ReadFileToString(path, &contents));
      contents.resize(stats.valid_bytes);
      STREAMSI_RETURN_NOT_OK(
          env_->WriteStringToFileAtomic(path, contents));
    }
  }
  return writer_.Open(path, /*truncate=*/false);
}

// kStateDecl payload: [version(1)] [varint32 id] [backend(1)]
//                     [lenpref name] [lenpref location]
Status StateCatalog::AppendState(const StateRecord& record) {
  std::string payload;
  payload.push_back(static_cast<char>(kFormatVersion));
  PutVarint32(&payload, record.id);
  payload.push_back(static_cast<char>(record.backend));
  PutLengthPrefixed(&payload, record.name);
  PutLengthPrefixed(&payload, record.location);
  return writer_.Append(WalRecordType::kStateDecl, payload, /*sync=*/true);
}

// kGroupDecl payload: [version(1)] [varint32 id] [singleton(1)]
//                     [varint32 count] [varint32 state]*
Status StateCatalog::AppendGroup(const GroupRecord& record) {
  std::string payload;
  payload.push_back(static_cast<char>(kFormatVersion));
  PutVarint32(&payload, record.id);
  payload.push_back(record.singleton ? 1 : 0);
  PutVarint32(&payload, static_cast<std::uint32_t>(record.states.size()));
  for (StateId state : record.states) PutVarint32(&payload, state);
  return writer_.Append(WalRecordType::kGroupDecl, payload, /*sync=*/true);
}

// kIndexDecl payload: [version(1)] [varint32 index_id] [varint32 base_id]
Status StateCatalog::AppendIndex(const IndexRecord& record) {
  std::string payload;
  payload.push_back(static_cast<char>(kFormatVersion));
  PutVarint32(&payload, record.index);
  PutVarint32(&payload, record.base);
  return writer_.Append(WalRecordType::kIndexDecl, payload, /*sync=*/true);
}

Status StateCatalog::Replay(const std::string& path,
                            std::vector<Declaration>* declarations,
                            Env* env) {
  if (env == nullptr) env = Env::Default();
  declarations->clear();
  if (!env->FileExists(path)) return Status::OK();
  return WalReader::Replay(
      path,
      [&](WalRecordType type, std::string_view payload) -> Status {
        if (type != WalRecordType::kStateDecl &&
            type != WalRecordType::kGroupDecl &&
            type != WalRecordType::kIndexDecl) {
          // The catalog is the schema's source of truth: a record kind this
          // binary does not know means the file was written by a newer era,
          // and opening a schema we cannot fully understand (then appending
          // to it!) would corrupt it for the writer that can. Refuse, don't
          // skip.
          return Status::Corruption(
              "catalog record kind from a newer era (unknown record type)");
        }
        const char* p = payload.data();
        const char* limit = p + payload.size();
        if (p == limit) return Status::Corruption("empty catalog record");
        const unsigned char version = static_cast<unsigned char>(*p++);
        if (version > kFormatVersion) {
          return Status::Corruption("catalog record from a newer era");
        }
        Declaration decl;
        if (type == WalRecordType::kIndexDecl) {
          decl.kind = Declaration::Kind::kIndex;
          p = GetVarint32(p, limit, &decl.index.index);
          if (p != nullptr) p = GetVarint32(p, limit, &decl.index.base);
          if (p == nullptr) {
            return Status::Corruption("bad index declaration");
          }
        } else if (type == WalRecordType::kStateDecl) {
          decl.kind = Declaration::Kind::kState;
          p = GetVarint32(p, limit, &decl.state.id);
          if (p == nullptr || p == limit) {
            return Status::Corruption("bad state declaration");
          }
          decl.state.backend = static_cast<BackendType>(*p++);
          std::string_view name, location;
          p = GetLengthPrefixed(p, limit, &name);
          if (p != nullptr) p = GetLengthPrefixed(p, limit, &location);
          if (p == nullptr) {
            return Status::Corruption("bad state declaration");
          }
          decl.state.name = std::string(name);
          decl.state.location = std::string(location);
        } else {
          decl.kind = Declaration::Kind::kGroup;
          p = GetVarint32(p, limit, &decl.group.id);
          if (p == nullptr || p == limit) {
            return Status::Corruption("bad group declaration");
          }
          decl.group.singleton = *p++ != 0;
          std::uint32_t count = 0;
          p = GetVarint32(p, limit, &count);
          if (p == nullptr || count > payload.size()) {
            return Status::Corruption("bad group declaration");
          }
          decl.group.states.reserve(count);
          for (std::uint32_t i = 0; i < count; ++i) {
            StateId state = kInvalidStateId;
            p = GetVarint32(p, limit, &state);
            if (p == nullptr) {
              return Status::Corruption("bad group declaration");
            }
            decl.group.states.push_back(state);
          }
        }
        declarations->push_back(std::move(decl));
        return Status::OK();
      },
      nullptr, env);
}

}  // namespace streamsi
