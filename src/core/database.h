// Database: the top-level facade. Owns the state context, the concurrency
// protocol, all transactional state tables, and the durable group-commit
// log; performs crash recovery on open.

#ifndef STREAMSI_CORE_DATABASE_H_
#define STREAMSI_CORE_DATABASE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/group_commit_log.h"
#include "core/transaction_manager.h"
#include "storage/backend.h"
#include "txn/protocol.h"
#include "txn/state_context.h"
#include "txn/versioned_store.h"

namespace streamsi {

struct DatabaseOptions {
  /// Concurrency-control protocol for all states.
  ProtocolType protocol = ProtocolType::kMvcc;
  /// Base-table backend for newly created states.
  BackendType backend = BackendType::kHash;
  /// Backend tuning (path is derived per state from base_dir).
  BackendOptions backend_options;
  /// Store tuning (version slots, write-through, sync).
  StoreOptions store_options;
  /// Directory for persistent data (LSM backends + group commit log).
  /// Empty => fully volatile database.
  std::string base_dir;
  /// Run the global EpochManager's background reclaimer while this database
  /// is open: retired garbage (replaced value buffers, grown bucket tables
  /// and version arrays) drains on a steady cadence instead of the
  /// opportunistic every-N-retires sweep. Stopped — ref-counted across
  /// databases — before the stores are torn down.
  bool background_epoch_reclaim = true;
  /// Reclaimer cadence (milliseconds between drain passes).
  std::uint32_t epoch_reclaim_interval_ms = 1;
};

class Database {
 public:
  /// Opens (creating `base_dir` if needed). States are declared afterwards
  /// with CreateState/CreateGroup — re-declare the same schema on restart,
  /// then call Recover().
  static Result<std::unique_ptr<Database>> Open(const DatabaseOptions& options);

  ~Database();

  /// Creates (or re-opens, when persistent data exists) a state table.
  /// Every state automatically forms a singleton topology group so that
  /// single-state queries get LastCTS-based snapshots and recovery too.
  Result<VersionedStore*> CreateState(const std::string& name);

  /// Declares that `states` are updated together by one stream query
  /// (topology group, §4.1/§4.3).
  GroupId CreateGroup(const std::vector<StateId>& states);

  VersionedStore* GetState(StateId id);
  VersionedStore* FindState(const std::string& name);

  /// Restores group LastCTS from the commit log, purges versions from
  /// unfinished group commits, and fast-forwards the clock. Call after the
  /// schema (states + groups) has been re-declared.
  Status Recover();

  StateContext& context() { return context_; }
  TransactionManager& txn_manager() { return *txn_manager_; }
  ConcurrencyProtocol& protocol() { return *protocol_; }
  const DatabaseOptions& options() const { return options_; }

  /// Convenience: begins a transaction.
  Result<std::unique_ptr<TransactionHandle>> Begin() {
    return txn_manager_->Begin();
  }

 private:
  explicit Database(const DatabaseOptions& options);

  std::string StateDir(const std::string& name) const;

  DatabaseOptions options_;
  /// One StartBackgroundReclaimer reference held between Open and
  /// destruction (released before the stores die).
  bool reclaimer_started_ = false;
  StateContext context_;
  std::unique_ptr<ConcurrencyProtocol> protocol_;
  std::unique_ptr<GroupCommitLog> group_log_;
  std::unique_ptr<TransactionManager> txn_manager_;

  mutable RwLatch stores_latch_;
  std::vector<std::unique_ptr<VersionedStore>> stores_;  // index = StateId
  std::unordered_map<std::string, StateId> stores_by_name_;
  std::unordered_map<StateId, GroupId> singleton_groups_;
};

}  // namespace streamsi

#endif  // STREAMSI_CORE_DATABASE_H_
