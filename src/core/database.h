// Database: the top-level facade. Owns the state context, the concurrency
// protocol, all transactional state tables, the durable state catalog and
// the segmented group-commit log; performs crash recovery on open and
// bounds restart work with checkpoints.

#ifndef STREAMSI_CORE_DATABASE_H_
#define STREAMSI_CORE_DATABASE_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/group_commit_log.h"
#include "core/state_catalog.h"
#include "core/transaction_manager.h"
#include "replication/transport.h"
#include "storage/backend.h"
#include "txn/protocol.h"
#include "txn/state_context.h"
#include "txn/versioned_store.h"

namespace streamsi {

class LogShipper;
class FollowerApplier;

struct DatabaseOptions {
  /// Concurrency-control protocol for all states.
  ProtocolType protocol = ProtocolType::kMvcc;
  /// Base-table backend for newly created states.
  BackendType backend = BackendType::kHash;
  /// Backend tuning (path is derived per state from base_dir).
  BackendOptions backend_options;
  /// Store tuning (version slots, write-through, sync).
  StoreOptions store_options;
  /// Directory for persistent data (LSM backends + group commit log).
  /// Empty => fully volatile database.
  std::string base_dir;
  /// Run the global EpochManager's background reclaimer while this database
  /// is open: retired garbage (replaced value buffers, grown bucket tables
  /// and version arrays) drains on a steady cadence instead of the
  /// opportunistic every-N-retires sweep. Stopped — ref-counted across
  /// databases — before the stores are torn down.
  bool background_epoch_reclaim = true;
  /// Reclaimer cadence (milliseconds between drain passes).
  std::uint32_t epoch_reclaim_interval_ms = 1;
  /// Background checkpoint cadence (milliseconds); 0 = manual Checkpoint()
  /// only. Each checkpoint flushes every store's backend, snapshots all
  /// groups' LastCTS and truncates the group-commit log, so restart work
  /// stays bounded by data since the last checkpoint.
  std::uint32_t checkpoint_interval_ms = 0;
  /// Threads for parallel recovery (LoadFromBackend + version purge fan out
  /// across stores); 0 = hardware concurrency.
  std::uint32_t recovery_threads = 0;
  /// Storage environment for ALL file IO (group log, catalog, LSM backends).
  /// nullptr => Env::Default() (POSIX). Tests inject a FaultEnv here to
  /// simulate power cuts, torn writes, full disks and failing syncs.
  Env* env = nullptr;
  /// Single-primary log-shipping replication (see src/replication/).
  struct Replication {
    ReplicationRole role = ReplicationRole::kNone;
    /// Primary only: where the log streams to (borrowed; must outlive the
    /// database). Typically an EnvFileTransport aimed at the follower's
    /// base_dir.
    ShipTransport* transport = nullptr;
    /// Cadences of the background ship/apply loops.
    std::uint32_t ship_interval_ms = 2;
    std::uint32_t apply_interval_ms = 2;
    /// Consecutive failed ship rounds before Health() reports the link
    /// down (shipping keeps retrying; the primary stays writable).
    std::uint32_t ship_retry_limit = 5;
    std::uint32_t ship_retry_backoff_ms = 1;
    /// Tests: no background ship/apply threads; drive the link manually
    /// with ShipNow()/ApplyShippedNow() for deterministic interleavings.
    bool manual_pump = false;
    /// Negative-control knob (torture harness): false makes the follower
    /// apply shipped frames without verifying their CRCs.
    bool verify_shipped_crc = true;
  };
  Replication replication;
  /// Deliberate protocol misorderings, compiled in so the crash-torture
  /// harness can prove it would catch a real bug (negative controls).
  struct TestHooks {
    /// Prune the old segment chain BEFORE the checkpoint cut is durable —
    /// the exact ordering bug the checkpoint protocol exists to prevent. A
    /// crash between the two loses acked commits; the torture verifier must
    /// flag it.
    bool checkpoint_prune_before_cut = false;
  };
  TestHooks test_hooks;
};

/// Database health, transitioned by the IO-failure classifier:
///   kHealthy           — all systems go.
///   kDegradedReadOnly  — storage can no longer accept writes (ENOSPC, a
///                        sticky-poisoned log writer, or an LSM flush worker
///                        that exhausted its retries). Reads and scans keep
///                        serving from the in-memory MVCC state; write
///                        commits fail fast with Status::Unavailable.
///   kFailed            — integrity is in doubt (corruption detected at
///                        runtime); nothing should trust this instance.
/// Transitions are monotone: health only ever gets worse until reopen.
enum class DatabaseHealth { kHealthy, kDegradedReadOnly, kFailed };

/// Snapshot of the database's health for operators and tests.
struct HealthReport {
  DatabaseHealth state = DatabaseHealth::kHealthy;
  /// The error that caused the first transition out of kHealthy (OK while
  /// healthy).
  Status first_error;
  /// Commit-path IO failures observed (including transient ones that did
  /// not degrade).
  std::uint64_t commit_io_failures = 0;
  /// Write commits rejected with Unavailable because of degraded health.
  std::uint64_t degraded_commit_rejections = 0;
  /// Per-store background health.
  struct StoreHealth {
    std::string name;
    Status backend_status;        ///< sticky background status (LSM worker)
    std::uint64_t flush_retries;  ///< background retry attempts so far
  };
  std::vector<StoreHealth> stores;
  /// Replication link state (meaningful when replication_configured).
  bool replication_configured = false;
  /// Serving replayed snapshots only; write commits fail fast Unavailable.
  bool follower = false;
  /// Was a follower, now writable (Promote() completed).
  bool promoted = false;
  /// Shipper stats on a primary, applier stats on a follower — including
  /// the staleness lag (primary watermark - follower watermark).
  ReplicationStats replication;
};

class Database {
 public:
  /// Opens (creating `base_dir` if needed). When a durable state catalog
  /// exists from a previous life, every state and topology group is
  /// reopened from it and recovery runs before Open returns — the database
  /// is ready to serve without the application re-declaring its schema.
  /// First-time (or volatile) databases declare states afterwards with
  /// CreateState/CreateGroup, then call Recover().
  static Result<std::unique_ptr<Database>> Open(const DatabaseOptions& options);

  ~Database();

  /// Creates a state table, or returns the existing store when `name` is
  /// already known (a catalog-reopened state or an earlier call) — so
  /// schema declarations stay idempotent across restarts. Every new state
  /// automatically forms a singleton topology group so that single-state
  /// queries get LastCTS-based snapshots and recovery too.
  Result<VersionedStore*> CreateState(const std::string& name);

  /// Declares that `states` are updated together by one stream query
  /// (topology group, §4.1/§4.3). Re-declaring an identical explicit group
  /// (same state set) returns the existing group instead of duplicating it.
  /// Returns kInvalidGroupId if the durable catalog append failed (the
  /// group is then not registered at all).
  GroupId CreateGroup(const std::vector<StateId>& states);

  /// Creates (or re-binds after reopen) a secondary index over `base_name`:
  /// a separate state named `index_name` whose rows are the composite keys
  /// [extractor(key, value)][0x00][key] -> key (see core/index_key.h). The
  /// index joins the base in one topology group, so §4.3's single LastCTS
  /// publication makes base and index rows visible atomically; maintenance
  /// happens inside the SAME GlobalCommit that writes the base. MVCC only
  /// (the baseline protocols refuse range scans anyway). The extractor must
  /// be deterministic and never emit a 0x00 byte.
  ///
  /// Durable databases persist the binding in the state catalog; on reopen,
  /// write commits on the base refuse with Unavailable until the
  /// application calls CreateIndex again with the (non-persistable)
  /// extractor — re-binding is idempotent and backfills nothing. A fresh
  /// index over an already-populated base is backfilled from the base's
  /// committed snapshot before this returns; run it before concurrent
  /// writers touch the base.
  Result<VersionedStore*> CreateIndex(
      const std::string& base_name, const std::string& index_name,
      TransactionManager::IndexKeyExtractor extractor);

  VersionedStore* GetState(StateId id);
  VersionedStore* FindState(const std::string& name);

  /// Restores group LastCTS from the commit log (starting at the newest
  /// checkpoint), purges versions from unfinished group commits and
  /// fast-forwards the clock; LoadFromBackend + purge fan out across
  /// stores on a thread pool. Runs automatically inside Open when a
  /// catalog exists; calling it again is a no-op, so legacy code that
  /// re-declares its schema and then calls Recover() keeps working.
  Status Recover();

  /// Durability checkpoint: flushes every store's backend, rotates the
  /// group-commit log to a fresh segment, drains in-flight commits, writes
  /// one publication-seqlock-consistent LastCTS cut as a durable checkpoint
  /// record and deletes the obsolete segments. Restart work (and log disk
  /// footprint) is thereafter bounded by data since this checkpoint. Safe
  /// to call concurrently with commits; checkpoint calls serialize among
  /// themselves. No-op for volatile databases. A failure anywhere leaves
  /// the previous segment chain authoritative — nothing is deleted before
  /// the checkpoint record is durable.
  Status Checkpoint();

  /// Completed checkpoints (manual + background).
  std::uint64_t CheckpointCount() const {
    return checkpoints_completed_.load(std::memory_order_relaxed);
  }

  /// Current health state (cheap: one relaxed atomic load).
  DatabaseHealth health() const {
    return health_.load(std::memory_order_relaxed);
  }

  /// Full health snapshot: state, first error, failure/rejection counters
  /// and every store's background status + flush retry count.
  HealthReport Health() const;

  /// True while this database is a replication follower that has not been
  /// promoted: reads serve the replayed per-group LastCTS cut, write
  /// commits and checkpoints fail fast with Unavailable.
  bool IsUnpromotedFollower() const {
    return options_.replication.role == ReplicationRole::kFollower &&
           !promoted_.load(std::memory_order_acquire);
  }

  /// Promotes a follower to writable. Promotion IS recovery: the applier is
  /// stopped and drained to the end of the shipped stream (Unavailable if
  /// it cannot catch up — e.g. a mid-frame tail the dead primary never
  /// completed is NOT a reason to fail, but a sticky Corruption is), then
  /// the standard parallel recovery replays the shipped chain, purges
  /// anything beyond the exact committed-record set and fast-forwards the
  /// clock; finally the chain is reopened for appending (a torn newest
  /// segment is retired exactly like a crashed primary's would be) and the
  /// commit path flips writable. Idempotent. The promoted database keeps
  /// writing kReplicatedCommit records, so a fresh follower can attach to
  /// its chain (as long as no checkpoint has pruned it yet — a follower
  /// refuses a chain that does not start at its birth). To restart a
  /// promoted node from disk, reopen its directory as a standalone (or
  /// primary) database: it is a normal durable directory by then, and the
  /// standard Open-time recovery applies.
  Status Promote();

  /// Manual replication pumping (manual_pump mode and tests): one ship
  /// round on a primary / one apply round on a follower.
  Status ShipNow();
  Status ApplyShippedNow();

  StateContext& context() { return context_; }
  TransactionManager& txn_manager() { return *txn_manager_; }
  ConcurrencyProtocol& protocol() { return *protocol_; }
  const DatabaseOptions& options() const { return options_; }
  /// The durable group-commit log (nullptr for volatile databases). Tests
  /// use it for segment accounting and checkpoint fault injection.
  GroupCommitLog* group_log() { return group_log_.get(); }

  /// Convenience: begins a transaction.
  Result<std::unique_ptr<TransactionHandle>> Begin() {
    return txn_manager_->Begin();
  }

 private:
  explicit Database(const DatabaseOptions& options);

  std::string StateDir(const std::string& name) const;
  std::string GroupLogPath() const {
    return options_.base_dir + "/group_commits.log";
  }
  std::string CatalogPath() const { return options_.base_dir + "/catalog.log"; }

  /// Shared creation path. `declared` carries the catalog record to replay
  /// (reopen) or null for a fresh state (which is then appended to the
  /// catalog). Registration runs under the exclusive stores latch, so ids
  /// are assigned race-free.
  Result<VersionedStore*> CreateStateInternal(
      const std::string& name, const StateCatalog::StateRecord* declared);
  /// Replays catalog declarations not applied yet (reopening every newly
  /// declared state and group). Re-runnable: Open uses it for the initial
  /// replay, a follower's applier calls it each round to pick up schema the
  /// primary declared since.
  Status ApplyCatalogTail();
  Status RecoverInternal();
  /// The checkpoint protocol body; Checkpoint() wraps it with health
  /// admission and failure classification.
  Status DoCheckpoint();
  void CheckpointLoop();

  /// Classifies a commit-path IO failure: NoSpace degrades to read-only,
  /// corruption fails the instance, and a transient one-shot error is only
  /// counted — unless it sticky-poisoned the group log's writer, in which
  /// case every future commit would fail anyway and we degrade now.
  void NoteIoFailure(const Status& status);
  /// A background flush/compaction worker poisoned itself AFTER exhausting
  /// its bounded retries — persistent by definition, so always transition.
  void NoteBackgroundFailure(const Status& status);
  /// Monotone health transition (never back toward healthy); records the
  /// first error that left kHealthy.
  void TransitionTo(DatabaseHealth target, const Status& cause);
  /// Commit admission gate handed to the TransactionManager: OK while
  /// healthy, Unavailable (with the first error's message) once degraded.
  Status AdmitCommit();

  DatabaseOptions options_;
  Env* env_ = nullptr;  ///< resolved: options_.env or Env::Default()
  /// One StartBackgroundReclaimer reference held between Open and
  /// destruction (released before the stores die).
  bool reclaimer_started_ = false;
  StateContext context_;
  std::unique_ptr<ConcurrencyProtocol> protocol_;
  std::unique_ptr<GroupCommitLog> group_log_;
  std::unique_ptr<StateCatalog> catalog_;
  std::unique_ptr<TransactionManager> txn_manager_;

  /// Replication machinery (at most one of the two, per role).
  std::unique_ptr<LogShipper> shipper_;
  std::unique_ptr<FollowerApplier> applier_;
  /// Follower flipped writable by Promote().
  std::atomic<bool> promoted_{false};
  /// Catalog declarations already applied (Open thread, then only the
  /// applier thread via ApplyCatalogTail).
  std::size_t catalog_applied_ = 0;
  /// Opened with role kFollower: catalog replay remaps state locations into
  /// OUR base_dir (the primary's declared paths are its own) and never
  /// schedules backend loads — follower state is rebuilt from the shipped
  /// stream alone.
  bool follower_mode_ = false;

  /// Health machine. The state itself is a lock-free atomic (read on every
  /// commit admission); the mutex only guards the first-error record.
  /// Declared BEFORE the stores: an LSM store's background worker can fire
  /// on_background_failure while the stores are being torn down, and the
  /// callback must find these alive.
  std::atomic<DatabaseHealth> health_{DatabaseHealth::kHealthy};
  mutable std::mutex health_mutex_;
  Status first_health_error_;  ///< under health_mutex_
  std::atomic<std::uint64_t> commit_io_failures_{0};
  std::atomic<std::uint64_t> degraded_commit_rejections_{0};

  mutable RwLatch stores_latch_;
  std::vector<std::unique_ptr<VersionedStore>> stores_;  // index = StateId
  std::unordered_map<std::string, StateId> stores_by_name_;
  std::unordered_map<StateId, GroupId> singleton_groups_;
  /// Secondary-index topology: index state -> its base state. Mirrors the
  /// TransactionManager's bindings but keyed the other way (CreateIndex's
  /// idempotence check asks "is THIS index already bound to THAT base?").
  /// Under stores_latch_.
  std::unordered_map<StateId, StateId> index_base_;
  /// Catalog-reopened states whose backend data has not been loaded yet;
  /// RecoverInternal drains this in parallel. Under stores_latch_.
  std::vector<StateId> pending_loads_;
  /// States inline-loaded (pre-catalog upgrade path) AFTER recovery
  /// already ran — a partially-upgraded directory can reopen with a
  /// catalog covering only some states; the app's re-declaration of the
  /// rest loads them with no purge applied. The next Recover() call
  /// purges + clock-advances exactly these. Under stores_latch_.
  std::vector<StateId> post_recovery_loads_;
  bool recovered_ = false;  ///< under stores_latch_

  /// Serializes Checkpoint() calls (manual + background thread).
  std::mutex checkpoint_mutex_;
  std::atomic<std::uint64_t> checkpoints_completed_{0};
  std::mutex checkpointer_mutex_;
  std::condition_variable checkpointer_cv_;
  bool stop_checkpointer_ = false;  ///< under checkpointer_mutex_
  std::thread checkpointer_;
};

}  // namespace streamsi

#endif  // STREAMSI_CORE_DATABASE_H_
