// WriteSet: the transaction-private "Uncommitted Write Set / Dirty Array"
// of §4.1. Changes are "transiently stored" here before commit, which
// "enables simple and fast aborts and also prevents the mixing of committed
// and uncommitted versions". Writes "are merely appended" (§4.2) — the dirty
// array preserves append order, with a hash index for read-your-own-writes.
//
// Zero-allocation design (the write-side mirror of the shard index):
//   * Key and value bytes are copied into a chunked arena whose blocks are
//     retained across Reset(), so a pooled write set stops allocating once
//     it reaches its high-water mark. Blocks are stable (never reallocated),
//     so the string_views handed out stay valid until Reset().
//   * The dirty array is a flat vector of {key, value, hash, is_delete}
//     entries updated in place (last write per key wins, first-touch order
//     preserved — exactly the order ApplyWriteSet installs).
//   * Read-your-own-writes probes hash the caller's std::string_view
//     directly against an open-addressed index of entry positions — no
//     std::string is ever materialized for a Put/Find/Contains.

#ifndef STREAMSI_TXN_WRITE_SET_H_
#define STREAMSI_TXN_WRITE_SET_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

namespace streamsi {

/// Uncommitted writes of one transaction against one state.
class WriteSet {
 public:
  struct Entry {
    std::string_view key;    ///< arena-backed; valid until Reset()
    std::string_view value;  ///< arena-backed; empty for deletes
    std::size_t hash = 0;    ///< of key (cached for index rebuilds/probes)
    /// Bytes reserved at value.data(): overwrites that fit are copied in
    /// place, so a hot key updated N times costs one buffer, not N.
    std::uint32_t value_capacity = 0;
    bool is_delete = false;
    /// Store entry resolved at commit-validation time (an opaque
    /// VersionedStore::EntryHandle; shard entries are append-only and
    /// outlive every transaction, so the pointer stays valid through
    /// apply/release). Lets the commit path probe the bucket table once
    /// per key instead of once per phase. `mutable`: set during Validate,
    /// which sees the write set const. Cleared with the entry on Reset().
    mutable void* commit_hint = nullptr;
  };

  /// Result of a read-your-own-writes probe.
  struct Lookup {
    bool written = false;    ///< did this txn write the key at all
    bool is_delete = false;  ///< ... and was the write a delete
    std::string_view value;  ///< the written value (valid until Reset())
  };

  WriteSet() : index_(kInitialIndexSize, 0) {}
  WriteSet(const WriteSet&) = delete;
  WriteSet& operator=(const WriteSet&) = delete;

  /// Appends an insert/update (last write per key wins at commit).
  void Put(std::string_view key, std::string_view value) {
    Append(key, value, /*is_delete=*/false);
  }

  /// Appends a delete marker.
  void Delete(std::string_view key) {
    Append(key, std::string_view(), /*is_delete=*/true);
  }

  /// Read-your-own-writes lookup; allocation-free.
  Lookup Find(std::string_view key) const {
    const std::size_t hash = Hash(key);
    const std::size_t mask = index_.size() - 1;
    for (std::size_t i = hash & mask;; i = (i + 1) & mask) {
      const std::uint32_t pos = index_[i];
      if (pos == 0) return Lookup{};
      const Entry& entry = entries_[pos - 1];
      if (entry.hash == hash && entry.key == key) {
        return Lookup{true, entry.is_delete, entry.value};
      }
    }
  }

  bool Contains(std::string_view key) const { return Find(key).written; }

  /// Dirty array in first-touch order; entries are updated in place, so
  /// each one is the effective (latest) write of its key.
  const std::vector<Entry>& entries() const { return entries_; }

  /// Visits the effective write per key, in first-touch order.
  template <typename Fn>
  void ForEachEffective(Fn&& fn) const {
    for (const Entry& entry : entries_) {
      fn(entry.key, entry.value, entry.is_delete);
    }
  }

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  /// Drops all writes but keeps the arena blocks, the entry vector's
  /// capacity and the index table: a pooled write set reused by the next
  /// transaction in this slot runs allocation-free at steady state. This is
  /// also the abort path (§4.2: "simply clear the corresponding write set")
  /// — the memory is released when the pool itself dies.
  void Reset() {
    entries_.clear();
    std::fill(index_.begin(), index_.end(), 0);
    arena_.Reset();
  }

  /// Alias kept for the abort-path callers.
  void Clear() { Reset(); }

 private:
  static constexpr std::size_t kInitialIndexSize = 16;  // power of two

  /// Chunked bump allocator. Blocks are stable and retained across Reset.
  class Arena {
   public:
    std::string_view Store(std::string_view bytes) {
      if (bytes.empty()) return std::string_view();
      if (block_ == blocks_.size() ||
          blocks_[block_].capacity - used_ < bytes.size()) {
        NextBlock(bytes.size());
      }
      char* dst = blocks_[block_].data.get() + used_;
      std::memcpy(dst, bytes.data(), bytes.size());
      used_ += bytes.size();
      return std::string_view(dst, bytes.size());
    }

    void Reset() {
      block_ = 0;
      used_ = 0;
    }

   private:
    struct Block {
      std::unique_ptr<char[]> data;
      std::size_t capacity = 0;
    };

    void NextBlock(std::size_t need) {
      // Advance to the next retained block large enough for `need`;
      // allocate a fresh one only past the high-water mark. (A retained
      // block skipped because it is too small stays idle for the rest of
      // this cycle — same-sized workloads converge to zero skips.)
      std::size_t i = blocks_.empty() ? 0 : block_ + 1;
      while (i < blocks_.size() && blocks_[i].capacity < need) ++i;
      if (i == blocks_.size()) {
        Block fresh;
        fresh.capacity = std::max<std::size_t>(kBlockBytes, need);
        fresh.data = std::make_unique<char[]>(fresh.capacity);
        blocks_.push_back(std::move(fresh));
      }
      block_ = i;
      used_ = 0;
    }

    static constexpr std::size_t kBlockBytes = 4096;
    std::vector<Block> blocks_;
    std::size_t block_ = 0;  ///< active block index
    std::size_t used_ = 0;   ///< bytes used in the active block
  };

  static std::size_t Hash(std::string_view key) {
    return std::hash<std::string_view>{}(key);
  }

  /// (Re)points `entry.value` at the new bytes: in place when they fit in
  /// the entry's reserved buffer (hot-key overwrites cost one buffer, not
  /// one arena copy per Put), from a fresh arena store otherwise. Deletes
  /// pass an empty view; the buffer (and its capacity) survives for a
  /// later revival.
  void SetValue(Entry& entry, std::string_view value) {
    if (value.empty()) {
      entry.value = std::string_view(entry.value.data(), 0);
      return;
    }
    if (value.size() <= entry.value_capacity) {
      // memmove: the caller may legally pass a view into this very entry.
      char* dst = const_cast<char*>(entry.value.data());
      std::memmove(dst, value.data(), value.size());
      entry.value = std::string_view(dst, value.size());
      return;
    }
    entry.value = arena_.Store(value);
    entry.value_capacity = static_cast<std::uint32_t>(entry.value.size());
  }

  void Append(std::string_view key, std::string_view value, bool is_delete) {
    const std::size_t hash = Hash(key);
    const std::size_t mask = index_.size() - 1;
    std::size_t i = hash & mask;
    for (;; i = (i + 1) & mask) {
      const std::uint32_t pos = index_[i];
      if (pos == 0) break;
      Entry& entry = entries_[pos - 1];
      if (entry.hash == hash && entry.key == key) {
        // In-place update: last write per key wins, position preserved.
        SetValue(entry, is_delete ? std::string_view() : value);
        entry.is_delete = is_delete;
        return;
      }
    }
    Entry entry;
    entry.key = arena_.Store(key);
    SetValue(entry, is_delete ? std::string_view() : value);
    entry.hash = hash;
    entry.is_delete = is_delete;
    entries_.push_back(entry);
    index_[i] = static_cast<std::uint32_t>(entries_.size());
    // Keep the load factor <= 3/4 so probes for absent keys terminate fast.
    if (entries_.size() * 4 > index_.size() * 3) GrowIndex();
  }

  void GrowIndex() {
    index_.assign(index_.size() * 2, 0);
    const std::size_t mask = index_.size() - 1;
    for (std::size_t pos = 0; pos < entries_.size(); ++pos) {
      std::size_t i = entries_[pos].hash & mask;
      while (index_[i] != 0) i = (i + 1) & mask;
      index_[i] = static_cast<std::uint32_t>(pos + 1);
    }
  }

  std::vector<Entry> entries_;
  /// Open-addressed (linear probing) table of entry positions + 1; 0 =
  /// empty. Rebuilt in place on growth (entry vector indices are stable).
  std::vector<std::uint32_t> index_;
  Arena arena_;
};

}  // namespace streamsi

#endif  // STREAMSI_TXN_WRITE_SET_H_
