// WriteSet: the transaction-private "Uncommitted Write Set / Dirty Array"
// of §4.1. Changes are "transiently stored" here before commit, which
// "enables simple and fast aborts and also prevents the mixing of committed
// and uncommitted versions". Writes "are merely appended" (§4.2) — the dirty
// array preserves append order, with a hash index for read-your-own-writes.

#ifndef STREAMSI_TXN_WRITE_SET_H_
#define STREAMSI_TXN_WRITE_SET_H_

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace streamsi {

/// Uncommitted writes of one transaction against one state.
class WriteSet {
 public:
  struct Entry {
    std::string key;
    std::string value;
    bool is_delete = false;
  };

  /// Appends an insert/update (last write per key wins at commit).
  void Put(std::string_view key, std::string_view value) {
    Append(key, value, /*is_delete=*/false);
  }

  /// Appends a delete marker.
  void Delete(std::string_view key) { Append(key, "", /*is_delete=*/true); }

  /// Read-your-own-writes lookup: outer optional = "did this txn write the
  /// key at all", inner optional = the value (nullopt for a delete).
  std::optional<std::optional<std::string>> Get(std::string_view key) const {
    auto it = index_.find(std::string(key));
    if (it == index_.end()) return std::nullopt;
    const Entry& entry = entries_[it->second];
    if (entry.is_delete) {
      // Outer optional engaged ("the txn wrote this key"), inner empty
      // ("the write was a delete").
      return std::make_optional<std::optional<std::string>>(std::nullopt);
    }
    return std::make_optional<std::optional<std::string>>(entry.value);
  }

  bool Contains(std::string_view key) const {
    return index_.count(std::string(key)) > 0;
  }

  /// Dirty array in append order; for duplicate keys only the latest entry
  /// is current (Get/ApplyOrdered respect that).
  const std::vector<Entry>& entries() const { return entries_; }

  /// Visits the *effective* write per key (the last one appended).
  template <typename Fn>
  void ForEachEffective(Fn&& fn) const {
    for (const auto& [key, idx] : index_) {
      (void)key;
      const Entry& entry = entries_[idx];
      fn(entry.key, entry.value, entry.is_delete);
    }
  }

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  /// Abort path (§4.2): "simply clear the corresponding write set and
  /// release the memory."
  void Clear() {
    entries_.clear();
    entries_.shrink_to_fit();
    index_.clear();
  }

 private:
  void Append(std::string_view key, std::string_view value, bool is_delete) {
    auto [it, inserted] =
        index_.try_emplace(std::string(key), entries_.size());
    if (inserted) {
      entries_.push_back(Entry{std::string(key), std::string(value),
                               is_delete});
    } else {
      Entry& entry = entries_[it->second];
      entry.value.assign(value.data(), value.size());
      entry.is_delete = is_delete;
    }
  }

  std::vector<Entry> entries_;
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace streamsi

#endif  // STREAMSI_TXN_WRITE_SET_H_
