// Shared identifiers of the transactional state layer.

#ifndef STREAMSI_TXN_TYPES_H_
#define STREAMSI_TXN_TYPES_H_

#include <cstdint>

#include "common/clock.h"

namespace streamsi {

/// Identifier of a registered state (table).
using StateId = std::uint32_t;
/// Identifier of a topology group: the set of states one stream query must
/// update atomically (§4.1 "Topologies").
using GroupId = std::uint32_t;
/// Transaction identifier == its BOT timestamp (§4.1).
using TxnId = Timestamp;

inline constexpr StateId kInvalidStateId = ~0u;
inline constexpr GroupId kInvalidGroupId = ~0u;

/// Per-state transaction status used by the consistency protocol (§4.3):
/// the paper's Active / Commit / Abort flags.
enum class TxnStatus : unsigned char {
  kActive = 0,
  kCommit = 1,
  kAbort = 2,
};

/// Which concurrency-control protocol guards a store (§5: the paper
/// evaluates its MVCC/SI protocol against S2PL and BOCC baselines).
enum class ProtocolType { kMvcc, kS2pl, kBocc };

/// Read visibility level (§3: "different isolation levels should provide
/// different levels of visibility"). Only meaningful under the MVCC
/// protocol; the lock/validation baselines always read latest-committed.
enum class IsolationLevel : unsigned char {
  /// Default: all reads of a transaction observe one snapshot, pinned at
  /// the first read per topology group (§4.2).
  kSnapshot = 0,
  /// Each read observes the newest committed version at that instant;
  /// non-repeatable reads are possible, uncommitted data never shows.
  kReadCommitted = 1,
};

inline const char* ProtocolTypeName(ProtocolType type) {
  switch (type) {
    case ProtocolType::kMvcc:
      return "MVCC";
    case ProtocolType::kS2pl:
      return "S2PL";
    case ProtocolType::kBocc:
      return "BOCC";
  }
  return "?";
}

}  // namespace streamsi

#endif  // STREAMSI_TXN_TYPES_H_
