// VersionedStore: the untyped transactional table wrapper of §4.1 —
// a sharded in-memory map of key -> (latch, MvccObject) in front of a
// pluggable TableBackend that persistently stores the committed version
// arrays.
//
// Readers operate entirely on the in-memory MVCC objects ("readers (mostly
// only accessing memory)", §5.2); the base table is the durability story:
// commits write the serialized MVCC object through to the backend, with the
// backend's SyncMode deciding the fsync behaviour.
//
// Read-path design (zero allocation, latch-minimal):
//   * Each shard's key index is an open-addressed bucket table of atomic
//     Entry pointers, probed directly with the caller's std::string_view —
//     no std::string is ever materialized for a lookup, and readers take no
//     latch at all. Inserts take the shard latch exclusively; growth
//     publishes a new table with a release store and retires the old one to
//     the EpochManager, so in-flight readers finish their probe on the old
//     table safely. Entries themselves are never freed before the store
//     dies, so an Entry* stays valid once obtained.
//   * Version access is an optimistic seqlock read (see MvccObject): probe,
//     validate, retry on writer interference, and only after
//     kOptimisticRetries failed attempts fall back to the shared per-entry
//     latch for guaranteed progress. Readers therefore never block writers
//     and writers never wait for readers.
//   * A read's only synchronization is one epoch-guard store on entry/exit
//     of the critical section plus the seqlock validation loads.

#ifndef STREAMSI_TXN_VERSIONED_STORE_H_
#define STREAMSI_TXN_VERSIONED_STORE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/epoch.h"
#include "common/latch.h"
#include "common/random.h"
#include "mvcc/mvcc_object.h"
#include "storage/backend.h"
#include "txn/types.h"

namespace streamsi {

/// Tuning knobs of one store.
struct StoreOptions {
  /// Initial version-array capacity per key (<= 64).
  int mvcc_slots = 8;
  /// Adaptive-growth ceiling: a full version array whose on-demand GC frees
  /// nothing (every version pinned by some snapshot) is replaced with a
  /// doubled copy up to this many slots instead of failing the commit
  /// (<= 64). Set equal to mvcc_slots to disable growth.
  int mvcc_slots_max = 64;
  /// Bounded writer backpressure: at mvcc_slots_max with nothing
  /// reclaimable, a committing install waits up to this long (total, across
  /// floor re-resolutions) for the lagging snapshot pin to advance before
  /// returning ResourceExhausted. Only refreshable (lazily computed) GC
  /// floors wait — a fixed watermark can never rise, so those fail fast.
  std::uint64_t version_wait_micros = 200'000;
  /// Persist committed MVCC objects to the backend at commit time.
  bool write_through = true;
  /// Request durability (backend SyncMode applies) for the final write of
  /// each per-state commit batch.
  bool sync_on_commit = true;
};

/// Operation counters of one store (observability; all relaxed atomics).
struct StoreStats {
  std::atomic<std::uint64_t> reads{0};
  std::atomic<std::uint64_t> read_misses{0};
  std::atomic<std::uint64_t> read_retries{0};  ///< seqlock interference
  std::atomic<std::uint64_t> installs{0};
  std::atomic<std::uint64_t> deletes{0};
  std::atomic<std::uint64_t> scans{0};
  std::atomic<std::uint64_t> gc_reclaimed{0};
  std::atomic<std::uint64_t> persisted{0};
  /// Version-array growth events (a key outgrew its slot array under a
  /// lagging reader pin).
  std::atomic<std::uint64_t> slot_growths{0};
  /// Installs that had to wait for the GC floor to advance (hot key at
  /// mvcc_slots_max with every version pinned).
  std::atomic<std::uint64_t> version_wait_stalls{0};
  /// Batched validate-and-lock passes (LockForCommitBatch calls).
  std::atomic<std::uint64_t> batch_validates{0};
};

/// One transactional state table (untyped: byte-string keys/values).
class VersionedStore {
 public:
  VersionedStore(StateId id, std::string name,
                 std::unique_ptr<TableBackend> backend,
                 const StoreOptions& options);
  ~VersionedStore();

  VersionedStore(const VersionedStore&) = delete;
  VersionedStore& operator=(const VersionedStore&) = delete;

  StateId id() const { return id_; }
  const std::string& name() const { return name_; }
  TableBackend* backend() { return backend_.get(); }
  const StoreOptions& options() const { return options_; }

  // ---------------------------------------------------------- read path ---

  /// Snapshot read: newest version with cts <= read_ts < dts.
  Status ReadCommitted(Timestamp read_ts, std::string_view key,
                       std::string* value) const;

  /// Latest committed live version (S2PL/BOCC read path): a direct probe
  /// for the newest live version, no snapshot timestamp involved.
  Status ReadLatest(std::string_view key, std::string* value) const;

  /// CTS of the newest committed version of `key` (kInitialTs if none).
  Timestamp LatestCts(std::string_view key) const;

  /// Newest committed modification of `key`, deletes included (the
  /// First-Committer-Wins comparison point).
  Timestamp LatestModification(std::string_view key) const;

  /// Snapshot scan over all keys; callback(key, value); stable w.r.t.
  /// concurrent commits thanks to version visibility. The callback runs
  /// with no latch and no epoch pinned (a long callback never stalls
  /// reclamation, and writing back into this store — including creating new
  /// keys — is safe). Keys created after the per-shard pointer snapshot was
  /// taken may or may not be visited by this scan.
  Status ScanCommitted(
      Timestamp read_ts,
      const std::function<bool(std::string_view, std::string_view)>& callback)
      const;

  /// Ordered snapshot scan over [lo, hi) — empty `hi` means "to the end".
  /// Visits keys in byte-wise order at one snapshot, walking the store's
  /// ordered key index (maintained at entry-creation time, so range reads
  /// work regardless of the backend's own ordering). Same reader discipline
  /// as ScanCommitted: latch-free traversal, the epoch pinned only around
  /// each seqlock version probe, the callback invoked with no latch and no
  /// epoch held, and zero heap allocations once the reusable value buffer
  /// has warmed up. Keys created concurrently with the scan may or may not
  /// be visited (their versions are invisible at `read_ts` regardless).
  Status ScanRangeCommitted(
      Timestamp read_ts, std::string_view lo, std::string_view hi,
      const std::function<bool(std::string_view, std::string_view)>& callback)
      const;

  // -------------------------------------------------------- commit path ---

  /// Opaque stable handle to one key's shard entry. Entries are append-only
  /// and never freed before the store dies (the read-path guarantee "an
  /// Entry* once obtained stays valid"), so a handle resolved during
  /// validation stays usable through apply and release — the commit path
  /// probes the bucket table (and pins an epoch) ONCE per key instead of
  /// once per phase.
  using EntryHandle = void*;

  /// Tries to own `key` for committing (First-Committer-Wins guard under
  /// multiple writers). Returns Conflict if another transaction is
  /// committing the key right now. On success (including re-entrant) the
  /// optional `handle` receives the key's entry for the later phases.
  Status LockForCommit(std::string_view key, TxnId txn,
                       EntryHandle* handle = nullptr);
  void UnlockCommit(std::string_view key, TxnId txn);
  void UnlockCommit(EntryHandle handle, TxnId txn);

  /// One key of a batched validate-and-lock pass. `hash` must be
  /// HashKey(key) — write sets already cache exactly that hash, so the
  /// batch path never re-hashes. `handle` receives the resolved entry.
  struct CommitLockRequest {
    std::string_view key;
    std::size_t hash = 0;
    EntryHandle handle = nullptr;
  };

  /// Batch-amortized commit validation: resolves, creates (where missing)
  /// and commit-locks every key of a write-set batch in one pass —
  /// ONE epoch pin for all probes and one shard-latch acquisition per
  /// DISTINCT SHARD (misses sorted by shard, probed in runs) instead of a
  /// pin + probe + possible latch round-trip per key.
  ///
  /// Locks are claimed in request (write-set) order, so the observable
  /// lock/conflict sequence is identical to calling LockForCommit per key:
  /// on a Conflict from the lock CAS, requests [0, *locked_count) hold
  /// commit locks and the failing key does not; on a first-committer-wins
  /// Conflict the failing key IS locked (and counted), exactly like the
  /// per-key path, so release logic is shared. Entries created for keys
  /// after a conflict point carry no versions and are semantically
  /// invisible.
  Status LockForCommitBatch(CommitLockRequest* requests, std::size_t count,
                            TxnId txn, std::size_t* locked_count);

  /// Handle-based First-Committer-Wins comparison point (no probe, no
  /// epoch pin — the handle already is the entry).
  Timestamp LatestModification(EntryHandle handle) const;

  /// Installs one committed write (value or tombstone) at `commit_ts` and
  /// (optionally, per StoreOptions) persists the version array to the
  /// backend. `sync_hint` requests durability for this write. The GC
  /// watermark is lazy: `floor` is only resolved when the key's version
  /// array is actually full (see MvccObject::Install).
  Status ApplyCommitted(std::string_view key, std::string_view value,
                        bool is_delete, Timestamp commit_ts, GcFloor& floor,
                        bool sync_hint);

  /// Handle-based install: same semantics, minus the bucket-table probe
  /// (the validate phase already resolved the entry).
  Status ApplyCommitted(EntryHandle handle, std::string_view value,
                        bool is_delete, Timestamp commit_ts, GcFloor& floor,
                        bool sync_hint);

  /// Eager-watermark convenience (tests, benchmarks, maintenance).
  Status ApplyCommitted(std::string_view key, std::string_view value,
                        bool is_delete, Timestamp commit_ts,
                        Timestamp oldest_active, bool sync_hint) {
    GcFloor floor(oldest_active);
    return ApplyCommitted(key, value, is_delete, commit_ts, floor,
                          sync_hint);
  }

  /// Generation-tagged cache for the lazily computed per-store GC floor
  /// (see TransactionManager::GlobalCommit): a watermark computed through
  /// the publish-floor/re-scan handshake stays safe forever, so reading a
  /// cached value is always sound; the generation (the StateContext's
  /// transaction-table generation) merely bounds its staleness.
  bool TryGetCachedGcFloor(std::uint64_t generation, Timestamp* floor) const {
    if (gc_floor_generation_.load(std::memory_order_acquire) != generation) {
      return false;
    }
    *floor = gc_floor_cache_.load(std::memory_order_acquire);
    return true;
  }
  void CacheGcFloor(std::uint64_t generation, Timestamp floor) {
    // Value before generation: a reader pairing the new generation with the
    // previous value still holds a valid (handshaked) watermark.
    gc_floor_cache_.store(floor, std::memory_order_release);
    gc_floor_generation_.store(generation, std::memory_order_release);
  }

  /// Runs GC over every key (normally GC is per-key on demand; this is for
  /// tests/benchmarks and idle maintenance).
  std::uint64_t GarbageCollectAll(Timestamp oldest_active);

  // ----------------------------------------------------------- recovery ---

  /// Loads all MVCC objects from the backend (restart).
  Status LoadFromBackend();

  /// Drops versions with cts > max_cts (their group commit never finished)
  /// — §4.3/recovery rule. Returns the number of purged versions.
  std::uint64_t PurgeVersionsAfter(Timestamp max_cts);

  /// Recovery purge with exact commit knowledge: drops versions whose cts
  /// is beyond `covered_cts` (the checkpoint cut) and not accepted by
  /// `is_committed` (the replayed commit-record set). A lone watermark is
  /// not enough: a commit aborted at the durability point can hold a cts
  /// below a later commit that did log, and its partially-applied versions
  /// must not resurrect. Returns the number of purged versions.
  std::uint64_t PurgeUncommittedVersions(
      Timestamp covered_cts,
      const std::function<bool(Timestamp)>& is_committed);

  /// Targeted undo for a FAILED commit: drops `key`'s versions with
  /// cts > max_cts and re-opens the predecessor the failed install
  /// terminated. Unlike the store-wide PurgeVersionsAfter, this touches
  /// only the caller's own key — concurrent committers' (possibly already
  /// published) versions on other keys are untouched. The caller must
  /// still own the key's commit path (FCW commit lock / exclusive write
  /// lock / the BOCC global commit section), so no other transaction can
  /// have installed a version of this key above max_cts.
  std::uint64_t PurgeKeyVersionsAfter(std::string_view key,
                                      Timestamp max_cts);

  /// Non-transactional bulk load used for benchmark preloading: installs a
  /// version visible to every transaction (cts = kInitialTs) without
  /// syncing each key.
  Status BulkLoad(std::string_view key, std::string_view value);

  // -------------------------------------------------------- diagnostics ---

  std::uint64_t KeyCount() const;
#ifdef STREAMSI_READ_DEBUG
  /// Diagnostic-only: latched dump of a key's version array.
  std::string DebugDump(std::string_view key) const;
#endif
  /// Largest observed CTS across all keys (recovery diagnostics).
  Timestamp MaxCommittedCts() const;
  const StoreStats& stats() const { return stats_; }

 private:
  static constexpr std::size_t kShards = 256;          // power of two
  static constexpr std::size_t kInitialBuckets = 16;   // power of two
  static constexpr int kOptimisticRetries = 64;

  struct Entry {
    Entry(std::string key_arg, std::size_t hash_arg, int capacity)
        : key(std::move(key_arg)), hash(hash_arg), object(capacity) {}
    Entry(std::string key_arg, std::size_t hash_arg, MvccObject&& recovered)
        : key(std::move(key_arg)),
          hash(hash_arg),
          object(std::move(recovered)),
          latest_modification(object.LatestModification()) {}

    /// Key bytes live inside the entry: the bucket table stores only Entry
    /// pointers and lookups compare against this string in place.
    const std::string key;
    const std::size_t hash;
    mutable RwLatch latch;
    MvccObject object;
    /// First-Committer-Wins watermark: timestamp of the newest committed
    /// modification of this key (install or delete, including no-op
    /// deletes). Kept outside the version array because garbage collection
    /// may reclaim the version that carried the evidence.
    std::atomic<Timestamp> latest_modification{kInitialTs};
    /// First-committer-wins commit ownership (0 = free).
    std::atomic<TxnId> commit_owner{0};
    /// Monotonic snapshot counter for ordered backend write-back.
    std::uint64_t blob_version = 0;  // under latch
    std::atomic<std::uint64_t> persisted_version{0};
    SpinLock persist_lock;
  };

  /// Open-addressed (linear probing) table of atomic Entry pointers.
  /// Published via Shard::table with release/acquire; immutable once
  /// superseded (readers drain via epochs before it is freed). Load factor
  /// stays <= 3/4, so probes for absent keys always hit an empty bucket.
  struct BucketTable {
    explicit BucketTable(std::size_t capacity_arg)
        : capacity(capacity_arg),
          mask(capacity_arg - 1),
          buckets(new std::atomic<Entry*>[capacity_arg]) {
      for (std::size_t i = 0; i < capacity; ++i) {
        buckets[i].store(nullptr, std::memory_order_relaxed);
      }
    }
    const std::size_t capacity;
    const std::size_t mask;
    std::unique_ptr<std::atomic<Entry*>[]> buckets;
  };

  struct Shard {
    Shard() : table(new BucketTable(kInitialBuckets)) {}
    ~Shard() { delete table.load(std::memory_order_acquire); }
    /// Writers (insert/growth) exclusive; maintenance iteration shared.
    /// Point readers take it only as the seqlock fallback — never on the
    /// optimistic path.
    mutable RwLatch latch;
    std::atomic<BucketTable*> table;
    /// Owns the live entries; append-only under the shard latch. Entries
    /// are never destroyed before the store, so Entry* handles remain
    /// valid. Maintenance (scan, GC, purge, MaxCommittedCts) iterates this
    /// vector, so it must contain exactly the reachable entries.
    std::vector<std::unique_ptr<Entry>> entries;
    /// Entries superseded by LoadFromBackend on a warm store: unreachable
    /// from the bucket table and skipped by maintenance, but kept alive for
    /// stale Entry* handles.
    std::vector<std::unique_ptr<Entry>> retired_entries;
    std::size_t size = 0;  // occupied buckets, under latch
  };

  /// Ordered key index: an insert-only concurrent skiplist of Entry
  /// pointers spanning all shards, maintained at entry-creation time (the
  /// creator already holds its shard latch exclusively; creations in
  /// DIFFERENT shards insert concurrently, which the bottom-level CAS
  /// handles). Three invariants make range readers latch-free AND
  /// epoch-free for the traversal itself:
  ///   * nodes are never unlinked or freed before the store dies (deleted
  ///     keys stay as index nodes whose versions are simply invisible),
  ///   * a node's key bytes live in its Entry, which is likewise immortal,
  ///   * LoadFromBackend's warm-reload entry swap REPOINTS the node's
  ///     atomic Entry* (same key) instead of inserting a duplicate, so a
  ///     stale node can never resurrect superseded versions.
  /// The epoch is still pinned around each VERSION probe (MvccObject slot
  /// arrays are epoch-reclaimed on growth) — just never across user
  /// callbacks.
  class OrderedIndex {
   public:
    static constexpr int kMaxHeight = 16;

    struct Node {
      std::atomic<Entry*> entry{nullptr};  // repointable; never null once
                                           // published (head: stays null)
      int height = 1;
      std::atomic<Node*> next[1];  // variable-length trailing array

      std::string_view key() const {
        return entry.load(std::memory_order_acquire)->key;
      }
      Node* Next(int level) const {
        return next[level].load(std::memory_order_acquire);
      }
      void SetNext(int level, Node* n) {
        next[level].store(n, std::memory_order_release);
      }
      bool CasNext(int level, Node* expected, Node* n) {
        return next[level].compare_exchange_strong(expected, n,
                                                   std::memory_order_acq_rel);
      }
    };

    OrderedIndex();
    ~OrderedIndex();
    OrderedIndex(const OrderedIndex&) = delete;
    OrderedIndex& operator=(const OrderedIndex&) = delete;

    /// Inserts a node for `entry->key`, or repoints the existing node to
    /// `entry` when the key is already indexed (warm reload swap).
    void InsertOrRepoint(Entry* entry);

    /// First node with key >= `lo` (nullptr when past the end).
    Node* Seek(std::string_view lo) const {
      return FindGreaterOrEqual(lo);
    }

   private:
    static Node* NewNode(Entry* entry, int height);
    int RandomHeight();
    Node* FindGreaterOrEqual(std::string_view key,
                             Node** prev = nullptr) const;

    Node* head_;
    std::atomic<int> max_height_{1};
    SpinLock rng_lock_;
    Xorshift rng_{0x0DDB1A5E5ull};
  };

  static std::size_t HashKey(std::string_view key) {
    return std::hash<std::string_view>{}(key);
  }
  /// Shard selection uses the top bits, bucket probing the bottom bits, so
  /// keys of one shard still disperse over its buckets.
  static std::size_t ShardIndex(std::size_t hash) {
    return hash >> (8 * sizeof(std::size_t) - 8);
  }

  /// Latch-free probe. Caller must hold an EpochGuard; the returned Entry*
  /// stays valid for the store's lifetime.
  Entry* FindEntry(std::string_view key, std::size_t hash) const;
  Entry* GetOrCreateEntry(std::string_view key);
  /// Shared scaffold of every optimistic read: runs `try_fn` (one seqlock
  /// attempt, returning MvccObject::ReadResult) up to kOptimisticRetries
  /// times, then takes the shared per-entry latch and resolves via
  /// `locked_fn` (returning hit=true/miss=false). Never returns kRetry.
  template <typename TryFn, typename LockedFn>
  MvccObject::ReadResult ReadOptimistic(const Entry* entry, TryFn&& try_fn,
                                        LockedFn&& locked_fn) const {
    for (int attempt = 0; attempt < kOptimisticRetries; ++attempt) {
      const MvccObject::ReadResult result = try_fn();
      if (result != MvccObject::ReadResult::kRetry) return result;
      stats_.read_retries.fetch_add(1, std::memory_order_relaxed);
      CpuRelax();
    }
    // Sustained writer interference: the latched path guarantees progress.
    SharedGuard guard(entry->latch);
    return locked_fn() ? MvccObject::ReadResult::kHit
                       : MvccObject::ReadResult::kMiss;
  }
  /// Inserts `entry` into `shard` (exclusive latch held), growing the
  /// bucket table when the load factor would exceed 3/4.
  void InsertEntryLocked(Shard& shard, std::unique_ptr<Entry> entry);
  /// Linear-probes `table` for the bucket holding exactly `entry` (pointer
  /// identity). Returns the bucket index, or table->capacity if absent.
  /// Caller must hold the shard latch (any mode that freezes the table).
  static std::size_t FindBucketOf(const BucketTable* table,
                                  const Entry* entry);
  Status PersistEntry(std::string_view key, Entry* entry, bool sync);
  /// Install with adaptive growth (up to options_.mvcc_slots_max) and
  /// bounded writer backpressure: on ResourceExhausted with a refreshable
  /// floor, waits — entry latch RELEASED, outside any seqlock section — for
  /// the lagging pin to advance, re-resolves the floor, and retries, up to
  /// options_.version_wait_micros total.
  Status InstallWithBackpressure(Entry* entry, std::string_view value,
                                 Timestamp commit_ts, GcFloor& floor);

  StateId id_;
  std::string name_;
  std::unique_ptr<TableBackend> backend_;
  StoreOptions options_;
  std::vector<Shard> shards_;
  OrderedIndex ordered_index_;
  std::atomic<std::uint64_t> key_count_{0};
  /// Lazy GC floor cache (TryGetCachedGcFloor/CacheGcFloor). The sentinel
  /// generation ~0 never matches a real transaction-table generation.
  std::atomic<Timestamp> gc_floor_cache_{kInitialTs};
  std::atomic<std::uint64_t> gc_floor_generation_{~0ull};
  mutable StoreStats stats_;
};

}  // namespace streamsi

#endif  // STREAMSI_TXN_VERSIONED_STORE_H_
