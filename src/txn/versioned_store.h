// VersionedStore: the untyped transactional table wrapper of §4.1 —
// a sharded in-memory map of key -> (latch, MvccObject) in front of a
// pluggable TableBackend that persistently stores the committed version
// arrays.
//
// Readers operate entirely on the in-memory MVCC objects ("readers (mostly
// only accessing memory)", §5.2); the base table is the durability story:
// commits write the serialized MVCC object through to the backend, with the
// backend's SyncMode deciding the fsync behaviour.

#ifndef STREAMSI_TXN_VERSIONED_STORE_H_
#define STREAMSI_TXN_VERSIONED_STORE_H_

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/latch.h"
#include "mvcc/mvcc_object.h"
#include "storage/backend.h"
#include "txn/types.h"

namespace streamsi {

/// Tuning knobs of one store.
struct StoreOptions {
  /// Version-array capacity per key (<= 64).
  int mvcc_slots = 8;
  /// Persist committed MVCC objects to the backend at commit time.
  bool write_through = true;
  /// Request durability (backend SyncMode applies) for the final write of
  /// each per-state commit batch.
  bool sync_on_commit = true;
};

/// Operation counters of one store (observability; all relaxed atomics).
struct StoreStats {
  std::atomic<std::uint64_t> reads{0};
  std::atomic<std::uint64_t> read_misses{0};
  std::atomic<std::uint64_t> installs{0};
  std::atomic<std::uint64_t> deletes{0};
  std::atomic<std::uint64_t> scans{0};
  std::atomic<std::uint64_t> gc_reclaimed{0};
  std::atomic<std::uint64_t> persisted{0};
};

/// One transactional state table (untyped: byte-string keys/values).
class VersionedStore {
 public:
  VersionedStore(StateId id, std::string name,
                 std::unique_ptr<TableBackend> backend,
                 const StoreOptions& options);
  ~VersionedStore();

  VersionedStore(const VersionedStore&) = delete;
  VersionedStore& operator=(const VersionedStore&) = delete;

  StateId id() const { return id_; }
  const std::string& name() const { return name_; }
  TableBackend* backend() { return backend_.get(); }
  const StoreOptions& options() const { return options_; }

  // ---------------------------------------------------------- read path ---

  /// Snapshot read: newest version with cts <= read_ts < dts.
  Status ReadCommitted(Timestamp read_ts, std::string_view key,
                       std::string* value) const;

  /// Latest committed live version (S2PL/BOCC read path).
  Status ReadLatest(std::string_view key, std::string* value) const;

  /// CTS of the newest committed version of `key` (kInitialTs if none).
  Timestamp LatestCts(std::string_view key) const;

  /// Newest committed modification of `key`, deletes included (the
  /// First-Committer-Wins comparison point).
  Timestamp LatestModification(std::string_view key) const;

  /// Snapshot scan over all keys; callback(key, value); stable w.r.t.
  /// concurrent commits thanks to version visibility.
  Status ScanCommitted(
      Timestamp read_ts,
      const std::function<bool(std::string_view, std::string_view)>& callback)
      const;

  // -------------------------------------------------------- commit path ---

  /// Tries to own `key` for committing (First-Committer-Wins guard under
  /// multiple writers). Returns Conflict if another transaction is
  /// committing the key right now.
  Status LockForCommit(std::string_view key, TxnId txn);
  void UnlockCommit(std::string_view key, TxnId txn);

  /// Installs one committed write (value or tombstone) at `commit_ts` and
  /// (optionally, per StoreOptions) persists the version array to the
  /// backend. `sync_hint` requests durability for this write.
  Status ApplyCommitted(std::string_view key, std::string_view value,
                        bool is_delete, Timestamp commit_ts,
                        Timestamp oldest_active, bool sync_hint);

  /// Runs GC over every key (normally GC is per-key on demand; this is for
  /// tests/benchmarks and idle maintenance).
  std::uint64_t GarbageCollectAll(Timestamp oldest_active);

  // ----------------------------------------------------------- recovery ---

  /// Loads all MVCC objects from the backend (restart).
  Status LoadFromBackend();

  /// Drops versions with cts > max_cts (their group commit never finished)
  /// — §4.3/recovery rule. Returns the number of purged versions.
  std::uint64_t PurgeVersionsAfter(Timestamp max_cts);

  /// Non-transactional bulk load used for benchmark preloading: installs a
  /// version visible to every transaction (cts = kInitialTs) without
  /// syncing each key.
  Status BulkLoad(std::string_view key, std::string_view value);

  // -------------------------------------------------------- diagnostics ---

  std::uint64_t KeyCount() const;
  /// Largest observed CTS across all keys (recovery diagnostics).
  Timestamp MaxCommittedCts() const;
  const StoreStats& stats() const { return stats_; }

 private:
  static constexpr std::size_t kShards = 256;

  struct Entry {
    explicit Entry(int capacity) : object(capacity) {}
    explicit Entry(MvccObject&& recovered)
        : object(std::move(recovered)),
          latest_modification(object.LatestModification()) {}
    mutable RwLatch latch;
    MvccObject object;
    /// First-Committer-Wins watermark: timestamp of the newest committed
    /// modification of this key (install or delete, including no-op
    /// deletes). Kept outside the version array because garbage collection
    /// may reclaim the version that carried the evidence.
    std::atomic<Timestamp> latest_modification{kInitialTs};
    /// First-committer-wins commit ownership (0 = free).
    std::atomic<TxnId> commit_owner{0};
    /// Monotonic snapshot counter for ordered backend write-back.
    std::uint64_t blob_version = 0;             // under latch
    std::atomic<std::uint64_t> persisted_version{0};
    SpinLock persist_lock;
  };

  struct Shard {
    mutable RwLatch latch;
    std::unordered_map<std::string, std::unique_ptr<Entry>> map;
  };

  std::size_t ShardFor(std::string_view key) const;
  Entry* FindEntry(std::string_view key) const;
  Entry* GetOrCreateEntry(std::string_view key);
  Status PersistEntry(const std::string& key, Entry* entry, bool sync);

  StateId id_;
  std::string name_;
  std::unique_ptr<TableBackend> backend_;
  StoreOptions options_;
  std::vector<Shard> shards_;
  std::atomic<std::uint64_t> key_count_{0};
  mutable StoreStats stats_;
};

}  // namespace streamsi

#endif  // STREAMSI_TXN_VERSIONED_STORE_H_
