// BoccProtocol: backward-oriented optimistic concurrency control baseline
// (§5, Härder 1984 [8]).
//
// Read phase: reads go to the latest committed versions and are recorded in
// the transaction's read set; writes are buffered. Validation phase (inside
// a global critical section, as classic OCC requires validate+write to be
// atomic): the transaction aborts if any transaction that committed after
// its BOT wrote a key it read. Write phase: install the write sets.
//
// Designed for scenarios with few conflicts — which is exactly why the
// paper finds it ~5 % faster than MVCC at low contention with many readers
// and collapsing once contention rises (§5.2).

#ifndef STREAMSI_TXN_BOCC_PROTOCOL_H_
#define STREAMSI_TXN_BOCC_PROTOCOL_H_

#include <atomic>
#include <mutex>

#include "txn/committed_log.h"
#include "txn/protocol.h"

namespace streamsi {

class BoccProtocol final : public ConcurrencyProtocol {
 public:
  explicit BoccProtocol(StateContext* context) : context_(context) {}

  ProtocolType type() const override { return ProtocolType::kBocc; }

  Status Read(Transaction& txn, VersionedStore& store, std::string_view key,
              std::string* value) override;
  Status Write(Transaction& txn, VersionedStore& store, std::string_view key,
               std::string_view value) override;
  Status Delete(Transaction& txn, VersionedStore& store,
                std::string_view key) override;
  Status Scan(Transaction& txn, VersionedStore& store,
              const std::function<bool(std::string_view, std::string_view)>&
                  callback) override;

  Status PreCommit(Transaction& txn) override;
  Status Validate(Transaction& txn, VersionedStore& store) override;
  void PostCommit(Transaction& txn, Timestamp commit_ts,
                  bool committed) override;

  const CommittedTxnLog& committed_log() const { return log_; }

 private:
  StateContext* context_;
  CommittedTxnLog log_;
  std::mutex commit_mutex_;  // serializes validate+write (critical section)
  /// Txn currently validated inside the critical section (guarded by
  /// commit_mutex_): Validate is called once per written state, but BOCC
  /// validation is transaction-global, so later calls become no-ops.
  TxnId validated_marker_ = 0;
  std::atomic<std::uint64_t> commits_since_prune_{0};
};

}  // namespace streamsi

#endif  // STREAMSI_TXN_BOCC_PROTOCOL_H_
