// StateContext: the global, latch-free runtime context of Figure 3.
//
// It tracks
//   * registered states (id, name, location),
//   * topology groups — the sets of states a stream query updates
//     atomically — with the last globally committed transaction per group
//     (LastCTS),
//   * the active-transaction table: a fixed number of slots managed by a
//     64-bit CAS bit vector; each slot records the accessed states with
//     their per-state status (Active/Commit/Abort) and the pinned ReadCTS
//     per group,
//   * the global logical clock, and
//   * OldestActiveVersion for on-demand garbage collection.

#ifndef STREAMSI_TXN_STATE_CONTEXT_H_
#define STREAMSI_TXN_STATE_CONTEXT_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/latch.h"
#include "common/slot_mask.h"
#include "common/status.h"
#include "txn/types.h"

namespace streamsi {

/// Metadata about one registered state.
struct StateInfo {
  StateId id = kInvalidStateId;
  std::string name;
  std::string location;  ///< filesystem path for persistent states, else ""
};

/// Metadata about one topology group (states committed together).
struct GroupInfo {
  GroupId id = kInvalidGroupId;
  std::vector<StateId> states;
};

class StateContext {
 public:
  static constexpr int kMaxActiveTxns = AtomicSlotMask::kMaxSlots;

  StateContext() = default;
  StateContext(const StateContext&) = delete;
  StateContext& operator=(const StateContext&) = delete;

  // ------------------------------------------------------------- states ---

  /// Registers a state; returns its id.
  StateId RegisterState(std::string name, std::string location = "");
  const StateInfo* GetState(StateId id) const;
  std::size_t StateCount() const;

  // ------------------------------------------------------------- groups ---

  /// Registers a topology group over `states`; returns its id. Each state
  /// may belong to multiple groups (shared states across queries).
  GroupId RegisterGroup(std::vector<StateId> states);
  const GroupInfo* GetGroup(GroupId id) const;
  std::size_t GroupCount() const;
  /// Groups that contain `state`.
  std::vector<GroupId> GroupsOf(StateId state) const;

  /// Last globally committed transaction of the group (§4.3: set at the
  /// *end* of a group commit; what readers pin).
  Timestamp LastCts(GroupId group) const;
  /// Atomically publishes one commit's LastCTS to its groups (monotonic CAS
  /// max per group): the advances run inside the publication seqlock so a
  /// reader's pin sweep never observes a half-published commit (the §4.3
  /// overlap rule is only sound over pins taken from one consistent cut).
  /// This is the ONLY way to advance LastCTS — an unsynchronized per-group
  /// advance would bypass the seqlock and reintroduce torn cuts.
  void PublishCommit(const GroupId* groups, std::size_t count, Timestamp cts);
  void PublishCommit(const std::vector<GroupId>& groups, Timestamp cts) {
    PublishCommit(groups.data(), groups.size(), cts);
  }
  /// Assigns the transaction's commit timestamp and registers it as *in
  /// flight* in one atomic step (the commit path's ONLY way to draw a
  /// commit timestamp). Publications may then complete in any order —
  /// instead of ordering publishers, readers clamp their snapshot pins to
  /// SafePublicationTs(): commits with a smaller timestamp that are still
  /// mid-apply can never fall inside a freshly pinned snapshot, even when
  /// a larger-cts commit has already advanced LastCTS. (Without the clamp,
  /// a reader pinning that larger LastCTS observes the in-flight commit's
  /// already-installed versions without its missing ones — a torn batch,
  /// reproduced by the PR 3 partitioned stress where concurrent lanes
  /// commit into one shared group.)
  Timestamp AssignCommitTimestamp(int slot);
  /// Retires the slot's in-flight commit timestamp: after PublishCommit
  /// returned (publication fully visible), or on a failed commit AFTER its
  /// installed versions are purged — the safe timestamp rises past the
  /// retired cts, so any trace of the commit must be gone first.
  void RetireCommitTimestamp(int slot);
  /// Largest timestamp snapshots may safely pin: every commit with
  /// cts <= SafePublicationTs() is fully applied and published (or purged).
  /// kInfinityTs when no commit is in flight. Readers must take the scan
  /// AFTER reading the LastCTS values it guards (a published LastCTS that
  /// could expose an in-flight smaller cts is ordered after that cts's
  /// registration, so a later scan cannot miss it).
  Timestamp SafePublicationTs() const;
  /// Appends every group containing `state` to `out` (deduplicated against
  /// what `out` already holds). `Vec` is any push_back_unique container —
  /// the commit path passes a stack SmallVec so publication gathers its
  /// group set without heap allocation.
  template <typename Vec>
  void CollectGroupsOf(StateId state, Vec* out) const {
    SharedGuard guard(registry_latch_);
    for (const auto& group : groups_) {
      if (std::find(group->info.states.begin(), group->info.states.end(),
                    state) != group->info.states.end()) {
        out->push_back_unique(group->info.id);
      }
    }
  }
  /// Recovery: forces LastCTS (no monotonicity check).
  void SetLastCts(GroupId group, Timestamp cts);

  /// One publication-seqlock-consistent cut of EVERY group's LastCTS (the
  /// checkpoint cut): like SweepAndPin's cut, it can never straddle a
  /// mid-flight multi-group publication. Unlike reader pins it is NOT
  /// clamped to SafePublicationTs() — the caller (Database::Checkpoint)
  /// first drains in-flight commits so every acked commit's publication is
  /// inside the cut.
  void SnapshotLastCts(std::vector<std::pair<GroupId, Timestamp>>* out) const;

  /// Blocks until every commit in flight at CALL TIME has retired its
  /// commit timestamp (published, or purged after a failed commit). Commits
  /// registering later are NOT awaited — the checkpoint only needs the set
  /// that may have recorded into pre-rotation log segments. Timestamps are
  /// never reused (monotonic clock), so observing the slot change is
  /// exactly "that commit retired".
  void DrainInflightCommits() const;

  // -------------------------------------------------------------- clock ---

  LogicalClock& clock() { return clock_; }
  const LogicalClock& clock() const { return clock_; }

  // ------------------------------------------- active-transaction table ---

  /// Claims a transaction slot and assigns a fresh TxnID (BOT timestamp).
  /// ResourceExhausted if kMaxActiveTxns transactions are running.
  Result<int> BeginTransaction(TxnId* txn_id);

  /// Releases the slot at end of transaction.
  void EndTransaction(int slot);

  /// Records that the transaction accesses `state` (status = Active) if not
  /// already recorded.
  void RegisterStateAccess(int slot, StateId state);

  /// Sets the per-state status flag (consistency protocol, §4.3).
  void SetStateStatus(int slot, StateId state, TxnStatus status);

  /// Status of `state` within this transaction (kActive if unknown).
  TxnStatus GetStateStatus(int slot, StateId state) const;

  /// All states the transaction has registered, with status.
  std::vector<std::pair<StateId, TxnStatus>> StatesOf(int slot) const;

  /// Allocation-free variant: copies the registered states into `out` (any
  /// push_back container — the commit path passes a stack SmallVec).
  template <typename Vec>
  void CopyStatesOf(int slot, Vec* out) const {
    const TxnSlot& s = slots_[static_cast<std::size_t>(slot)];
    std::lock_guard<SpinLock> guard(s.lock);
    for (const auto& entry : s.states) out->push_back(entry);
  }

  /// Monotonic generation of the active-transaction table: bumped on every
  /// BeginTransaction and EndTransaction. Consumers (the lazy GC floor
  /// cache) may reuse a watermark computed at an unchanged generation —
  /// the pin set can only have shrunk-equivalently since. (Any watermark
  /// produced by the publish-floor/re-scan handshake stays *safe* forever;
  /// the generation merely bounds how stale — i.e. how conservative — a
  /// cached floor may get.)
  std::uint64_t TxnTableGeneration() const {
    return txn_generation_.load(std::memory_order_acquire);
  }

  /// Blocks until the transaction-table generation differs from `seen`, at
  /// most `micros` microseconds; returns the generation at wake-up. The
  /// writer-backpressure path (a committer stalled on a version array whose
  /// every version is pinned) sleeps here between GC-floor re-resolutions:
  /// the floor can only rise when a transaction ends (or begins), and both
  /// bump the generation — so this wakes exactly when recomputing the floor
  /// might help. Purely a latency hint: a missed wake-up costs at most the
  /// timeout, never correctness.
  std::uint64_t WaitForTxnTableChange(std::uint64_t seen,
                                      std::uint64_t micros);

  /// True iff every registered state of `group` that this transaction
  /// accessed has status == kCommit... (§4.3: "The modifications are not
  /// persisted until all states registered for this transaction are ready
  /// for commit.")
  bool AllRegisteredStatesReady(int slot) const;
  /// True iff any state of this transaction is flagged kAbort.
  bool AnyStateAborted(int slot) const;

  /// Pins (first call) or returns (later calls) the transaction's ReadCTS
  /// for `group` (§4.2/§4.3: "the read version is noted within the context
  /// and is only set at the first read per topology").
  Timestamp PinReadCts(int slot, GroupId group);
  /// The pinned ReadCTS, or nullopt if the group was never read.
  std::optional<Timestamp> GetReadCts(int slot, GroupId group) const;
  /// Overlap rule (§4.3): effective snapshot for a state = the minimum pin
  /// across all (pinned) groups containing it; unpinned groups get pinned
  /// on first touch.
  Timestamp PinReadCtsForState(int slot, StateId state);

  /// BOT timestamp of the transaction in `slot`.
  TxnId TxnIdOf(int slot) const;

  /// OldestActiveVersion (§4.1): the smallest snapshot any active *or
  /// future* transaction may still read. Future reads pin a group's
  /// LastCTS, so the floor is min(LastCTS over all groups), lowered further
  /// by the pins active transactions hold; clock.Now() when there are no
  /// groups. Versions whose dts <= this value are safe to reclaim.
  Timestamp OldestActiveVersion() const;

  /// Per-state GC watermark: like OldestActiveVersion, but only snapshots
  /// that can actually see `state` matter — the LastCTS of the groups
  /// containing it and the pins active transactions hold on those groups.
  /// (A never-committing group elsewhere must not pin this state's GC.)
  Timestamp OldestActiveVersionFor(StateId state) const;

  /// Smallest BOT timestamp among active transactions (clock.Now() when
  /// idle). This bounds BOCC's backward-validation window (committed-log
  /// records at or before it can be pruned).
  Timestamp OldestActiveBegin() const;

  /// Number of currently active transactions.
  int ActiveTransactionCount() const { return active_mask_.Count(); }

 private:
  struct TxnSlot {
    std::atomic<TxnId> txn_id{0};
    mutable SpinLock lock;
    std::vector<std::pair<StateId, TxnStatus>> states;
    std::vector<std::pair<GroupId, Timestamp>> read_cts;
  };

  struct GroupSlot {
    GroupInfo info;
    std::atomic<Timestamp> last_cts{kInitialTs};
    /// Highest GC watermark any collector may already be using for states
    /// of this group. A reader that registered a snapshot pin BELOW this
    /// floor raced an in-flight watermark computation (the collector could
    /// not see the pin) and must re-pin from the current LastCTS; the
    /// publish-floor / re-scan-pins handshake in OldestActiveVersion[For]
    /// and PinReadCts closes that window (the multi-state snapshot
    /// guarantee of §4.3 depends on it).
    std::atomic<Timestamp> gc_floor{kInitialTs};
  };

  /// Smallest snapshot pin any active transaction holds on one of `groups`
  /// (kInfinityTs if none). Used twice by the watermark computations —
  /// before and after publishing the floor.
  Timestamp OldestPinnedCts(const GroupId* groups, std::size_t count,
                            bool any_group) const;
  Timestamp GcFloor(GroupId group) const;
  /// Raises gc_floor (monotonic) on `groups`, or on every group when
  /// any_group is set.
  void PublishGcFloor(const GroupId* groups, std::size_t count,
                      bool any_group, Timestamp floor) const;
  /// First grouped access of a transaction: registers a pin for EVERY
  /// existing group from one seqlock-consistent cut of the LastCTS values,
  /// re-validated against the groups' gc_floor. Taking the whole cut at
  /// once is what makes the §4.3 min() overlap rule sound — pins taken at
  /// different moments (as states are first touched) can straddle
  /// publications and yield different effective snapshots for states that
  /// share only some groups.
  void SweepAndPin(int slot);

  LogicalClock clock_;

  /// Publication seqlock: odd while a commit's LastCTS values are being
  /// advanced across its groups (see PublishCommit / SweepAndPin). Writers
  /// serialize on publish_lock_ — overlapping publishers would otherwise
  /// leave the sequence even mid-publication and break reader validation.
  SpinLock publish_lock_;
  std::atomic<std::uint64_t> publish_seq_{0};

  /// Publication-visibility gate: in-flight commit timestamps by txn slot
  /// (0 = none). Drawn + registered atomically under the mutex (a commit
  /// preempted between draw and registration would be invisible to the
  /// reader-side clamp while larger timestamps publish past it); retired
  /// with one release store. Readers scan lock-free (SafePublicationTs).
  mutable std::mutex publication_gate_mutex_;
  std::array<std::atomic<Timestamp>, kMaxActiveTxns> inflight_commit_ts_{};
  /// Number of non-zero inflight_commit_ts_ entries: lets SafePublicationTs
  /// skip the slot scan in the common no-commit-in-flight case.
  std::atomic<int> inflight_commit_count_{0};

  mutable RwLatch registry_latch_;  // guards states_/groups_ vectors
  std::vector<StateInfo> states_;
  std::vector<std::unique_ptr<GroupSlot>> groups_;

  /// Wakes WaitForTxnTableChange sleepers after a generation bump. The
  /// notify is gated on the waiter count so idle begin/end pairs never
  /// touch the mutex.
  void NotifyGenerationWaiters();

  AtomicSlotMask active_mask_;
  std::array<TxnSlot, kMaxActiveTxns> slots_;
  std::atomic<std::uint64_t> txn_generation_{0};
  /// Generation-change waiters (writer backpressure on full version
  /// arrays); see WaitForTxnTableChange.
  mutable std::mutex generation_mutex_;
  std::condition_variable generation_cv_;
  std::atomic<int> generation_waiters_{0};
};

}  // namespace streamsi

#endif  // STREAMSI_TXN_STATE_CONTEXT_H_
