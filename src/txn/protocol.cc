#include "txn/protocol.h"

#include <algorithm>
#include <unordered_map>

#include "common/small_vec.h"

#include "txn/bocc_protocol.h"
#include "txn/s2pl_protocol.h"
#include "txn/si_protocol.h"

namespace streamsi {

Status ConcurrencyProtocol::Apply(Transaction& txn, VersionedStore& store,
                                  Timestamp commit_ts, GcFloor& floor) {
  return ApplyWriteSet(txn, store, commit_ts, floor);
}

Status ConcurrencyProtocol::ApplyWriteSet(Transaction& txn,
                                          VersionedStore& store,
                                          Timestamp commit_ts,
                                          GcFloor& floor) {
  const WriteSet* ws = txn.FindWriteSet(store.id());
  if (ws == nullptr || ws->empty()) return Status::OK();

  // The dirty array keeps one (current) entry per key, in first-touch
  // order. The final write of the batch carries the durability point (one
  // synchronous write per state commit, mirroring one WAL sync per batch).
  const auto& entries = ws->entries();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const bool is_last = (i + 1 == entries.size());
    // SI's validate phase stashed the resolved store entry on each
    // write-set entry; installing through it skips the per-key probe.
    // Protocols that don't resolve handles (S2PL/BOCC) take the key path.
    if (entries[i].commit_hint != nullptr) {
      STREAMSI_RETURN_NOT_OK(store.ApplyCommitted(
          entries[i].commit_hint, entries[i].value, entries[i].is_delete,
          commit_ts, floor, /*sync_hint=*/is_last));
    } else {
      STREAMSI_RETURN_NOT_OK(store.ApplyCommitted(
          entries[i].key, entries[i].value, entries[i].is_delete, commit_ts,
          floor, /*sync_hint=*/is_last));
    }
  }
  return Status::OK();
}

Status ConcurrencyProtocol::ScanWithOverlay(
    Transaction& txn, VersionedStore& store, Timestamp read_ts,
    const std::function<bool(std::string_view, std::string_view)>& callback) {
  const WriteSet* ws = txn.FindWriteSet(store.id());
  if (ws == nullptr || ws->empty()) {
    return store.ScanCommitted(read_ts, callback);
  }
  bool stop = false;
  STREAMSI_RETURN_NOT_OK(store.ScanCommitted(
      read_ts, [&](std::string_view key, std::string_view value) {
        if (ws->Contains(key)) return true;  // emitted from the overlay below
        if (!callback(key, value)) {
          stop = true;
          return false;
        }
        return true;
      }));
  if (stop) return Status::OK();
  // Emit the transaction's own (non-delete) writes.
  ws->ForEachEffective([&](std::string_view key, std::string_view value,
                           bool is_delete) {
    if (stop || is_delete) return;
    if (!callback(key, value)) stop = true;
  });
  return Status::OK();
}

Status ConcurrencyProtocol::ScanRangeWithOverlay(
    Transaction& txn, VersionedStore& store, Timestamp read_ts,
    std::string_view lo, std::string_view hi,
    const std::function<bool(std::string_view, std::string_view)>& callback) {
  const WriteSet* ws = txn.FindWriteSet(store.id());
  if (ws == nullptr || ws->empty()) {
    return store.ScanRangeCommitted(read_ts, lo, hi, callback);
  }
  // Ordered two-way merge: the committed range stream is already sorted;
  // the transaction's own in-range writes (unique per key — the write set
  // is last-write-wins in place) are gathered on the stack and sorted once.
  // Per key the own write wins, and an own delete suppresses the committed
  // row. The overlay holds dirty-array INDICES, not Entry pointers: the
  // committed-scan callback may legally write back into this state (the
  // store blesses that), which can reallocate the entry vector — indices
  // stay stable (entries are append-only, updated in place), and the key
  // views they resolve to are arena-backed, so re-probing per use is safe.
  const auto entry_at = [ws](std::size_t i) -> const WriteSet::Entry& {
    return ws->entries()[i];
  };
  SmallVec<std::size_t, 16> overlay;
  for (std::size_t i = 0; i < ws->entries().size(); ++i) {
    const std::string_view key = ws->entries()[i].key;
    if (key >= lo && (hi.empty() || key < hi)) overlay.push_back(i);
  }
  std::sort(overlay.begin(), overlay.end(),
            [&](std::size_t a, std::size_t b) {
              return entry_at(a).key < entry_at(b).key;
            });
  std::size_t next = 0;
  bool stop = false;
  const auto emit_overlay = [&](std::size_t i) {
    const WriteSet::Entry& entry = entry_at(i);
    if (entry.is_delete) return true;
    return callback(entry.key, entry.value);
  };
  STREAMSI_RETURN_NOT_OK(store.ScanRangeCommitted(
      read_ts, lo, hi, [&](std::string_view key, std::string_view value) {
        while (next < overlay.size() && entry_at(overlay[next]).key < key) {
          if (!emit_overlay(overlay[next++])) {
            stop = true;
            return false;
          }
        }
        if (next < overlay.size() && entry_at(overlay[next]).key == key) {
          // Own write shadows the committed version of this key.
          if (!emit_overlay(overlay[next++])) {
            stop = true;
            return false;
          }
          return true;
        }
        if (!callback(key, value)) {
          stop = true;
          return false;
        }
        return true;
      }));
  if (stop) return Status::OK();
  while (next < overlay.size()) {
    if (!emit_overlay(overlay[next++])) break;
  }
  return Status::OK();
}

std::unique_ptr<ConcurrencyProtocol> MakeProtocol(ProtocolType type,
                                                  StateContext* context) {
  switch (type) {
    case ProtocolType::kMvcc:
      return std::make_unique<SiProtocol>(context);
    case ProtocolType::kS2pl:
      return std::make_unique<S2plProtocol>(context);
    case ProtocolType::kBocc:
      return std::make_unique<BoccProtocol>(context);
  }
  return nullptr;
}

}  // namespace streamsi
