// LockManager: per-key read/write locks for the S2PL baseline (§5: "a
// simple strict two-phase locking (S2PL)" protocol).
//
// Deadlocks are avoided with the wait-die scheme: an older transaction
// (smaller BOT timestamp) waits for a younger holder; a younger requester
// dies (returns Busy, the transaction aborts and may restart). Locks are
// held until end of transaction (strictness).

#ifndef STREAMSI_TXN_LOCK_MANAGER_H_
#define STREAMSI_TXN_LOCK_MANAGER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/latch.h"
#include "common/status.h"
#include "txn/types.h"

namespace streamsi {

class LockManager {
 public:
  /// Acquires a shared lock on `key` for `txn`. Blocks (spins) while an
  /// exclusive holder is older; returns Busy when wait-die says die.
  Status LockShared(std::string_view key, TxnId txn);

  /// Acquires an exclusive lock (upgrade supported when `txn` is the sole
  /// shared holder).
  Status LockExclusive(std::string_view key, TxnId txn);

  /// Releases whatever `txn` holds on `key`.
  void Unlock(std::string_view key, TxnId txn);

  /// Diagnostics: number of keys with at least one holder.
  std::size_t LockedKeyCount() const;

 private:
  struct LockEntry {
    TxnId exclusive_holder = 0;          // 0 = none
    std::vector<TxnId> shared_holders;   // empty when exclusive
  };

  struct Shard {
    mutable SpinLock lock;
    std::unordered_map<std::string, LockEntry> map;
  };

  static constexpr std::size_t kShards = 128;

  Shard& ShardFor(std::string_view key);
  const Shard& ShardFor(std::string_view key) const;

  /// True when `requester` must die instead of waiting for `holder`
  /// (wait-die: younger requester dies).
  static bool MustDie(TxnId requester, TxnId holder) {
    return requester > holder;
  }

  Shard shards_[kShards];
};

}  // namespace streamsi

#endif  // STREAMSI_TXN_LOCK_MANAGER_H_
