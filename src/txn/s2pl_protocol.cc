#include "txn/s2pl_protocol.h"

namespace streamsi {

Status S2plProtocol::Read(Transaction& txn, VersionedStore& store,
                          std::string_view key, std::string* value) {
  if (const WriteSet* ws = txn.FindWriteSet(store.id()); ws != nullptr) {
    if (const auto own = ws->Find(key); own.written) {
      if (own.is_delete) return Status::NotFound("deleted by self");
      value->assign(own.value.data(), own.value.size());
      return Status::OK();
    }
  }
  const std::string lock_key = Transaction::NamespacedKey(store.id(), key);
  STREAMSI_RETURN_NOT_OK(locks_.LockShared(lock_key, txn.id()));
  txn.RecordLock(store.id(), lock_key, /*exclusive=*/false);
  return store.ReadLatest(key, value);
}

Status S2plProtocol::Write(Transaction& txn, VersionedStore& store,
                           std::string_view key, std::string_view value) {
  const std::string lock_key = Transaction::NamespacedKey(store.id(), key);
  STREAMSI_RETURN_NOT_OK(locks_.LockExclusive(lock_key, txn.id()));
  txn.RecordLock(store.id(), lock_key, /*exclusive=*/true);
  txn.MutableWriteSet(store.id()).Put(key, value);
  return Status::OK();
}

Status S2plProtocol::Delete(Transaction& txn, VersionedStore& store,
                            std::string_view key) {
  const std::string lock_key = Transaction::NamespacedKey(store.id(), key);
  STREAMSI_RETURN_NOT_OK(locks_.LockExclusive(lock_key, txn.id()));
  txn.RecordLock(store.id(), lock_key, /*exclusive=*/true);
  txn.MutableWriteSet(store.id()).Delete(key);
  return Status::OK();
}

Status S2plProtocol::Scan(
    Transaction& txn, VersionedStore& store,
    const std::function<bool(std::string_view, std::string_view)>& callback) {
  // Lock every visited key shared (predicate locking is out of scope).
  Status lock_status = Status::OK();
  const Status scan_status = ScanWithOverlay(
      txn, store, kInfinityTs - 1,
      [&](std::string_view key, std::string_view value) {
        const std::string lock_key =
            Transaction::NamespacedKey(store.id(), key);
        lock_status = locks_.LockShared(lock_key, txn.id());
        if (!lock_status.ok()) return false;
        txn.RecordLock(store.id(), lock_key, /*exclusive=*/false);
        return callback(key, value);
      });
  STREAMSI_RETURN_NOT_OK(lock_status);
  return scan_status;
}

void S2plProtocol::FinalizeTxn(Transaction& txn, bool /*committed*/) {
  // Strictness: every lock is held until the very end of the transaction.
  for (const auto& lock : txn.TakeHeldLocks()) {
    locks_.Unlock(lock.key, txn.id());
  }
}

}  // namespace streamsi
