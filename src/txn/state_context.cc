#include "txn/state_context.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/small_vec.h"

namespace streamsi {

namespace {
/// Inline capacity for group collections gathered on the stack (pin sweeps,
/// watermark computations). Registries with more groups spill to the heap.
constexpr std::size_t kInlineGroups = 16;
}  // namespace

// ---------------------------------------------------------------- states ---

StateId StateContext::RegisterState(std::string name, std::string location) {
  ExclusiveGuard guard(registry_latch_);
  const StateId id = static_cast<StateId>(states_.size());
  states_.push_back(StateInfo{id, std::move(name), std::move(location)});
  return id;
}

const StateInfo* StateContext::GetState(StateId id) const {
  SharedGuard guard(registry_latch_);
  if (id >= states_.size()) return nullptr;
  return &states_[id];
}

std::size_t StateContext::StateCount() const {
  SharedGuard guard(registry_latch_);
  return states_.size();
}

// ---------------------------------------------------------------- groups ---

GroupId StateContext::RegisterGroup(std::vector<StateId> states) {
  ExclusiveGuard guard(registry_latch_);
  const GroupId id = static_cast<GroupId>(groups_.size());
  auto slot = std::make_unique<GroupSlot>();
  slot->info.id = id;
  slot->info.states = std::move(states);
  groups_.push_back(std::move(slot));
  return id;
}

const GroupInfo* StateContext::GetGroup(GroupId id) const {
  SharedGuard guard(registry_latch_);
  if (id >= groups_.size()) return nullptr;
  return &groups_[id]->info;
}

std::size_t StateContext::GroupCount() const {
  SharedGuard guard(registry_latch_);
  return groups_.size();
}

std::vector<GroupId> StateContext::GroupsOf(StateId state) const {
  SharedGuard guard(registry_latch_);
  std::vector<GroupId> result;
  for (const auto& group : groups_) {
    if (std::find(group->info.states.begin(), group->info.states.end(),
                  state) != group->info.states.end()) {
      result.push_back(group->info.id);
    }
  }
  return result;
}

Timestamp StateContext::LastCts(GroupId group) const {
  SharedGuard guard(registry_latch_);
  if (group >= groups_.size()) return kInitialTs;
  return groups_[group]->last_cts.load(std::memory_order_acquire);
}

Timestamp StateContext::AssignCommitTimestamp(int slot) {
  // Draw + registration are one atomic step: a committer preempted between
  // drawing its timestamp and registering it would be invisible to the
  // reader-side clamp while larger, registered timestamps publish past it
  // — exactly the tear the clamp exists to prevent.
  std::lock_guard<std::mutex> guard(publication_gate_mutex_);
  const Timestamp cts = clock_.Next();
  inflight_commit_ts_[static_cast<std::size_t>(slot)].store(
      cts, std::memory_order_release);
  inflight_commit_count_.fetch_add(1, std::memory_order_release);
  return cts;
}

void StateContext::RetireCommitTimestamp(int slot) {
  if (inflight_commit_ts_[static_cast<std::size_t>(slot)].exchange(
          0, std::memory_order_acq_rel) != 0) {
    inflight_commit_count_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

Timestamp StateContext::SafePublicationTs() const {
  // Fast path: no commit in flight (the count's release-sequence ordering
  // guarantees a zero read implies every retired commit is fully visible,
  // and any commit registered before a LastCTS the caller already read is
  // still counted).
  if (inflight_commit_count_.load(std::memory_order_acquire) == 0) {
    return kInfinityTs;
  }
  Timestamp safe = kInfinityTs;
  for (const auto& inflight : inflight_commit_ts_) {
    const Timestamp cts = inflight.load(std::memory_order_acquire);
    if (cts != 0 && cts - 1 < safe) safe = cts - 1;
  }
  return safe;
}

void StateContext::PublishCommit(const GroupId* groups, std::size_t count,
                                 Timestamp cts) {
  // Publishers must be mutually exclusive: each GlobalCommit runs on its own
  // coordinator thread, and two overlapping publications would both bump the
  // sequence odd->even->odd->even, leaving it EVEN while both are still
  // mid-flight — SweepAndPin would then accept a cut straddling a
  // half-published multi-group commit. The lock keeps the parity protocol
  // honest; readers stay lock-free.
  std::lock_guard<SpinLock> publish_guard(publish_lock_);
  publish_seq_.fetch_add(1, std::memory_order_release);  // odd: in flight
  {
    // One shared registry acquisition for the whole publication (not one
    // per group): readers spin while the sequence is odd, so keep the
    // window short.
    SharedGuard guard(registry_latch_);
    for (std::size_t i = 0; i < count; ++i) {
      const GroupId group = groups[i];
      if (group >= groups_.size()) continue;
      auto& last = groups_[group]->last_cts;
      Timestamp cur = last.load(std::memory_order_relaxed);
      while (cur < cts && !last.compare_exchange_weak(
                              cur, cts, std::memory_order_acq_rel)) {
      }
    }
  }
  publish_seq_.fetch_add(1, std::memory_order_release);  // even: published
}

void StateContext::SnapshotLastCts(
    std::vector<std::pair<GroupId, Timestamp>>* out) const {
  for (;;) {
    const std::uint64_t before = publish_seq_.load(std::memory_order_acquire);
    if (before & 1u) {
      CpuRelax();  // a publication is mid-flight; its cut would be torn
      continue;
    }
    out->clear();
    {
      SharedGuard guard(registry_latch_);
      out->reserve(groups_.size());
      for (const auto& group : groups_) {
        out->emplace_back(group->info.id,
                          group->last_cts.load(std::memory_order_acquire));
      }
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (publish_seq_.load(std::memory_order_relaxed) == before) return;
  }
}

void StateContext::DrainInflightCommits() const {
  // Snapshot the in-flight set, then wait each entry out. A slot whose
  // value changed retired our commit (values are unique, drawn from the
  // monotonic clock — a recycled slot carries a new timestamp). The waits
  // are bounded by commit latency: apply + one group-commit fsync, or the
  // version-pressure wait budget in the worst case.
  SmallVec<std::pair<int, Timestamp>, kMaxActiveTxns> inflight;
  for (int i = 0; i < kMaxActiveTxns; ++i) {
    const Timestamp cts =
        inflight_commit_ts_[static_cast<std::size_t>(i)].load(
            std::memory_order_acquire);
    if (cts != 0) inflight.push_back({i, cts});
  }
  for (const auto& [slot, cts] : inflight) {
    while (inflight_commit_ts_[static_cast<std::size_t>(slot)].load(
               std::memory_order_acquire) == cts) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
}

void StateContext::SetLastCts(GroupId group, Timestamp cts) {
  SharedGuard guard(registry_latch_);
  if (group >= groups_.size()) return;
  groups_[group]->last_cts.store(cts, std::memory_order_release);
}

// ---------------------------------------------- active-transaction table ---

Result<int> StateContext::BeginTransaction(TxnId* txn_id) {
  const int slot = active_mask_.Acquire();
  if (slot == AtomicSlotMask::kNoSlot) {
    return Status::ResourceExhausted("active transaction table full");
  }
  TxnSlot& s = slots_[static_cast<std::size_t>(slot)];
  {
    std::lock_guard<SpinLock> guard(s.lock);
    s.states.clear();
    s.read_cts.clear();
  }
  // Defensive: a stale in-flight commit timestamp would clamp every future
  // snapshot pin forever.
  RetireCommitTimestamp(slot);
  const TxnId id = clock_.Next();
  s.txn_id.store(id, std::memory_order_release);
  // Invalidate cached lazy GC floors: the new transaction may pin snapshots
  // the cached watermark computations did not account for. (Safety does not
  // depend on this — the floor handshake keeps any published watermark
  // valid — but conservatively busting the cache keeps floors fresh.)
  // seq_cst bump: NotifyGenerationWaiters' waiter-count load needs a
  // store-load edge against this (see there) without a standalone fence on
  // this hot path — the RMW is lock-prefixed anyway, seq_cst costs nothing.
  txn_generation_.fetch_add(1, std::memory_order_seq_cst);
  NotifyGenerationWaiters();
  *txn_id = id;
  return slot;
}

void StateContext::EndTransaction(int slot) {
  TxnSlot& s = slots_[static_cast<std::size_t>(slot)];
  s.txn_id.store(0, std::memory_order_release);
  {
    std::lock_guard<SpinLock> guard(s.lock);
    s.states.clear();
    s.read_cts.clear();
  }
  active_mask_.Release(slot);
  // Invalidate cached lazy GC floors: this transaction's pins are gone, so
  // the watermark may rise — force the next full-array Install to recompute.
  // (seq_cst for the NotifyGenerationWaiters store-load edge, see Begin.)
  txn_generation_.fetch_add(1, std::memory_order_seq_cst);
  NotifyGenerationWaiters();
}

void StateContext::NotifyGenerationWaiters() {
  // Store-load edge against the waiter's registration: the caller's seq_cst
  // generation bump and this seq_cst load order one way, the waiter's
  // registration + fence + generation check the other — if this load misses
  // a freshly registered waiter, that waiter is guaranteed to see the bump
  // and never sleeps on it. Bounded timeouts make even a missed wake-up a
  // latency blip, never a hang.
  if (generation_waiters_.load(std::memory_order_seq_cst) == 0) return;
  // Take-and-drop the mutex so a waiter between its predicate check and the
  // actual sleep cannot miss the notify.
  { std::lock_guard<std::mutex> guard(generation_mutex_); }
  generation_cv_.notify_all();
}

std::uint64_t StateContext::WaitForTxnTableChange(std::uint64_t seen,
                                                  std::uint64_t micros) {
  std::unique_lock<std::mutex> lock(generation_mutex_);
  generation_waiters_.fetch_add(1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  generation_cv_.wait_for(lock, std::chrono::microseconds(micros),
                          [&] { return TxnTableGeneration() != seen; });
  generation_waiters_.fetch_sub(1, std::memory_order_relaxed);
  return TxnTableGeneration();
}

void StateContext::RegisterStateAccess(int slot, StateId state) {
  TxnSlot& s = slots_[static_cast<std::size_t>(slot)];
  std::lock_guard<SpinLock> guard(s.lock);
  for (auto& [sid, status] : s.states) {
    if (sid == state) return;
  }
  s.states.emplace_back(state, TxnStatus::kActive);
}

void StateContext::SetStateStatus(int slot, StateId state, TxnStatus status) {
  TxnSlot& s = slots_[static_cast<std::size_t>(slot)];
  std::lock_guard<SpinLock> guard(s.lock);
  for (auto& [sid, st] : s.states) {
    if (sid == state) {
      st = status;
      return;
    }
  }
  s.states.emplace_back(state, status);
}

TxnStatus StateContext::GetStateStatus(int slot, StateId state) const {
  const TxnSlot& s = slots_[static_cast<std::size_t>(slot)];
  std::lock_guard<SpinLock> guard(s.lock);
  for (const auto& [sid, st] : s.states) {
    if (sid == state) return st;
  }
  return TxnStatus::kActive;
}

std::vector<std::pair<StateId, TxnStatus>> StateContext::StatesOf(
    int slot) const {
  const TxnSlot& s = slots_[static_cast<std::size_t>(slot)];
  std::lock_guard<SpinLock> guard(s.lock);
  return s.states;
}

bool StateContext::AllRegisteredStatesReady(int slot) const {
  const TxnSlot& s = slots_[static_cast<std::size_t>(slot)];
  std::lock_guard<SpinLock> guard(s.lock);
  if (s.states.empty()) return false;
  for (const auto& [sid, st] : s.states) {
    if (st != TxnStatus::kCommit) return false;
  }
  return true;
}

bool StateContext::AnyStateAborted(int slot) const {
  const TxnSlot& s = slots_[static_cast<std::size_t>(slot)];
  std::lock_guard<SpinLock> guard(s.lock);
  for (const auto& [sid, st] : s.states) {
    if (st == TxnStatus::kAbort) return true;
  }
  return false;
}

void StateContext::SweepAndPin(int slot) {
  TxnSlot& s = slots_[static_cast<std::size_t>(slot)];
  for (;;) {
    // One seqlock-consistent cut of every group's LastCTS: a commit that is
    // mid-publication (some of its groups advanced, some not) keeps the
    // sequence odd and forces a retry, so the cut never straddles it.
    const std::uint64_t before =
        publish_seq_.load(std::memory_order_acquire);
    if (before & 1u) {
      CpuRelax();
      continue;
    }
    SmallVec<std::pair<GroupId, Timestamp>, kInlineGroups> cut;
    {
      SharedGuard registry_guard(registry_latch_);
      for (const auto& group : groups_) {
        cut.push_back({group->info.id,
                       group->last_cts.load(std::memory_order_acquire)});
      }
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (publish_seq_.load(std::memory_order_relaxed) != before) continue;
    // Clamp to the safe publication timestamp: LastCTS may already carry a
    // commit published out of timestamp order while a SMALLER-cts commit
    // is still mid-apply — pinning past that in-flight commit would show
    // its installed versions without its missing ones. The scan runs AFTER
    // the cut was read (any in-flight cts a published LastCTS could expose
    // was registered before that publication, so a later scan sees it),
    // and one clamp value covers the whole cut, keeping the §4.3 overlap
    // rule consistent.
    const Timestamp safe = SafePublicationTs();
    for (auto& [gid, ts] : cut) {
      (void)gid;
      if (ts > safe) ts = safe;
    }

    // Register + floor-validate + (rollback | commit) under ONE continuous
    // s.lock hold: a concurrent operator's fast-path (also under s.lock)
    // can therefore never adopt a pin this sweep later withdraws.
    std::lock_guard<SpinLock> guard(s.lock);
    std::size_t first_added = s.read_cts.size();
    for (const auto& [gid, ts] : cut) {
      bool present = false;
      for (const auto& [existing, pin] : s.read_cts) {
        if (existing == gid) {
          present = true;
          break;
        }
      }
      // First pin wins: never overwrite pins of an earlier (validated)
      // sweep — only append the missing ones.
      if (!present) s.read_cts.emplace_back(gid, ts);
    }
    // Close the pin/GC race: a collector that computed its watermark before
    // our registration could not see these pins and may already be
    // reclaiming versions up to the published gc_floor. Only the pins THIS
    // sweep appended are validated (and possibly withdrawn): earlier pins
    // were validated by their own sweep and may be in use by other
    // operators of this transaction.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    bool stale = false;
    {
      SharedGuard registry_guard(registry_latch_);
      for (std::size_t i = first_added; i < s.read_cts.size(); ++i) {
        const GroupId gid = s.read_cts[i].first;
        if (gid < groups_.size() &&
            groups_[gid]->gc_floor.load(std::memory_order_seq_cst) >
                s.read_cts[i].second) {
          stale = true;
          break;
        }
      }
    }
    if (!stale) return;
    // A violated floor means the cut is too old — withdraw this sweep's
    // pins (nobody observed them: we never released s.lock) and retake it.
    // LastCTS is never below a published floor, so this converges.
    s.read_cts.resize(first_added);
  }
}

Timestamp StateContext::PinReadCts(int slot, GroupId group) {
  TxnSlot& s = slots_[static_cast<std::size_t>(slot)];
  {
    std::lock_guard<SpinLock> guard(s.lock);
    for (const auto& [gid, ts] : s.read_cts) {
      if (gid == group) return ts;
    }
  }
  // First grouped access of this transaction: pin every group from one
  // consistent cut, then return ours.
  SweepAndPin(slot);
  std::lock_guard<SpinLock> guard(s.lock);
  for (const auto& [gid, ts] : s.read_cts) {
    if (gid == group) return ts;
  }
  // The group was created after this transaction's sweep (online DDL).
  // Clamp its pin to the transaction's existing snapshot so a commit that
  // spans the new group and an already-pinned one can never be half
  // visible; the floor loop keeps the pin GC-safe (if the floor forces a
  // raise above the clamp, snapshot-consistency with a concurrent DDL
  // commit is best-effort — the paper does not define online DDL).
  Timestamp pin = LastCts(group);
  // Safe-timestamp clamp, scanned AFTER the LastCts read (see SweepAndPin).
  pin = std::min(pin, SafePublicationTs());
  for (const auto& [gid, ts] : s.read_cts) {
    (void)gid;
    pin = std::min(pin, ts);
  }
  for (;;) {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (GcFloor(group) <= pin) break;
    pin = LastCts(group);
    // Keep the safe-timestamp clamp on retry (floors never exceed the safe
    // timestamp, so the clamped retry still converges).
    pin = std::min(pin, SafePublicationTs());
  }
  s.read_cts.emplace_back(group, pin);
  return pin;
}

std::optional<Timestamp> StateContext::GetReadCts(int slot,
                                                  GroupId group) const {
  const TxnSlot& s = slots_[static_cast<std::size_t>(slot)];
  std::lock_guard<SpinLock> guard(s.lock);
  for (const auto& [gid, ts] : s.read_cts) {
    if (gid == group) return ts;
  }
  return std::nullopt;
}

Timestamp StateContext::PinReadCtsForState(int slot, StateId state) {
  SmallVec<GroupId, kInlineGroups> groups;
  CollectGroupsOf(state, &groups);
  if (groups.empty()) {
    // State outside any topology group: snapshot = now (auto-pinned to the
    // newest committed data at first touch). Pin via a synthetic group-less
    // path: use the clock. Single-state reads remain consistent because the
    // caller caches the result per transaction.
    return clock_.Now();
  }
  // §4.3 overlap rule: "If there is an overlap when reading multiple
  // topologies with different versions (LastCTS), the older version must be
  // read to guarantee consistency."
  Timestamp snapshot = kInfinityTs;
  for (GroupId g : groups) {
    snapshot = std::min(snapshot, PinReadCts(slot, g));
  }
  return snapshot;
}

TxnId StateContext::TxnIdOf(int slot) const {
  return slots_[static_cast<std::size_t>(slot)].txn_id.load(
      std::memory_order_acquire);
}

Timestamp StateContext::OldestPinnedCts(const GroupId* groups,
                                        std::size_t count,
                                        bool any_group) const {
  Timestamp oldest = kInfinityTs;
  for (int i = 0; i < kMaxActiveTxns; ++i) {
    if (!active_mask_.IsSet(i)) continue;
    const TxnSlot& s = slots_[static_cast<std::size_t>(i)];
    if (s.txn_id.load(std::memory_order_acquire) == 0) {
      continue;  // slot being set up / torn down
    }
    std::lock_guard<SpinLock> guard(s.lock);
    for (const auto& [gid, ts] : s.read_cts) {
      if (any_group ||
          std::find(groups, groups + count, gid) != groups + count) {
        oldest = std::min(oldest, ts);
      }
    }
  }
  return oldest;
}

Timestamp StateContext::GcFloor(GroupId group) const {
  SharedGuard guard(registry_latch_);
  if (group >= groups_.size()) return kInitialTs;
  return groups_[group]->gc_floor.load(std::memory_order_seq_cst);
}

void StateContext::PublishGcFloor(const GroupId* groups, std::size_t count,
                                  bool any_group, Timestamp floor) const {
  SharedGuard guard(registry_latch_);
  for (const auto& group : groups_) {
    if (!any_group && std::find(groups, groups + count, group->info.id) ==
                          groups + count) {
      continue;
    }
    Timestamp cur = group->gc_floor.load(std::memory_order_relaxed);
    while (cur < floor && !group->gc_floor.compare_exchange_weak(
                              cur, floor, std::memory_order_seq_cst)) {
    }
  }
}

Timestamp StateContext::OldestActiveVersion() const {
  // Snapshots are pinned from group LastCTS values, so the oldest snapshot
  // any *future* read can pin is the minimum LastCTS across groups — not
  // the BOT timestamp of the active transactions. Start from that floor and
  // lower it further by the pins active transactions already hold.
  Timestamp oldest = clock_.Now();
  {
    SharedGuard guard(registry_latch_);
    for (const auto& group : groups_) {
      oldest =
          std::min(oldest, group->last_cts.load(std::memory_order_acquire));
    }
  }
  oldest = std::min(oldest, OldestPinnedCts(nullptr, 0, /*any_group=*/true));
  // Safe-publication clamp, scanned AFTER the LastCTS/pin reads (the gate
  // contract): a commit registering between an earlier scan and the
  // LastCTS reads would be missed, and the published floor could then
  // exceed the safe timestamp — clamped readers would fail floor
  // validation and spin until that commit retires.
  oldest = std::min(oldest, SafePublicationTs());
  // Publish the intended watermark, then re-scan: a reader that registered
  // its pin after the first scan re-validates against this floor (see
  // PinReadCts), and the second scan picks up any pin registered before the
  // floor became visible — between them every in-flight pin is accounted
  // for before a single version is reclaimed at this watermark.
  PublishGcFloor(nullptr, 0, /*any_group=*/true, oldest);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  oldest = std::min(oldest, OldestPinnedCts(nullptr, 0, /*any_group=*/true));
  return oldest;
}

Timestamp StateContext::OldestActiveVersionFor(StateId state) const {
  SmallVec<GroupId, kInlineGroups> groups;
  CollectGroupsOf(state, &groups);
  Timestamp oldest = clock_.Now();
  for (GroupId group : groups) {
    oldest = std::min(oldest, LastCts(group));
  }
  oldest = std::min(oldest, OldestPinnedCts(groups.data(), groups.size(),
                                            /*any_group=*/false));
  // Safe-publication clamp AFTER the LastCTS/pin reads (gate contract; see
  // OldestActiveVersion) so the published floor never exceeds the safe
  // timestamp a clamped sweep can pin.
  oldest = std::min(oldest, SafePublicationTs());
  // Same publish-floor / re-scan handshake as OldestActiveVersion(): no pin
  // registered concurrently with this computation can fall below the
  // returned watermark without either being seen by the second scan or
  // re-pinning itself above the published floor.
  PublishGcFloor(groups.data(), groups.size(), /*any_group=*/false, oldest);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  oldest = std::min(oldest, OldestPinnedCts(groups.data(), groups.size(),
                                            /*any_group=*/false));
  return oldest;
}

Timestamp StateContext::OldestActiveBegin() const {
  Timestamp oldest = clock_.Now();
  for (int i = 0; i < kMaxActiveTxns; ++i) {
    if (!active_mask_.IsSet(i)) continue;
    const TxnId id =
        slots_[static_cast<std::size_t>(i)].txn_id.load(
            std::memory_order_acquire);
    if (id != 0) oldest = std::min(oldest, id);
  }
  return oldest;
}

}  // namespace streamsi
