#include "txn/state_context.h"

#include <algorithm>

namespace streamsi {

// ---------------------------------------------------------------- states ---

StateId StateContext::RegisterState(std::string name, std::string location) {
  ExclusiveGuard guard(registry_latch_);
  const StateId id = static_cast<StateId>(states_.size());
  states_.push_back(StateInfo{id, std::move(name), std::move(location)});
  return id;
}

const StateInfo* StateContext::GetState(StateId id) const {
  SharedGuard guard(registry_latch_);
  if (id >= states_.size()) return nullptr;
  return &states_[id];
}

std::size_t StateContext::StateCount() const {
  SharedGuard guard(registry_latch_);
  return states_.size();
}

// ---------------------------------------------------------------- groups ---

GroupId StateContext::RegisterGroup(std::vector<StateId> states) {
  ExclusiveGuard guard(registry_latch_);
  const GroupId id = static_cast<GroupId>(groups_.size());
  auto slot = std::make_unique<GroupSlot>();
  slot->info.id = id;
  slot->info.states = std::move(states);
  groups_.push_back(std::move(slot));
  return id;
}

const GroupInfo* StateContext::GetGroup(GroupId id) const {
  SharedGuard guard(registry_latch_);
  if (id >= groups_.size()) return nullptr;
  return &groups_[id]->info;
}

std::vector<GroupId> StateContext::GroupsOf(StateId state) const {
  SharedGuard guard(registry_latch_);
  std::vector<GroupId> result;
  for (const auto& group : groups_) {
    if (std::find(group->info.states.begin(), group->info.states.end(),
                  state) != group->info.states.end()) {
      result.push_back(group->info.id);
    }
  }
  return result;
}

Timestamp StateContext::LastCts(GroupId group) const {
  SharedGuard guard(registry_latch_);
  if (group >= groups_.size()) return kInitialTs;
  return groups_[group]->last_cts.load(std::memory_order_acquire);
}

void StateContext::AdvanceLastCts(GroupId group, Timestamp cts) {
  SharedGuard guard(registry_latch_);
  if (group >= groups_.size()) return;
  auto& last = groups_[group]->last_cts;
  Timestamp cur = last.load(std::memory_order_relaxed);
  while (cur < cts &&
         !last.compare_exchange_weak(cur, cts, std::memory_order_acq_rel)) {
  }
}

void StateContext::SetLastCts(GroupId group, Timestamp cts) {
  SharedGuard guard(registry_latch_);
  if (group >= groups_.size()) return;
  groups_[group]->last_cts.store(cts, std::memory_order_release);
}

// ---------------------------------------------- active-transaction table ---

Result<int> StateContext::BeginTransaction(TxnId* txn_id) {
  const int slot = active_mask_.Acquire();
  if (slot == AtomicSlotMask::kNoSlot) {
    return Status::ResourceExhausted("active transaction table full");
  }
  TxnSlot& s = slots_[static_cast<std::size_t>(slot)];
  {
    std::lock_guard<SpinLock> guard(s.lock);
    s.states.clear();
    s.read_cts.clear();
  }
  const TxnId id = clock_.Next();
  s.txn_id.store(id, std::memory_order_release);
  *txn_id = id;
  return slot;
}

void StateContext::EndTransaction(int slot) {
  TxnSlot& s = slots_[static_cast<std::size_t>(slot)];
  s.txn_id.store(0, std::memory_order_release);
  {
    std::lock_guard<SpinLock> guard(s.lock);
    s.states.clear();
    s.read_cts.clear();
  }
  active_mask_.Release(slot);
}

void StateContext::RegisterStateAccess(int slot, StateId state) {
  TxnSlot& s = slots_[static_cast<std::size_t>(slot)];
  std::lock_guard<SpinLock> guard(s.lock);
  for (auto& [sid, status] : s.states) {
    if (sid == state) return;
  }
  s.states.emplace_back(state, TxnStatus::kActive);
}

void StateContext::SetStateStatus(int slot, StateId state, TxnStatus status) {
  TxnSlot& s = slots_[static_cast<std::size_t>(slot)];
  std::lock_guard<SpinLock> guard(s.lock);
  for (auto& [sid, st] : s.states) {
    if (sid == state) {
      st = status;
      return;
    }
  }
  s.states.emplace_back(state, status);
}

TxnStatus StateContext::GetStateStatus(int slot, StateId state) const {
  const TxnSlot& s = slots_[static_cast<std::size_t>(slot)];
  std::lock_guard<SpinLock> guard(s.lock);
  for (const auto& [sid, st] : s.states) {
    if (sid == state) return st;
  }
  return TxnStatus::kActive;
}

std::vector<std::pair<StateId, TxnStatus>> StateContext::StatesOf(
    int slot) const {
  const TxnSlot& s = slots_[static_cast<std::size_t>(slot)];
  std::lock_guard<SpinLock> guard(s.lock);
  return s.states;
}

bool StateContext::AllRegisteredStatesReady(int slot) const {
  const TxnSlot& s = slots_[static_cast<std::size_t>(slot)];
  std::lock_guard<SpinLock> guard(s.lock);
  if (s.states.empty()) return false;
  for (const auto& [sid, st] : s.states) {
    if (st != TxnStatus::kCommit) return false;
  }
  return true;
}

bool StateContext::AnyStateAborted(int slot) const {
  const TxnSlot& s = slots_[static_cast<std::size_t>(slot)];
  std::lock_guard<SpinLock> guard(s.lock);
  for (const auto& [sid, st] : s.states) {
    if (st == TxnStatus::kAbort) return true;
  }
  return false;
}

Timestamp StateContext::PinReadCts(int slot, GroupId group) {
  TxnSlot& s = slots_[static_cast<std::size_t>(slot)];
  {
    std::lock_guard<SpinLock> guard(s.lock);
    for (const auto& [gid, ts] : s.read_cts) {
      if (gid == group) return ts;
    }
  }
  const Timestamp pin = LastCts(group);
  std::lock_guard<SpinLock> guard(s.lock);
  // Re-check: another operator of the same transaction may have pinned it
  // concurrently; first pin wins so all operators share one snapshot.
  for (const auto& [gid, ts] : s.read_cts) {
    if (gid == group) return ts;
  }
  s.read_cts.emplace_back(group, pin);
  return pin;
}

std::optional<Timestamp> StateContext::GetReadCts(int slot,
                                                  GroupId group) const {
  const TxnSlot& s = slots_[static_cast<std::size_t>(slot)];
  std::lock_guard<SpinLock> guard(s.lock);
  for (const auto& [gid, ts] : s.read_cts) {
    if (gid == group) return ts;
  }
  return std::nullopt;
}

Timestamp StateContext::PinReadCtsForState(int slot, StateId state) {
  const std::vector<GroupId> groups = GroupsOf(state);
  if (groups.empty()) {
    // State outside any topology group: snapshot = now (auto-pinned to the
    // newest committed data at first touch). Pin via a synthetic group-less
    // path: use the clock. Single-state reads remain consistent because the
    // caller caches the result per transaction.
    return clock_.Now();
  }
  // §4.3 overlap rule: "If there is an overlap when reading multiple
  // topologies with different versions (LastCTS), the older version must be
  // read to guarantee consistency."
  Timestamp snapshot = kInfinityTs;
  for (GroupId g : groups) {
    snapshot = std::min(snapshot, PinReadCts(slot, g));
  }
  return snapshot;
}

TxnId StateContext::TxnIdOf(int slot) const {
  return slots_[static_cast<std::size_t>(slot)].txn_id.load(
      std::memory_order_acquire);
}

Timestamp StateContext::OldestActiveVersion() const {
  // Snapshots are pinned from group LastCTS values, so the oldest snapshot
  // any *future* read can pin is the minimum LastCTS across groups — not
  // the BOT timestamp of the active transactions. Start from that floor and
  // lower it further by the pins active transactions already hold.
  Timestamp oldest = clock_.Now();
  {
    SharedGuard guard(registry_latch_);
    for (const auto& group : groups_) {
      oldest =
          std::min(oldest, group->last_cts.load(std::memory_order_acquire));
    }
  }
  for (int i = 0; i < kMaxActiveTxns; ++i) {
    if (!active_mask_.IsSet(i)) continue;
    const TxnSlot& s = slots_[static_cast<std::size_t>(i)];
    if (s.txn_id.load(std::memory_order_acquire) == 0) {
      continue;  // slot being set up / torn down
    }
    std::lock_guard<SpinLock> guard(s.lock);
    for (const auto& [gid, ts] : s.read_cts) {
      (void)gid;
      oldest = std::min(oldest, ts);
    }
  }
  return oldest;
}

Timestamp StateContext::OldestActiveVersionFor(StateId state) const {
  const std::vector<GroupId> groups = GroupsOf(state);
  Timestamp oldest = clock_.Now();
  for (GroupId group : groups) {
    oldest = std::min(oldest, LastCts(group));
  }
  for (int i = 0; i < kMaxActiveTxns; ++i) {
    if (!active_mask_.IsSet(i)) continue;
    const TxnSlot& s = slots_[static_cast<std::size_t>(i)];
    if (s.txn_id.load(std::memory_order_acquire) == 0) continue;
    std::lock_guard<SpinLock> guard(s.lock);
    for (const auto& [gid, ts] : s.read_cts) {
      if (std::find(groups.begin(), groups.end(), gid) != groups.end()) {
        oldest = std::min(oldest, ts);
      }
    }
  }
  return oldest;
}

Timestamp StateContext::OldestActiveBegin() const {
  Timestamp oldest = clock_.Now();
  for (int i = 0; i < kMaxActiveTxns; ++i) {
    if (!active_mask_.IsSet(i)) continue;
    const TxnId id =
        slots_[static_cast<std::size_t>(i)].txn_id.load(
            std::memory_order_acquire);
    if (id != 0) oldest = std::min(oldest, id);
  }
  return oldest;
}

}  // namespace streamsi
