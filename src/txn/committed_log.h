// CommittedTxnLog: history of recently committed transactions' write sets,
// used by the BOCC baseline for backward-oriented validation (Härder 1984,
// the paper's reference [8]): a committing transaction T is valid iff no
// transaction that committed between BOT(T) and now wrote a key T read.

#ifndef STREAMSI_TXN_COMMITTED_LOG_H_
#define STREAMSI_TXN_COMMITTED_LOG_H_

#include <deque>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/clock.h"
#include "txn/types.h"

namespace streamsi {

class CommittedTxnLog {
 public:
  struct Record {
    Timestamp commit_ts;
    std::unordered_set<std::string> write_keys;  // namespaced "<state>/<key>"
  };

  /// Appends the write set of a transaction that just committed.
  void Append(Timestamp commit_ts, std::unordered_set<std::string> keys) {
    std::lock_guard<std::mutex> guard(mutex_);
    log_.push_back(Record{commit_ts, std::move(keys)});
  }

  /// True if any transaction with commit_ts > `begin_ts` wrote a key in
  /// `read_set` (=> the validating transaction must abort).
  bool HasConflict(Timestamp begin_ts,
                   const std::unordered_set<std::string>& read_set) const {
    std::lock_guard<std::mutex> guard(mutex_);
    for (auto it = log_.rbegin(); it != log_.rend(); ++it) {
      if (it->commit_ts <= begin_ts) break;  // log is commit-ordered
      // Iterate over the smaller set.
      if (read_set.size() < it->write_keys.size()) {
        for (const auto& key : read_set) {
          if (it->write_keys.count(key)) return true;
        }
      } else {
        for (const auto& key : it->write_keys) {
          if (read_set.count(key)) return true;
        }
      }
    }
    return false;
  }

  /// Drops records no active transaction can conflict with.
  void Prune(Timestamp oldest_active_begin) {
    std::lock_guard<std::mutex> guard(mutex_);
    while (!log_.empty() && log_.front().commit_ts <= oldest_active_begin) {
      log_.pop_front();
    }
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return log_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::deque<Record> log_;  // ascending commit_ts
};

}  // namespace streamsi

#endif  // STREAMSI_TXN_COMMITTED_LOG_H_
