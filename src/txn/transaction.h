// Transaction: handle for one transaction instance.
//
// In the data-centric model (§3) a stream query is "a sequence of
// transactions": each BOT punctuation begins one, the enclosed stream
// elements become writes, and COMMIT/ROLLBACK punctuations end it. Ad-hoc
// queries use the same handle through the query-centric API.
//
// A transaction may be driven by several operators of the same topology
// (one per state), so the handle is thread-safe where that matters: write
// sets are per-state and status flags live in the latch-free StateContext.

#ifndef STREAMSI_TXN_TRANSACTION_H_
#define STREAMSI_TXN_TRANSACTION_H_

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/latch.h"
#include "txn/state_context.h"
#include "txn/types.h"
#include "txn/write_set.h"

namespace streamsi {

/// Whole-transaction lifecycle (distinct from the per-state TxnStatus flags
/// the consistency protocol uses).
enum class TxnPhase : unsigned char {
  kRunning = 0,
  kCommitted = 1,
  kAborted = 2,
};

class Transaction {
 public:
  /// Created via TransactionManager::Begin(); takes the pre-acquired slot.
  Transaction(StateContext* context, int slot, TxnId id)
      : context_(context), slot_(slot), id_(id) {}

  ~Transaction() {
    // Slot release is the TransactionManager's job (it knows about protocol
    // resources); assert in debug that it happened.
  }

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  TxnId id() const { return id_; }
  int slot() const { return slot_; }
  StateContext* context() { return context_; }

  TxnPhase phase() const { return phase_.load(std::memory_order_acquire); }
  void set_phase(TxnPhase phase) {
    phase_.store(phase, std::memory_order_release);
  }
  bool running() const { return phase() == TxnPhase::kRunning; }

  /// Read visibility (§3). Choose before the first read; switching later
  /// only affects subsequent reads.
  IsolationLevel isolation() const {
    return isolation_.load(std::memory_order_acquire);
  }
  void set_isolation(IsolationLevel level) {
    isolation_.store(level, std::memory_order_release);
  }

  /// Uncommitted write set for `state` (created on first touch); registers
  /// the state access in the context.
  WriteSet& MutableWriteSet(StateId state) {
    std::lock_guard<SpinLock> guard(lock_);
    auto it = write_sets_.find(state);
    if (it == write_sets_.end()) {
      context_->RegisterStateAccess(slot_, state);
      it = write_sets_.emplace(state, std::make_unique<WriteSet>()).first;
    }
    return *it->second;
  }

  /// Read-only view (nullptr if the state was never written).
  const WriteSet* FindWriteSet(StateId state) const {
    std::lock_guard<SpinLock> guard(lock_);
    auto it = write_sets_.find(state);
    return it == write_sets_.end() ? nullptr : it->second.get();
  }

  /// States with a (possibly empty) write set.
  std::vector<StateId> WrittenStates() const {
    std::lock_guard<SpinLock> guard(lock_);
    std::vector<StateId> result;
    result.reserve(write_sets_.size());
    for (const auto& [state, ws] : write_sets_) {
      if (!ws->empty()) result.push_back(state);
    }
    return result;
  }

  /// Clears all write sets (abort path).
  void ClearWriteSets() {
    std::lock_guard<SpinLock> guard(lock_);
    for (auto& [state, ws] : write_sets_) ws->Clear();
  }

  // ------------------------------------------------ protocol bookkeeping ---

  /// BOCC read-set tracking: keys are namespaced "<state>/<key>".
  void RecordRead(StateId state, std::string_view key) {
    std::lock_guard<SpinLock> guard(lock_);
    read_set_.insert(NamespacedKey(state, key));
  }

  const std::unordered_set<std::string>& read_set() const { return read_set_; }

  /// S2PL held-locks list (released at end of transaction).
  struct HeldLock {
    StateId state;
    std::string key;
    bool exclusive;
  };

  void RecordLock(StateId state, std::string_view key, bool exclusive) {
    std::lock_guard<SpinLock> guard(lock_);
    held_locks_.push_back(HeldLock{state, std::string(key), exclusive});
  }

  std::vector<HeldLock> TakeHeldLocks() {
    std::lock_guard<SpinLock> guard(lock_);
    return std::move(held_locks_);
  }

  /// SI commit locks (First-Committer-Wins ownership) to release after the
  /// group commit finished.
  void RecordCommitLock(StateId state, std::string_view key) {
    std::lock_guard<SpinLock> guard(lock_);
    commit_locks_.push_back({state, std::string(key), true});
  }

  std::vector<HeldLock> TakeCommitLocks() {
    std::lock_guard<SpinLock> guard(lock_);
    return std::move(commit_locks_);
  }

  /// Per-state snapshot cache for the SI read path: the pinned snapshot of
  /// a state never changes within a transaction, so protocols cache it here
  /// instead of re-deriving it from the groups on every read.
  std::optional<Timestamp> CachedSnapshot(StateId state) const {
    std::lock_guard<SpinLock> guard(lock_);
    for (const auto& [sid, ts] : snapshot_cache_) {
      if (sid == state) return ts;
    }
    return std::nullopt;
  }

  void CacheSnapshot(StateId state, Timestamp ts) {
    std::lock_guard<SpinLock> guard(lock_);
    for (const auto& [sid, cached] : snapshot_cache_) {
      if (sid == state) return;  // first pin wins
    }
    snapshot_cache_.emplace_back(state, ts);
  }

  /// §4.3: "The operator that sets the last status flag to Commit becomes
  /// the coordinator and is responsible for the global commit." Exactly one
  /// caller wins this claim.
  bool TryClaimCoordinator() {
    bool expected = false;
    return coordinator_claimed_.compare_exchange_strong(
        expected, true, std::memory_order_acq_rel);
  }

  static std::string NamespacedKey(StateId state, std::string_view key) {
    std::string out = std::to_string(state);
    out.push_back('/');
    out.append(key.data(), key.size());
    return out;
  }

 private:
  StateContext* context_;
  int slot_;
  TxnId id_;
  std::atomic<TxnPhase> phase_{TxnPhase::kRunning};
  std::atomic<IsolationLevel> isolation_{IsolationLevel::kSnapshot};
  std::atomic<bool> coordinator_claimed_{false};

  mutable SpinLock lock_;
  std::unordered_map<StateId, std::unique_ptr<WriteSet>> write_sets_;
  std::unordered_set<std::string> read_set_;
  std::vector<HeldLock> held_locks_;
  std::vector<HeldLock> commit_locks_;
  std::vector<std::pair<StateId, Timestamp>> snapshot_cache_;
};

}  // namespace streamsi

#endif  // STREAMSI_TXN_TRANSACTION_H_
